package ctgauss

import (
	"testing"

	"ctgauss/internal/gaussian"
)

// TestConfigNormalizeDefaults pins the documented defaults: n = 128,
// τ = 13, exact minimization, ChaCha20 with the fixed test seed.
func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{Sigma: "2"}.normalize()
	if c.Sigma != "2" {
		t.Fatalf("Sigma = %q, want untouched", c.Sigma)
	}
	if c.Precision != 128 {
		t.Fatalf("Precision = %d, want 128", c.Precision)
	}
	if c.TailCut != gaussian.DefaultTailCut || gaussian.DefaultTailCut != 13 {
		t.Fatalf("TailCut = %v, want 13", c.TailCut)
	}
	if c.Minimizer != MinimizeExact {
		t.Fatalf("Minimizer = %v, want MinimizeExact", c.Minimizer)
	}
	if string(c.Seed) != "ctgauss-default-seed" {
		t.Fatalf("Seed = %q, want the fixed test seed", c.Seed)
	}
	if c.PRNG != "chacha20" {
		t.Fatalf("PRNG = %q, want chacha20", c.PRNG)
	}
	if c.Workers != 0 {
		t.Fatalf("Workers = %d, want 0 (all CPUs)", c.Workers)
	}
}

// TestConfigNormalizeKeepsExplicit checks that set fields survive.
func TestConfigNormalizeKeepsExplicit(t *testing.T) {
	in := Config{
		Sigma:     "6.15543",
		Precision: 64,
		TailCut:   10,
		Minimizer: MinimizeGreedy,
		Seed:      []byte("mine"),
		PRNG:      "aes-ctr",
		Workers:   3,
	}
	c := in.normalize()
	if c.Precision != 64 || c.TailCut != 10 || c.Minimizer != MinimizeGreedy ||
		string(c.Seed) != "mine" || c.PRNG != "aes-ctr" || c.Workers != 3 {
		t.Fatalf("normalize clobbered explicit fields: %+v", c)
	}
}
