module ctgauss

go 1.24
