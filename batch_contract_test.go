package ctgauss_test

import (
	"strings"
	"testing"

	"ctgauss"
)

// TestNextBatchLengthContract is the regression test for the documented
// NextBatch length handling shared by Sampler and Pool: a buffer shorter
// than the 64-sample native granularity is rejected with a panic (it
// would silently drop paid-for samples), exactly 64 entries are written
// otherwise, and any tail beyond 64 is left untouched.
func TestNextBatchLengthContract(t *testing.T) {
	s, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 32})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ctgauss.NewPoolWithConfig(ctgauss.Config{Sigma: "2", Precision: 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	impls := map[string]func([]int){
		"Sampler": s.NextBatch,
		"Pool": func(dst []int) {
			if err := p.NextBatch(dst); err != nil {
				t.Fatalf("Pool.NextBatch: %v", err)
			}
		},
	}
	for name, next := range impls {
		// Reject: len < 64 panics with the documented message.
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: NextBatch accepted a 63-entry buffer", name)
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "need ≥ 64") {
					t.Fatalf("%s: unexpected panic value %v", name, r)
				}
			}()
			next(make([]int, 63))
		}()

		// Exactly 64: every slot written (the sentinel is unreachable:
		// supports are far below 2^40).
		const sentinel = 1 << 40
		dst := make([]int, 64)
		for i := range dst {
			dst[i] = sentinel
		}
		next(dst)
		for i, v := range dst {
			if v == sentinel {
				t.Fatalf("%s: len-64 buffer slot %d left unfilled", name, i)
			}
		}

		// Short-fill: len > 64 writes exactly dst[:64]; the tail must be
		// bit-for-bit untouched.
		dst = make([]int, 100)
		for i := range dst {
			dst[i] = sentinel
		}
		next(dst)
		for i := 0; i < 64; i++ {
			if dst[i] == sentinel {
				t.Fatalf("%s: len-100 buffer slot %d left unfilled", name, i)
			}
		}
		for i := 64; i < len(dst); i++ {
			if dst[i] != sentinel {
				t.Fatalf("%s: len-100 buffer tail slot %d overwritten with %d", name, i, dst[i])
			}
		}
	}

	// Contrast: the arbitrary layer serves every length exactly.
	arb, err := ctgauss.NewArbitrary(ctgauss.ArbitraryConfig{BaseSigmas: []string{"2"}, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	short := []int{1 << 40, 1 << 40, 1 << 40}
	if err := arb.NextBatch(2.5, 0, short); err != nil {
		t.Fatal(err)
	}
	for i, v := range short {
		if v == 1<<40 {
			t.Fatalf("Arbitrary: 3-entry buffer slot %d left unfilled", i)
		}
	}
}
