package gen

import (
	"math/rand"
	"testing"

	"ctgauss/internal/core"
)

// TestGeneratedMatchesInterpreted is the determinism/correctness check for
// the checked-in circuits: rebuilding the pipeline and interpreting its
// program must agree with the compiled source on random inputs.
func TestGeneratedMatchesInterpreted(t *testing.T) {
	cases := []struct {
		sigma     string
		fn        func(in, out []uint64)
		numInputs int
		valueBits int
	}{
		{"2", Sigma2Batch, Sigma2BatchInputs, Sigma2BatchValueBits},
		{"6.15543", Sigma615543Batch, Sigma615543BatchInputs, Sigma615543BatchValueBits},
	}
	for _, c := range cases {
		b, err := core.Build(core.Config{Sigma: c.sigma, N: 128, TailCut: 13, Min: core.MinimizeExact})
		if err != nil {
			t.Fatal(err)
		}
		if b.Program.NumInputs != c.numInputs || b.Program.ValueBits != c.valueBits {
			t.Fatalf("σ=%s: shape drift: rebuild has %d/%d, generated %d/%d — rerun go generate",
				c.sigma, b.Program.NumInputs, b.Program.ValueBits, c.numInputs, c.valueBits)
		}
		rng := rand.New(rand.NewSource(7))
		in := make([]uint64, c.numInputs)
		out := make([]uint64, c.valueBits)
		regs := make([]uint64, b.Program.NumRegs)
		want := make([]uint64, c.valueBits)
		for trial := 0; trial < 200; trial++ {
			for i := range in {
				in[i] = rng.Uint64()
			}
			c.fn(in, out)
			b.Program.RunInto(in, regs, want)
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("σ=%s trial %d: generated code diverges at word %d", c.sigma, trial, i)
				}
			}
		}
	}
}
