package gen

// Lookup returns the generated native circuit for σ, or ok=false when the
// generator has not emitted one.  All generated circuits use the paper's
// evaluation configuration (n=128, τ=13, exact minimization); callers must
// not serve them for any other configuration.  Register new circuits here
// when cmd/internal/gencircuits gains a configuration.
func Lookup(sigma string) (fn func(in, out []uint64), numInputs, valueBits int, ok bool) {
	switch sigma {
	case "2":
		return Sigma2Batch, Sigma2BatchInputs, Sigma2BatchValueBits, true
	case "6.15543":
		return Sigma615543Batch, Sigma615543BatchInputs, Sigma615543BatchValueBits, true
	}
	return nil, 0, 0, false
}

// Sigmas enumerates the σ values with generated native circuits — the
// registry-served configurations tools sweep by default (cmd/ctcheck,
// the acceptance harness).  Keep in step with Lookup.
func Sigmas() []string { return []string{"2", "6.15543"} }
