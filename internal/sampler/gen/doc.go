// Package gen holds the generated constant-time sampler circuits for the
// paper's two evaluation configurations (σ=2 and σ=6.15543, n=128, τ=13),
// emitted by the pipeline's code generator — the deployment artifact the
// paper's published tool produces.  Regenerate with:
//
//	go run ./cmd/internal/gencircuits
package gen

//go:generate go run ctgauss/cmd/internal/gencircuits
