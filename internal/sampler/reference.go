package sampler

import (
	"ctgauss/internal/bitslice"
	"ctgauss/internal/prng"
)

// Reference is the pre-optimization sampling path, retained verbatim: the
// SSA interpreter with one fresh register per instruction, inputs drawn
// one bounds-checked word at a time, and the per-bit shift-and-mask
// unpack.  It is the measurement baseline the optimized engine is
// compared against (BENCH_PR2.json, samplebench, bench_test.go) and the
// stream a width-1 Bitsliced must reproduce bit-for-bit.  Do not optimize
// it — its value is being the fixed point of comparison.
type Reference struct {
	prog *bitslice.Program
	rd   *prng.BitReader
	in   []uint64
	regs []uint64
	out  []uint64
	batchBuf
}

// NewReference wraps a compiled program and a random source.
func NewReference(prog *bitslice.Program, src prng.Source) *Reference {
	return &Reference{
		prog:     prog,
		rd:       prng.NewBitReader(src),
		in:       make([]uint64, prog.NumInputs),
		regs:     make([]uint64, prog.NumRegs),
		out:      make([]uint64, len(prog.Outputs)),
		batchBuf: newBatchBuf(64),
	}
}

// Name implements Sampler.
func (r *Reference) Name() string { return "bitsliced-reference" }

// BitsUsed implements Sampler.
func (r *Reference) BitsUsed() uint64 { return r.rd.BitsRead }

func (r *Reference) refill() {
	for i := range r.in {
		r.in[i] = r.rd.Uint64()
	}
	sign := r.rd.Uint64()
	r.prog.RunInto(r.in, r.regs, r.out)
	for l := 0; l < 64; l++ {
		mag := 0
		for i, w := range r.out {
			mag |= int((w>>uint(l))&1) << uint(i)
		}
		r.batch[l] = applySign(mag, (sign>>uint(l))&1)
	}
	r.used = 0
}

// Next implements Sampler.
func (r *Reference) Next() int { return r.next(r.refill) }

// NextBatch implements BatchSampler; see batchBuf for the drain-first
// contract.
func (r *Reference) NextBatch(dst []int) { r.nextBatch(dst, r.refill) }
