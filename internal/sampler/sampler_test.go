package sampler

import (
	"math"
	"math/rand"
	"testing"

	"ctgauss/internal/bitslice"
	"ctgauss/internal/gaussian"
	"ctgauss/internal/prng"
)

func tbl(t *testing.T, sigma string, n int) *gaussian.Table {
	t.Helper()
	p, err := gaussian.NewParams(sigma, n, 13)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := gaussian.NewTable(p)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func checkDistribution(t *testing.T, s Sampler, table *gaussian.Table, samples int) {
	t.Helper()
	counts := make(map[int]int)
	var sum, sq float64
	for i := 0; i < samples; i++ {
		v := s.Next()
		counts[v]++
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	sigma, _ := table.Params.Sigma.Float64()
	mean := sum / float64(samples)
	variance := sq/float64(samples) - mean*mean
	if math.Abs(mean) > 5*sigma/math.Sqrt(float64(samples)) {
		t.Errorf("%s: mean %.4f too far from 0", s.Name(), mean)
	}
	if math.Abs(variance-sigma*sigma) > 0.1*sigma*sigma {
		t.Errorf("%s: variance %.4f, want ≈ %.4f", s.Name(), variance, sigma*sigma)
	}
	for z := -3; z <= 3; z++ {
		want := table.SignedProb(z)
		got := float64(counts[z]) / float64(samples)
		tol := 5*math.Sqrt(want/float64(samples)) + 0.003
		if math.Abs(got-want) > tol {
			t.Errorf("%s: P(%d) = %.5f, want %.5f", s.Name(), z, got, want)
		}
	}
}

func TestKnuthYaoDistribution(t *testing.T) {
	table := tbl(t, "2", 64)
	s := NewKnuthYao(table, prng.MustChaCha20([]byte("ky")))
	checkDistribution(t, s, table, 100000)
	if s.BitsUsed() == 0 {
		t.Fatal("BitsUsed not counted")
	}
}

func TestCDTDistribution(t *testing.T) {
	table := tbl(t, "2", 128)
	checkDistribution(t, NewCDT(table, prng.MustChaCha20([]byte("cdt"))), table, 100000)
}

func TestByteScanCDTDistribution(t *testing.T) {
	table := tbl(t, "2", 128)
	checkDistribution(t, NewByteScanCDT(table, prng.MustChaCha20([]byte("bs"))), table, 100000)
}

func TestLinearCDTDistribution(t *testing.T) {
	table := tbl(t, "2", 128)
	checkDistribution(t, NewLinearCDT(table, prng.MustChaCha20([]byte("lin"))), table, 100000)
}

func TestCDTVariantsAgreeOnSameStream(t *testing.T) {
	// All three CDT samplers consume 128 random bits + 1 sign bit per
	// sample; on identical streams they must produce identical samples.
	table := tbl(t, "2", 128)
	a := NewCDT(table, prng.MustChaCha20([]byte("agree")))
	b := NewByteScanCDT(table, prng.MustChaCha20([]byte("agree")))
	c := NewLinearCDT(table, prng.MustChaCha20([]byte("agree")))
	for i := 0; i < 20000; i++ {
		va, vb, vc := a.Next(), b.Next(), c.Next()
		if va != vb || va != vc {
			t.Fatalf("sample %d: binary=%d bytescan=%d linear=%d", i, va, vb, vc)
		}
	}
}

func TestLinearCDTConstantSteps(t *testing.T) {
	table := tbl(t, "2", 128)
	s := NewLinearCDT(table, prng.MustChaCha20([]byte("steps")))
	s.Next()
	per := s.Steps
	for i := 0; i < 1000; i++ {
		before := s.Steps
		s.Next()
		if s.Steps-before != per {
			t.Fatalf("linear CDT step count varies: %d vs %d", s.Steps-before, per)
		}
	}
	if per != uint64(table.Support+1) {
		t.Fatalf("steps per sample = %d, want table size %d", per, table.Support+1)
	}
}

func TestByteScanStepsCorrelateWithSample(t *testing.T) {
	// The byte-scanning sampler's work grows with the sample magnitude —
	// the timing leak the paper's sampler removes.
	table := tbl(t, "2", 128)
	s := NewByteScanCDT(table, prng.MustChaCha20([]byte("leak"))) //nolint
	stepsByMag := make(map[int][]uint64)
	for i := 0; i < 50000; i++ {
		before := s.Steps
		v := s.Next()
		if v < 0 {
			v = -v
		}
		stepsByMag[v] = append(stepsByMag[v], s.Steps-before)
	}
	avg := func(xs []uint64) float64 {
		var t uint64
		for _, x := range xs {
			t += x
		}
		return float64(t) / float64(len(xs))
	}
	if len(stepsByMag[0]) == 0 || len(stepsByMag[3]) == 0 {
		t.Skip("not enough samples")
	}
	if avg(stepsByMag[3]) <= avg(stepsByMag[0]) {
		t.Fatalf("expected larger magnitudes to take more scan work: mag0=%.2f mag3=%.2f",
			avg(stepsByMag[0]), avg(stepsByMag[3]))
	}
}

func TestConvolutionVariance(t *testing.T) {
	table := tbl(t, "2", 64)
	base := NewKnuthYao(table, prng.MustChaCha20([]byte("conv")))
	c := &Convolution{Base: base, K: 4}
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := float64(c.Next())
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	// σ² = σ_b²(1+k²) = 4·17 = 68.
	if math.Abs(variance-68) > 3 {
		t.Fatalf("conv variance = %.2f, want ≈ 68", variance)
	}
	if c.Name() == "" || c.BitsUsed() == 0 {
		t.Fatal("metadata missing")
	}
}

func TestApplySign(t *testing.T) {
	if applySign(5, 0) != 5 || applySign(5, 1) != -5 || applySign(0, 1) != 0 {
		t.Fatalf("applySign broken: %d %d %d", applySign(5, 0), applySign(5, 1), applySign(0, 1))
	}
}

func TestBranchFreeComparators(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {^uint64(0), 0}, {0, ^uint64(0)},
		{1 << 63, 1}, {1, 1 << 63}, {^uint64(0), ^uint64(0)},
		{12345, 12345}, {1 << 63, 1 << 63}, {(1 << 63) - 1, 1 << 63},
	}
	for _, c := range cases {
		wantLess := uint64(0)
		if c.a < c.b {
			wantLess = 1
		}
		wantEq := uint64(0)
		if c.a == c.b {
			wantEq = 1
		}
		if isLess(c.a, c.b) != wantLess {
			t.Errorf("isLess(%d,%d) = %d, want %d", c.a, c.b, isLess(c.a, c.b), wantLess)
		}
		if isEqual(c.a, c.b) != wantEq {
			t.Errorf("isEqual(%d,%d) = %d, want %d", c.a, c.b, isEqual(c.a, c.b), wantEq)
		}
		if isGreater(c.a, c.b) != isLess(c.b, c.a) {
			t.Errorf("isGreater inconsistent at (%d,%d)", c.a, c.b)
		}
	}
}

func TestKnuthYaoBitsPerSampleSmall(t *testing.T) {
	// Knuth-Yao needs ≈ entropy + 2 bits on average — the reason the paper
	// contrasts its 128-bit constant-time cost against this.
	table := tbl(t, "2", 64)
	s := NewKnuthYao(table, prng.MustChaCha20([]byte("bits")))
	const n = 50000
	for i := 0; i < n; i++ {
		s.Next()
	}
	avg := float64(s.BitsUsed()) / n
	if avg < 3 || avg > 9 {
		t.Fatalf("avg bits/sample = %.2f", avg)
	}
}

// randTestProgram builds a random straight-line circuit for stream tests.
func randTestProgram(seed int64) *bitslice.Program {
	rng := rand.New(rand.NewSource(seed))
	numInputs := 6 + rng.Intn(6)
	p := &bitslice.Program{NumInputs: numInputs, NumRegs: numInputs, SignInput: -1}
	ops := []bitslice.Op{bitslice.OpAnd, bitslice.OpOr, bitslice.OpXor, bitslice.OpNot, bitslice.OpAndNot}
	for i := 0; i < 120; i++ {
		dst := p.NumRegs
		p.NumRegs++
		p.Code = append(p.Code, bitslice.Instr{
			Op: ops[rng.Intn(len(ops))], A: rng.Intn(dst), B: rng.Intn(dst), Dst: dst,
		})
	}
	p.ValueBits = 4
	p.MaxSupport = 15
	for i := 0; i < p.ValueBits; i++ {
		p.Outputs = append(p.Outputs, rng.Intn(p.NumRegs))
	}
	return p
}

// TestBitslicedMatchesReferenceInterpreter pins the optimized fast path
// (register allocation, fused dispatch, bulk word reads, transpose
// unpacking) to the pre-optimization reference: at width 1 the sampler
// consumes the stream in the historical order, so the same seed must
// yield a bit-identical sample stream and bit accounting.
func TestBitslicedMatchesReferenceInterpreter(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		prog := randTestProgram(seed)
		if err := prog.Validate(); err != nil {
			t.Fatal(err)
		}
		s := NewBitslicedWidth("opt", bitslice.Optimize(prog), prng.MustChaCha20([]byte("ref-stream")), 1)
		// The canonical baseline sampler must match the same stream (it is
		// the fixed point benchmarks compare against; this guards it
		// against drift).
		canon := NewReference(prog, prng.MustChaCha20([]byte("ref-stream")))

		// Reference: the historical refill, word by word, per-bit unpack,
		// written out independently of any shared helper.
		rd := prng.NewBitReader(prng.MustChaCha20([]byte("ref-stream")))
		in := make([]uint64, prog.NumInputs)
		regs := make([]uint64, prog.NumRegs)
		out := make([]uint64, len(prog.Outputs))
		for batch := 0; batch < 10; batch++ {
			for i := range in {
				in[i] = rd.Uint64()
			}
			sign := rd.Uint64()
			prog.RunInto(in, regs, out)
			for l := 0; l < 64; l++ {
				mag := 0
				for i, w := range out {
					mag |= int((w>>uint(l))&1) << uint(i)
				}
				want := applySign(mag, (sign>>uint(l))&1)
				if got := s.Next(); got != want {
					t.Fatalf("seed %d batch %d lane %d: optimized %d, reference %d", seed, batch, l, got, want)
				}
				if got := canon.Next(); got != want {
					t.Fatalf("seed %d batch %d lane %d: Reference sampler %d, inline reference %d", seed, batch, l, got, want)
				}
			}
			if s.BitsUsed() != rd.BitsRead {
				t.Fatalf("seed %d batch %d: BitsUsed %d, reference %d", seed, batch, s.BitsUsed(), rd.BitsRead)
			}
		}
		if s.Batches != 10 {
			t.Fatalf("Batches = %d, want 10", s.Batches)
		}
	}
}

// TestWidthsAgreeOnDistribution: every width draws from the same
// distribution — same multiset statistics over a long run (widths change
// the stream layout, never the per-sample law).
func TestWidthsAgreeOnDistribution(t *testing.T) {
	prog := randTestProgram(99)
	opt := bitslice.Optimize(prog)
	const n = 64 * 256
	counts := make(map[int]map[int]float64)
	for _, w := range []int{1, 4, 8} {
		s := NewBitslicedWidth("w", opt, prng.MustChaCha20([]byte("dist")), w)
		c := make(map[int]float64)
		for i := 0; i < n; i++ {
			c[s.Next()]++
		}
		counts[w] = c
	}
	for _, w := range []int{4, 8} {
		for v, f1 := range counts[1] {
			fw := counts[w][v]
			if diff := (f1 - fw) / n; diff > 0.05 || diff < -0.05 {
				t.Errorf("w=%d: P(%d) deviates: %v vs %v", w, v, f1/n, fw/n)
			}
		}
	}
}

// TestWideBatchAccounting checks the W-batch refill: bits drawn per
// evaluation and the Batches counter both scale with W.
func TestWideBatchAccounting(t *testing.T) {
	prog := randTestProgram(7)
	opt := bitslice.Optimize(prog)
	for _, w := range []int{2, 4, 8} {
		s := NewBitslicedWidth("w", opt, prng.MustChaCha20([]byte("acct")), w)
		s.Next()
		wantBits := uint64(opt.NumInputs*w+w) * 64
		if s.BitsUsed() != wantBits {
			t.Fatalf("w=%d: BitsUsed %d after one refill, want %d", w, s.BitsUsed(), wantBits)
		}
		if s.Batches != uint64(w) {
			t.Fatalf("w=%d: Batches %d, want %d", w, s.Batches, w)
		}
		dst := make([]int, 64)
		for i := 0; i < w-1; i++ {
			s.NextBatch(dst)
		}
		// Still inside the first wide refill: no new bits drawn.
		if s.BitsUsed() != wantBits {
			t.Fatalf("w=%d: drew bits before the buffer drained", w)
		}
	}
}

// TestCompiledCountsBatches pins the Batches instrumentation shared with
// Bitsliced (samplebench reports both).
func TestCompiledCountsBatches(t *testing.T) {
	fn := func(in, out []uint64) { out[0] = in[0] }
	s := NewCompiled("t", fn, 1, 1, prng.MustChaCha20([]byte("count")))
	dst := make([]int, 64)
	for i := 0; i < 3; i++ {
		s.NextBatch(dst)
	}
	if s.Batches != 3 {
		t.Fatalf("Batches = %d, want 3", s.Batches)
	}
	s.Next() // served from buffer? no: buffer drained exactly — refills
	if s.Batches != 4 {
		t.Fatalf("Batches = %d, want 4", s.Batches)
	}
}

// TestNextBatchDrainsBuffered pins the no-discard contract: interleaving
// Next and NextBatch yields the same stream as Next alone — NextBatch
// serves buffered samples before spending a fresh circuit evaluation.
func TestNextBatchDrainsBuffered(t *testing.T) {
	// Identity circuit: one input word, the magnitude bit is the input.
	prog := &bitslice.Program{
		NumInputs: 1, NumRegs: 1, Outputs: []int{0},
		SignInput: -1, ValueBits: 1, MaxSupport: 1,
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	fn := func(in, out []uint64) { out[0] = in[0] }

	for _, mk := range []struct {
		name string
		make func() BatchSampler
	}{
		{"bitsliced", func() BatchSampler {
			return NewBitsliced("t", prog, prng.MustChaCha20([]byte("drain")))
		}},
		{"compiled", func() BatchSampler {
			return NewCompiled("t", fn, 1, 1, prng.MustChaCha20([]byte("drain")))
		}},
		{"bitsliced-w1", func() BatchSampler {
			return NewBitslicedWidth("t", bitslice.Optimize(prog), prng.MustChaCha20([]byte("drain")), 1)
		}},
		{"bitsliced-w4", func() BatchSampler {
			return NewBitslicedWidth("t", bitslice.Optimize(prog), prng.MustChaCha20([]byte("drain")), 4)
		}},
	} {
		t.Run(mk.name, func(t *testing.T) {
			mixed, pure := mk.make(), mk.make()
			var got, want []int
			for i := 0; i < 10; i++ {
				got = append(got, mixed.Next())
			}
			batch := make([]int, 64)
			mixed.NextBatch(batch)
			got = append(got, batch...)
			for i := 0; i < 10; i++ {
				got = append(got, mixed.Next())
			}
			for range got {
				want = append(want, pure.Next())
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sample %d: mixed %d, pure %d", i, got[i], want[i])
				}
			}
		})
	}
}
