package sampler

import "ctgauss/internal/prng"

// Compiled is the production form of the bitsliced sampler: the circuit
// compiled to Go source by the generator tool (cmd/gaussgen) rather than
// interpreted instruction by instruction — exactly how the paper deploys
// its sampler (its tool emits C that is compiled into Falcon).  The
// instruction interpreter in Bitsliced costs a dispatch per word op; the
// compiled function runs at native speed.
type Compiled struct {
	fn        func(in, out []uint64)
	numInputs int
	valueBits int
	rd        *prng.BitReader
	name      string
	in        []uint64
	out       []uint64
	batchBuf
	Batches uint64 // number of 64-sample batches generated
}

// NewCompiled wraps a generated circuit function.
func NewCompiled(name string, fn func(in, out []uint64), numInputs, valueBits int, src prng.Source) *Compiled {
	return &Compiled{
		fn:        fn,
		numInputs: numInputs,
		valueBits: valueBits,
		rd:        prng.NewBitReader(src),
		name:      name,
		in:        make([]uint64, numInputs),
		out:       make([]uint64, valueBits),
		batchBuf:  newBatchBuf(64),
	}
}

// Name implements Sampler.
func (c *Compiled) Name() string { return c.name }

// BitsUsed implements Sampler.
func (c *Compiled) BitsUsed() uint64 { return c.rd.BitsRead }

func (c *Compiled) refill() {
	c.rd.FillWords(c.in)
	sign := c.rd.Uint64()
	c.fn(c.in, c.out)
	unpackSigned(c.out, 1, sign, c.batch[:64])
	c.used = 0
	c.Batches++
}

// Next implements Sampler.
func (c *Compiled) Next() int { return c.next(c.refill) }

// NextBatch implements BatchSampler; see batchBuf for the drain-first
// contract.
func (c *Compiled) NextBatch(dst []int) { c.nextBatch(dst, c.refill) }
