// Package sampler implements every discrete Gaussian sampler the paper
// evaluates: the constant-time bitsliced Knuth-Yao sampler (this work and
// the simple-minimization baseline of [21]), three CDT-based samplers
// (binary search [26], byte-scanning [13], and the linear-search
// constant-time variant [7]), the reference column-scanning Knuth-Yao
// sampler (Alg. 1), and the convolution combiner of [25,28] for large σ.
//
// All samplers return signed samples: the magnitude follows the folded
// distribution (p₀ = D(0), p_v = 2·D(v)), and an independent sign bit maps
// v to ±v, which reproduces D_σ exactly because ±0 coincide.
package sampler

import (
	"fmt"
	"math/big"

	"ctgauss/internal/bitslice"
	"ctgauss/internal/bitslice/dispatch"
	"ctgauss/internal/ddg"
	"ctgauss/internal/gaussian"
	"ctgauss/internal/prng"
)

// Sampler draws signed discrete Gaussian samples.
type Sampler interface {
	// Next returns one signed sample.
	Next() int
	// Name identifies the sampler in experiment output.
	Name() string
	// BitsUsed reports the total random bits consumed so far.
	BitsUsed() uint64
}

// BatchSampler is implemented by samplers that natively produce batches of
// 64 samples (the bitsliced designs).
type BatchSampler interface {
	Sampler
	// NextBatch fills dst (len ≥ 64) with 64 signed samples.
	NextBatch(dst []int)
}

// applySign maps a folded magnitude and a sign bit to a signed sample
// without branching on secrets: z = (mag XOR -s) + s.
func applySign(mag int, s uint64) int {
	m := uint64(mag)
	neg := -(s & 1)
	return int(int64((m ^ neg) + (s & 1)))
}

// unpackSigned expands packed magnitude planes and one sign word into 64
// signed samples via a single 64×64 bit-matrix transpose.  Plane i is
// planes[i*stride] (stride lets the wide sampler address one lane block
// of its output-major buffer without copying it out first).
func unpackSigned(planes []uint64, stride int, sign uint64, dst []int) {
	var tr [64]uint64
	n := (len(planes) + stride - 1) / stride
	for i := 0; i < n; i++ {
		tr[i] = planes[i*stride]
	}
	bitslice.Transpose64(&tr)
	for l := 0; l < 64; l++ {
		dst[l] = applySign(int(tr[l]), (sign>>uint(l))&1)
	}
}

// batchBuf is the sample buffer behind the bitsliced samplers,
// implementing the shared Next/NextBatch contract over a refill function
// that regenerates batch and resets used.  NextBatch drains samples
// already buffered by Next before spending a fresh circuit evaluation, so
// nothing is discarded; the buffer holds one refill's worth of samples
// (64 for the per-batch samplers, width×64 for the wide interpreter).
type batchBuf struct {
	batch []int
	used  int
}

// newBatchBuf allocates an empty n-sample buffer (first use refills).
func newBatchBuf(n int) batchBuf { return batchBuf{batch: make([]int, n), used: n} }

func (b *batchBuf) next(refill func()) int {
	if b.used == len(b.batch) {
		refill()
	}
	v := b.batch[b.used]
	b.used++
	return v
}

func (b *batchBuf) nextBatch(dst []int, refill func()) {
	if len(dst) < 64 {
		panic(fmt.Sprintf("sampler: NextBatch dst has len %d, need ≥ 64", len(dst)))
	}
	n := 0
	for b.used < len(b.batch) && n < 64 {
		dst[n] = b.batch[b.used]
		b.used++
		n++
	}
	if n < 64 {
		refill()
		m := 64 - n
		copy(dst[n:64], b.batch[:m])
		b.used = m
	}
}

// DefaultWidth is the portable evaluation width: every circuit
// evaluation runs each instruction over DefaultWidth contiguous words
// (DefaultWidth×64 lanes), which amortizes interpreter dispatch and
// mispredicted branches across the lanes — the dominant cost of width-1
// interpretation.  Width-dependent callers (golden vectors, stream
// comparisons) pin this; throughput paths should use NativeWidth, which
// widens with the active SIMD backend.
const DefaultWidth = 8

// NativeWidth returns the evaluation width the active SIMD backend is
// most efficient at (8 portable/AVX2, 16 AVX-512).  NewBitsliced and
// NewBitslicedOpt samplers evaluate at this width; note the randomness
// stream layout depends on the width (W-batch blocks), so fixed-stream
// consumers must pin an explicit width via NewBitslicedWidth instead.
func NativeWidth() int { return dispatch.Active().NativeWidth() }

// Bitsliced is the paper's constant-time sampler: a compiled straight-line
// circuit evaluated on W×64 lanes of packed random bits per pass.  The
// circuit runs in its register-allocated Optimized form (dense slot file,
// fused dispatch, wide lanes) and batches unpack through one 64×64
// bit-matrix transpose per 64 lanes.
//
// Randomness is consumed in W-batch blocks: NumInputs×W input words
// (input-major) followed by W sign words.  At width 1 this is exactly the
// draw order of the original per-batch interpreter, so a width-1 sampler
// is stream-compatible with the reference implementation; wider samplers
// trade stream layout for throughput (the per-sample distribution is
// identical at any width).
type Bitsliced struct {
	opt   *bitslice.Optimized
	rd    *prng.BitReader
	name  string
	w     int
	in    []uint64 // NumInputs×W, input-major
	slots []uint64 // NumSlots×W, slot-major
	out   []uint64 // ValueBits×W, output-major
	signs []uint64
	batchBuf
	// Batches counts 64-sample batches generated (W per evaluation).
	Batches uint64
}

// NewBitsliced wraps a compiled program and a random source, optimizing
// the program first and evaluating at the active backend's native width.
// When many samplers share one circuit, optimize once and use
// NewBitslicedOpt (the registry's Artifact does this).
func NewBitsliced(name string, prog *bitslice.Program, src prng.Source) *Bitsliced {
	return NewBitslicedOpt(name, bitslice.Optimize(prog), src)
}

// NewBitslicedOpt wraps an already-optimized circuit and a random source
// at the active backend's native width (NativeWidth).  Callers that need
// a width-stable randomness stream must use NewBitslicedWidth.
func NewBitslicedOpt(name string, opt *bitslice.Optimized, src prng.Source) *Bitsliced {
	return NewBitslicedWidth(name, opt, src, NativeWidth())
}

// NewBitslicedWidth wraps an optimized circuit with an explicit
// evaluation width w ≥ 1 (1 = the reference stream layout, 8 or 16 =
// the SIMD kernel widths, 512 or 1024 lanes per pass).
func NewBitslicedWidth(name string, opt *bitslice.Optimized, src prng.Source, w int) *Bitsliced {
	if w < 1 {
		panic(fmt.Sprintf("sampler: width %d < 1", w))
	}
	return &Bitsliced{
		opt:      opt,
		rd:       prng.NewBitReader(src),
		name:     name,
		w:        w,
		in:       make([]uint64, opt.NumInputs*w),
		slots:    opt.NewSlots(w),
		out:      make([]uint64, len(opt.Outputs)*w),
		signs:    make([]uint64, w),
		batchBuf: newBatchBuf(w * 64),
	}
}

// Name implements Sampler.
func (b *Bitsliced) Name() string { return b.name }

// BitsUsed implements Sampler.
func (b *Bitsliced) BitsUsed() uint64 { return b.rd.BitsRead }

// Width returns the evaluation width W.
func (b *Bitsliced) Width() int { return b.w }

// Program exposes the compiled circuit (op counts for the cost model).
func (b *Bitsliced) Program() *bitslice.Program { return b.opt.Program() }

// Optimized exposes the evaluation form actually executed.
func (b *Bitsliced) Optimized() *bitslice.Optimized { return b.opt }

func (b *Bitsliced) refill() {
	b.rd.FillWords(b.in)
	b.rd.FillWords(b.signs)
	b.opt.RunWideInto(b.w, b.in, b.slots, b.out)
	for blk := 0; blk < b.w; blk++ {
		base := blk * 64
		unpackSigned(b.out[blk:], b.w, b.signs[blk], b.batch[base:base+64])
	}
	b.used = 0
	b.Batches += uint64(b.w)
}

// Next implements Sampler.
func (b *Bitsliced) Next() int { return b.next(b.refill) }

// NextBatch implements BatchSampler; see batchBuf for the drain-first
// contract.
func (b *Bitsliced) NextBatch(dst []int) { b.nextBatch(dst, b.refill) }

// KnuthYao is the reference non-constant-time column-scanning sampler
// (Algorithm 1): it consumes one bit per tree level and stops at a leaf.
type KnuthYao struct {
	matrix [][]byte
	rd     *prng.BitReader
}

// NewKnuthYao builds the reference sampler over a probability table.
func NewKnuthYao(t *gaussian.Table, src prng.Source) *KnuthYao {
	return &KnuthYao{matrix: t.Matrix(), rd: prng.NewBitReader(src)}
}

// Name implements Sampler.
func (k *KnuthYao) Name() string { return "knuth-yao-ref" }

// BitsUsed implements Sampler.
func (k *KnuthYao) BitsUsed() uint64 { return k.rd.BitsRead }

// Next implements Sampler.
func (k *KnuthYao) Next() int {
	for {
		v, _, err := ddg.Scan(k.matrix, ddg.BitSourceFunc(k.rd.Bit))
		if err != nil {
			continue // fell off the truncated tree (prob ≈ 2^-n): retry
		}
		return applySign(v, uint64(k.rd.Bit()))
	}
}

// Convolution combines two base samples as z = z₁ + k·z₂, realising a
// discrete Gaussian with σ ≈ σ_base·√(1+k²) from a small base sampler —
// the construction of [25,28] that the paper's base samplers feed.
type Convolution struct {
	Base Sampler
	K    int
}

// Name implements Sampler.
func (c *Convolution) Name() string { return fmt.Sprintf("conv(%s,k=%d)", c.Base.Name(), c.K) }

// BitsUsed implements Sampler.
func (c *Convolution) BitsUsed() uint64 { return c.Base.BitsUsed() }

// Next implements Sampler.
func (c *Convolution) Next() int {
	return c.Base.Next() + c.K*c.Base.Next()
}

// cdtEntry is a 128-bit left-aligned cumulative probability.
type cdtEntry struct{ hi, lo uint64 }

func cdtLess(a, b cdtEntry) bool {
	if a.hi != b.hi {
		return a.hi < b.hi
	}
	return a.lo < b.lo
}

// buildCDT converts the folded probability table into left-aligned 128-bit
// cumulative values: cdt[v] = Σ_{u ≤ v} p_u · 2^(128-n).
func buildCDT(t *gaussian.Table) []cdtEntry {
	shift := uint(128 - t.Params.N)
	cum := new(big.Int)
	out := make([]cdtEntry, t.Support+1)
	for v, p := range t.Probs {
		cum.Add(cum, p)
		s := new(big.Int).Lsh(cum, shift)
		lo := new(big.Int).And(s, maxU64)
		hi := new(big.Int).Rsh(s, 64)
		hi.And(hi, maxU64)
		out[v] = cdtEntry{hi: hi.Uint64(), lo: lo.Uint64()}
	}
	return out
}

var maxU64 = new(big.Int).SetUint64(^uint64(0))

// CDT is the binary-search CDT sampler of Peikert [26] — the fastest
// non-constant-time baseline in Table 1 after byte-scanning.
type CDT struct {
	table []cdtEntry
	rd    *prng.BitReader
	// Steps counts binary-search iterations (instrumentation; leaks).
	Steps uint64
}

// NewCDT builds the sampler.
func NewCDT(t *gaussian.Table, src prng.Source) *CDT {
	return &CDT{table: buildCDT(t), rd: prng.NewBitReader(src)}
}

// Name implements Sampler.
func (c *CDT) Name() string { return "cdt-binary" }

// BitsUsed implements Sampler.
func (c *CDT) BitsUsed() uint64 { return c.rd.BitsRead }

// drawEntry reads 16 random bytes and assembles them most-significant
// first, so that every CDT variant consumes the identical random value
// from the identical stream (tested against each other).
func drawEntry(rd *prng.BitReader) cdtEntry {
	var b [16]byte
	rd.Bytes(b[:])
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[8+i])
	}
	return cdtEntry{hi: hi, lo: lo}
}

// Next implements Sampler.
func (c *CDT) Next() int {
	r := drawEntry(c.rd)
	lo, hi := 0, len(c.table)
	for lo < hi {
		c.Steps++
		mid := (lo + hi) / 2
		if cdtLess(r, c.table[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(c.table) {
		lo = len(c.table) - 1 // r beyond last cumulative (mass deficit)
	}
	return applySign(lo, uint64(c.rd.Bit()))
}

// ByteScanCDT is the byte-scanning sampler of Du-Bai [13]: it walks the
// table comparing one byte at a time, usually resolving on the first byte
// — fast on average, timing leaks the sample.
type ByteScanCDT struct {
	// bytes[v][i] is byte i (most significant first) of cdt[v].
	bytes [][]byte
	rd    *prng.BitReader
	// Steps counts table-scan iterations — instrumentation for the
	// constant-time analysis (ctcheck): it correlates with the sample.
	Steps uint64
}

// NewByteScanCDT builds the sampler.
func NewByteScanCDT(t *gaussian.Table, src prng.Source) *ByteScanCDT {
	raw := buildCDT(t)
	bs := make([][]byte, len(raw))
	for v, e := range raw {
		b := make([]byte, 16)
		for i := 0; i < 8; i++ {
			b[i] = byte(e.hi >> uint(56-8*i))
			b[8+i] = byte(e.lo >> uint(56-8*i))
		}
		bs[v] = b
	}
	return &ByteScanCDT{bytes: bs, rd: prng.NewBitReader(src)}
}

// Name implements Sampler.
func (c *ByteScanCDT) Name() string { return "cdt-bytescan" }

// BitsUsed implements Sampler.
func (c *ByteScanCDT) BitsUsed() uint64 { return c.rd.BitsRead }

// Next implements Sampler.
func (c *ByteScanCDT) Next() int {
	var r [16]byte
	c.rd.Bytes(r[:])
	// Find the first table entry strictly greater than r, scanning bytes
	// most-significant first with early exit.
	for v := 0; v < len(c.bytes); v++ {
		c.Steps++
		e := c.bytes[v]
		greater := false
		for i := 0; i < 16; i++ {
			c.Steps++
			if e[i] != r[i] {
				greater = e[i] > r[i]
				break
			}
		}
		if greater {
			return applySign(v, uint64(c.rd.Bit()))
		}
	}
	return applySign(len(c.bytes)-1, uint64(c.rd.Bit()))
}

// LinearCDT is the constant-time linear-search CDT sampler of Bos et
// al. [7]: it compares the random value against every table entry with
// branch-free arithmetic and accumulates the index.
type LinearCDT struct {
	table []cdtEntry
	rd    *prng.BitReader
	// Steps counts comparison iterations; it is the same for every sample
	// by construction (full table walk).
	Steps uint64
}

// NewLinearCDT builds the sampler.
func NewLinearCDT(t *gaussian.Table, src prng.Source) *LinearCDT {
	return &LinearCDT{table: buildCDT(t), rd: prng.NewBitReader(src)}
}

// Name implements Sampler.
func (c *LinearCDT) Name() string { return "cdt-linear-ct" }

// BitsUsed implements Sampler.
func (c *LinearCDT) BitsUsed() uint64 { return c.rd.BitsRead }

// Next implements Sampler.
func (c *LinearCDT) Next() int {
	r := drawEntry(c.rd)
	// index = number of entries ≤ r, computed branch-free over the whole
	// table: for each entry, ge = 1 iff r ≥ entry.
	idx := uint64(0)
	for _, e := range c.table {
		c.Steps++
		hiGT := isGreater(r.hi, e.hi)
		hiEQ := isEqual(r.hi, e.hi)
		loGE := 1 - isLess(r.lo, e.lo)
		ge := hiGT | (hiEQ & loGE)
		idx += ge
	}
	// r < cdt[idx] and r ≥ cdt[idx-1]; clamp deficit overflow branch-free.
	over := isEqual(idx, uint64(len(c.table)))
	idx -= over
	return applySign(int(idx), uint64(c.rd.Bit()))
}

// isLess returns 1 if a < b else 0, branch-free: the borrow bit of a-b,
// computed as ((¬a & b) | ((¬a | b) & (a-b))) >> 63.
func isLess(a, b uint64) uint64 {
	return ((^a & b) | ((^a | b) & (a - b))) >> 63
}

// isGreater returns 1 if a > b else 0, branch-free.
func isGreater(a, b uint64) uint64 { return isLess(b, a) }

// isEqual returns 1 if a == b else 0, branch-free.
func isEqual(a, b uint64) uint64 {
	x := a ^ b
	return ((x | -x) >> 63) ^ 1
}
