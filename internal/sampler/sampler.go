// Package sampler implements every discrete Gaussian sampler the paper
// evaluates: the constant-time bitsliced Knuth-Yao sampler (this work and
// the simple-minimization baseline of [21]), three CDT-based samplers
// (binary search [26], byte-scanning [13], and the linear-search
// constant-time variant [7]), the reference column-scanning Knuth-Yao
// sampler (Alg. 1), and the convolution combiner of [25,28] for large σ.
//
// All samplers return signed samples: the magnitude follows the folded
// distribution (p₀ = D(0), p_v = 2·D(v)), and an independent sign bit maps
// v to ±v, which reproduces D_σ exactly because ±0 coincide.
package sampler

import (
	"fmt"
	"math/big"

	"ctgauss/internal/bitslice"
	"ctgauss/internal/ddg"
	"ctgauss/internal/gaussian"
	"ctgauss/internal/prng"
)

// Sampler draws signed discrete Gaussian samples.
type Sampler interface {
	// Next returns one signed sample.
	Next() int
	// Name identifies the sampler in experiment output.
	Name() string
	// BitsUsed reports the total random bits consumed so far.
	BitsUsed() uint64
}

// BatchSampler is implemented by samplers that natively produce batches of
// 64 samples (the bitsliced designs).
type BatchSampler interface {
	Sampler
	// NextBatch fills dst (len ≥ 64) with 64 signed samples.
	NextBatch(dst []int)
}

// applySign maps a folded magnitude and a sign bit to a signed sample
// without branching on secrets: z = (mag XOR -s) + s.
func applySign(mag int, s uint64) int {
	m := uint64(mag)
	neg := -(s & 1)
	return int(int64((m ^ neg) + (s & 1)))
}

// batchBuf is the 64-sample buffer behind the bitsliced samplers,
// implementing the shared Next/NextBatch contract over a refill function
// that regenerates batch and resets used.  NextBatch drains samples
// already buffered by Next before spending a fresh circuit evaluation, so
// nothing is discarded and batch-only callers get exactly one evaluation
// per call.
type batchBuf struct {
	batch [64]int
	used  int
}

func (b *batchBuf) next(refill func()) int {
	if b.used == 64 {
		refill()
	}
	v := b.batch[b.used]
	b.used++
	return v
}

func (b *batchBuf) nextBatch(dst []int, refill func()) {
	if len(dst) < 64 {
		panic(fmt.Sprintf("sampler: NextBatch dst has len %d, need ≥ 64", len(dst)))
	}
	n := 0
	for b.used < 64 && n < 64 {
		dst[n] = b.batch[b.used]
		b.used++
		n++
	}
	if n < 64 {
		refill()
		m := 64 - n
		copy(dst[n:64], b.batch[:m])
		b.used = m
	}
}

// Bitsliced is the paper's constant-time sampler: a compiled straight-line
// circuit evaluated on 64 lanes of packed random bits.
type Bitsliced struct {
	prog *bitslice.Program
	rd   *prng.BitReader
	name string
	in   []uint64
	regs []uint64
	out  []uint64
	batchBuf
	Batches uint64 // number of 64-sample batches generated
}

// NewBitsliced wraps a compiled program and a random source.
func NewBitsliced(name string, prog *bitslice.Program, src prng.Source) *Bitsliced {
	return &Bitsliced{
		prog:     prog,
		rd:       prng.NewBitReader(src),
		name:     name,
		in:       make([]uint64, prog.NumInputs),
		regs:     make([]uint64, prog.NumRegs),
		out:      make([]uint64, len(prog.Outputs)),
		batchBuf: batchBuf{used: 64},
	}
}

// Name implements Sampler.
func (b *Bitsliced) Name() string { return b.name }

// BitsUsed implements Sampler.
func (b *Bitsliced) BitsUsed() uint64 { return b.rd.BitsRead }

// Program exposes the compiled circuit (op counts for the cost model).
func (b *Bitsliced) Program() *bitslice.Program { return b.prog }

func (b *Bitsliced) refill() {
	b.rd.Words(b.in)
	sign := b.rd.Uint64()
	b.prog.RunInto(b.in, b.regs, b.out)
	for l := 0; l < 64; l++ {
		mag := 0
		for i, w := range b.out {
			mag |= int((w>>uint(l))&1) << uint(i)
		}
		b.batch[l] = applySign(mag, (sign>>uint(l))&1)
	}
	b.used = 0
	b.Batches++
}

// Next implements Sampler.
func (b *Bitsliced) Next() int { return b.next(b.refill) }

// NextBatch implements BatchSampler; see batchBuf for the drain-first
// contract.
func (b *Bitsliced) NextBatch(dst []int) { b.nextBatch(dst, b.refill) }

// KnuthYao is the reference non-constant-time column-scanning sampler
// (Algorithm 1): it consumes one bit per tree level and stops at a leaf.
type KnuthYao struct {
	matrix [][]byte
	rd     *prng.BitReader
}

// NewKnuthYao builds the reference sampler over a probability table.
func NewKnuthYao(t *gaussian.Table, src prng.Source) *KnuthYao {
	return &KnuthYao{matrix: t.Matrix(), rd: prng.NewBitReader(src)}
}

// Name implements Sampler.
func (k *KnuthYao) Name() string { return "knuth-yao-ref" }

// BitsUsed implements Sampler.
func (k *KnuthYao) BitsUsed() uint64 { return k.rd.BitsRead }

// Next implements Sampler.
func (k *KnuthYao) Next() int {
	for {
		v, _, err := ddg.Scan(k.matrix, ddg.BitSourceFunc(k.rd.Bit))
		if err != nil {
			continue // fell off the truncated tree (prob ≈ 2^-n): retry
		}
		return applySign(v, uint64(k.rd.Bit()))
	}
}

// Convolution combines two base samples as z = z₁ + k·z₂, realising a
// discrete Gaussian with σ ≈ σ_base·√(1+k²) from a small base sampler —
// the construction of [25,28] that the paper's base samplers feed.
type Convolution struct {
	Base Sampler
	K    int
}

// Name implements Sampler.
func (c *Convolution) Name() string { return fmt.Sprintf("conv(%s,k=%d)", c.Base.Name(), c.K) }

// BitsUsed implements Sampler.
func (c *Convolution) BitsUsed() uint64 { return c.Base.BitsUsed() }

// Next implements Sampler.
func (c *Convolution) Next() int {
	return c.Base.Next() + c.K*c.Base.Next()
}

// cdtEntry is a 128-bit left-aligned cumulative probability.
type cdtEntry struct{ hi, lo uint64 }

func cdtLess(a, b cdtEntry) bool {
	if a.hi != b.hi {
		return a.hi < b.hi
	}
	return a.lo < b.lo
}

// buildCDT converts the folded probability table into left-aligned 128-bit
// cumulative values: cdt[v] = Σ_{u ≤ v} p_u · 2^(128-n).
func buildCDT(t *gaussian.Table) []cdtEntry {
	shift := uint(128 - t.Params.N)
	cum := new(big.Int)
	out := make([]cdtEntry, t.Support+1)
	for v, p := range t.Probs {
		cum.Add(cum, p)
		s := new(big.Int).Lsh(cum, shift)
		lo := new(big.Int).And(s, maxU64)
		hi := new(big.Int).Rsh(s, 64)
		hi.And(hi, maxU64)
		out[v] = cdtEntry{hi: hi.Uint64(), lo: lo.Uint64()}
	}
	return out
}

var maxU64 = new(big.Int).SetUint64(^uint64(0))

// CDT is the binary-search CDT sampler of Peikert [26] — the fastest
// non-constant-time baseline in Table 1 after byte-scanning.
type CDT struct {
	table []cdtEntry
	rd    *prng.BitReader
	// Steps counts binary-search iterations (instrumentation; leaks).
	Steps uint64
}

// NewCDT builds the sampler.
func NewCDT(t *gaussian.Table, src prng.Source) *CDT {
	return &CDT{table: buildCDT(t), rd: prng.NewBitReader(src)}
}

// Name implements Sampler.
func (c *CDT) Name() string { return "cdt-binary" }

// BitsUsed implements Sampler.
func (c *CDT) BitsUsed() uint64 { return c.rd.BitsRead }

// drawEntry reads 16 random bytes and assembles them most-significant
// first, so that every CDT variant consumes the identical random value
// from the identical stream (tested against each other).
func drawEntry(rd *prng.BitReader) cdtEntry {
	var b [16]byte
	rd.Bytes(b[:])
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[8+i])
	}
	return cdtEntry{hi: hi, lo: lo}
}

// Next implements Sampler.
func (c *CDT) Next() int {
	r := drawEntry(c.rd)
	lo, hi := 0, len(c.table)
	for lo < hi {
		c.Steps++
		mid := (lo + hi) / 2
		if cdtLess(r, c.table[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo >= len(c.table) {
		lo = len(c.table) - 1 // r beyond last cumulative (mass deficit)
	}
	return applySign(lo, uint64(c.rd.Bit()))
}

// ByteScanCDT is the byte-scanning sampler of Du-Bai [13]: it walks the
// table comparing one byte at a time, usually resolving on the first byte
// — fast on average, timing leaks the sample.
type ByteScanCDT struct {
	// bytes[v][i] is byte i (most significant first) of cdt[v].
	bytes [][]byte
	rd    *prng.BitReader
	// Steps counts table-scan iterations — instrumentation for the
	// constant-time analysis (ctcheck): it correlates with the sample.
	Steps uint64
}

// NewByteScanCDT builds the sampler.
func NewByteScanCDT(t *gaussian.Table, src prng.Source) *ByteScanCDT {
	raw := buildCDT(t)
	bs := make([][]byte, len(raw))
	for v, e := range raw {
		b := make([]byte, 16)
		for i := 0; i < 8; i++ {
			b[i] = byte(e.hi >> uint(56-8*i))
			b[8+i] = byte(e.lo >> uint(56-8*i))
		}
		bs[v] = b
	}
	return &ByteScanCDT{bytes: bs, rd: prng.NewBitReader(src)}
}

// Name implements Sampler.
func (c *ByteScanCDT) Name() string { return "cdt-bytescan" }

// BitsUsed implements Sampler.
func (c *ByteScanCDT) BitsUsed() uint64 { return c.rd.BitsRead }

// Next implements Sampler.
func (c *ByteScanCDT) Next() int {
	var r [16]byte
	c.rd.Bytes(r[:])
	// Find the first table entry strictly greater than r, scanning bytes
	// most-significant first with early exit.
	for v := 0; v < len(c.bytes); v++ {
		c.Steps++
		e := c.bytes[v]
		greater := false
		for i := 0; i < 16; i++ {
			c.Steps++
			if e[i] != r[i] {
				greater = e[i] > r[i]
				break
			}
		}
		if greater {
			return applySign(v, uint64(c.rd.Bit()))
		}
	}
	return applySign(len(c.bytes)-1, uint64(c.rd.Bit()))
}

// LinearCDT is the constant-time linear-search CDT sampler of Bos et
// al. [7]: it compares the random value against every table entry with
// branch-free arithmetic and accumulates the index.
type LinearCDT struct {
	table []cdtEntry
	rd    *prng.BitReader
	// Steps counts comparison iterations; it is the same for every sample
	// by construction (full table walk).
	Steps uint64
}

// NewLinearCDT builds the sampler.
func NewLinearCDT(t *gaussian.Table, src prng.Source) *LinearCDT {
	return &LinearCDT{table: buildCDT(t), rd: prng.NewBitReader(src)}
}

// Name implements Sampler.
func (c *LinearCDT) Name() string { return "cdt-linear-ct" }

// BitsUsed implements Sampler.
func (c *LinearCDT) BitsUsed() uint64 { return c.rd.BitsRead }

// Next implements Sampler.
func (c *LinearCDT) Next() int {
	r := drawEntry(c.rd)
	// index = number of entries ≤ r, computed branch-free over the whole
	// table: for each entry, ge = 1 iff r ≥ entry.
	idx := uint64(0)
	for _, e := range c.table {
		c.Steps++
		hiGT := isGreater(r.hi, e.hi)
		hiEQ := isEqual(r.hi, e.hi)
		loGE := 1 - isLess(r.lo, e.lo)
		ge := hiGT | (hiEQ & loGE)
		idx += ge
	}
	// r < cdt[idx] and r ≥ cdt[idx-1]; clamp deficit overflow branch-free.
	over := isEqual(idx, uint64(len(c.table)))
	idx -= over
	return applySign(int(idx), uint64(c.rd.Bit()))
}

// isLess returns 1 if a < b else 0, branch-free: the borrow bit of a-b,
// computed as ((¬a & b) | ((¬a | b) & (a-b))) >> 63.
func isLess(a, b uint64) uint64 {
	return ((^a & b) | ((^a | b) & (a - b))) >> 63
}

// isGreater returns 1 if a > b else 0, branch-free.
func isGreater(a, b uint64) uint64 { return isLess(b, a) }

// isEqual returns 1 if a == b else 0, branch-free.
func isEqual(a, b uint64) uint64 {
	x := a ^ b
	return ((x | -x) >> 63) ^ 1
}
