package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ctgauss/internal/faultinject"
)

// chaosFill is a deterministic fill with per-shard state, mirroring how
// the pool's samplers work: shard s's stream is the integers 0, 1, 2, …
// and reset rewinds a shard to its beginning — the pool's
// rebuild-from-seed semantics.  Only shard s's producer (or the ring
// lock, synchronously) touches next[s], so no locking is needed.
type chaosFill struct {
	next []int
}

func (c *chaosFill) fill(s int, dst []int) {
	for i := range dst {
		dst[i] = c.next[s]
		c.next[s]++
	}
}

func (c *chaosFill) reset(s int) { c.next[s] = 0 }

// takeUntilHealthy retries TakeFrom through the transient
// ErrShardPoisoned window until the shard serves (or the deadline
// expires); any other error fails the test.
func takeUntilHealthy(t *testing.T, e *Engine[int], shard int, dst []int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := e.TakeFrom(nil, shard, dst)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrShardPoisoned) {
			t.Fatalf("TakeFrom during recovery: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never recovered from the injected panic")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosAsyncPanicRecovers pins the tentpole end to end on the
// asynchronous engine: an injected fill panic is recovered on the
// producer goroutine, the shard is poisoned and then restarted (Reset
// first), and the post-recovery stream is exactly the deterministic
// stream the Reset hook rewinds to — nothing torn, nothing skipped.
func TestChaosAsyncPanicRecovers(t *testing.T) {
	defer faultinject.Arm(faultinject.EngineFillPanic, faultinject.Fault{Shard: 0, Count: 1})()
	cf := &chaosFill{next: make([]int, 1)}
	e := New(Config{
		Shards: 1, SlotSize: 8, Depth: 2,
		RestartBackoff: 100 * time.Microsecond, RestartBackoffMax: time.Millisecond,
		Reset: cf.reset,
	}, cf.fill)
	defer e.Close()

	dst := make([]int, 16)
	takeUntilHealthy(t, e, 0, dst)
	for i, v := range dst {
		if v != i {
			t.Fatalf("post-recovery stream: dst[%d] = %d, want %d", i, v, i)
		}
	}
	h := e.Health()[0]
	if h.Restarts != 1 || h.DiscardedRefills != 1 || h.Dead {
		t.Fatalf("health after recovery: %+v", h)
	}
	if h.Poisoned {
		t.Fatal("shard still poisoned after a successful refill")
	}
	l := e.Ledger()
	if l.ProducerRestarts != 1 || l.RefillsDiscarded != 1 || l.ShardsPoisoned != 0 {
		t.Fatalf("ledger after recovery: %+v", l)
	}
}

// TestChaosSyncPanicContained pins the synchronous mode: an inline fill
// panic surfaces as ErrShardPoisoned on the calling draw — not a
// process panic — and the very next draw retries from the Reset state.
func TestChaosSyncPanicContained(t *testing.T) {
	defer faultinject.Arm(faultinject.EngineFillPanic, faultinject.Fault{Shard: faultinject.AnyShard, Count: 1})()
	cf := &chaosFill{next: make([]int, 1)}
	e := New(Config{Shards: 1, SlotSize: 8, Reset: cf.reset}, cf.fill)
	defer e.Close()

	dst := make([]int, 8)
	if err := e.TakeFrom(nil, 0, dst); !errors.Is(err, ErrShardPoisoned) {
		t.Fatalf("injected sync fill panic: err = %v, want ErrShardPoisoned", err)
	}
	if err := e.TakeFrom(nil, 0, dst); err != nil {
		t.Fatalf("draw after recovery: %v", err)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("post-recovery stream: dst[%d] = %d, want %d", i, v, i)
		}
	}
	h := e.Health()[0]
	if h.Restarts != 1 || h.Poisoned || h.Dead {
		t.Fatalf("health after sync recovery: %+v", h)
	}
}

// TestChaosDeadShardFailsFastOthersServe exhausts one shard's restart
// budget with a persistent fault: the shard goes permanently dead (its
// producer exits), draws on it fail fast with ErrShardPoisoned, the
// other shard keeps serving, and Close neither hangs nor leaks
// goroutines.
func TestChaosDeadShardFailsFastOthersServe(t *testing.T) {
	before := runtime.NumGoroutine()
	defer faultinject.Arm(faultinject.EngineFillPanic, faultinject.Fault{Shard: 0})()
	cf := &chaosFill{next: make([]int, 2)}
	e := New(Config{
		Shards: 2, SlotSize: 8, Depth: 2, MaxRestarts: 2,
		RestartBackoff: 100 * time.Microsecond, RestartBackoffMax: time.Millisecond,
		Reset: cf.reset,
	}, cf.fill)

	deadline := time.Now().Add(10 * time.Second)
	for !e.Health()[0].Dead {
		if time.Now().After(deadline) {
			t.Fatal("shard 0 never exhausted its restart budget")
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.TakeFrom(nil, 0, make([]int, 4)); !errors.Is(err, ErrShardPoisoned) {
		t.Fatalf("dead shard draw: err = %v, want ErrShardPoisoned", err)
	}
	dst := make([]int, 8)
	if err := e.TakeFrom(nil, 1, dst); err != nil {
		t.Fatalf("healthy shard draw alongside a dead one: %v", err)
	}
	for i, v := range dst {
		if v != i {
			t.Fatalf("healthy shard stream: dst[%d] = %d, want %d", i, v, i)
		}
	}
	h := e.Health()[0]
	// failures 1, 2, 3 — the third exceeds MaxRestarts=2 and kills it.
	if !h.Poisoned || !h.Dead || h.Restarts != 3 || h.DiscardedRefills != 3 {
		t.Fatalf("dead shard health: %+v", h)
	}
	if l := e.Ledger(); l.ShardsPoisoned != 1 {
		t.Fatalf("ledger poisoned gauge = %d, want 1", l.ShardsPoisoned)
	}

	// Close must not hang even though shard 0's producer already exited.
	e.Close()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive after Close, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosCancellationWhileBlocked pins the consumer-side escape
// hatch: a take blocked on a stalled fill unblocks with ctx.Err() at
// its deadline instead of holding the ring until the producer comes
// back.
func TestChaosCancellationWhileBlocked(t *testing.T) {
	defer faultinject.Arm(faultinject.EngineFillDelay,
		faultinject.Fault{Shard: faultinject.AnyShard, Delay: 200 * time.Millisecond})()
	cf := &chaosFill{next: make([]int, 1)}
	e := New(Config{Shards: 1, SlotSize: 8, Depth: 1}, cf.fill)
	defer e.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	// 64 items need 8 refills at 200ms each — far past the 20ms deadline.
	err := e.TakeFrom(ctx, 0, make([]int, 64))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked take under deadline: err = %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("cancellation took %v to unblock", waited)
	}
}
