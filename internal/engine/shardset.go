package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by ShardSet.Do and Engine.ConsumeFrom after
// Close.
var ErrClosed = errors.New("engine: use after Close")

// ShardSet is the engine runtime's primitive for sharded resources that
// serve request/response work rather than refillable streams (a set of
// Falcon signers over one key, for instance): a fixed set of
// exclusively-locked values with a striped round-robin pick and a
// lifecycle gate.  It replaces the hand-rolled shard-struct + mutex +
// atomic-counter pattern that used to be copied between pool
// implementations.
type ShardSet[T any] struct {
	elems  []*shardElem[T]
	picker *Picker
	closed atomic.Bool
}

type shardElem[T any] struct {
	mu sync.Mutex
	v  T
}

// NewShardSet wraps items (one shard each, order preserved).
func NewShardSet[T any](items []T) *ShardSet[T] {
	s := &ShardSet[T]{picker: NewPicker(len(items))}
	for _, v := range items {
		s.elems = append(s.elems, &shardElem[T]{v: v})
	}
	return s
}

// Do picks a shard round-robin, locks it, and runs fn on its value.
// Safe for any number of concurrent callers; after Close it returns
// ErrClosed without touching a shard.
func (s *ShardSet[T]) Do(fn func(T) error) error {
	return s.DoContext(nil, fn)
}

// DoContext is Do with cancellation: a caller whose context is already
// cancelled fails with ctx.Err() before claiming a shard, and one that
// cancels while queued behind a busy shard unblocks without running fn.
// A nil ctx never cancels.
func (s *ShardSet[T]) DoContext(ctx context.Context, fn func(T) error) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	e := s.elems[s.picker.Pick()]
	if ctx == nil || ctx.Done() == nil {
		e.mu.Lock()
	} else {
		// Bounded wait: poll the lock against cancellation.  Shard hold
		// times are one request's work (a signature), so the poll interval
		// stays invisible next to the work itself.
		for !e.mu.TryLock() {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(200 * time.Microsecond):
			}
		}
	}
	defer e.mu.Unlock()
	return fn(e.v)
}

// Each locks every shard in turn and runs fn on its value — the ledger
// aggregation path (summing per-shard counters).  Usable after Close.
func (s *ShardSet[T]) Each(fn func(T)) {
	for _, e := range s.elems {
		e.mu.Lock()
		fn(e.v)
		e.mu.Unlock()
	}
}

// Size returns the shard count.
func (s *ShardSet[T]) Size() int { return len(s.elems) }

// Close gates the set: Do calls that start afterwards fail with
// ErrClosed.  In-flight Do calls finish normally.  Closing twice is
// harmless.
func (s *ShardSet[T]) Close() { s.closed.Store(true) }
