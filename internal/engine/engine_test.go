package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// counterFill is the reference stream: shard s's items are
// s*1_000_000_000 + 0, 1, 2, ...  Per-shard state needs no lock — the
// engine guarantees one filler per shard.
func counterFill(next []int) Fill[int] {
	return func(s int, dst []int) {
		for i := range dst {
			dst[i] = s*1_000_000_000 + next[s]
			next[s]++
		}
	}
}

// TestStreamOrderMatchesSync pins the bit-identity property at the
// engine level: however the producer runs ahead and however take sizes
// fragment the stream, each shard's concatenated chunks equal the
// synchronous sequence.
func TestStreamOrderMatchesSync(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 7} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			const shards, slot = 3, 32
			e := New(Config{Shards: shards, SlotSize: slot, Depth: depth}, counterFill(make([]int, shards)))
			defer e.Close()
			rng := rand.New(rand.NewSource(42))
			pos := make([]int, shards)
			for i := 0; i < 500; i++ {
				s := rng.Intn(shards)
				n := 1 + rng.Intn(3*slot)
				got := make([]int, n)
				if err := e.TakeFrom(nil, s, got); err != nil {
					t.Fatal(err)
				}
				for j, v := range got {
					want := s*1_000_000_000 + pos[s] + j
					if v != want {
						t.Fatalf("shard %d item %d: got %d, want %d", s, pos[s]+j, v, want)
					}
				}
				pos[s] += n
			}
		})
	}
}

// TestStressManyConsumers is the race/stress suite: N producers (one
// per shard, inside the engine) × M consumer goroutines issuing random
// request sizes.  Run under -race in CI.  Afterwards the per-shard
// chunk concatenation must equal the counter stream and the ledger must
// reconcile exactly.
func TestStressManyConsumers(t *testing.T) {
	const shards, slot, depth = 4, 64, 3
	const consumers, takesEach = 16, 200
	e := New(Config{Shards: shards, SlotSize: slot, Depth: depth}, counterFill(make([]int, shards)))
	defer e.Close()

	// fn runs under the ring lock, so per-shard appends are serialized
	// in consumption order without extra synchronization.
	seen := make([][]int, shards)
	var wantItems uint64
	var mu sync.Mutex // guards wantItems only
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			var items uint64
			for i := 0; i < takesEach; i++ {
				s := rng.Intn(shards)
				n := 1 + rng.Intn(2*slot)
				items += uint64(n)
				if err := e.ConsumeFrom(nil, s, n, func(chunk []int) {
					seen[s] = append(seen[s], chunk...)
				}); err != nil {
					t.Error(err)
					return
				}
			}
			mu.Lock()
			wantItems += items
			mu.Unlock()
		}(c)
	}
	wg.Wait()

	var total uint64
	for s := range seen {
		for i, v := range seen[s] {
			if want := s*1_000_000_000 + i; v != want {
				t.Fatalf("shard %d: consumption order broken at %d: got %d, want %d", s, i, v, want)
			}
		}
		total += uint64(len(seen[s]))
	}
	if total != wantItems {
		t.Fatalf("consumed %d items, requested %d", total, wantItems)
	}

	l := e.Ledger()
	if l.ItemsConsumed != wantItems {
		t.Fatalf("ledger ItemsConsumed = %d, want %d", l.ItemsConsumed, wantItems)
	}
	var wantStarted uint64
	for s := range seen {
		wantStarted += (uint64(len(seen[s])) + slot - 1) / slot
	}
	if l.RefillsStarted != wantStarted {
		t.Fatalf("ledger RefillsStarted = %d, want %d (ceil of per-shard consumption)", l.RefillsStarted, wantStarted)
	}
	if l.RefillsProduced < l.RefillsStarted {
		t.Fatalf("produced %d < started %d", l.RefillsProduced, l.RefillsStarted)
	}
	if l.RefillsProduced > l.RefillsStarted+uint64(shards*depth) {
		t.Fatalf("produced %d refills, more than started %d + lookahead %d", l.RefillsProduced, l.RefillsStarted, shards*depth)
	}
	if takes := l.PrefetchHits + l.PrefetchMisses; takes != consumers*takesEach {
		t.Fatalf("hits %d + misses %d = %d, want %d takes", l.PrefetchHits, l.PrefetchMisses, takes, consumers*takesEach)
	}
}

// TestSyncModeLedger pins the synchronous mode: no producer goroutines,
// refills counted only when demanded, and every inline fill recorded as
// a miss.
func TestSyncModeLedger(t *testing.T) {
	before := runtime.NumGoroutine()
	e := New(Config{Shards: 2, SlotSize: 8, Depth: 0}, counterFill(make([]int, 2)))
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("sync engine started goroutines: %d > %d", g, before)
	}
	dst := make([]int, 20)
	if err := e.TakeFrom(nil, 0, dst); err != nil { // 8+8+4: three inline fills, one take
		t.Fatal(err)
	}
	l := e.Ledger()
	if l.RefillsProduced != 3 || l.RefillsStarted != 3 {
		t.Fatalf("sync refills: produced %d started %d, want 3/3", l.RefillsProduced, l.RefillsStarted)
	}
	if l.PrefetchMisses != 1 || l.PrefetchHits != 0 {
		t.Fatalf("sync take should count one miss: %+v", l)
	}
	// The 4 leftover items of the third slot serve the next take without
	// a fill: a hit.
	if err := e.TakeFrom(nil, 0, dst[:4]); err != nil {
		t.Fatal(err)
	}
	if l = e.Ledger(); l.PrefetchHits != 1 || l.RefillsProduced != 3 {
		t.Fatalf("leftover take: %+v", l)
	}
	e.Close()
}

// TestCloseStopsProducers is the goroutine-leak test: an async engine's
// producers must all exit on Close.
func TestCloseStopsProducers(t *testing.T) {
	before := runtime.NumGoroutine()
	e := New(Config{Shards: 8, SlotSize: 16, Depth: 4}, counterFill(make([]int, 8)))
	dst := make([]int, 64)
	for s := 0; s < 8; s++ {
		if err := e.TakeFrom(nil, s, dst); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	e.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive after Close (started with %d)", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConsumeAfterCloseErrClosed pins the lifecycle contract: a draw
// racing (or ordered after) Close degrades to ErrClosed — an error the
// serving layer can map to a 503 — not a panic or a silent zero-fill.
func TestConsumeAfterCloseErrClosed(t *testing.T) {
	e := New(Config{Shards: 1, SlotSize: 4, Depth: 2}, counterFill(make([]int, 1)))
	e.Close()
	if err := e.TakeFrom(nil, 0, make([]int, 1)); err != ErrClosed {
		t.Fatalf("TakeFrom after Close: %v, want ErrClosed", err)
	}
	if err := e.ConsumeFrom(nil, 0, 1, func([]int) {}); err != ErrClosed {
		t.Fatalf("ConsumeFrom after Close: %v, want ErrClosed", err)
	}
}

// TestAdaptiveTargetGrowsAndDecays exercises both directions of the
// prefetch policy through the ledger: a fast drain forces misses (the
// target doubling is internal, but the miss count proves the wait
// happened), then a long streak of small takes is served hit-only.
func TestAdaptiveTargetGrowsAndDecays(t *testing.T) {
	slow := func(s int, dst []int) {
		time.Sleep(200 * time.Microsecond)
		for i := range dst {
			dst[i] = i
		}
	}
	e := New(Config{Shards: 1, SlotSize: 256, Depth: 4}, slow)
	defer e.Close()
	dst := make([]int, 256)
	for i := 0; i < 20; i++ {
		if err := e.TakeFrom(nil, 0, dst); err != nil {
			t.Fatal(err)
		}
	}
	l := e.Ledger()
	if l.PrefetchMisses == 0 {
		t.Fatal("draining faster than the fill never missed")
	}
	// Now idle-drain far below the production rate: after the first
	// waits, takes are served from lookahead.
	small := make([]int, 1)
	for i := 0; i < 3*decayStreak; i++ {
		time.Sleep(10 * time.Microsecond)
		if err := e.TakeFrom(nil, 0, small); err != nil {
			t.Fatal(err)
		}
	}
	l2 := e.Ledger()
	if l2.PrefetchHits == l.PrefetchHits {
		t.Fatal("slow drain produced no prefetch hits")
	}
	if l2.HitRatio() <= l.HitRatio() {
		t.Fatalf("hit ratio did not improve under slow drain: %f → %f", l.HitRatio(), l2.HitRatio())
	}
}

// TestPickerFirstPickHistorical pins that a fresh picker's first pick
// is 1 mod n — the pre-striping global round-robin's first value —
// which keeps single-draw golden streams (ExampleNewPool, a fresh
// SignerPool's first signature) unchanged.  Later picks are only
// statistically round-robin: a stripe can retire at any time (sync.Pool
// semantics; under the race detector Put drops items at random), so the
// full sequence is deliberately not pinned.
func TestPickerFirstPickHistorical(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		if got := NewPicker(n).Pick(); got != 1%n {
			t.Fatalf("n=%d: first pick = %d, want %d", n, got, 1%n)
		}
	}
	if NewPicker(1).Pick() != 0 {
		t.Fatal("single-shard picker must always return 0")
	}
	// Every pick stays in range whatever the stripe lifecycle does.
	p := NewPicker(3)
	for i := 0; i < 100; i++ {
		if got := p.Pick(); got < 0 || got > 2 {
			t.Fatalf("pick %d out of range: %d", i, got)
		}
	}
}

// TestPickerConcurrentInRange hammers one picker from many goroutines:
// every pick must be a valid index and all shards must be visited.
func TestPickerConcurrentInRange(t *testing.T) {
	const n, goroutines, picks = 5, 8, 2000
	p := NewPicker(n)
	counts := make([]int64, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, n)
			for i := 0; i < picks; i++ {
				idx := p.Pick()
				if idx < 0 || idx >= n {
					t.Errorf("pick out of range: %d", idx)
					return
				}
				local[idx]++
			}
			mu.Lock()
			for i, c := range local {
				counts[i] += c
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d never picked", i)
		}
	}
}

// TestShardSet covers pick rotation, Each aggregation, and the Close
// gate.
func TestShardSet(t *testing.T) {
	type res struct{ id, uses int }
	items := []*res{{id: 0}, {id: 1}, {id: 2}}
	s := NewShardSet(items)
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	const calls = 30
	for i := 0; i < calls; i++ {
		if err := s.Do(func(r *res) error {
			r.uses++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	s.Each(func(r *res) {
		if r.uses == 0 {
			t.Fatalf("shard %d never used in %d calls", r.id, calls)
		}
		total += r.uses
	})
	if total != calls {
		t.Fatalf("Each sum = %d, want %d", total, calls)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Do(func(*res) error { return nil }); err != ErrClosed {
		t.Fatalf("Do after Close: %v, want ErrClosed", err)
	}
	s.Each(func(*res) {}) // still usable for final ledger reads
}
