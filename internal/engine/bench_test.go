package engine

import (
	"sync/atomic"
	"testing"
)

// BenchmarkPickerStriped vs BenchmarkPickerAtomic is the satellite
// measurement for the striped round-robin: the old single atomic
// counter bounces one cacheline between every core, the striped picker
// advances per-P counters.  Run with -cpu 1,4,16 to see the crossover;
// single-threaded the atomic wins (no pool round trip), under
// parallelism the stripe wins by avoiding coherence traffic.
func BenchmarkPickerStriped(b *testing.B) {
	p := NewPicker(16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = p.Pick()
		}
	})
}

func BenchmarkPickerAtomic(b *testing.B) {
	var ctr atomic.Uint64
	n := uint64(16)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = ctr.Add(1) % n
		}
	})
}

// benchFill simulates a moderately expensive refill (a compiled σ=2
// circuit evaluation costs a few microseconds per 64-sample batch).
func benchFill(s int, dst []int) {
	acc := s
	for i := range dst {
		acc = acc*1664525 + 1013904223
		dst[i] = acc
	}
}

// BenchmarkEngineTake compares the synchronous and asynchronous refill
// modes under parallel consumers — the package-level version of the
// samplebench -serving measurement.
func BenchmarkEngineTake(b *testing.B) {
	for _, tc := range []struct {
		name  string
		depth int
	}{{"sync", 0}, {"async-d2", 2}, {"async-d8", 8}} {
		b.Run(tc.name, func(b *testing.B) {
			e := New(Config{Shards: 8, SlotSize: 512, Depth: tc.depth}, benchFill)
			defer e.Close()
			p := NewPicker(8)
			b.RunParallel(func(pb *testing.PB) {
				dst := make([]int, 64)
				for pb.Next() {
					if err := e.TakeFrom(nil, p.Pick(), dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
