package engine

import (
	"sync"
	"sync/atomic"
)

// Picker hands out shard indices approximately round-robin without a
// single contended counter.  The old `ctr.Add(1) % n` pick put every
// caller's increment on one cacheline; at high core counts the
// coherence traffic on that line dominated the (otherwise lock-free)
// pick.  Picker stripes the counter through a sync.Pool — which is
// per-P under the hood — so concurrent callers on different Ps advance
// distinct counters with plain (uncontended, exclusively owned)
// increments, and only pool misses touch shared state.
//
// Each stripe walks all shards with stride 1 from its own starting
// offset (drawn from an atomic seed), so every shard is visited and
// load spreads evenly in aggregate.  The first counter a fresh Picker
// creates starts at offset 0, reproducing the historical global
// sequence's first value (pick = 1 mod n) — a fresh pool's first draw
// hits the same shard it always did, so single-draw golden streams are
// unchanged.  Beyond the first pick the sequence is only statistically
// round-robin: a stripe can retire at any time (sync.Pool drops items
// on GC, and at random under the race detector), and the
// cross-goroutine interleave of shards is unspecified — as it already
// was under mutex wait ordering.
type Picker struct {
	n    int
	seed atomic.Uint64
	pool sync.Pool
}

// pickCtr is one stripe's counter.  It is exclusively owned between
// Get and Put, so the increment needs no atomics.  The padding keeps
// two stripes from sharing a cacheline when the pool allocates them
// back to back.
type pickCtr struct {
	n uint64
	_ [7]uint64
}

// NewPicker builds a picker over n shards.
func NewPicker(n int) *Picker {
	p := &Picker{n: n}
	p.pool.New = func() any {
		return &pickCtr{n: p.seed.Add(1) - 1}
	}
	return p
}

// Pick returns the next shard index for this caller's stripe.
func (p *Picker) Pick() int {
	if p.n <= 1 {
		return 0
	}
	c := p.pool.Get().(*pickCtr)
	c.n++
	i := int(c.n % uint64(p.n))
	p.pool.Put(c)
	return i
}

// Size returns the shard count.
func (p *Picker) Size() int { return p.n }
