// Package engine is the unified asynchronous refill runtime under every
// sharded serving surface in this repo: ctgauss.Pool, ctgauss.Arbitrary
// (the convolution layer's base draws), falcon.SignerPool, and the
// ctgaussd request coalescers.
//
// The paper's speed claim rests on keeping the bitsliced lanes full — a
// circuit evaluation amortizes only when all W×64 lanes of a refill are
// consumed.  Before this package existed, every refill ran inline on a
// request goroutine under a shard mutex: p99 latency absorbed whole
// evaluation costs, shards sat idle between requests, and the
// shard/ring/ledger machinery was hand-rolled in three packages plus two
// server coalescer variants.  Engine centralizes it:
//
//   - Each shard owns a ring of Depth refill slots.  A background
//     producer goroutine runs the fill function (a circuit evaluation, a
//     bulk PRNG draw — whatever regenerates one refill) ahead of demand,
//     so a consumer that arrives while the ring holds data pays a memcpy,
//     not an evaluation.
//   - Consumers take zero-copy slices of completed refills in stream
//     order: ConsumeFrom hands the caller successive sub-slices of the
//     ring's slots, so the only copy is the caller's own move into its
//     destination.  Per-shard streams are bit-identical to the
//     synchronous path — each ring is filled in stream order by a single
//     producer — which is what keeps the golden-stream and served-sample
//     bit-identity tests passing unchanged.
//   - Prefetch depth adapts to the drain rate: the producer's target
//     starts at one refill ahead, doubles (up to Depth) whenever a
//     consumer had to wait, and decays after a long streak of waitless
//     takes, so an idle pool stops burning randomness and CPU.
//   - A single Ledger replaces the scattered BitsUsed/Stats/batches
//     accounting.  RefillsStarted counts refills whose consumption began,
//     which is exactly when the synchronous path would have evaluated
//     them — so BitsUsed-style ledgers derived from it are independent of
//     how far the producer has run ahead, and deterministic for a
//     deterministic consumer.
//
// # Fault isolation
//
// A panic inside the fill function — a circuit-evaluation bug, an
// injected entropy failure — is contained to its shard instead of
// crashing the process.  The producer (or, synchronously, the inline
// fill) recovers the panic, discards the partial refill (it never
// published, so consumers cannot observe torn data), marks the shard
// poisoned, and wakes every waiter; blocked ConsumeFrom calls return
// ErrShardPoisoned so serving layers can redirect to healthy shards.
// The producer then restarts with jittered exponential backoff, calling
// the optional Config.Reset hook first so fill-side per-shard state
// (sampler cursors, PRNG positions a mid-fill panic may have corrupted)
// re-syncs at a refill boundary.  Consecutive failures beyond
// Config.MaxRestarts poison the shard permanently: its producer exits
// and ConsumeFrom fails fast with ErrShardPoisoned while the remaining
// shards keep serving.  Ledger and Health expose restart, discard, and
// poison counts for /metrics and /healthz.
//
// ConsumeFrom and TakeFrom accept a context: a caller blocked on a slow
// producer unblocks with ctx.Err() when its request is cancelled, so a
// disconnected HTTP client stops holding a ring.  Consuming a closed
// engine returns ErrClosed (it used to panic) — the drain gate still
// owns the ordering, but a racing request now degrades to an error
// response instead of taking the process down.
//
// Depth = 0 selects the synchronous mode: no goroutines, refills run
// inline under the ring lock — bit- and ledger-identical to the
// pre-engine behaviour, and the baseline the BENCH_PR5 serving benchmark
// compares against.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ctgauss/internal/faultinject"
	"ctgauss/internal/obs"
)

// DefaultDepth is the ring depth used when a consumer passes 0 to the
// layers above (double buffering: the producer fills one slot while
// consumers drain another).
const DefaultDepth = 2

// decayStreak is the number of consecutive waitless takes after which
// the adaptive prefetch target steps down by one (never below 1): a
// consumer that always finds data ready is not draining fast enough to
// need the current lookahead.
const decayStreak = 64

// DefaultMaxRestarts is the consecutive-failure budget per shard when
// Config.MaxRestarts is 0: a fill that panics this many times in a row
// (a deterministic bug re-fed the same state by Reset) poisons the
// shard permanently rather than burning CPU on a hopeless retry loop.
const DefaultMaxRestarts = 8

// Default restart backoff bounds (Config.RestartBackoff /
// RestartBackoffMax when zero).  The first restart retries almost
// immediately — most panics are transient — and the delay doubles with
// jitter up to the cap so a crash-looping shard stays cheap.
const (
	DefaultRestartBackoff    = time.Millisecond
	DefaultRestartBackoffMax = 250 * time.Millisecond
)

// ErrShardPoisoned is returned by ConsumeFrom/TakeFrom when the picked
// shard is poisoned: transiently (its producer is restarting after a
// recovered panic) or permanently (the restart budget is exhausted).
// Callers should redirect the draw to another shard; Health
// distinguishes the two states.
var ErrShardPoisoned = errors.New("engine: shard poisoned")

// Fill regenerates one refill: it must write the next len(dst) items of
// shard s's stream into dst.  For a given shard it is never called
// concurrently with itself — the shard's producer goroutine (or, in
// synchronous mode, the consumer holding the ring lock) is the only
// caller — so implementations may keep per-shard state without locking.
type Fill[T any] func(s int, dst []T)

// Config sizes an Engine.
type Config struct {
	// Shards is the number of independent streams (≥ 1).
	Shards int
	// SlotSize is the item count of one refill slot.  Layers above set it
	// to their natural refill granularity (width×64 samples for a pool
	// shard) so RefillsStarted counts circuit evaluations exactly.
	SlotSize int
	// Depth is the ring depth: how many completed refills a shard buffers
	// ahead of demand.  0 = synchronous (no producer goroutines); the
	// adaptive target never exceeds it.
	Depth int

	// Reset, when set, is called after a recovered fill panic and before
	// the next fill attempt, with the shard index.  A mid-fill panic may
	// leave the fill closure's per-shard state (a sampler's internal
	// cursor, a PRNG stream position) torn; Reset must rebuild it so the
	// next refill starts at a clean refill boundary.  It runs on the
	// producer goroutine (async) or under the ring lock (sync) — the same
	// exclusivity the fill itself enjoys.
	Reset func(s int)
	// MaxRestarts is the consecutive-failure budget per shard before it
	// is poisoned permanently (0 = DefaultMaxRestarts, negative = poison
	// on the first panic).  A successful refill resets the streak.
	MaxRestarts int
	// RestartBackoff and RestartBackoffMax bound the jittered exponential
	// delay between a recovered panic and the retry (zero values pick
	// DefaultRestartBackoff / DefaultRestartBackoffMax).
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
}

// Engine runs Config.Shards independent refill rings over one fill
// function.  ConsumeFrom is safe for any number of concurrent callers;
// Close stops the producers and must only run once no consumer can call
// in again (the server's drain gate enforces this ordering).
type Engine[T any] struct {
	cfg   Config
	fill  Fill[T]
	rings []*ring[T]
	wg    sync.WaitGroup
}

// ring is one shard's refill ring.  All fields are guarded by mu; the
// slot being filled by the producer (slots[tail%Depth]) is exclusively
// the producer's while tail−head < Depth, which the produce condition
// guarantees.
type ring[T any] struct {
	mu   sync.Mutex
	more sync.Cond // producer → consumers: a refill completed (or state changed)
	need sync.Cond // consumers → producer: space or demand appeared

	slots  [][]T
	head   uint64 // refills fully consumed
	tail   uint64 // refills produced
	cur    int    // items consumed within slots[head%Depth]
	target int    // adaptive prefetch goal, in [1, Depth]
	streak int    // consecutive waitless takes (drives target decay)
	closed bool

	poisoned bool   // a recovered panic's producer is backing off (or dead)
	dead     bool   // restart budget exhausted; poisoned forever
	failures int    // consecutive fill panics (resets on success)
	restarts uint64 // producer restarts, cumulative
	discards uint64 // refills discarded by recovered panics

	started  uint64 // refills whose consumption began
	consumed uint64 // items handed to consumers
	hits     uint64 // takes served without waiting for a fill
	misses   uint64 // takes that waited (async) or filled inline (sync)
}

// New builds an engine and, in asynchronous mode, starts one producer
// goroutine per shard.  Producers begin filling immediately, so a
// freshly built engine warms its rings before the first request.
func New[T any](cfg Config, fill Fill[T]) *Engine[T] {
	if cfg.Shards < 1 {
		panic(fmt.Sprintf("engine: %d shards", cfg.Shards))
	}
	if cfg.SlotSize < 1 {
		panic(fmt.Sprintf("engine: slot size %d", cfg.SlotSize))
	}
	if cfg.Depth < 0 {
		cfg.Depth = 0
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = DefaultMaxRestarts
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = DefaultRestartBackoff
	}
	if cfg.RestartBackoffMax <= 0 {
		cfg.RestartBackoffMax = DefaultRestartBackoffMax
	}
	e := &Engine[T]{cfg: cfg, fill: fill, rings: make([]*ring[T], cfg.Shards)}
	depth := cfg.Depth
	if depth == 0 {
		depth = 1 // one inline slot for the synchronous mode
	}
	for i := range e.rings {
		r := &ring[T]{slots: make([][]T, depth), target: 1}
		for j := range r.slots {
			r.slots[j] = make([]T, cfg.SlotSize)
		}
		r.more.L = &r.mu
		r.need.L = &r.mu
		e.rings[i] = r
	}
	if cfg.Depth > 0 {
		e.wg.Add(cfg.Shards)
		for i := range e.rings {
			go e.producer(i)
		}
	}
	return e
}

// Shards returns the shard count.
func (e *Engine[T]) Shards() int { return e.cfg.Shards }

// SlotSize returns the refill granularity in items.
func (e *Engine[T]) SlotSize() int { return e.cfg.SlotSize }

// Async reports whether background producers are running.
func (e *Engine[T]) Async() bool { return e.cfg.Depth > 0 }

// runFill executes one fill with the chaos injection points armed-tests
// use and converts a panic into an error instead of unwinding into the
// producer loop (or the consumer's stack, in synchronous mode).
func (e *Engine[T]) runFill(s int, dst []T) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if ie, ok := v.(*faultinject.Injected); ok {
				err = ie
			} else {
				err = fmt.Errorf("engine: fill panic on shard %d: %v", s, v)
			}
		}
	}()
	faultinject.Fire(faultinject.EngineFillDelay, s)
	faultinject.Fire(faultinject.EngineFillPanic, s)
	e.fill(s, dst)
	return nil
}

// recordFillFailure accounts one recovered fill panic under the ring
// lock and reports whether the shard's consecutive-failure budget is now
// exhausted (the caller then poisons it permanently).
func (e *Engine[T]) recordFillFailure(r *ring[T]) (dead bool) {
	r.discards++
	r.restarts++
	r.failures++
	return e.cfg.MaxRestarts < 0 || r.failures > e.cfg.MaxRestarts
}

// backoff returns the jittered exponential delay before restart attempt
// (1-based): base·2^(attempt−1), halved-to-full jitter, clamped to the
// configured max.
func (e *Engine[T]) backoff(attempt int) time.Duration {
	d := e.cfg.RestartBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= e.cfg.RestartBackoffMax {
			break
		}
	}
	if d > e.cfg.RestartBackoffMax {
		d = e.cfg.RestartBackoffMax
	}
	// Full jitter in [d/2, d): desynchronizes shards that were poisoned
	// by one cause (a bad PRNG backend) so their retries don't stampede.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// producer is shard s's background refiller: it keeps the ring target
// refills ahead of the consumers and parks when the lookahead is
// satisfied.  The fill itself runs outside the ring lock, overlapping
// with consumers draining earlier slots.  A fill panic is recovered
// here: the partial refill is discarded, the shard marked poisoned and
// its waiters woken, and the producer restarts after a jittered
// exponential backoff — or exits, poisoning the shard permanently, once
// the consecutive-failure budget is spent.
func (e *Engine[T]) producer(s int) {
	defer e.wg.Done()
	r := e.rings[s]
	depth := uint64(len(r.slots))
	r.mu.Lock()
	for {
		for !r.closed && int(r.tail-r.head) >= r.target {
			r.need.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		slot := r.slots[r.tail%depth]
		r.mu.Unlock()
		err := e.runFill(s, slot)
		r.mu.Lock()
		if err == nil {
			r.failures = 0
			r.poisoned = false
			r.tail++
			r.more.Broadcast()
			continue
		}
		dead := e.recordFillFailure(r)
		r.poisoned = true
		r.dead = dead
		attempt := r.failures
		// Wake everyone: waiters must stop hanging on a shard that has no
		// refill coming and fail over to a healthy one.
		r.more.Broadcast()
		if dead {
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()
		time.Sleep(e.backoff(attempt))
		if e.cfg.Reset != nil {
			e.cfg.Reset(s)
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		// Stay poisoned until the next refill actually completes: a
		// consumer admitted between clear and fill would just block on a
		// ring whose health is still unproven.
	}
}

// ConsumeFrom hands fn the next n items of shard s's stream as one or
// more sub-slices of completed refill slots, in stream order.  fn runs
// under the ring lock (callers do a bounded amount of work per chunk —
// a copy or a multiply-accumulate), so concurrent consumers of one
// shard serialize exactly as they did under the old shard mutex; the
// chunks passed to fn concatenate to the same byte stream the
// synchronous path would produce.
//
// It returns ErrClosed after Close, ErrShardPoisoned when shard s is
// poisoned (transiently while its producer restarts, or permanently),
// and ctx.Err() when ctx is cancelled while waiting for a refill.  A
// nil ctx (or one without a Done channel) never cancels.  On a non-nil
// error the items already handed to fn are discarded from the stream;
// callers must treat their destination buffer as unfilled.
func (e *Engine[T]) ConsumeFrom(ctx context.Context, s, n int, fn func(chunk []T)) error {
	r := e.rings[s]
	depth := uint64(len(r.slots))
	// Tracing hook: one atomic load when observability is off; a
	// request-scoped span recorder when on.  The trace only ever reads
	// the clock, so the served stream is bit-identical either way.
	var tr *obs.Trace
	if obs.TraceEnabled() {
		tr = obs.FromContext(ctx)
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var stopWatch chan struct{}
	defer func() {
		if stopWatch != nil {
			close(stopWatch)
		}
	}()
	r.mu.Lock()
	waited := false
	first := true
	for n > 0 {
		if r.closed {
			r.mu.Unlock()
			return ErrClosed
		}
		if r.poisoned && r.tail == r.head {
			// Nothing buffered and no producer delivering: fail over.
			// Buffered refills of a transiently poisoned shard still
			// serve — they completed before the panic, in stream order.
			r.mu.Unlock()
			return ErrShardPoisoned
		}
		if done != nil {
			select {
			case <-done:
				r.mu.Unlock()
				return ctx.Err()
			default:
			}
		}
		if r.tail == r.head {
			if e.cfg.Depth == 0 {
				// Synchronous mode: evaluate inline, holding the ring
				// lock — the old one-sampler-per-shard-mutex discipline.
				// A panic here poisons the call, not the process: the
				// partial refill is discarded (tail never advances), the
				// fill state resets, and the next call retries.
				t0 := tr.Now()
				err := e.runFill(s, r.slots[0])
				tr.End(obs.StageEval, t0)
				if err != nil {
					dead := e.recordFillFailure(r)
					if dead {
						r.poisoned, r.dead = true, true
					}
					if e.cfg.Reset != nil {
						e.cfg.Reset(s)
					}
					r.mu.Unlock()
					return ErrShardPoisoned
				}
				r.failures = 0
				r.tail++
				waited = true
			} else {
				waited = true
				// Demand outran the lookahead: widen the target so the
				// producer runs further ahead next time.
				if t := r.target * 2; t <= e.cfg.Depth {
					r.target = t
				} else {
					r.target = e.cfg.Depth
				}
				r.streak = 0
				r.need.Signal()
				if done != nil && stopWatch == nil {
					// more.Wait cannot observe ctx; a watcher goroutine
					// converts cancellation into a broadcast.  Started
					// lazily — only calls that actually block pay for it.
					stopWatch = make(chan struct{})
					go func(stop chan struct{}) {
						select {
						case <-done:
							r.mu.Lock()
							r.more.Broadcast()
							r.mu.Unlock()
						case <-stop:
						}
					}(stopWatch)
				}
				t0 := tr.Now()
				r.more.Wait()
				tr.End(obs.StageEngineWait, t0)
				continue
			}
		}
		if first {
			first = false
			if waited {
				r.misses++
			} else {
				r.hits++
				r.streak++
				if r.streak >= decayStreak {
					r.streak = 0
					if r.target > 1 {
						r.target--
					}
				}
			}
		}
		slot := r.slots[r.head%depth]
		if r.cur == 0 {
			r.started++
		}
		k := len(slot) - r.cur
		if k > n {
			k = n
		}
		fn(slot[r.cur : r.cur+k])
		r.cur += k
		n -= k
		r.consumed += uint64(k)
		if r.cur == len(slot) {
			r.cur = 0
			r.head++
			r.need.Signal()
		}
	}
	r.mu.Unlock()
	return nil
}

// TakeFrom copies the next len(dst) items of shard s's stream into dst.
// On a non-nil error dst's contents are undefined and the items already
// copied are discarded from the stream.
func (e *Engine[T]) TakeFrom(ctx context.Context, s int, dst []T) error {
	n := 0
	return e.ConsumeFrom(ctx, s, len(dst), func(chunk []T) {
		n += copy(dst[n:], chunk)
	})
}

// Close stops the producer goroutines and waits for them to exit.  It
// must be ordered after the last consumer call: a ConsumeFrom issued
// after (or blocked across) Close returns ErrClosed, because silently
// returning unfilled buffers would corrupt the served stream.  Closing
// twice is harmless.
func (e *Engine[T]) Close() {
	for _, r := range e.rings {
		r.mu.Lock()
		r.closed = true
		r.mu.Unlock()
		r.need.Broadcast()
		r.more.Broadcast()
	}
	e.wg.Wait()
}

// ShardHealth is one shard's fault-isolation state.
type ShardHealth struct {
	// Poisoned reports the shard is not currently serving new refills:
	// its producer is backing off after a recovered panic, or Dead.
	Poisoned bool
	// Dead reports the restart budget is exhausted: the shard is poisoned
	// permanently and its producer has exited.
	Dead bool
	// Restarts counts producer restarts (recovered fill panics),
	// cumulative.
	Restarts uint64
	// DiscardedRefills counts refills torn down by recovered panics —
	// randomness consumed but never served.
	DiscardedRefills uint64
}

// Health snapshots every shard's fault-isolation state, indexed by
// shard.
func (e *Engine[T]) Health() []ShardHealth {
	out := make([]ShardHealth, len(e.rings))
	for i, r := range e.rings {
		r.mu.Lock()
		out[i] = ShardHealth{
			Poisoned:         r.poisoned,
			Dead:             r.dead,
			Restarts:         r.restarts,
			DiscardedRefills: r.discards,
		}
		r.mu.Unlock()
	}
	return out
}

// RingStat is one shard's prefetch-ring occupancy snapshot: how many
// completed refills sit buffered ahead of demand, the producer's
// current adaptive target, and the configured depth.  These feed the
// ctgaussd_engine_ring_* gauges — buffered ≈ 0 under sustained load
// means consumers run at refill speed (prefetch misses); buffered near
// target means the producer keeps ahead.
type RingStat struct {
	Buffered int
	Target   int
	Depth    int
}

// Rings snapshots every shard's ring occupancy, indexed by shard.
func (e *Engine[T]) Rings() []RingStat {
	out := make([]RingStat, len(e.rings))
	for i, r := range e.rings {
		r.mu.Lock()
		out[i] = RingStat{
			Buffered: int(r.tail - r.head),
			Target:   int(r.target),
			Depth:    e.cfg.Depth,
		}
		r.mu.Unlock()
	}
	return out
}

// Ledger is the unified refill/consumption accounting, aggregated over
// all shards.  It replaces the per-layer BitsUsed sums, coalescer batch
// counters, and laneSource draw ledgers that predate the engine.
type Ledger struct {
	Shards   int
	SlotSize int
	Depth    int // configured ring depth (0 = synchronous)

	// RefillsProduced counts fills completed, including lookahead not yet
	// consumed.  RefillsStarted counts refills whose consumption began —
	// exactly the evaluations the synchronous path would have run, so
	// randomness ledgers derive from it (bits = RefillsStarted ×
	// bits-per-refill) independent of producer lookahead.
	RefillsProduced uint64
	RefillsStarted  uint64
	// ItemsConsumed counts items handed to consumers.
	ItemsConsumed uint64
	// PrefetchHits counts takes served without waiting for a fill;
	// PrefetchMisses counts takes that waited on the producer (async) or
	// evaluated inline (sync).
	PrefetchHits   uint64
	PrefetchMisses uint64

	// ProducerRestarts counts recovered fill panics (cumulative, all
	// shards); RefillsDiscarded counts the partial refills they tore
	// down.  ShardsPoisoned is the number of shards currently poisoned
	// (a gauge, not a counter — a recovered shard leaves it).
	ProducerRestarts uint64
	RefillsDiscarded uint64
	ShardsPoisoned   int
}

// HitRatio returns PrefetchHits / (PrefetchHits + PrefetchMisses), or 0
// before any take.
func (l Ledger) HitRatio() float64 {
	total := l.PrefetchHits + l.PrefetchMisses
	if total == 0 {
		return 0
	}
	return float64(l.PrefetchHits) / float64(total)
}

// Ledger snapshots the aggregate counters.
func (e *Engine[T]) Ledger() Ledger {
	l := Ledger{Shards: e.cfg.Shards, SlotSize: e.cfg.SlotSize, Depth: e.cfg.Depth}
	for _, r := range e.rings {
		r.mu.Lock()
		l.RefillsProduced += r.tail
		l.RefillsStarted += r.started
		l.ItemsConsumed += r.consumed
		l.PrefetchHits += r.hits
		l.PrefetchMisses += r.misses
		l.ProducerRestarts += r.restarts
		l.RefillsDiscarded += r.discards
		if r.poisoned {
			l.ShardsPoisoned++
		}
		r.mu.Unlock()
	}
	return l
}
