// Package engine is the unified asynchronous refill runtime under every
// sharded serving surface in this repo: ctgauss.Pool, ctgauss.Arbitrary
// (the convolution layer's base draws), falcon.SignerPool, and the
// ctgaussd request coalescers.
//
// The paper's speed claim rests on keeping the bitsliced lanes full — a
// circuit evaluation amortizes only when all W×64 lanes of a refill are
// consumed.  Before this package existed, every refill ran inline on a
// request goroutine under a shard mutex: p99 latency absorbed whole
// evaluation costs, shards sat idle between requests, and the
// shard/ring/ledger machinery was hand-rolled in three packages plus two
// server coalescer variants.  Engine centralizes it:
//
//   - Each shard owns a ring of Depth refill slots.  A background
//     producer goroutine runs the fill function (a circuit evaluation, a
//     bulk PRNG draw — whatever regenerates one refill) ahead of demand,
//     so a consumer that arrives while the ring holds data pays a memcpy,
//     not an evaluation.
//   - Consumers take zero-copy slices of completed refills in stream
//     order: ConsumeFrom hands the caller successive sub-slices of the
//     ring's slots, so the only copy is the caller's own move into its
//     destination.  Per-shard streams are bit-identical to the
//     synchronous path — each ring is filled in stream order by a single
//     producer — which is what keeps the golden-stream and served-sample
//     bit-identity tests passing unchanged.
//   - Prefetch depth adapts to the drain rate: the producer's target
//     starts at one refill ahead, doubles (up to Depth) whenever a
//     consumer had to wait, and decays after a long streak of waitless
//     takes, so an idle pool stops burning randomness and CPU.
//   - A single Ledger replaces the scattered BitsUsed/Stats/batches
//     accounting.  RefillsStarted counts refills whose consumption began,
//     which is exactly when the synchronous path would have evaluated
//     them — so BitsUsed-style ledgers derived from it are independent of
//     how far the producer has run ahead, and deterministic for a
//     deterministic consumer.
//
// Depth = 0 selects the synchronous mode: no goroutines, refills run
// inline under the ring lock — bit- and ledger-identical to the
// pre-engine behaviour, and the baseline the BENCH_PR5 serving benchmark
// compares against.
package engine

import (
	"fmt"
	"sync"
)

// DefaultDepth is the ring depth used when a consumer passes 0 to the
// layers above (double buffering: the producer fills one slot while
// consumers drain another).
const DefaultDepth = 2

// decayStreak is the number of consecutive waitless takes after which
// the adaptive prefetch target steps down by one (never below 1): a
// consumer that always finds data ready is not draining fast enough to
// need the current lookahead.
const decayStreak = 64

// Fill regenerates one refill: it must write the next len(dst) items of
// shard s's stream into dst.  For a given shard it is never called
// concurrently with itself — the shard's producer goroutine (or, in
// synchronous mode, the consumer holding the ring lock) is the only
// caller — so implementations may keep per-shard state without locking.
type Fill[T any] func(s int, dst []T)

// Config sizes an Engine.
type Config struct {
	// Shards is the number of independent streams (≥ 1).
	Shards int
	// SlotSize is the item count of one refill slot.  Layers above set it
	// to their natural refill granularity (width×64 samples for a pool
	// shard) so RefillsStarted counts circuit evaluations exactly.
	SlotSize int
	// Depth is the ring depth: how many completed refills a shard buffers
	// ahead of demand.  0 = synchronous (no producer goroutines); the
	// adaptive target never exceeds it.
	Depth int
}

// Engine runs Config.Shards independent refill rings over one fill
// function.  ConsumeFrom is safe for any number of concurrent callers;
// Close stops the producers and must only run once no consumer can call
// in again (the server's drain gate enforces this ordering).
type Engine[T any] struct {
	cfg   Config
	fill  Fill[T]
	rings []*ring[T]
	wg    sync.WaitGroup
}

// ring is one shard's refill ring.  All fields are guarded by mu; the
// slot being filled by the producer (slots[tail%Depth]) is exclusively
// the producer's while tail−head < Depth, which the produce condition
// guarantees.
type ring[T any] struct {
	mu   sync.Mutex
	more sync.Cond // producer → consumers: a refill completed
	need sync.Cond // consumers → producer: space or demand appeared

	slots  [][]T
	head   uint64 // refills fully consumed
	tail   uint64 // refills produced
	cur    int    // items consumed within slots[head%Depth]
	target int    // adaptive prefetch goal, in [1, Depth]
	streak int    // consecutive waitless takes (drives target decay)
	closed bool

	started  uint64 // refills whose consumption began
	consumed uint64 // items handed to consumers
	hits     uint64 // takes served without waiting for a fill
	misses   uint64 // takes that waited (async) or filled inline (sync)
}

// New builds an engine and, in asynchronous mode, starts one producer
// goroutine per shard.  Producers begin filling immediately, so a
// freshly built engine warms its rings before the first request.
func New[T any](cfg Config, fill Fill[T]) *Engine[T] {
	if cfg.Shards < 1 {
		panic(fmt.Sprintf("engine: %d shards", cfg.Shards))
	}
	if cfg.SlotSize < 1 {
		panic(fmt.Sprintf("engine: slot size %d", cfg.SlotSize))
	}
	if cfg.Depth < 0 {
		cfg.Depth = 0
	}
	e := &Engine[T]{cfg: cfg, fill: fill, rings: make([]*ring[T], cfg.Shards)}
	depth := cfg.Depth
	if depth == 0 {
		depth = 1 // one inline slot for the synchronous mode
	}
	for i := range e.rings {
		r := &ring[T]{slots: make([][]T, depth), target: 1}
		for j := range r.slots {
			r.slots[j] = make([]T, cfg.SlotSize)
		}
		r.more.L = &r.mu
		r.need.L = &r.mu
		e.rings[i] = r
	}
	if cfg.Depth > 0 {
		e.wg.Add(cfg.Shards)
		for i := range e.rings {
			go e.producer(i)
		}
	}
	return e
}

// Shards returns the shard count.
func (e *Engine[T]) Shards() int { return e.cfg.Shards }

// SlotSize returns the refill granularity in items.
func (e *Engine[T]) SlotSize() int { return e.cfg.SlotSize }

// Async reports whether background producers are running.
func (e *Engine[T]) Async() bool { return e.cfg.Depth > 0 }

// producer is shard s's background refiller: it keeps the ring target
// refills ahead of the consumers and parks when the lookahead is
// satisfied.  The fill itself runs outside the ring lock, overlapping
// with consumers draining earlier slots.
func (e *Engine[T]) producer(s int) {
	defer e.wg.Done()
	r := e.rings[s]
	depth := uint64(len(r.slots))
	r.mu.Lock()
	for {
		for !r.closed && int(r.tail-r.head) >= r.target {
			r.need.Wait()
		}
		if r.closed {
			r.mu.Unlock()
			return
		}
		slot := r.slots[r.tail%depth]
		r.mu.Unlock()
		e.fill(s, slot)
		r.mu.Lock()
		r.tail++
		r.more.Broadcast()
	}
}

// ConsumeFrom hands fn the next n items of shard s's stream as one or
// more sub-slices of completed refill slots, in stream order.  fn runs
// under the ring lock (callers do a bounded amount of work per chunk —
// a copy or a multiply-accumulate), so concurrent consumers of one
// shard serialize exactly as they did under the old shard mutex; the
// chunks passed to fn concatenate to the same byte stream the
// synchronous path would produce.  Panics if the engine is closed.
func (e *Engine[T]) ConsumeFrom(s, n int, fn func(chunk []T)) {
	r := e.rings[s]
	depth := uint64(len(r.slots))
	r.mu.Lock()
	waited := false
	first := true
	for n > 0 {
		if r.closed {
			r.mu.Unlock()
			panic("engine: ConsumeFrom after Close")
		}
		if r.tail == r.head {
			if e.cfg.Depth == 0 {
				// Synchronous mode: evaluate inline, holding the ring
				// lock — the old one-sampler-per-shard-mutex discipline.
				e.fill(s, r.slots[0])
				r.tail++
				waited = true
			} else {
				waited = true
				// Demand outran the lookahead: widen the target so the
				// producer runs further ahead next time.
				if t := r.target * 2; t <= e.cfg.Depth {
					r.target = t
				} else {
					r.target = e.cfg.Depth
				}
				r.streak = 0
				r.need.Signal()
				r.more.Wait()
				continue
			}
		}
		if first {
			first = false
			if waited {
				r.misses++
			} else {
				r.hits++
				r.streak++
				if r.streak >= decayStreak {
					r.streak = 0
					if r.target > 1 {
						r.target--
					}
				}
			}
		}
		slot := r.slots[r.head%depth]
		if r.cur == 0 {
			r.started++
		}
		k := len(slot) - r.cur
		if k > n {
			k = n
		}
		fn(slot[r.cur : r.cur+k])
		r.cur += k
		n -= k
		r.consumed += uint64(k)
		if r.cur == len(slot) {
			r.cur = 0
			r.head++
			r.need.Signal()
		}
	}
	r.mu.Unlock()
}

// TakeFrom copies the next len(dst) items of shard s's stream into dst.
func (e *Engine[T]) TakeFrom(s int, dst []T) {
	n := 0
	e.ConsumeFrom(s, len(dst), func(chunk []T) {
		n += copy(dst[n:], chunk)
	})
}

// Close stops the producer goroutines and waits for them to exit.  It
// must be ordered after the last consumer call: a ConsumeFrom issued
// after (or blocked across) Close panics, because silently returning
// unfilled buffers would corrupt the served stream.  Closing twice is
// harmless.
func (e *Engine[T]) Close() {
	for _, r := range e.rings {
		r.mu.Lock()
		r.closed = true
		r.mu.Unlock()
		r.need.Broadcast()
		r.more.Broadcast()
	}
	e.wg.Wait()
}

// Ledger is the unified refill/consumption accounting, aggregated over
// all shards.  It replaces the per-layer BitsUsed sums, coalescer batch
// counters, and laneSource draw ledgers that predate the engine.
type Ledger struct {
	Shards   int
	SlotSize int
	Depth    int // configured ring depth (0 = synchronous)

	// RefillsProduced counts fills completed, including lookahead not yet
	// consumed.  RefillsStarted counts refills whose consumption began —
	// exactly the evaluations the synchronous path would have run, so
	// randomness ledgers derive from it (bits = RefillsStarted ×
	// bits-per-refill) independent of producer lookahead.
	RefillsProduced uint64
	RefillsStarted  uint64
	// ItemsConsumed counts items handed to consumers.
	ItemsConsumed uint64
	// PrefetchHits counts takes served without waiting for a fill;
	// PrefetchMisses counts takes that waited on the producer (async) or
	// evaluated inline (sync).
	PrefetchHits   uint64
	PrefetchMisses uint64
}

// HitRatio returns PrefetchHits / (PrefetchHits + PrefetchMisses), or 0
// before any take.
func (l Ledger) HitRatio() float64 {
	total := l.PrefetchHits + l.PrefetchMisses
	if total == 0 {
		return 0
	}
	return float64(l.PrefetchHits) / float64(total)
}

// Ledger snapshots the aggregate counters.
func (e *Engine[T]) Ledger() Ledger {
	l := Ledger{Shards: e.cfg.Shards, SlotSize: e.cfg.SlotSize, Depth: e.cfg.Depth}
	for _, r := range e.rings {
		r.mu.Lock()
		l.RefillsProduced += r.tail
		l.RefillsStarted += r.started
		l.ItemsConsumed += r.consumed
		l.PrefetchHits += r.hits
		l.PrefetchMisses += r.misses
		r.mu.Unlock()
	}
	return l
}
