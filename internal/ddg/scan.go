package ddg

import "fmt"

// BitSource yields one random bit per call (0 or 1).  The ddg package uses
// it for the reference sampler; production samplers live in
// internal/sampler and draw from internal/prng.
type BitSource interface {
	Bit() byte
}

// BitSourceFunc adapts a function to the BitSource interface.
type BitSourceFunc func() byte

// Bit implements BitSource.
func (f BitSourceFunc) Bit() byte { return f() }

// ErrFellOffTree is returned when an n-column walk terminates without
// hitting a leaf; its probability is the matrix mass deficit (≈ 2^-n).
var ErrFellOffTree = fmt.Errorf("ddg: random walk exhausted all columns without hitting a leaf")

// Scan runs Algorithm 1 (Knuth-Yao column-scanning sampling) over the
// probability matrix, drawing bits from src.  It returns the folded sample
// value and the number of random bits consumed.
func Scan(matrix [][]byte, src BitSource) (value, bitsUsed int, err error) {
	if len(matrix) == 0 {
		return 0, 0, fmt.Errorf("ddg: empty matrix")
	}
	cols := len(matrix[0])
	d := 0
	for col := 0; col < cols; col++ {
		r := int(src.Bit() & 1)
		bitsUsed++
		d = 2*d + r
		for row := len(matrix) - 1; row >= 0; row-- {
			d -= int(matrix[row][col])
			if d == -1 {
				return row, bitsUsed, nil
			}
		}
	}
	return 0, bitsUsed, ErrFellOffTree
}

// ScanPath replays a fixed bit path through the matrix; it is the testing
// bridge between Unroll's leaf enumeration and Algorithm 1.  hit is true
// only when the walk terminates exactly on the last bit of the path.
func ScanPath(matrix [][]byte, path []byte) (value int, hit bool) {
	i := 0
	v, used, err := Scan(matrix, BitSourceFunc(func() byte {
		if i >= len(path) {
			i++
			return 0
		}
		b := path[i]
		i++
		return b
	}))
	if err != nil {
		return 0, false
	}
	return v, used == len(path)
}
