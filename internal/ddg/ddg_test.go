package ddg

import (
	"math"
	"math/rand"
	"testing"

	"ctgauss/internal/gaussian"
)

func mustTree(t *testing.T, sigma string, n int, tau float64) *Tree {
	t.Helper()
	p, err := gaussian.NewParams(sigma, n, tau)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := gaussian.NewTable(p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Unroll(tb)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLeafCountEqualsColumnWeights(t *testing.T) {
	tr := mustTree(t, "2", 32, 13)
	h := tr.Table.ColumnWeights()
	perLevel := make([]int, tr.Table.Params.N)
	for _, lf := range tr.Leaves {
		perLevel[lf.Level]++
	}
	for c := range h {
		if perLevel[c] != h[c] {
			t.Fatalf("level %d: %d leaves, want h=%d", c, perLevel[c], h[c])
		}
	}
}

func TestTheorem1Holds(t *testing.T) {
	for _, sigma := range []string{"1", "2", "6.15543"} {
		tr := mustTree(t, sigma, 48, 13)
		if err := tr.VerifyTheorem1(); err != nil {
			t.Fatalf("σ=%s: %v", sigma, err)
		}
	}
}

func TestDeltaValuesMatchPaper(t *testing.T) {
	// §5 of the paper reports Δ = 4, 4, 6, 15 for σ = 1, 2, 6.15543, 215.
	// With our (truncation, finite-support normalisation) convention the
	// measured values are 3, 5, 6 — within ±1 of the paper, exact for
	// σ=6.15543; the paper does not pin down its rounding convention, and
	// Δ is insensitive to it beyond ±1 (verified over four convention
	// variants in EXPERIMENTS.md).  The paper's actual claim — j is bounded
	// by a small Δ — is asserted strictly.
	cases := []struct {
		sigma    string
		measured int
		paper    int
	}{
		{"1", 3, 4},
		{"2", 5, 4},
		{"6.15543", 6, 6},
	}
	for _, c := range cases {
		tr := mustTree(t, c.sigma, 128, 13)
		if tr.Delta != c.measured {
			t.Errorf("σ=%s: Δ=%d, want measured %d", c.sigma, tr.Delta, c.measured)
		}
		if d := tr.Delta - c.paper; d < -1 || d > 1 {
			t.Errorf("σ=%s: Δ=%d deviates from paper's %d by more than 1", c.sigma, tr.Delta, c.paper)
		}
	}
}

func TestDeltaSigma215(t *testing.T) {
	if testing.Short() {
		t.Skip("large support; skip in -short")
	}
	tr := mustTree(t, "215", 128, 13)
	// Paper: Δ=15. Our convention measures 11 — same magnitude, and well
	// inside the "small Δ" regime the minimization strategy needs; the
	// deviation tracks the unspecified probability-rounding convention
	// (see EXPERIMENTS.md §Δ).
	if tr.Delta != 11 {
		t.Errorf("σ=215: Δ=%d, want measured 11 (paper: 15)", tr.Delta)
	}
	if tr.Delta > 16 {
		t.Errorf("σ=215: Δ=%d violates the paper's small-Δ claim", tr.Delta)
	}
}

func TestEveryLeafPathReplaysOnAlgorithm1(t *testing.T) {
	tr := mustTree(t, "2", 24, 13)
	m := tr.Table.Matrix()
	for _, lf := range tr.Leaves {
		v, hit := ScanPath(m, lf.Path)
		if !hit {
			t.Fatalf("leaf path at level %d did not hit", lf.Level)
		}
		if v != lf.Value {
			t.Fatalf("leaf path value %d, want %d", v, lf.Value)
		}
	}
}

func TestLeafPathsArePrefixFree(t *testing.T) {
	tr := mustTree(t, "2", 20, 13)
	seen := make(map[string]bool)
	for _, lf := range tr.Leaves {
		seen[string(lf.Path)] = true
	}
	if len(seen) != len(tr.Leaves) {
		t.Fatalf("duplicate leaf paths: %d unique of %d", len(seen), len(tr.Leaves))
	}
	for _, lf := range tr.Leaves {
		for p := 1; p < len(lf.Path); p++ {
			if seen[string(lf.Path[:p])] {
				t.Fatalf("leaf path has a leaf as a proper prefix")
			}
		}
	}
}

func TestLeafProbabilityMassAccounting(t *testing.T) {
	tr := mustTree(t, "2", 40, 13)
	deficit, err := tr.LeafProbabilityCheck()
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Table.MassDeficit().Int64()
	if deficit != want {
		t.Fatalf("tree deficit %d, table deficit %d", deficit, want)
	}
}

func TestSublistsPartitionLeaves(t *testing.T) {
	tr := mustTree(t, "2", 32, 13)
	subs := tr.Sublists()
	total := 0
	lastK := -1
	for _, s := range subs {
		if s.K <= lastK {
			t.Fatalf("sublists not strictly ordered by K")
		}
		lastK = s.K
		for _, lf := range s.Leaves {
			if lf.K != s.K {
				t.Fatalf("leaf with K=%d in sublist %d", lf.K, s.K)
			}
			if lf.J > tr.Delta {
				t.Fatalf("leaf J=%d exceeds Δ=%d", lf.J, tr.Delta)
			}
		}
		total += len(s.Leaves)
	}
	if total != len(tr.Leaves) {
		t.Fatalf("sublists cover %d of %d leaves", total, len(tr.Leaves))
	}
}

func TestFigure3SublistStructure(t *testing.T) {
	// Fig. 3: σ=2, n=16. The list L sorted by trailing-ones count κ; check
	// the sublist κ values are contiguous-ish small integers starting at 0
	// and that every path in sublist κ starts with 1^κ 0 in draw order.
	tr := mustTree(t, "2", 16, 13)
	subs := tr.Sublists()
	if subs[0].K != 0 {
		t.Fatalf("first sublist K=%d, want 0", subs[0].K)
	}
	for _, s := range subs {
		for _, lf := range s.Leaves {
			for i := 0; i < s.K; i++ {
				if lf.Path[i] != 1 {
					t.Fatalf("sublist %d path bit %d not 1", s.K, i)
				}
			}
			if lf.Path[s.K] != 0 {
				t.Fatalf("sublist %d path has no 0 at position %d", s.K, s.K)
			}
		}
	}
}

func TestScanStatisticalAgreement(t *testing.T) {
	// The Alg.1 sampler over the σ=2 matrix must reproduce the folded
	// distribution within sampling noise.
	tr := mustTree(t, "2", 32, 13)
	m := tr.Table.Matrix()
	rng := rand.New(rand.NewSource(42))
	counts := make(map[int]int)
	const samples = 200000
	for i := 0; i < samples; i++ {
		v, _, err := Scan(m, BitSourceFunc(func() byte { return byte(rng.Intn(2)) }))
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	for v := 0; v <= 6; v++ {
		want := tr.Table.FoldedProb(v)
		got := float64(counts[v]) / samples
		if math.Abs(got-want) > 0.01 {
			t.Errorf("value %d: frequency %.4f, want %.4f", v, got, want)
		}
	}
}

func TestScanAverageBitsReasonable(t *testing.T) {
	// Knuth-Yao consumes close to the entropy plus ~2 bits on average.
	tr := mustTree(t, "2", 32, 13)
	m := tr.Table.Matrix()
	rng := rand.New(rand.NewSource(7))
	var totalBits int
	const samples = 50000
	for i := 0; i < samples; i++ {
		_, used, err := Scan(m, BitSourceFunc(func() byte { return byte(rng.Intn(2)) }))
		if err != nil {
			t.Fatal(err)
		}
		totalBits += used
	}
	avg := float64(totalBits) / samples
	if avg < 2 || avg > 8 {
		t.Fatalf("average bits per sample = %.2f, expected a small constant", avg)
	}
}

func TestMaxValueBits(t *testing.T) {
	// At n=32 values beyond 15 have probability < 2^-32 (all-zero rows), so
	// only 4 bits are needed; full 128-bit precision reaches value 26 → 5.
	tr := mustTree(t, "2", 32, 13)
	if got := tr.MaxValueBits(); got != 4 {
		t.Fatalf("MaxValueBits(n=32) = %d, want 4", got)
	}
	tr = mustTree(t, "2", 128, 13)
	if got := tr.MaxValueBits(); got != 5 {
		t.Fatalf("MaxValueBits(n=128) = %d, want 5", got)
	}
}

func TestAllOnesNeverHits(t *testing.T) {
	// Direct check of Theorem 1's statement: feeding only 1 bits never
	// produces a sample within n columns.
	tr := mustTree(t, "2", 32, 13)
	m := tr.Table.Matrix()
	_, _, err := Scan(m, BitSourceFunc(func() byte { return 1 }))
	if err == nil {
		t.Fatal("all-ones input hit a leaf; Theorem 1 violated")
	}
}

func TestInternalNodesBounded(t *testing.T) {
	tr := mustTree(t, "6.15543", 64, 13)
	for lvl, cnt := range tr.InternalPerLevel {
		if cnt > 4*(tr.Table.Support+1) {
			t.Fatalf("level %d has %d internal nodes", lvl, cnt)
		}
	}
}

func TestUnrollEmptyMatrixError(t *testing.T) {
	if _, _, err := Scan(nil, BitSourceFunc(func() byte { return 0 })); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}
