// Package ddg implements the discrete distribution generating (DDG) tree
// machinery behind Knuth-Yao sampling: on-the-fly column-scanning sampling
// (Alg. 1 of the paper), explicit enumeration of every random bit string
// that hits a leaf (the list L of §5.1), verification of the structural
// Theorem 1 (every sample-generating string is x^i (0/1)^j 0 1^k in draw
// order: k ones, one zero, then j payload bits), the Δ bound on j, and the
// sublist split of Fig. 3.
package ddg

import (
	"fmt"
	"sort"

	"ctgauss/internal/gaussian"
)

// Leaf describes one DDG-tree leaf: the unique root path that reaches it
// and the sample value it carries.
type Leaf struct {
	// Path holds the random bits in draw order: Path[0] is the first bit
	// consumed by the sampler (b₀ in the paper; the paper writes it as the
	// rightmost character of the string).
	Path []byte
	// Value is the (folded, non-negative) sample value at this leaf.
	Value int
	// Level is the tree level of the leaf (== len(Path)-1).
	Level int
	// K is the length of the initial run of ones in Path (the 1^k block).
	K int
	// J is the number of payload bits after the terminating zero:
	// J = len(Path) - K - 1.
	J int
}

// Tree is the result of unrolling the DDG tree of a probability matrix.
type Tree struct {
	Table  *gaussian.Table
	Leaves []Leaf
	// InternalPerLevel[i] is the number of internal nodes at level i
	// (t_i in the analysis; bounded for any sensible distribution).
	InternalPerLevel []int
	// Delta is max_leaf J — the paper's Δ.
	Delta int
	// MaxK is the largest initial-ones run among leaves (n' in the paper).
	MaxK int
}

// node is an internal DDG node during unrolling, identified by its
// distance d from the *top* of the internal block, carrying its root path.
type node struct {
	d    int
	path []byte
}

// Unroll walks the probability matrix column by column, reproducing the
// on-the-fly DDG construction, and records every leaf with its unique root
// path.
//
// At level i the 2·t_{i-1} children are ordered top-to-bottom; the h_i
// leaves occupy the top of the block and are labelled by scanning matrix
// rows from the highest sample value (MAXROW) down to 0, matching Alg. 1,
// where d counts the distance from the node to the rightmost visited node
// and a hit happens when d goes negative while subtracting column bits.
func Unroll(t *gaussian.Table) (*Tree, error) {
	m := t.Matrix()
	n := t.Params.N
	rows := len(m)

	// Column c: list of sample values owning leaves, scanned from MAXROW
	// down to 0 — leafRows[c][s] is the value for the node with d = s.
	leafRows := make([][]int, n)
	for c := 0; c < n; c++ {
		for r := rows - 1; r >= 0; r-- {
			if m[r][c] == 1 {
				leafRows[c] = append(leafRows[c], r)
			}
		}
	}

	tree := &Tree{Table: t, InternalPerLevel: make([]int, n)}
	cur := []node{{d: 0, path: nil}} // virtual root (level -1)
	for c := 0; c < n; c++ {
		h := len(leafRows[c])
		next := make([]node, 0, 2*len(cur))
		for _, nd := range cur {
			for bit := 0; bit <= 1; bit++ {
				// Alg.1: d ← 2d + r. With r the new random bit, the child
				// distance from the top of the level-c block is 2d + r.
				cd := 2*nd.d + bit
				path := make([]byte, len(nd.path)+1)
				copy(path, nd.path)
				path[len(nd.path)] = byte(bit)
				if cd < h {
					k := onesRun(path)
					tree.Leaves = append(tree.Leaves, Leaf{
						Path:  path,
						Value: leafRows[c][cd],
						Level: c,
						K:     k,
						J:     len(path) - k - 1,
					})
				} else {
					next = append(next, node{d: cd - h, path: path})
				}
			}
		}
		tree.InternalPerLevel[c] = len(next)
		cur = next
		if len(cur) == 0 {
			break
		}
		if len(cur) > 4*rows+8 {
			return nil, fmt.Errorf("ddg: internal node count %d at level %d exceeds bound; matrix is not a (near-)probability distribution", len(cur), c)
		}
	}

	for _, lf := range tree.Leaves {
		if lf.J > tree.Delta {
			tree.Delta = lf.J
		}
		if lf.K > tree.MaxK {
			tree.MaxK = lf.K
		}
	}
	sort.SliceStable(tree.Leaves, func(i, j int) bool {
		if tree.Leaves[i].K != tree.Leaves[j].K {
			return tree.Leaves[i].K < tree.Leaves[j].K
		}
		return tree.Leaves[i].Level < tree.Leaves[j].Level
	})
	return tree, nil
}

// onesRun returns the length of the initial run of 1 bits in draw order.
func onesRun(path []byte) int {
	k := 0
	for _, b := range path {
		if b != 1 {
			break
		}
		k++
	}
	return k
}

// VerifyTheorem1 checks that every leaf path consists of an initial run of
// ones, a single zero, and then payload bits — i.e. no leaf path is all
// ones (the x^i 1^k' form excluded by Theorem 1).
func (tr *Tree) VerifyTheorem1() error {
	for _, lf := range tr.Leaves {
		if lf.K == len(lf.Path) {
			return fmt.Errorf("ddg: leaf at level %d has all-ones path, violating Theorem 1", lf.Level)
		}
		if lf.Path[lf.K] != 0 {
			return fmt.Errorf("ddg: leaf path does not have 0 after the ones run")
		}
	}
	return nil
}

// Sublist is l_κ of the paper: all leaves whose paths start with exactly κ
// ones followed by a zero.  Within a sublist the sample is a function of
// the ≤ Δ payload bits alone.
type Sublist struct {
	K      int
	Leaves []Leaf
}

// Sublists splits the (already K-sorted) leaves into the paper's l_κ lists.
// Empty κ values are skipped; the result is ordered by increasing K.
func (tr *Tree) Sublists() []Sublist {
	var out []Sublist
	for _, lf := range tr.Leaves {
		if len(out) == 0 || out[len(out)-1].K != lf.K {
			out = append(out, Sublist{K: lf.K})
		}
		s := &out[len(out)-1]
		s.Leaves = append(s.Leaves, lf)
	}
	return out
}

// MaxValueBits returns the number of bits m needed to encode the largest
// sample value among the leaves.
func (tr *Tree) MaxValueBits() int {
	maxv := 0
	for _, lf := range tr.Leaves {
		if lf.Value > maxv {
			maxv = lf.Value
		}
	}
	bits := 0
	for v := maxv; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

// LeafProbabilityCheck verifies that Σ_leaves 2^-(level+1) equals
// 1 − deficit·2^-N, i.e. the unrolled tree accounts for exactly the mass
// stored in the probability matrix.  It returns the deficit in units of
// 2^-N (which must match Table.MassDeficit).
func (tr *Tree) LeafProbabilityCheck() (deficitUnits int64, err error) {
	n := tr.Table.Params.N
	// Work in units of 2^-N using big-ish arithmetic via int64 when safe:
	// mass of a leaf at level c is 2^(N-1-c) units. For N ≤ 62 int64 is
	// enough; larger N uses the internal-node count at the last level,
	// which equals the deficit in units of 2^-N.
	if n <= 62 {
		var sum int64
		for _, lf := range tr.Leaves {
			sum += int64(1) << uint(n-1-lf.Level)
		}
		return (int64(1) << uint(n)) - sum, nil
	}
	last := tr.InternalPerLevel[n-1]
	return int64(last), nil
}
