package registry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ctgauss/internal/core"
	"ctgauss/internal/prng"
)

var testCfg = core.Config{Sigma: "2", N: 48, TailCut: 13, Min: core.MinimizeExact}

func drain(t *testing.T, a *Artifact, n int) []int {
	t.Helper()
	s := a.NewSampler(prng.MustChaCha20([]byte("reg-test")))
	out := make([]int, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// TestMemHitSkipsRebuild is the acceptance-criteria test: a registry hit
// must return a ready sampler without re-running the minimization pipeline.
func TestMemHitSkipsRebuild(t *testing.T) {
	r := New("")
	a1, err := r.Get(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Get(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("second Get returned a different artifact pointer")
	}
	st := r.Stats()
	if st.Builds != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 build and 1 memory hit", st)
	}
	if got := drain(t, a2, 64); len(got) != 64 {
		t.Fatal("cached artifact did not yield a working sampler")
	}
}

func TestDistinctKeysBuildSeparately(t *testing.T) {
	r := New("")
	if _, err := r.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	other := testCfg
	other.Min = core.MinimizeGreedy
	if _, err := r.Get(other); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Builds != 2 {
		t.Fatalf("stats = %+v, want 2 builds for 2 keys", st)
	}
}

func TestWorkerCountDoesNotSplitKey(t *testing.T) {
	r := New("")
	a := testCfg
	a.Workers = 1
	b := testCfg
	b.Workers = 8
	if _, err := r.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(b); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Builds != 1 {
		t.Fatalf("stats = %+v, want Workers excluded from the key", st)
	}
}

// TestDiskRoundTrip checks the O(load) repeat-build path: a second
// registry over the same directory must serve from disk, run zero builds,
// and produce a sampler bit-identical to the freshly built one.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r1 := New(dir)
	a1, err := r1.Get(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1.FromDisk {
		t.Fatal("cold build marked FromDisk")
	}

	r2 := New(dir)
	a2, err := r2.Get(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.FromDisk {
		t.Fatal("second process did not load from disk")
	}
	st := r2.Stats()
	if st.Builds != 0 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 0 builds and 1 disk hit", st)
	}
	if a2.Support != a1.Support || a2.Delta != a1.Delta ||
		a2.LeafCount != a1.LeafCount || a2.SublistCount != a1.SublistCount {
		t.Fatalf("stats diverged across serialization: %+v vs %+v", a2, a1)
	}
	want := drain(t, a1, 256)
	got := drain(t, a2, 256)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: disk-loaded %d, built %d", i, got[i], want[i])
		}
	}
}

func TestCorruptCacheFallsBackToBuild(t *testing.T) {
	dir := t.TempDir()
	r1 := New(dir)
	if _, err := r1.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files: %v, %v", files, err)
	}

	// Truncated JSON must be ignored.
	if err := os.WriteFile(files[0], []byte(`{"Version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := New(dir)
	if _, err := r2.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("stats after corrupt file = %+v, want a rebuild", st)
	}

	// Valid JSON with an out-of-range register must fail Validate.
	data, err := os.ReadFile(files[0]) // freshly rewritten by r2
	if err != nil {
		t.Fatal(err)
	}
	var da diskArtifact
	if err := json.Unmarshal(data, &da); err != nil {
		t.Fatal(err)
	}
	da.Program.Outputs[0] = da.Program.NumRegs + 7
	bad, err := json.Marshal(da)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := New(dir)
	if _, err := r3.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	if st := r3.Stats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("stats after invalid program = %+v, want a rebuild", st)
	}
}

// TestSingleflight floods one cold key from many goroutines: all must get
// the same artifact and the pipeline must run exactly once.
func TestSingleflight(t *testing.T) {
	r := New("")
	const goroutines = 32
	arts := make([]*Artifact, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			a, err := r.Get(testCfg)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if arts[i] != arts[0] {
			t.Fatal("goroutines observed different artifacts")
		}
	}
	st := r.Stats()
	if st.Builds != 1 {
		t.Fatalf("stats = %+v, want exactly 1 build under contention", st)
	}
	// Waiters on the in-flight cold build are part of the miss, not
	// memory hits; only requests after resolution may count as hits.
	if st.Builds+st.MemHits+st.DiskHits > goroutines {
		t.Fatalf("stats = %+v, counters exceed request count", st)
	}
	if _, err := r.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats(); after.MemHits != st.MemHits+1 {
		t.Fatalf("stats = %+v, want a memory hit once resolved", after)
	}
}

func TestBadConfigNotPoisoned(t *testing.T) {
	r := New("")
	bad := core.Config{Sigma: "nope", N: 48, TailCut: 13}
	if _, err := r.Get(bad); err == nil {
		t.Fatal("expected error for invalid σ")
	}
	// The failed entry must not shadow a later (still failing) retry or
	// block a valid key.
	if _, err := r.Get(bad); err == nil {
		t.Fatal("expected error on retry")
	}
	if _, err := r.Get(testCfg); err != nil {
		t.Fatal(err)
	}
}

func TestSharedRegistryIsSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned different registries")
	}
}
