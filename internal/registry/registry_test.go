package registry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ctgauss/internal/core"
	"ctgauss/internal/prng"
)

var testCfg = core.Config{Sigma: "2", N: 48, TailCut: 13, Min: core.MinimizeExact}

func drain(t *testing.T, a *Artifact, n int) []int {
	t.Helper()
	s := a.NewSampler(prng.MustChaCha20([]byte("reg-test")))
	out := make([]int, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// TestMemHitSkipsRebuild is the acceptance-criteria test: a registry hit
// must return a ready sampler without re-running the minimization pipeline.
func TestMemHitSkipsRebuild(t *testing.T) {
	r := New("")
	a1, err := r.Get(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Get(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("second Get returned a different artifact pointer")
	}
	st := r.Stats()
	if st.Builds != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 build and 1 memory hit", st)
	}
	if got := drain(t, a2, 64); len(got) != 64 {
		t.Fatal("cached artifact did not yield a working sampler")
	}
}

func TestDistinctKeysBuildSeparately(t *testing.T) {
	r := New("")
	if _, err := r.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	other := testCfg
	other.Min = core.MinimizeGreedy
	if _, err := r.Get(other); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Builds != 2 {
		t.Fatalf("stats = %+v, want 2 builds for 2 keys", st)
	}
}

func TestWorkerCountDoesNotSplitKey(t *testing.T) {
	r := New("")
	a := testCfg
	a.Workers = 1
	b := testCfg
	b.Workers = 8
	if _, err := r.Get(a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(b); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Builds != 1 {
		t.Fatalf("stats = %+v, want Workers excluded from the key", st)
	}
}

// TestDiskRoundTrip checks the O(load) repeat-build path: a second
// registry over the same directory must serve from disk, run zero builds,
// and produce a sampler bit-identical to the freshly built one.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r1 := New(dir)
	a1, err := r1.Get(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1.FromDisk {
		t.Fatal("cold build marked FromDisk")
	}

	r2 := New(dir)
	a2, err := r2.Get(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.FromDisk {
		t.Fatal("second process did not load from disk")
	}
	st := r2.Stats()
	if st.Builds != 0 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 0 builds and 1 disk hit", st)
	}
	if a2.Support != a1.Support || a2.Delta != a1.Delta ||
		a2.LeafCount != a1.LeafCount || a2.SublistCount != a1.SublistCount {
		t.Fatalf("stats diverged across serialization: %+v vs %+v", a2, a1)
	}
	want := drain(t, a1, 256)
	got := drain(t, a2, 256)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: disk-loaded %d, built %d", i, got[i], want[i])
		}
	}
}

func TestCorruptCacheFallsBackToBuild(t *testing.T) {
	dir := t.TempDir()
	r1 := New(dir)
	if _, err := r1.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files: %v, %v", files, err)
	}

	// Truncated JSON must be ignored.
	if err := os.WriteFile(files[0], []byte(`{"Version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := New(dir)
	if _, err := r2.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("stats after corrupt file = %+v, want a rebuild", st)
	}

	// Valid JSON with an out-of-range register must fail Validate.
	data, err := os.ReadFile(files[0]) // freshly rewritten by r2
	if err != nil {
		t.Fatal(err)
	}
	var da diskArtifact
	if err := json.Unmarshal(data, &da); err != nil {
		t.Fatal(err)
	}
	da.Program.Outputs[0] = da.Program.NumRegs + 7
	bad, err := json.Marshal(da)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := New(dir)
	if _, err := r3.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	if st := r3.Stats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("stats after invalid program = %+v, want a rebuild", st)
	}
}

// TestSingleflight floods one cold key from many goroutines: all must get
// the same artifact and the pipeline must run exactly once.
func TestSingleflight(t *testing.T) {
	r := New("")
	const goroutines = 32
	arts := make([]*Artifact, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			a, err := r.Get(testCfg)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if arts[i] != arts[0] {
			t.Fatal("goroutines observed different artifacts")
		}
	}
	st := r.Stats()
	if st.Builds != 1 {
		t.Fatalf("stats = %+v, want exactly 1 build under contention", st)
	}
	// Waiters on the in-flight cold build are part of the miss, not
	// memory hits; only requests after resolution may count as hits.
	if st.Builds+st.MemHits+st.DiskHits > goroutines {
		t.Fatalf("stats = %+v, counters exceed request count", st)
	}
	if _, err := r.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats(); after.MemHits != st.MemHits+1 {
		t.Fatalf("stats = %+v, want a memory hit once resolved", after)
	}
}

func TestBadConfigNotPoisoned(t *testing.T) {
	r := New("")
	bad := core.Config{Sigma: "nope", N: 48, TailCut: 13}
	if _, err := r.Get(bad); err == nil {
		t.Fatal("expected error for invalid σ")
	}
	// The failed entry must not shadow a later (still failing) retry or
	// block a valid key.
	if _, err := r.Get(bad); err == nil {
		t.Fatal("expected error on retry")
	}
	if _, err := r.Get(testCfg); err != nil {
		t.Fatal(err)
	}
}

func TestSharedRegistryIsSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared returned different registries")
	}
}

var testSetCfgs = []core.Config{
	{Sigma: "2", N: 48, TailCut: 13, Min: core.MinimizeExact},
	{Sigma: "3", N: 48, TailCut: 13, Min: core.MinimizeExact},
}

// TestGetSetSeedsMembers: resolving a set must make later member-wise
// Gets memory hits — the pool layers resolve per σ, and the convolution
// layer must not cause duplicate builds alongside them.
func TestGetSetSeedsMembers(t *testing.T) {
	r := New("")
	set, err := r.GetSet(testSetCfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Members) != 2 || set.FromDisk {
		t.Fatalf("set = %+v, want 2 freshly built members", set)
	}
	if st := r.Stats(); st.Builds != 2 {
		t.Fatalf("stats = %+v, want one build per member", st)
	}
	for i, cfg := range testSetCfgs {
		a, err := r.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a != set.Members[i] {
			t.Fatalf("member %d: Get returned a different artifact than the set", i)
		}
	}
	if st := r.Stats(); st.Builds != 2 || st.MemHits != 2 {
		t.Fatalf("stats = %+v, want member Gets to be memory hits", st)
	}
	// The same set again is one memoized entry.
	set2, err := r.GetSet(testSetCfgs)
	if err != nil {
		t.Fatal(err)
	}
	if set2 != set {
		t.Fatal("second GetSet returned a different set artifact")
	}
}

// TestGetSetDiskRoundTrip: a second process over the same cache dir must
// load the whole set from its single cache file — zero builds — and the
// members must be bit-identical.
func TestGetSetDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r1 := New(dir)
	set1, err := r1.GetSet(testSetCfgs)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := filepath.Glob(filepath.Join(dir, "ctgauss-set-*.json"))
	if err != nil || len(sets) != 1 {
		t.Fatalf("set cache files: %v, %v — want exactly one entry for the whole set", sets, err)
	}

	r2 := New(dir)
	set2, err := r2.GetSet(testSetCfgs)
	if err != nil {
		t.Fatal(err)
	}
	if !set2.FromDisk {
		t.Fatal("second process did not load the set from disk")
	}
	if st := r2.Stats(); st.Builds != 0 {
		t.Fatalf("stats = %+v, want zero builds on a set disk hit", st)
	}
	for i := range set1.Members {
		want := drain(t, set1.Members[i], 128)
		got := drain(t, set2.Members[i], 128)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("member %d sample %d: disk-loaded %d, built %d", i, j, got[j], want[j])
			}
		}
	}
	// Member-wise Gets after a set disk hit are memory hits too.
	if _, err := r2.Get(testSetCfgs[0]); err != nil {
		t.Fatal(err)
	}
	if st := r2.Stats(); st.Builds != 0 || st.MemHits != 1 {
		t.Fatalf("stats = %+v, want a seeded memory hit", st)
	}
}

// TestGetSetCorruptFallsBack: a damaged set file degrades to member-wise
// resolution (which may itself hit member files), never to an error.
func TestGetSetCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	r1 := New(dir)
	if _, err := r1.GetSet(testSetCfgs); err != nil {
		t.Fatal(err)
	}
	sets, _ := filepath.Glob(filepath.Join(dir, "ctgauss-set-*.json"))
	if len(sets) != 1 {
		t.Fatalf("want one set file, got %v", sets)
	}
	if err := os.WriteFile(sets[0], []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := New(dir)
	set, err := r2.GetSet(testSetCfgs)
	if err != nil {
		t.Fatal(err)
	}
	if set.FromDisk {
		t.Fatal("corrupt set file reported as a disk hit")
	}
	// Members still resolve from their per-member cache files.
	if st := r2.Stats(); st.Builds != 0 || st.DiskHits != 2 {
		t.Fatalf("stats = %+v, want member-wise disk hits", st)
	}
}

func TestGetSetSingleflight(t *testing.T) {
	r := New("")
	const goroutines = 16
	sets := make([]*SetArtifact, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			s, err := r.GetSet(testSetCfgs)
			if err != nil {
				t.Error(err)
				return
			}
			sets[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if sets[i] != sets[0] {
			t.Fatal("goroutines observed different set artifacts")
		}
	}
	if st := r.Stats(); st.Builds != 2 {
		t.Fatalf("stats = %+v, want one build per member under contention", st)
	}
}

func TestGetSetEmptyAndBadMember(t *testing.T) {
	r := New("")
	if _, err := r.GetSet(nil); err == nil {
		t.Fatal("empty set must error")
	}
	bad := []core.Config{{Sigma: "nope", N: 48, TailCut: 13}}
	if _, err := r.GetSet(bad); err == nil {
		t.Fatal("bad member must error")
	}
	// Failure must not poison the set key.
	if _, err := r.GetSet(bad); err == nil {
		t.Fatal("expected error on retry")
	}
	if _, err := r.GetSet(testSetCfgs); err != nil {
		t.Fatal(err)
	}
}

// TestInspect pins the non-blocking build introspection the tier
// controller's /healthz detail rides on: untracked and failed keys read
// (false, false), resolved keys (false, true), and a key mid-resolution
// (true, false) — without Inspect ever blocking on the build.
func TestInspect(t *testing.T) {
	r := New("")
	if inFlight, done := r.Inspect(testCfg); inFlight || done {
		t.Fatalf("untouched key: inFlight=%v done=%v, want false/false", inFlight, done)
	}

	// A key mid-resolution: install the singleflight slot by hand so the
	// in-flight arm is deterministic rather than a race against a fast
	// build.
	other := testCfg
	other.Sigma = "4"
	key := KeyFor(other)
	e := &entry{ready: make(chan struct{})}
	r.mu.Lock()
	r.entries[key] = e
	r.mu.Unlock()
	if inFlight, done := r.Inspect(other); !inFlight || done {
		t.Fatalf("mid-resolution key: inFlight=%v done=%v, want true/false", inFlight, done)
	}
	r.mu.Lock()
	delete(r.entries, key)
	r.mu.Unlock()
	close(e.ready)

	if _, err := r.Get(testCfg); err != nil {
		t.Fatal(err)
	}
	if inFlight, done := r.Inspect(testCfg); inFlight || !done {
		t.Fatalf("resolved key: inFlight=%v done=%v, want false/true", inFlight, done)
	}

	bad := core.Config{Sigma: "nope", N: 48, TailCut: 13}
	if _, err := r.Get(bad); err == nil {
		t.Fatal("expected error for invalid σ")
	}
	if inFlight, done := r.Inspect(bad); inFlight || done {
		t.Fatalf("failed key: inFlight=%v done=%v, want false/false (entry dropped)", inFlight, done)
	}
}
