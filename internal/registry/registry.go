// Package registry implements the build-once/serve-many layer of the
// pipeline: a process-wide memoization of compiled sampler circuits keyed
// by (σ, precision, τ, minimizer), with an optional on-disk JSON cache of
// the compiled bitslice.Program so repeated processes pay O(load) instead
// of re-running the exact Quine–McCluskey minimization.
//
// Concurrency follows the singleflight discipline: the first goroutine to
// request a key builds it while later requesters block on the same entry,
// so an N-goroutine cold start runs exactly one minimization per key.
//
// Consumers: ctgauss.Pool (and through it the internal/server HTTP
// layer) resolves its circuit here, so every pool and daemon in a
// process shares one build per configuration; ctgaussd's -cache flag is
// this package's CTGAUSS_CACHE_DIR.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"ctgauss/internal/bitslice"
	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

// diskFormatVersion guards the cache-file layout; bump it whenever the
// serialized artefact shape changes so stale files rebuild instead of
// mis-loading.
const diskFormatVersion = 1

// Key identifies a compiled sampler circuit.  Build-time knobs that do not
// change the artefact (worker count) are deliberately excluded.
type Key struct {
	Sigma   string
	N       int
	TailCut float64
	Min     core.Minimizer
}

// KeyFor derives the cache key of a build configuration.
func KeyFor(cfg core.Config) Key {
	return Key{Sigma: cfg.Sigma, N: cfg.N, TailCut: cfg.TailCut, Min: cfg.Min}
}

func (k Key) String() string {
	return fmt.Sprintf("σ=%s n=%d τ=%g min=%v", k.Sigma, k.N, k.TailCut, k.Min)
}

// Artifact is the serve-side residue of a build: the compiled constant-time
// program plus the scalar statistics tools report.  It carries everything a
// sampler needs and nothing the build pipeline used to get there, which is
// what makes it small enough to serialize.
type Artifact struct {
	Key          Key
	Program      *bitslice.Program
	Support      int // max magnitude ⌈τσ⌉
	Delta        int // payload window Δ
	LeafCount    int // DDG-tree leaves (|L|)
	SublistCount int // non-empty l_κ
	// FromDisk reports whether this artefact was loaded from the on-disk
	// cache rather than built in this process.
	FromDisk bool

	optOnce sync.Once
	opt     *bitslice.Optimized
}

// Optimized returns the register-allocated evaluation form of the
// circuit, compiled at most once per artifact and shared by every sampler
// instantiated from it — the serve-side analogue of the build-once
// discipline the registry applies to the circuit itself.
func (a *Artifact) Optimized() *bitslice.Optimized {
	a.optOnce.Do(func() { a.opt = bitslice.Optimize(a.Program) })
	return a.opt
}

// NewSampler instantiates an independent constant-time sampler over the
// cached circuit at the active SIMD backend's native width.  Instances
// needing a width-stable stream use NewWideSampler.  Instances share the
// immutable optimized program but own their PRNG state, so each is as
// cheap as a few slice allocations.
func (a *Artifact) NewSampler(src prng.Source) *sampler.Bitsliced {
	return sampler.NewBitslicedOpt("bitsliced-split("+a.Key.Sigma+")", a.Optimized(), src)
}

// NewWideSampler instantiates a width-w sampler (w×64 lanes per circuit
// evaluation) over the cached optimized circuit.
func (a *Artifact) NewWideSampler(src prng.Source, w int) *sampler.Bitsliced {
	return sampler.NewBitslicedWidth(fmt.Sprintf("bitsliced-wide%d(%s)", w, a.Key.Sigma), a.Optimized(), src, w)
}

func artifactOf(key Key, b *core.Built) *Artifact {
	return &Artifact{
		Key:          key,
		Program:      b.Program,
		Support:      b.Table.Support,
		Delta:        b.Tree.Delta,
		LeafCount:    b.LeafCount,
		SublistCount: b.SublistCount,
	}
}

// Stats counts how Get requests were satisfied.
type Stats struct {
	Builds   uint64 // full pipeline runs (cold misses)
	MemHits  uint64 // satisfied by the in-memory map
	DiskHits uint64 // satisfied by the on-disk cache
}

// Registry memoizes compiled sampler circuits.  The zero value is not
// usable; construct with New.
type Registry struct {
	dir string // on-disk cache directory; "" = memory only

	mu         sync.Mutex
	entries    map[Key]*entry
	setEntries map[string]*setEntry

	builds   atomic.Uint64
	memHits  atomic.Uint64
	diskHits atomic.Uint64
}

// entry is a singleflight slot: ready closes once art/err are final.
type entry struct {
	ready chan struct{}
	art   *Artifact
	err   error
}

// setEntry is the singleflight slot of a base-set resolution.
type setEntry struct {
	ready chan struct{}
	art   *SetArtifact
	err   error
}

// New creates a registry.  dir is the on-disk cache directory ("" disables
// disk caching); it is created on first write.  dir must be private to
// trusted users: cache files are only structurally validated on load, so
// anyone who can write there can substitute a biased sampler circuit.
func New(dir string) *Registry {
	return &Registry{dir: dir, entries: make(map[Key]*entry), setEntries: make(map[string]*setEntry)}
}

// shared is the process-wide registry behind Shared.
var (
	sharedOnce sync.Once
	shared     *Registry
)

// Shared returns the process-wide registry.  Its disk cache directory
// comes from the CTGAUSS_CACHE_DIR environment variable (unset = memory
// only), read once on first use.
func Shared() *Registry {
	sharedOnce.Do(func() { shared = New(os.Getenv("CTGAUSS_CACHE_DIR")) })
	return shared
}

// Get returns the artifact for cfg, building it at most once per process
// no matter how many goroutines ask.  Resolution order: in-memory map,
// then on-disk cache, then a full core.Build (whose result is written
// through to disk when a cache directory is configured).
func (r *Registry) Get(cfg core.Config) (*Artifact, error) {
	key := KeyFor(cfg)
	r.mu.Lock()
	if e, ok := r.entries[key]; ok {
		r.mu.Unlock()
		// Only a request that found the artifact already resolved is a
		// memory hit; waiters piling onto an in-flight cold build are
		// part of that build's miss.
		select {
		case <-e.ready:
			if e.err == nil {
				r.memHits.Add(1)
			}
		default:
			<-e.ready
		}
		return e.art, e.err
	}
	e := &entry{ready: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()

	e.art, e.err = r.load(key, cfg)
	if e.err != nil {
		// Drop failed entries so transient failures (e.g. an unreadable
		// cache dir racing a rebuild) do not poison the key forever;
		// deterministic config errors simply fail again on retry.
		r.mu.Lock()
		delete(r.entries, key)
		r.mu.Unlock()
	}
	close(e.ready)
	return e.art, e.err
}

// Inspect reports, without blocking, whether the artifact for cfg is
// currently being resolved by some goroutine (inFlight) and whether it
// has already resolved successfully (done).  Both false means nothing
// has asked for the key (or its last resolution failed and was
// dropped).  Serving layers use it to introspect background builds —
// e.g. the tier controller's /healthz "building" detail — without
// joining the singleflight wait.
func (r *Registry) Inspect(cfg core.Config) (inFlight, done bool) {
	key := KeyFor(cfg)
	r.mu.Lock()
	e, ok := r.entries[key]
	r.mu.Unlock()
	if !ok {
		return false, false
	}
	select {
	case <-e.ready:
		return false, e.err == nil
	default:
		return true, false
	}
}

// Stats returns a snapshot of the hit/miss counters.
func (r *Registry) Stats() Stats {
	return Stats{
		Builds:   r.builds.Load(),
		MemHits:  r.memHits.Load(),
		DiskHits: r.diskHits.Load(),
	}
}

// SetArtifact is the resolution of a whole base set as one unit: the
// compiled circuits of every member, in request order.  It is the
// artifact behind the convolution layer (internal/convolve), which
// composes a fixed set of base circuits into arbitrary-(σ, μ) samples,
// so the set — not any individual member — is the deployment unit: one
// registry entry, one disk cache file, one parallel cold build.
type SetArtifact struct {
	Keys    []Key
	Members []*Artifact
	// FromDisk reports whether the whole set was satisfied by its single
	// on-disk cache file (members may individually come from disk even
	// when this is false; see GetSet).
	FromDisk bool
}

// setID canonically identifies an ordered member-key list.
func setID(keys []Key) string {
	b, _ := json.Marshal(keys)
	return string(b)
}

// GetSet resolves every cfg as one artifact, building at most once per
// process per member list.  Resolution order: in-memory set map, then
// the single on-disk set file, then member-wise resolution through Get —
// each member build running concurrently (and internally parallelized
// by its Config.Workers), with the assembled set written through to one
// set cache file.  Either path seeds the per-member entries, so later
// per-σ Gets (e.g. a ctgauss.Pool over one member) are memory hits.
func (r *Registry) GetSet(cfgs []core.Config) (*SetArtifact, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("registry: empty base set")
	}
	keys := make([]Key, len(cfgs))
	for i, cfg := range cfgs {
		keys[i] = KeyFor(cfg)
	}
	id := setID(keys)
	r.mu.Lock()
	if e, ok := r.setEntries[id]; ok {
		r.mu.Unlock()
		<-e.ready
		return e.art, e.err
	}
	e := &setEntry{ready: make(chan struct{})}
	r.setEntries[id] = e
	r.mu.Unlock()

	e.art, e.err = r.loadSet(id, keys, cfgs)
	if e.err != nil {
		r.mu.Lock()
		delete(r.setEntries, id)
		r.mu.Unlock()
	}
	close(e.ready)
	return e.art, e.err
}

func (r *Registry) loadSet(id string, keys []Key, cfgs []core.Config) (*SetArtifact, error) {
	if r.dir != "" {
		if set := r.loadSetDisk(id, keys); set != nil {
			r.diskHits.Add(1)
			for i, art := range set.Members {
				r.seed(keys[i], art)
			}
			return set, nil
		}
	}
	set := &SetArtifact{Keys: keys, Members: make([]*Artifact, len(cfgs))}
	var wg sync.WaitGroup
	errs := make([]error, len(cfgs))
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			set.Members[i], errs[i] = r.Get(cfgs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if r.dir != "" {
		_ = r.storeSetDisk(id, set) // best effort, like storeDisk
	}
	return set, nil
}

// seed inserts an already-resolved artifact under key if absent, so
// set-level resolution makes later member-wise Gets memory hits.
func (r *Registry) seed(key Key, art *Artifact) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[key]; ok {
		return
	}
	e := &entry{ready: make(chan struct{}), art: art}
	close(e.ready)
	r.entries[key] = e
}

// diskSet is the JSON layout of the single set cache file.
type diskSet struct {
	Version int
	Keys    []Key
	Members []diskArtifact
}

// setPath content-addresses the set cache file by its member-key list.
func (r *Registry) setPath(id string) string {
	sum := sha256.Sum256([]byte(id))
	return filepath.Join(r.dir, "ctgauss-set-"+hex.EncodeToString(sum[:8])+".json")
}

// loadSetDisk returns the cached set or nil if absent/stale/corrupt.
func (r *Registry) loadSetDisk(id string, keys []Key) *SetArtifact {
	data, err := os.ReadFile(r.setPath(id))
	if err != nil {
		return nil
	}
	var ds diskSet
	if err := json.Unmarshal(data, &ds); err != nil {
		return nil
	}
	if ds.Version != diskFormatVersion || len(ds.Keys) != len(keys) || len(ds.Members) != len(keys) {
		return nil
	}
	set := &SetArtifact{Keys: keys, Members: make([]*Artifact, len(keys)), FromDisk: true}
	for i, da := range ds.Members {
		if ds.Keys[i] != keys[i] || da.Key != keys[i] || da.Program == nil || da.Program.Validate() != nil {
			return nil
		}
		set.Members[i] = &Artifact{
			Key:          da.Key,
			Program:      da.Program,
			Support:      da.Support,
			Delta:        da.Delta,
			LeafCount:    da.LeafCount,
			SublistCount: da.SublistCount,
			FromDisk:     true,
		}
	}
	return set
}

// storeSetDisk writes the whole set atomically as one cache file.
func (r *Registry) storeSetDisk(id string, set *SetArtifact) error {
	if err := os.MkdirAll(r.dir, 0o700); err != nil {
		return err
	}
	ds := diskSet{Version: diskFormatVersion, Keys: set.Keys}
	for _, art := range set.Members {
		ds.Members = append(ds.Members, diskArtifact{
			Version:      diskFormatVersion,
			Key:          art.Key,
			Support:      art.Support,
			Delta:        art.Delta,
			LeafCount:    art.LeafCount,
			SublistCount: art.SublistCount,
			Program:      art.Program,
		})
	}
	data, err := json.Marshal(ds)
	if err != nil {
		return err
	}
	return writeFileAtomic(r.dir, r.setPath(id), data)
}

// diskArtifact is the JSON cache-file layout.
type diskArtifact struct {
	Version      int
	Key          Key
	Support      int
	Delta        int
	LeafCount    int
	SublistCount int
	Program      *bitslice.Program
}

// path returns the cache file for key: a content-addressed name so every
// distinct key gets its own file and no character of σ needs escaping.
func (r *Registry) path(key Key) string {
	kj, _ := json.Marshal(key)
	sum := sha256.Sum256(kj)
	return filepath.Join(r.dir, "ctgauss-"+hex.EncodeToString(sum[:8])+".json")
}

func (r *Registry) load(key Key, cfg core.Config) (*Artifact, error) {
	if r.dir != "" {
		if art := r.loadDisk(key); art != nil {
			r.diskHits.Add(1)
			return art, nil
		}
	}
	built, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	r.builds.Add(1)
	art := artifactOf(key, built)
	if r.dir != "" {
		// Best effort: a failed write (read-only dir, full disk) degrades
		// to memory-only caching rather than failing the build.
		_ = r.storeDisk(key, art)
	}
	return art, nil
}

// loadDisk returns the cached artifact or nil if absent/stale/corrupt.
func (r *Registry) loadDisk(key Key) *Artifact {
	data, err := os.ReadFile(r.path(key))
	if err != nil {
		return nil
	}
	var da diskArtifact
	if err := json.Unmarshal(data, &da); err != nil {
		return nil
	}
	if da.Version != diskFormatVersion || da.Key != key || da.Program == nil {
		return nil
	}
	if err := da.Program.Validate(); err != nil {
		return nil
	}
	return &Artifact{
		Key:          da.Key,
		Program:      da.Program,
		Support:      da.Support,
		Delta:        da.Delta,
		LeafCount:    da.LeafCount,
		SublistCount: da.SublistCount,
		FromDisk:     true,
	}
}

// storeDisk writes the artifact atomically (temp file + rename) so a
// concurrent reader never observes a truncated cache file.  The directory
// is created private (0700): cached circuits are loaded with only
// structural validation, so the cache directory must not be writable by
// untrusted users — a planted file could substitute a biased sampler.
func (r *Registry) storeDisk(key Key, art *Artifact) error {
	if err := os.MkdirAll(r.dir, 0o700); err != nil {
		return err
	}
	da := diskArtifact{
		Version:      diskFormatVersion,
		Key:          key,
		Support:      art.Support,
		Delta:        art.Delta,
		LeafCount:    art.LeafCount,
		SublistCount: art.SublistCount,
		Program:      art.Program,
	}
	data, err := json.Marshal(da)
	if err != nil {
		return err
	}
	return writeFileAtomic(r.dir, r.path(key), data)
}

// writeFileAtomic writes data to dst via a temp file + rename so a
// concurrent reader never observes a truncated cache file.
func writeFileAtomic(dir, dst string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "ctgauss-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
