// Package ctcheck reimplements the statistical constant-time test of
// "dudect" (Reparaz, Balasch, Verbauwhede — DATE 2017), which the paper
// uses to affirm the constant running time of its sampler, plus a
// deterministic work-count analysis that is more reliable than wall-clock
// timing under a garbage-collected runtime.
//
// The dudect methodology: measure the execution time of the target under
// two input classes (typically "fixed" vs "random"), optionally crop upper
// percentiles to shed measurement tails, and compute Welch's t-statistic
// between the classes.  |t| > 4.5 is the customary evidence of a timing
// leak; |t| staying below that over many measurements is evidence of
// constant-time behaviour.
package ctcheck

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Threshold is the customary |t| bound above which dudect declares a leak.
const Threshold = 4.5

// Welch returns Welch's t-statistic between two samples.  It returns 0
// when either sample has fewer than two points or zero variance in both.
func Welch(a, b []float64) float64 {
	if len(a) < 2 || len(b) < 2 {
		return 0
	}
	ma, va := meanVar(a)
	mb, vb := meanVar(b)
	den := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if den == 0 {
		return 0
	}
	return (ma - mb) / den
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

// Crop returns the measurements at or below the pct percentile (0 < pct ≤
// 1), the dudect post-processing that sheds interrupt/GC tails.
func Crop(xs []float64, pct float64) []float64 {
	if pct <= 0 || pct > 1 {
		panic("ctcheck: percentile must be in (0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cut := sorted[int(float64(len(sorted)-1)*pct)]
	var out []float64
	for _, x := range xs {
		if x <= cut {
			out = append(out, x)
		}
	}
	return out
}

// Result summarises one dudect comparison.
type Result struct {
	T      float64 // Welch's t on cropped measurements
	TRaw   float64 // Welch's t on raw measurements
	Leaky  bool    // |T| > Threshold
	NA, NB int     // measurement counts per class
}

func (r Result) String() string {
	verdict := "no evidence of timing leak"
	if r.Leaky {
		verdict = "TIMING LEAK"
	}
	return fmt.Sprintf("t=%+.2f (raw %+.2f), n=%d/%d: %s", r.T, r.TRaw, r.NA, r.NB, verdict)
}

// Options tunes a timing comparison.
type Options struct {
	Measurements int     // timing samples per class (default 2000)
	InnerReps    int     // target invocations per timing sample (default 32)
	CropPct      float64 // percentile crop (default 0.9)
}

func (o *Options) fill() {
	if o.Measurements == 0 {
		o.Measurements = 2000
	}
	if o.InnerReps == 0 {
		o.InnerReps = 32
	}
	if o.CropPct == 0 {
		o.CropPct = 0.9
	}
}

// CompareTiming measures classA and classB in randomized order and
// returns the Welch comparison.  Randomizing the class order per
// measurement (as dudect does) cancels drift such as frequency scaling,
// cache warming and GC phase, which a fixed ABAB… order would alias into
// a fake shift.
func CompareTiming(classA, classB func(), opt Options) Result {
	opt.fill()
	ta := make([]float64, 0, opt.Measurements)
	tb := make([]float64, 0, opt.Measurements)
	lcg := uint64(0x9e3779b97f4a7c15)
	for len(ta) < opt.Measurements || len(tb) < opt.Measurements {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		pickA := lcg>>63 == 1
		if pickA && len(ta) >= opt.Measurements {
			pickA = false
		}
		if !pickA && len(tb) >= opt.Measurements {
			pickA = true
		}
		f := classB
		if pickA {
			f = classA
		}
		start := time.Now()
		for r := 0; r < opt.InnerReps; r++ {
			f()
		}
		d := float64(time.Since(start).Nanoseconds())
		if pickA {
			ta = append(ta, d)
		} else {
			tb = append(tb, d)
		}
	}
	ca, cb := Crop(ta, opt.CropPct), Crop(tb, opt.CropPct)
	t := Welch(ca, cb)
	return Result{
		T:     t,
		TRaw:  Welch(ta, tb),
		Leaky: math.Abs(t) > Threshold,
		NA:    len(ca),
		NB:    len(cb),
	}
}

// WorkTrace is the deterministic alternative: a per-invocation work count
// (loop iterations, bits consumed, table scans).  A constant-time
// algorithm has identical counts for every invocation; a leaky one shows
// variance correlated with secrets.
type WorkTrace struct {
	Counts []uint64
}

// Record appends one invocation's work count.
func (w *WorkTrace) Record(c uint64) { w.Counts = append(w.Counts, c) }

// Constant reports whether every recorded count is identical.
func (w *WorkTrace) Constant() bool {
	for _, c := range w.Counts[1:] {
		if c != w.Counts[0] {
			return false
		}
	}
	return len(w.Counts) > 0
}

// Correlation returns the Pearson correlation between work counts and an
// equal-length secret series — evidence of a leak when far from 0.
func (w *WorkTrace) Correlation(secret []float64) float64 {
	if len(secret) != len(w.Counts) || len(secret) < 2 {
		panic("ctcheck: series length mismatch")
	}
	xs := make([]float64, len(w.Counts))
	for i, c := range w.Counts {
		xs[i] = float64(c)
	}
	mx, vx := meanVar(xs)
	my, vy := meanVar(secret)
	if vx == 0 || vy == 0 {
		return 0
	}
	var cov float64
	for i := range xs {
		cov += (xs[i] - mx) * (secret[i] - my)
	}
	cov /= float64(len(xs) - 1)
	return cov / math.Sqrt(vx*vy)
}
