// Package ctcheck reimplements the statistical constant-time test of
// "dudect" (Reparaz, Balasch, Verbauwhede — DATE 2017), which the paper
// uses to affirm the constant running time of its sampler, plus a
// deterministic work-count analysis that is more reliable than wall-clock
// timing under a garbage-collected runtime.
//
// The dudect methodology: measure the execution time of the target under
// two input classes (typically "fixed" vs "random"), optionally crop upper
// percentiles to shed measurement tails, and compute Welch's t-statistic
// between the classes.  |t| > 4.5 is the customary evidence of a timing
// leak; |t| staying below that over many measurements is evidence of
// constant-time behaviour.
package ctcheck

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Threshold is the customary |t| bound above which dudect declares a leak.
const Threshold = 4.5

// Welch returns Welch's t-statistic between two samples.  It returns 0
// when either sample has fewer than two points or zero variance in both.
func Welch(a, b []float64) float64 {
	if len(a) < 2 || len(b) < 2 {
		return 0
	}
	ma, va := meanVar(a)
	mb, vb := meanVar(b)
	den := math.Sqrt(va/float64(len(a)) + vb/float64(len(b)))
	if den == 0 {
		return 0
	}
	return (ma - mb) / den
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

// Crop returns the measurements at or below the pct percentile (0 < pct ≤
// 1), the dudect post-processing that sheds interrupt/GC tails.
func Crop(xs []float64, pct float64) []float64 {
	if pct <= 0 || pct > 1 {
		panic("ctcheck: percentile must be in (0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cut := sorted[int(float64(len(sorted)-1)*pct)]
	var out []float64
	for _, x := range xs {
		if x <= cut {
			out = append(out, x)
		}
	}
	return out
}

// Result summarises one dudect comparison.
type Result struct {
	T      float64 // Welch's t on cropped measurements
	TRaw   float64 // Welch's t on raw measurements
	Leaky  bool    // |T| > Threshold
	NA, NB int     // measurement counts per class
}

func (r Result) String() string {
	verdict := "no evidence of timing leak"
	if r.Leaky {
		verdict = "TIMING LEAK"
	}
	return fmt.Sprintf("t=%+.2f (raw %+.2f), n=%d/%d: %s", r.T, r.TRaw, r.NA, r.NB, verdict)
}

// Options tunes a timing comparison.
type Options struct {
	Measurements int     // timing samples per class (default 2000)
	InnerReps    int     // target invocations per timing sample (default 32)
	CropPct      float64 // percentile crop (default 0.9)
}

func (o *Options) fill() {
	if o.Measurements == 0 {
		o.Measurements = 2000
	}
	if o.InnerReps == 0 {
		o.InnerReps = 32
	}
	if o.CropPct == 0 {
		o.CropPct = 0.9
	}
}

// CompareTiming measures classA and classB in randomized order and
// returns the Welch comparison.  Randomizing the class order per
// measurement (as dudect does) cancels drift such as frequency scaling,
// cache warming and GC phase, which a fixed ABAB… order would alias into
// a fake shift.
func CompareTiming(classA, classB func(), opt Options) Result {
	opt.fill()
	ta := make([]float64, 0, opt.Measurements)
	tb := make([]float64, 0, opt.Measurements)
	lcg := uint64(0x9e3779b97f4a7c15)
	for len(ta) < opt.Measurements || len(tb) < opt.Measurements {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		pickA := lcg>>63 == 1
		if pickA && len(ta) >= opt.Measurements {
			pickA = false
		}
		if !pickA && len(tb) >= opt.Measurements {
			pickA = true
		}
		f := classB
		if pickA {
			f = classA
		}
		start := time.Now()
		for r := 0; r < opt.InnerReps; r++ {
			f()
		}
		d := float64(time.Since(start).Nanoseconds())
		if pickA {
			ta = append(ta, d)
		} else {
			tb = append(tb, d)
		}
	}
	ca, cb := Crop(ta, opt.CropPct), Crop(tb, opt.CropPct)
	t := Welch(ca, cb)
	return Result{
		T:     t,
		TRaw:  Welch(ta, tb),
		Leaky: math.Abs(t) > Threshold,
		NA:    len(ca),
		NB:    len(cb),
	}
}

// ---------------------------------------------------------------------
// Statistical acceptance harness: chi-square goodness of fit plus Rényi
// divergence of the empirical distribution against an ideal one.  The
// constant-time checks above ask "does execution leak the sample?"; this
// harness asks the complementary question the convolution layer needs:
// "are the emitted samples actually distributed as claimed?" — the
// acceptance gate for outputs synthesized for (σ, μ) pairs that no
// compiled circuit was ever built for.

// ChiSquare returns Pearson's statistic and degrees of freedom for
// observed bin counts against expected probabilities (len(obs) ==
// len(probs), probs summing to ≈ 1).  Bins with zero expectation must
// have zero observations (else the statistic is +Inf, which is the
// correct verdict).
func ChiSquare(obs []uint64, probs []float64) (stat float64, df int) {
	if len(obs) != len(probs) {
		panic("ctcheck: ChiSquare length mismatch")
	}
	var n float64
	for _, o := range obs {
		n += float64(o)
	}
	for i, o := range obs {
		e := n * probs[i]
		d := float64(o) - e
		if e == 0 {
			if o != 0 {
				return math.Inf(1), len(obs) - 1
			}
			continue
		}
		stat += d * d / e
	}
	return stat, len(obs) - 1
}

// ChiSquarePValue returns the upper-tail probability P(χ²_df > stat)
// via the Wilson–Hilferty cube-root normal approximation — accurate to
// a few 10⁻³ for df ≥ 3, ample for an accept/reject gate.
func ChiSquarePValue(stat float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	if math.IsInf(stat, 1) {
		return 0
	}
	k := float64(df)
	z := (math.Cbrt(stat/k) - (1 - 2/(9*k))) / math.Sqrt(2/(9*k))
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// Renyi returns the order-a Rényi divergence (the convention of
// Micciancio–Walter and the gaussian package: R_a = (Σ qᵃ/pᵃ⁻¹)^{1/(a−1)})
// of the empirical distribution q given by obs against the ideal p.
// R_a = 1 means identical; the divergence of a sound sampler tends to 1
// as the sample count grows.
func Renyi(obs []uint64, probs []float64, a float64) float64 {
	if a <= 1 {
		panic("ctcheck: Rényi order must exceed 1")
	}
	if len(obs) != len(probs) {
		panic("ctcheck: Renyi length mismatch")
	}
	var n float64
	for _, o := range obs {
		n += float64(o)
	}
	var sum float64
	for i, o := range obs {
		if o == 0 {
			continue
		}
		if probs[i] == 0 {
			return math.Inf(1)
		}
		q := float64(o) / n
		sum += math.Pow(q, a) / math.Pow(probs[i], a-1)
	}
	return math.Pow(sum, 1/(a-1))
}

// GOF is one goodness-of-fit verdict against an ideal discrete Gaussian.
type GOF struct {
	Stat   float64 // Pearson chi-square over merged bins
	DF     int     // degrees of freedom (bins − 1)
	PValue float64 // upper-tail probability under H0
	Renyi2 float64 // order-2 Rényi divergence, empirical vs ideal
	Bins   int     // bins after tail merging
	N      int     // sample count
}

// Pass reports whether the fit survives at significance alpha and the
// order-2 Rényi divergence stays within maxRenyi of 1.
func (g GOF) Pass(alpha, maxRenyi float64) bool {
	return g.PValue >= alpha && g.Renyi2 <= maxRenyi
}

func (g GOF) String() string {
	return fmt.Sprintf("χ²=%.1f (df=%d, p=%.4f), R₂=%.6f, %d bins over %d samples",
		g.Stat, g.DF, g.PValue, g.Renyi2, g.Bins, g.N)
}

// ChiSquareGaussian tests integer samples against the ideal discrete
// Gaussian D_{ℤ,σ,μ}: it bins over [μ−12σ, μ+12σ] (ideal mass beyond is
// ≈ e⁻⁷²; any sample outside fails the fit), merges tail bins inward
// until every expected count reaches the customary minimum of 5, and
// returns the chi-square verdict plus the order-2 Rényi divergence over
// the merged bins.  The reference probabilities come from float64
// math.Exp; the acceptance harness's stronger form is GOFAgainst with a
// bigfp-derived reference.
func ChiSquareGaussian(samples []int, sigma, mu float64) GOF {
	lo := int(math.Floor(mu - 12*sigma))
	hi := int(math.Ceil(mu + 12*sigma))
	probs := make([]float64, hi-lo+1)
	var z float64
	for v := lo; v <= hi; v++ {
		d := float64(v) - mu
		probs[v-lo] = math.Exp(-d * d / (2 * sigma * sigma))
		z += probs[v-lo]
	}
	for i := range probs {
		probs[i] /= z
	}
	return GOFAgainst(samples, lo, probs)
}

// GOFAgainst tests integer samples against an explicit reference PMF:
// probs[i] is the expected probability of the value lo+i, and any sample
// outside [lo, lo+len(probs)−1] fails the fit outright (the window is
// chosen so the reference mass beyond it is negligible).  The reference
// may sum to slightly below 1 (e.g. a bigfp PMF normalized over all of
// ℤ whose window strands ≈ e⁻⁷² of tail mass); the deficit only has to
// be far below 1/len(samples) to leave the expected counts unchanged.
// Tail bins are merged inward until every expected count reaches the
// customary minimum of 5, then the chi-square verdict and the order-2
// Rényi divergence are computed over the merged bins.
//
// probs is consumed (tail merging mutates it in place).
func GOFAgainst(samples []int, lo int, probs []float64) GOF {
	obs := make([]uint64, len(probs))
	outliers := 0
	hi := lo + len(probs) - 1
	for _, s := range samples {
		if s < lo || s > hi {
			outliers++
			continue
		}
		obs[s-lo]++
	}
	obs, probs = mergeTails(obs, probs, float64(len(samples)))
	stat, df := ChiSquare(obs, probs)
	if outliers > 0 {
		stat = math.Inf(1) // mass where the reference has ≈ none
	}
	return GOF{
		Stat:   stat,
		DF:     df,
		PValue: ChiSquarePValue(stat, df),
		Renyi2: Renyi(obs, probs, 2),
		Bins:   len(obs),
		N:      len(samples),
	}
}

// mergeTails folds leading and trailing bins inward until every bin's
// expected count n·p reaches 5 (the standard chi-square validity rule).
func mergeTails(obs []uint64, probs []float64, n float64) ([]uint64, []float64) {
	lo, hi := 0, len(obs)-1
	for lo < hi && n*probs[lo] < 5 {
		obs[lo+1] += obs[lo]
		probs[lo+1] += probs[lo]
		lo++
	}
	for hi > lo && n*probs[hi] < 5 {
		obs[hi-1] += obs[hi]
		probs[hi-1] += probs[hi]
		hi--
	}
	return obs[lo : hi+1], probs[lo : hi+1]
}

// WorkTrace is the deterministic alternative: a per-invocation work count
// (loop iterations, bits consumed, table scans).  A constant-time
// algorithm has identical counts for every invocation; a leaky one shows
// variance correlated with secrets.
type WorkTrace struct {
	Counts []uint64
}

// Record appends one invocation's work count.
func (w *WorkTrace) Record(c uint64) { w.Counts = append(w.Counts, c) }

// Constant reports whether every recorded count is identical.
func (w *WorkTrace) Constant() bool {
	for _, c := range w.Counts[1:] {
		if c != w.Counts[0] {
			return false
		}
	}
	return len(w.Counts) > 0
}

// Correlation returns the Pearson correlation between work counts and an
// equal-length secret series — evidence of a leak when far from 0.
func (w *WorkTrace) Correlation(secret []float64) float64 {
	if len(secret) != len(w.Counts) || len(secret) < 2 {
		panic("ctcheck: series length mismatch")
	}
	xs := make([]float64, len(w.Counts))
	for i, c := range w.Counts {
		xs[i] = float64(c)
	}
	mx, vx := meanVar(xs)
	my, vy := meanVar(secret)
	if vx == 0 || vy == 0 {
		return 0
	}
	var cov float64
	for i := range xs {
		cov += (xs[i] - mx) * (secret[i] - my)
	}
	cov /= float64(len(xs) - 1)
	return cov / math.Sqrt(vx*vy)
}
