package ctcheck

import (
	"math"
	"math/rand"
	"testing"

	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

func TestWelchZeroOnIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := Welch(a, a); got != 0 {
		t.Fatalf("Welch(a,a) = %v", got)
	}
}

func TestWelchDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1 // shifted mean
	}
	if got := Welch(a, b); math.Abs(got) < 10 {
		t.Fatalf("Welch should detect unit shift, got %v", got)
	}
}

func TestWelchSmallSamples(t *testing.T) {
	if Welch([]float64{1}, []float64{2, 3}) != 0 {
		t.Fatal("short samples must yield 0")
	}
	if Welch([]float64{1, 1}, []float64{1, 1}) != 0 {
		t.Fatal("zero variance must yield 0")
	}
}

func TestCrop(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	c := Crop(xs, 0.9)
	for _, x := range c {
		if x == 100 {
			t.Fatal("outlier survived crop")
		}
	}
	if len(c) != 9 {
		t.Fatalf("cropped to %d, want 9", len(c))
	}
}

func TestCropPanicsOnBadPct(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Crop([]float64{1}, 0)
}

func TestWorkTraceConstant(t *testing.T) {
	var w WorkTrace
	for i := 0; i < 10; i++ {
		w.Record(42)
	}
	if !w.Constant() {
		t.Fatal("constant trace reported varying")
	}
	w.Record(43)
	if w.Constant() {
		t.Fatal("varying trace reported constant")
	}
}

func TestWorkTraceCorrelation(t *testing.T) {
	var w WorkTrace
	secret := make([]float64, 100)
	for i := range secret {
		secret[i] = float64(i % 7)
		w.Record(uint64(10 + i%7)) // perfectly correlated
	}
	if c := w.Correlation(secret); c < 0.99 {
		t.Fatalf("correlation = %v, want ≈ 1", c)
	}
}

// TestBitslicedSamplerWorkIsConstant verifies the paper's central security
// claim deterministically: the bitsliced sampler consumes a fixed number
// of random bits and executes a fixed instruction sequence, regardless of
// the sampled values.  At any width the consumption cadence is one fixed
// draw per refill (width batches); at width 1 that is the paper's exact
// per-batch form.
func TestBitslicedSamplerWorkIsConstant(t *testing.T) {
	b, err := core.Build(core.Config{Sigma: "2", N: 64, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{1, sampler.DefaultWidth} {
		s := b.NewWideSampler(prng.MustChaCha20([]byte("ct")), width)
		var w WorkTrace
		prev := uint64(0)
		for cycle := 0; cycle < 200; cycle++ {
			dst := make([]int, 64)
			for j := 0; j < width; j++ {
				s.NextBatch(dst)
			}
			w.Record(s.BitsUsed() - prev)
			prev = s.BitsUsed()
		}
		if !w.Constant() {
			t.Fatalf("width %d: bitsliced sampler consumed varying randomness per refill", width)
		}
	}
}

// TestByteScanLeakDetectedByWorkCount shows the contrast: the byte-scan
// CDT's work depends on the sample.
func TestByteScanLeakDetectedByWorkCount(t *testing.T) {
	p, err := core.Build(core.Config{Sigma: "2", N: 64, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		t.Fatal(err)
	}
	bs := sampler.NewByteScanCDT(p.Table, prng.MustChaCha20([]byte("bsleak")))
	var w WorkTrace
	secret := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		before := bs.Steps
		v := bs.Next()
		if v < 0 {
			v = -v
		}
		w.Record(bs.Steps - before)
		secret = append(secret, float64(v))
	}
	if w.Constant() {
		t.Fatal("byte-scan CDT work unexpectedly constant")
	}
	if c := w.Correlation(secret); c < 0.5 {
		t.Fatalf("byte-scan work/sample correlation = %.3f, want strong positive", c)
	}
}

// TestLinearCDTWorkIsConstant: the constant-time CDT baseline really is
// flat in work count.
func TestLinearCDTWorkIsConstant(t *testing.T) {
	p, err := core.Build(core.Config{Sigma: "2", N: 64, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		t.Fatal(err)
	}
	lin := sampler.NewLinearCDT(p.Table, prng.MustChaCha20([]byte("linct")))
	var w WorkTrace
	for i := 0; i < 5000; i++ {
		before := lin.Steps
		lin.Next()
		w.Record(lin.Steps - before)
	}
	if !w.Constant() {
		t.Fatal("linear CDT work varies")
	}
}

func TestCompareTimingSmoke(t *testing.T) {
	// Identical closures must not be flagged (generous threshold; wall
	// clock under CI is noisy, so this is a smoke test only).
	x := 0
	f := func() { x++ }
	r := CompareTiming(f, f, Options{Measurements: 300, InnerReps: 16})
	if r.NA == 0 || r.NB == 0 {
		t.Fatal("no measurements")
	}
	if math.Abs(r.T) > 50 {
		t.Fatalf("identical closures produced |t|=%v", r.T)
	}
	_ = r.String()
}

func TestResultString(t *testing.T) {
	if s := (Result{T: 10, Leaky: true}).String(); s == "" {
		t.Fatal("empty string")
	}
}

func TestChiSquarePerfectFit(t *testing.T) {
	// Observations exactly proportional to the expectation: statistic 0,
	// p-value 1.
	obs := []uint64{100, 300, 400, 200}
	probs := []float64{0.1, 0.3, 0.4, 0.2}
	stat, df := ChiSquare(obs, probs)
	if stat != 0 || df != 3 {
		t.Fatalf("stat=%v df=%d, want 0 and 3", stat, df)
	}
	if p := ChiSquarePValue(stat, df); p < 0.99 {
		t.Fatalf("p-value %v for a perfect fit", p)
	}
	if r := Renyi(obs, probs, 2); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Rényi-2 = %v for a perfect fit, want 1", r)
	}
}

func TestChiSquarePValueCalibration(t *testing.T) {
	// Wilson–Hilferty sanity: the median of χ²_k is ≈ k(1−2/(9k))³, so
	// the p-value there must be ≈ 0.5; far tails must collapse.
	for _, df := range []int{5, 30, 200} {
		k := float64(df)
		median := k * math.Pow(1-2/(9*k), 3)
		if p := ChiSquarePValue(median, df); math.Abs(p-0.5) > 0.01 {
			t.Fatalf("df=%d: p(median)=%v, want ≈ 0.5", df, p)
		}
		if p := ChiSquarePValue(10*k, df); p > 1e-6 {
			t.Fatalf("df=%d: p(10k)=%v, want ≈ 0", df, p)
		}
	}
	if ChiSquarePValue(math.Inf(1), 4) != 0 {
		t.Fatal("infinite statistic must give p = 0")
	}
}

// TestGaussianHarnessAcceptsTrueRejectsWrong drives the full harness
// with synthetic Box–Muller-ish draws: samples rounded from the matching
// normal pass; the same samples tested against a 20%-off σ fail.
func TestGaussianHarnessAcceptsTrueRejectsWrong(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 60000
	sigma, mu := 4.2, 0.375
	samples := make([]int, n)
	for i := range samples {
		samples[i] = int(math.Round(rng.NormFloat64()*sigma + mu))
	}
	// Rounding a continuous normal to ℤ is within ~1/(24σ²) of the
	// discrete Gaussian — far below chi-square power at this n.
	good := ChiSquareGaussian(samples, sigma, mu)
	if !good.Pass(0.001, 1.01) {
		t.Fatalf("true distribution rejected: %s", good)
	}
	bad := ChiSquareGaussian(samples, sigma*1.2, mu)
	if bad.Pass(0.001, 1.01) {
		t.Fatalf("20%%-off σ accepted: %s", bad)
	}
	shifted := ChiSquareGaussian(samples, sigma, mu+1)
	if shifted.Pass(0.001, 1.01) {
		t.Fatalf("unit-shifted center accepted: %s", shifted)
	}
	// An outlier far outside the 12σ window is an immediate fail.
	withOutlier := append(append([]int(nil), samples...), int(100*sigma))
	if g := ChiSquareGaussian(withOutlier, sigma, mu); g.Pass(0.001, 1.01) || !math.IsInf(g.Stat, 1) {
		t.Fatalf("far outlier not flagged: %s", g)
	}
}

// TestGOFAgainstMatchesGaussianForm pins the refactor: ChiSquareGaussian
// is GOFAgainst over the float64 reference window, so an explicit
// reference with the same probabilities must return the identical
// verdict, and a deliberately wrong reference must fail.
func TestGOFAgainstMatchesGaussianForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40000
	sigma := 3.0
	samples := make([]int, n)
	for i := range samples {
		samples[i] = int(math.Round(rng.NormFloat64() * sigma))
	}
	lo := int(math.Floor(-12 * sigma))
	hi := int(math.Ceil(12 * sigma))
	probs := make([]float64, hi-lo+1)
	var z float64
	for v := lo; v <= hi; v++ {
		probs[v-lo] = math.Exp(-float64(v) * float64(v) / (2 * sigma * sigma))
		z += probs[v-lo]
	}
	for i := range probs {
		probs[i] /= z
	}
	direct := GOFAgainst(samples, lo, append([]float64(nil), probs...))
	viaGaussian := ChiSquareGaussian(samples, sigma, 0)
	if direct.Stat != viaGaussian.Stat || direct.DF != viaGaussian.DF || direct.Renyi2 != viaGaussian.Renyi2 {
		t.Fatalf("explicit reference diverges from Gaussian form: %s vs %s", direct, viaGaussian)
	}
	if !direct.Pass(0.001, 1.01) {
		t.Fatalf("true reference rejected: %s", direct)
	}
	// A reference that redistributes 10% of the central mass must fail.
	warped := append([]float64(nil), probs...)
	center := -lo
	delta := 0.1 * warped[center]
	warped[center] -= delta
	warped[center+1] += delta
	if g := GOFAgainst(samples, lo, warped); g.Pass(0.001, 1.01) {
		t.Fatalf("warped reference accepted: %s", g)
	}
	// A sample below the window is an immediate fail.
	outlied := append(append([]int(nil), samples...), lo-5)
	if g := GOFAgainst(outlied, lo, append([]float64(nil), probs...)); !math.IsInf(g.Stat, 1) {
		t.Fatalf("window outlier not flagged: %s", g)
	}
}

func TestMergeTailsRespectsMinimumExpectation(t *testing.T) {
	g := ChiSquareGaussian([]int{0, 1, -1, 0, 2, -2, 0, 1, -1, 0}, 1.5, 0)
	// 10 samples: every surviving bin must expect ≥ 5... which forces
	// nearly everything to merge; the harness must stay well-defined.
	if g.Bins < 1 || g.DF < 0 {
		t.Fatalf("degenerate merge: %+v", g)
	}
}
