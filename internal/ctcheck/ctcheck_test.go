package ctcheck

import (
	"math"
	"math/rand"
	"testing"

	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

func TestWelchZeroOnIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := Welch(a, a); got != 0 {
		t.Fatalf("Welch(a,a) = %v", got)
	}
}

func TestWelchDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1 // shifted mean
	}
	if got := Welch(a, b); math.Abs(got) < 10 {
		t.Fatalf("Welch should detect unit shift, got %v", got)
	}
}

func TestWelchSmallSamples(t *testing.T) {
	if Welch([]float64{1}, []float64{2, 3}) != 0 {
		t.Fatal("short samples must yield 0")
	}
	if Welch([]float64{1, 1}, []float64{1, 1}) != 0 {
		t.Fatal("zero variance must yield 0")
	}
}

func TestCrop(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	c := Crop(xs, 0.9)
	for _, x := range c {
		if x == 100 {
			t.Fatal("outlier survived crop")
		}
	}
	if len(c) != 9 {
		t.Fatalf("cropped to %d, want 9", len(c))
	}
}

func TestCropPanicsOnBadPct(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Crop([]float64{1}, 0)
}

func TestWorkTraceConstant(t *testing.T) {
	var w WorkTrace
	for i := 0; i < 10; i++ {
		w.Record(42)
	}
	if !w.Constant() {
		t.Fatal("constant trace reported varying")
	}
	w.Record(43)
	if w.Constant() {
		t.Fatal("varying trace reported constant")
	}
}

func TestWorkTraceCorrelation(t *testing.T) {
	var w WorkTrace
	secret := make([]float64, 100)
	for i := range secret {
		secret[i] = float64(i % 7)
		w.Record(uint64(10 + i%7)) // perfectly correlated
	}
	if c := w.Correlation(secret); c < 0.99 {
		t.Fatalf("correlation = %v, want ≈ 1", c)
	}
}

// TestBitslicedSamplerWorkIsConstant verifies the paper's central security
// claim deterministically: the bitsliced sampler consumes a fixed number
// of random bits and executes a fixed instruction sequence, regardless of
// the sampled values.  At any width the consumption cadence is one fixed
// draw per refill (width batches); at width 1 that is the paper's exact
// per-batch form.
func TestBitslicedSamplerWorkIsConstant(t *testing.T) {
	b, err := core.Build(core.Config{Sigma: "2", N: 64, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{1, sampler.DefaultWidth} {
		s := b.NewWideSampler(prng.MustChaCha20([]byte("ct")), width)
		var w WorkTrace
		prev := uint64(0)
		for cycle := 0; cycle < 200; cycle++ {
			dst := make([]int, 64)
			for j := 0; j < width; j++ {
				s.NextBatch(dst)
			}
			w.Record(s.BitsUsed() - prev)
			prev = s.BitsUsed()
		}
		if !w.Constant() {
			t.Fatalf("width %d: bitsliced sampler consumed varying randomness per refill", width)
		}
	}
}

// TestByteScanLeakDetectedByWorkCount shows the contrast: the byte-scan
// CDT's work depends on the sample.
func TestByteScanLeakDetectedByWorkCount(t *testing.T) {
	p, err := core.Build(core.Config{Sigma: "2", N: 64, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		t.Fatal(err)
	}
	bs := sampler.NewByteScanCDT(p.Table, prng.MustChaCha20([]byte("bsleak")))
	var w WorkTrace
	secret := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		before := bs.Steps
		v := bs.Next()
		if v < 0 {
			v = -v
		}
		w.Record(bs.Steps - before)
		secret = append(secret, float64(v))
	}
	if w.Constant() {
		t.Fatal("byte-scan CDT work unexpectedly constant")
	}
	if c := w.Correlation(secret); c < 0.5 {
		t.Fatalf("byte-scan work/sample correlation = %.3f, want strong positive", c)
	}
}

// TestLinearCDTWorkIsConstant: the constant-time CDT baseline really is
// flat in work count.
func TestLinearCDTWorkIsConstant(t *testing.T) {
	p, err := core.Build(core.Config{Sigma: "2", N: 64, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		t.Fatal(err)
	}
	lin := sampler.NewLinearCDT(p.Table, prng.MustChaCha20([]byte("linct")))
	var w WorkTrace
	for i := 0; i < 5000; i++ {
		before := lin.Steps
		lin.Next()
		w.Record(lin.Steps - before)
	}
	if !w.Constant() {
		t.Fatal("linear CDT work varies")
	}
}

func TestCompareTimingSmoke(t *testing.T) {
	// Identical closures must not be flagged (generous threshold; wall
	// clock under CI is noisy, so this is a smoke test only).
	x := 0
	f := func() { x++ }
	r := CompareTiming(f, f, Options{Measurements: 300, InnerReps: 16})
	if r.NA == 0 || r.NB == 0 {
		t.Fatal("no measurements")
	}
	if math.Abs(r.T) > 50 {
		t.Fatalf("identical closures produced |t|=%v", r.T)
	}
	_ = r.String()
}

func TestResultString(t *testing.T) {
	if s := (Result{T: 10, Leaky: true}).String(); s == "" {
		t.Fatal("empty string")
	}
}
