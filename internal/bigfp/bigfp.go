// Package bigfp provides the high-precision real arithmetic needed to
// compute discrete Gaussian probabilities to an arbitrary number of
// fractional bits.
//
// Discrete Gaussian sampling with cryptographic parameters (the paper uses
// precision n = 128 bits and tail-cut τ = 13) requires evaluating
// exp(-x²/2σ²) well beyond float64 precision.  This package implements the
// elementary pieces on top of math/big: natural exponential for negative
// arguments, high-precision ln 2 and π, and conversion of a probability in
// [0,1) to an n-bit fixed-point bit row of the Knuth-Yao probability matrix.
package bigfp

import (
	"fmt"
	"math"
	"math/big"
	"sync"
)

// ln2Cache memoizes Ln2 per precision: ExpNeg needs ln 2 on every call,
// and the acceptance grid evaluates the reference density thousands of
// times per (σ, μ) cell at a handful of fixed precisions.
var ln2Cache sync.Map // uint → *big.Float (immutable once stored)

// Ln2 returns ln 2 computed to at least prec bits of precision using the
// series ln 2 = Σ_{k≥1} 1/(k·2^k), which gains one bit per term.
// Results are cached per precision; the returned value is the caller's
// to mutate.
func Ln2(prec uint) *big.Float {
	return new(big.Float).Copy(ln2Shared(prec))
}

// ln2Shared returns the cached, shared ln 2 value; in-package callers
// only read it.
func ln2Shared(prec uint) *big.Float {
	if v, ok := ln2Cache.Load(prec); ok {
		return v.(*big.Float)
	}
	v := ln2Compute(prec)
	ln2Cache.Store(prec, v)
	return v
}

func ln2Compute(prec uint) *big.Float {
	// Work with guard bits so the truncated tail cannot disturb the
	// requested precision.
	wp := prec + 32
	sum := new(big.Float).SetPrec(wp)
	term := new(big.Float).SetPrec(wp)
	den := new(big.Float).SetPrec(wp)
	two := big.NewFloat(2).SetPrec(wp)
	pow := new(big.Float).SetPrec(wp).SetInt64(1)
	for k := int64(1); ; k++ {
		pow.Quo(pow, two) // 2^-k
		den.SetInt64(k)
		term.Quo(pow, den)
		sum.Add(sum, term)
		if term.MantExp(nil) < -int(wp) {
			break
		}
	}
	return sum.SetPrec(prec)
}

// ExpNeg returns e^(-t) for t ≥ 0, computed to at least prec bits.
// It panics if t < 0.
//
// The argument is reduced as t = k·ln2 + r with r ∈ [0, ln2), so that
// e^(-t) = 2^(-k) · e^(-r), and e^(-r) is evaluated with a Taylor series
// whose terms shrink at least geometrically.
func ExpNeg(t *big.Float, prec uint) *big.Float {
	if t.Sign() < 0 {
		panic("bigfp: ExpNeg requires t >= 0")
	}
	if t.Sign() == 0 {
		return big.NewFloat(1).SetPrec(prec)
	}
	wp := prec + 64
	ln2 := ln2Shared(wp)

	// k = floor(t / ln2)
	q := new(big.Float).SetPrec(wp).Quo(t, ln2)
	kInt, _ := q.Int(nil)
	k := kInt.Int64()

	// r = t - k*ln2, guaranteed in [0, ln2) up to rounding.
	kf := new(big.Float).SetPrec(wp).SetInt(kInt)
	r := new(big.Float).SetPrec(wp).Mul(kf, ln2)
	r.Sub(t, r)
	if r.Sign() < 0 {
		// Rounding may leave r slightly negative; nudge back one step.
		r.Add(r, ln2)
		k--
	}

	// Taylor: e^(-r) = Σ (-r)^m / m!
	sum := new(big.Float).SetPrec(wp).SetInt64(1)
	term := new(big.Float).SetPrec(wp).SetInt64(1)
	mf := new(big.Float).SetPrec(wp)
	for m := int64(1); ; m++ {
		term.Mul(term, r)
		mf.SetInt64(m)
		term.Quo(term, mf)
		if m%2 == 1 {
			sum.Sub(sum, term)
		} else {
			sum.Add(sum, term)
		}
		if term.Sign() == 0 || term.MantExp(nil) < -int(wp) {
			break
		}
	}

	// Scale by 2^-k.
	// SetMantExp(z, e) computes z·2^e, so this is sum·2^-k.
	res := new(big.Float).SetPrec(wp).SetMantExp(sum, -int(k))
	return res.SetPrec(prec)
}

// Gauss returns ρ_σ(x) = exp(-x²/(2σ²)) to prec bits, for x ≥ 0.
func Gauss(x int64, sigma *big.Float, prec uint) *big.Float {
	wp := prec + 64
	xf := new(big.Float).SetPrec(wp).SetInt64(x)
	num := new(big.Float).SetPrec(wp).Mul(xf, xf)
	den := new(big.Float).SetPrec(wp).Mul(sigma, sigma)
	den.Mul(den, big.NewFloat(2).SetPrec(wp))
	arg := new(big.Float).SetPrec(wp).Quo(num, den)
	return ExpNeg(arg, prec)
}

// FracBits truncates p ∈ [0, 1] to n fractional bits and returns them
// most-significant first: bits[0] has weight 2^-1.  Values ≥ 1 are clamped
// to all-ones (this can only happen for p exactly 1 up to rounding).
func FracBits(p *big.Float, n int) []byte {
	if p.Sign() < 0 {
		panic("bigfp: FracBits requires p >= 0")
	}
	bits := make([]byte, n)
	one := big.NewFloat(1).SetPrec(p.Prec())
	if p.Cmp(one) >= 0 {
		for i := range bits {
			bits[i] = 1
		}
		return bits
	}
	// Scale by 2^n and truncate to an integer, then read its bits.
	scaled := new(big.Float).SetPrec(p.Prec()+uint(n)).SetMantExp(p, n)
	z, _ := scaled.Int(nil)
	for i := 0; i < n; i++ {
		// bit with weight 2^-(i+1) is bit (n-1-i) of z.
		bits[i] = byte(z.Bit(n - 1 - i))
	}
	return bits
}

// FixedFromFloat converts p ∈ [0,1) to an n-bit fixed-point integer
// floor(p·2^n).
func FixedFromFloat(p *big.Float, n int) *big.Int {
	scaled := new(big.Float).SetPrec(p.Prec()+uint(n)).SetMantExp(p, n)
	z, _ := scaled.Int(nil)
	if z.Sign() < 0 {
		panic("bigfp: negative probability")
	}
	return z
}

// GaussMu returns ρ_{σ,μ}(x) = exp(-(x-μ)²/(2σ²)) to prec bits, for any
// integer x and real center μ.  This is the off-center generalization of
// Gauss, needed by the acceptance harness's (σ, μ) grid cells.
func GaussMu(x int64, sigma, mu *big.Float, prec uint) *big.Float {
	wp := prec + 64
	d := new(big.Float).SetPrec(wp).SetInt64(x)
	d.Sub(d, mu)
	num := new(big.Float).SetPrec(wp).Mul(d, d)
	den := new(big.Float).SetPrec(wp).Mul(sigma, sigma)
	den.Mul(den, big.NewFloat(2).SetPrec(wp))
	arg := new(big.Float).SetPrec(wp).Quo(num, den)
	return ExpNeg(arg, prec)
}

// PMF returns the probability mass function of the discrete Gaussian
// D_{ℤ,σ,μ} restricted to the window [lo, hi], normalized over all of ℤ:
// probs[i] = ρ_{σ,μ}(lo+i)/Z with Z = Σ_{z∈ℤ} ρ_{σ,μ}(z), plus the ideal
// mass outside the window.  The normalizer extends the summation beyond
// the window until further terms fall below 2^-(prec+32), so for the
// harness's customary ±12σ windows the returned tail mass (≈ e^-72) is
// exact to float64.
//
// This is the batch reference the acceptance grid cross-validates each
// cell against: one call per (σ, μ) cell yields every expected bin
// probability from the independent big-float pipeline, never from the
// float64 math the samplers themselves are built on.
func PMF(sigma, mu *big.Float, lo, hi int64, prec uint) (probs []float64, tail float64) {
	if hi < lo {
		panic("bigfp: PMF window is empty")
	}
	wp := prec + 64
	window := make([]*big.Float, hi-lo+1)
	in := new(big.Float).SetPrec(wp)
	for x := lo; x <= hi; x++ {
		window[x-lo] = GaussMu(x, sigma, mu, wp)
		in.Add(in, window[x-lo])
	}
	// Extend outward until terms are negligible at the working precision.
	// ρ decreases monotonically away from μ, so a single small term on a
	// side bounds everything beyond it.
	out := new(big.Float).SetPrec(wp)
	cutoff := -int(prec + 32)
	for x := lo - 1; ; x-- {
		t := GaussMu(x, sigma, mu, wp)
		out.Add(out, t)
		if t.Sign() == 0 || t.MantExp(nil) < cutoff {
			break
		}
	}
	for x := hi + 1; ; x++ {
		t := GaussMu(x, sigma, mu, wp)
		out.Add(out, t)
		if t.Sign() == 0 || t.MantExp(nil) < cutoff {
			break
		}
	}
	z := new(big.Float).SetPrec(wp).Add(in, out)
	probs = make([]float64, len(window))
	q := new(big.Float).SetPrec(wp)
	for i, w := range window {
		probs[i], _ = q.Quo(w, z).Float64()
	}
	tail, _ = q.Quo(out, z).Float64()
	return probs, tail
}

// Moments returns the mean and variance of D_{ℤ,σ,μ} computed from the
// high-precision PMF over a ±16σ window (mass beyond is < 2^-180, far
// below float64 resolution).  The closed-form continuous moments (μ, σ²)
// agree with these up to theta-function corrections of order
// e^(-2π²σ²), so for σ ≥ 1 the discrete and continuous moments coincide
// to ~10⁻⁸; below the smoothing parameter they visibly diverge — the
// regime the acceptance tests pin.
func Moments(sigma, mu *big.Float, prec uint) (mean, variance float64) {
	wp := prec + 64
	sf, _ := sigma.Float64()
	mf, _ := mu.Float64()
	span := int64(math.Ceil(16*sf)) + 2
	lo := int64(math.Floor(mf)) - span
	hi := int64(math.Ceil(mf)) + span
	z := new(big.Float).SetPrec(wp)
	m1 := new(big.Float).SetPrec(wp)
	m2 := new(big.Float).SetPrec(wp)
	xf := new(big.Float).SetPrec(wp)
	t := new(big.Float).SetPrec(wp)
	for x := lo; x <= hi; x++ {
		w := GaussMu(x, sigma, mu, wp)
		z.Add(z, w)
		xf.SetInt64(x)
		t.Mul(w, xf)
		m1.Add(m1, t)
		t.Mul(t, xf)
		m2.Add(m2, t)
	}
	m1.Quo(m1, z)
	m2.Quo(m2, z)
	// variance = E[x²] − E[x]²
	t.Mul(m1, m1)
	m2.Sub(m2, t)
	mean, _ = m1.Float64()
	variance, _ = m2.Float64()
	return mean, variance
}

// ParseSigma parses a decimal standard deviation (e.g. "6.15543") into a
// big.Float with prec bits.  It returns an error for malformed input or
// non-positive values.
func ParseSigma(s string, prec uint) (*big.Float, error) {
	f, _, err := big.ParseFloat(s, 10, prec, big.ToNearestEven)
	if err != nil {
		return nil, fmt.Errorf("bigfp: parse sigma %q: %w", s, err)
	}
	if f.Sign() <= 0 {
		return nil, fmt.Errorf("bigfp: sigma must be positive, got %q", s)
	}
	return f, nil
}
