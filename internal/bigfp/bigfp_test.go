package bigfp

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestLn2MatchesFloat64(t *testing.T) {
	got, _ := Ln2(64).Float64()
	if math.Abs(got-math.Ln2) > 1e-15 {
		t.Fatalf("Ln2 = %v, want %v", got, math.Ln2)
	}
}

func TestLn2HighPrecisionStable(t *testing.T) {
	// The first 192 bits of ln2 at 256-bit precision must agree with the
	// 192-bit computation: increasing precision must not change leading bits.
	a := Ln2(192)
	b := Ln2(256).SetPrec(192)
	diff := new(big.Float).Sub(a, b)
	if diff.Sign() != 0 && diff.MantExp(nil) > -190 {
		t.Fatalf("Ln2 unstable across precisions: diff exponent %d", diff.MantExp(nil))
	}
}

func TestExpNegMatchesFloat64(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 3.7, 10, 25.25, 50} {
		arg := new(big.Float).SetPrec(96).SetFloat64(x)
		got, _ := ExpNeg(arg, 96).Float64()
		want := math.Exp(-x)
		if math.Abs(got-want) > 1e-14*math.Max(want, 1e-300) && math.Abs(got-want) > 1e-300 {
			t.Errorf("ExpNeg(%v) = %g, want %g", x, got, want)
		}
	}
}

func TestExpNegZero(t *testing.T) {
	got, _ := ExpNeg(big.NewFloat(0), 64).Float64()
	if got != 1 {
		t.Fatalf("ExpNeg(0) = %v, want 1", got)
	}
}

func TestExpNegPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative argument")
		}
	}()
	ExpNeg(big.NewFloat(-1), 64)
}

func TestExpNegMultiplicative(t *testing.T) {
	// e^-(a+b) == e^-a * e^-b (property check at high precision).
	f := func(a8, b8 uint8) bool {
		a := float64(a8%32) / 4
		b := float64(b8%32) / 4
		prec := uint(128)
		fa := new(big.Float).SetPrec(prec).SetFloat64(a)
		fb := new(big.Float).SetPrec(prec).SetFloat64(b)
		fab := new(big.Float).SetPrec(prec).Add(fa, fb)
		lhs := ExpNeg(fab, prec)
		rhs := new(big.Float).SetPrec(prec).Mul(ExpNeg(fa, prec), ExpNeg(fb, prec))
		diff := new(big.Float).Sub(lhs, rhs)
		if diff.Sign() == 0 {
			return true
		}
		// Relative error must be below 2^-100.
		return diff.MantExp(nil)-lhs.MantExp(nil) < -100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGaussMatchesFloat64(t *testing.T) {
	sigma := big.NewFloat(2).SetPrec(96)
	for x := int64(0); x <= 20; x++ {
		got, _ := Gauss(x, sigma, 96).Float64()
		want := math.Exp(-float64(x*x) / 8)
		if math.Abs(got-want) > 1e-13 {
			t.Errorf("Gauss(%d, σ=2) = %g, want %g", x, got, want)
		}
	}
}

func TestFracBitsKnownValues(t *testing.T) {
	// 0.5 -> 100...0 ; 0.25 -> 0100... ; 0.75 -> 1100...
	cases := []struct {
		p    float64
		want []byte
	}{
		{0.5, []byte{1, 0, 0, 0}},
		{0.25, []byte{0, 1, 0, 0}},
		{0.75, []byte{1, 1, 0, 0}},
		{0.8125, []byte{1, 1, 0, 1}},
		{0, []byte{0, 0, 0, 0}},
	}
	for _, c := range cases {
		got := FracBits(new(big.Float).SetPrec(64).SetFloat64(c.p), 4)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("FracBits(%v) = %v, want %v", c.p, got, c.want)
				break
			}
		}
	}
}

func TestFracBitsClampAtOne(t *testing.T) {
	got := FracBits(big.NewFloat(1), 5)
	for i, b := range got {
		if b != 1 {
			t.Fatalf("bit %d = %d, want 1", i, b)
		}
	}
}

func TestFracBitsRoundTrip(t *testing.T) {
	// Reassembling the bits must reproduce floor(p*2^n)/2^n.
	f := func(u uint32) bool {
		p := float64(u) / float64(1<<32)
		n := 24
		bits := FracBits(new(big.Float).SetPrec(64).SetFloat64(p), n)
		var acc float64
		w := 0.5
		for _, b := range bits {
			if b == 1 {
				acc += w
			}
			w /= 2
		}
		return math.Abs(acc-p) < 1.0/float64(int64(1)<<uint(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedFromFloat(t *testing.T) {
	p := new(big.Float).SetPrec(64).SetFloat64(0.625)
	z := FixedFromFloat(p, 8)
	if z.Int64() != 160 { // 0.625 * 256
		t.Fatalf("FixedFromFloat(0.625, 8) = %v, want 160", z)
	}
}

func TestParseSigma(t *testing.T) {
	s, err := ParseSigma("6.15543", 96)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := s.Float64()
	if math.Abs(f-6.15543) > 1e-12 {
		t.Fatalf("ParseSigma = %v", f)
	}
	if _, err := ParseSigma("-1", 64); err == nil {
		t.Fatal("expected error for negative sigma")
	}
	if _, err := ParseSigma("abc", 64); err == nil {
		t.Fatal("expected error for malformed sigma")
	}
}
