package bigfp

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestLn2MatchesFloat64(t *testing.T) {
	got, _ := Ln2(64).Float64()
	if math.Abs(got-math.Ln2) > 1e-15 {
		t.Fatalf("Ln2 = %v, want %v", got, math.Ln2)
	}
}

func TestLn2HighPrecisionStable(t *testing.T) {
	// The first 192 bits of ln2 at 256-bit precision must agree with the
	// 192-bit computation: increasing precision must not change leading bits.
	a := Ln2(192)
	b := Ln2(256).SetPrec(192)
	diff := new(big.Float).Sub(a, b)
	if diff.Sign() != 0 && diff.MantExp(nil) > -190 {
		t.Fatalf("Ln2 unstable across precisions: diff exponent %d", diff.MantExp(nil))
	}
}

func TestExpNegMatchesFloat64(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 3.7, 10, 25.25, 50} {
		arg := new(big.Float).SetPrec(96).SetFloat64(x)
		got, _ := ExpNeg(arg, 96).Float64()
		want := math.Exp(-x)
		if math.Abs(got-want) > 1e-14*math.Max(want, 1e-300) && math.Abs(got-want) > 1e-300 {
			t.Errorf("ExpNeg(%v) = %g, want %g", x, got, want)
		}
	}
}

func TestExpNegZero(t *testing.T) {
	got, _ := ExpNeg(big.NewFloat(0), 64).Float64()
	if got != 1 {
		t.Fatalf("ExpNeg(0) = %v, want 1", got)
	}
}

func TestExpNegPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative argument")
		}
	}()
	ExpNeg(big.NewFloat(-1), 64)
}

func TestExpNegMultiplicative(t *testing.T) {
	// e^-(a+b) == e^-a * e^-b (property check at high precision).
	f := func(a8, b8 uint8) bool {
		a := float64(a8%32) / 4
		b := float64(b8%32) / 4
		prec := uint(128)
		fa := new(big.Float).SetPrec(prec).SetFloat64(a)
		fb := new(big.Float).SetPrec(prec).SetFloat64(b)
		fab := new(big.Float).SetPrec(prec).Add(fa, fb)
		lhs := ExpNeg(fab, prec)
		rhs := new(big.Float).SetPrec(prec).Mul(ExpNeg(fa, prec), ExpNeg(fb, prec))
		diff := new(big.Float).Sub(lhs, rhs)
		if diff.Sign() == 0 {
			return true
		}
		// Relative error must be below 2^-100.
		return diff.MantExp(nil)-lhs.MantExp(nil) < -100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGaussMatchesFloat64(t *testing.T) {
	sigma := big.NewFloat(2).SetPrec(96)
	for x := int64(0); x <= 20; x++ {
		got, _ := Gauss(x, sigma, 96).Float64()
		want := math.Exp(-float64(x*x) / 8)
		if math.Abs(got-want) > 1e-13 {
			t.Errorf("Gauss(%d, σ=2) = %g, want %g", x, got, want)
		}
	}
}

func TestFracBitsKnownValues(t *testing.T) {
	// 0.5 -> 100...0 ; 0.25 -> 0100... ; 0.75 -> 1100...
	cases := []struct {
		p    float64
		want []byte
	}{
		{0.5, []byte{1, 0, 0, 0}},
		{0.25, []byte{0, 1, 0, 0}},
		{0.75, []byte{1, 1, 0, 0}},
		{0.8125, []byte{1, 1, 0, 1}},
		{0, []byte{0, 0, 0, 0}},
	}
	for _, c := range cases {
		got := FracBits(new(big.Float).SetPrec(64).SetFloat64(c.p), 4)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("FracBits(%v) = %v, want %v", c.p, got, c.want)
				break
			}
		}
	}
}

func TestFracBitsClampAtOne(t *testing.T) {
	got := FracBits(big.NewFloat(1), 5)
	for i, b := range got {
		if b != 1 {
			t.Fatalf("bit %d = %d, want 1", i, b)
		}
	}
}

func TestFracBitsRoundTrip(t *testing.T) {
	// Reassembling the bits must reproduce floor(p*2^n)/2^n.
	f := func(u uint32) bool {
		p := float64(u) / float64(1<<32)
		n := 24
		bits := FracBits(new(big.Float).SetPrec(64).SetFloat64(p), n)
		var acc float64
		w := 0.5
		for _, b := range bits {
			if b == 1 {
				acc += w
			}
			w /= 2
		}
		return math.Abs(acc-p) < 1.0/float64(int64(1)<<uint(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedFromFloat(t *testing.T) {
	p := new(big.Float).SetPrec(64).SetFloat64(0.625)
	z := FixedFromFloat(p, 8)
	if z.Int64() != 160 { // 0.625 * 256
		t.Fatalf("FixedFromFloat(0.625, 8) = %v, want 160", z)
	}
}

func TestGaussMuReducesToGauss(t *testing.T) {
	sigma := big.NewFloat(2).SetPrec(96)
	zero := big.NewFloat(0).SetPrec(96)
	for x := int64(-10); x <= 10; x++ {
		a, _ := GaussMu(x, sigma, zero, 96).Float64()
		mag := x
		if mag < 0 {
			mag = -mag
		}
		b, _ := Gauss(mag, sigma, 96).Float64()
		if math.Abs(a-b) > 1e-15 {
			t.Errorf("GaussMu(%d, μ=0) = %g, Gauss = %g", x, a, b)
		}
	}
	// Shifting the center by an integer shifts the density exactly.
	mu := big.NewFloat(3).SetPrec(96)
	a, _ := GaussMu(5, sigma, mu, 96).Float64()
	b, _ := Gauss(2, sigma, 96).Float64()
	if math.Abs(a-b) > 1e-15 {
		t.Errorf("GaussMu(5, μ=3) = %g, want Gauss(2) = %g", a, b)
	}
}

// TestPMFTableDriven pins the batch reference over the regimes the
// acceptance grid sweeps: very small σ (below the smoothing parameter of
// ℤ), the paper's base σ values, the LargeSigma convolution regime, and
// centers on grid-cell boundaries (integer, half-integer, and the
// quarter-fraction boundaries the convolved sweep uses).
func TestPMFTableDriven(t *testing.T) {
	cases := []struct {
		name      string
		sigma, mu float64
	}{
		{"tiny-sigma", 0.25, 0},
		{"sub-smoothing", 0.5, 0.5},
		{"unit", 1, -0.5},
		{"base-2", 2, 0},
		{"cell-boundary-quarter", 2.5, 0.25},
		{"cell-boundary-neg", 3.3, -2.625},
		{"base-falcon", 6.15543, 0.5},
		{"large-sigma", 100, 0},
		{"large-sigma-offcenter", 173.2, 7.75},
	}
	const prec = 160
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sigma := new(big.Float).SetPrec(prec).SetFloat64(c.sigma)
			mu := new(big.Float).SetPrec(prec).SetFloat64(c.mu)
			lo := int64(math.Floor(c.mu - 12*c.sigma))
			hi := int64(math.Ceil(c.mu + 12*c.sigma))
			probs, tail := PMF(sigma, mu, lo, hi, prec)

			// The window plus the tail must account for all mass.
			var sum float64
			for _, p := range probs {
				if p < 0 {
					t.Fatalf("negative probability %g", p)
				}
				sum += p
			}
			if math.Abs(sum+tail-1) > 1e-9 {
				t.Fatalf("window %g + tail %g ≠ 1", sum, tail)
			}
			// A 12σ window strands only ≈ e^-72 of ideal mass.
			if tail > 1e-25 {
				t.Fatalf("tail mass %g too large for a 12σ window", tail)
			}

			// Symmetry: when 2μ ∈ ℤ the distribution is symmetric about μ,
			// so points equidistant from μ carry equal mass.
			if r := 2 * c.mu; r == math.Trunc(r) {
				for i, j := 0, len(probs)-1; i < j; i, j = i+1, j-1 {
					li, rj := float64(lo+int64(i)), float64(lo+int64(len(probs)-1-i))
					if math.Abs((li-c.mu)+(rj-c.mu)) < 1e-12 { // mirror pair about μ
						if rel := math.Abs(probs[i]-probs[j]) / math.Max(probs[i], 1e-300); probs[i] > 1e-200 && rel > 1e-9 {
							t.Fatalf("asymmetry at ±%g: %g vs %g", li-c.mu, probs[i], probs[j])
						}
					}
				}
			}

			// Moments from the PMF window must match the Moments helper.
			var mean, m2 float64
			for i, p := range probs {
				x := float64(lo + int64(i))
				mean += x * p
				m2 += x * x * p
			}
			variance := m2 - mean*mean
			hm, hv := Moments(sigma, mu, prec)
			if math.Abs(mean-hm) > 1e-8*math.Max(1, math.Abs(hm)) {
				t.Fatalf("window mean %g vs Moments mean %g", mean, hm)
			}
			if math.Abs(variance-hv) > 1e-6*math.Max(1, hv) {
				t.Fatalf("window variance %g vs Moments variance %g", variance, hv)
			}
		})
	}
}

// TestMomentsClosedForm asserts agreement with the closed-form moments:
// the discrete Gaussian's mean is exactly μ whenever 2μ ∈ ℤ (symmetry),
// and for σ at or above the smoothing parameter the variance matches the
// continuous σ² up to theta-function corrections of order e^(-2π²σ²) —
// already below 10⁻⁸ at σ = 1.  Below smoothing (σ < 1) the lattice
// visibly starves the variance, which the table pins as a strict
// inequality with a reference value from an independent float64
// summation.
func TestMomentsClosedForm(t *testing.T) {
	const prec = 160
	cases := []struct {
		sigma, mu float64
	}{
		{1, 0}, {1, 0.5}, {1.5, -3.5}, {2, 0}, {2, 7},
		{6.15543, 0.5}, {17.5, -0.5}, {100, 0}, {256, 12.5},
	}
	for _, c := range cases {
		sigma := new(big.Float).SetPrec(prec).SetFloat64(c.sigma)
		mu := new(big.Float).SetPrec(prec).SetFloat64(c.mu)
		mean, variance := Moments(sigma, mu, prec)
		if math.Abs(mean-c.mu) > 1e-8*math.Max(1, math.Abs(c.mu)) {
			t.Errorf("σ=%g μ=%g: mean %g differs from closed form μ", c.sigma, c.mu, mean)
		}
		want := c.sigma * c.sigma
		if math.Abs(variance-want) > 1e-6*want {
			t.Errorf("σ=%g μ=%g: variance %g differs from closed form σ²=%g", c.sigma, c.mu, variance, want)
		}
	}

	// Sub-smoothing regime: variance collapses below σ².
	for _, c := range []struct {
		sigma   float64
		maxFrac float64 // variance must fall below maxFrac·σ²
	}{
		{0.5, 0.95},
		{0.25, 0.35},
	} {
		sigma := new(big.Float).SetPrec(prec).SetFloat64(c.sigma)
		zero := big.NewFloat(0).SetPrec(prec)
		_, variance := Moments(sigma, zero, prec)
		if variance >= c.maxFrac*c.sigma*c.sigma {
			t.Errorf("σ=%g: variance %g does not collapse below %g·σ²", c.sigma, variance, c.maxFrac)
		}
		// Cross-check against a direct float64 summation — an independent
		// implementation path (math.Exp, no big floats).
		var z, m2 float64
		for x := -40; x <= 40; x++ {
			w := math.Exp(-float64(x*x) / (2 * c.sigma * c.sigma))
			z += w
			m2 += float64(x*x) * w
		}
		if ref := m2 / z; math.Abs(variance-ref) > 1e-10 {
			t.Errorf("σ=%g: bigfp variance %g vs float64 reference %g", c.sigma, variance, ref)
		}
	}
}

func TestParseSigma(t *testing.T) {
	s, err := ParseSigma("6.15543", 96)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := s.Float64()
	if math.Abs(f-6.15543) > 1e-12 {
		t.Fatalf("ParseSigma = %v", f)
	}
	if _, err := ParseSigma("-1", 64); err == nil {
		t.Fatal("expected error for negative sigma")
	}
	if _, err := ParseSigma("abc", 64); err == nil {
		t.Fatal("expected error for malformed sigma")
	}
}
