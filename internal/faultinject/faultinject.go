// Package faultinject provides named fault-injection points for the
// serving runtime's chaos tests: a fill function that panics mid-refill,
// a fill that stalls, an entropy read that fails.  Production code calls
// Fire at each point; unless a test has armed the point, Fire is a
// single atomic load and an immediate return — no allocation, no lock,
// no behavior change.  Golden streams and the acceptance grid therefore
// hold bit-identically whenever nothing is armed, which is the normal
// state of every production process.
//
// Arming is process-global (the injection points live inside package
// internals that tests cannot reach by parameter), so tests that arm
// faults must not run in parallel with tests that assume a fault-free
// runtime, and must defer the disarm function Arm returns.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Injection point names.  Each names the exact seam it interrupts.
const (
	// EngineFillPanic panics inside the engine's fill wrapper — on the
	// producer goroutine (async) or under the ring lock (sync) — before
	// the refill publishes, modeling a circuit-evaluation bug.
	EngineFillPanic = "engine.fill.panic"
	// EngineFillDelay sleeps inside the fill wrapper, modeling a stalled
	// evaluation (slow NUMA page, preempted core) without failing it.
	EngineFillDelay = "engine.fill.delay"
	// PRNGReadError panics inside prng.BitReader's buffer refill,
	// modeling an entropy-source read failure.  It surfaces wherever the
	// reader is consumed — usually inside an engine fill, whose recovery
	// then contains it.
	PRNGReadError = "prng.read.error"
	// TierBuildFail panics inside the tier controller's background
	// compiled-pool build (upstream of the Build hook), modeling a
	// promotion build failure — the key must keep serving from the
	// convolved tier with no error surfaced to clients.
	TierBuildFail = "tier.build.fail"
)

// AnyShard matches every shard index (including the -1 that non-sharded
// call sites pass).
const AnyShard = -1

// Fault configures one armed injection point.
type Fault struct {
	// Shard restricts firing to one shard index; AnyShard matches all.
	Shard int
	// Count is the number of times the fault fires before auto-disarming;
	// 0 means every matching Fire until disarmed.
	Count int
	// Delay is the stall duration for delay points (ignored by panic
	// points).
	Delay time.Duration
	// Msg is carried in the panic value of panic points (a default is
	// derived from the point name when empty).
	Msg string
}

// Injected is the panic value of an injected fault, so recovery layers
// and tests can tell deliberate chaos from a genuine bug.
type Injected struct {
	Point string
	Shard int
	Msg   string
}

func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: %s (shard %d): %s", e.Point, e.Shard, e.Msg)
}

// armed counts armed faults; Fire's fast path is a single load of it.
var armed atomic.Int32

var (
	mu     sync.Mutex
	faults = map[string]*Fault{}
)

// Arm installs f at the named point and returns its disarm function.
// Arming a point that is already armed replaces the previous fault.
// The disarm function is idempotent and must be called (defer it) so one
// test's fault cannot leak into the next.
func Arm(point string, f Fault) (disarm func()) {
	mu.Lock()
	if _, dup := faults[point]; !dup {
		armed.Add(1)
	}
	cp := f
	faults[point] = &cp
	mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { Disarm(point) }) }
}

// Disarm removes any fault at the named point.
func Disarm(point string) {
	mu.Lock()
	if _, ok := faults[point]; ok {
		delete(faults, point)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Armed reports whether any point is armed (diagnostics; tests assert
// the zero state).
func Armed() bool { return armed.Load() > 0 }

// Fire triggers the named point for shard.  With nothing armed it
// returns immediately (one atomic load); with a matching fault armed it
// sleeps (delay points) or panics with *Injected (panic points),
// decrementing the fault's remaining count first so a Count=1 fault
// fires exactly once even if the panic unwinds past the caller.
func Fire(point string, shard int) {
	if armed.Load() == 0 {
		return
	}
	mu.Lock()
	f, ok := faults[point]
	if !ok || (f.Shard != AnyShard && f.Shard != shard) {
		mu.Unlock()
		return
	}
	if f.Count > 0 {
		f.Count--
		if f.Count == 0 {
			delete(faults, point)
			armed.Add(-1)
		}
	}
	delay := f.Delay
	msg := f.Msg
	mu.Unlock()

	switch point {
	case EngineFillDelay:
		time.Sleep(delay)
	default:
		if msg == "" {
			msg = "injected fault"
		}
		panic(&Injected{Point: point, Shard: shard, Msg: msg})
	}
}
