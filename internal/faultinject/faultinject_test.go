package faultinject

import (
	"testing"
	"time"
)

// fired reports whether Fire(point, shard) panics with *Injected.
func fired(t *testing.T, point string, shard int) (hit bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			inj, ok := r.(*Injected)
			if !ok {
				t.Fatalf("Fire panicked with %T (%v), want *Injected", r, r)
			}
			if inj.Point != point || inj.Shard != shard {
				t.Fatalf("Injected carries (%s, %d), want (%s, %d)", inj.Point, inj.Shard, point, shard)
			}
			hit = true
		}
	}()
	Fire(point, shard)
	return false
}

// TestDisarmedFireIsInert pins the production contract: with nothing
// armed, Fire at any point and shard is a no-op.
func TestDisarmedFireIsInert(t *testing.T) {
	if Armed() {
		t.Fatal("faults armed at test start")
	}
	for _, p := range []string{EngineFillPanic, EngineFillDelay, PRNGReadError, "no.such.point"} {
		if fired(t, p, 0) {
			t.Fatalf("disarmed point %s fired", p)
		}
	}
}

// TestShardMatching pins Fault.Shard semantics: a sharded fault fires
// only on its shard, AnyShard fires everywhere (including the -1 that
// non-sharded call sites pass).
func TestShardMatching(t *testing.T) {
	disarm := Arm(EngineFillPanic, Fault{Shard: 2})
	defer disarm()
	if fired(t, EngineFillPanic, 0) || fired(t, EngineFillPanic, -1) {
		t.Fatal("shard-2 fault fired on another shard")
	}
	if !fired(t, EngineFillPanic, 2) {
		t.Fatal("shard-2 fault missed its shard")
	}
	disarm()

	defer Arm(EngineFillPanic, Fault{Shard: AnyShard})()
	for _, s := range []int{-1, 0, 7} {
		if !fired(t, EngineFillPanic, s) {
			t.Fatalf("AnyShard fault missed shard %d", s)
		}
	}
}

// TestCountAutoDisarms pins Fault.Count: the fault fires exactly Count
// times even though each firing unwinds past the caller, then the point
// is disarmed without the disarm function running.
func TestCountAutoDisarms(t *testing.T) {
	defer Arm(PRNGReadError, Fault{Shard: AnyShard, Count: 2})()
	for i := 0; i < 2; i++ {
		if !fired(t, PRNGReadError, 0) {
			t.Fatalf("firing %d of a Count=2 fault missed", i)
		}
	}
	if fired(t, PRNGReadError, 0) {
		t.Fatal("Count=2 fault fired a third time")
	}
	if Armed() {
		t.Fatal("exhausted fault still counted as armed")
	}
}

// TestDisarmIsIdempotent pins the deferred-disarm pattern: calling the
// returned func repeatedly (or after Count exhausted the fault, or after
// a re-Arm replaced it) never double-decrements the armed count.
func TestDisarmIsIdempotent(t *testing.T) {
	disarm := Arm(EngineFillPanic, Fault{Shard: AnyShard})
	disarm()
	disarm()
	if Armed() {
		t.Fatal("armed count nonzero after double disarm")
	}
	// Re-arming the same point replaces the fault rather than stacking
	// it; disarm funcs clear the point by name, so either one suffices
	// and neither double-decrements.
	d1 := Arm(EngineFillPanic, Fault{Shard: 0})
	d2 := Arm(EngineFillPanic, Fault{Shard: 1})
	if !fired(t, EngineFillPanic, 1) {
		t.Fatal("re-arm did not install the replacement fault")
	}
	if fired(t, EngineFillPanic, 0) {
		t.Fatal("replaced fault still armed alongside its replacement")
	}
	d1()
	d2()
	if Armed() {
		t.Fatal("armed count nonzero after replacement + both disarms")
	}
}

// TestDelayPointSleeps pins the delay flavor: it stalls without
// panicking and respects Count like the panic points.
func TestDelayPointSleeps(t *testing.T) {
	defer Arm(EngineFillDelay, Fault{Shard: AnyShard, Count: 1, Delay: 20 * time.Millisecond})()
	start := time.Now()
	Fire(EngineFillDelay, 0) // must not panic
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay point stalled only %v, want ≥ 20ms", d)
	}
	start = time.Now()
	Fire(EngineFillDelay, 0) // count spent: no stall
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("exhausted delay point still stalled %v", d)
	}
}
