package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"ctgauss"
)

// arbco fronts the arbitrary-(σ, μ) sampler for the HTTP layer.  Unlike
// the per-σ coalescer — which exists because a Pool's native granularity
// is a fixed 64-sample batch — the convolution layer compacts accepted
// candidates, so every request is served exactly with no leftover to
// cursor.  Coalescing is therefore keyed by base set rather than per σ:
// all arbitrary requests, whatever their (σ, μ), share the one compiled
// base set, whose sharded wide samplers batch refills 512 lanes at a
// time across concurrent requests.  This wrapper adds the serving
// ledger: request/sample counters and the set of distinct σ values
// served (bounded; the overflow flag keeps the gauge honest).
type arbco struct {
	arb *ctgauss.Arbitrary

	samples atomic.Uint64

	mu            sync.Mutex
	sigmas        map[float64]struct{}
	sigmaOverflow bool
}

// arbSigmaTrackLimit bounds the distinct-σ set (an adversarial client
// must not grow server memory without bound).
const arbSigmaTrackLimit = 4096

func newArbco(arb *ctgauss.Arbitrary) *arbco {
	return &arbco{arb: arb, sigmas: make(map[float64]struct{})}
}

// degraded reports whether any shard of the arbitrary layer's base
// engines is poisoned.  The serving layer sheds /v1/arbitrary load
// while degraded — the free-form path fails over like the pools do,
// but its trial blocks draw every base stream, so shedding it first
// preserves the precompiled pools' capacity during a restart.
func (a *arbco) degraded() bool {
	for _, h := range a.arb.Health() {
		if h.Poisoned {
			return true
		}
	}
	return false
}

func (a *arbco) draw(ctx context.Context, sigma, mu float64, out []int) error {
	if err := a.arb.NextBatchContext(ctx, sigma, mu, out); err != nil {
		return err
	}
	a.samples.Add(uint64(len(out)))
	a.mu.Lock()
	if _, ok := a.sigmas[sigma]; !ok {
		if len(a.sigmas) < arbSigmaTrackLimit {
			a.sigmas[sigma] = struct{}{}
		} else {
			a.sigmaOverflow = true
		}
	}
	a.mu.Unlock()
	return nil
}

// arbStats joins the serving ledger with the sampler's own counters for
// the /metrics scrape.
type arbStats struct {
	samples          uint64
	distinctSigmas   int
	sigmaOverflow    bool
	trials, accepted uint64
	plans            uint64
	shards           int

	producerRestarts uint64
	refillsDiscarded uint64
	shardsPoisoned   int
}

func (a *arbco) stats() arbStats {
	a.mu.Lock()
	distinct := len(a.sigmas)
	overflow := a.sigmaOverflow
	a.mu.Unlock()
	st := a.arb.Stats()
	out := arbStats{
		samples:        a.samples.Load(),
		distinctSigmas: distinct,
		sigmaOverflow:  overflow,
		trials:         st.Trials,
		accepted:       st.Accepted,
		plans:          st.Plans,
		shards:         st.Shards,
	}
	for _, h := range a.arb.Health() {
		out.producerRestarts += h.Restarts
		out.refillsDiscarded += h.DiscardedRefills
		if h.Poisoned {
			out.shardsPoisoned++
		}
	}
	return out
}

// arbitraryRequest is the /v1/arbitrary request schema.
type arbitraryRequest struct {
	// Count is the number of samples wanted (1 ≤ Count ≤ MaxCount).
	Count int `json:"count"`
	// Sigma is the free-form standard deviation (required, within the
	// served bounds — see /healthz).
	Sigma float64 `json:"sigma"`
	// Mu is the center (optional, default 0).
	Mu float64 `json:"mu,omitempty"`
}

// arbitraryResponse is the /v1/arbitrary response schema.
type arbitraryResponse struct {
	Sigma   float64 `json:"sigma"`
	Mu      float64 `json:"mu"`
	Count   int     `json:"count"`
	Samples []int   `json:"samples"`
}

func (s *Server) handleArbitrary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req arbitraryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Count < 1 {
		writeError(w, http.StatusBadRequest, "count must be >= 1")
		return
	}
	if req.Count > s.cfg.MaxCount {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("count %d exceeds limit %d", req.Count, s.cfg.MaxCount))
		return
	}
	// Degraded mode: a poisoned shard anywhere in the base engines sheds
	// the free-form path first, so the precompiled pools keep their
	// capacity while the producer restarts.
	if s.arb.degraded() {
		writeUnavailable(w, "arbitrary layer degraded: a base shard is restarting")
		return
	}
	out := make([]int, req.Count)
	if err := s.arb.draw(r.Context(), req.Sigma, req.Mu, out); err != nil {
		s.writeDrawError(w, epArbitrary, err)
		return
	}
	s.m.samples.Add(uint64(req.Count))
	writeJSON(w, http.StatusOK, arbitraryResponse{Sigma: req.Sigma, Mu: req.Mu, Count: req.Count, Samples: out})
}

// serveFreeformSigma handles a /v1/samples request whose σ names no
// precompiled pool: with the arbitrary layer enabled, any parseable σ in
// bounds is served by the convolution layer at μ = 0, so the endpoint's
// σ menu is the continuous admissible range rather than the -sigmas
// list.  Responses keep the request's σ spelling.
func (s *Server) serveFreeformSigma(w http.ResponseWriter, r *http.Request, req samplesRequest) {
	sigma, err := strconv.ParseFloat(req.Sigma, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown sigma %q (precompiled: %v; free-form σ must be a decimal)", req.Sigma, s.cfg.Sigmas))
		return
	}
	// Free-form σ rides the arbitrary layer, so it sheds with it.
	if s.arb.degraded() {
		writeUnavailable(w, "arbitrary layer degraded: a base shard is restarting")
		return
	}
	out := make([]int, req.Count)
	if err := s.arb.draw(r.Context(), sigma, 0, out); err != nil {
		s.writeDrawError(w, epSamples, err)
		return
	}
	s.m.samples.Add(uint64(req.Count))
	writeJSON(w, http.StatusOK, samplesResponse{Sigma: req.Sigma, Count: req.Count, Samples: out})
}
