package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ctgauss"
	"ctgauss/internal/obs"
)

// arbco fronts the arbitrary-(σ, μ) sampler for the HTTP layer.  Unlike
// the per-σ coalescer — which exists because a Pool's native granularity
// is a fixed 64-sample batch — the convolution layer compacts accepted
// candidates, so every request is served exactly with no leftover to
// cursor.  Coalescing is therefore keyed by base set rather than per σ:
// all arbitrary requests, whatever their (σ, μ), share the one compiled
// base set, whose sharded wide samplers batch refills 512 lanes at a
// time across concurrent requests.  This wrapper adds the serving
// ledger: request/sample counters and a bounded per-σ sample-count map
// — the rate signal the tier controller promotes on, exported per σ on
// /metrics (the overflow flag keeps the series honest past the cap).
type arbco struct {
	arb *ctgauss.Arbitrary

	samples atomic.Uint64

	mu            sync.Mutex
	sigmas        map[float64]uint64 // per-σ served samples, both tiers
	sigmaOverflow bool
}

// arbSigmaTrackLimit bounds the per-σ counter map (an adversarial
// client must not grow server memory without bound).
const arbSigmaTrackLimit = 4096

func newArbco(arb *ctgauss.Arbitrary) *arbco {
	return &arbco{arb: arb, sigmas: make(map[float64]uint64)}
}

// degraded reports whether any shard of the arbitrary layer's base
// engines is poisoned.  The serving layer sheds /v1/arbitrary load
// while degraded — the free-form path fails over like the pools do,
// but its trial blocks draw every base stream, so shedding it first
// preserves the precompiled pools' capacity during a restart.  (Keys
// already promoted to the compiled tier keep serving: their pools do
// not touch the base engines.)
func (a *arbco) degraded() bool { return a.arb.Degraded() }

// recordSigma advances σ's sample counter (bounded map).  Both tiers
// record here, so the per-σ ledger — and with it the tier controller's
// picture of what is hot — survives promotion.
func (a *arbco) recordSigma(sigma float64, n int) {
	a.samples.Add(uint64(n))
	a.mu.Lock()
	if _, ok := a.sigmas[sigma]; ok || len(a.sigmas) < arbSigmaTrackLimit {
		a.sigmas[sigma] += uint64(n)
	} else {
		a.sigmaOverflow = true
	}
	a.mu.Unlock()
}

func (a *arbco) draw(ctx context.Context, sigma, mu float64, out []int) error {
	if err := a.arb.NextBatchContext(ctx, sigma, mu, out); err != nil {
		return err
	}
	a.recordSigma(sigma, len(out))
	return nil
}

// sigmaSampleStat is one σ's served-sample count for the /metrics
// scrape.
type sigmaSampleStat struct {
	sigma   float64
	samples uint64
}

// arbStats joins the serving ledger with the sampler's own counters for
// the /metrics scrape.
type arbStats struct {
	samples          uint64
	distinctSigmas   int
	sigmaOverflow    bool
	sigmaSamples     []sigmaSampleStat // sorted by σ
	trials, accepted uint64
	plans            uint64
	shards           int

	producerRestarts uint64
	refillsDiscarded uint64
	shardsPoisoned   int

	// rings is the merged per-shard base-engine ring occupancy, exported
	// under sigma="arbitrary" with the pool ring gauges.
	rings []ctgauss.RingStat
}

func (a *arbco) stats() arbStats {
	a.mu.Lock()
	distinct := len(a.sigmas)
	overflow := a.sigmaOverflow
	perSigma := make([]sigmaSampleStat, 0, len(a.sigmas))
	for s, n := range a.sigmas {
		perSigma = append(perSigma, sigmaSampleStat{sigma: s, samples: n})
	}
	a.mu.Unlock()
	sort.Slice(perSigma, func(i, j int) bool { return perSigma[i].sigma < perSigma[j].sigma })
	st := a.arb.Stats()
	out := arbStats{
		samples:        a.samples.Load(),
		distinctSigmas: distinct,
		sigmaOverflow:  overflow,
		sigmaSamples:   perSigma,
		trials:         st.Trials,
		accepted:       st.Accepted,
		plans:          st.Plans,
		shards:         st.Shards,
	}
	for _, h := range a.arb.Health() {
		out.producerRestarts += h.Restarts
		out.refillsDiscarded += h.DiscardedRefills
		if h.Poisoned {
			out.shardsPoisoned++
		}
	}
	out.rings = a.arb.RingStats()
	return out
}

// tierHeader names the response header carrying the tier that served a
// free-form request.  The routing decision is taken once per request
// and the compiled pool is refcounted across the whole draw, so the
// header is a guarantee, not a hint: every sample in the response came
// from the named tier.
const tierHeader = "X-Ctgauss-Tier"

// tierCompiledDraw serves a μ=0 free-form request from σ's promoted
// compiled pool if the tier controller has one.  served reports whether
// out was filled (and the per-tier ledgers advanced); a compiled-tier
// pool failure that is not the request's own cancellation falls back to
// the convolved tier rather than surfacing — err is non-nil only for
// ctx-shaped failures the caller must map to a response.
func (s *Server) tierCompiledDraw(ctx context.Context, sigma float64, out []int) (served bool, err error) {
	if s.tier == nil {
		return false, nil
	}
	tr := tracedCtx(ctx)
	t0 := tr.Now()
	pool, release, ok := s.tier.Acquire(sigma)
	tr.End(obs.StageRoute, t0)
	if !ok {
		return false, nil
	}
	defer release()
	start := time.Now()
	err = pool.Take(ctx, out)
	tr.End(obs.StageCoalesce, start)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return false, err
		}
		// Degraded or closing promoted pool: the convolved tier is still
		// there — fall back silently, the way a failed build does.
		return false, nil
	}
	s.m.samples.Add(uint64(len(out)))
	s.m.tierCompiledSamples.Add(uint64(len(out)))
	s.m.tierCompiledNanos.Add(uint64(time.Since(start).Nanoseconds()))
	s.arb.recordSigma(sigma, len(out))
	s.tier.Observe(sigma, len(out))
	tr.SetTier("compiled")
	return true, nil
}

// arbitraryRequest is the /v1/arbitrary request schema.
type arbitraryRequest struct {
	// Count is the number of samples wanted (1 ≤ Count ≤ MaxCount).
	Count int `json:"count"`
	// Sigma is the free-form standard deviation (required, within the
	// served bounds — see /healthz).
	Sigma float64 `json:"sigma"`
	// Mu is the center (optional, default 0).
	Mu float64 `json:"mu,omitempty"`
}

// arbitraryResponse is the /v1/arbitrary response schema.
type arbitraryResponse struct {
	Sigma   float64 `json:"sigma"`
	Mu      float64 `json:"mu"`
	Count   int     `json:"count"`
	Samples []int   `json:"samples"`
}

func (s *Server) handleArbitrary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req arbitraryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Count < 1 {
		writeError(w, http.StatusBadRequest, "count must be >= 1")
		return
	}
	if req.Count > s.cfg.MaxCount {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("count %d exceeds limit %d", req.Count, s.cfg.MaxCount))
		return
	}
	out := make([]int, req.Count)
	// Compiled tier first (μ=0 only — a compiled circuit serves one
	// centered σ): a promoted key skips the convolve machinery entirely,
	// including its degraded shed, since the pool draws no base stream.
	if req.Mu == 0 {
		served, err := s.tierCompiledDraw(r.Context(), req.Sigma, out)
		if err != nil {
			s.writeDrawError(w, epArbitrary, err)
			return
		}
		if served {
			w.Header().Set(tierHeader, "compiled")
			writeJSON(w, http.StatusOK, arbitraryResponse{Sigma: req.Sigma, Mu: req.Mu, Count: req.Count, Samples: out})
			return
		}
	}
	// Degraded mode: a poisoned shard anywhere in the base engines sheds
	// the free-form path first, so the precompiled pools keep their
	// capacity while the producer restarts.
	if s.arb.degraded() {
		writeUnavailable(w, "arbitrary layer degraded: a base shard is restarting")
		return
	}
	tr := traceOf(w)
	start := time.Now()
	err := s.arb.draw(r.Context(), req.Sigma, req.Mu, out)
	tr.End(obs.StageCoalesce, start)
	if err != nil {
		s.writeDrawError(w, epArbitrary, err)
		return
	}
	s.m.samples.Add(uint64(req.Count))
	s.m.tierConvolvedSamples.Add(uint64(req.Count))
	s.m.tierConvolvedNanos.Add(uint64(time.Since(start).Nanoseconds()))
	if s.tier != nil && req.Mu == 0 {
		s.tier.Observe(req.Sigma, req.Count)
	}
	tr.SetTier("convolved")
	w.Header().Set(tierHeader, "convolved")
	writeJSON(w, http.StatusOK, arbitraryResponse{Sigma: req.Sigma, Mu: req.Mu, Count: req.Count, Samples: out})
}

// serveFreeformSigma handles a /v1/samples request whose σ names no
// precompiled pool: with the arbitrary layer enabled, any parseable σ in
// bounds is served by the convolution layer at μ = 0 — or, once the tier
// controller has promoted the key, by its compiled pool — so the
// endpoint's σ menu is the continuous admissible range rather than the
// -sigmas list.  Responses keep the request's σ spelling.
func (s *Server) serveFreeformSigma(w http.ResponseWriter, r *http.Request, req samplesRequest) {
	sigma, err := strconv.ParseFloat(req.Sigma, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown sigma %q (precompiled: %v; free-form σ must be a decimal)", req.Sigma, s.cfg.Sigmas))
		return
	}
	out := make([]int, req.Count)
	served, terr := s.tierCompiledDraw(r.Context(), sigma, out)
	if terr != nil {
		s.writeDrawError(w, epSamples, terr)
		return
	}
	if served {
		w.Header().Set(tierHeader, "compiled")
		writeJSON(w, http.StatusOK, samplesResponse{Sigma: req.Sigma, Count: req.Count, Samples: out})
		return
	}
	// Free-form σ rides the arbitrary layer, so it sheds with it.
	if s.arb.degraded() {
		writeUnavailable(w, "arbitrary layer degraded: a base shard is restarting")
		return
	}
	tr := traceOf(w)
	start := time.Now()
	derr := s.arb.draw(r.Context(), sigma, 0, out)
	tr.End(obs.StageCoalesce, start)
	if derr != nil {
		s.writeDrawError(w, epSamples, derr)
		return
	}
	s.m.samples.Add(uint64(req.Count))
	s.m.tierConvolvedSamples.Add(uint64(req.Count))
	s.m.tierConvolvedNanos.Add(uint64(time.Since(start).Nanoseconds()))
	if s.tier != nil {
		s.tier.Observe(sigma, req.Count)
	}
	tr.SetTier("convolved")
	w.Header().Set(tierHeader, "convolved")
	writeJSON(w, http.StatusOK, samplesResponse{Sigma: req.Sigma, Count: req.Count, Samples: out})
}
