package server

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"ctgauss"
)

// arbco fronts the arbitrary-(σ, μ) sampler for the HTTP layer.  Unlike
// the per-σ coalescer — which exists because a Pool's native granularity
// is a fixed 64-sample batch — the convolution layer compacts accepted
// candidates, so every request is served exactly with no leftover to
// cursor.  Coalescing is therefore keyed by base set rather than per σ:
// all arbitrary requests, whatever their (σ, μ), share the one compiled
// base set, whose sharded wide samplers batch refills 512 lanes at a
// time across concurrent requests.  This wrapper adds the serving
// ledger: request/sample counters and the set of distinct σ values
// served (bounded; the overflow flag keeps the gauge honest).
type arbco struct {
	arb *ctgauss.Arbitrary

	samples atomic.Uint64

	mu            sync.Mutex
	sigmas        map[float64]struct{}
	sigmaOverflow bool
}

// arbSigmaTrackLimit bounds the distinct-σ set (an adversarial client
// must not grow server memory without bound).
const arbSigmaTrackLimit = 4096

func newArbco(arb *ctgauss.Arbitrary) *arbco {
	return &arbco{arb: arb, sigmas: make(map[float64]struct{})}
}

func (a *arbco) draw(sigma, mu float64, out []int) error {
	if err := a.arb.NextBatch(sigma, mu, out); err != nil {
		return err
	}
	a.samples.Add(uint64(len(out)))
	a.mu.Lock()
	if _, ok := a.sigmas[sigma]; !ok {
		if len(a.sigmas) < arbSigmaTrackLimit {
			a.sigmas[sigma] = struct{}{}
		} else {
			a.sigmaOverflow = true
		}
	}
	a.mu.Unlock()
	return nil
}

// arbStats joins the serving ledger with the sampler's own counters for
// the /metrics scrape.
type arbStats struct {
	samples          uint64
	distinctSigmas   int
	sigmaOverflow    bool
	trials, accepted uint64
	plans            uint64
	shards           int
}

func (a *arbco) stats() arbStats {
	a.mu.Lock()
	distinct := len(a.sigmas)
	overflow := a.sigmaOverflow
	a.mu.Unlock()
	st := a.arb.Stats()
	return arbStats{
		samples:        a.samples.Load(),
		distinctSigmas: distinct,
		sigmaOverflow:  overflow,
		trials:         st.Trials,
		accepted:       st.Accepted,
		plans:          st.Plans,
		shards:         st.Shards,
	}
}

// arbitraryRequest is the /v1/arbitrary request schema.
type arbitraryRequest struct {
	// Count is the number of samples wanted (1 ≤ Count ≤ MaxCount).
	Count int `json:"count"`
	// Sigma is the free-form standard deviation (required, within the
	// served bounds — see /healthz).
	Sigma float64 `json:"sigma"`
	// Mu is the center (optional, default 0).
	Mu float64 `json:"mu,omitempty"`
}

// arbitraryResponse is the /v1/arbitrary response schema.
type arbitraryResponse struct {
	Sigma   float64 `json:"sigma"`
	Mu      float64 `json:"mu"`
	Count   int     `json:"count"`
	Samples []int   `json:"samples"`
}

func (s *Server) handleArbitrary(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req arbitraryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Count < 1 {
		writeError(w, http.StatusBadRequest, "count must be >= 1")
		return
	}
	if req.Count > s.cfg.MaxCount {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("count %d exceeds limit %d", req.Count, s.cfg.MaxCount))
		return
	}
	out := make([]int, req.Count)
	if err := s.arb.draw(req.Sigma, req.Mu, out); err != nil {
		// The only draw failures are request-validation ones (σ outside
		// bounds, non-finite μ).
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.m.samples.Add(uint64(req.Count))
	writeJSON(w, http.StatusOK, arbitraryResponse{Sigma: req.Sigma, Mu: req.Mu, Count: req.Count, Samples: out})
}

// serveFreeformSigma handles a /v1/samples request whose σ names no
// precompiled pool: with the arbitrary layer enabled, any parseable σ in
// bounds is served by the convolution layer at μ = 0, so the endpoint's
// σ menu is the continuous admissible range rather than the -sigmas
// list.  Responses keep the request's σ spelling.
func (s *Server) serveFreeformSigma(w http.ResponseWriter, req samplesRequest) {
	sigma, err := strconv.ParseFloat(req.Sigma, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown sigma %q (precompiled: %v; free-form σ must be a decimal)", req.Sigma, s.cfg.Sigmas))
		return
	}
	out := make([]int, req.Count)
	if err := s.arb.draw(sigma, 0, out); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.m.samples.Add(uint64(req.Count))
	writeJSON(w, http.StatusOK, samplesResponse{Sigma: req.Sigma, Count: req.Count, Samples: out})
}
