package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ctgauss/internal/obs"
)

// LoadConfig drives RunLoad against a running ctgaussd.
type LoadConfig struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8754".
	BaseURL string
	// Mode is "samples", "arbitrary", "sign", "verify", or "mix"
	// (round-robin over the enabled endpoints per request index; against
	// a daemon with Falcon or the arbitrary layer disabled, mix degrades
	// to the enabled set and the dedicated modes error out).
	Mode string
	// Clients is the number of concurrent request loops (default 8).
	Clients int
	// Requests is the request count per client (default 100).
	Requests int
	// Count is the per-request sample count for samples-mode requests
	// (default 64).
	Count int
	// Sigma optionally overrides the server's default σ.  In arbitrary
	// mode it is the free-form σ (decimal; default "3.3").
	Sigma string
	// Mu is the center for arbitrary-mode requests (default 0).
	Mu float64
	// Message is the payload for sign/verify requests (default fixed).
	Message []byte
	// Timeout bounds each HTTP request (default 30s).
	Timeout time.Duration
	// Retries is the number of times a request rejected with 429 or 503
	// is retried (0 = give up on the first rejection).  Each retry sleeps
	// a jittered exponential backoff from RetryBackoff, floored by the
	// server's Retry-After hint when one is sent.
	Retries int
	// RetryBackoff is the base backoff before the first retry (default
	// 25ms; doubles per attempt, capped at 2s before jitter).
	RetryBackoff time.Duration

	// HotKey turns arbitrary mode into a tier-promotion benchmark: one
	// full load phase against the convolved tier, a wait (bounded by
	// HotKeyTimeout) for the daemon's tier controller to promote the σ,
	// then a second identical phase against the compiled tier.  The
	// report's HotKey block carries ns/sample before and after.  Requires
	// a daemon running with -tier-promote-rps > 0.
	HotKey bool
	// HotKeyTimeout bounds the promotion wait (default 60s).  On timeout
	// the after-phase still runs (the report then shows promoted=false).
	HotKeyTimeout time.Duration

	// Stages reports the client-observed per-stage latency breakdown from
	// the daemon's X-Ctgauss-Stages response trailers, reconciled against
	// the daemon's own ctgaussd_stage_seconds histograms scraped at the
	// run boundaries.  Requires a daemon running with -trace (or
	// -slow-request); RunLoad errors out otherwise.
	Stages bool
	// SlowestK lists the trace IDs of the K slowest requests in the
	// report (0 disables; Stages mode defaults it to 5).
	SlowestK int
}

// LatencySummary condenses observed per-request latencies.
type LatencySummary struct {
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// LoadReport is the throughput report RunLoad produces (the serving
// analogue of samplebench -json).  Counters are designed to reconcile
// with the daemon's /metrics: ctgaussd_requests_total counts
// queue-admitted requests, so its deltas over the exercised endpoints
// sum to (Requests + Retries) − Rejected — each retry is its own HTTP
// attempt, and each attempt the daemon sheds with 429 counts once in
// Rejected; Samples matches ctgaussd_samples_served_total, and so on.
// ServerCancelled is the daemon's own tally of requests whose context
// ended mid-flight (ctgaussd_requests_cancelled_total summed over
// endpoints) — under client timeouts it accounts for attempts that
// were admitted but produced no samples.
type LoadReport struct {
	Target            string         `json:"target"`
	Mode              string         `json:"mode"`
	Clients           int            `json:"clients"`
	Requests          int            `json:"requests"`
	Errors            int            `json:"errors"`
	Rejected          int            `json:"rejected_429"`
	Retries           int            `json:"retries"`
	Samples           int            `json:"samples"`
	ArbitrarySamples  int            `json:"arbitrary_samples"`
	Signatures        int            `json:"signatures"`
	Verifies          int            `json:"verifies"`
	DurationSeconds   float64        `json:"duration_seconds"`
	RequestsPerSecond float64        `json:"requests_per_second"`
	SamplesPerSecond  float64        `json:"samples_per_second"`
	Latency           LatencySummary `json:"latency"`

	// ServerCancelled reconciles against
	// ctgaussd_requests_cancelled_total (summed over endpoints) after
	// the run.
	ServerCancelled uint64 `json:"server_cancelled"`

	// Prefetch telemetry, reconciled against the daemon's /metrics after
	// the run: hits and misses are the sums of
	// ctgaussd_prefetch_{hits,misses}_total over every served σ, and the
	// ratio is hits/(hits+misses) — how often a draw found its refill
	// already evaluated by the engine's background producers.
	PrefetchHits     uint64  `json:"prefetch_hits"`
	PrefetchMisses   uint64  `json:"prefetch_misses"`
	PrefetchHitRatio float64 `json:"prefetch_hit_ratio"`

	// HotKey is the tier-promotion benchmark block (HotKey mode only).
	HotKey *HotKeyReport `json:"hotkey,omitempty"`

	// SlowestRequests identifies the run's K slowest successful requests
	// by daemon-issued trace ID — grep these against the daemon's
	// slow-request log to see where each one's time went server-side.
	SlowestRequests []SlowRequestInfo `json:"slowest_requests,omitempty"`

	// Stages is the per-stage latency breakdown (Stages mode only).
	Stages map[string]StageBreakdown `json:"stages,omitempty"`
}

// SlowRequestInfo identifies one of the run's slowest requests.
type SlowRequestInfo struct {
	TraceID   string  `json:"trace_id"`
	Endpoint  string  `json:"endpoint"`
	LatencyMs float64 `json:"latency_ms"`
}

// StageBreakdown is one stage's distribution over the run, from the
// daemon's per-request stage trailers (client-observed) reconciled with
// the daemon's own stage histograms (DaemonMeanUs, from the
// ctgaussd_stage_seconds _sum/_count deltas over the run).  Share is
// this stage's fraction of total request time; partition stages
// (queue_wait, decode, route, coalesce, encode, other) sum to ~1, while
// engine_wait/eval/combine nest inside coalesce and overlap it.
type StageBreakdown struct {
	Count        int     `json:"count"`
	P50Us        float64 `json:"p50_us"`
	P99Us        float64 `json:"p99_us"`
	MeanUs       float64 `json:"mean_us"`
	Share        float64 `json:"share"`
	DaemonMeanUs float64 `json:"daemon_mean_us,omitempty"`
}

// HotKeyReport is the before/after ledger of one σ's promotion from the
// convolved tier to a compiled pool.
type HotKeyReport struct {
	// Sigma is the hot key (decimal spelling as requested).
	Sigma string `json:"sigma"`
	// Promoted reports whether the daemon promoted the key within
	// HotKeyTimeout; false means the after-phase still ran convolved and
	// Improvement is meaningless.
	Promoted bool `json:"promoted"`
	// PromotionWaitSeconds is how long after the first phase the key took
	// to reach the compiled tier.
	PromotionWaitSeconds float64 `json:"promotion_wait_seconds"`
	// NsPerSampleBefore/After are the daemon's own per-tier sampling
	// costs over each phase — Δ ctgaussd_tier_sample_seconds_total /
	// Δ ctgaussd_tier_samples_total scraped at the phase boundaries
	// (before from the convolved ledger, after from the compiled one).
	// That is time inside the sampler call itself, transport excluded:
	// the figure a promotion changes and the one comparable with
	// samplebench's BENCH_PR4 numbers.
	NsPerSampleBefore float64 `json:"ns_per_sample_before"`
	NsPerSampleAfter  float64 `json:"ns_per_sample_after"`
	// Improvement is NsPerSampleBefore / NsPerSampleAfter.
	Improvement float64 `json:"improvement"`
	// ClientNsPerSample{Before,After} are the end-to-end figures for the
	// same phases (request latency / samples, HTTP and JSON included) —
	// what a client observes, floor-bounded by transport.
	ClientNsPerSampleBefore float64 `json:"client_ns_per_sample_before"`
	ClientNsPerSampleAfter  float64 `json:"client_ns_per_sample_after"`
}

// respMeta carries the observability envelope of one response: the
// daemon-issued trace ID (header) and the encoded stage breakdown
// (trailer; empty unless the daemon runs with -trace).
type respMeta struct {
	traceID string
	stages  string
}

// reqRecord is one successful request's observability record.
type reqRecord struct {
	endpoint string
	traceID  string
	latency  time.Duration
	stages   string // raw X-Ctgauss-Stages trailer
}

// loadWorker accumulates one client's counts (merged after the run).
type loadWorker struct {
	requests, errors, rejected    int
	retries                       int
	samples, signatures, verifies int
	arbitrary                     int
	latencies                     []time.Duration
	records                       []reqRecord
}

// RunLoad drives the daemon with Clients×Requests requests and returns
// the aggregate report.  Transport failures and non-2xx responses count
// as errors (429 separately as rejections); verify responses with
// valid=false count as errors too, since the load generator only submits
// genuine signatures.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Count <= 0 {
		cfg.Count = 64
	}
	if cfg.Mode == "" {
		cfg.Mode = "samples"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Message == nil {
		cfg.Message = []byte("ctgaussload message")
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.Stages && cfg.SlowestK <= 0 {
		cfg.SlowestK = 5
	}
	client := &http.Client{Timeout: cfg.Timeout}

	falconOn, arbitraryOn, traceOn, err := probeFeatures(client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: probing %s/healthz: %w", cfg.BaseURL, err)
	}
	if cfg.Stages && !traceOn {
		return nil, fmt.Errorf("loadgen: -stages needs a daemon running with -trace (or -slow-request); /healthz reports tracing off")
	}
	var endpoints []string
	switch cfg.Mode {
	case "samples":
		endpoints = []string{"samples"}
	case "arbitrary":
		if !arbitraryOn {
			return nil, fmt.Errorf("loadgen: mode %q needs /v1/arbitrary, but the daemon runs with the arbitrary layer disabled", cfg.Mode)
		}
		endpoints = []string{"arbitrary"}
	case "sign", "verify":
		if !falconOn {
			return nil, fmt.Errorf("loadgen: mode %q needs the Falcon endpoints, but the daemon runs sampling-only", cfg.Mode)
		}
		endpoints = []string{cfg.Mode}
	case "mix":
		endpoints = []string{"samples"}
		if arbitraryOn {
			endpoints = append(endpoints, "arbitrary")
		}
		if falconOn {
			endpoints = append(endpoints, "sign", "verify")
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q (want samples, arbitrary, sign, verify or mix)", cfg.Mode)
	}

	// verify requests need a genuine signature: obtain one up front (not
	// counted in the report).
	var sigB64 string
	for _, ep := range endpoints {
		if ep != "verify" {
			continue
		}
		sigB64, err = signOnce(client, cfg)
		if err != nil {
			return nil, fmt.Errorf("loadgen: priming signature for verify mode: %w", err)
		}
	}

	collect := cfg.Stages || cfg.SlowestK > 0
	runPhase := func() ([]loadWorker, time.Duration) {
		workers := make([]loadWorker, cfg.Clients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func(w *loadWorker) {
				defer wg.Done()
				for i := 0; i < cfg.Requests; i++ {
					ep := endpoints[i%len(endpoints)]
					t0 := time.Now()
					meta, err := doRequest(client, cfg, ep, sigB64, w)
					for attempt := 0; attempt < cfg.Retries && isRetryable(err); attempt++ {
						time.Sleep(retryDelay(cfg.RetryBackoff, attempt, err))
						w.retries++
						meta, err = doRequest(client, cfg, ep, sigB64, w)
					}
					lat := time.Since(t0)
					w.latencies = append(w.latencies, lat)
					w.requests++
					if err != nil && !isRejection(err) {
						// 429s count as Rejected only: backpressure working
						// as designed is not a failure of the run.
						w.errors++
					}
					if collect && err == nil && meta != nil {
						w.records = append(w.records, reqRecord{
							endpoint: ep, traceID: meta.traceID, latency: lat, stages: meta.stages,
						})
					}
				}
			}(&workers[c])
		}
		wg.Wait()
		return workers, time.Since(start)
	}

	var hot *HotKeyReport
	if cfg.HotKey {
		if cfg.Mode != "arbitrary" {
			return nil, fmt.Errorf("loadgen: hot-key benchmarking needs mode \"arbitrary\", not %q", cfg.Mode)
		}
		if cfg.HotKeyTimeout <= 0 {
			cfg.HotKeyTimeout = 60 * time.Second
		}
		hotSigma := cfg.Sigma
		if hotSigma == "" {
			hotSigma = "3.3"
		}
		sigmaF, perr := strconv.ParseFloat(hotSigma, 64)
		if perr != nil {
			return nil, fmt.Errorf("loadgen: hot-key σ %q: %w", hotSigma, perr)
		}
		// Fail before spending a load phase if the daemon cannot promote.
		if _, terr := probeTierState(client, cfg.BaseURL, sigmaF); terr != nil {
			return nil, fmt.Errorf("loadgen: hot-key mode: %w", terr)
		}
		hot = &HotKeyReport{Sigma: hotSigma}
	}

	// The hot-key phases bracket the daemon's per-tier sampling ledger:
	// the before figure is the convolved ledger's delta over phase one,
	// the after figure the compiled ledger's delta over phase two, so
	// the wait-loop trickle between them counts in neither.
	var led0 tierLedger
	if hot != nil {
		var lerr error
		if led0, lerr = scrapeTierLedger(client, cfg.BaseURL); lerr != nil {
			return nil, fmt.Errorf("loadgen: hot-key mode: tier ledger scrape: %w", lerr)
		}
	}
	var sled0 stageLedger
	if cfg.Stages {
		var serr error
		if sled0, serr = scrapeStageLedger(client, cfg.BaseURL); serr != nil {
			return nil, fmt.Errorf("loadgen: stage ledger scrape: %w", serr)
		}
	}
	workers, elapsed := runPhase()
	if hot != nil {
		clientNsPer := func(ws []loadWorker) float64 {
			var lat time.Duration
			var samples int
			for i := range ws {
				for _, d := range ws[i].latencies {
					lat += d
				}
				samples += ws[i].arbitrary
			}
			if samples == 0 {
				return 0
			}
			return float64(lat.Nanoseconds()) / float64(samples)
		}
		led1, lerr := scrapeTierLedger(client, cfg.BaseURL)
		if lerr != nil {
			return nil, fmt.Errorf("loadgen: hot-key mode: tier ledger scrape: %w", lerr)
		}
		hot.NsPerSampleBefore = led1.convolvedNsPerSample(led0)
		hot.ClientNsPerSampleBefore = clientNsPer(workers)
		// Keep the key hot with a trickle of single requests while the
		// daemon's tier controller notices and builds the compiled pool.
		sigmaF, _ := strconv.ParseFloat(hot.Sigma, 64)
		waitStart := time.Now()
		for time.Since(waitStart) < cfg.HotKeyTimeout {
			var scratch loadWorker
			_, _ = doRequest(client, cfg, "arbitrary", "", &scratch)
			state, terr := probeTierState(client, cfg.BaseURL, sigmaF)
			if terr == nil && state == "compiled" {
				hot.Promoted = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		hot.PromotionWaitSeconds = time.Since(waitStart).Seconds()
		led2, lerr := scrapeTierLedger(client, cfg.BaseURL)
		if lerr != nil {
			return nil, fmt.Errorf("loadgen: hot-key mode: tier ledger scrape: %w", lerr)
		}
		after, afterElapsed := runPhase()
		led3, lerr := scrapeTierLedger(client, cfg.BaseURL)
		if lerr != nil {
			return nil, fmt.Errorf("loadgen: hot-key mode: tier ledger scrape: %w", lerr)
		}
		hot.NsPerSampleAfter = led3.compiledNsPerSample(led2)
		hot.ClientNsPerSampleAfter = clientNsPer(after)
		if hot.NsPerSampleAfter > 0 {
			hot.Improvement = hot.NsPerSampleBefore / hot.NsPerSampleAfter
		}
		workers = append(workers, after...)
		elapsed += afterElapsed // promotion wait excluded: throughput reflects load phases only
	}

	report := &LoadReport{
		Target:          cfg.BaseURL,
		Mode:            cfg.Mode,
		Clients:         cfg.Clients,
		DurationSeconds: elapsed.Seconds(),
	}
	var lats []time.Duration
	for i := range workers {
		w := &workers[i]
		report.Requests += w.requests
		report.Errors += w.errors
		report.Rejected += w.rejected
		report.Retries += w.retries
		report.Samples += w.samples
		report.ArbitrarySamples += w.arbitrary
		report.Signatures += w.signatures
		report.Verifies += w.verifies
		lats = append(lats, w.latencies...)
	}
	if elapsed > 0 {
		report.RequestsPerSecond = float64(report.Requests) / elapsed.Seconds()
		report.SamplesPerSecond = float64(report.Samples) / elapsed.Seconds()
	}
	report.Latency = summarize(lats)
	report.HotKey = hot
	// Reconcile the prefetch ledger against the daemon's own /metrics (a
	// daemon that doesn't expose the series — or is unreachable now —
	// just leaves the fields zero; the load counters above are already
	// complete).
	if hits, misses, cancelled, err := scrapeCounters(client, cfg.BaseURL); err == nil {
		report.PrefetchHits, report.PrefetchMisses = hits, misses
		if total := hits + misses; total > 0 {
			report.PrefetchHitRatio = float64(hits) / float64(total)
		}
		report.ServerCancelled = cancelled
	}

	var records []reqRecord
	for i := range workers {
		records = append(records, workers[i].records...)
	}
	if cfg.SlowestK > 0 {
		report.SlowestRequests = slowestRequests(records, cfg.SlowestK)
	}
	if cfg.Stages {
		sled1, serr := scrapeStageLedger(client, cfg.BaseURL)
		if serr != nil {
			return nil, fmt.Errorf("loadgen: stage ledger scrape: %w", serr)
		}
		report.Stages = stageBreakdowns(records, sled1.delta(sled0))
	}
	return report, nil
}

// slowestRequests picks the k slowest records, slowest first.
func slowestRequests(records []reqRecord, k int) []SlowRequestInfo {
	sorted := make([]reqRecord, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].latency > sorted[j].latency })
	if k > len(sorted) {
		k = len(sorted)
	}
	out := make([]SlowRequestInfo, 0, k)
	for _, r := range sorted[:k] {
		out = append(out, SlowRequestInfo{
			TraceID:   r.traceID,
			Endpoint:  r.endpoint,
			LatencyMs: float64(r.latency.Nanoseconds()) / 1e6,
		})
	}
	return out
}

// stageBreakdowns aggregates the per-request stage trailers into
// per-stage distributions and reconciles each against the daemon's own
// histogram delta over the run.
func stageBreakdowns(records []reqRecord, daemon stageLedger) map[string]StageBreakdown {
	perStage := make(map[string][]int64)
	var totalNs int64
	for _, r := range records {
		for stage, ns := range obs.ParseStages(r.stages) {
			perStage[stage] = append(perStage[stage], ns)
			if stage == "total" {
				totalNs += ns
			}
		}
	}
	out := make(map[string]StageBreakdown, len(perStage))
	for stage, vals := range perStage {
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		var sum int64
		for _, v := range vals {
			sum += v
		}
		pick := func(q float64) float64 {
			return float64(vals[int(q*float64(len(vals)-1))]) / 1e3
		}
		b := StageBreakdown{
			Count:  len(vals),
			P50Us:  pick(0.5),
			P99Us:  pick(0.99),
			MeanUs: float64(sum) / float64(len(vals)) / 1e3,
		}
		if totalNs > 0 {
			b.Share = float64(sum) / float64(totalNs)
		}
		if d, ok := daemon[stage]; ok && d.count > 0 {
			b.DaemonMeanUs = d.seconds * 1e6 / float64(d.count)
		}
		out[stage] = b
	}
	return out
}

// scrapeCounters sums the per-σ prefetch hit/miss counters and the
// per-endpoint cancellation counter from the daemon's Prometheus
// exposition.
func scrapeCounters(client *http.Client, baseURL string) (hits, misses, cancelled uint64, err error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, 0, 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		var dst *uint64
		switch {
		case strings.HasPrefix(line, "ctgaussd_prefetch_hits_total{"):
			dst = &hits
		case strings.HasPrefix(line, "ctgaussd_prefetch_misses_total{"):
			dst = &misses
		case strings.HasPrefix(line, "ctgaussd_requests_cancelled_total{"):
			dst = &cancelled
		default:
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, perr := strconv.ParseUint(fields[1], 10, 64)
		if perr != nil {
			continue
		}
		*dst += v
	}
	return hits, misses, cancelled, nil
}

// tierLedger is one scrape of the daemon's per-tier sampling ledgers:
// cumulative samples and in-sampler seconds for each tier.
type tierLedger struct {
	compiledSamples, convolvedSamples uint64
	compiledSeconds, convolvedSeconds float64
}

// convolvedNsPerSample is the convolved tier's mean in-sampler cost per
// sample over the interval from prev to l (0 with no samples).
func (l tierLedger) convolvedNsPerSample(prev tierLedger) float64 {
	ds := l.convolvedSamples - prev.convolvedSamples
	if ds == 0 {
		return 0
	}
	return (l.convolvedSeconds - prev.convolvedSeconds) * 1e9 / float64(ds)
}

// compiledNsPerSample is the compiled tier's counterpart.
func (l tierLedger) compiledNsPerSample(prev tierLedger) float64 {
	ds := l.compiledSamples - prev.compiledSamples
	if ds == 0 {
		return 0
	}
	return (l.compiledSeconds - prev.compiledSeconds) * 1e9 / float64(ds)
}

// scrapeTierLedger reads ctgaussd_tier_samples_total and
// ctgaussd_tier_sample_seconds_total for both tiers from /metrics.
func scrapeTierLedger(client *http.Client, baseURL string) (tierLedger, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return tierLedger{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return tierLedger{}, err
	}
	var led tierLedger
	seen := 0
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case `ctgaussd_tier_samples_total{tier="compiled"}`:
			led.compiledSamples, _ = strconv.ParseUint(fields[1], 10, 64)
		case `ctgaussd_tier_samples_total{tier="convolved"}`:
			led.convolvedSamples, _ = strconv.ParseUint(fields[1], 10, 64)
		case `ctgaussd_tier_sample_seconds_total{tier="compiled"}`:
			led.compiledSeconds, _ = strconv.ParseFloat(fields[1], 64)
		case `ctgaussd_tier_sample_seconds_total{tier="convolved"}`:
			led.convolvedSeconds, _ = strconv.ParseFloat(fields[1], 64)
		default:
			continue
		}
		seen++
	}
	if seen != 4 {
		return tierLedger{}, fmt.Errorf("daemon exposes no per-tier sampling ledger (%d/4 series found)", seen)
	}
	return led, nil
}

// stageLedger is one scrape of the daemon's per-stage request-time
// histograms, summed across endpoints: cumulative seconds and
// observation counts per stage name.
type stageLedger map[string]stageLedgerEntry

type stageLedgerEntry struct {
	seconds float64
	count   uint64
}

// delta subtracts prev from l per stage (stages absent from prev count
// from zero).
func (l stageLedger) delta(prev stageLedger) stageLedger {
	out := make(stageLedger, len(l))
	for stage, e := range l {
		p := prev[stage]
		out[stage] = stageLedgerEntry{seconds: e.seconds - p.seconds, count: e.count - p.count}
	}
	return out
}

// scrapeStageLedger reads the ctgaussd_stage_seconds _sum and _count
// series from /metrics, summed across endpoints.  An empty ledger is
// not an error: a freshly started traced daemon has no observations
// yet (the caller gates on /healthz's trace flag instead), and the
// exposition skips empty histograms.
func scrapeStageLedger(client *http.Client, baseURL string) (stageLedger, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	led := make(stageLedger)
	for _, line := range strings.Split(string(data), "\n") {
		isSum := strings.HasPrefix(line, "ctgaussd_stage_seconds_sum{")
		isCount := strings.HasPrefix(line, "ctgaussd_stage_seconds_count{")
		if !isSum && !isCount {
			continue
		}
		stage, ok := labelValue(line, "stage")
		if !ok {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		e := led[stage]
		if isSum {
			v, perr := strconv.ParseFloat(fields[1], 64)
			if perr != nil {
				continue
			}
			e.seconds += v
		} else {
			v, perr := strconv.ParseUint(fields[1], 10, 64)
			if perr != nil {
				continue
			}
			e.count += v
		}
		led[stage] = e
	}
	return led, nil
}

// labelValue extracts one label's quoted value from a Prometheus sample
// line.
func labelValue(line, label string) (string, bool) {
	marker := label + `="`
	i := strings.Index(line, marker)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// errHTTP marks a non-2xx response (the body's error message, if any,
// and the server's Retry-After hint when it sent one).
type errHTTP struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *errHTTP) Error() string { return fmt.Sprintf("http %d: %s", e.status, e.msg) }

// isRejection reports whether err is a 429 backpressure response.
func isRejection(err error) bool {
	he, ok := err.(*errHTTP)
	return ok && he.status == http.StatusTooManyRequests
}

// isRetryable reports whether err is a response the daemon explicitly
// asks clients to retry: 429 backpressure or 503 degraded/draining.
func isRetryable(err error) bool {
	he, ok := err.(*errHTTP)
	return ok && (he.status == http.StatusTooManyRequests || he.status == http.StatusServiceUnavailable)
}

// retryDelay computes the sleep before retry number attempt (0-based):
// full-jitter exponential backoff from base, doubled per attempt and
// capped at 2s, floored by the server's Retry-After hint so a client
// never comes back earlier than the daemon asked.
func retryDelay(base time.Duration, attempt int, err error) time.Duration {
	d := base << uint(attempt)
	if max := 2 * time.Second; d > max || d <= 0 {
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if he, ok := err.(*errHTTP); ok && he.retryAfter > d {
		d = he.retryAfter
	}
	return d
}

// probeTierState reads σ's tier state from /healthz.  An untracked key
// reads "convolved"; a daemon running without the tier controller is an
// error (hot-key mode cannot mean anything against it).
func probeTierState(client *http.Client, baseURL string, sigma float64) (string, error) {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var hr struct {
		Tier *struct {
			Keys []struct {
				Sigma float64 `json:"sigma"`
				State string  `json:"state"`
			} `json:"keys"`
		} `json:"tier"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return "", err
	}
	if hr.Tier == nil {
		return "", fmt.Errorf("daemon runs without tiering (start it with -tier-promote-rps)")
	}
	for _, k := range hr.Tier.Keys {
		if k.Sigma == sigma {
			return k.State, nil
		}
	}
	return "convolved", nil
}

// probeFeatures asks /healthz which optional endpoint groups the daemon
// mounts and whether stage tracing is on.
func probeFeatures(client *http.Client, baseURL string) (falconOn, arbitraryOn, traceOn bool, err error) {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return false, false, false, err
	}
	defer resp.Body.Close()
	var hr struct {
		Falcon    string `json:"falcon"`
		Arbitrary bool   `json:"arbitrary"`
		Trace     bool   `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return false, false, false, err
	}
	return hr.Falcon != "", hr.Arbitrary, hr.Trace, nil
}

// postJSON posts req and decodes the 200 response into resp, returning
// the response's observability envelope.  Reading the body to EOF first
// is what makes the trailer visible: net/http exposes trailers only
// after the last body byte.
func postJSON(client *http.Client, url string, req, resp any) (*respMeta, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	r, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	meta := &respMeta{
		traceID: r.Header.Get(obs.TraceHeader),
		stages:  r.Trailer.Get(obs.StagesHeader),
	}
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(data, &e)
		he := &errHTTP{status: r.StatusCode, msg: e.Error}
		if secs, perr := strconv.Atoi(r.Header.Get("Retry-After")); perr == nil && secs > 0 {
			he.retryAfter = time.Duration(secs) * time.Second
		}
		return meta, he
	}
	return meta, json.Unmarshal(data, resp)
}

func signOnce(client *http.Client, cfg LoadConfig) (string, error) {
	var resp signResponse
	_, err := postJSON(client, cfg.BaseURL+"/v1/falcon/sign",
		signRequest{Message: base64.StdEncoding.EncodeToString(cfg.Message)}, &resp)
	if err != nil {
		return "", err
	}
	return resp.Signature, nil
}

func doRequest(client *http.Client, cfg LoadConfig, endpoint, sigB64 string, w *loadWorker) (*respMeta, error) {
	switch endpoint {
	case "samples":
		var resp samplesResponse
		meta, err := postJSON(client, cfg.BaseURL+"/v1/samples",
			samplesRequest{Count: cfg.Count, Sigma: cfg.Sigma}, &resp)
		if err != nil {
			if he, ok := err.(*errHTTP); ok && he.status == http.StatusTooManyRequests {
				w.rejected++
			}
			return meta, err
		}
		if len(resp.Samples) != cfg.Count {
			return meta, fmt.Errorf("got %d samples, want %d", len(resp.Samples), cfg.Count)
		}
		w.samples += len(resp.Samples)
		return meta, nil
	case "arbitrary":
		sigma := 3.3
		if cfg.Sigma != "" {
			var perr error
			sigma, perr = strconv.ParseFloat(cfg.Sigma, 64)
			if perr != nil {
				return nil, fmt.Errorf("arbitrary mode needs a decimal -sigma: %w", perr)
			}
		}
		var resp arbitraryResponse
		meta, err := postJSON(client, cfg.BaseURL+"/v1/arbitrary",
			arbitraryRequest{Count: cfg.Count, Sigma: sigma, Mu: cfg.Mu}, &resp)
		if err != nil {
			if he, ok := err.(*errHTTP); ok && he.status == http.StatusTooManyRequests {
				w.rejected++
			}
			return meta, err
		}
		if len(resp.Samples) != cfg.Count {
			return meta, fmt.Errorf("got %d arbitrary samples, want %d", len(resp.Samples), cfg.Count)
		}
		w.arbitrary += len(resp.Samples)
		return meta, nil
	case "sign":
		var resp signResponse
		meta, err := postJSON(client, cfg.BaseURL+"/v1/falcon/sign",
			signRequest{Message: base64.StdEncoding.EncodeToString(cfg.Message)}, &resp)
		if err != nil {
			if he, ok := err.(*errHTTP); ok && he.status == http.StatusTooManyRequests {
				w.rejected++
			}
			return meta, err
		}
		if resp.Signature == "" {
			return meta, fmt.Errorf("empty signature")
		}
		w.signatures++
		return meta, nil
	case "verify":
		var resp verifyResponse
		meta, err := postJSON(client, cfg.BaseURL+"/v1/falcon/verify",
			verifyRequest{
				Message:   base64.StdEncoding.EncodeToString(cfg.Message),
				Signature: sigB64,
			}, &resp)
		if err != nil {
			if he, ok := err.(*errHTTP); ok && he.status == http.StatusTooManyRequests {
				w.rejected++
			}
			return meta, err
		}
		if !resp.Valid {
			return meta, fmt.Errorf("genuine signature reported invalid: %s", resp.Reason)
		}
		w.verifies++
		return meta, nil
	}
	return nil, fmt.Errorf("unknown endpoint %q", endpoint)
}

func summarize(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	pick := func(q float64) float64 {
		idx := int(q * float64(len(lats)-1))
		return float64(lats[idx].Nanoseconds()) / 1e6
	}
	return LatencySummary{
		P50Ms:  pick(0.5),
		P99Ms:  pick(0.99),
		MeanMs: float64(sum.Nanoseconds()) / float64(len(lats)) / 1e6,
		MaxMs:  float64(lats[len(lats)-1].Nanoseconds()) / 1e6,
	}
}
