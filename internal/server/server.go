package server

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"slices"
	"sync"
	"time"

	"ctgauss"
	"ctgauss/falcon"
	"ctgauss/internal/bitslice/dispatch"
	"ctgauss/internal/obs"
	"ctgauss/internal/tier"
)

// Config wires a Server.  The zero value of optional fields picks the
// documented defaults; Sigmas must name at least one σ.
type Config struct {
	// Sigmas are the standard deviations served at /v1/samples; pools for
	// all of them are built (or loaded from the registry cache) at
	// startup, so request latency never includes a circuit build.  The
	// first entry is the default σ for requests that omit the field.
	Sigmas []string
	// PoolShards is the shard count of each sampling pool (0 = NumCPU).
	PoolShards int
	// Seed is the master sampling seed; each σ pool derives its own seed
	// from it with domain separation (PoolSeed).  Defaults to a fixed,
	// publicly known development seed — set fresh randomness in
	// production.
	Seed []byte
	// PRNG selects the pool generator: "chacha20" (default), "shake256",
	// "aes-ctr".
	PRNG string
	// Prefetch is the refill lookahead per pool shard on the engine
	// runtime: 0 = the pool default (double buffering), negative =
	// synchronous refill under the shard lock, positive = that many
	// refills of lookahead.  It also applies to the arbitrary layer's
	// base-draw streams.  Served streams are bit-identical at any
	// setting.
	Prefetch int
	// PrefetchBySigma overrides Prefetch per served σ (same encoding).
	PrefetchBySigma map[string]int

	// FalconKey, when set, is the signing key served by the Falcon
	// endpoints.  Otherwise a key is generated deterministically from
	// FalconN and FalconSeed; FalconN = 0 disables the Falcon endpoints.
	FalconKey    *falcon.PrivateKey
	FalconN      int
	FalconSeed   []byte
	FalconKind   falcon.BaseSamplerKind
	FalconShards int // signer pool shard count (0 = NumCPU)

	// MaxCount caps the per-request sample count (default 65536); larger
	// requests get 413.
	MaxCount int
	// QueueDepth bounds concurrently admitted requests per endpoint
	// (default 256); excess load is rejected with 429 instead of queueing
	// without bound.
	QueueDepth int
	// RequestTimeout bounds each admitted request's handler (0 = no
	// limit): the request context is cancelled at the deadline, so a draw
	// stuck behind a poisoned shard's restart fails with 503 + Retry-After
	// instead of holding its admission slot indefinitely.
	RequestTimeout time.Duration

	// DisableArbitrary turns off the free-form-(σ, μ) convolution layer:
	// the /v1/arbitrary endpoint and the free-form σ fallback of
	// /v1/samples.  By default the layer is on, so the daemon serves the
	// whole admissible σ range from one compiled base set.
	DisableArbitrary bool
	// ArbitraryBases overrides the convolution base set (default
	// {"2", "6.15543"}); the whole set is built — in parallel — as one
	// registry artifact at startup.
	ArbitraryBases []string
	// ArbitraryShards is the arbitrary sampler's shard count (0 =
	// NumCPU).
	ArbitraryShards int

	// TierPromoteRPS enables hot-(σ, μ=0) tiering when > 0: free-form σ
	// keys whose sliding-window sample rate reaches this threshold are
	// promoted in the background onto direct compiled pools (the
	// convolved tier costs 4–20× more per sample — see BENCH_PR4 vs
	// BENCH_PR8).  0 disables the tier controller entirely.  Requires the
	// arbitrary layer (DisableArbitrary=false).
	TierPromoteRPS float64
	// TierDemoteRPS is the demotion threshold (default TierPromoteRPS/4;
	// the hysteresis band prevents build/drain thrash).
	TierDemoteRPS float64
	// TierWindow is the sliding-window length rates are measured over
	// (default 10s); promotions are evaluated every quarter window.
	TierWindow time.Duration
	// TierMaxPools bounds concurrently promoted compiled pools
	// (default 4).
	TierMaxPools int
	// TierMaxSigma is the widest σ worth compiling directly (default 64;
	// exact minimization cost grows with the support ⌈τσ⌉).
	TierMaxSigma float64

	// Trace enables end-to-end request tracing: every request gets an
	// X-Ctgauss-Trace ID, per-stage timings flow into the
	// ctgaussd_stage_seconds{stage,endpoint} histograms, and the stage
	// breakdown rides back on the X-Ctgauss-Stages response trailer.
	// Off by default — the hot-path hooks then reduce to one atomic
	// check and the served streams are bit-identical either way.
	Trace bool
	// SlowRequest, when > 0, emits a structured slow-request record
	// (log/slog) for requests slower than this, with the stage
	// breakdown and trace ID.  Implies Trace.
	SlowRequest time.Duration
	// SlowLogMinInterval rate-limits slow-request records: at most one
	// per interval (0 = 100ms default; negative = log every one).
	SlowLogMinInterval time.Duration
	// Logger receives the server's structured events: slow-request
	// records and tier-transition lines.  nil = slog.Default().
	Logger *slog.Logger
}

// Endpoint names used for metrics and admission queues.
const (
	epSamples   = "samples"
	epArbitrary = "arbitrary"
	epSign      = "falcon_sign"
	epVerify    = "falcon_verify"
	epKey       = "falcon_key"
)

// Server is the ctgaussd HTTP serving layer: the handler set plus the
// drain/backpressure machinery around the sampling and signing pools.
// Construct with New, mount Handler, stop with Drain.
type Server struct {
	cfg          Config
	defaultSigma string
	co           map[string]*coalescer
	arb          *arbco           // nil when the arbitrary layer is disabled
	tier         *tier.Controller // nil when tiering is disabled
	signers      *falcon.SignerPool
	pubEnc       string // base64 EncodePublic, fixed at startup
	m            *metrics
	obs          *obs.Observer
	logger       *slog.Logger
	queues       map[string]chan struct{}
	handler      http.Handler
	start        time.Time

	mu        sync.Mutex
	draining  bool
	inflight  sync.WaitGroup
	closeOnce sync.Once

	// testHook, when set, runs inside every admitted request after the
	// admission queue slot is taken — test instrumentation for drain and
	// backpressure behaviour.
	testHook func(endpoint string)
}

// PoolSeed derives the sampling-pool seed for one σ from the server's
// master seed with domain separation.  Exported so clients (and tests)
// can reconstruct a pool that is stream-identical to the served one.
func PoolSeed(master []byte, sigma string) []byte {
	h := sha256.New()
	h.Write([]byte("ctgauss/server/samples"))
	h.Write([]byte(sigma))
	h.Write([]byte{0})
	h.Write(master)
	return h.Sum(nil)
}

// falconPoolSeed mirrors PoolSeed for the signing pool.
func falconPoolSeed(master []byte) []byte {
	h := sha256.New()
	h.Write([]byte("ctgauss/server/falcon"))
	h.Write(master)
	return h.Sum(nil)
}

// ArbitrarySeed derives the arbitrary-sampler seed from the server's
// master seed with domain separation.  Exported so clients (and tests)
// can reconstruct a sampler stream-identical to the served one.
func ArbitrarySeed(master []byte) []byte {
	h := sha256.New()
	h.Write([]byte("ctgauss/server/arbitrary"))
	h.Write(master)
	return h.Sum(nil)
}

// New builds every pool in cfg and returns a ready Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Sigmas) == 0 {
		return nil, fmt.Errorf("server: config needs at least one sigma")
	}
	if cfg.MaxCount <= 0 {
		cfg.MaxCount = 65536
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Seed == nil {
		cfg.Seed = []byte("ctgaussd-default-seed")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	endpoints := []string{epSamples, epArbitrary, epSign, epVerify, epKey}
	s := &Server{
		cfg:          cfg,
		defaultSigma: cfg.Sigmas[0],
		co:           make(map[string]*coalescer),
		m:            newMetrics(endpoints),
		obs: obs.New(obs.Config{
			Trace:              cfg.Trace,
			SlowRequest:        cfg.SlowRequest,
			SlowLogMinInterval: cfg.SlowLogMinInterval,
			Logger:             logger,
		}, endpoints),
		logger: logger,
		queues: make(map[string]chan struct{}),
		start:  time.Now(),
	}
	// Catch per-σ prefetch overrides that name no served σ (a typo'd or
	// differently spelled value would otherwise leave that pool silently
	// running in the wrong refill mode).
	for sigma := range cfg.PrefetchBySigma {
		if !slices.Contains(cfg.Sigmas, sigma) {
			return nil, fmt.Errorf("server: PrefetchBySigma names σ %q, which is not served (sigmas: %v)", sigma, cfg.Sigmas)
		}
	}
	for _, sigma := range cfg.Sigmas {
		if _, dup := s.co[sigma]; dup {
			return nil, fmt.Errorf("server: sigma %q listed twice", sigma)
		}
		prefetch := cfg.Prefetch
		if p, ok := cfg.PrefetchBySigma[sigma]; ok {
			prefetch = p
		}
		pool, err := ctgauss.NewPoolWithConfig(ctgauss.Config{
			Sigma:    sigma,
			Seed:     PoolSeed(cfg.Seed, sigma),
			PRNG:     cfg.PRNG,
			Prefetch: prefetch,
		}, cfg.PoolShards)
		if err != nil {
			return nil, fmt.Errorf("server: building σ=%s pool: %w", sigma, err)
		}
		s.co[sigma] = newCoalescer(sigma, pool)
	}

	if !cfg.DisableArbitrary {
		arb, err := ctgauss.NewArbitrary(ctgauss.ArbitraryConfig{
			BaseSigmas: cfg.ArbitraryBases,
			Shards:     cfg.ArbitraryShards,
			Seed:       ArbitrarySeed(cfg.Seed),
			PRNG:       cfg.PRNG,
			Prefetch:   cfg.Prefetch,
		})
		if err != nil {
			return nil, fmt.Errorf("server: building arbitrary base set: %w", err)
		}
		s.arb = newArbco(arb)
	}

	if s.arb != nil && cfg.TierPromoteRPS > 0 {
		tc, err := tier.New(tier.Config{
			PromoteRPS: cfg.TierPromoteRPS,
			DemoteRPS:  cfg.TierDemoteRPS,
			Window:     cfg.TierWindow,
			MaxPools:   cfg.TierMaxPools,
			MaxSigma:   cfg.TierMaxSigma,
			// A promoted pool derives its seed exactly as a -sigmas
			// deployment of the same σ would (PoolSeed + registry artifact),
			// so promotion changes which machinery serves the key, never the
			// stream a fixed deployment of that σ would serve.
			Build: func(sigma string) (tier.Pool, error) {
				return ctgauss.NewPoolWithConfig(ctgauss.Config{
					Sigma:    sigma,
					Seed:     PoolSeed(cfg.Seed, sigma),
					PRNG:     cfg.PRNG,
					Prefetch: cfg.Prefetch,
				}, cfg.PoolShards)
			},
			Degraded: s.arb.degraded,
			// Tier transitions (promoting/promoted/build-failed/demoting)
			// land in the structured log instead of vanishing.
			Logf: func(format string, args ...any) {
				s.logger.Info(fmt.Sprintf(format, args...), "component", "tier")
			},
		})
		if err != nil {
			return nil, fmt.Errorf("server: tier controller: %w", err)
		}
		s.tier = tc
	}

	sk := cfg.FalconKey
	if sk == nil && cfg.FalconN != 0 {
		seed := cfg.FalconSeed
		if seed == nil {
			seed = falconPoolSeed(cfg.Seed)
		}
		var err error
		sk, err = falcon.Keygen(cfg.FalconN, seed)
		if err != nil {
			return nil, fmt.Errorf("server: falcon keygen: %w", err)
		}
	}
	if sk != nil {
		signSeed := cfg.FalconSeed
		if signSeed == nil {
			signSeed = falconPoolSeed(cfg.Seed)
		}
		pool, err := falcon.NewSignerPool(sk, cfg.FalconKind, signSeed, cfg.FalconShards)
		if err != nil {
			return nil, fmt.Errorf("server: falcon signer pool: %w", err)
		}
		s.signers = pool
		s.pubEnc = base64.StdEncoding.EncodeToString(sk.Public().EncodePublic())
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/samples", s.endpoint(epSamples, s.handleSamples))
	if s.arb != nil {
		mux.Handle("/v1/arbitrary", s.endpoint(epArbitrary, s.handleArbitrary))
	}
	if s.signers != nil {
		mux.Handle("/v1/falcon/sign", s.endpoint(epSign, s.handleSign))
		mux.Handle("/v1/falcon/verify", s.endpoint(epVerify, s.handleVerify))
		mux.Handle("/v1/falcon/key", s.endpoint(epKey, s.handleKey))
	}
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.handler = mux
	for _, e := range s.m.endpoints {
		s.queues[e.name] = make(chan struct{}, cfg.QueueDepth)
	}
	return s, nil
}

// Handler returns the HTTP handler tree (mountable under httptest or an
// http.Server).
func (s *Server) Handler() http.Handler { return s.handler }

// Sigmas returns the precompiled σ menu in configuration order (the
// first entry is the default).  The acceptance harness sweeps exactly
// this served surface rather than guessing it from flags.
func (s *Server) Sigmas() []string { return append([]string(nil), s.cfg.Sigmas...) }

// ArbitraryBounds reports the admissible free-form σ range of the
// convolution layer, or ok=false when the layer is disabled — the other
// half of the served surface the acceptance sweep must cover.
func (s *Server) ArbitraryBounds() (min, max float64, ok bool) {
	if s.arb == nil {
		return 0, 0, false
	}
	min, max = s.arb.arb.Bounds()
	return min, max, true
}

// FalconEnabled reports whether the Falcon endpoints are mounted.
func (s *Server) FalconEnabled() bool { return s.signers != nil }

// Tier returns the hot-key promotion controller, or nil when tiering is
// disabled.  Exported for tests and the acceptance harness, which force
// transitions to pin the promoted surface deterministically.
func (s *Server) Tier() *tier.Controller { return s.tier }

// Drain gracefully stops the server: new requests are refused with 503
// while requests already admitted run to completion; Drain returns once
// the last one finishes.  The HTTP listener itself is the caller's to
// close (http.Server.Shutdown pairs with Drain in cmd/ctgaussd).
func (s *Server) Drain() {
	s.stopAccepting()
	s.inflight.Wait()
}

// Close drains the server and then releases the refill runtime: the
// sampling pools' and arbitrary layer's background producer goroutines
// stop, and the signer pool is gated.  The drain-first ordering is what
// makes engine shutdown safe — no request can be mid-draw when the
// rings close.  /metrics and /healthz stay readable (their ledgers are
// snapshots).  Closing twice is harmless.
func (s *Server) Close() {
	s.Drain()
	s.closeOnce.Do(func() {
		// The tier controller first: it drains and closes the promoted
		// pools it owns (no request can be mid-draw after Drain).
		if s.tier != nil {
			s.tier.Close()
		}
		for _, co := range s.co {
			co.pool.Close()
		}
		if s.arb != nil {
			s.arb.arb.Close()
		}
		if s.signers != nil {
			s.signers.Close()
		}
		// Release the observability gate last: no request can be
		// in-flight past Drain, so no trace outlives its Observer.
		s.obs.Close()
	})
}

func (s *Server) stopAccepting() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// tryEnter admits a request past the drain gate, registering it with the
// in-flight group; callers must exit() after serving.
func (s *Server) tryEnter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// statusRecorder captures the response status for metrics and carries
// the request's trace (nil when tracing is off) so writeJSON and
// decodeBody can time the encode/decode stages without changing their
// signatures.
type statusRecorder struct {
	http.ResponseWriter
	status int
	tr     *obs.Trace
}

// traceOf extracts the trace a handler's ResponseWriter carries — the
// endpoint wrapper always hands handlers a *statusRecorder.  Returns
// nil (and all Trace methods no-op) when tracing is off or w is a bare
// writer (healthz/metrics, tests).
func traceOf(w http.ResponseWriter) *obs.Trace {
	if rec, ok := w.(*statusRecorder); ok {
		return rec.tr
	}
	return nil
}

// tracedCtx extracts the request trace from a context, paying only the
// global atomic check when tracing is off.
func tracedCtx(ctx context.Context) *obs.Trace {
	if !obs.TraceEnabled() {
		return nil
	}
	return obs.FromContext(ctx)
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// retryAfterSeconds is the backoff hint sent with every 429 and 503:
// both conditions clear on the order of an admission slot freeing or a
// producer restart completing (the restart backoff caps at 250ms), so
// one second is a safe, deliberately coarse retry cadence.
const retryAfterSeconds = "1"

// statusClientClosedRequest is the non-standard 499 recording a request
// whose client went away before a response was written (the client
// never sees it; it keeps the status recorder and logs honest).
const statusClientClosedRequest = 499

// writeUnavailable writes a 503 with the Retry-After hint — the shape of
// every transient refusal (drain, degraded shard, server-side timeout).
func writeUnavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", retryAfterSeconds)
	writeError(w, http.StatusServiceUnavailable, msg)
}

// writeDrawError maps a draw failure to a response: cancellation →
// 499 (client gone) or 503 + Retry-After (server-side deadline), both
// counted in the endpoint's cancelled metric; a degraded or closing
// pool → 503 + Retry-After; anything else is a request-validation error
// (σ out of bounds, non-finite μ) → 400.
func (s *Server) writeDrawError(w http.ResponseWriter, endpoint string, err error) {
	em := s.m.endpoint(endpoint)
	switch {
	case errors.Is(err, context.Canceled):
		em.cancelled.Add(1)
		writeError(w, statusClientClosedRequest, "request cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		em.cancelled.Add(1)
		writeUnavailable(w, "request timed out waiting for samples")
	case errors.Is(err, ctgauss.ErrPoolDegraded), errors.Is(err, ctgauss.ErrArbitraryDegraded), errors.Is(err, ctgauss.ErrClosed):
		writeUnavailable(w, "sampling runtime unavailable: "+err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// endpoint wraps a handler with the serving discipline every /v1 route
// shares: drain gate (503), bounded admission queue (429), per-request
// deadline, cancellation checks, in-flight accounting, and
// latency/request metrics.  429 and 503 responses carry a Retry-After
// hint so well-behaved clients back off instead of hammering.
func (s *Server) endpoint(name string, h http.HandlerFunc) http.Handler {
	em := s.m.endpoint(name)
	epIdx := s.m.index(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqStart := time.Now()
		tr := s.obs.Start(epIdx) // nil unless tracing is enabled
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK, tr: tr}
		if tr != nil {
			// The trace ID goes out on every traced response — refusals
			// included — and the stage breakdown rides the response
			// trailer (declared now, valued after the handler; writeJSON
			// never sets Content-Length, so responses are chunked and
			// trailers survive).
			w.Header().Set(obs.TraceHeader, tr.ID())
			w.Header().Set("Trailer", obs.StagesHeader)
			r = r.WithContext(obs.ContextWith(r.Context(), tr))
			defer func() {
				s.obs.Finish(tr, rec.status, time.Since(reqStart))
				w.Header().Set(obs.StagesHeader, tr.EncodeStages())
			}()
		}
		if !s.tryEnter() {
			em.refused.Add(1)
			writeUnavailable(rec, "server is draining")
			return
		}
		defer s.inflight.Done()
		// A client that disconnected while upstream never takes an
		// admission slot: its work would be thrown away anyway.
		if r.Context().Err() != nil {
			em.cancelled.Add(1)
			rec.status = statusClientClosedRequest
			return
		}
		queue := s.queues[name]
		select {
		case queue <- struct{}{}:
		default:
			em.rejected.Add(1)
			rec.Header().Set("Retry-After", retryAfterSeconds)
			writeError(rec, http.StatusTooManyRequests, "server overloaded: admission queue full")
			return
		}
		defer func() { <-queue }()
		tr.End(obs.StageQueueWait, reqStart)
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		if s.testHook != nil {
			s.testHook(name)
		}
		em.requests.Add(1)
		em.inflight.Add(1)
		defer em.inflight.Add(-1)
		start := time.Now()
		h(rec, r)
		em.lat.observe(time.Since(start))
		// 499s are client departures, not server faults; they have their
		// own counter.
		if rec.status >= 400 && rec.status != statusClientClosedRequest {
			em.errors.Add(1)
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	tr := traceOf(w)
	t0 := tr.Now()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
	tr.End(obs.StageEncode, t0)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// decodeBody parses a JSON request body into v with a 1 MiB cap.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	tr := traceOf(w)
	t0 := tr.Now()
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	tr.End(obs.StageDecode, t0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// samplesRequest is the /v1/samples request schema.
type samplesRequest struct {
	// Count is the number of samples wanted (1 ≤ Count ≤ MaxCount).
	Count int `json:"count"`
	// Sigma selects the distribution; empty means the server default.
	Sigma string `json:"sigma,omitempty"`
}

// samplesResponse is the /v1/samples response schema.
type samplesResponse struct {
	Sigma   string `json:"sigma"`
	Count   int    `json:"count"`
	Samples []int  `json:"samples"`
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req samplesRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Sigma == "" {
		req.Sigma = s.defaultSigma
	}
	if req.Count < 1 {
		writeError(w, http.StatusBadRequest, "count must be >= 1")
		return
	}
	if req.Count > s.cfg.MaxCount {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("count %d exceeds limit %d", req.Count, s.cfg.MaxCount))
		return
	}
	co, ok := s.co[req.Sigma]
	if !ok {
		// σ without a precompiled pool: fall through to the convolution
		// layer (free-form σ), or report the precompiled menu when the
		// layer is off.
		if s.arb != nil {
			s.serveFreeformSigma(w, r, req)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown sigma %q (served: %v)", req.Sigma, s.cfg.Sigmas))
		return
	}
	out := make([]int, req.Count)
	tr := traceOf(w)
	t0 := tr.Now()
	err := co.draw(r.Context(), out)
	tr.End(obs.StageCoalesce, t0)
	if err != nil {
		s.writeDrawError(w, epSamples, err)
		return
	}
	s.m.samples.Add(uint64(req.Count))
	writeJSON(w, http.StatusOK, samplesResponse{Sigma: req.Sigma, Count: req.Count, Samples: out})
}

// signRequest is the /v1/falcon/sign request schema.
type signRequest struct {
	// Message is the base64 (standard encoding) payload to sign.
	Message string `json:"message"`
}

// signResponse is the /v1/falcon/sign response schema.
type signResponse struct {
	// Signature is the base64 of Signature.Encode (salt ‖ length header ‖
	// compressed s1).
	Signature string `json:"signature"`
}

func (s *Server) handleSign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req signRequest
	if !decodeBody(w, r, &req) {
		return
	}
	msg, err := base64.StdEncoding.DecodeString(req.Message)
	if err != nil {
		writeError(w, http.StatusBadRequest, "message is not valid base64: "+err.Error())
		return
	}
	tr := traceOf(w)
	t0 := tr.Now()
	sig, err := s.signers.SignContext(r.Context(), msg)
	tr.End(obs.StageCoalesce, t0)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.writeDrawError(w, epSign, err)
			return
		}
		// Signing only fails when the attempt budget is exhausted —
		// astronomically unlikely with a healthy key; report it as a
		// server-side failure, not a client error.
		writeError(w, http.StatusInternalServerError, "signing failed: "+err.Error())
		return
	}
	s.m.signs.Add(1)
	writeJSON(w, http.StatusOK, signResponse{Signature: base64.StdEncoding.EncodeToString(sig.Encode())})
}

// verifyRequest is the /v1/falcon/verify request schema.
type verifyRequest struct {
	Message   string `json:"message"`
	Signature string `json:"signature"`
	// PublicKey optionally carries a base64 EncodePublic key to verify
	// against; empty means the server's own key.
	PublicKey string `json:"public_key,omitempty"`
}

// verifyResponse is the /v1/falcon/verify response schema.  A failed
// verification is a 200 with Valid=false — the transport succeeded; the
// signature just doesn't check out.
type verifyResponse struct {
	Valid  bool   `json:"valid"`
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req verifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	msg, err := base64.StdEncoding.DecodeString(req.Message)
	if err != nil {
		writeError(w, http.StatusBadRequest, "message is not valid base64: "+err.Error())
		return
	}
	rawSig, err := base64.StdEncoding.DecodeString(req.Signature)
	if err != nil {
		writeError(w, http.StatusBadRequest, "signature is not valid base64: "+err.Error())
		return
	}
	s.m.verifies.Add(1)
	sig, err := falcon.DecodeSignature(rawSig)
	if err != nil {
		writeJSON(w, http.StatusOK, verifyResponse{Valid: false, Reason: err.Error()})
		return
	}
	if req.PublicKey != "" {
		rawPk, err := base64.StdEncoding.DecodeString(req.PublicKey)
		if err != nil {
			writeError(w, http.StatusBadRequest, "public_key is not valid base64: "+err.Error())
			return
		}
		pk, err := falcon.DecodePublic(rawPk)
		if err != nil {
			writeError(w, http.StatusBadRequest, "public_key malformed: "+err.Error())
			return
		}
		if err := pk.Verify(msg, sig); err != nil {
			writeJSON(w, http.StatusOK, verifyResponse{Valid: false, Reason: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, verifyResponse{Valid: true})
		return
	}
	if err := s.signers.Verify(msg, sig); err != nil {
		writeJSON(w, http.StatusOK, verifyResponse{Valid: false, Reason: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, verifyResponse{Valid: true})
}

// keyResponse is the /v1/falcon/key response schema.
type keyResponse struct {
	Params    string `json:"params"`
	N         int    `json:"n"`
	PublicKey string `json:"public_key"` // base64 EncodePublic
}

func (s *Server) handleKey(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	p := s.signers.Public().Params
	writeJSON(w, http.StatusOK, keyResponse{Params: p.Name, N: p.N, PublicKey: s.pubEnc})
}

// shardHealthJSON is one shard's entry in a pool's /healthz listing.
type shardHealthJSON struct {
	Shard int `json:"shard"`
	// Poisoned: the shard's last refill panicked and its producer is
	// restarting with backoff (Dead=false) or out of budget (Dead=true);
	// draws fail over to the remaining shards meanwhile.
	Poisoned bool `json:"poisoned"`
	Dead     bool `json:"dead"`
	// Restarts counts recovered refill panics over the shard's lifetime.
	Restarts         uint64 `json:"restarts"`
	DiscardedRefills uint64 `json:"discarded_refills"`
}

// poolHealthJSON is one pool's per-shard health in /healthz ("arbitrary"
// labels the free-form layer's merged base-engine view).
type poolHealthJSON struct {
	Sigma    string            `json:"sigma"`
	Poisoned int               `json:"poisoned"` // shards currently poisoned
	Shards   []shardHealthJSON `json:"shards"`
}

// healthResponse is the /healthz schema.
type healthResponse struct {
	Status        string  `json:"status"` // "ok", "degraded" or "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Build identifies the running binary: the -ldflags-stamped version
	// (ctgauss/internal/obs.Version), the Go toolchain, and the VCS
	// revision when built from a checkout.
	Build obs.BuildInfo `json:"build"`
	// Trace reports whether request tracing (X-Ctgauss-Trace, stage
	// histograms) is enabled on this server.
	Trace bool `json:"trace"`
	// Simd is the circuit evaluation backend: which kernel set executes
	// the bitsliced op stream (portable/avx2/avx512), its native
	// evaluation width, the backends this CPU supports, and any
	// CTGAUSS_SIMD override (plus why it was not honored, if so).
	Simd         dispatch.Info `json:"simd"`
	Sigmas       []string      `json:"sigmas"`
	DefaultSigma string        `json:"default_sigma"`
	PoolShards   int           `json:"pool_shards"`
	// Prefetch is the default-σ pool's resolved refill lookahead depth
	// (0 = synchronous refill).
	Prefetch int `json:"prefetch"`
	// Pools lists per-shard fault-isolation state for every serving pool
	// (σ pools plus, when enabled, the arbitrary layer under sigma
	// "arbitrary").  Status is "degraded" while any shard is poisoned;
	// the daemon still serves from the healthy shards.
	Pools []poolHealthJSON `json:"pools"`
	// Arbitrary describes the free-form-(σ, μ) layer when enabled: its
	// base set and the admissible σ range.
	Arbitrary         bool     `json:"arbitrary"`
	ArbitraryBases    []string `json:"arbitrary_bases,omitempty"`
	ArbitrarySigmaMin float64  `json:"arbitrary_sigma_min,omitempty"`
	ArbitrarySigmaMax float64  `json:"arbitrary_sigma_max,omitempty"`
	// Tier describes the hot-key promotion controller when enabled:
	// thresholds, pool budget, and every tracked σ's tier state.
	Tier         *tierHealthJSON `json:"tier,omitempty"`
	Falcon       string          `json:"falcon,omitempty"` // parameter-set name
	FalconShards int             `json:"falcon_shards,omitempty"`
}

// tierKeyHealthJSON is one tracked σ's tier state in /healthz.
type tierKeyHealthJSON struct {
	Sigma float64 `json:"sigma"`
	// State is "convolved", "building", "compiled" or "draining".
	State string `json:"state"`
	// RatePerSec is the sliding-window μ=0 sample rate.
	RatePerSec float64 `json:"rate_per_sec"`
	// Samples is the lifetime observed sample count for this σ.
	Samples uint64 `json:"samples"`
	// BuildResolving is set for building keys whose circuit resolution is
	// currently in flight in the process-wide registry (as opposed to a
	// build queued behind the registry's singleflight or finishing pool
	// assembly).
	BuildResolving bool `json:"build_resolving,omitempty"`
}

// tierHealthJSON is the /healthz tier block.
type tierHealthJSON struct {
	PromoteRPS     float64             `json:"promote_rps"`
	DemoteRPS      float64             `json:"demote_rps"`
	WindowSeconds  float64             `json:"window_seconds"`
	MaxPools       int                 `json:"max_pools"`
	Pools          int                 `json:"pools"` // building + compiled + draining
	Promotions     uint64              `json:"promotions"`
	Demotions      uint64              `json:"demotions"`
	BuildsFailed   uint64              `json:"builds_failed"`
	BuildsDeferred uint64              `json:"builds_deferred"`
	Keys           []tierKeyHealthJSON `json:"keys,omitempty"`
}

// poolHealthOf renders one engine health snapshot for /healthz.
func poolHealthOf(label string, hs []ctgauss.ShardHealth) poolHealthJSON {
	ph := poolHealthJSON{Sigma: label}
	for i, h := range hs {
		if h.Poisoned {
			ph.Poisoned++
		}
		ph.Shards = append(ph.Shards, shardHealthJSON{
			Shard:            i,
			Poisoned:         h.Poisoned,
			Dead:             h.Dead,
			Restarts:         h.Restarts,
			DiscardedRefills: h.DiscardedRefills,
		})
	}
	return ph
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	resp := healthResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         obs.Build(),
		Trace:         s.obs.Enabled(),
		Simd:          dispatch.Snapshot(),
		Sigmas:        s.cfg.Sigmas,
		DefaultSigma:  s.defaultSigma,
		PoolShards:    s.co[s.defaultSigma].pool.Size(),
		Prefetch:      s.co[s.defaultSigma].pool.EngineStats().Prefetch,
	}
	for _, sigma := range s.cfg.Sigmas {
		ph := poolHealthOf(sigma, s.co[sigma].pool.Health())
		if ph.Poisoned > 0 {
			status = "degraded"
		}
		resp.Pools = append(resp.Pools, ph)
	}
	if s.arb != nil {
		resp.Arbitrary = true
		resp.ArbitraryBases = s.arb.arb.Stats().Bases
		resp.ArbitrarySigmaMin, resp.ArbitrarySigmaMax = s.arb.arb.Bounds()
		ph := poolHealthOf("arbitrary", s.arb.arb.Health())
		if ph.Poisoned > 0 {
			status = "degraded"
		}
		resp.Pools = append(resp.Pools, ph)
	}
	if s.tier != nil {
		tcfg := s.tier.Config()
		tst := s.tier.Stats()
		th := &tierHealthJSON{
			PromoteRPS:     tcfg.PromoteRPS,
			DemoteRPS:      tcfg.DemoteRPS,
			WindowSeconds:  tcfg.Window.Seconds(),
			MaxPools:       tst.MaxPools,
			Pools:          tst.Pools,
			Promotions:     tst.Promotions,
			Demotions:      tst.Demotions,
			BuildsFailed:   tst.BuildsFailed,
			BuildsDeferred: tst.BuildsDeferred,
		}
		for _, k := range s.tier.Snapshot() {
			kh := tierKeyHealthJSON{
				Sigma:      k.Sigma,
				State:      k.State.String(),
				RatePerSec: k.Rate,
				Samples:    k.Samples,
			}
			if k.State == tier.Building {
				kh.BuildResolving = ctgauss.BuildInFlight(ctgauss.Config{Sigma: tier.SigmaString(k.Sigma)})
			}
			th.Keys = append(th.Keys, kh)
		}
		resp.Tier = th
	}
	if s.signers != nil {
		resp.Falcon = s.signers.Public().Params.Name
		resp.FalconShards = s.signers.Size()
	}
	if s.isDraining() {
		status = "draining"
	}
	resp.Status = status
	code := http.StatusOK
	if status == "draining" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sigmas []sigmaStats
	for _, co := range s.co {
		sigmas = append(sigmas, co.sigmaStats())
	}
	var arb *arbStats
	if s.arb != nil {
		st := s.arb.stats()
		arb = &st
	}
	var ts *tierScrape
	if s.tier != nil {
		ts = &tierScrape{stats: s.tier.Stats(), keys: s.tier.Snapshot()}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.writePrometheus(w, scrapeData{
		sigmas:   sigmas,
		arb:      arb,
		tier:     ts,
		draining: s.isDraining(),
		uptime:   time.Since(s.start),
		stages:   s.obs.Scrape(),
	})
}
