package server

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ctgauss"
	"ctgauss/falcon"
	"ctgauss/internal/ctcheck"
)

// testFalconKey generates the shared falcon-256 test key once per
// process (keygen costs ~100ms; every server under test reuses it).
var (
	falconKeyOnce sync.Once
	falconKey     *falcon.PrivateKey
	falconKeyErr  error
)

func testFalconKey(t *testing.T) *falcon.PrivateKey {
	t.Helper()
	falconKeyOnce.Do(func() {
		falconKey, falconKeyErr = falcon.Keygen(256, []byte("server-test-keygen-seed"))
	})
	if falconKeyErr != nil {
		t.Fatal(falconKeyErr)
	}
	return falconKey
}

// newTestServer builds a server plus an httptest front end.  mutate
// adjusts the default config before construction.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Sigmas:       []string{"2"},
		PoolShards:   1,
		Seed:         []byte("server-test-seed"),
		FalconKey:    testFalconKey(t),
		FalconSeed:   []byte("server-test-sign-seed"),
		FalconShards: 2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close) // runs after ts.Close (LIFO): drain, then stop the engines
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSONT(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func drawSamples(t *testing.T, baseURL string, count int) []int {
	t.Helper()
	resp, body := postJSONT(t, baseURL+"/v1/samples", samplesRequest{Count: count})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("samples request: status %d: %s", resp.StatusCode, body)
	}
	var sr samplesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Count != count || len(sr.Samples) != count {
		t.Fatalf("asked for %d samples, got count=%d len=%d", count, sr.Count, len(sr.Samples))
	}
	return sr.Samples
}

// scrapeMetric fetches /metrics and returns the value of the series with
// the exact name-and-labels prefix, e.g.
// `ctgaussd_requests_total{endpoint="samples"}`.
func scrapeMetric(t *testing.T, baseURL, series string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, series+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, series)), 64)
		if err != nil {
			t.Fatalf("parsing series %s: %v", series, err)
		}
		return v
	}
	t.Fatalf("series %s not found in /metrics", series)
	return 0
}

// TestSamplesBitIdenticalToDirectPool pins the acceptance criterion that
// serving adds no transformation: the concatenated responses of
// sequential /v1/samples requests equal a direct ctgauss.Pool draw with
// the same derived seed and shard count.
func TestSamplesBitIdenticalToDirectPool(t *testing.T) {
	seed := []byte("determinism-seed")
	_, ts := newTestServer(t, func(c *Config) {
		c.Seed = seed
		c.FalconKey = nil // sampling only; keygen not needed here
		c.FalconN = 0
	})

	counts := []int{5, 64, 100, 3, 128}
	var served []int
	for _, n := range counts {
		served = append(served, drawSamples(t, ts.URL, n)...)
	}

	direct, err := ctgauss.NewPoolWithConfig(ctgauss.Config{
		Sigma: "2",
		Seed:  PoolSeed(seed, "2"),
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, 0, len(served)+64)
	batch := make([]int, 64)
	for len(want) < len(served) {
		direct.NextBatch(batch)
		want = append(want, batch...)
	}
	for i, v := range served {
		if v != want[i] {
			t.Fatalf("sample %d: served %d, direct pool %d", i, v, want[i])
		}
	}
}

// TestSamplesCoalescing checks that N concurrent small requests share
// batches: 32 clients × 16 samples = 512 samples must cost exactly 8
// 64-sample batches (vs ≥ 32 if every request drew its own batch).
func TestSamplesCoalescing(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
	})

	const clients, perClient = 32, 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(samplesRequest{Count: perClient})
			resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	batches := scrapeMetric(t, ts.URL, `ctgaussd_batches_total{sigma="2"}`)
	if want := float64(clients * perClient / 64); batches != want {
		t.Fatalf("coalescing: %v batches drawn for %d samples, want %v", batches, clients*perClient, want)
	}
	// The refill ledger must agree with the engine width: refills =
	// batches / batches-per-refill.
	width := s.co["2"].stats.BatchesPerRefill
	refills := scrapeMetric(t, ts.URL, `ctgaussd_refills_total{sigma="2"}`)
	if want := float64(clients*perClient/64) / float64(width); refills != want {
		t.Fatalf("refills = %v, want %v (width %d)", refills, want, width)
	}
}

func TestFalconEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)
	msg := base64.StdEncoding.EncodeToString([]byte("serving test message"))

	// Sign.
	resp, body := postJSONT(t, ts.URL+"/v1/falcon/sign", signRequest{Message: msg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sign: status %d: %s", resp.StatusCode, body)
	}
	var sr signResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	// Verify against the server's key.
	resp, body = postJSONT(t, ts.URL+"/v1/falcon/verify",
		verifyRequest{Message: msg, Signature: sr.Signature})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d: %s", resp.StatusCode, body)
	}
	var vr verifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Valid {
		t.Fatalf("genuine signature rejected: %s", vr.Reason)
	}

	// Tampered message must fail verification (still HTTP 200).
	tampered := base64.StdEncoding.EncodeToString([]byte("tampered message!!!!"))
	resp, body = postJSONT(t, ts.URL+"/v1/falcon/verify",
		verifyRequest{Message: tampered, Signature: sr.Signature})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify(tampered): status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Valid {
		t.Fatal("tampered message verified")
	}

	// Fetch the public key and verify against it explicitly, end to end
	// through the codec: the signature must also check out locally.
	kresp, err := http.Get(ts.URL + "/v1/falcon/key")
	if err != nil {
		t.Fatal(err)
	}
	var kr keyResponse
	if err := json.NewDecoder(kresp.Body).Decode(&kr); err != nil {
		t.Fatal(err)
	}
	kresp.Body.Close()
	if kr.N != 256 || kr.Params != "falcon-256" {
		t.Fatalf("key endpoint: %+v", kr)
	}
	resp, body = postJSONT(t, ts.URL+"/v1/falcon/verify",
		verifyRequest{Message: msg, Signature: sr.Signature, PublicKey: kr.PublicKey})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify(explicit key): status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Valid {
		t.Fatalf("verification against served public key failed: %s", vr.Reason)
	}
	rawPk, err := base64.StdEncoding.DecodeString(kr.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := falcon.DecodePublic(rawPk)
	if err != nil {
		t.Fatal(err)
	}
	rawSig, err := base64.StdEncoding.DecodeString(sr.Signature)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := falcon.DecodeSignature(rawSig)
	if err != nil {
		t.Fatal(err)
	}
	if err := pk.Verify([]byte("serving test message"), sig); err != nil {
		t.Fatalf("offline verification of served signature: %v", err)
	}
}

// TestConcurrentMixedTraffic is the zero-errors end-to-end acceptance
// run: concurrent /v1/samples and /v1/falcon/sign+verify clients against
// one server (run under -race in CI).
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.PoolShards = 2 })
	const clients, perClient = 12, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			msg := base64.StdEncoding.EncodeToString([]byte{byte(c), 'm'})
			for i := 0; i < perClient; i++ {
				if c%2 == 0 {
					body, _ := json.Marshal(samplesRequest{Count: 100})
					resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					var sr samplesResponse
					err = json.NewDecoder(resp.Body).Decode(&sr)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK || len(sr.Samples) != 100 {
						errs <- fmt.Errorf("samples: status %d, %d samples", resp.StatusCode, len(sr.Samples))
						return
					}
				} else {
					body, _ := json.Marshal(signRequest{Message: msg})
					resp, err := http.Post(ts.URL+"/v1/falcon/sign", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					var sr signResponse
					err = json.NewDecoder(resp.Body).Decode(&sr)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("sign: status %d", resp.StatusCode)
						return
					}
					vbody, _ := json.Marshal(verifyRequest{Message: msg, Signature: sr.Signature})
					vresp, err := http.Post(ts.URL+"/v1/falcon/verify", "application/json", bytes.NewReader(vbody))
					if err != nil {
						errs <- err
						return
					}
					var vr verifyResponse
					err = json.NewDecoder(vresp.Body).Decode(&vr)
					vresp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if !vr.Valid {
						errs <- fmt.Errorf("verify: %s", vr.Reason)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMetricsReconcileWithLoadReport runs the load generator against a
// fresh server and checks its report against the daemon's /metrics —
// the reconciliation the acceptance criteria require.
func TestMetricsReconcileWithLoadReport(t *testing.T) {
	_, ts := newTestServer(t, nil)
	report, err := RunLoad(LoadConfig{
		BaseURL:  ts.URL,
		Mode:     "mix",
		Clients:  4,
		Requests: 9, // 3 samples + 3 sign + 3 verify per client
		Count:    33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("load run saw %d errors", report.Errors)
	}
	if report.Requests != 4*9 {
		t.Fatalf("report.Requests = %d, want %d", report.Requests, 4*9)
	}

	// The served-samples counter covers both the per-σ pools and the
	// free-form convolution layer (mix mode exercises both).
	samples := scrapeMetric(t, ts.URL, "ctgaussd_samples_served_total")
	if samples != float64(report.Samples+report.ArbitrarySamples) {
		t.Fatalf("metrics samples %v != report samples %d + arbitrary %d",
			samples, report.Samples, report.ArbitrarySamples)
	}
	arbSamples := scrapeMetric(t, ts.URL, "ctgaussd_arbitrary_samples_total")
	if arbSamples != float64(report.ArbitrarySamples) {
		t.Fatalf("metrics arbitrary samples %v != report %d", arbSamples, report.ArbitrarySamples)
	}
	signs := scrapeMetric(t, ts.URL, "ctgaussd_signatures_total")
	// The verify arm of mix mode signs once up front to get a genuine
	// signature; that priming request is not in the report.
	if signs != float64(report.Signatures+1) {
		t.Fatalf("metrics signatures %v != report signatures %d + 1 priming", signs, report.Signatures)
	}
	verifies := scrapeMetric(t, ts.URL, "ctgaussd_verifies_total")
	if verifies != float64(report.Verifies) {
		t.Fatalf("metrics verifies %v != report verifies %d", verifies, report.Verifies)
	}
	reqTotal := scrapeMetric(t, ts.URL, `ctgaussd_requests_total{endpoint="samples"}`) +
		scrapeMetric(t, ts.URL, `ctgaussd_requests_total{endpoint="arbitrary"}`) +
		scrapeMetric(t, ts.URL, `ctgaussd_requests_total{endpoint="falcon_sign"}`) +
		scrapeMetric(t, ts.URL, `ctgaussd_requests_total{endpoint="falcon_verify"}`)
	if reqTotal != float64(report.Requests+1) {
		t.Fatalf("metrics requests %v != report requests %d + 1 priming", reqTotal, report.Requests)
	}
	if report.Latency.P50Ms <= 0 || report.Latency.P99Ms < report.Latency.P50Ms {
		t.Fatalf("implausible latency summary: %+v", report.Latency)
	}
}

// TestBackpressure returns 429 once the admission queue is full, and
// recovers afterwards.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.QueueDepth = 1
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.testHook = func(string) {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}

	// First request takes the single queue slot and parks in the hook.
	firstDone := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(samplesRequest{Count: 1})
		resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(body))
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-entered

	// While it holds the slot, further requests must be rejected.
	body, _ := json.Marshal(samplesRequest{Count: 1})
	resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429 with full queue, got %d", resp.StatusCode)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("parked request finished with %d", code)
	}
	if rej := scrapeMetric(t, ts.URL, `ctgaussd_rejected_total{endpoint="samples"}`); rej != 1 {
		t.Fatalf("rejected counter = %v, want 1", rej)
	}
	// Queue slot released: traffic flows again.
	drawSamples(t, ts.URL, 4)
}

// TestDrainCompletesInflight pins graceful shutdown: Drain refuses new
// requests immediately but waits for admitted ones to finish.
func TestDrainCompletesInflight(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.testHook = func(string) {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}

	inflightDone := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(samplesRequest{Count: 8})
		resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(body))
		if err != nil {
			inflightDone <- -1
			return
		}
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	<-entered

	s.stopAccepting()
	// New requests are refused while the old one is still parked.
	body, _ := json.Marshal(samplesRequest{Count: 1})
	resp, err := http.Post(ts.URL+"/v1/samples", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 while draining, got %d", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hr.Status != "draining" || hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %q, code %d", hr.Status, hresp.StatusCode)
	}

	waitDone := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
		t.Fatal("drain completed with a request still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not complete after the in-flight request finished")
	}
	if code := <-inflightDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain", code)
	}
	if v := scrapeMetric(t, ts.URL, `ctgaussd_drain_refused_total{endpoint="samples"}`); v != 1 {
		t.Fatalf("drain refusal not counted: %v", v)
	}
}

// TestLoadGenFalconDisabled pins mix-mode degradation and sign-mode
// refusal against a sampling-only daemon.
func TestLoadGenFalconDisabled(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
	})
	report, err := RunLoad(LoadConfig{BaseURL: ts.URL, Mode: "mix", Clients: 2, Requests: 3, Count: 8})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 || report.Samples+report.ArbitrarySamples != 2*3*8 || report.Signatures != 0 {
		t.Fatalf("mix against sampling-only daemon: %+v", report)
	}
	if _, err := RunLoad(LoadConfig{BaseURL: ts.URL, Mode: "sign", Clients: 1, Requests: 1}); err == nil {
		t.Fatal("sign mode against sampling-only daemon should refuse to start")
	}
}

// TestLoadGenCountsRejectionsNotErrors pins that 429s land in Rejected
// only.
func TestLoadGenCountsRejectionsNotErrors(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.QueueDepth = 1
	})
	// Park every admitted request briefly so concurrent clients overflow
	// the depth-1 queue.
	s.testHook = func(string) { time.Sleep(5 * time.Millisecond) }
	report, err := RunLoad(LoadConfig{BaseURL: ts.URL, Mode: "samples", Clients: 8, Requests: 4, Count: 8})
	if err != nil {
		t.Fatal(err)
	}
	if report.Rejected == 0 {
		t.Skip("no contention on this run; nothing to assert")
	}
	if report.Errors != 0 {
		t.Fatalf("429s were counted as errors: %+v", report)
	}
	rej := scrapeMetric(t, ts.URL, `ctgaussd_rejected_total{endpoint="samples"}`)
	adm := scrapeMetric(t, ts.URL, `ctgaussd_requests_total{endpoint="samples"}`)
	if rej != float64(report.Rejected) || adm != float64(report.Requests-report.Rejected) {
		t.Fatalf("reconciliation: metrics admitted=%v rejected=%v, report requests=%d rejected=%d",
			adm, rej, report.Requests, report.Rejected)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.DefaultSigma != "2" || hr.Falcon != "falcon-256" {
		t.Fatalf("healthz: %+v", hr)
	}
	if hr.PoolShards != 1 || hr.FalconShards != 2 {
		t.Fatalf("healthz shard counts: %+v", hr)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxCount = 256 })

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/samples")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/samples: %d, want 405", resp.StatusCode)
	}

	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/v1/samples", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d, want 400", resp.StatusCode)
	}

	// Unknown field.
	resp, _ = postJSONT(t, ts.URL+"/v1/samples", map[string]any{"count": 4, "bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}

	// count out of range.
	resp, _ = postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("count 0: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 257})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("count > max: %d, want 413", resp.StatusCode)
	}

	// A σ without a precompiled pool is served free-form by the
	// convolution layer; only unparseable or out-of-bounds σ are 400s.
	resp, _ = postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 4, Sigma: "99"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("free-form sigma: %d, want 200", resp.StatusCode)
	}
	resp, _ = postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 4, Sigma: "not-a-number"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparseable sigma: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 4, Sigma: "99999"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-bounds sigma: %d, want 400", resp.StatusCode)
	}
	// With the layer disabled, unknown σ is a 400 naming the menu.
	_, tsNoArb := newTestServer(t, func(c *Config) { c.DisableArbitrary = true })
	resp, noArbBody := postJSONT(t, tsNoArb.URL+"/v1/samples", samplesRequest{Count: 4, Sigma: "99"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown sigma with arbitrary disabled: %d, want 400 (%s)", resp.StatusCode, noArbBody)
	}

	// Invalid base64 on the falcon endpoints.
	resp, _ = postJSONT(t, ts.URL+"/v1/falcon/sign", signRequest{Message: "!!not-base64!!"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad base64 sign: %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSONT(t, ts.URL+"/v1/falcon/verify", verifyRequest{Message: "AA==", Signature: "!!"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad base64 verify: %d, want 400", resp.StatusCode)
	}

	// A garbage (but well-formed base64) signature is a verification
	// outcome, not a transport error.
	resp, body := postJSONT(t, ts.URL+"/v1/falcon/verify", verifyRequest{Message: "AA==", Signature: "AAAA"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage signature: %d, want 200", resp.StatusCode)
	}
	var vr verifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Valid || vr.Reason == "" {
		t.Fatalf("garbage signature: %+v", vr)
	}

	// Errors are counted (the validation requests above all hit samples
	// or falcon endpoints).
	if v := scrapeMetric(t, ts.URL, `ctgaussd_errors_total{endpoint="samples"}`); v == 0 {
		t.Fatal("validation failures not counted in ctgaussd_errors_total")
	}
}

// TestMultiSigma serves two σ pools side by side.
func TestMultiSigma(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Sigmas = []string{"2", "1.5"}
		c.FalconKey = nil
		c.FalconN = 0
	})
	resp, body := postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 8, Sigma: "1.5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sigma 1.5: status %d: %s", resp.StatusCode, body)
	}
	var sr samplesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Sigma != "1.5" || len(sr.Samples) != 8 {
		t.Fatalf("sigma 1.5 response: %+v", sr)
	}
	// Default σ is the first listed.
	resp, body = postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default sigma: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Sigma != "2" {
		t.Fatalf("default sigma = %q, want 2", sr.Sigma)
	}
}

// TestArbitraryEndpoint pins the /v1/arbitrary round trip and its
// validation errors.
func TestArbitraryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.MaxCount = 4096
	})
	resp, body := postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 100, Sigma: 3.7, Mu: 0.25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arbitrary request: status %d: %s", resp.StatusCode, body)
	}
	var ar arbitraryResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Sigma != 3.7 || ar.Mu != 0.25 || len(ar.Samples) != 100 {
		t.Fatalf("arbitrary response: sigma=%v mu=%v len=%d", ar.Sigma, ar.Mu, len(ar.Samples))
	}

	for name, req := range map[string]arbitraryRequest{
		"zero count":    {Count: 0, Sigma: 3},
		"missing sigma": {Count: 4},
		"tiny sigma":    {Count: 4, Sigma: 0.01},
		"huge sigma":    {Count: 4, Sigma: 1e9},
	} {
		resp, _ := postJSONT(t, ts.URL+"/v1/arbitrary", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, _ = postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 5000, Sigma: 3})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("count > max: status %d, want 413", resp.StatusCode)
	}

	// Metrics expose the layer's ledger.
	if v := scrapeMetric(t, ts.URL, "ctgaussd_arbitrary_samples_total"); v != 100 {
		t.Fatalf("arbitrary samples metric = %v, want 100", v)
	}
	if v := scrapeMetric(t, ts.URL, "ctgaussd_arbitrary_sigmas"); v != 1 {
		t.Fatalf("distinct sigmas metric = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts.URL, "ctgaussd_arbitrary_trials_total"); v <= 0 {
		t.Fatalf("trials metric = %v, want > 0", v)
	}
}

// TestArbitraryDisabled: with the layer off, the endpoint is absent and
// /healthz says so.
func TestArbitraryDisabled(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.DisableArbitrary = true
	})
	resp, _ := postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 4, Sigma: 3})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /v1/arbitrary: status %d, want 404", resp.StatusCode)
	}
	hr := getHealth(t, ts.URL)
	if hr.Arbitrary {
		t.Fatal("healthz reports arbitrary enabled on a disabled daemon")
	}
}

func getHealth(t *testing.T, baseURL string) healthResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	return hr
}

// TestArbitraryServesManySigmas is the PR's acceptance-criteria test: a
// single compiled base set serves five distinct σ values — including
// non-precompiled σ and a non-zero center — through both the Go API and
// /v1/arbitrary.  The served samples must (a) be bit-identical to a
// locally reconstructed sampler with the same derived seed (the serving
// layer adds no draws of its own), and (b) pass the ctcheck statistical
// harness against the ideal D_{ℤ,σ,μ}.
func TestArbitraryServesManySigmas(t *testing.T) {
	master := []byte("arbitrary-acceptance-seed")
	_, ts := newTestServer(t, func(c *Config) {
		c.Seed = master
		c.FalconKey = nil
		c.FalconN = 0
		c.ArbitraryShards = 2
	})
	local, err := ctgauss.NewArbitrary(ctgauss.ArbitraryConfig{
		Seed:   ArbitrarySeed(master),
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	pairs := []struct {
		sigma, mu float64
	}{
		{2, 0},        // precompiled base member
		{2.5, 0},      // non-precompiled σ
		{3.75, 0.375}, // non-precompiled σ, non-zero μ
		{6.15543, 0},  // the other base member
		{23.4, -1.5},  // far outside the base set, negative center
	}
	const n = 30000
	for _, pc := range pairs {
		resp, body := postJSONT(t, ts.URL+"/v1/arbitrary",
			arbitraryRequest{Count: n, Sigma: pc.sigma, Mu: pc.mu})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("σ=%g: status %d: %.200s", pc.sigma, resp.StatusCode, body)
		}
		var ar arbitraryResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		want := make([]int, n)
		if err := local.NextBatch(pc.sigma, pc.mu, want); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if ar.Samples[i] != want[i] {
				t.Fatalf("σ=%g μ=%g: served sample %d = %d, local reconstruction %d",
					pc.sigma, pc.mu, i, ar.Samples[i], want[i])
			}
		}
		g := ctcheck.ChiSquareGaussian(ar.Samples, pc.sigma, pc.mu)
		t.Logf("σ=%g μ=%g: %s", pc.sigma, pc.mu, g)
		if !g.Pass(0.001, 1.05) {
			t.Fatalf("σ=%g μ=%g: served samples fail the acceptance harness: %s", pc.sigma, pc.mu, g)
		}
	}
	if v := scrapeMetric(t, ts.URL, "ctgaussd_arbitrary_sigmas"); v != float64(len(pairs)) {
		t.Fatalf("distinct sigmas metric = %v, want %d", v, len(pairs))
	}
	hr := getHealth(t, ts.URL)
	if !hr.Arbitrary || len(hr.ArbitraryBases) != 2 || hr.ArbitrarySigmaMin <= 0 || hr.ArbitrarySigmaMax < 4096 {
		t.Fatalf("healthz arbitrary block: %+v", hr)
	}
}

// TestFreeformSigmaOnSamples: /v1/samples serves any in-bounds decimal σ
// through the convolution layer, keeping the request's spelling.
func TestFreeformSigmaOnSamples(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
	})
	resp, body := postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 200, Sigma: "3.5"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("free-form σ: status %d: %s", resp.StatusCode, body)
	}
	var sr samplesResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Sigma != "3.5" || len(sr.Samples) != 200 {
		t.Fatalf("free-form response: %+v", sr)
	}
	// Plausibility: folded mean of |z| for σ=3.5 is ≈ 2.8; a gross
	// mis-scale (e.g. serving the default σ=2 pool) would miss this band.
	var absSum float64
	for _, v := range sr.Samples {
		if v < 0 {
			v = -v
		}
		absSum += float64(v)
	}
	if mean := absSum / float64(len(sr.Samples)); mean < 2.2 || mean > 3.4 {
		t.Fatalf("free-form σ=3.5 mean |z| = %.2f, implausible", mean)
	}
	// The arbitrary endpoint and the free-form path share one ledger.
	if v := scrapeMetric(t, ts.URL, "ctgaussd_arbitrary_samples_total"); v != 200 {
		t.Fatalf("free-form draws not in the arbitrary ledger: %v", v)
	}
	// mix-load against this daemon exercises the arbitrary endpoint too.
	report, err := RunLoad(LoadConfig{BaseURL: ts.URL, Mode: "arbitrary", Clients: 2, Requests: 3, Count: 16, Sigma: "4.2", Mu: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 || report.ArbitrarySamples != 2*3*16 {
		t.Fatalf("arbitrary load report: %+v", report)
	}
}

// TestServerCloseReleasesEngines pins the SIGTERM path end to end:
// Close drains, stops every background refill producer the pools and
// the arbitrary layer own, and gates the signer pool — while /metrics
// and /healthz stay readable for a final scrape.
func TestServerCloseReleasesEngines(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, func(c *Config) { c.PoolShards = 2 })
	drawSamples(t, ts.URL, 100)

	s.Close()
	s.Close() // idempotent
	// New requests bounce off the drain gate with 503 — they never reach
	// the closed engines.
	resp, _ := postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 4})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close request: status %d, want 503", resp.StatusCode)
	}
	if v := scrapeMetric(t, ts.URL, `ctgaussd_pool_samples_total{sigma="2"}`); v != 100 {
		t.Fatalf("ledger unreadable after Close: %v", v)
	}
	ts.Close()
	// The producers (pool shards + arbitrary base streams) must all be
	// gone; give httptest's own connection goroutines a moment too.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive after Close, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrefetchMetricsAndLoadReconcile pins the prefetch telemetry: the
// per-σ hit/miss counters appear in /metrics, reconcile into the load
// generator's report, and the synchronous configuration reports a zero
// hit ratio ceiling on cold draws while the async default warms up.
func TestPrefetchMetricsAndLoadReconcile(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
	})
	report, err := RunLoad(LoadConfig{BaseURL: ts.URL, Mode: "samples", Clients: 4, Requests: 25, Count: 96})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("load errors: %+v", report)
	}
	hits := scrapeMetric(t, ts.URL, `ctgaussd_prefetch_hits_total{sigma="2"}`)
	misses := scrapeMetric(t, ts.URL, `ctgaussd_prefetch_misses_total{sigma="2"}`)
	if hits+misses == 0 {
		t.Fatal("no prefetch ledger activity recorded")
	}
	if float64(report.PrefetchHits) != hits || float64(report.PrefetchMisses) != misses {
		t.Fatalf("report hits/misses %d/%d do not reconcile with metrics %v/%v",
			report.PrefetchHits, report.PrefetchMisses, hits, misses)
	}
	if want := hits / (hits + misses); report.PrefetchHitRatio != want {
		t.Fatalf("report hit ratio %v, metrics-derived %v", report.PrefetchHitRatio, want)
	}
	if scrapeMetric(t, ts.URL, `ctgaussd_prefetch_depth{sigma="2"}`) != float64(ctgauss.DefaultPrefetch) {
		t.Fatal("default prefetch depth not exposed")
	}
	produced := scrapeMetric(t, ts.URL, `ctgaussd_refills_produced_total{sigma="2"}`)
	started := scrapeMetric(t, ts.URL, `ctgaussd_refills_total{sigma="2"}`)
	if produced < started {
		t.Fatalf("produced %v < started %v", produced, started)
	}

	// Synchronous config: depth 0 exposed, every cold draw is a miss.
	_, tsSync := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.Prefetch = -1
		c.PrefetchBySigma = map[string]int{"2": -1}
	})
	drawSamples(t, tsSync.URL, 64)
	if v := scrapeMetric(t, tsSync.URL, `ctgaussd_prefetch_depth{sigma="2"}`); v != 0 {
		t.Fatalf("sync prefetch depth = %v, want 0", v)
	}
	if v := scrapeMetric(t, tsSync.URL, `ctgaussd_prefetch_misses_total{sigma="2"}`); v == 0 {
		t.Fatal("sync pool recorded no inline-fill misses")
	}
	hr := getHealth(t, tsSync.URL)
	if hr.Prefetch != 0 {
		t.Fatalf("healthz prefetch = %d, want 0 for sync", hr.Prefetch)
	}

	// A per-σ override naming an unserved σ (a typo, or a different
	// decimal spelling) is a construction error, not a silent no-op.
	_, err = New(Config{
		Sigmas:           []string{"2"},
		PoolShards:       1,
		DisableArbitrary: true,
		PrefetchBySigma:  map[string]int{"2.0": -1},
	})
	if err == nil {
		t.Fatal("PrefetchBySigma naming an unserved σ was accepted")
	}
}
