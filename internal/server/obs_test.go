package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ctgauss/internal/bitslice/dispatch"
	"ctgauss/internal/obs"
)

// tracedPost posts req and returns the response trace ID, the decoded
// stage trailer, and the parsed body.  The body must be drained before
// the trailer is visible — that ordering is exactly what the production
// client (loadgen) relies on too.
func tracedPost(t *testing.T, url string, req any) (traceID string, stages map[string]int64, body []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	traceID = resp.Header.Get(obs.TraceHeader)
	stages = obs.ParseStages(resp.Trailer.Get(obs.StagesHeader))
	return traceID, stages, body
}

func TestTraceHeaderUniqueAndStageTrailer(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Trace = true })

	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		traceID, stages, _ := tracedPost(t, ts.URL+"/v1/samples", samplesRequest{Count: 64})
		if traceID == "" {
			t.Fatalf("request %d: no %s header", i, obs.TraceHeader)
		}
		if seen[traceID] {
			t.Fatalf("trace ID %q repeated", traceID)
		}
		seen[traceID] = true

		total := stages["total"]
		if total <= 0 {
			t.Fatalf("request %d: stage trailer has no positive total: %v", i, stages)
		}
		if stages["coalesce"] <= 0 {
			t.Fatalf("request %d: samples draw recorded no coalesce time: %v", i, stages)
		}
		// The partition stages must account for the request exactly:
		// Finish derives "other" as the unattributed remainder.
		var part int64
		for name, ns := range stages {
			for i := 0; i < obs.NumStages; i++ {
				if s := obs.Stage(i); s.String() == name && s.Partition() {
					part += ns
				}
			}
		}
		if part != total {
			t.Fatalf("request %d: partition stages sum to %d, total is %d", i, part, total)
		}
	}
}

func TestTraceDisabledNoHeaderNoSeries(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, body := postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 64})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "" {
		t.Fatalf("tracing off, but response carries %s=%q", obs.TraceHeader, got)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	data, _ := io.ReadAll(mresp.Body)
	if strings.Contains(string(data), "ctgaussd_stage_seconds") {
		t.Fatal("tracing off, but /metrics exposes ctgaussd_stage_seconds")
	}
}

// TestStageHistogramsReconcile drives concurrent load and checks the
// daemon's own stage accounting: summed over an endpoint, the partition
// stages' histogram _sum values must land within 5% of the total
// stage's (they are exactly equal by construction — the tolerance only
// absorbs float rendering).
func TestStageHistogramsReconcile(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Trace = true })

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Post(ts.URL+"/v1/samples", "application/json",
					strings.NewReader(`{"count":64}`))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	// A stage nothing exercised (e.g. route on the precompiled path) has
	// no observations, and empty histograms are skipped in the scrape —
	// read it as zero rather than requiring the series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	exposition, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(stage string) float64 {
		series := fmt.Sprintf("ctgaussd_stage_seconds_sum{stage=%q,endpoint=\"samples\"} ", stage)
		for _, line := range strings.Split(string(exposition), "\n") {
			if strings.HasPrefix(line, series) {
				v, perr := strconv.ParseFloat(strings.TrimPrefix(line, series), 64)
				if perr != nil {
					t.Fatalf("parsing %s: %v", series, perr)
				}
				return v
			}
		}
		return 0
	}
	total := sum("total")
	if total <= 0 {
		t.Fatalf("total stage sum = %g, want > 0", total)
	}
	var part float64
	for i := 0; i < obs.NumStages; i++ {
		if s := obs.Stage(i); s.Partition() {
			part += sum(s.String())
		}
	}
	if math.Abs(part-total)/total > 0.05 {
		t.Fatalf("partition stage sums (%g s) diverge from total (%g s) by more than 5%%", part, total)
	}
	count := scrapeMetric(t, ts.URL, `ctgaussd_stage_seconds_count{stage="total",endpoint="samples"}`)
	if count != 100 {
		t.Fatalf("total stage count = %g, want 100", count)
	}
}

// lockedSink is a goroutine-safe log destination.
type lockedSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *lockedSink) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *lockedSink) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

func TestSlowRequestLogCarriesTraceID(t *testing.T) {
	sink := &lockedSink{}
	_, ts := newTestServer(t, func(c *Config) {
		c.SlowRequest = time.Nanosecond // every request is "slow"
		c.SlowLogMinInterval = -1       // no sampling: log them all
		c.Logger = slog.New(slog.NewJSONHandler(sink, nil))
	})

	traceID, _, _ := tracedPost(t, ts.URL+"/v1/samples", samplesRequest{Count: 64})
	if traceID == "" {
		t.Fatalf("-slow-request implies tracing, but no %s header came back", obs.TraceHeader)
	}

	var found bool
	for _, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Msg      string `json:"msg"`
			Trace    string `json:"trace"`
			Endpoint string `json:"endpoint"`
			StagesMs map[string]float64
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec.Msg == "slow request" && rec.Trace == traceID {
			if rec.Endpoint != "samples" {
				t.Fatalf("slow-request record has endpoint %q, want samples", rec.Endpoint)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow-request record for trace %s in log:\n%s", traceID, sink.String())
	}
}

// TestMetricsLintClean pins the exposition format: a traced, tiered,
// loaded server's /metrics must pass every rule the CI metrics-lint
// step enforces (sorted families, no duplicates, counters end _total,
// buckets carry le, ...).
func TestMetricsLintClean(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.Trace = true
		c.TierPromoteRPS = 1e9 // tier controller on (no promotion expected)
	})
	drawSamples(t, ts.URL, 64)
	resp, body := postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 16, Sigma: 3.3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arbitrary: status %d: %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if errs := obs.LintMetrics(mresp.Body); len(errs) > 0 {
		t.Fatalf("metrics lint found %d violations: %v", len(errs), errs)
	}
}

func TestBuildInfoExposed(t *testing.T) {
	_, ts := newTestServer(t, nil)

	b := obs.Build()
	series := fmt.Sprintf("ctgaussd_build_info{version=%q,go_version=%q,simd=%q}",
		b.Version, b.GoVersion, dispatch.Active().String())
	if v := scrapeMetric(t, ts.URL, series); v != 1 {
		t.Fatalf("%s = %g, want 1", series, v)
	}
	if v := scrapeMetric(t, ts.URL, "ctgaussd_go_goroutines"); v <= 0 {
		t.Fatalf("ctgaussd_go_goroutines = %g, want > 0", v)
	}
	if v := scrapeMetric(t, ts.URL, "ctgaussd_uptime_seconds"); v < 0 {
		t.Fatalf("ctgaussd_uptime_seconds = %g, want >= 0", v)
	}

	h := getHealth(t, ts.URL)
	if h.Build.Version != b.Version || h.Build.GoVersion != b.GoVersion {
		t.Fatalf("healthz build block %+v does not match obs.Build() %+v", h.Build, b)
	}
	if want := dispatch.Snapshot(); h.Simd.Backend != want.Backend || h.Simd.Width != want.Width {
		t.Fatalf("healthz simd block %+v does not match dispatch.Snapshot() %+v", h.Simd, want)
	}
	if len(h.Simd.Available) == 0 || h.Simd.Available[0] != "portable" {
		t.Fatalf("healthz simd available must lead with portable: %v", h.Simd.Available)
	}
	if h.Trace {
		t.Fatal("healthz reports tracing on for an untraced server")
	}
}

func TestRingOccupancyGauges(t *testing.T) {
	_, ts := newTestServer(t, nil)
	drawSamples(t, ts.URL, 64)

	if v := scrapeMetric(t, ts.URL, `ctgaussd_engine_ring_target{sigma="2",shard="0"}`); v <= 0 {
		t.Fatalf(`ring target gauge for sigma=2 shard=0 is %g, want > 0`, v)
	}
	// Occupancy is load-dependent; just require the series to exist.
	_ = scrapeMetric(t, ts.URL, `ctgaussd_engine_ring_buffered{sigma="2",shard="0"}`)
	_ = scrapeMetric(t, ts.URL, `ctgaussd_engine_ring_buffered{sigma="arbitrary",shard="0"}`)
}

// TestPprofOnlyOnDebugListener pins the security boundary: the serving
// mux must not expose pprof; the dedicated debug handler must.
func TestPprofOnlyOnDebugListener(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Trace = true })

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("serving listener answers /debug/pprof/ with %d, want 404", resp.StatusCode)
	}

	dbg := httptest.NewServer(obs.DebugHandler())
	defer dbg.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap"} {
		resp, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug listener answers %s with %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestLoadgenStagesMode runs the full client-side pipeline: loadgen
// collects stage trailers, reconciles them against the daemon's
// histograms, and names its slowest requests by trace ID.
func TestLoadgenStagesMode(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Trace = true })

	report, err := RunLoad(LoadConfig{
		BaseURL:  ts.URL,
		Mode:     "samples",
		Clients:  4,
		Requests: 25,
		Count:    64,
		Stages:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("load run had %d errors", report.Errors)
	}
	total, ok := report.Stages["total"]
	if !ok || total.Count != 100 {
		t.Fatalf("stages[total] = %+v, want count 100", total)
	}
	if total.MeanUs <= 0 || total.DaemonMeanUs <= 0 {
		t.Fatalf("stages[total] means not populated: %+v", total)
	}
	// Client-observed partition shares must attribute ≥95% of request
	// time (the trailer is exact; "other" absorbs the remainder).
	var share float64
	for i := 0; i < obs.NumStages; i++ {
		s := obs.Stage(i)
		if !s.Partition() {
			continue
		}
		share += report.Stages[s.String()].Share
	}
	if share < 0.95 || share > 1.05 {
		t.Fatalf("partition stages attribute %.0f%% of request time, want ~100%%", share*100)
	}
	if len(report.SlowestRequests) != 5 {
		t.Fatalf("got %d slowest requests, want 5", len(report.SlowestRequests))
	}
	for i, sr := range report.SlowestRequests {
		if sr.TraceID == "" || sr.Endpoint != "samples" || sr.LatencyMs <= 0 {
			t.Fatalf("slowest[%d] incomplete: %+v", i, sr)
		}
		if i > 0 && sr.LatencyMs > report.SlowestRequests[i-1].LatencyMs {
			t.Fatalf("slowest requests not sorted: %v", report.SlowestRequests)
		}
	}
}

// TestLoadgenStagesNeedsTracing pins the error path: -stages against an
// untraced daemon must fail loudly, not report zeros.
func TestLoadgenStagesNeedsTracing(t *testing.T) {
	_, ts := newTestServer(t, nil)

	_, err := RunLoad(LoadConfig{BaseURL: ts.URL, Mode: "samples", Clients: 1, Requests: 1, Stages: true})
	if err == nil || !strings.Contains(err.Error(), "-trace") {
		t.Fatalf("RunLoad with Stages against untraced daemon: err = %v, want a -trace hint", err)
	}
}
