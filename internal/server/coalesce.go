package server

import (
	"sync"
	"sync/atomic"

	"ctgauss"
)

// coalescer adapts a batch-oriented ctgauss.Pool to per-request sample
// counts.  The pool's native granularity is a 64-sample batch and its
// engine refills width×64 samples per circuit evaluation; the coalescer
// maintains one shared stream cursor with a leftover buffer, so
// concurrent small requests are served consecutive slices of the same
// refill instead of each spending a batch (or worse, a refill) of their
// own.  With W=8 shard refills, 32 concurrent 16-sample requests cost
// one evaluation, not 32.
//
// The cursor mutex only covers leftover handout (a memcpy) plus at most
// one 64-sample refill per acquisition; requests needing whole batches
// draw them from the pool outside the lock, so large concurrent
// requests spread across the pool's shards instead of serializing on
// the cursor.  Absent concurrent requests the draw order is exactly
// leftover → full batches → tail, i.e. the same Pool.NextBatch sequence
// a direct caller would make: sequential responses concatenate to the
// bit-identical stream, which the integration tests pin.
type coalescer struct {
	sigma string
	pool  *ctgauss.Pool
	stats ctgauss.Stats

	mu   sync.Mutex
	buf  []int // one 64-sample batch
	left []int // unconsumed tail of buf, in stream order

	batches atomic.Uint64 // NextBatch calls made against the pool
	samples atomic.Uint64 // samples handed to clients
}

func newCoalescer(sigma string, pool *ctgauss.Pool) *coalescer {
	return &coalescer{sigma: sigma, pool: pool, stats: pool.Stats(), buf: make([]int, 64)}
}

// draw fills out with the next len(out) samples of the shared stream.
func (c *coalescer) draw(out []int) {
	n := 0
	c.mu.Lock()
	if len(c.left) > 0 {
		k := copy(out, c.left)
		c.left = c.left[k:]
		n += k
	}
	full := (len(out) - n) / 64
	c.mu.Unlock()

	// Whole batches never touch the cursor: draw them lock-free so the
	// pool's shards serve concurrent large requests in parallel.
	for i := 0; i < full; i++ {
		c.pool.NextBatch(out[n : n+64])
		n += 64
	}
	if full > 0 {
		c.batches.Add(uint64(full))
	}

	// Sub-batch tail: back under the cursor so the remainder of its
	// refill coalesces with other small requests.
	if n < len(out) {
		c.mu.Lock()
		for n < len(out) {
			if len(c.left) == 0 {
				c.pool.NextBatch(c.buf)
				c.batches.Add(1)
				c.left = c.buf
			}
			k := copy(out[n:], c.left)
			n += k
			c.left = c.left[k:]
		}
		c.mu.Unlock()
	}
	c.samples.Add(uint64(len(out)))
}

// refills reports how many circuit evaluations the pool has run, derived
// exactly from its randomness ledger: every refill consumes
// BitsPerBatch×BatchesPerRefill bits and nothing else draws from the
// shard streams.
func (c *coalescer) refills() uint64 {
	perRefill := uint64(c.stats.BitsPerBatch) * uint64(c.stats.BatchesPerRefill)
	if perRefill == 0 {
		return 0
	}
	return c.pool.BitsUsed() / perRefill
}

func (c *coalescer) sigmaStats() sigmaStats {
	return sigmaStats{
		sigma:            c.sigma,
		batches:          c.batches.Load(),
		refills:          c.refills(),
		samples:          c.samples.Load(),
		batchesPerRefill: c.stats.BatchesPerRefill,
		shards:           c.pool.Size(),
	}
}
