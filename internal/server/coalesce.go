package server

import (
	"context"

	"ctgauss"
)

// coalescer adapts a batch-oriented ctgauss.Pool to per-request sample
// counts.  Since the pool moved onto the unified refill runtime
// (internal/engine), the coalescer no longer keeps a stream cursor or
// leftover buffer of its own: Pool.Take serves any length exactly from
// the engine rings, handing out consecutive zero-copy slices of
// completed refills, so concurrent small requests share refills by
// construction — 32 concurrent 16-sample requests consume 512
// consecutive samples, one 512-lane evaluation's worth, not 32 separate
// batches.  Absent concurrent requests the served stream is exactly the
// Pool.NextBatch sequence a direct caller would draw, which the
// bit-identity integration test pins.
//
// What remains here is the per-σ binding the /metrics scrape reads:
// the σ label, the circuit stats fixed at startup, and the pool whose
// unified engine ledger (batches, refills, prefetch hits) sigmaStats
// snapshots.
type coalescer struct {
	sigma string
	pool  *ctgauss.Pool
	stats ctgauss.Stats
}

func newCoalescer(sigma string, pool *ctgauss.Pool) *coalescer {
	return &coalescer{sigma: sigma, pool: pool, stats: pool.Stats()}
}

// draw fills out with the next len(out) samples of the pool's streams.
// ctx cancels a draw blocked on a slow refill; pool-level failures
// (ErrPoolDegraded, ErrClosed) propagate for the handler to map to a
// response status.
func (c *coalescer) draw(ctx context.Context, out []int) error {
	return c.pool.Take(ctx, out)
}

func (c *coalescer) sigmaStats() sigmaStats {
	es := c.pool.EngineStats()
	return sigmaStats{
		sigma: c.sigma,
		// One "batch" is the pool's native 64-sample granularity; the
		// engine ledger counts samples exactly, so the derived batch
		// counter advances once per 64 consumed — and refills started ×
		// batches-per-refill reconciles with it, as the coalescing test
		// pins.
		batches:          es.SamplesServed / 64,
		refills:          es.RefillsStarted,
		samples:          es.SamplesServed,
		batchesPerRefill: c.stats.BatchesPerRefill,
		shards:           es.Shards,
		prefetch:         es.Prefetch,
		refillsProduced:  es.RefillsProduced,
		prefetchHits:     es.PrefetchHits,
		prefetchMisses:   es.PrefetchMisses,
		producerRestarts: es.ProducerRestarts,
		refillsDiscarded: es.RefillsDiscarded,
		shardsPoisoned:   es.ShardsPoisoned,
		rings:            c.pool.RingStats(),
	}
}
