// Package server implements the HTTP serving layer of ctgaussd: batched
// Gaussian sampling and Falcon sign/verify endpoints over the repo's
// concurrent pools, plus health and metrics surfaces.
//
// The package is the glue between stateless HTTP requests and the
// stateful batch-oriented backends:
//
//   - /v1/samples draws from per-σ ctgauss.Pool instances through a
//     coalescer, so concurrent small requests share circuit refills
//     instead of each spending one (the wide-lane engine produces
//     width×64 samples per evaluation; the coalescer hands them out
//     request by request in stream order).
//   - /v1/falcon/sign and /v1/falcon/verify run on a sharded
//     falcon.SignerPool over the daemon's key.
//   - /healthz reports liveness and configuration; /metrics exports
//     Prometheus-text counters (requests, samples, batches, refills,
//     latency quantiles) that reconcile with cmd/ctgaussload reports.
//
// Every endpoint sits behind a drain gate (Server.Drain stops intake and
// waits for in-flight requests — graceful shutdown) and a per-endpoint
// bounded admission queue (overload returns 429 instead of queueing
// unboundedly).
//
// cmd/ctgaussd wires this package to a net/http server and POSIX
// signals; cmd/ctgaussload drives it and reports throughput (RunLoad).
package server
