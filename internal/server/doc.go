// Package server implements the HTTP serving layer of ctgaussd: batched
// Gaussian sampling and Falcon sign/verify endpoints over the repo's
// concurrent pools, plus health and metrics surfaces.
//
// The package is the glue between stateless HTTP requests and the
// stateful batch-oriented backends:
//
//   - /v1/samples draws from per-σ ctgauss.Pool instances, which run on
//     the unified refill runtime (internal/engine): background producers
//     evaluate circuits ahead of demand and Pool.Take serves each
//     request an exact slice of the refill stream, so concurrent small
//     requests share refills by construction — the coalescers keep no
//     cursor or leftover buffer of their own, only the per-σ ledger the
//     /metrics scrape reads.
//   - /v1/falcon/sign and /v1/falcon/verify run on a sharded
//     falcon.SignerPool over the daemon's key.
//   - /healthz reports liveness and configuration; /metrics exports
//     Prometheus-text counters (requests, samples, batches, refills,
//     prefetch hits/misses, latency quantiles) that reconcile with
//     cmd/ctgaussload reports.
//
// Every endpoint sits behind a drain gate (Server.Drain stops intake and
// waits for in-flight requests — graceful shutdown) and a per-endpoint
// bounded admission queue (overload returns 429 instead of queueing
// unboundedly).  Server.Close drains and then stops the engines'
// producer goroutines — the SIGTERM path in cmd/ctgaussd.
//
// cmd/ctgaussd wires this package to a net/http server and POSIX
// signals; cmd/ctgaussload drives it and reports throughput (RunLoad).
package server
