package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctgauss/internal/faultinject"
	"ctgauss/internal/tier"
)

// tierTestConfig enables the tier controller with an inert ticker: the
// promote threshold is unreachable and the window enormous, so only
// ForcePromote/ForceDemote move keys and the test owns every
// transition.
func tierTestConfig(c *Config) {
	c.FalconKey = nil
	c.FalconN = 0
	c.ArbitraryShards = 2
	c.TierPromoteRPS = 1e12
	c.TierWindow = time.Hour
}

// TestTierTransitionUnderLoad is the tier-transition suite's serving
// pin: concurrent /v1/arbitrary load across repeated forced promotion
// and demotion cycles must see zero failed requests, every response
// served wholly from one declared tier, and no goroutine leaked once
// the server closes.
func TestTierTransitionUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, tierTestConfig)
	if s.Tier() == nil {
		t.Fatal("tier controller not constructed")
	}

	const sigma = 2.5
	const cycles = 5
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var compiledSeen, convolvedSeen atomic.Int64
	errc := make(chan error, 64)
	fail := func(format string, args ...any) {
		select {
		case errc <- fmt.Errorf(format, args...):
		default:
		}
	}

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 64, Sigma: sigma})
				if resp.StatusCode != http.StatusOK {
					fail("status %d: %.120s", resp.StatusCode, body)
					continue
				}
				var ar arbitraryResponse
				if err := json.Unmarshal(body, &ar); err != nil {
					fail("unmarshal: %v", err)
					continue
				}
				if len(ar.Samples) != 64 {
					fail("got %d samples, want 64", len(ar.Samples))
				}
				switch resp.Header.Get("X-Ctgauss-Tier") {
				case "compiled":
					compiledSeen.Add(1)
				case "convolved":
					convolvedSeen.Add(1)
				default:
					fail("missing or unknown %s header %q", tierHeader, resp.Header.Get(tierHeader))
				}
			}
		}()
	}

	for cycle := 0; cycle < cycles; cycle++ {
		if err := s.Tier().ForcePromote(sigma); err != nil {
			t.Fatalf("cycle %d promote: %v", cycle, err)
		}
		time.Sleep(40 * time.Millisecond) // let load land on the compiled tier
		if err := s.Tier().ForceDemote(sigma); err != nil {
			t.Fatalf("cycle %d demote: %v", cycle, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if compiledSeen.Load() == 0 || convolvedSeen.Load() == 0 {
		t.Fatalf("load never straddled the transition: compiled=%d convolved=%d",
			compiledSeen.Load(), convolvedSeen.Load())
	}

	if v := scrapeMetric(t, ts.URL, "ctgaussd_tier_promotions_total"); v != cycles {
		t.Fatalf("promotions metric = %v, want %d", v, cycles)
	}
	if v := scrapeMetric(t, ts.URL, "ctgaussd_tier_demotions_total"); v != cycles {
		t.Fatalf("demotions metric = %v, want %d", v, cycles)
	}
	if v := scrapeMetric(t, ts.URL, `ctgaussd_tier_samples_total{tier="compiled"}`); v != float64(64*compiledSeen.Load()) {
		t.Fatalf("compiled tier ledger = %v, want %d", v, 64*compiledSeen.Load())
	}
	if v := scrapeMetric(t, ts.URL, `ctgaussd_tier_samples_total{tier="convolved"}`); v != float64(64*convolvedSeen.Load()) {
		t.Fatalf("convolved tier ledger = %v, want %d", v, 64*convolvedSeen.Load())
	}
	// The bounded per-σ ledger holds both tiers' traffic for the key.
	total := 64 * (compiledSeen.Load() + convolvedSeen.Load())
	if v := scrapeMetric(t, ts.URL, `ctgaussd_arbitrary_sigma_samples_total{sigma="2.5"}`); v != float64(total) {
		t.Fatalf("per-σ ledger = %v, want %d", v, total)
	}
	if v := scrapeMetric(t, ts.URL, `ctgaussd_tier_state{sigma="2.5"}`); v != 0 {
		t.Fatalf("tier state gauge = %v, want 0 (convolved) after the last demotion", v)
	}

	hr := getHealth(t, ts.URL)
	if hr.Tier == nil || hr.Tier.Promotions != cycles || hr.Tier.Pools != 0 {
		t.Fatalf("healthz tier block: %+v", hr.Tier)
	}

	s.Close()
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive after Close, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTierAutomaticPromotion drives the controller through its own
// ticker over HTTP: sustained free-form σ traffic on /v1/samples
// promotes the key (responses switch to the compiled tier), and
// starving it demotes back.
func TestTierAutomaticPromotion(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.ArbitraryShards = 2
		c.TierPromoteRPS = 1
		c.TierWindow = 200 * time.Millisecond
	})

	// Hammer until a response arrives from the compiled tier.
	deadline := time.Now().Add(30 * time.Second)
	promoted := false
	for !promoted {
		if time.Now().After(deadline) {
			t.Fatalf("never promoted; tier state %v", s.Tier().State(2.5))
		}
		resp, body := postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 64, Sigma: "2.5"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %.120s", resp.StatusCode, body)
		}
		var sr samplesResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Sigma != "2.5" || len(sr.Samples) != 64 {
			t.Fatalf("free-form response shape: sigma=%q len=%d", sr.Sigma, len(sr.Samples))
		}
		promoted = resp.Header.Get(tierHeader) == "compiled"
	}
	hr := getHealth(t, ts.URL)
	if hr.Tier == nil || hr.Tier.PromoteRPS != 1 || hr.Tier.DemoteRPS != 0.25 || hr.Tier.WindowSeconds != 0.2 {
		t.Fatalf("healthz tier config: %+v", hr.Tier)
	}

	// Starve the key: the window flushes and the ticker demotes.
	deadline = time.Now().Add(30 * time.Second)
	for s.Tier().State(2.5) != tier.Convolved {
		if time.Now().After(deadline) {
			t.Fatalf("never demoted; tier state %v", s.Tier().State(2.5))
		}
		time.Sleep(10 * time.Millisecond)
	}
	hr = getHealth(t, ts.URL)
	if hr.Tier.Demotions < 1 || hr.Tier.Pools != 0 {
		t.Fatalf("healthz after demotion: %+v", hr.Tier)
	}
	for _, k := range hr.Tier.Keys {
		if k.Sigma == 2.5 && k.State != "convolved" {
			t.Fatalf("healthz key state %q, want convolved", k.State)
		}
	}
}

// TestChaosTierBuildFailServing pins the degraded-promotion story at
// the HTTP surface: an injected build failure leaves the key on the
// convolved tier with zero client-visible errors, and the next
// promotion attempt succeeds.
func TestChaosTierBuildFailServing(t *testing.T) {
	s, ts := newTestServer(t, tierTestConfig)

	disarm := faultinject.Arm(faultinject.TierBuildFail, faultinject.Fault{
		Shard: faultinject.AnyShard,
		Count: 1,
	})
	defer disarm()

	const sigma = 2.5
	if err := s.Tier().ForcePromote(sigma); err == nil {
		t.Fatal("ForcePromote succeeded through an armed build failure")
	}
	// Clients keep drawing the key from the convolved tier, no error.
	resp, body := postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 32, Sigma: sigma})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draw after failed build: status %d: %.120s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(tierHeader); got != "convolved" {
		t.Fatalf("tier header %q after failed build, want convolved", got)
	}
	if v := scrapeMetric(t, ts.URL, "ctgaussd_tier_builds_failed_total"); v != 1 {
		t.Fatalf("builds failed metric = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts.URL, "ctgaussd_tier_promotions_total"); v != 0 {
		t.Fatalf("promotions metric = %v, want 0", v)
	}

	// The fault auto-disarmed (Count=1): promotion is deferred, not
	// wedged — the retry installs the pool and the key serves compiled.
	if err := s.Tier().ForcePromote(sigma); err != nil {
		t.Fatalf("retry promote: %v", err)
	}
	resp, body = postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 32, Sigma: sigma})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draw after retry: status %d: %.120s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(tierHeader); got != "compiled" {
		t.Fatalf("tier header %q after successful retry, want compiled", got)
	}
}

// TestTierDisabledByDefault: without -tier-promote-rps the controller,
// its metrics and its healthz block are all absent, and free-form
// responses still declare their (only) tier.
func TestTierDisabledByDefault(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.ArbitraryShards = 2
	})
	if s.Tier() != nil {
		t.Fatal("tier controller constructed without TierPromoteRPS")
	}
	resp, _ := postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 8, Sigma: 2.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(tierHeader); got != "convolved" {
		t.Fatalf("tier header %q, want convolved", got)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	scrape, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(scrape), "ctgaussd_tier_") {
		t.Fatal("tier series present with tiering disabled")
	}
	if hr := getHealth(t, ts.URL); hr.Tier != nil {
		t.Fatalf("healthz tier block present with tiering disabled: %+v", hr.Tier)
	}
}
