package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ctgauss/internal/faultinject"
)

// waitMetric polls /metrics until the series reaches at least want (the
// chaos faults fire on producer goroutines, so their counters land
// asynchronously).
func waitMetric(t *testing.T, baseURL, series string, want float64) float64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := scrapeMetric(t, baseURL, series); v >= want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("series %s never reached %v", series, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosServerSurvivesProducerPanic is the integration half of the
// tentpole: with one pool shard's refills panicking (twice, injected),
// the daemon keeps serving every request from the healthy shard, the
// producer restarts show up in /metrics, and /healthz lists the
// per-shard damage — no crash, no failed request.
func TestChaosServerSurvivesProducerPanic(t *testing.T) {
	defer faultinject.Arm(faultinject.EngineFillPanic, faultinject.Fault{Shard: 0, Count: 2})()
	_, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.DisableArbitrary = true
		c.PoolShards = 2
	})

	for i := 0; i < 20; i++ {
		drawSamples(t, ts.URL, 32)
	}
	waitMetric(t, ts.URL, `ctgaussd_engine_producer_restarts_total{sigma="2"}`, 2)
	if v := scrapeMetric(t, ts.URL, `ctgaussd_engine_refills_discarded_total{sigma="2"}`); v != 2 {
		t.Fatalf("discarded refills metric = %v, want 2", v)
	}
	// Both injected panics are spent, so the shard must be healthy again
	// and the poisoned gauge back to zero.
	deadline := time.Now().Add(10 * time.Second)
	for scrapeMetric(t, ts.URL, `ctgaussd_engine_shards_poisoned{sigma="2"}`) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("poisoned gauge never cleared after recovery")
		}
		time.Sleep(5 * time.Millisecond)
	}

	hr := getHealth(t, ts.URL)
	if hr.Status != "ok" {
		t.Fatalf("healthz status after recovery = %q, want ok", hr.Status)
	}
	if len(hr.Pools) != 1 || hr.Pools[0].Sigma != "2" || len(hr.Pools[0].Shards) != 2 {
		t.Fatalf("healthz pools block: %+v", hr.Pools)
	}
	if sh := hr.Pools[0].Shards[0]; sh.Restarts != 2 || sh.DiscardedRefills != 2 || sh.Dead {
		t.Fatalf("healthz shard 0 after recovery: %+v", sh)
	}
	if sh := hr.Pools[0].Shards[1]; sh.Restarts != 0 || sh.Poisoned {
		t.Fatalf("healthz healthy shard contaminated: %+v", sh)
	}
	// Traffic still flows after the recovery.
	drawSamples(t, ts.URL, 64)
}

// TestChaosArbitraryShedsFirst pins the degraded-mode policy: with one
// base-engine shard persistently failing, the free-form layer sheds its
// requests immediately (503 + Retry-After) while the precompiled pools
// keep serving via failover, and /healthz reports "degraded".
func TestChaosArbitraryShedsFirst(t *testing.T) {
	defer faultinject.Arm(faultinject.EngineFillPanic, faultinject.Fault{Shard: 0})()
	_, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.PoolShards = 2
		c.ArbitraryShards = 1
	})

	// The arbitrary layer's single shard poisons on its first (warmup)
	// refill; wait for the gauge so the shed check below cannot race it.
	waitMetric(t, ts.URL, `ctgaussd_engine_shards_poisoned{sigma="arbitrary"}`, 1)

	resp, body := postJSONT(t, ts.URL+"/v1/arbitrary", arbitraryRequest{Count: 8, Sigma: 3.3})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /v1/arbitrary: status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != retryAfterSeconds {
		t.Fatalf("degraded 503 missing Retry-After (got %q)", resp.Header.Get("Retry-After"))
	}
	// Free-form σ on /v1/samples rides the same layer and sheds too.
	resp, _ = postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 8, Sigma: "3.3"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded free-form σ: status %d, want 503", resp.StatusCode)
	}
	// The precompiled pool still serves: its healthy shard absorbs the load.
	drawSamples(t, ts.URL, 64)

	hr := getHealth(t, ts.URL)
	if hr.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", hr.Status)
	}
}

// TestChaosRequestTimeout pins Config.RequestTimeout: a request stuck
// past the deadline fails with 503 + Retry-After and lands in the
// cancelled counter, not the error-free path.
func TestChaosRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.DisableArbitrary = true
		c.RequestTimeout = 10 * time.Millisecond
	})
	s.testHook = func(string) { time.Sleep(50 * time.Millisecond) }

	resp, body := postJSONT(t, ts.URL+"/v1/samples", samplesRequest{Count: 8})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request: status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != retryAfterSeconds {
		t.Fatal("timed-out 503 missing Retry-After")
	}
	if v := scrapeMetric(t, ts.URL, `ctgaussd_requests_cancelled_total{endpoint="samples"}`); v != 1 {
		t.Fatalf("cancelled counter = %v, want 1", v)
	}
}

// TestChaosClientGoneBeforeAdmission pins the pre-admission
// cancellation check: a request whose context is already dead takes no
// queue slot, draws nothing, and counts only as cancelled.
func TestChaosClientGoneBeforeAdmission(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.DisableArbitrary = true
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/samples", strings.NewReader(`{"count":4}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	if v := scrapeMetric(t, ts.URL, `ctgaussd_requests_cancelled_total{endpoint="samples"}`); v != 1 {
		t.Fatalf("cancelled counter = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts.URL, `ctgaussd_requests_total{endpoint="samples"}`); v != 0 {
		t.Fatalf("dead request was admitted: requests_total = %v", v)
	}
	if v := scrapeMetric(t, ts.URL, `ctgaussd_errors_total{endpoint="samples"}`); v != 0 {
		t.Fatalf("client departure counted as a server error: %v", v)
	}
}

// TestChaosLoadgenRetriesRideOutBackpressure pins the load generator's
// retry loop against a deliberately tiny admission queue: rejected
// attempts are retried with backoff, retries are reported, and none of
// it counts as an error.
func TestChaosLoadgenRetriesRideOutBackpressure(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.FalconKey = nil
		c.FalconN = 0
		c.DisableArbitrary = true
		c.QueueDepth = 1
	})
	s.testHook = func(string) { time.Sleep(time.Millisecond) }
	report, err := RunLoad(LoadConfig{
		BaseURL:      ts.URL,
		Mode:         "samples",
		Clients:      6,
		Requests:     3,
		Count:        8,
		Retries:      64,
		RetryBackoff: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("retried run still reported errors: %+v", report)
	}
	if report.Rejected == 0 {
		t.Skip("no contention on this run; nothing to assert")
	}
	if report.Retries == 0 {
		t.Fatalf("rejections recorded (%d) but no retries", report.Rejected)
	}
	// Every client loop ultimately succeeded, so the full sample count
	// must have been served despite the shedding.
	if want := 6 * 3 * 8; report.Samples != want {
		t.Fatalf("samples after retries = %d, want %d", report.Samples, want)
	}
	// Reconciliation: each attempt is one HTTP request; the admitted ones
	// are attempts minus per-attempt rejections.
	adm := scrapeMetric(t, ts.URL, `ctgaussd_requests_total{endpoint="samples"}`)
	if attempts := report.Requests + report.Retries; adm != float64(attempts-report.Rejected) {
		t.Fatalf("reconciliation: admitted=%v, attempts=%d rejected=%d", adm, attempts, report.Rejected)
	}
}
