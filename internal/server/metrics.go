package server

import (
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"ctgauss"
	"ctgauss/internal/bitslice/dispatch"
	"ctgauss/internal/obs"
	"ctgauss/internal/tier"
)

// latBuckets is the number of power-of-two latency histogram buckets:
// bucket i counts observations with ceil(log2(ns)) == i, so the range
// [1ns, ~1.2min] is covered with ~2× resolution and no allocation on the
// hot path.
const latBuckets = 37

// histogram is a lock-free log2-bucketed latency histogram.  Quantiles
// are read from bucket boundaries, so they carry at most a factor-2
// overestimate — the right precision/cost point for serving telemetry
// (exact per-request latencies live in the load generator's report).
type histogram struct {
	buckets [latBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	idx := bits.Len64(ns - 1) // ceil(log2); exact powers land on their own bucket
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// quantile returns the q-quantile in seconds (upper bucket bound), or 0
// with no observations.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i < latBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return float64(uint64(1)<<uint(i)) / 1e9
		}
	}
	return float64(uint64(1)<<uint(latBuckets-1)) / 1e9
}

// endpointMetrics counts one endpoint's traffic.
type endpointMetrics struct {
	name      string
	requests  atomic.Uint64 // requests admitted past the drain gate AND the queue
	errors    atomic.Uint64 // responses with status ≥ 400 (excluding 429 and 499)
	rejected  atomic.Uint64 // 429 backpressure rejections
	refused   atomic.Uint64 // 503 drain-gate refusals
	cancelled atomic.Uint64 // requests abandoned by cancellation or deadline
	inflight  atomic.Int64
	lat       histogram
}

// metrics is the server-wide counter set exported at /metrics.
type metrics struct {
	endpoints []*endpointMetrics // fixed at construction; scrape iterates
	samples   atomic.Uint64      // Gaussian samples served
	signs     atomic.Uint64      // signatures produced
	verifies  atomic.Uint64      // verification requests evaluated

	// Per-tier ledgers of the free-form serving path: every /v1/arbitrary
	// and free-form /v1/samples sample lands in exactly one of the two.
	// The nanos ledgers hold the time spent inside the sampler call
	// itself (pool.Take or arb.NextBatch) — transport excluded — so
	// Δseconds/Δsamples is the serving-path sampling cost a promotion
	// changes, comparable across tiers and with BENCH_PR4's numbers.
	tierCompiledSamples  atomic.Uint64
	tierConvolvedSamples atomic.Uint64
	tierCompiledNanos    atomic.Uint64
	tierConvolvedNanos   atomic.Uint64
}

func newMetrics(endpointNames []string) *metrics {
	m := &metrics{}
	for _, n := range endpointNames {
		m.endpoints = append(m.endpoints, &endpointMetrics{name: n})
	}
	return m
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	for _, e := range m.endpoints {
		if e.name == name {
			return e
		}
	}
	return nil
}

// index returns the endpoint's position in the registration order —
// the same order the obs.Observer was built with.
func (m *metrics) index(name string) int {
	for i, e := range m.endpoints {
		if e.name == name {
			return i
		}
	}
	return -1
}

// sigmaStats is the per-σ pool telemetry joined into the scrape by the
// server, read from the pool engine's unified ledger by the coalescers.
type sigmaStats struct {
	sigma            string
	batches          uint64
	refills          uint64 // refills whose consumption began (sync-equivalent evaluations)
	samples          uint64
	batchesPerRefill int
	shards           int
	prefetch         int    // configured lookahead depth (0 = synchronous)
	refillsProduced  uint64 // fills completed, including unconsumed lookahead
	prefetchHits     uint64
	prefetchMisses   uint64
	producerRestarts uint64 // refill panics recovered (producer restarted)
	refillsDiscarded uint64 // refills abandoned by a panicking fill
	shardsPoisoned   int    // shards currently poisoned
	rings            []ctgauss.RingStat
}

// tierScrape is the tier controller's state joined into the scrape by
// the server (nil when tiering is disabled).
type tierScrape struct {
	stats tier.Stats
	keys  []tier.KeyInfo // sorted by σ
}

// scrapeData bundles everything one /metrics render needs beyond the
// counter set itself.
type scrapeData struct {
	sigmas   []sigmaStats
	arb      *arbStats   // nil when the arbitrary layer is disabled
	tier     *tierScrape // nil when tiering is disabled
	draining bool
	uptime   time.Duration
	stages   []obs.StageScrape // nil when tracing is disabled
}

// promFamily collects one metric family's samples before emission.
// Rows keep insertion order (callers insert from sorted inputs);
// families themselves are emitted sorted by name.
type promFamily struct {
	name, kind, help string
	rows             []promRow
}

// promRow is one sample line; name differs from the family name only
// for histogram _bucket/_sum/_count samples.
type promRow struct {
	name   string
	labels string // rendered label block including braces, or ""
	value  string
}

func (f *promFamily) row(labels, value string) {
	f.rows = append(f.rows, promRow{name: f.name, labels: labels, value: value})
}

func (f *promFamily) rowf(labels, format string, args ...any) {
	f.row(labels, fmt.Sprintf(format, args...))
}

// suffixRow adds a histogram sub-sample (family name + suffix).
func (f *promFamily) suffixRow(suffix, labels, value string) {
	f.rows = append(f.rows, promRow{name: f.name + suffix, labels: labels, value: value})
}

// promSet accumulates families and writes them sorted by name — the
// deterministic-scrape guarantee: two scrapes of the same server state
// render byte-identically, and family order never depends on code
// order or map iteration.
type promSet struct {
	byName map[string]*promFamily
}

func newPromSet() *promSet { return &promSet{byName: make(map[string]*promFamily)} }

// family registers (or revisits) a family.  Revisiting with a
// different kind is a programming error caught loudly: duplicate
// # TYPE lines are exactly what the metrics lint rejects.
func (ps *promSet) family(name, kind, help string) *promFamily {
	if f, ok := ps.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: family %s redeclared as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &promFamily{name: name, kind: kind, help: help}
	ps.byName[name] = f
	return f
}

func (ps *promSet) writeTo(w io.Writer) {
	names := make([]string, 0, len(ps.byName))
	for n := range ps.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := ps.byName[n]
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, r := range f.rows {
			fmt.Fprintf(w, "%s%s %s\n", r.name, r.labels, r.value)
		}
	}
}

// stageBucketIdx selects which log2 bucket boundaries the stage
// histograms expose as Prometheus le bounds: every other power of two
// from 256ns (2^8) to ~17s (2^34).  The in-memory resolution stays
// full; adjacent buckets merge into the coarser cumulative counts.
var stageBucketIdx = []int{8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34}

// writePrometheus renders the whole counter set in Prometheus text
// exposition format, families sorted by name.
func (m *metrics) writePrometheus(w io.Writer, d scrapeData) {
	ps := newPromSet()
	epLabel := func(name string) string { return fmt.Sprintf("{endpoint=%q}", name) }

	f := ps.family("ctgaussd_requests_total", "counter", "Requests admitted per endpoint (past the drain gate and the admission queue; 429 rejections are counted separately).")
	for _, e := range m.endpoints {
		f.rowf(epLabel(e.name), "%d", e.requests.Load())
	}
	f = ps.family("ctgaussd_errors_total", "counter", "Responses with status >= 400, excluding backpressure rejections.")
	for _, e := range m.endpoints {
		f.rowf(epLabel(e.name), "%d", e.errors.Load())
	}
	f = ps.family("ctgaussd_rejected_total", "counter", "Requests rejected with 429 (admission queue full).")
	for _, e := range m.endpoints {
		f.rowf(epLabel(e.name), "%d", e.rejected.Load())
	}
	f = ps.family("ctgaussd_drain_refused_total", "counter", "Requests refused with 503 at the drain gate during shutdown.")
	for _, e := range m.endpoints {
		f.rowf(epLabel(e.name), "%d", e.refused.Load())
	}
	f = ps.family("ctgaussd_requests_cancelled_total", "counter", "Requests abandoned by client cancellation or the per-request deadline.")
	for _, e := range m.endpoints {
		f.rowf(epLabel(e.name), "%d", e.cancelled.Load())
	}
	f = ps.family("ctgaussd_inflight", "gauge", "Requests currently being served per endpoint.")
	for _, e := range m.endpoints {
		f.rowf(epLabel(e.name), "%d", e.inflight.Load())
	}

	f = ps.family("ctgaussd_latency_seconds", "gauge", "Request latency quantiles per endpoint (log2-bucket upper bounds).")
	for _, e := range m.endpoints {
		for _, q := range []float64{0.5, 0.99} {
			f.rowf(fmt.Sprintf("{endpoint=%q,quantile=%q}", e.name, fmt.Sprintf("%g", q)), "%g", e.lat.quantile(q))
		}
		count := e.lat.count.Load()
		if count > 0 {
			mean := float64(e.lat.sumNs.Load()) / float64(count) / 1e9
			f.rowf(fmt.Sprintf("{endpoint=%q,quantile=\"mean\"}", e.name), "%g", mean)
		}
	}

	ps.family("ctgaussd_samples_served_total", "counter", "Gaussian samples returned to clients.").rowf("", "%d", m.samples.Load())
	ps.family("ctgaussd_signatures_total", "counter", "Falcon signatures produced.").rowf("", "%d", m.signs.Load())
	ps.family("ctgaussd_verifies_total", "counter", "Falcon verifications evaluated.").rowf("", "%d", m.verifies.Load())

	sigmas := d.sigmas
	sort.Slice(sigmas, func(i, j int) bool { return sigmas[i].sigma < sigmas[j].sigma })
	sigLabel := func(sigma string) string { return fmt.Sprintf("{sigma=%q}", sigma) }
	f = ps.family("ctgaussd_batches_total", "counter", "64-sample batches consumed from the pool's engine per sigma (served samples / 64).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.batches)
	}
	f = ps.family("ctgaussd_refills_total", "counter", "Circuit evaluations whose output entered the served stream per sigma (prefetch lookahead counts on first consumption; see _refills_produced_total).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.refills)
	}
	f = ps.family("ctgaussd_pool_samples_total", "counter", "Samples consumed from the pool's engine per sigma (exactly what clients were served).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.samples)
	}
	f = ps.family("ctgaussd_batches_per_refill", "gauge", "Evaluation width of the pool's engine (batches per refill).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.batchesPerRefill)
	}
	f = ps.family("ctgaussd_pool_shards", "gauge", "Shard count of the per-sigma sampling pool.")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.shards)
	}
	f = ps.family("ctgaussd_prefetch_depth", "gauge", "Configured refill lookahead per shard (0 = synchronous refill).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.prefetch)
	}
	f = ps.family("ctgaussd_refills_produced_total", "counter", "Circuit evaluations completed by the refill producers, including lookahead not yet consumed (>= ctgaussd_refills_total).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.refillsProduced)
	}
	f = ps.family("ctgaussd_prefetch_hits_total", "counter", "Draws served without waiting for a refill (the engine ring held data).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.prefetchHits)
	}
	f = ps.family("ctgaussd_prefetch_misses_total", "counter", "Draws that waited on a producer (async) or evaluated inline (sync).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.prefetchMisses)
	}

	// Fault-isolation telemetry: the arbitrary layer's base engines are
	// reported under sigma="arbitrary" so one series covers every engine
	// in the process.
	f = ps.family("ctgaussd_engine_producer_restarts_total", "counter", "Refill panics recovered per pool (the producer restarted after backoff).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.producerRestarts)
	}
	if d.arb != nil {
		f.rowf(sigLabel("arbitrary"), "%d", d.arb.producerRestarts)
	}
	f = ps.family("ctgaussd_engine_refills_discarded_total", "counter", "Refills abandoned by a panicking fill per pool (never served).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.refillsDiscarded)
	}
	if d.arb != nil {
		f.rowf(sigLabel("arbitrary"), "%d", d.arb.refillsDiscarded)
	}
	f = ps.family("ctgaussd_engine_shards_poisoned", "gauge", "Shards currently poisoned per pool (producer restarting or dead; draws fail over meanwhile).")
	for _, s := range sigmas {
		f.rowf(sigLabel(s.sigma), "%d", s.shardsPoisoned)
	}
	if d.arb != nil {
		f.rowf(sigLabel("arbitrary"), "%d", d.arb.shardsPoisoned)
	}

	// Ring occupancy: how far ahead each shard's producer is right now.
	// The arbitrary layer's base engines merge (sum) across members
	// under sigma="arbitrary".
	fb := ps.family("ctgaussd_engine_ring_buffered", "gauge", "Completed refills buffered ahead of demand per pool shard (0 under sustained load = consumers at refill speed).")
	ft := ps.family("ctgaussd_engine_ring_target", "gauge", "The refill producer's current adaptive lookahead target per pool shard.")
	ringRows := func(label string, rings []ctgauss.RingStat) {
		for i, r := range rings {
			l := fmt.Sprintf("{sigma=%q,shard=\"%d\"}", label, i)
			fb.rowf(l, "%d", r.Buffered)
			ft.rowf(l, "%d", r.Target)
		}
	}
	for _, s := range sigmas {
		ringRows(s.sigma, s.rings)
	}
	if d.arb != nil {
		ringRows("arbitrary", d.arb.rings)
	}

	if arb := d.arb; arb != nil {
		ps.family("ctgaussd_arbitrary_samples_total", "counter", "Samples served by the free-form (sigma, mu) convolution layer.").rowf("", "%d", arb.samples)
		ps.family("ctgaussd_arbitrary_trials_total", "counter", "Combine/round trials evaluated by the convolution layer.").rowf("", "%d", arb.trials)
		ps.family("ctgaussd_arbitrary_accepted_total", "counter", "Trials accepted by the randomized-rounding step.").rowf("", "%d", arb.accepted)
		ps.family("ctgaussd_arbitrary_sigmas", "gauge", "Distinct sigma values served since startup (capped tracking; see _sigmas_overflow).").rowf("", "%d", arb.distinctSigmas)
		overflow := 0
		if arb.sigmaOverflow {
			overflow = 1
		}
		ps.family("ctgaussd_arbitrary_sigmas_overflow", "gauge", "Whether distinct-sigma tracking hit its cap (the gauge is then a lower bound).").rowf("", "%d", overflow)
		ps.family("ctgaussd_arbitrary_plans", "gauge", "Distinct convolution plans compiled (one per requested sigma).").rowf("", "%d", arb.plans)
		ps.family("ctgaussd_arbitrary_shards", "gauge", "Shard count of the arbitrary sampler.").rowf("", "%d", arb.shards)
		f = ps.family("ctgaussd_arbitrary_sigma_samples_total", "counter", "Samples served per free-form sigma, both tiers (capped tracking; see _sigmas_overflow).")
		for _, ss := range arb.sigmaSamples {
			f.rowf(sigLabel(tier.SigmaString(ss.sigma)), "%d", ss.samples)
		}
	}

	if ts := d.tier; ts != nil {
		f = ps.family("ctgaussd_tier_samples_total", "counter", "Free-form samples served per tier (compiled = promoted pool, convolved = convolution fallback).")
		f.rowf("{tier=\"compiled\"}", "%d", m.tierCompiledSamples.Load())
		f.rowf("{tier=\"convolved\"}", "%d", m.tierConvolvedSamples.Load())
		f = ps.family("ctgaussd_tier_sample_seconds_total", "counter", "Time spent inside the sampler per tier (pool.Take / convolution draw; transport excluded — divide by _tier_samples_total for ns-per-sample).")
		f.rowf("{tier=\"compiled\"}", "%g", float64(m.tierCompiledNanos.Load())/1e9)
		f.rowf("{tier=\"convolved\"}", "%g", float64(m.tierConvolvedNanos.Load())/1e9)
		ps.family("ctgaussd_tier_promotions_total", "counter", "Hot keys promoted onto compiled pools (build completed and installed).").rowf("", "%d", ts.stats.Promotions)
		ps.family("ctgaussd_tier_demotions_total", "counter", "Compiled keys demoted back to the convolved tier (drain started).").rowf("", "%d", ts.stats.Demotions)
		ps.family("ctgaussd_tier_builds_failed_total", "counter", "Promotion builds that errored or panicked (key stayed convolved).").rowf("", "%d", ts.stats.BuildsFailed)
		ps.family("ctgaussd_tier_builds_deferred_total", "counter", "Promotion ticks skipped while the base set was degraded.").rowf("", "%d", ts.stats.BuildsDeferred)
		ps.family("ctgaussd_tier_pools", "gauge", "Compiled pools currently held by the tier controller (building + compiled + draining).").rowf("", "%d", ts.stats.Pools)
		ps.family("ctgaussd_tier_pools_max", "gauge", "Configured compiled-pool budget.").rowf("", "%d", ts.stats.MaxPools)
		f = ps.family("ctgaussd_tier_state", "gauge", "Tier state per tracked sigma (0=convolved, 1=building, 2=compiled, 3=draining).")
		for _, k := range ts.keys {
			f.rowf(sigLabel(tier.SigmaString(k.Sigma)), "%d", int32(k.State))
		}
	}

	// Per-stage request-time histograms (tracing enabled only): where a
	// request's wall time went, per endpoint.  Partition stages
	// (queue_wait, decode, route, coalesce, encode, other) sum to
	// total; engine_wait/eval/combine are sub-stages of coalesce.
	if len(d.stages) > 0 {
		f = ps.family("ctgaussd_stage_seconds", "histogram", "Per-stage request time by endpoint (partition stages sum to stage=\"total\"; engine_wait/eval/combine nest inside coalesce).")
		for _, sc := range d.stages {
			var cum uint64
			next := 0
			for _, bi := range stageBucketIdx {
				for ; next <= bi; next++ {
					cum += sc.Hist.Buckets[next]
				}
				le := float64(obs.BucketUpperNs(bi)) / 1e9
				f.suffixRow("_bucket",
					fmt.Sprintf("{stage=%q,endpoint=%q,le=%q}", sc.Stage, sc.Endpoint, fmt.Sprintf("%g", le)),
					fmt.Sprintf("%d", cum))
			}
			f.suffixRow("_bucket",
				fmt.Sprintf("{stage=%q,endpoint=%q,le=\"+Inf\"}", sc.Stage, sc.Endpoint),
				fmt.Sprintf("%d", sc.Hist.Count))
			f.suffixRow("_sum",
				fmt.Sprintf("{stage=%q,endpoint=%q}", sc.Stage, sc.Endpoint),
				fmt.Sprintf("%g", float64(sc.Hist.SumNs)/1e9))
			f.suffixRow("_count",
				fmt.Sprintf("{stage=%q,endpoint=%q}", sc.Stage, sc.Endpoint),
				fmt.Sprintf("%d", sc.Hist.Count))
		}
	}

	// Process-level telemetry: build identity, uptime, Go runtime.
	b := obs.Build()
	ps.family("ctgaussd_build_info", "gauge", "Build identity as labels (value is always 1).").
		rowf(fmt.Sprintf("{version=%q,go_version=%q,simd=%q}", b.Version, b.GoVersion, dispatch.Active().String()), "1")
	ps.family("ctgaussd_uptime_seconds", "gauge", "Seconds since the server started.").rowf("", "%g", d.uptime.Seconds())
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ps.family("ctgaussd_go_goroutines", "gauge", "Live goroutines in the process.").rowf("", "%d", runtime.NumGoroutine())
	ps.family("ctgaussd_go_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.").rowf("", "%d", ms.HeapAlloc)
	ps.family("ctgaussd_go_heap_objects", "gauge", "Number of allocated heap objects.").rowf("", "%d", ms.HeapObjects)
	ps.family("ctgaussd_go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.").rowf("", "%g", float64(ms.PauseTotalNs)/1e9)
	ps.family("ctgaussd_go_gc_cycles_total", "counter", "Completed GC cycles.").rowf("", "%d", ms.NumGC)

	dr := 0
	if d.draining {
		dr = 1
	}
	ps.family("ctgaussd_draining", "gauge", "Whether the server is draining (1) or accepting requests (0).").rowf("", "%d", dr)

	ps.writeTo(w)
}
