package server

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"ctgauss/internal/tier"
)

// latBuckets is the number of power-of-two latency histogram buckets:
// bucket i counts observations with ceil(log2(ns)) == i, so the range
// [1ns, ~1.2min] is covered with ~2× resolution and no allocation on the
// hot path.
const latBuckets = 37

// histogram is a lock-free log2-bucketed latency histogram.  Quantiles
// are read from bucket boundaries, so they carry at most a factor-2
// overestimate — the right precision/cost point for serving telemetry
// (exact per-request latencies live in the load generator's report).
type histogram struct {
	buckets [latBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	idx := bits.Len64(ns - 1) // ceil(log2); exact powers land on their own bucket
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// quantile returns the q-quantile in seconds (upper bucket bound), or 0
// with no observations.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i < latBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return float64(uint64(1)<<uint(i)) / 1e9
		}
	}
	return float64(uint64(1)<<uint(latBuckets-1)) / 1e9
}

// endpointMetrics counts one endpoint's traffic.
type endpointMetrics struct {
	name      string
	requests  atomic.Uint64 // requests admitted past the drain gate AND the queue
	errors    atomic.Uint64 // responses with status ≥ 400 (excluding 429 and 499)
	rejected  atomic.Uint64 // 429 backpressure rejections
	refused   atomic.Uint64 // 503 drain-gate refusals
	cancelled atomic.Uint64 // requests abandoned by cancellation or deadline
	inflight  atomic.Int64
	lat       histogram
}

// metrics is the server-wide counter set exported at /metrics.
type metrics struct {
	endpoints []*endpointMetrics // fixed at construction; scrape iterates
	samples   atomic.Uint64      // Gaussian samples served
	signs     atomic.Uint64      // signatures produced
	verifies  atomic.Uint64      // verification requests evaluated

	// Per-tier ledgers of the free-form serving path: every /v1/arbitrary
	// and free-form /v1/samples sample lands in exactly one of the two.
	// The nanos ledgers hold the time spent inside the sampler call
	// itself (pool.Take or arb.NextBatch) — transport excluded — so
	// Δseconds/Δsamples is the serving-path sampling cost a promotion
	// changes, comparable across tiers and with BENCH_PR4's numbers.
	tierCompiledSamples  atomic.Uint64
	tierConvolvedSamples atomic.Uint64
	tierCompiledNanos    atomic.Uint64
	tierConvolvedNanos   atomic.Uint64
}

func newMetrics(endpointNames []string) *metrics {
	m := &metrics{}
	for _, n := range endpointNames {
		m.endpoints = append(m.endpoints, &endpointMetrics{name: n})
	}
	return m
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	for _, e := range m.endpoints {
		if e.name == name {
			return e
		}
	}
	return nil
}

// sigmaStats is the per-σ pool telemetry joined into the scrape by the
// server, read from the pool engine's unified ledger by the coalescers.
type sigmaStats struct {
	sigma            string
	batches          uint64
	refills          uint64 // refills whose consumption began (sync-equivalent evaluations)
	samples          uint64
	batchesPerRefill int
	shards           int
	prefetch         int    // configured lookahead depth (0 = synchronous)
	refillsProduced  uint64 // fills completed, including unconsumed lookahead
	prefetchHits     uint64
	prefetchMisses   uint64
	producerRestarts uint64 // refill panics recovered (producer restarted)
	refillsDiscarded uint64 // refills abandoned by a panicking fill
	shardsPoisoned   int    // shards currently poisoned
}

// tierScrape is the tier controller's state joined into the scrape by
// the server (nil when tiering is disabled).
type tierScrape struct {
	stats tier.Stats
	keys  []tier.KeyInfo // sorted by σ
}

// writePrometheus renders the whole counter set in Prometheus text
// exposition format.  arb is nil when the arbitrary layer is disabled;
// ts is nil when the tier controller is.
func (m *metrics) writePrometheus(w io.Writer, sigmas []sigmaStats, arb *arbStats, ts *tierScrape, draining bool) {
	fmt.Fprintln(w, "# HELP ctgaussd_requests_total Requests admitted per endpoint (past the drain gate and the admission queue; 429 rejections are counted separately).")
	fmt.Fprintln(w, "# TYPE ctgaussd_requests_total counter")
	for _, e := range m.endpoints {
		fmt.Fprintf(w, "ctgaussd_requests_total{endpoint=%q} %d\n", e.name, e.requests.Load())
	}
	fmt.Fprintln(w, "# HELP ctgaussd_errors_total Responses with status >= 400, excluding backpressure rejections.")
	fmt.Fprintln(w, "# TYPE ctgaussd_errors_total counter")
	for _, e := range m.endpoints {
		fmt.Fprintf(w, "ctgaussd_errors_total{endpoint=%q} %d\n", e.name, e.errors.Load())
	}
	fmt.Fprintln(w, "# HELP ctgaussd_rejected_total Requests rejected with 429 (admission queue full).")
	fmt.Fprintln(w, "# TYPE ctgaussd_rejected_total counter")
	for _, e := range m.endpoints {
		fmt.Fprintf(w, "ctgaussd_rejected_total{endpoint=%q} %d\n", e.name, e.rejected.Load())
	}
	fmt.Fprintln(w, "# HELP ctgaussd_drain_refused_total Requests refused with 503 at the drain gate during shutdown.")
	fmt.Fprintln(w, "# TYPE ctgaussd_drain_refused_total counter")
	for _, e := range m.endpoints {
		fmt.Fprintf(w, "ctgaussd_drain_refused_total{endpoint=%q} %d\n", e.name, e.refused.Load())
	}
	fmt.Fprintln(w, "# HELP ctgaussd_requests_cancelled_total Requests abandoned by client cancellation or the per-request deadline.")
	fmt.Fprintln(w, "# TYPE ctgaussd_requests_cancelled_total counter")
	for _, e := range m.endpoints {
		fmt.Fprintf(w, "ctgaussd_requests_cancelled_total{endpoint=%q} %d\n", e.name, e.cancelled.Load())
	}
	fmt.Fprintln(w, "# HELP ctgaussd_inflight Requests currently being served per endpoint.")
	fmt.Fprintln(w, "# TYPE ctgaussd_inflight gauge")
	for _, e := range m.endpoints {
		fmt.Fprintf(w, "ctgaussd_inflight{endpoint=%q} %d\n", e.name, e.inflight.Load())
	}

	fmt.Fprintln(w, "# HELP ctgaussd_latency_seconds Request latency quantiles per endpoint (log2-bucket upper bounds).")
	fmt.Fprintln(w, "# TYPE ctgaussd_latency_seconds gauge")
	for _, e := range m.endpoints {
		for _, q := range []float64{0.5, 0.99} {
			fmt.Fprintf(w, "ctgaussd_latency_seconds{endpoint=%q,quantile=%q} %g\n",
				e.name, fmt.Sprintf("%g", q), e.lat.quantile(q))
		}
		count := e.lat.count.Load()
		if count > 0 {
			mean := float64(e.lat.sumNs.Load()) / float64(count) / 1e9
			fmt.Fprintf(w, "ctgaussd_latency_seconds{endpoint=%q,quantile=\"mean\"} %g\n", e.name, mean)
		}
	}

	fmt.Fprintln(w, "# HELP ctgaussd_samples_served_total Gaussian samples returned to clients.")
	fmt.Fprintln(w, "# TYPE ctgaussd_samples_served_total counter")
	fmt.Fprintf(w, "ctgaussd_samples_served_total %d\n", m.samples.Load())
	fmt.Fprintln(w, "# HELP ctgaussd_signatures_total Falcon signatures produced.")
	fmt.Fprintln(w, "# TYPE ctgaussd_signatures_total counter")
	fmt.Fprintf(w, "ctgaussd_signatures_total %d\n", m.signs.Load())
	fmt.Fprintln(w, "# HELP ctgaussd_verifies_total Falcon verifications evaluated.")
	fmt.Fprintln(w, "# TYPE ctgaussd_verifies_total counter")
	fmt.Fprintf(w, "ctgaussd_verifies_total %d\n", m.verifies.Load())

	sort.Slice(sigmas, func(i, j int) bool { return sigmas[i].sigma < sigmas[j].sigma })
	fmt.Fprintln(w, "# HELP ctgaussd_batches_total 64-sample batches consumed from the pool's engine per sigma (served samples / 64).")
	fmt.Fprintln(w, "# TYPE ctgaussd_batches_total counter")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_batches_total{sigma=%q} %d\n", s.sigma, s.batches)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_refills_total Circuit evaluations whose output entered the served stream per sigma (prefetch lookahead counts on first consumption; see _refills_produced_total).")
	fmt.Fprintln(w, "# TYPE ctgaussd_refills_total counter")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_refills_total{sigma=%q} %d\n", s.sigma, s.refills)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_pool_samples_total Samples consumed from the pool's engine per sigma (exactly what clients were served).")
	fmt.Fprintln(w, "# TYPE ctgaussd_pool_samples_total counter")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_pool_samples_total{sigma=%q} %d\n", s.sigma, s.samples)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_batches_per_refill Evaluation width of the pool's engine (batches per refill).")
	fmt.Fprintln(w, "# TYPE ctgaussd_batches_per_refill gauge")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_batches_per_refill{sigma=%q} %d\n", s.sigma, s.batchesPerRefill)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_pool_shards Shard count of the per-sigma sampling pool.")
	fmt.Fprintln(w, "# TYPE ctgaussd_pool_shards gauge")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_pool_shards{sigma=%q} %d\n", s.sigma, s.shards)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_prefetch_depth Configured refill lookahead per shard (0 = synchronous refill).")
	fmt.Fprintln(w, "# TYPE ctgaussd_prefetch_depth gauge")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_prefetch_depth{sigma=%q} %d\n", s.sigma, s.prefetch)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_refills_produced_total Circuit evaluations completed by the refill producers, including lookahead not yet consumed (>= ctgaussd_refills_total).")
	fmt.Fprintln(w, "# TYPE ctgaussd_refills_produced_total counter")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_refills_produced_total{sigma=%q} %d\n", s.sigma, s.refillsProduced)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_prefetch_hits_total Draws served without waiting for a refill (the engine ring held data).")
	fmt.Fprintln(w, "# TYPE ctgaussd_prefetch_hits_total counter")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_prefetch_hits_total{sigma=%q} %d\n", s.sigma, s.prefetchHits)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_prefetch_misses_total Draws that waited on a producer (async) or evaluated inline (sync).")
	fmt.Fprintln(w, "# TYPE ctgaussd_prefetch_misses_total counter")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_prefetch_misses_total{sigma=%q} %d\n", s.sigma, s.prefetchMisses)
	}

	// Fault-isolation telemetry: the arbitrary layer's base engines are
	// reported under sigma="arbitrary" so one series covers every engine
	// in the process.
	fmt.Fprintln(w, "# HELP ctgaussd_engine_producer_restarts_total Refill panics recovered per pool (the producer restarted after backoff).")
	fmt.Fprintln(w, "# TYPE ctgaussd_engine_producer_restarts_total counter")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_engine_producer_restarts_total{sigma=%q} %d\n", s.sigma, s.producerRestarts)
	}
	if arb != nil {
		fmt.Fprintf(w, "ctgaussd_engine_producer_restarts_total{sigma=\"arbitrary\"} %d\n", arb.producerRestarts)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_engine_refills_discarded_total Refills abandoned by a panicking fill per pool (never served).")
	fmt.Fprintln(w, "# TYPE ctgaussd_engine_refills_discarded_total counter")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_engine_refills_discarded_total{sigma=%q} %d\n", s.sigma, s.refillsDiscarded)
	}
	if arb != nil {
		fmt.Fprintf(w, "ctgaussd_engine_refills_discarded_total{sigma=\"arbitrary\"} %d\n", arb.refillsDiscarded)
	}
	fmt.Fprintln(w, "# HELP ctgaussd_engine_shards_poisoned Shards currently poisoned per pool (producer restarting or dead; draws fail over meanwhile).")
	fmt.Fprintln(w, "# TYPE ctgaussd_engine_shards_poisoned gauge")
	for _, s := range sigmas {
		fmt.Fprintf(w, "ctgaussd_engine_shards_poisoned{sigma=%q} %d\n", s.sigma, s.shardsPoisoned)
	}
	if arb != nil {
		fmt.Fprintf(w, "ctgaussd_engine_shards_poisoned{sigma=\"arbitrary\"} %d\n", arb.shardsPoisoned)
	}

	if arb != nil {
		fmt.Fprintln(w, "# HELP ctgaussd_arbitrary_samples_total Samples served by the free-form (sigma, mu) convolution layer.")
		fmt.Fprintln(w, "# TYPE ctgaussd_arbitrary_samples_total counter")
		fmt.Fprintf(w, "ctgaussd_arbitrary_samples_total %d\n", arb.samples)
		fmt.Fprintln(w, "# HELP ctgaussd_arbitrary_trials_total Combine/round trials evaluated by the convolution layer.")
		fmt.Fprintln(w, "# TYPE ctgaussd_arbitrary_trials_total counter")
		fmt.Fprintf(w, "ctgaussd_arbitrary_trials_total %d\n", arb.trials)
		fmt.Fprintln(w, "# HELP ctgaussd_arbitrary_accepted_total Trials accepted by the randomized-rounding step.")
		fmt.Fprintln(w, "# TYPE ctgaussd_arbitrary_accepted_total counter")
		fmt.Fprintf(w, "ctgaussd_arbitrary_accepted_total %d\n", arb.accepted)
		fmt.Fprintln(w, "# HELP ctgaussd_arbitrary_sigmas Distinct sigma values served since startup (capped tracking; see _sigmas_overflow).")
		fmt.Fprintln(w, "# TYPE ctgaussd_arbitrary_sigmas gauge")
		fmt.Fprintf(w, "ctgaussd_arbitrary_sigmas %d\n", arb.distinctSigmas)
		overflow := 0
		if arb.sigmaOverflow {
			overflow = 1
		}
		fmt.Fprintln(w, "# HELP ctgaussd_arbitrary_sigmas_overflow Whether distinct-sigma tracking hit its cap (the gauge is then a lower bound).")
		fmt.Fprintln(w, "# TYPE ctgaussd_arbitrary_sigmas_overflow gauge")
		fmt.Fprintf(w, "ctgaussd_arbitrary_sigmas_overflow %d\n", overflow)
		fmt.Fprintln(w, "# HELP ctgaussd_arbitrary_plans Distinct convolution plans compiled (one per requested sigma).")
		fmt.Fprintln(w, "# TYPE ctgaussd_arbitrary_plans gauge")
		fmt.Fprintf(w, "ctgaussd_arbitrary_plans %d\n", arb.plans)
		fmt.Fprintln(w, "# HELP ctgaussd_arbitrary_shards Shard count of the arbitrary sampler.")
		fmt.Fprintln(w, "# TYPE ctgaussd_arbitrary_shards gauge")
		fmt.Fprintf(w, "ctgaussd_arbitrary_shards %d\n", arb.shards)
		fmt.Fprintln(w, "# HELP ctgaussd_arbitrary_sigma_samples_total Samples served per free-form sigma, both tiers (capped tracking; see _sigmas_overflow).")
		fmt.Fprintln(w, "# TYPE ctgaussd_arbitrary_sigma_samples_total counter")
		for _, ss := range arb.sigmaSamples {
			fmt.Fprintf(w, "ctgaussd_arbitrary_sigma_samples_total{sigma=%q} %d\n", tier.SigmaString(ss.sigma), ss.samples)
		}
	}

	if ts != nil {
		fmt.Fprintln(w, "# HELP ctgaussd_tier_samples_total Free-form samples served per tier (compiled = promoted pool, convolved = convolution fallback).")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_samples_total counter")
		fmt.Fprintf(w, "ctgaussd_tier_samples_total{tier=\"compiled\"} %d\n", m.tierCompiledSamples.Load())
		fmt.Fprintf(w, "ctgaussd_tier_samples_total{tier=\"convolved\"} %d\n", m.tierConvolvedSamples.Load())
		fmt.Fprintln(w, "# HELP ctgaussd_tier_sample_seconds_total Time spent inside the sampler per tier (pool.Take / convolution draw; transport excluded — divide by _tier_samples_total for ns-per-sample).")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_sample_seconds_total counter")
		fmt.Fprintf(w, "ctgaussd_tier_sample_seconds_total{tier=\"compiled\"} %g\n", float64(m.tierCompiledNanos.Load())/1e9)
		fmt.Fprintf(w, "ctgaussd_tier_sample_seconds_total{tier=\"convolved\"} %g\n", float64(m.tierConvolvedNanos.Load())/1e9)
		fmt.Fprintln(w, "# HELP ctgaussd_tier_promotions_total Hot keys promoted onto compiled pools (build completed and installed).")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_promotions_total counter")
		fmt.Fprintf(w, "ctgaussd_tier_promotions_total %d\n", ts.stats.Promotions)
		fmt.Fprintln(w, "# HELP ctgaussd_tier_demotions_total Compiled keys demoted back to the convolved tier (drain started).")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_demotions_total counter")
		fmt.Fprintf(w, "ctgaussd_tier_demotions_total %d\n", ts.stats.Demotions)
		fmt.Fprintln(w, "# HELP ctgaussd_tier_builds_failed_total Promotion builds that errored or panicked (key stayed convolved).")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_builds_failed_total counter")
		fmt.Fprintf(w, "ctgaussd_tier_builds_failed_total %d\n", ts.stats.BuildsFailed)
		fmt.Fprintln(w, "# HELP ctgaussd_tier_builds_deferred_total Promotion ticks skipped while the base set was degraded.")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_builds_deferred_total counter")
		fmt.Fprintf(w, "ctgaussd_tier_builds_deferred_total %d\n", ts.stats.BuildsDeferred)
		fmt.Fprintln(w, "# HELP ctgaussd_tier_pools Compiled pools currently held by the tier controller (building + compiled + draining).")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_pools gauge")
		fmt.Fprintf(w, "ctgaussd_tier_pools %d\n", ts.stats.Pools)
		fmt.Fprintln(w, "# HELP ctgaussd_tier_pools_max Configured compiled-pool budget.")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_pools_max gauge")
		fmt.Fprintf(w, "ctgaussd_tier_pools_max %d\n", ts.stats.MaxPools)
		fmt.Fprintln(w, "# HELP ctgaussd_tier_state Tier state per tracked sigma (0=convolved, 1=building, 2=compiled, 3=draining).")
		fmt.Fprintln(w, "# TYPE ctgaussd_tier_state gauge")
		for _, k := range ts.keys {
			fmt.Fprintf(w, "ctgaussd_tier_state{sigma=%q} %d\n", tier.SigmaString(k.Sigma), int32(k.State))
		}
	}

	fmt.Fprintln(w, "# HELP ctgaussd_draining Whether the server is draining (1) or accepting requests (0).")
	fmt.Fprintln(w, "# TYPE ctgaussd_draining gauge")
	d := 0
	if draining {
		d = 1
	}
	fmt.Fprintf(w, "ctgaussd_draining %d\n", d)
}
