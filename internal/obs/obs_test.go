package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDisabledHooksAllocateNothing pins the hot-path contract: with no
// tracing Observer live, an instrumentation site — the gate check, the
// (skipped) context lookup, a disabled Observer's Start/Finish, and
// every nil-safe Trace method — performs zero allocations.
func TestDisabledHooksAllocateNothing(t *testing.T) {
	if TraceEnabled() {
		t.Fatal("tracing gate unexpectedly on at test start")
	}
	o := New(Config{}, []string{"samples"})
	if o.Enabled() {
		t.Fatal("zero-config Observer should be disabled")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		var tr *Trace
		if TraceEnabled() {
			tr = FromContext(ctx)
		}
		tr = o.Start(0)
		t0 := tr.Now()
		tr.Add(StageEngineWait, time.Nanosecond)
		tr.End(StageCoalesce, t0)
		tr.SetTier("compiled")
		o.Finish(tr, 200, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %v times per request, want 0", allocs)
	}
}

// TestGateTracksObserverLifetime: the global gate turns on with the
// first tracing Observer and off when the last closes.
func TestGateTracksObserverLifetime(t *testing.T) {
	if TraceEnabled() {
		t.Fatal("gate on before any Observer")
	}
	a := New(Config{Trace: true}, []string{"ep"})
	b := New(Config{Trace: true}, []string{"ep"})
	if !TraceEnabled() {
		t.Fatal("gate off with two tracing Observers live")
	}
	a.Close()
	a.Close() // idempotent
	if !TraceEnabled() {
		t.Fatal("gate off while one Observer still live")
	}
	b.Close()
	if TraceEnabled() {
		t.Fatal("gate still on after all Observers closed")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	o := New(Config{Trace: true}, []string{"ep"})
	defer o.Close()
	const n = 10_000
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		id := o.Start(0).ID()
		if id == "" {
			t.Fatal("empty trace ID from enabled Observer")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestStagesEncodeRoundTrip(t *testing.T) {
	o := New(Config{Trace: true}, []string{"ep"})
	defer o.Close()
	tr := o.Start(0)
	tr.Add(StageDecode, 1500*time.Nanosecond)
	tr.Add(StageCoalesce, 2*time.Millisecond)
	tr.Add(StageEngineWait, time.Millisecond)
	o.Finish(tr, 200, 3*time.Millisecond)
	got := ParseStages(tr.EncodeStages())
	if got["decode"] != 1500 {
		t.Fatalf("decode = %d, want 1500", got["decode"])
	}
	if got["coalesce"] != int64(2*time.Millisecond) {
		t.Fatalf("coalesce = %d", got["coalesce"])
	}
	if got["engine_wait"] != int64(time.Millisecond) {
		t.Fatalf("engine_wait = %d", got["engine_wait"])
	}
	if got["total"] != int64(3*time.Millisecond) {
		t.Fatalf("total = %d", got["total"])
	}
	// other = total − (decode + coalesce); engine_wait is a sub-stage
	// and must not affect the partition remainder.
	wantOther := int64(3*time.Millisecond) - 1500 - int64(2*time.Millisecond)
	if got["other"] != wantOther {
		t.Fatalf("other = %d, want %d", got["other"], wantOther)
	}
}

// TestStageSumsReconcileUnderConcurrentLoad drives many goroutines
// through Start/Add/Finish and checks the scrape-side invariant the
// loadgen integration test relies on: summed partition stages equal
// summed totals exactly (the Observer derives "other" per request).
func TestStageSumsReconcileUnderConcurrentLoad(t *testing.T) {
	o := New(Config{Trace: true}, []string{"samples", "arbitrary"})
	defer o.Close()
	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				ep := (w + i) % 2
				tr := o.Start(ep)
				tr.Add(StageQueueWait, time.Duration(1+i%7)*time.Microsecond)
				tr.Add(StageDecode, time.Duration(2+i%5)*time.Microsecond)
				tr.Add(StageCoalesce, time.Duration(10+i%11)*time.Microsecond)
				tr.Add(StageEncode, time.Duration(3+i%3)*time.Microsecond)
				total := tr.Stage(StageQueueWait) + tr.Stage(StageDecode) +
					tr.Stage(StageCoalesce) + tr.Stage(StageEncode) +
					time.Duration(i%2)*time.Microsecond // unattributed slack
				o.Finish(tr, 200, total)
			}
		}(w)
	}
	wg.Wait()
	for ep := 0; ep < 2; ep++ {
		var part uint64
		for s := StageQueueWait; s <= StageOther; s++ {
			part += o.StageSum(ep, s)
		}
		tot := o.StageSum(ep, StageTotal)
		if part != tot {
			t.Fatalf("endpoint %d: partition stage sum %d ≠ total sum %d", ep, part, tot)
		}
	}
	var reqs uint64
	for _, sc := range o.Scrape() {
		if sc.Stage == "total" {
			reqs += sc.Hist.Count
		}
	}
	if reqs != workers*perW {
		t.Fatalf("total histograms counted %d requests, want %d", reqs, workers*perW)
	}
}

func TestSlowLogEmissionAndSampling(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	o := New(Config{
		SlowRequest:        time.Microsecond,
		SlowLogMinInterval: -1, // no sampling: every slow request logs
		Logger:             logger,
	}, []string{"samples"})
	defer o.Close()

	tr := o.Start(0)
	tr.Add(StageCoalesce, 40*time.Microsecond)
	tr.SetTier("compiled")
	o.Finish(tr, 200, 50*time.Microsecond)

	fast := o.Start(0)
	o.Finish(fast, 200, 100*time.Nanosecond) // under threshold: no record

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != 1 || lines[0] == "" {
		t.Fatalf("want exactly 1 slow-request record, got %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("slow-request record is not JSON: %v", err)
	}
	if rec["msg"] != "slow request" {
		t.Fatalf("msg = %v", rec["msg"])
	}
	if rec["trace"] != tr.ID() {
		t.Fatalf("trace = %v, want %s", rec["trace"], tr.ID())
	}
	if rec["tier"] != "compiled" {
		t.Fatalf("tier = %v", rec["tier"])
	}
	stages, ok := rec["stages_ms"].(map[string]any)
	if !ok || stages["coalesce"] == nil {
		t.Fatalf("stages_ms missing coalesce: %v", rec["stages_ms"])
	}

	// With a generous sampling interval, a burst of slow requests
	// yields exactly one more record.
	mu.Lock()
	buf.Reset()
	mu.Unlock()
	o2 := New(Config{
		SlowRequest:        time.Microsecond,
		SlowLogMinInterval: time.Hour,
		Logger:             logger,
	}, []string{"samples"})
	defer o2.Close()
	for i := 0; i < 50; i++ {
		tr := o2.Start(0)
		o2.Finish(tr, 200, time.Millisecond)
	}
	mu.Lock()
	n := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1
	empty := strings.TrimSpace(buf.String()) == ""
	mu.Unlock()
	if empty || n != 1 {
		t.Fatalf("sampled slow log emitted %d records in a burst, want 1", n)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(nil); got != nil {
		t.Fatal("FromContext(nil) != nil")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("FromContext(empty) != nil")
	}
	o := New(Config{Trace: true}, []string{"ep"})
	defer o.Close()
	tr := o.Start(0)
	ctx := ContextWith(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatal("trace lost through context")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(1000)    // 2^10 = 1024 → bucket 10
	h.Observe(1 << 40) // saturates at the top bucket
	h.Observe(-5)      // clamps to bucket 0, no sum contribution
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.SumNs != 1+1000+(1<<40) {
		t.Fatalf("sum = %d", s.SumNs)
	}
	if s.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[10] != 1 {
		t.Fatalf("bucket 10 = %d, want 1", s.Buckets[10])
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("top bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.Version == "" {
		t.Fatal("empty version")
	}
	if !strings.HasPrefix(b.GoVersion, "go") {
		t.Fatalf("go_version = %q", b.GoVersion)
	}
}

func TestStagePartition(t *testing.T) {
	want := map[Stage]bool{
		StageQueueWait: true, StageDecode: true, StageRoute: true,
		StageCoalesce: true, StageEncode: true, StageOther: true,
		StageEngineWait: false, StageEval: false, StageCombine: false,
		StageTotal: false,
	}
	for s, w := range want {
		if s.Partition() != w {
			t.Fatalf("%s.Partition() = %v, want %v", s, s.Partition(), w)
		}
	}
	names := map[string]bool{}
	for s := 0; s < NumStages; s++ {
		n := Stage(s).String()
		if n == "unknown" || names[n] {
			t.Fatalf("stage %d has bad or duplicate name %q", s, n)
		}
		names[n] = true
	}
}
