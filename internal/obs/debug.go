package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the debug listener's handler: the net/http/pprof
// suite (heap/goroutine/block/mutex profiles, CPU profiles via
// /debug/pprof/profile, execution traces via /debug/pprof/trace — the
// runtime/trace capture).  Mount it ONLY on the private -debug-addr
// listener, never on the serving mux: profiles reveal internals and a
// CPU profile or execution trace costs real cycles, so the endpoint
// must not be reachable by clients.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/debug/pprof/", http.StatusFound)
	})
	return mux
}
