package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// LintMetrics validates a Prometheus text-format (0.0.4) exposition
// against the conventions ctgaussd guarantees:
//
//   - every sample belongs to a family declared by a preceding # TYPE
//     (histogram families own their _bucket/_sum/_count samples);
//   - no family is declared twice and samples are not interleaved
//     across families;
//   - family declarations appear in sorted order (the deterministic
//     scrape-diff guarantee);
//   - metric and label names are well-formed, counter families end in
//     _total, histogram _bucket samples carry an le label, and every
//     value parses as a float.
//
// It returns one error per violation (nil for a clean scrape).
func LintMetrics(r io.Reader) []error {
	var errs []error
	types := make(map[string]string) // family → kind
	var declared []string            // declaration order
	current := ""                    // family owning the sample block in progress
	seenSamples := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				errs = append(errs, fmt.Errorf("line %d: malformed comment %q", lineNo, line))
				continue
			}
			if fields[1] != "TYPE" {
				continue
			}
			name, kind := fields[2], fields[3]
			if _, dup := types[name]; dup {
				errs = append(errs, fmt.Errorf("line %d: duplicate family %q", lineNo, name))
				continue
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				errs = append(errs, fmt.Errorf("line %d: family %q has unknown type %q", lineNo, name, kind))
			}
			if !metricNameRE.MatchString(name) {
				errs = append(errs, fmt.Errorf("line %d: family name %q is not a valid metric name", lineNo, name))
			}
			if kind == "counter" && !strings.HasSuffix(name, "_total") {
				errs = append(errs, fmt.Errorf("line %d: counter family %q should end in _total", lineNo, name))
			}
			types[name] = kind
			declared = append(declared, name)
			current = name
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %v", lineNo, err))
			continue
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			errs = append(errs, fmt.Errorf("line %d: sample %s has non-numeric value %q", lineNo, name, value))
		}
		fam, ok := familyOf(name, types)
		if !ok {
			errs = append(errs, fmt.Errorf("line %d: sample %s has no registered family (# TYPE missing)", lineNo, name))
			continue
		}
		if fam != current {
			if seenSamples[fam] {
				errs = append(errs, fmt.Errorf("line %d: samples for family %q are interleaved with other families", lineNo, fam))
			}
			current = fam
		}
		seenSamples[fam] = true
		if types[fam] == "histogram" && strings.HasSuffix(name, "_bucket") && !strings.Contains(labels, `le="`) {
			errs = append(errs, fmt.Errorf("line %d: histogram sample %s lacks an le label", lineNo, name))
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("reading exposition: %v", err))
	}
	for i := 1; i < len(declared); i++ {
		if declared[i-1] > declared[i] {
			errs = append(errs, fmt.Errorf("family %q declared after %q: families must be sorted", declared[i], declared[i-1]))
		}
	}
	return errs
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// parseSample splits "name{labels} value" (labels optional) and
// validates the label syntax loosely.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced label braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", "", fmt.Errorf("malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	if labels != "" {
		for _, pair := range splitLabels(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !metricNameRE.MatchString(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", "", fmt.Errorf("malformed label %q in %q", pair, line)
			}
		}
	}
	if !metricNameRE.MatchString(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", "", "", fmt.Errorf("sample %q has no value", line)
	}
	return name, labels, value, nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, strings.TrimSpace(s[start:]))
	}
	return out
}

// familyOf resolves a sample name to its declared family: an exact
// match for scalar families, or the _bucket/_sum/_count suffix pattern
// for histogram families.
func familyOf(name string, types map[string]string) (string, bool) {
	if kind, ok := types[name]; ok {
		if kind == "histogram" {
			// Histogram families never emit a bare-name sample.
			return "", false
		}
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if types[base] == "histogram" {
				return base, true
			}
		}
	}
	return "", false
}
