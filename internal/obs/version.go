package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Version is the release stamp, set at link time:
//
//	go build -ldflags "-X ctgauss/internal/obs.Version=$(git describe --always --dirty)" ./cmd/ctgaussd
//
// It feeds the ctgaussd_build_info metric, the /healthz build block,
// and ctgaussd -version.
var Version = "dev"

// BuildInfo describes the running binary.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build information: the linked Version,
// the Go toolchain version, and the VCS revision when the module was
// built from a checkout.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: Version, GoVersion: runtime.Version()}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					buildInfo.Revision = s.Value
				case "vcs.modified":
					buildInfo.Modified = s.Value == "true"
				}
			}
		}
	})
	return buildInfo
}
