// Package obs is the serving stack's zero-dependency observability
// layer: per-request traces with stage timings, per-(stage, endpoint)
// latency histograms for /metrics, a sampled structured slow-request
// log (log/slog), build-info stamping, the pprof/runtime-trace debug
// handler, and a Prometheus text-format linter.
//
// The contract that lets the hooks live on the hot path: when no
// Observer with tracing enabled exists, every instrumentation site
// reduces to one atomic load (TraceEnabled) and allocates nothing.
// When tracing is on, a request carries a *Trace through its context;
// the deep layers (engine take/refill, convolve combine/round) add
// durations to it with plain stores — a Trace is only ever touched by
// the goroutine serving its request.  Hooks read clocks and nothing
// else: they never consume randomness, so golden streams stay
// bit-identical with tracing on or off.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one timed segment of a request's life.  The stages
// up to and including StageOther partition the request: their sum
// equals StageTotal (StageOther is derived as the unattributed
// remainder).  StageEngineWait, StageEval, and StageCombine are
// sub-stages nested inside StageCoalesce and are excluded from the
// partition sum.
type Stage uint8

const (
	// StageQueueWait is admission: the drain gate plus acquiring a
	// bounded-queue slot (acquisition is non-blocking, so this is
	// normally nanoseconds; it also covers refused/rejected requests'
	// whole life).
	StageQueueWait Stage = iota
	// StageDecode is request-body parsing.
	StageDecode
	// StageRoute is the tier route decision (compiled-pool acquire).
	StageRoute
	// StageCoalesce is the draw itself: pool take, arbitrary-sampler
	// batch, or Falcon signing — everything between a decoded request
	// and samples in hand.
	StageCoalesce
	// StageEncode is response serialization and the socket write.
	StageEncode
	// StageOther is the unattributed remainder (handler bookkeeping,
	// validation, allocation); derived at finish, never recorded
	// directly.
	StageOther
	// StageEngineWait is time blocked inside the refill engine waiting
	// for a producer (a prefetch miss).  Sub-stage of StageCoalesce.
	StageEngineWait
	// StageEval is inline circuit evaluation when prefetch is disabled
	// (depth 0).  Sub-stage of StageCoalesce.
	StageEval
	// StageCombine is the convolve ladder's combine/round lane
	// evaluation.  Sub-stage of StageCoalesce.
	StageCombine
	// StageTotal is the request's full wall time, queue wait included.
	StageTotal

	// NumStages is the number of distinct stages.
	NumStages = int(StageTotal) + 1
)

var stageNames = [NumStages]string{
	"queue_wait", "decode", "route", "coalesce", "encode",
	"other", "engine_wait", "eval", "combine", "total",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Partition reports whether s is one of the disjoint stages whose sum
// equals StageTotal.
func (s Stage) Partition() bool { return s <= StageOther }

// HTTP header names the server uses to surface traces.
const (
	// TraceHeader carries the request's trace ID on every traced
	// response.
	TraceHeader = "X-Ctgauss-Trace"
	// StagesHeader is the response trailer carrying the stage
	// breakdown, formatted by Trace.EncodeStages.
	StagesHeader = "X-Ctgauss-Stages"
)

// tracingObservers counts live Observers with tracing enabled.  The
// instrumentation gate: sites check TraceEnabled before touching the
// request context, so a disabled process pays one atomic load per
// hook.
var tracingObservers atomic.Int64

// TraceEnabled reports whether any live Observer is tracing.  This is
// the single atomic check every hook performs when observability is
// off.
func TraceEnabled() bool { return tracingObservers.Load() > 0 }

// Trace accumulates one request's stage timings.  All methods are
// nil-safe so call sites stay unconditional; a Trace must only be
// mutated by the goroutine serving its request.
type Trace struct {
	id     string
	o      *Observer
	ep     int
	tier   string
	stages [NumStages]int64 // nanoseconds
}

// ID returns the request's trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Endpoint returns the endpoint name the trace was started for.
func (t *Trace) Endpoint() string {
	if t == nil {
		return ""
	}
	return t.o.endpoints[t.ep]
}

// Add accumulates d into stage s.  Nil-safe; non-positive durations
// are dropped.
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.stages[s] += int64(d)
}

// Now returns the current time for a live trace and the zero Time for
// a nil one — pair with End so untraced requests never read the clock:
//
//	t0 := tr.Now()
//	... work ...
//	tr.End(obs.StageCoalesce, t0)
func (t *Trace) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// End accumulates the time elapsed since t0 into stage s.  No-op on a
// nil trace.
func (t *Trace) End(s Stage, t0 time.Time) {
	if t == nil {
		return
	}
	t.stages[s] += int64(time.Since(t0))
}

// SetTier records which serving tier satisfied the request
// ("compiled" or "convolved").  Nil-safe.
func (t *Trace) SetTier(tier string) {
	if t == nil {
		return
	}
	t.tier = tier
}

// Tier returns the tier recorded by SetTier ("" if none).
func (t *Trace) Tier() string {
	if t == nil {
		return ""
	}
	return t.tier
}

// Stage returns the accumulated duration of stage s.
func (t *Trace) Stage(s Stage) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.stages[s])
}

// EncodeStages renders the nonzero stages as "name=ns;name=ns" for
// the X-Ctgauss-Stages response trailer.  Call after Observer.Finish
// so the derived other/total stages are included.
func (t *Trace) EncodeStages() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for s := 0; s < NumStages; s++ {
		if t.stages[s] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		b.WriteString(stageNames[s])
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(t.stages[s], 10))
	}
	return b.String()
}

// ParseStages decodes an EncodeStages string into stage-name →
// nanoseconds.  Unknown names are kept (forward compatibility);
// malformed pairs are skipped.
func ParseStages(s string) map[string]int64 {
	if s == "" {
		return nil
	}
	out := make(map[string]int64)
	for _, pair := range strings.Split(s, ";") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		ns, err := strconv.ParseInt(val, 10, 64)
		if err != nil || ns < 0 {
			continue
		}
		out[name] = ns
	}
	return out
}

type ctxKey struct{}

// ContextWith returns ctx carrying t.
func ContextWith(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace ctx carries, nil when absent (or when
// ctx itself is nil).  Gate calls with TraceEnabled so untraced
// processes skip the context walk entirely.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// DefaultSlowLogMinInterval is the slow-request log's default sampling
// floor: at most one record per this interval.
const DefaultSlowLogMinInterval = 100 * time.Millisecond

// Config configures an Observer.
type Config struct {
	// Trace enables request tracing: trace IDs, stage histograms, the
	// stages response trailer.
	Trace bool
	// SlowRequest, when > 0, emits a structured log record for every
	// request whose total time meets it (subject to sampling).
	// Implies Trace.
	SlowRequest time.Duration
	// SlowLogMinInterval rate-limits slow-request records: at most one
	// per interval.  0 means DefaultSlowLogMinInterval; negative
	// disables sampling (every slow request logs).
	SlowLogMinInterval time.Duration
	// Logger receives slow-request records.  nil = slog.Default().
	Logger *slog.Logger
}

// Observer owns a process's tracing state: trace-ID generation, the
// per-(endpoint, stage) histograms /metrics scrapes, and the sampled
// slow-request log.  Create one per server with the endpoint-name
// universe; Close it when the server closes so the global gate
// releases.
type Observer struct {
	cfg       Config
	endpoints []string
	idPrefix  string
	idCtr     atomic.Uint64
	hists     []Histogram // len(endpoints) × NumStages, row-major by endpoint
	slowLast  atomic.Int64
	enabled   bool
	closed    atomic.Bool
}

// New creates an Observer for the given endpoint names.  When neither
// tracing nor slow-request logging is requested the Observer is
// disabled: Start returns nil and the global gate stays off.
func New(cfg Config, endpoints []string) *Observer {
	if cfg.SlowRequest > 0 {
		cfg.Trace = true
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	o := &Observer{cfg: cfg, endpoints: endpoints, enabled: cfg.Trace}
	if !o.enabled {
		return o
	}
	var pfx [8]byte
	if _, err := rand.Read(pfx[:]); err != nil {
		// Fall back to the clock; uniqueness within the process still
		// holds via the counter.
		now := time.Now().UnixNano()
		for i := range pfx {
			pfx[i] = byte(now >> (8 * i))
		}
	}
	o.idPrefix = hex.EncodeToString(pfx[:])
	o.hists = make([]Histogram, len(endpoints)*NumStages)
	tracingObservers.Add(1)
	return o
}

// Enabled reports whether the Observer traces requests.
func (o *Observer) Enabled() bool { return o != nil && o.enabled }

// Close releases the Observer's claim on the global tracing gate.
// Idempotent.
func (o *Observer) Close() {
	if o == nil || !o.enabled {
		return
	}
	if o.closed.CompareAndSwap(false, true) {
		tracingObservers.Add(-1)
	}
}

// Start begins a trace for a request on endpoint (an index into the
// endpoint names passed to New).  Returns nil when the Observer is
// disabled — all Trace methods tolerate that.
func (o *Observer) Start(endpoint int) *Trace {
	if o == nil || !o.enabled || o.closed.Load() {
		return nil
	}
	return &Trace{
		id: fmt.Sprintf("%s-%08x", o.idPrefix, o.idCtr.Add(1)),
		o:  o,
		ep: endpoint,
	}
}

// Finish completes a trace: derives the unattributed remainder and the
// total, folds every stage into the scrape histograms, and emits a
// slow-request record when configured.  No-op for a nil trace.
func (o *Observer) Finish(t *Trace, status int, total time.Duration) {
	if t == nil || o == nil || !o.enabled {
		return
	}
	var part int64
	for s := StageQueueWait; s < StageOther; s++ {
		part += t.stages[s]
	}
	if other := int64(total) - part; other > 0 {
		t.stages[StageOther] = other
	}
	t.stages[StageTotal] = int64(total)
	base := t.ep * NumStages
	for s := 0; s < NumStages; s++ {
		if t.stages[s] > 0 || s == int(StageTotal) {
			o.hists[base+s].Observe(t.stages[s])
		}
	}
	if o.cfg.SlowRequest > 0 && total >= o.cfg.SlowRequest && o.admitSlowLog() {
		o.logSlow(t, status, total)
	}
}

// admitSlowLog applies the sampling floor: at most one slow-request
// record per SlowLogMinInterval, decided with a CAS so concurrent slow
// requests elect exactly one logger.
func (o *Observer) admitSlowLog() bool {
	min := o.cfg.SlowLogMinInterval
	if min < 0 {
		return true
	}
	if min == 0 {
		min = DefaultSlowLogMinInterval
	}
	now := time.Now().UnixNano()
	last := o.slowLast.Load()
	return now-last >= int64(min) && o.slowLast.CompareAndSwap(last, now)
}

func (o *Observer) logSlow(t *Trace, status int, total time.Duration) {
	attrs := make([]slog.Attr, 0, 6+NumStages)
	attrs = append(attrs,
		slog.String("trace", t.id),
		slog.String("endpoint", o.endpoints[t.ep]),
		slog.Int("status", status),
		slog.Float64("total_ms", float64(total)/1e6),
	)
	if t.tier != "" {
		attrs = append(attrs, slog.String("tier", t.tier))
	}
	stageAttrs := make([]any, 0, NumStages)
	for s := 0; s < int(StageTotal); s++ {
		if t.stages[s] > 0 {
			stageAttrs = append(stageAttrs,
				slog.Float64(stageNames[s], float64(t.stages[s])/1e6))
		}
	}
	attrs = append(attrs, slog.Group("stages_ms", stageAttrs...))
	o.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, "slow request", attrs...)
}

// StageScrape is one (endpoint, stage) histogram snapshot for the
// /metrics exporter.
type StageScrape struct {
	Endpoint string
	Stage    string
	Hist     HistogramSnapshot
}

// Scrape snapshots every non-empty (endpoint, stage) histogram in a
// deterministic order: endpoints in registration order, stages in enum
// order.  Empty (and nil-Observer) scrapes return nil.
func (o *Observer) Scrape() []StageScrape {
	if o == nil || !o.enabled {
		return nil
	}
	var out []StageScrape
	for e, name := range o.endpoints {
		for s := 0; s < NumStages; s++ {
			snap := o.hists[e*NumStages+s].Snapshot()
			if snap.Count == 0 {
				continue
			}
			out = append(out, StageScrape{Endpoint: name, Stage: stageNames[s], Hist: snap})
		}
	}
	return out
}

// StageSum returns the summed nanoseconds observed for one (endpoint
// index, stage) histogram — the reconciliation tests' hook.
func (o *Observer) StageSum(endpoint int, s Stage) uint64 {
	if o == nil || !o.enabled {
		return 0
	}
	return o.hists[endpoint*NumStages+int(s)].Snapshot().SumNs
}
