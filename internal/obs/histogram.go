package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the number of log2 histogram buckets: bucket i counts
// observations with ceil(log2(ns)) == i, saturating at the top, so the
// range spans 1ns through ~68s.  Matches the server's endpoint-latency
// histograms so stage and endpoint distributions compare directly.
const NumBuckets = 37

// Histogram is a lock-free log2 latency histogram.  The zero value is
// ready to use; Observe is wait-free (three atomic adds).
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one duration in nanoseconds (non-positive values
// count in the first bucket with zero sum contribution).
func (h *Histogram) Observe(ns int64) {
	i := 0
	if ns > 1 {
		i = bits.Len64(uint64(ns) - 1)
	}
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	if ns > 0 {
		h.sum.Add(uint64(ns))
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64
	SumNs   uint64
}

// Snapshot copies the histogram's counters.  Buckets are read without
// a global lock, so a snapshot taken during concurrent observes may be
// torn by at most the in-flight observations — fine for scraping.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	return s
}

// BucketUpperNs returns bucket i's inclusive upper bound in
// nanoseconds (2^i).
func BucketUpperNs(i int) uint64 { return 1 << uint(i) }
