package obs

import (
	"strings"
	"testing"
)

func lintString(s string) []error { return LintMetrics(strings.NewReader(s)) }

func TestLintCleanExposition(t *testing.T) {
	scrape := `# HELP a_requests_total Requests.
# TYPE a_requests_total counter
a_requests_total{endpoint="samples"} 12
a_requests_total{endpoint="sign"} 3
# HELP b_inflight In-flight requests.
# TYPE b_inflight gauge
b_inflight 0
# HELP c_stage_seconds Stage time.
# TYPE c_stage_seconds histogram
c_stage_seconds_bucket{stage="decode",le="0.001"} 4
c_stage_seconds_bucket{stage="decode",le="+Inf"} 5
c_stage_seconds_sum{stage="decode"} 0.004
c_stage_seconds_count{stage="decode"} 5
`
	if errs := lintString(scrape); len(errs) != 0 {
		t.Fatalf("clean scrape flagged: %v", errs)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, scrape, want string
	}{
		{
			"unregistered sample",
			"# TYPE a_total counter\na_total 1\nrogue_metric 2\n",
			"no registered family",
		},
		{
			"duplicate family",
			"# TYPE a_total counter\na_total 1\n# TYPE a_total counter\na_total 2\n",
			"duplicate family",
		},
		{
			"unsorted families",
			"# TYPE b_total counter\nb_total 1\n# TYPE a_total counter\na_total 1\n",
			"must be sorted",
		},
		{
			"counter without _total",
			"# TYPE a_count counter\na_count 1\n",
			"should end in _total",
		},
		{
			"bucket without le",
			"# TYPE a_seconds histogram\na_seconds_bucket{x=\"y\"} 1\na_seconds_sum 1\na_seconds_count 1\n",
			"lacks an le label",
		},
		{
			"non-numeric value",
			"# TYPE a_total counter\na_total pony\n",
			"non-numeric value",
		},
		{
			"interleaved families",
			"# TYPE a_total counter\n# TYPE b_total counter\na_total 1\nb_total 1\na_total{x=\"y\"} 2\n",
			"interleaved",
		},
	}
	for _, tc := range cases {
		errs := lintString(tc.scrape)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: lint missed it (errors: %v)", tc.name, errs)
		}
	}
}
