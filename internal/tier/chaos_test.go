package tier

import (
	"sync/atomic"
	"testing"
	"time"

	"ctgauss/internal/faultinject"
)

// TestChaosTierBuildFail pins the failed-promotion path: an injected
// panic in the background build leaves the key serving from the
// convolved tier (no pool installed, no budget leaked), applies a
// cooldown of one full window before retry, and the retry then
// succeeds.
func TestChaosTierBuildFail(t *testing.T) {
	var builds atomic.Int64
	c, err := New(Config{
		PromoteRPS: 10, Window: time.Second, Tick: -1,
		Build: func(string) (Pool, error) {
			builds.Add(1)
			return &fakePool{marker: 1}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	disarm := faultinject.Arm(faultinject.TierBuildFail, faultinject.Fault{
		Shard: faultinject.AnyShard,
		Count: 1,
	})
	defer disarm()

	const sigma = 2.5
	c.Observe(sigma, 100)
	c.Poll()
	// The injected panic unwinds the build goroutine; the key must roll
	// back to convolved with the failure counted and no Build call made
	// (the point fires upstream of the hook).
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().BuildsFailed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected build failure never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	st := c.Stats()
	if st.BuildsFailed != 1 || st.Promotions != 0 || st.Pools != 0 {
		t.Fatalf("after injected failure: %+v", st)
	}
	if got := c.State(sigma); got != Convolved {
		t.Fatalf("state after failed build = %v, want convolved", got)
	}
	if builds.Load() != 0 {
		t.Fatalf("Build hook ran %d times; the fault fires upstream of it", builds.Load())
	}
	if _, _, ok := c.Acquire(sigma); ok {
		t.Fatal("Acquire succeeded after a failed build")
	}

	// Cooldown: the key stays hot but must not re-candidate for a full
	// window of polls.
	for i := 0; i < rateBuckets; i++ {
		c.Observe(sigma, 100)
		c.Poll()
		time.Sleep(2 * time.Millisecond)
		if got := c.State(sigma); got != Convolved {
			t.Fatalf("poll %d during cooldown: state %v, want convolved", i, got)
		}
	}
	// Cooldown spent (and the fault auto-disarmed at Count=1): the next
	// hot poll promotes for real.
	c.Observe(sigma, 1000)
	c.Poll()
	waitState(t, c, sigma, Compiled)
	st = c.Stats()
	if st.Promotions != 1 || st.BuildsFailed != 1 || builds.Load() != 1 {
		t.Fatalf("after retry: %+v (builds=%d)", st, builds.Load())
	}
}

// TestChaosDegradedDefersPromotion: while the base set reports
// degraded, promotion is deferred — not failed, not wedged — and
// proceeds on the first healthy tick.
func TestChaosDegradedDefersPromotion(t *testing.T) {
	var degraded atomic.Bool
	degraded.Store(true)
	c, err := New(Config{
		PromoteRPS: 10, Window: time.Second, Tick: -1,
		Build:    func(string) (Pool, error) { return &fakePool{marker: 1}, nil },
		Degraded: func() bool { return degraded.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const sigma = 2.5
	for i := 0; i < 3; i++ {
		c.Observe(sigma, 1000)
		c.Poll()
		time.Sleep(2 * time.Millisecond)
		if got := c.State(sigma); got != Convolved {
			t.Fatalf("promoted while degraded: state %v", got)
		}
	}
	st := c.Stats()
	if st.BuildsDeferred != 3 || st.Promotions != 0 || st.BuildsFailed != 0 {
		t.Fatalf("deferral stats: %+v, want 3 deferred and nothing else", st)
	}

	degraded.Store(false)
	c.Observe(sigma, 1000)
	c.Poll()
	waitState(t, c, sigma, Compiled)
	if st := c.Stats(); st.Promotions != 1 {
		t.Fatalf("stats after recovery: %+v", st)
	}
}
