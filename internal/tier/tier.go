// Package tier implements hot-(σ, μ=0) tiering for the arbitrary
// serving layer: a promotion controller that watches per-σ sample rates
// over a sliding window and moves hot keys from the convolved tier
// (ctgauss.Arbitrary, 363–1513 ns/sample in BENCH_PR4) onto direct
// compiled pools (63–89 ns/sample) built in the background — the same
// promote-hot-keys-to-the-fast-path shape an inference cache uses.
//
// The controller never serves samples itself.  The serving layer feeds
// it observations (Observe) and asks it, once per request, which tier a
// σ is on (Acquire); the answer is a refcounted pool handle, so a
// response is always served wholly by one tier and a demotion can never
// close a pool out from under an in-flight draw.  State machine per key:
//
//	convolved ──rate ≥ PromoteRPS──► building ──build ok──► compiled
//	    ▲                                │                      │
//	    │                          build fails             rate ≤ DemoteRPS
//	    │                         (cooldown, retry)             ▼
//	    └───────────pool closed──────────────────────────── draining
//
// Builds run on background goroutines through the Build hook — in the
// daemon that is ctgauss.NewPoolWithConfig, whose circuit resolution
// goes through the process-wide registry's singleflight and disk cache,
// so replicas and restarts pay the exact-minimization cost once.
// Promotion is deferred (not failed) while Degraded reports the base
// set unhealthy, and a failed build leaves the key serving from the
// convolved tier with a cooldown before retry; the chaos suite pins
// both via the tier.build.fail injection point.
package tier

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"ctgauss/internal/faultinject"
)

// Pool is the compiled-tier serving surface the controller manages:
// the subset of ctgauss.Pool a router needs.  Tests substitute marker
// pools to prove tier-wholeness of responses.
type Pool interface {
	// Take fills all of dst with consecutive samples (Pool.Take semantics).
	Take(ctx context.Context, dst []int) error
	// Close releases the pool's refill runtime.  The controller calls it
	// exactly once, after the last Acquire reference is released.
	Close()
}

// State is one key's position in the tier state machine.
type State int32

const (
	// Convolved: served by the convolution fallback; no compiled pool.
	Convolved State = iota
	// Building: a background compiled-pool build is in flight; traffic
	// keeps flowing through the convolved tier meanwhile.
	Building
	// Compiled: Acquire routes the key's traffic onto the compiled pool.
	Compiled
	// Draining: demotion in progress — new requests go convolved, the
	// pool closes once in-flight references release.
	Draining
)

func (s State) String() string {
	switch s {
	case Convolved:
		return "convolved"
	case Building:
		return "building"
	case Compiled:
		return "compiled"
	case Draining:
		return "draining"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// rateBuckets is the sliding-window resolution: the window is covered
// by this many buckets, rotated one per Poll.
const rateBuckets = 4

// defaultMaxTrackedKeys bounds the per-σ rate map (an adversarial
// client sweeping σ values must not grow controller memory without
// bound) — the same discipline as the serving layer's distinct-σ cap.
const defaultMaxTrackedKeys = 4096

// ErrClosed is returned by forced transitions after Close.
var ErrClosed = errors.New("tier: controller closed")

// Config wires a Controller.  Build is required; zero values of the
// rest select the documented defaults.
type Config struct {
	// PromoteRPS is the sliding-window sample rate (samples/second, μ=0
	// traffic only) at which a key becomes a promotion candidate.  With
	// PromoteRPS ≤ 0 no automatic ticker runs: only ForcePromote and
	// ForceDemote move keys (the acceptance harness's mode).
	PromoteRPS float64
	// DemoteRPS is the rate at or below which a compiled key demotes
	// (default PromoteRPS/4 — the hysteresis band keeps a key flickering
	// around one threshold from thrashing build/drain cycles).
	DemoteRPS float64
	// Window is the sliding-window length rates are measured over
	// (default 10s).
	Window time.Duration
	// Tick is the evaluation cadence: 0 = Window/4 (one bucket per
	// tick), negative = no ticker (tests drive Poll directly).
	Tick time.Duration
	// MaxPools bounds concurrently held compiled pools, counting keys in
	// the building and draining states against the budget (default 4).
	MaxPools int
	// MaxSigma is the largest σ worth compiling directly — exact
	// minimization cost grows with the support ⌈τσ⌉, so very wide keys
	// stay on the convolved tier no matter how hot (default 64).
	MaxSigma float64
	// Build constructs the compiled pool for a σ (its canonical decimal
	// spelling).  It runs on a background goroutine; a panic inside it
	// is contained and counted as a failed build.
	Build func(sigma string) (Pool, error)
	// Degraded, when set, defers promotions while it reports true — a
	// degraded base set means the runtime is already fighting a restart,
	// the worst moment to add a minimization build.  Deferral is not
	// failure: the key promotes on a later tick once the set recovers.
	Degraded func() bool
	// Logf receives one line per transition (nil = silent).
	Logf func(format string, args ...any)

	// maxKeys overrides defaultMaxTrackedKeys (tests only).
	maxKeys int
}

func (c Config) withDefaults() Config {
	if c.DemoteRPS <= 0 {
		c.DemoteRPS = c.PromoteRPS / 4
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Tick == 0 {
		c.Tick = c.Window / rateBuckets
	}
	if c.MaxPools <= 0 {
		c.MaxPools = 4
	}
	if c.MaxSigma <= 0 {
		c.MaxSigma = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.maxKeys <= 0 {
		c.maxKeys = defaultMaxTrackedKeys
	}
	return c
}

// key is one σ's tracking record.  All fields are guarded by the
// controller mutex; the pool itself is only touched outside the lock
// through refcounted handles.
type key struct {
	sigma   float64
	buckets [rateBuckets]uint64 // buckets[0] is the current tick
	total   uint64              // lifetime observed samples
	state   State
	pool    Pool
	refs    int           // outstanding Acquire handles
	drained chan struct{} // closed when refs hits 0 while draining
	// cooldown counts ticks before a failed build may retry, so a hot
	// key with a deterministic build failure doesn't spin the builder.
	cooldown int
}

func (k *key) windowSum() uint64 {
	var s uint64
	for _, b := range k.buckets {
		s += b
	}
	return s
}

// Controller runs the promotion state machine.  Construct with New,
// release with Close.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	keys     map[float64]*key
	active   int // keys holding pool budget: building + compiled + draining
	closed   bool
	overflow bool

	promotions     uint64
	demotions      uint64
	buildsFailed   uint64
	buildsDeferred uint64

	stop chan struct{} // non-nil when the ticker loop runs
	wg   sync.WaitGroup
}

// New returns a running controller.  With cfg.PromoteRPS > 0 and a
// non-negative Tick a background ticker evaluates transitions; Close
// stops it and drains every compiled pool.
func New(cfg Config) (*Controller, error) {
	if cfg.Build == nil {
		return nil, errors.New("tier: Config.Build required")
	}
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, keys: make(map[float64]*key)}
	if cfg.PromoteRPS > 0 && cfg.Tick > 0 {
		c.stop = make(chan struct{})
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			t := time.NewTicker(cfg.Tick)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					c.Poll()
				case <-c.stop:
					return
				}
			}
		}()
	}
	return c, nil
}

// SigmaString is the canonical decimal spelling promotion builds use
// for a float σ — the same spelling a -sigmas flag would carry, so a
// promoted pool's registry key (and disk-cache artifact) is identical
// to a precompiled deployment's.
func SigmaString(sigma float64) string {
	return strconv.FormatFloat(sigma, 'g', -1, 64)
}

// Observe records n samples of μ=0 traffic for sigma — the rate signal
// promotions are decided on.  The serving layer calls it once per
// response, whichever tier served it (a promoted key must keep looking
// hot, or it would demote the moment its traffic left the convolved
// tier).  Tracking is bounded: past the key cap, cold keys are evicted
// to make room and, failing that, the observation is dropped with the
// overflow flag set.
func (c *Controller) Observe(sigma float64, n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	k := c.keys[sigma]
	if k == nil {
		if len(c.keys) >= c.cfg.maxKeys && !c.evictColdLocked() {
			c.overflow = true
			return
		}
		k = &key{sigma: sigma}
		c.keys[sigma] = k
	}
	k.buckets[0] += uint64(n)
	k.total += uint64(n)
}

// evictColdLocked drops one convolved key with an empty window (no
// budget, no pool, no recent traffic); reports whether a slot freed.
func (c *Controller) evictColdLocked() bool {
	for sigma, k := range c.keys {
		if k.state == Convolved && k.windowSum() == 0 {
			delete(c.keys, sigma)
			return true
		}
	}
	return false
}

// Acquire returns sigma's compiled pool and a release function when
// the key is on the compiled tier.  The handle pins the pool: a
// demotion concurrent with the request drains (waits) rather than
// closing the pool mid-draw, so the response is served wholly by the
// tier that admitted it.  release must be called exactly once; it is
// idempotent defensively.
func (c *Controller) Acquire(sigma float64) (Pool, func(), bool) {
	c.mu.Lock()
	k := c.keys[sigma]
	if k == nil || k.state != Compiled {
		c.mu.Unlock()
		return nil, nil, false
	}
	k.refs++
	pool := k.pool
	c.mu.Unlock()
	var once sync.Once
	release := func() {
		once.Do(func() {
			c.mu.Lock()
			k.refs--
			if k.refs == 0 && k.drained != nil {
				close(k.drained)
			}
			c.mu.Unlock()
		})
	}
	return pool, release, true
}

// State reports sigma's current tier state (Convolved for untracked σ).
func (c *Controller) State(sigma float64) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k := c.keys[sigma]; k != nil {
		return k.state
	}
	return Convolved
}

// Poll evaluates promotion and demotion against the current window and
// then rotates the rate buckets.  The background ticker calls it every
// Tick; tests with Tick < 0 drive it directly.
func (c *Controller) Poll() {
	type cand struct {
		k    *key
		rate float64
	}
	var promote []cand
	var demote []*key

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	winSecs := c.cfg.Window.Seconds()
	for _, k := range c.keys {
		rate := float64(k.windowSum()) / winSecs
		if k.cooldown > 0 {
			k.cooldown--
			continue
		}
		switch k.state {
		case Convolved:
			if c.cfg.PromoteRPS > 0 && rate >= c.cfg.PromoteRPS && k.sigma <= c.cfg.MaxSigma {
				promote = append(promote, cand{k, rate})
			}
		case Compiled:
			if rate <= c.cfg.DemoteRPS {
				demote = append(demote, k)
			}
		}
	}
	// Hottest first, so a tight MaxPools budget spends itself where the
	// ns/sample win is largest.
	sort.Slice(promote, func(i, j int) bool { return promote[i].rate > promote[j].rate })
	for _, p := range promote {
		if c.active >= c.cfg.MaxPools {
			break
		}
		if c.cfg.Degraded != nil && c.cfg.Degraded() {
			// The base set is fighting a restart: defer, don't wedge —
			// the key stays convolved and re-candidates next tick.
			c.buildsDeferred++
			break
		}
		c.startBuildLocked(p.k)
	}
	for _, k := range demote {
		c.demoteLocked(k)
	}
	// Rotate: the oldest bucket falls off the window.
	for _, k := range c.keys {
		copy(k.buckets[1:], k.buckets[:rateBuckets-1])
		k.buckets[0] = 0
	}
	c.mu.Unlock()
}

// startBuildLocked moves k to Building and launches the background
// build.  Caller holds c.mu and has checked the budget.
func (c *Controller) startBuildLocked(k *key) {
	k.state = Building
	c.active++
	c.cfg.Logf("tier: promoting σ=%s (building compiled pool)", SigmaString(k.sigma))
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		pool, err := c.buildPool(k.sigma)
		c.finishBuild(k, pool, err)
	}()
}

// buildPool runs the Build hook with panic containment; the
// tier.build.fail chaos point fires here, upstream of the hook, so an
// injected failure exercises the exact production recovery path.
func (c *Controller) buildPool(sigma float64) (pool Pool, err error) {
	defer func() {
		if r := recover(); r != nil {
			pool, err = nil, fmt.Errorf("tier: build panicked: %v", r)
		}
	}()
	faultinject.Fire(faultinject.TierBuildFail, faultinject.AnyShard)
	return c.cfg.Build(SigmaString(sigma))
}

// finishBuild installs a completed build or rolls the key back to the
// convolved tier.  A build finishing after Close closes its pool
// instead of installing it.
func (c *Controller) finishBuild(k *key, pool Pool, err error) {
	c.mu.Lock()
	if err != nil {
		k.state = Convolved
		k.cooldown = rateBuckets // one full window before retrying
		c.active--
		c.buildsFailed++
		c.mu.Unlock()
		c.cfg.Logf("tier: build σ=%s failed, key stays convolved: %v", SigmaString(k.sigma), err)
		return
	}
	if c.closed {
		k.state = Convolved
		c.active--
		c.mu.Unlock()
		pool.Close()
		return
	}
	k.pool = pool
	k.state = Compiled
	c.promotions++
	c.mu.Unlock()
	c.cfg.Logf("tier: σ=%s promoted to compiled tier", SigmaString(k.sigma))
}

// demoteLocked moves k to Draining and spawns the drain: once every
// outstanding Acquire handle releases, the pool closes through its
// engine lifecycle and the key returns to the convolved tier.  Returns
// a channel closed when the demotion fully completes.  Caller holds
// c.mu.
func (c *Controller) demoteLocked(k *key) <-chan struct{} {
	k.state = Draining
	c.demotions++
	ch := make(chan struct{})
	k.drained = ch
	if k.refs == 0 {
		close(ch)
	}
	pool := k.pool
	done := make(chan struct{})
	c.cfg.Logf("tier: demoting σ=%s (draining compiled pool)", SigmaString(k.sigma))
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		<-ch
		pool.Close()
		c.mu.Lock()
		k.pool = nil
		k.drained = nil
		k.state = Convolved
		c.active--
		c.mu.Unlock()
		close(done)
	}()
	return done
}

// ForcePromote synchronously builds and installs sigma's compiled pool
// regardless of its rate (budget and closed-state still apply).  Keys
// already building or compiled return nil without a second build.
// Used by tests and the acceptance harness to pin the promoted surface
// deterministically.
func (c *Controller) ForcePromote(sigma float64) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	k := c.keys[sigma]
	if k == nil {
		if len(c.keys) >= c.cfg.maxKeys && !c.evictColdLocked() {
			c.mu.Unlock()
			return fmt.Errorf("tier: key table full (%d keys)", c.cfg.maxKeys)
		}
		k = &key{sigma: sigma}
		c.keys[sigma] = k
	}
	switch k.state {
	case Building, Compiled:
		c.mu.Unlock()
		return nil
	case Draining:
		c.mu.Unlock()
		return fmt.Errorf("tier: σ=%s is draining; demotion must finish first", SigmaString(sigma))
	}
	if c.active >= c.cfg.MaxPools {
		c.mu.Unlock()
		return fmt.Errorf("tier: compiled-pool budget exhausted (%d)", c.cfg.MaxPools)
	}
	k.state = Building
	c.active++
	c.mu.Unlock()

	pool, err := c.buildPool(sigma)
	c.finishBuild(k, pool, err)
	return err
}

// ForceDemote synchronously demotes sigma: it returns after in-flight
// references drained and the pool closed.  Demoting a key that is not
// compiled is an error.
func (c *Controller) ForceDemote(sigma float64) error {
	c.mu.Lock()
	k := c.keys[sigma]
	if k == nil || k.state != Compiled {
		st := Convolved
		if k != nil {
			st = k.state
		}
		c.mu.Unlock()
		return fmt.Errorf("tier: σ=%s is %s, not compiled", SigmaString(sigma), st)
	}
	done := c.demoteLocked(k)
	c.mu.Unlock()
	<-done
	return nil
}

// KeyInfo is one tracked σ's public snapshot.
type KeyInfo struct {
	Sigma float64
	State State
	// Rate is the sliding-window sample rate (samples/second).
	Rate float64
	// Samples is the lifetime observed sample count.
	Samples uint64
}

// Snapshot lists every tracked key, sorted by σ (stable /metrics and
// /healthz output).
func (c *Controller) Snapshot() []KeyInfo {
	c.mu.Lock()
	out := make([]KeyInfo, 0, len(c.keys))
	winSecs := c.cfg.Window.Seconds()
	for _, k := range c.keys {
		out = append(out, KeyInfo{
			Sigma:   k.sigma,
			State:   k.state,
			Rate:    float64(k.windowSum()) / winSecs,
			Samples: k.total,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Sigma < out[j].Sigma })
	return out
}

// Stats is the controller's counter snapshot for /metrics.
type Stats struct {
	Promotions     uint64 // builds completed and installed
	Demotions      uint64 // drains started
	BuildsFailed   uint64 // builds that errored or panicked
	BuildsDeferred uint64 // promotion ticks skipped while degraded
	Pools          int    // keys holding pool budget (building+compiled+draining)
	MaxPools       int
	TrackedKeys    int
	Overflow       bool // key table hit its cap; rate signal is a lower bound
}

// Stats snapshots the transition counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Promotions:     c.promotions,
		Demotions:      c.demotions,
		BuildsFailed:   c.buildsFailed,
		BuildsDeferred: c.buildsDeferred,
		Pools:          c.active,
		MaxPools:       c.cfg.MaxPools,
		TrackedKeys:    len(c.keys),
		Overflow:       c.overflow,
	}
}

// Config returns the resolved configuration (defaults applied) — the
// serving layer reports it on /healthz.
func (c *Controller) Config() Config { return c.cfg }

// Close stops the ticker, demotes every compiled key, waits for
// in-flight builds and drains, and returns once every pool is closed.
// Closing twice is harmless.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, k := range c.keys {
		if k.state == Compiled {
			c.demoteLocked(k)
		}
	}
	c.mu.Unlock()
	if c.stop != nil {
		close(c.stop)
	}
	c.wg.Wait()
}
