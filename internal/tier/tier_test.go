package tier

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePool is a marker pool: every sample it serves carries its marker
// value, so a response mixing tiers (or generations) is detectable by
// inspection, and a Take after Close is an error rather than silence.
type fakePool struct {
	marker int
	mu     sync.Mutex
	closed bool
	closes int
}

func (p *fakePool) Take(ctx context.Context, dst []int) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return errors.New("fakePool: take after close")
	}
	for i := range dst {
		dst[i] = p.marker
	}
	return nil
}

func (p *fakePool) Close() {
	p.mu.Lock()
	p.closed = true
	p.closes++
	p.mu.Unlock()
}

func (p *fakePool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// waitState polls until sigma reaches want (builds and drains are
// asynchronous even under manual Poll).
func waitState(t *testing.T, c *Controller, sigma float64, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.State(sigma) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("σ=%v never reached %v (still %v)", sigma, want, c.State(sigma))
}

// checkGoroutines asserts the goroutine count settles back to the
// baseline (same pattern as the engine and server leak harnesses).
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after", before, after)
}

func TestStateString(t *testing.T) {
	want := map[State]string{Convolved: "convolved", Building: "building", Compiled: "compiled", Draining: "draining", State(9): "state(9)"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("State(%d).String() = %q, want %q", int32(s), s.String(), str)
		}
	}
}

func TestNewRequiresBuild(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a Config without Build")
	}
}

// TestLifecycleManualPoll drives the full state machine by hand:
// convolved → (hot) building → compiled → (cold) draining → convolved,
// with the pool closed exactly once at the end.
func TestLifecycleManualPoll(t *testing.T) {
	pool := &fakePool{marker: 41}
	var builds atomic.Int64
	c, err := New(Config{
		PromoteRPS: 100,
		Window:     time.Second,
		Tick:       -1, // manual Poll only
		Build: func(sigma string) (Pool, error) {
			builds.Add(1)
			if sigma != "2.5" {
				return nil, fmt.Errorf("unexpected σ spelling %q", sigma)
			}
			return pool, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const sigma = 2.5
	if got := c.State(sigma); got != Convolved {
		t.Fatalf("untracked key state = %v, want convolved", got)
	}
	if _, _, ok := c.Acquire(sigma); ok {
		t.Fatal("Acquire succeeded on the convolved tier")
	}

	// Below threshold: 50 samples over a 1s window < 100/s.
	c.Observe(sigma, 50)
	c.Poll()
	if got := c.State(sigma); got != Convolved {
		t.Fatalf("cold key promoted: state %v", got)
	}

	// Hot: cross the threshold and poll.
	c.Observe(sigma, 200)
	c.Poll()
	waitState(t, c, sigma, Compiled)
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want 1", n)
	}
	st := c.Stats()
	if st.Promotions != 1 || st.Pools != 1 {
		t.Fatalf("stats after promotion: %+v", st)
	}

	p, release, ok := c.Acquire(sigma)
	if !ok {
		t.Fatal("Acquire failed on the compiled tier")
	}
	out := make([]int, 8)
	if err := p.Take(context.Background(), out); err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 41 {
			t.Fatalf("compiled draw returned %d, want marker 41", v)
		}
	}
	release()
	release() // idempotent

	// Cold: flush the window (one rotation per Poll) and demote.
	for i := 0; i < rateBuckets+1; i++ {
		c.Poll()
	}
	waitState(t, c, sigma, Convolved)
	if !pool.isClosed() {
		t.Fatal("demoted pool was not closed")
	}
	st = c.Stats()
	if st.Demotions != 1 || st.Pools != 0 {
		t.Fatalf("stats after demotion: %+v", st)
	}
	pool.mu.Lock()
	closes := pool.closes
	pool.mu.Unlock()
	if closes != 1 {
		t.Fatalf("pool closed %d times, want 1", closes)
	}
}

// TestAcquirePinsPoolAcrossDemotion proves tier-wholeness: a demotion
// concurrent with an in-flight request waits for the reference to
// release before closing the pool.
func TestAcquirePinsPoolAcrossDemotion(t *testing.T) {
	pool := &fakePool{marker: 7}
	c, err := New(Config{
		PromoteRPS: 1, Tick: -1,
		Build: func(string) (Pool, error) { return pool, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ForcePromote(3.25); err != nil {
		t.Fatal(err)
	}

	p, release, ok := c.Acquire(3.25)
	if !ok {
		t.Fatal("Acquire failed after ForcePromote")
	}
	demoted := make(chan error, 1)
	go func() { demoted <- c.ForceDemote(3.25) }()

	// The demotion must be pending, not complete: the handle pins the pool.
	select {
	case err := <-demoted:
		t.Fatalf("ForceDemote returned %v with a reference outstanding", err)
	case <-time.After(50 * time.Millisecond):
	}
	out := make([]int, 4)
	if err := p.Take(context.Background(), out); err != nil {
		t.Fatalf("pinned pool Take failed mid-drain: %v", err)
	}
	if out[0] != 7 {
		t.Fatalf("pinned draw returned %d, want 7", out[0])
	}
	release()
	if err := <-demoted; err != nil {
		t.Fatal(err)
	}
	if !pool.isClosed() {
		t.Fatal("pool not closed after drain completed")
	}
}

// TestBudgetSpendsHottestFirst pins the MaxPools discipline: with one
// slot and two candidates, the hotter σ gets the build.
func TestBudgetSpendsHottestFirst(t *testing.T) {
	c, err := New(Config{
		PromoteRPS: 10, Window: time.Second, Tick: -1, MaxPools: 1,
		Build: func(string) (Pool, error) { return &fakePool{marker: 1}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Observe(2.5, 100)
	c.Observe(3.5, 1000) // hotter
	c.Poll()
	waitState(t, c, 3.5, Compiled)
	if got := c.State(2.5); got != Convolved {
		t.Fatalf("σ=2.5 state %v, want convolved (budget should be spent on σ=3.5)", got)
	}
	if err := c.ForcePromote(2.5); err == nil {
		t.Fatal("ForcePromote succeeded past an exhausted budget")
	}
}

// TestMaxSigmaCapsPromotion: arbitrarily hot keys wider than MaxSigma
// stay convolved (compiling them would cost more than it saves).
func TestMaxSigmaCapsPromotion(t *testing.T) {
	c, err := New(Config{
		PromoteRPS: 10, Window: time.Second, Tick: -1, MaxSigma: 8,
		Build: func(string) (Pool, error) { return &fakePool{}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Observe(300, 1_000_000)
	c.Poll()
	time.Sleep(20 * time.Millisecond)
	if got := c.State(300); got != Convolved {
		t.Fatalf("σ=300 state %v, want convolved (MaxSigma=8)", got)
	}
}

// TestKeyTableEvictionAndOverflow pins the bounded-map discipline: cold
// keys are evicted to admit new ones; with every slot hot, observations
// drop and the overflow flag latches.
func TestKeyTableEvictionAndOverflow(t *testing.T) {
	c, err := New(Config{
		PromoteRPS: 1e12, // never promote; isolate the table mechanics
		Window:     time.Second,
		Tick:       -1,
		Build:      func(string) (Pool, error) { return &fakePool{}, nil },
		maxKeys:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Observe(1.5, 10)
	c.Observe(2.5, 10)
	if st := c.Stats(); st.TrackedKeys != 2 {
		t.Fatalf("tracked = %d, want 2", st.TrackedKeys)
	}
	// Both windows still hot: a third key cannot evict and is dropped.
	c.Observe(3.5, 10)
	st := c.Stats()
	if st.TrackedKeys != 2 || !st.Overflow {
		t.Fatalf("after hot-table insert: %+v, want 2 tracked + overflow", st)
	}
	// Flush the windows; now the cold keys are evictable.
	for i := 0; i < rateBuckets; i++ {
		c.Poll()
	}
	c.Observe(4.5, 10)
	st = c.Stats()
	if st.TrackedKeys != 2 {
		t.Fatalf("eviction failed: %+v", st)
	}
	if c.State(4.5) != Convolved {
		t.Fatal("new key not tracked after eviction")
	}
}

// TestForceDemoteRequiresCompiled covers the error arms of the forced
// transitions.
func TestForceDemoteRequiresCompiled(t *testing.T) {
	c, err := New(Config{Build: func(string) (Pool, error) { return &fakePool{}, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ForceDemote(2.5); err == nil {
		t.Fatal("ForceDemote succeeded on an untracked key")
	}
	if err := c.ForcePromote(2.5); err != nil {
		t.Fatal(err)
	}
	if err := c.ForcePromote(2.5); err != nil {
		t.Fatalf("re-promoting a compiled key should be a no-op, got %v", err)
	}
	if err := c.ForceDemote(2.5); err != nil {
		t.Fatal(err)
	}
}

// TestCloseWithInFlightBuild: a build finishing after Close must close
// its orphan pool instead of installing it, and Close must not return
// before the build goroutine exits.
func TestCloseWithInFlightBuild(t *testing.T) {
	pool := &fakePool{marker: 9}
	gate := make(chan struct{})
	c, err := New(Config{
		PromoteRPS: 10, Window: time.Second, Tick: -1,
		Build: func(string) (Pool, error) { <-gate; return pool, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(2.5, 100)
	c.Poll()
	waitState(t, c, 2.5, Building)

	closed := make(chan struct{})
	go func() { c.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned with a build in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	<-closed
	if !pool.isClosed() {
		t.Fatal("orphan pool from post-Close build was not closed")
	}
	if err := c.ForcePromote(2.5); !errors.Is(err, ErrClosed) {
		t.Fatalf("ForcePromote after Close = %v, want ErrClosed", err)
	}
}

// TestAutomaticTicker runs the background ticker end to end: sustained
// load promotes without any manual Poll, silence demotes.
func TestAutomaticTicker(t *testing.T) {
	before := runtime.NumGoroutine()
	var gen atomic.Int64
	c, err := New(Config{
		PromoteRPS: 100,
		Window:     40 * time.Millisecond,
		Tick:       10 * time.Millisecond,
		Build: func(string) (Pool, error) {
			return &fakePool{marker: int(gen.Add(1))}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const sigma = 2.5
	// Feed observations until the ticker promotes.
	deadline := time.Now().Add(10 * time.Second)
	for c.State(sigma) != Compiled {
		if time.Now().After(deadline) {
			t.Fatalf("never promoted; state %v", c.State(sigma))
		}
		c.Observe(sigma, 50)
		time.Sleep(time.Millisecond)
	}
	// Starve it; the window flushes and the key demotes.
	waitState(t, c, sigma, Convolved)
	st := c.Stats()
	if st.Promotions < 1 || st.Demotions < 1 {
		t.Fatalf("ticker stats: %+v", st)
	}
	c.Close()
	checkGoroutines(t, before)
}

// TestConcurrentTransitions is the tier-transition suite's core pin:
// clients hammer Acquire/Take while promotions and demotions cycle
// underneath them.  Every draw must succeed, every response must be
// uniformly one generation's marker (tier-whole), and no goroutine may
// leak.
func TestConcurrentTransitions(t *testing.T) {
	before := runtime.NumGoroutine()
	var gen atomic.Int64
	c, err := New(Config{
		PromoteRPS: 1, Tick: -1,
		Build: func(string) (Pool, error) {
			return &fakePool{marker: int(gen.Add(1))}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const sigma = 2.5
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var draws, compiledDraws atomic.Int64
	errc := make(chan error, 64)

	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, release, ok := c.Acquire(sigma)
				if !ok {
					continue // convolved tier's turn; nothing to check here
				}
				err := p.Take(context.Background(), out)
				release()
				draws.Add(1)
				if err != nil {
					select {
					case errc <- fmt.Errorf("take: %w", err):
					default:
					}
					continue
				}
				compiledDraws.Add(1)
				first := out[0]
				for _, v := range out {
					if v != first {
						select {
						case errc <- fmt.Errorf("mixed-generation response: %d vs %d", first, v):
						default:
						}
						break
					}
				}
			}
		}()
	}

	for cycle := 0; cycle < 20; cycle++ {
		if err := c.ForcePromote(sigma); err != nil {
			t.Fatalf("cycle %d promote: %v", cycle, err)
		}
		time.Sleep(2 * time.Millisecond)
		if err := c.ForceDemote(sigma); err != nil {
			t.Fatalf("cycle %d demote: %v", cycle, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if compiledDraws.Load() == 0 {
		t.Fatal("no draw ever landed on the compiled tier; the test proved nothing")
	}
	st := c.Stats()
	if st.Promotions != 20 || st.Demotions != 20 {
		t.Fatalf("transition counts: %+v, want 20/20", st)
	}
	c.Close()
	checkGoroutines(t, before)
}

// TestSnapshotSorted pins the stable ordering /metrics and /healthz
// depend on.
func TestSnapshotSorted(t *testing.T) {
	c, err := New(Config{Build: func(string) (Pool, error) { return &fakePool{}, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, s := range []float64{9.5, 1.25, 4} {
		c.Observe(s, 1)
	}
	snap := c.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot length %d, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Sigma >= snap[i].Sigma {
			t.Fatalf("snapshot not sorted: %+v", snap)
		}
	}
	if snap[0].Samples != 1 {
		t.Fatalf("snapshot samples = %d, want 1", snap[0].Samples)
	}
}

func TestSigmaString(t *testing.T) {
	cases := map[float64]string{2.5: "2.5", 2: "2", 6.15543: "6.15543"}
	for f, want := range cases {
		if got := SigmaString(f); got != want {
			t.Errorf("SigmaString(%v) = %q, want %q", f, got, want)
		}
	}
}
