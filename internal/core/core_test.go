package core

import (
	"math"
	"math/rand"
	"testing"

	"ctgauss/internal/bitslice"
	"ctgauss/internal/ddg"
	"ctgauss/internal/prng"
)

func build(t *testing.T, sigma string, n int, min Minimizer) *Built {
	t.Helper()
	b, err := Build(Config{Sigma: sigma, N: n, TailCut: 13, Min: min})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestProgramMatchesAlgorithm1 is the keystone correctness test: on random
// packed inputs, every lane of the compiled constant-time program must
// agree with running Algorithm 1 on that lane's bit string whenever the
// walk terminates within the program's input window.
func TestProgramMatchesAlgorithm1(t *testing.T) {
	for _, cfg := range []struct {
		sigma string
		n     int
		min   Minimizer
	}{
		{"2", 24, MinimizeExact},
		{"2", 24, MinimizeGreedy},
		{"2", 24, MinimizeNone},
		{"1", 20, MinimizeExact},
		{"6.15543", 20, MinimizeExact},
	} {
		b := build(t, cfg.sigma, cfg.n, cfg.min)
		matrix := b.Table.Matrix()
		rng := rand.New(rand.NewSource(99))
		in := make([]uint64, b.Program.NumInputs)
		checked := 0
		for batch := 0; batch < 40; batch++ {
			for i := range in {
				in[i] = rng.Uint64()
			}
			out := b.Program.Run(in, nil)
			for lane := 0; lane < 64; lane++ {
				bits := make([]byte, len(in))
				for i := range in {
					bits[i] = byte(in[i] >> uint(lane) & 1)
				}
				idx := 0
				v, used, err := ddg.Scan(matrix, ddg.BitSourceFunc(func() byte {
					if idx < len(bits) {
						x := bits[idx]
						idx++
						return x
					}
					idx++
					return 0
				}))
				if err != nil || used > len(in) {
					continue // fell off or resolved beyond window: don't-care
				}
				got := bitslice.Unpack(out, lane)
				if got != v {
					t.Fatalf("σ=%s min=%s lane %d: program %d, Alg.1 %d (bits %v)",
						cfg.sigma, cfg.min, lane, got, v, bits[:used])
				}
				checked++
			}
		}
		if checked < 1000 {
			t.Fatalf("σ=%s: too few checked lanes (%d)", cfg.sigma, checked)
		}
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	b := build(t, "2", 32, MinimizeExact)
	if b.LeafCount == 0 || b.SublistCount == 0 || b.TotalCubes == 0 {
		t.Fatalf("stats empty: %+v", b)
	}
	if b.Program.OpCount() == 0 {
		t.Fatal("empty program")
	}
	if b.Tree.Delta != 3 {
		t.Fatalf("Δ = %d, want 3 for σ=2 at n=32", b.Tree.Delta)
	}
}

func TestExactNeverWorseThanGreedyOrNone(t *testing.T) {
	exact := build(t, "2", 32, MinimizeExact)
	greedy := build(t, "2", 32, MinimizeGreedy)
	raw := build(t, "2", 32, MinimizeNone)
	if exact.TotalCubes > greedy.TotalCubes {
		t.Fatalf("exact %d cubes > greedy %d", exact.TotalCubes, greedy.TotalCubes)
	}
	if greedy.TotalCubes > raw.TotalCubes {
		t.Fatalf("greedy %d cubes > raw %d", greedy.TotalCubes, raw.TotalCubes)
	}
	if exact.Program.OpCount() >= raw.Program.OpCount() {
		t.Fatalf("exact program (%d ops) not smaller than raw (%d ops)",
			exact.Program.OpCount(), raw.Program.OpCount())
	}
}

func TestSamplerDistributionSigma2(t *testing.T) {
	b := build(t, "2", 48, MinimizeExact)
	s := b.NewSampler(prng.MustChaCha20([]byte("dist-test")))
	const samples = 1 << 18
	counts := make(map[int]int)
	for i := 0; i < samples; i++ {
		counts[s.Next()]++
	}
	// Compare against the signed distribution.
	for z := -8; z <= 8; z++ {
		want := b.Table.SignedProb(z)
		got := float64(counts[z]) / samples
		if math.Abs(got-want) > 4*math.Sqrt(want/samples)+0.002 {
			t.Errorf("z=%d: freq %.5f, want %.5f", z, got, want)
		}
	}
	// Mean ≈ 0, variance ≈ σ².
	var sum, sq float64
	for z, c := range counts {
		sum += float64(z * c)
		sq += float64(z * z * c)
	}
	mean := sum / samples
	variance := sq/samples - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %.4f", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %.4f, want ≈ 4", variance)
	}
}

func TestSimpleBaselineDistribution(t *testing.T) {
	bs, err := BuildSimple(Config{Sigma: "2", N: 32, TailCut: 13})
	if err != nil {
		t.Fatal(err)
	}
	s := bs.NewSampler(prng.MustChaCha20([]byte("simple")))
	const samples = 1 << 16
	counts := make(map[int]int)
	for i := 0; i < samples; i++ {
		counts[s.Next()]++
	}
	for z := -4; z <= 4; z++ {
		want := bs.Table.SignedProb(z)
		got := float64(counts[z]) / samples
		if math.Abs(got-want) > 0.01 {
			t.Errorf("z=%d: freq %.5f, want %.5f", z, got, want)
		}
	}
	if bs.CubesAfter > bs.CubesBefore {
		t.Fatalf("naive merge grew cube count %d -> %d", bs.CubesBefore, bs.CubesAfter)
	}
}

func TestSplitBeatsSimpleOnOpCount(t *testing.T) {
	// The headline claim, in the cost model: the split/mux program must
	// need significantly fewer word ops than the flat baseline.
	b := build(t, "2", 64, MinimizeExact)
	bs, err := BuildSimple(Config{Sigma: "2", N: 64, TailCut: 13})
	if err != nil {
		t.Fatal(err)
	}
	if b.Program.OpCount() >= bs.Program.OpCount() {
		t.Fatalf("split %d ops, simple %d ops — no improvement",
			b.Program.OpCount(), bs.Program.OpCount())
	}
}

func TestBatchAndNextAgree(t *testing.T) {
	b := build(t, "2", 32, MinimizeExact)
	s1 := b.NewSampler(prng.MustChaCha20([]byte("same")))
	s2 := b.NewSampler(prng.MustChaCha20([]byte("same")))
	batch := make([]int, 64)
	s2.NextBatch(batch)
	for i := 0; i < 64; i++ {
		if v := s1.Next(); v != batch[i] {
			t.Fatalf("sample %d: Next=%d batch=%d", i, v, batch[i])
		}
	}
}

func TestBitsPerBatchMatchesCircuitWidth(t *testing.T) {
	b := build(t, "2", 32, MinimizeExact)
	s := b.NewSampler(prng.MustChaCha20([]byte("bits")))
	s.Next()
	// One refill evaluates Width (the backend's native width) batches,
	// each costing NumInputs input words plus one sign word.
	wantBits := uint64(b.Program.NumInputs+1) * 64 * uint64(s.Width())
	if s.BitsUsed() != wantBits {
		t.Fatalf("BitsUsed = %d, want %d", s.BitsUsed(), wantBits)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{Sigma: "x", N: 16, TailCut: 13}); err == nil {
		t.Fatal("expected error for bad sigma")
	}
	if _, err := Build(Config{Sigma: "2", N: 0, TailCut: 13}); err == nil {
		t.Fatal("expected error for bad precision")
	}
	if _, err := Build(Config{Sigma: "2", N: 16, TailCut: 13, Min: Minimizer(9)}); err == nil {
		t.Fatal("expected error for unknown minimizer")
	}
}

func TestMinimizerString(t *testing.T) {
	if MinimizeExact.String() != "exact" || Minimizer(9).String() != "?" {
		t.Fatal("bad minimizer names")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig("2")
	if c.N != 128 || c.TailCut != 13 {
		t.Fatalf("DefaultConfig = %+v", c)
	}
}

func TestFullPrecisionBuildSigma2(t *testing.T) {
	// The paper's actual Falcon configuration: σ=2, n=128, τ=13.
	b := build(t, "2", 128, MinimizeExact)
	if b.Tree.Delta != 5 {
		t.Fatalf("Δ = %d, want 5 (paper reports 4; see EXPERIMENTS.md)", b.Tree.Delta)
	}
	s := b.NewSampler(prng.MustChaCha20([]byte("full")))
	var sq float64
	const samples = 1 << 16
	for i := 0; i < samples; i++ {
		v := s.Next()
		sq += float64(v * v)
	}
	variance := sq / samples
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("variance = %.3f, want ≈ 4", variance)
	}
}

// TestParallelMinimizationDeterministic checks the tentpole invariant of
// the parallel build: fanning the (sublist, bit) minimizations across
// workers must produce bit-identical artefacts to the serial path, for
// every minimizer and regardless of worker count.
func TestParallelMinimizationDeterministic(t *testing.T) {
	for _, min := range []Minimizer{MinimizeExact, MinimizeGreedy, MinimizeNone} {
		serial, err := Build(Config{Sigma: "2", N: 64, TailCut: 13, Min: min, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 16} {
			par, err := Build(Config{Sigma: "2", N: 64, TailCut: 13, Min: min, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Sublists) != len(serial.Sublists) {
				t.Fatalf("min=%v workers=%d: %d sublists, want %d", min, workers, len(par.Sublists), len(serial.Sublists))
			}
			for i, sf := range par.Sublists {
				want := serial.Sublists[i]
				if sf.K != want.K || len(sf.SOPs) != len(want.SOPs) {
					t.Fatalf("min=%v workers=%d: sublist %d shape mismatch", min, workers, i)
				}
				for bit, sop := range sf.SOPs {
					ws := want.SOPs[bit]
					if sop.NVars != ws.NVars || len(sop.Cubes) != len(ws.Cubes) {
						t.Fatalf("min=%v workers=%d: sublist %d bit %d SOP mismatch", min, workers, i, bit)
					}
					for ci, c := range sop.Cubes {
						if c != ws.Cubes[ci] {
							t.Fatalf("min=%v workers=%d: sublist %d bit %d cube %d differs", min, workers, i, bit, ci)
						}
					}
				}
			}
			if got, want := par.Program.OpCount(), serial.Program.OpCount(); got != want {
				t.Fatalf("min=%v workers=%d: op count %d, want %d", min, workers, got, want)
			}
			for i, in := range par.Program.Code {
				if in != serial.Program.Code[i] {
					t.Fatalf("min=%v workers=%d: instruction %d differs", min, workers, i)
				}
			}
		}
	}
}
