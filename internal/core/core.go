// Package core implements the paper's primary contribution: the generic
// pipeline (Fig. 4) that instantiates a constant-time bitsliced discrete
// Gaussian sampler for an arbitrary standard deviation and precision.
//
// Stages, mirroring the flowchart:
//
//  1. compute the n-bit probability matrix of D_σ (internal/gaussian),
//  2. unroll the DDG tree and enumerate the list L of sample-generating
//     random bit strings x^i (0/1)^j 0 1^k (internal/ddg),
//  3. sort L by k and split into sublists l_κ; build the Δ-variable truth
//     table of every output bit of every sublist,
//  4. minimize each f^{ι,κ}_Δ exactly (Quine-McCluskey + Petrick, the
//     stand-in for Espresso -Dso -S1),
//  5. stitch the minimized functions with the constant-time mux chain of
//     Eqn 2 and compile to a straight-line bitsliced program.
//
// BuildSimple provides the prior-work baseline [21]: one full-width cube
// per DDG leaf, naively merged, compiled to a flat two-level program with
// no prefix sharing.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ctgauss/internal/bitslice"
	"ctgauss/internal/boolmin"
	"ctgauss/internal/ddg"
	"ctgauss/internal/gaussian"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

// Minimizer selects the per-sublist two-level minimization strategy.
type Minimizer int

// Minimization strategies.
const (
	// MinimizeExact uses Quine-McCluskey prime implicants with Petrick's
	// exact cover — the analogue of the paper's Espresso -Dso -S1.
	MinimizeExact Minimizer = iota
	// MinimizeGreedy uses greedy prime-implicant cover (ablation point).
	MinimizeGreedy
	// MinimizeNone keeps one cube per leaf (ablation point; still correct).
	MinimizeNone
)

func (m Minimizer) String() string {
	switch m {
	case MinimizeExact:
		return "exact"
	case MinimizeGreedy:
		return "greedy"
	case MinimizeNone:
		return "none"
	}
	return "?"
}

// Config describes the sampler to build.
type Config struct {
	Sigma   string  // decimal standard deviation, e.g. "2" or "6.15543"
	N       int     // precision bits (the paper's Falcon runs use 128)
	TailCut float64 // τ (the paper's Falcon runs use 13)
	Min     Minimizer
	// Workers bounds the goroutines used for the per-sublist Boolean
	// minimization: 0 means runtime.NumCPU(), 1 forces the serial path.
	// It affects build time only, never the built artefact.
	Workers int
}

// DefaultConfig returns the paper's Falcon-experiment configuration for a
// given σ.
func DefaultConfig(sigma string) Config {
	return Config{Sigma: sigma, N: 128, TailCut: gaussian.DefaultTailCut, Min: MinimizeExact}
}

// Built is a fully-instantiated constant-time sampler plus every
// intermediate artefact, so tools and tests can inspect the pipeline.
type Built struct {
	Config   Config
	Table    *gaussian.Table
	Tree     *ddg.Tree
	Sublists []bitslice.SublistFuncs
	Program  *bitslice.Program
	// Stats
	LeafCount    int
	SublistCount int
	TotalCubes   int
	TotalLits    int

	optOnce sync.Once
	opt     *bitslice.Optimized
}

// Build runs the full pipeline of Fig. 4.
func Build(cfg Config) (*Built, error) {
	params, err := gaussian.NewParams(cfg.Sigma, cfg.N, cfg.TailCut)
	if err != nil {
		return nil, err
	}
	table, err := gaussian.NewTable(params)
	if err != nil {
		return nil, err
	}
	tree, err := ddg.Unroll(table)
	if err != nil {
		return nil, err
	}
	if err := tree.VerifyTheorem1(); err != nil {
		return nil, err
	}
	valueBits := tree.MaxValueBits()
	subs, err := MinimizeSublistsWorkers(tree, cfg.Min, cfg.Workers)
	if err != nil {
		return nil, err
	}
	prog, err := bitslice.CompileMux(subs, tree.Delta, valueBits, table.Support)
	if err != nil {
		return nil, err
	}
	b := &Built{
		Config:   cfg,
		Table:    table,
		Tree:     tree,
		Sublists: subs,
		Program:  prog,
	}
	b.LeafCount = len(tree.Leaves)
	b.SublistCount = len(subs)
	for _, s := range subs {
		for _, f := range s.SOPs {
			b.TotalCubes += len(f.Cubes)
			b.TotalLits += f.Literals()
		}
	}
	return b, nil
}

// MinimizeSublists converts every sublist l_κ into minimized per-bit
// Boolean functions f^{ι,κ}_Δ over the Δ payload variables, using all
// available CPUs.
func MinimizeSublists(tree *ddg.Tree, min Minimizer) ([]bitslice.SublistFuncs, error) {
	return MinimizeSublistsWorkers(tree, min, 0)
}

// MinimizeSublistsWorkers is MinimizeSublists with an explicit worker
// bound (0 = runtime.NumCPU(), 1 = serial).  Each f^{ι,κ}_Δ is an
// independent two-level minimization, so the (sublist, bit) grid fans out
// across workers; results are merged into position-indexed slices, so the
// output is identical to the serial path regardless of scheduling.
func MinimizeSublistsWorkers(tree *ddg.Tree, min Minimizer, workers int) ([]bitslice.SublistFuncs, error) {
	if min != MinimizeExact && min != MinimizeGreedy && min != MinimizeNone {
		return nil, fmt.Errorf("core: unknown minimizer %d", min)
	}
	delta := tree.Delta
	valueBits := tree.MaxValueBits()
	subs := tree.Sublists()
	out := make([]bitslice.SublistFuncs, len(subs))
	values := make([][]int, len(subs))
	for i, sub := range subs {
		v, err := sublistValueTable(sub, delta)
		if err != nil {
			return nil, err
		}
		values[i] = v
		out[i] = bitslice.SublistFuncs{K: sub.K, SOPs: make([]boolmin.SOP, valueBits)}
	}

	type job struct{ si, bit int }
	jobs := make([]job, 0, len(subs)*valueBits)
	for si := range subs {
		for bit := 0; bit < valueBits; bit++ {
			jobs = append(jobs, job{si, bit})
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	errs := make([]error, len(jobs))
	run := func(j job) error {
		tt := boolmin.NewTruthTable(delta)
		for a, v := range values[j.si] {
			switch {
			case v < 0:
				tt.Out[a] = boolmin.DC
			case v>>uint(j.bit)&1 == 1:
				tt.Out[a] = boolmin.One
			default:
				tt.Out[a] = boolmin.Zero
			}
		}
		var sop boolmin.SOP
		switch min {
		case MinimizeExact:
			sop = boolmin.MinimizeExact(tt)
		case MinimizeGreedy:
			sop = boolmin.MinimizeGreedy(tt)
		case MinimizeNone:
			sop = rawSOP(tt)
		}
		if !tt.Equivalent(sop) {
			return fmt.Errorf("core: minimized SOP diverges from truth table (sublist κ=%d bit %d)", subs[j.si].K, j.bit)
		}
		out[j.si].SOPs[j.bit] = sop
		return nil
	}
	// A failure dooms the whole build, so remaining jobs abort early
	// rather than grinding through the rest of the minimization grid.
	var failed atomic.Bool
	if workers == 1 {
		for ji, j := range jobs {
			if errs[ji] = run(j); errs[ji] != nil {
				break
			}
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for ji := range next {
					if failed.Load() {
						continue
					}
					if errs[ji] = run(jobs[ji]); errs[ji] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		for ji := range jobs {
			next <- ji
		}
		close(next)
		wg.Wait()
	}
	// Report the lowest-indexed recorded error so the serial path is
	// fully deterministic (parallel runs may abort at different points).
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sublistValueTable enumerates the 2^Δ payload assignments of a sublist:
// value ≥ 0 where a leaf determines the sample, -1 (don't-care) where the
// walk falls off the truncated tree.
func sublistValueTable(sub ddg.Sublist, delta int) ([]int, error) {
	size := 1 << uint(delta)
	values := make([]int, size)
	for i := range values {
		values[i] = -1
	}
	for _, lf := range sub.Leaves {
		payload := lf.Path[lf.K+1:]
		if len(payload) != lf.J {
			return nil, fmt.Errorf("core: leaf payload length %d != J %d", len(payload), lf.J)
		}
		var base uint64
		for v, b := range payload {
			if b == 1 {
				base |= 1 << uint(v)
			}
		}
		free := delta - lf.J
		for ext := 0; ext < 1<<uint(free); ext++ {
			a := base | uint64(ext)<<uint(lf.J)
			if values[a] >= 0 && values[a] != lf.Value {
				return nil, fmt.Errorf("core: conflicting sublist assignments (κ=%d)", sub.K)
			}
			values[a] = lf.Value
		}
	}
	return values, nil
}

// rawSOP emits one full cube per ON minterm (no minimization): the
// MinimizeNone ablation.
func rawSOP(tt *boolmin.TruthTable) boolmin.SOP {
	full := uint64(1)<<uint(tt.NVars) - 1
	var cubes []boolmin.Cube
	for _, m := range tt.Minterms(boolmin.One) {
		cubes = append(cubes, boolmin.Cube{Value: m, Mask: full})
	}
	return boolmin.SOP{NVars: tt.NVars, Cubes: cubes}
}

// Optimized returns the register-allocated evaluation form of the built
// circuit, compiled once and shared by every sampler instance.
func (b *Built) Optimized() *bitslice.Optimized {
	b.optOnce.Do(func() { b.opt = bitslice.Optimize(b.Program) })
	return b.opt
}

// NewSampler instantiates a constant-time sampler instance over the built
// program with its own PRNG state, at the active SIMD backend's native
// evaluation width (the stream layout therefore depends on the host's
// best backend; width-stable consumers use NewWideSampler).
func (b *Built) NewSampler(src prng.Source) *sampler.Bitsliced {
	return sampler.NewBitslicedOpt("bitsliced-split("+b.Config.Sigma+")", b.Optimized(), src)
}

// NewWideSampler instantiates a sampler at an explicit evaluation width
// (1 = the paper's per-batch form, 8/16 = the SIMD kernel widths).
func (b *Built) NewWideSampler(src prng.Source, w int) *sampler.Bitsliced {
	return sampler.NewBitslicedWidth(fmt.Sprintf("bitsliced-wide%d(%s)", w, b.Config.Sigma), b.Optimized(), src, w)
}

// BuiltSimple is the [21]-baseline artefact set.
type BuiltSimple struct {
	Config  Config
	Table   *gaussian.Table
	Tree    *ddg.Tree
	Program *bitslice.Program
	// CubesBefore/After record the naive-merge effectiveness.
	CubesBefore, CubesAfter int

	optOnce sync.Once
	opt     *bitslice.Optimized
}

// Optimized returns the register-allocated evaluation form of the
// baseline circuit, compiled once — worthwhile here especially, since the
// flat two-level programs run to ~10⁵ instructions.
func (b *BuiltSimple) Optimized() *bitslice.Optimized {
	b.optOnce.Do(func() { b.opt = bitslice.Optimize(b.Program) })
	return b.opt
}

// BuildSimple reproduces the prior work's flow: Boolean functions over the
// full n input bits (one cube per leaf), simplified only by naive
// distance-1 merging, evaluated as a flat two-level program without
// cross-term sharing.
func BuildSimple(cfg Config) (*BuiltSimple, error) { return buildSimple(cfg, false) }

// BuildSimpleCSE is the ablation variant of BuildSimple where the flat
// program may share sub-products across terms.
func BuildSimpleCSE(cfg Config) (*BuiltSimple, error) { return buildSimple(cfg, true) }

func buildSimple(cfg Config, cse bool) (*BuiltSimple, error) {
	params, err := gaussian.NewParams(cfg.Sigma, cfg.N, cfg.TailCut)
	if err != nil {
		return nil, err
	}
	table, err := gaussian.NewTable(params)
	if err != nil {
		return nil, err
	}
	tree, err := ddg.Unroll(table)
	if err != nil {
		return nil, err
	}
	valueBits := tree.MaxValueBits()
	numInputs := 0
	for _, lf := range tree.Leaves {
		if len(lf.Path) > numInputs {
			numInputs = len(lf.Path)
		}
	}
	perBit := make([][]boolmin.WideCube, valueBits)
	before := 0
	for bit := 0; bit < valueBits; bit++ {
		var cubes []boolmin.WideCube
		for _, lf := range tree.Leaves {
			if lf.Value>>uint(bit)&1 == 0 {
				continue
			}
			c := boolmin.NewWideCube(numInputs)
			for i, pb := range lf.Path {
				c.SetLiteral(i, pb)
			}
			cubes = append(cubes, c)
		}
		before += len(cubes)
		perBit[bit] = boolmin.SimplifyWide(cubes)
	}
	after := 0
	for _, cs := range perBit {
		after += len(cs)
	}
	prog, err := bitslice.CompileFlat(perBit, numInputs, valueBits, table.Support, cse)
	if err != nil {
		return nil, err
	}
	return &BuiltSimple{
		Config: cfg, Table: table, Tree: tree, Program: prog,
		CubesBefore: before, CubesAfter: after,
	}, nil
}

// NewSampler instantiates the baseline sampler.
func (b *BuiltSimple) NewSampler(src prng.Source) *sampler.Bitsliced {
	return sampler.NewBitslicedOpt("bitsliced-simple("+b.Config.Sigma+")", b.Optimized(), src)
}
