// Package ntt implements the negacyclic number-theoretic transform modulo
// the Falcon prime q = 12289 for ring degrees N ∈ {2,…,2048}, used for
// exact arithmetic in Z_q[x]/(x^N+1): public-key computation (h = g·f⁻¹)
// and signature verification (s1 = c − s2·h).
package ntt

import (
	"fmt"
	"sync"
)

// Q is the Falcon modulus, 12289 = 3·2^12 + 1.
const Q = 12289

// primitiveRoot is a generator of Z_Q^* (11 generates the full group of
// order 12288; verified by the package tests).
const primitiveRoot = 11

// ctx holds precomputed twiddle factors for one ring degree.
type ctx struct {
	n       int
	psiRev  []uint32 // ψ^bitrev(i), ψ a primitive 2N-th root
	ipsiRev []uint32 // ψ^-bitrev(i)
	nInv    uint32
}

var (
	ctxMu sync.Mutex
	ctxBy = map[int]*ctx{}
)

func modPow(b, e, m uint64) uint64 {
	r := uint64(1)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			r = r * b % m
		}
		b = b * b % m
		e >>= 1
	}
	return r
}

func bitrev(x, bits uint) uint {
	var r uint
	for i := uint(0); i < bits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

func getCtx(n int) *ctx {
	ctxMu.Lock()
	defer ctxMu.Unlock()
	if c, ok := ctxBy[n]; ok {
		return c
	}
	if n < 2 || n&(n-1) != 0 || (Q-1)%(2*n) != 0 {
		panic(fmt.Sprintf("ntt: unsupported ring degree %d", n))
	}
	// ψ = g^((Q-1)/2N) has order exactly 2N; ψ^N = -1 gives negacyclic.
	psi := modPow(primitiveRoot, uint64((Q-1)/(2*n)), Q)
	ipsi := modPow(psi, Q-2, Q)
	bits := uint(0)
	for 1<<bits < n {
		bits++
	}
	c := &ctx{n: n, psiRev: make([]uint32, n), ipsiRev: make([]uint32, n)}
	for i := 0; i < n; i++ {
		r := bitrev(uint(i), bits)
		c.psiRev[i] = uint32(modPow(psi, uint64(r), Q))
		c.ipsiRev[i] = uint32(modPow(ipsi, uint64(r), Q))
	}
	c.nInv = uint32(modPow(uint64(n), Q-2, Q))
	ctxBy[n] = c
	return c
}

// Forward transforms a in place to the NTT domain (negacyclic, ψ-folded,
// bit-reversed ordering internally — only Pointwise and Inverse consume
// it).  Coefficients must be < Q.
func Forward(a []uint32) {
	c := getCtx(len(a))
	n := len(a)
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			j1 := 2 * i * t
			s := uint64(c.psiRev[m+i])
			for j := j1; j < j1+t; j++ {
				u := uint64(a[j])
				v := uint64(a[j+t]) * s % Q
				a[j] = uint32((u + v) % Q)
				a[j+t] = uint32((u + Q - v) % Q)
			}
		}
	}
}

// Inverse transforms a in place back to coefficient representation.
func Inverse(a []uint32) {
	c := getCtx(len(a))
	n := len(a)
	t := 1
	for m := n; m > 1; m >>= 1 {
		j1 := 0
		h := m >> 1
		for i := 0; i < h; i++ {
			s := uint64(c.ipsiRev[h+i])
			for j := j1; j < j1+t; j++ {
				u, v := uint64(a[j]), uint64(a[j+t])
				a[j] = uint32((u + v) % Q)
				a[j+t] = uint32((u + Q - v) % Q * s % Q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range a {
		a[i] = uint32(uint64(a[i]) * uint64(c.nInv) % Q)
	}
}

// Pointwise multiplies two NTT-domain vectors into dst (dst may alias).
func Pointwise(dst, a, b []uint32) {
	for i := range dst {
		dst[i] = uint32(uint64(a[i]) * uint64(b[i]) % Q)
	}
}

// MulPoly returns the negacyclic product of coefficient vectors a and b.
func MulPoly(a, b []uint32) []uint32 {
	x := append([]uint32(nil), a...)
	y := append([]uint32(nil), b...)
	Forward(x)
	Forward(y)
	Pointwise(x, x, y)
	Inverse(x)
	return x
}

// Inv returns f^{-1} in Z_q[x]/(x^N+1), or an error when f is not
// invertible (some NTT coefficient is zero).
func Inv(f []uint32) ([]uint32, error) {
	x := append([]uint32(nil), f...)
	Forward(x)
	for i, v := range x {
		if v == 0 {
			return nil, fmt.Errorf("ntt: polynomial not invertible (zero at NTT slot %d)", i)
		}
		x[i] = uint32(modPow(uint64(v), Q-2, Q))
	}
	Inverse(x)
	return x, nil
}

// Invertible reports whether f is invertible mod (q, x^N+1).
func Invertible(f []uint32) bool {
	x := append([]uint32(nil), f...)
	Forward(x)
	for _, v := range x {
		if v == 0 {
			return false
		}
	}
	return true
}

// Center maps a residue mod Q to the symmetric interval (−Q/2, Q/2].
func Center(v uint32) int32 {
	x := int32(v % Q)
	if x > Q/2 {
		x -= Q
	}
	return x
}

// FromSigned reduces a signed coefficient into [0, Q).
func FromSigned(v int64) uint32 {
	v %= Q
	if v < 0 {
		v += Q
	}
	return uint32(v)
}
