package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimitiveRootOrder(t *testing.T) {
	// 11 must have order exactly Q-1 = 12288 = 2^12 · 3.
	if modPow(primitiveRoot, Q-1, Q) != 1 {
		t.Fatal("not a root of unity")
	}
	for _, p := range []uint64{2, 3} {
		if modPow(primitiveRoot, (Q-1)/p, Q) == 1 {
			t.Fatalf("order divides (Q-1)/%d — not primitive", p)
		}
	}
}

func TestPsiIsNegacyclic(t *testing.T) {
	for _, n := range []int{8, 256, 512, 1024} {
		psi := modPow(primitiveRoot, uint64((Q-1)/(2*n)), Q)
		if modPow(psi, uint64(n), Q) != Q-1 {
			t.Fatalf("n=%d: ψ^n != -1", n)
		}
	}
}

func randPoly(rng *rand.Rand, n int) []uint32 {
	f := make([]uint32, n)
	for i := range f {
		f[i] = uint32(rng.Intn(Q))
	}
	return f
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 64, 256, 512, 1024} {
		f := randPoly(rng, n)
		g := append([]uint32(nil), f...)
		Forward(g)
		Inverse(g)
		for i := range f {
			if f[i] != g[i] {
				t.Fatalf("n=%d: roundtrip mismatch at %d", n, i)
			}
		}
	}
}

func naiveNegacyclic(a, b []uint32) []uint32 {
	n := len(a)
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := int64(a[i]) * int64(b[j]) % Q
			k := i + j
			if k >= n {
				out[k-n] -= v
			} else {
				out[k] += v
			}
		}
	}
	res := make([]uint32, n)
	for i, v := range out {
		res[i] = FromSigned(v)
	}
	return res
}

func TestMulPolyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 32, 128} {
		a, b := randPoly(rng, n), randPoly(rng, n)
		want := naiveNegacyclic(a, b)
		got := MulPoly(a, b)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d: product mismatch at %d: %d vs %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestInvProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	for trial := 0; trial < 5; trial++ {
		f := randPoly(rng, n)
		inv, err := Inv(f)
		if err != nil {
			continue // rare non-invertible draw
		}
		prod := MulPoly(f, inv)
		if prod[0] != 1 {
			t.Fatalf("f·f⁻¹ constant term = %d", prod[0])
		}
		for i := 1; i < n; i++ {
			if prod[i] != 0 {
				t.Fatalf("f·f⁻¹ coeff %d = %d", i, prod[i])
			}
		}
	}
}

func TestNonInvertibleDetected(t *testing.T) {
	f := make([]uint32, 8) // zero polynomial
	if Invertible(f) {
		t.Fatal("zero reported invertible")
	}
	if _, err := Inv(f); err == nil {
		t.Fatal("expected error for zero polynomial")
	}
}

func TestCenter(t *testing.T) {
	if Center(0) != 0 || Center(1) != 1 || Center(Q-1) != -1 || Center(Q/2) != Q/2 {
		t.Fatal("Center wrong")
	}
	if Center(Q/2+1) != -(Q / 2) {
		t.Fatalf("Center(Q/2+1) = %d", Center(Q/2+1))
	}
}

func TestFromSigned(t *testing.T) {
	f := func(v int64) bool {
		r := FromSigned(v)
		if r >= Q {
			return false
		}
		return (int64(r)-v)%Q == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 64
	a, b := randPoly(rng, n), randPoly(rng, n)
	sum := make([]uint32, n)
	for i := range sum {
		sum[i] = (a[i] + b[i]) % Q
	}
	Forward(a)
	Forward(b)
	Forward(sum)
	for i := range sum {
		if sum[i] != (a[i]+b[i])%Q {
			t.Fatalf("NTT not linear at %d", i)
		}
	}
}

func TestUnsupportedDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Forward(make([]uint32, 3))
}
