package convolve

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// A plan fixes how one target σ is synthesized from the base set.  The
// proposal is a Micciancio–Walter-style convolution ladder: a binary
// tree whose leaves draw base members and whose internal nodes combine
// subtrees as a·L + R, flattened into the linear form
//
//	x = Σᵢ cᵢ·xᵢ   (xᵢ a base draw, cᵢ the product of a's on its path)
//
// so one trial is a fixed sequence of base draws and a branch-free
// dot product.  The proposal width is σ_p = √(Σ cᵢ²·σ(baseᵢ)²) ≥ σ,
// chosen minimal over a precomputed recipe menu, and the bimodal
// randomized-rounding step (lanes.go) reshapes the dominating proposal
// to exactly D_{ℤ,σ,μ}.
//
// Soundness of the combine: scaling a lattice Gaussian puts a·L on the
// coarse grid aℤ, which the sibling R — a width-w_R Gaussian supported
// on all of ℤ — smooths back to a Gaussian on ℤ provided w_R ≥ a (the
// smoothing condition; the residual non-Gaussianity is then
// ≈ 2·exp(−2π²·(w_R/a)²) ≤ 2·e^(−2π²) ≈ 5·10⁻⁹ per node, far below
// anything a statistical test can resolve).  Every recipe in the menu
// respects w_R ≥ a at every node; the naive flat combine k·X + Y with
// k ≫ σ_Y — which puts visible bumps at the kℤ grid — is therefore
// unrepresentable by construction.
//
// Plans depend only on the public request parameter σ, never on sampled
// values, so plan selection may branch freely; selections are cached
// per σ bits in the sampler.

// term is one flattened ladder leaf: coefficient × base member.
type term struct {
	Base  int   // base-set index
	Coeff int64 // positive integer coefficient (product of path a's)
}

type plan struct {
	Sigma  float64 // target σ
	SigmaP float64 // proposal width ≥ σ
	Terms  []term  // draw list of one trial, fixed order

	invTwoSigmaSq  float64 // 1/(2σ²)
	invTwoSigmaPSq float64 // 1/(2σ_p²)
}

func (p *plan) String() string {
	parts := make([]string, len(p.Terms))
	for i, t := range p.Terms {
		parts[i] = fmt.Sprintf("%d·b%d", t.Coeff, t.Base)
	}
	return fmt.Sprintf("σ=%g ← %s (σ_p=%g)", p.Sigma, strings.Join(parts, " + "), p.SigmaP)
}

// recipe is one menu entry: a ladder tree with its achieved width.
// Leaves hold a base index; internal nodes combine a·left + right.
type recipe struct {
	width float64
	draws int
	a     int64
	left  *recipe // nil at leaves
	right *recipe
	base  int // leaf base index
}

// flatten emits the recipe's terms, multiplying coefficients down the
// coarse edges.
func (rc *recipe) flatten(mult int64, out []term) []term {
	if rc.left == nil {
		return append(out, term{Base: rc.base, Coeff: mult})
	}
	out = rc.left.flatten(mult*rc.a, out)
	return rc.right.flatten(mult, out)
}

// Menu construction bounds: recipes are bucketed geometrically (2%
// buckets, so overshoot from menu granularity is ≤ ~2% plus structural
// gaps), coefficients per node and draws per trial are capped, and a
// few breadth rounds suffice because widths grow by up to maxNodeCoeff
// per round.
const (
	menuBucketRatio = 1.02
	menuMaxDraws    = 48
	maxNodeCoeff    = 16
	menuRounds      = 4
)

// buildMenu enumerates admissible ladder recipes over the base widths up
// to ~1.5× maxSigma and keeps, per 2% width bucket, the cheapest (then
// narrowest) recipe, sorted by width.
func buildMenu(baseSigmas []float64, maxSigma float64) []*recipe {
	limit := maxSigma * 1.5
	logRatio := math.Log(menuBucketRatio)
	bucketOf := func(w float64) int { return int(math.Log(w) / logRatio) }
	best := make(map[int]*recipe)
	consider := func(rc *recipe) {
		b := bucketOf(rc.width)
		cur, ok := best[b]
		if !ok || rc.draws < cur.draws || (rc.draws == cur.draws && rc.width < cur.width) {
			best[b] = rc
		}
	}
	for bi, bs := range baseSigmas {
		consider(&recipe{width: bs, draws: 1, base: bi})
	}
	// Map iteration order is randomized; expansion must visit recipes in
	// a fixed order so tie-breaks — and therefore the selected trees and
	// their draw order — are identical in every process.
	snapshot := func() []*recipe {
		buckets := make([]int, 0, len(best))
		for b := range best {
			buckets = append(buckets, b)
		}
		sort.Ints(buckets)
		cur := make([]*recipe, 0, len(buckets))
		for _, b := range buckets {
			cur = append(cur, best[b])
		}
		return cur
	}
	for round := 0; round < menuRounds; round++ {
		cur := snapshot()
		for _, l := range cur {
			for _, r := range cur {
				amax := int64(r.width) // smoothing condition: a ≤ w_R
				if amax > maxNodeCoeff {
					amax = maxNodeCoeff
				}
				draws := l.draws + r.draws
				if draws > menuMaxDraws {
					continue
				}
				for a := int64(1); a <= amax; a++ {
					w := math.Sqrt(float64(a*a)*l.width*l.width + r.width*r.width)
					if w > limit {
						break
					}
					consider(&recipe{width: w, draws: draws, a: a, left: l, right: r})
				}
			}
		}
	}
	return snapshot()
}

// planFor selects the narrowest dominating recipe for sigma.  The menu
// always contains the base leaves, the smallest leaf dominates every σ
// below it, and the sampler clamps its MaxSigma to the widest recipe at
// construction, so a dominating recipe exists for every admissible σ.
func planFor(sigma float64, menu []*recipe) plan {
	i := sort.Search(len(menu), func(i int) bool { return menu[i].width >= sigma })
	if i == len(menu) {
		// Unreachable for admissible σ (see the MaxSigma clamp in New);
		// serving a narrower proposal would emit the wrong distribution,
		// so fail loudly rather than fall back.
		panic(fmt.Sprintf("convolve: no recipe dominates σ=%g (menu tops out at %g)", sigma, menu[len(menu)-1].width))
	}
	rc := menu[i]
	p := plan{
		Sigma:  sigma,
		SigmaP: rc.width,
		Terms:  rc.flatten(1, nil),
	}
	p.invTwoSigmaSq = 1 / (2 * sigma * sigma)
	p.invTwoSigmaPSq = 1 / (2 * p.SigmaP * p.SigmaP)
	return p
}

// Tail bound used by ctExpThreshold's exact-conversion argument: the
// rejection exponent is t = (z−r)²/(2σ²) − v²/(2σ_p²) ≤ (v+2)²/(2σ²)
// with v ≤ 13·Σcᵢσᵢ ≤ 13·√(draws)·σ_p (base samplers are τ=13
// tail-cut, Cauchy–Schwarz over ≤ menuMaxDraws terms) and σ_p bounded
// by a small multiple of σ over the admissible range, so t < ~10⁵ —
// far inside the exact float64→uint64 conversion range (< 2⁵²), with
// any over-wide 2^−q shift collapsing to the correct 0 by Go's shift
// semantics.
