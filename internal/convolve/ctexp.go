package convolve

import (
	"math"
	"math/bits"
)

// This file implements the constant-time acceptance threshold of the
// randomized-rounding step: thr = ⌊2⁶³·exp(−t)⌋ for t ≥ 0, computed with
// branch-free integer arithmetic so the rounding path never branches or
// indexes memory on secret-derived values.  math.Exp is unsuitable here:
// its range reduction takes value-dependent early exits, and the whole
// point of the combine/round path is that every instruction executed is
// independent of the candidate sample.
//
// Method: t/ln2 = q + f with q = ⌊t/ln2⌋ and f ∈ [0,1), so
// exp(−t) = 2^−q · 2^−f.  2^−f = exp(−f·ln2) is evaluated in Q62
// fixed point by a Horner recurrence over the Taylor series of exp(−x),
//
//	a_d = 1,  a_k = 1 − (x/k)·a_{k+1},  exp(−x) ≈ a_1,
//
// whose partial values all stay in (0, 1] for x ∈ [0, ln2), so the whole
// evaluation runs in unsigned Q62 with two widening multiplies per term
// and no sign handling.  Divisions by the loop index go through
// precomputed Q62 reciprocals, so no hardware divide (data-dependent
// latency on most cores) is ever issued.  The final 2^−q lands as a
// single variable shift; Go defines over-wide unsigned shifts to yield 0,
// which the compiler lowers branch-free.
//
// Accuracy: the degree-16 Taylor tail is < (ln2)¹⁷/17! ≈ 2·10⁻¹⁷ and each
// Q62 multiply truncates below 2⁻⁶², so the threshold is exact to well
// under one part in 10¹⁵ — far below anything a statistical acceptance
// test at any feasible sample count can resolve.

// ctExpDegree is the Taylor depth of the Q62 evaluation.
const ctExpDegree = 16

// q62One is 1.0 in Q62 fixed point.
const q62One = uint64(1) << 62

// q62Ln2 is ln2 in Q62 fixed point (⌊ln2·2⁶²⌋).
const q62Ln2 = uint64(0x2c5c85fdf473de6a)

// invLn2 is 1/ln2 (float64, for the range reduction t → t/ln2).
const invLn2 = 1 / math.Ln2

// q62Recip[k] = ⌊2⁶²/k⌋ for the Horner divisions (index 0 unused).
var q62Recip = func() [ctExpDegree + 1]uint64 {
	var r [ctExpDegree + 1]uint64
	for k := 1; k <= ctExpDegree; k++ {
		r[k] = q62One / uint64(k)
	}
	return r
}()

// mulQ62 returns the Q62 product a·b/2⁶² via a 128-bit widening multiply.
func mulQ62(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi<<2 | lo>>62
}

// ctExpThreshold returns ⌊2⁶³·exp(−t)⌋ for t ≥ 0 without secret-dependent
// branches.  Negative inputs within float rounding error of zero are
// clamped to zero (branch-free); the caller guarantees t is otherwise
// non-negative and far below 2¹² (see the tail bound in plan.go), so the
// float→integer conversions below are exact.
func ctExpThreshold(t float64) uint64 {
	// max(t, 0) = (t + |t|)/2 with |t| taken by clearing the sign bit —
	// no comparison, no branch.
	abs := math.Float64frombits(math.Float64bits(t) &^ (1 << 63))
	t = (t + abs) / 2

	y := t * invLn2
	q := uint64(y)                         // = ⌊y⌋ for y ≥ 0
	f := y - float64(q)                    // ∈ [0, 1)
	x := mulQ62(uint64(f*(1<<62)), q62Ln2) // f·ln2 in Q62

	a := q62One
	for k := ctExpDegree; k >= 1; k-- {
		a = q62One - mulQ62(mulQ62(x, a), q62Recip[k])
	}
	// 2^−f in Q63, scaled down by 2^−q.  Shifts ≥ 64 yield 0 by Go's
	// shift semantics, closing the far-tail case without a branch.
	return (a << 1) >> q
}

// ctLess returns 1 if a < b else 0, branch-free (the borrow bit of a−b).
func ctLess(a, b uint64) uint64 {
	return ((^a & b) | ((^a | b) & (a - b))) >> 63
}

// ctAbs64 returns |x| for x ≠ math.MinInt64, branch-free.
func ctAbs64(x int64) int64 {
	m := x >> 63
	return (x ^ m) - m
}

// ctNonzero64 returns 1 if v ≠ 0 else 0, branch-free (v ≥ 0).
func ctNonzero64(v int64) uint64 {
	return uint64(v|-v) >> 63
}
