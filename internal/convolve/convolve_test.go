package convolve

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ctgauss/internal/ctcheck"
)

// testSampler builds one shared sampler over the default base set (the
// base circuits take ~100ms to compile; every test reuses them through
// the shared registry anyway, but sharing the sampler also shares shard
// stream state so the statistical tests see one long deterministic run).
var (
	testOnce     sync.Once
	testShared   *Sampler
	testSetupErr error
)

func shared(t *testing.T) *Sampler {
	t.Helper()
	testOnce.Do(func() {
		testShared, testSetupErr = New(Config{Shards: 2, Seed: []byte("convolve-test-seed")})
	})
	if testSetupErr != nil {
		t.Fatal(testSetupErr)
	}
	return testShared
}

func TestPlanDominatesTarget(t *testing.T) {
	s := shared(t)
	for _, sigma := range []float64{0.95, 1.2771, 2, 2.0001, 2.9, 3.3, 6.15543, 17.5, 100, 1024, 4096} {
		p, err := s.Plan(sigma)
		if err != nil {
			t.Fatalf("σ=%g: %v", sigma, err)
		}
		if p.SigmaP < sigma {
			t.Fatalf("σ=%g: proposal σ_p=%g does not dominate", sigma, p.SigmaP)
		}
		// σ_p must be consistent with the flattened terms.
		var varSum float64
		for _, term := range p.Terms {
			varSum += float64(term.Coeff*term.Coeff) * term.BaseSigma * term.BaseSigma
		}
		if want := math.Sqrt(varSum); math.Abs(p.SigmaP-want) > 1e-6 {
			t.Fatalf("σ=%g: σ_p=%g inconsistent with terms (want %g): %+v", sigma, p.SigmaP, want, p.Terms)
		}
		// Overshoot stays bounded: acceptance ≈ σ/(2σ_p) must not
		// collapse anywhere in the served range.
		if limit := math.Max(2.9, 1.45*sigma); p.SigmaP > limit {
			t.Fatalf("σ=%g: σ_p=%g overshoots (limit %g): %+v", sigma, p.SigmaP, limit, p.Terms)
		}
		if p.Draws() > 48 {
			t.Fatalf("σ=%g: %d draws per trial exceeds the menu cap", sigma, p.Draws())
		}
	}
	// σ below the fine base: fine member alone must dominate.
	if p, _ := s.Plan(1.2); p.Draws() != 1 || p.SigmaP != 2 {
		t.Fatalf("σ=1.2 plan = %+v, want single-draw σ_p=2", p)
	}
}

// TestMenuRespectsSmoothing walks every internal node of every selected
// recipe and checks the soundness condition of the convolution ladder:
// the coarse coefficient never exceeds the right (fine) subtree's width,
// so no coarse grid is left unsmoothed — the structural property behind
// the statistical acceptance below.
func TestMenuRespectsSmoothing(t *testing.T) {
	s := shared(t)
	var walk func(rc *recipe) bool
	walk = func(rc *recipe) bool {
		if rc.left == nil {
			return true
		}
		if float64(rc.a) > rc.right.width {
			return false
		}
		return walk(rc.left) && walk(rc.right)
	}
	for _, rc := range s.menu {
		if !walk(rc) {
			t.Fatalf("recipe width=%g violates the a ≤ w_R smoothing condition", rc.width)
		}
	}
	if len(s.menu) < 50 {
		t.Fatalf("menu has only %d recipes; granularity would be poor", len(s.menu))
	}
}

func TestCtExpThresholdMatchesExp(t *testing.T) {
	for _, tc := range []float64{0, 1e-12, 0.01, 0.25, math.Ln2, 1, 2.5, 7, 20, 43, 60, 200, 900, 5000} {
		got := float64(ctExpThreshold(tc))
		want := math.Exp(-tc) * (1 << 63)
		// The 2^−q shift floors at the output scale, so the threshold
		// carries ±1 output units of error on top of the polynomial's
		// ~1e-13 relative error — both are ≤ 2⁻⁶³ absolute probability.
		if math.Abs(got-want) > math.Max(2, want*1e-12) {
			t.Fatalf("t=%g: thr=%g vs exp=%g", tc, got, want)
		}
	}
	if got := ctExpThreshold(0); got != 1<<63 {
		t.Fatalf("thr(0) = %d, want 2^63", got)
	}
	// Tiny negative inputs (float cancellation residue) clamp to 1.
	if got := ctExpThreshold(-1e-13); got != 1<<63 {
		t.Fatalf("thr(-1e-13) = %d, want 2^63", got)
	}
}

// refLane is the straightforward branchy implementation of the trial the
// branch-free path must agree with.
func refLane(p *plan, r float64, x int64, coin uint64) (int64, float64) {
	v := x
	if v < 0 {
		v = -v
	}
	var z int64
	if coin&1 == 1 {
		z = 1 + v
	} else {
		z = -v
	}
	zf := float64(z) - r
	tt := zf*zf*p.invTwoSigmaSq - float64(v*v)*p.invTwoSigmaPSq
	if tt < 0 {
		tt = 0
	}
	pAcc := math.Exp(-tt)
	if v >= 1 {
		pAcc /= 2
	}
	return z, pAcc
}

func TestEvalLaneMatchesReference(t *testing.T) {
	s := shared(t)
	rng := rand.New(rand.NewSource(11))
	for _, sigma := range []float64{1.4, 2, 3.3, 17.5, 300} {
		p := s.planOf(sigma)
		span := int64(13 * p.SigmaP)
		for _, r := range []float64{0, 0.375, 0.999} {
			for trial := 0; trial < 2000; trial++ {
				x := rng.Int63n(2*span+1) - span
				coin := rng.Uint64()
				z, acc := evalLane(p, r, x, coin)
				zRef, pAcc := refLane(p, r, x, coin)
				if z != zRef {
					t.Fatalf("σ=%g r=%g: z=%d, reference %d", sigma, r, z, zRef)
				}
				v := ctAbs64(x)
				gotThr := float64(ctExpThreshold((float64(z)-r)*(float64(z)-r)*p.invTwoSigmaSq-float64(v*v)*p.invTwoSigmaPSq)) / (1 << 63)
				if v >= 1 {
					gotThr /= 2
				}
				if math.Abs(gotThr-pAcc) > 1e-9 {
					t.Fatalf("σ=%g r=%g: acceptance %g, reference %g", sigma, r, gotThr, pAcc)
				}
				// The accept bit must be the threshold comparison.
				// Float/fixed boundary disagreements are possible in
				// principle but astronomically unlikely for random coins;
				// flag them distinctly so a real logic bug is not
				// mistaken for one.
				wantAcc := uint64(0)
				if float64(coin>>1) < pAcc*(1<<63) {
					wantAcc = 1
				}
				if acc != wantAcc && math.Abs(float64(coin>>1)-pAcc*(1<<63)) > 16 {
					t.Fatalf("σ=%g r=%g x=%d: accept=%d, reference %d", sigma, r, x, acc, wantAcc)
				}
			}
		}
	}
}

// TestTrialWorkIsConstant verifies the constant-time property of the
// combine/round path deterministically: randomness consumption is an
// exact function of the trial count — 64 coin bits per trial, one fine
// (and, when the plan convolves, one coarse) base sample per trial —
// regardless of which candidates were accepted.  Together with the
// branch-free lane evaluation (asserted against the reference above and
// timed below), this is the no-data-dependent-branches check: any
// value-dependent skip or retry inside the path would break the exact
// bit accounting.
func TestTrialWorkIsConstant(t *testing.T) {
	s, err := New(Config{Shards: 1, Seed: []byte("work-trace")})
	if err != nil {
		t.Fatal(err)
	}
	sh := s.shards[0]
	var w ctcheck.WorkTrace
	for round := 0; round < 50; round++ {
		coinsBefore := sh.coins.BitsRead
		trialsBefore := s.trials.Load()
		dst := make([]int, 37)
		if err := s.NextBatch(3.3, 0.375, dst); err != nil {
			t.Fatal(err)
		}
		coinBits := sh.coins.BitsRead - coinsBefore
		trials := s.trials.Load() - trialsBefore
		if coinBits != 64*trials {
			t.Fatalf("round %d: %d coin bits for %d trials, want exactly 64 per trial", round, coinBits, trials)
		}
		w.Record(coinBits / trials)
	}
	if !w.Constant() {
		t.Fatal("per-trial coin consumption varies")
	}
	// Base-sample consumption: every trial draws exactly one sample per
	// plan term, so each base engine's consumption ledger must equal
	// trials × (terms on that base) — an exact accounting no
	// value-dependent skip or retry could satisfy.
	p := s.planOf(3.3)
	perBase := make(map[int]uint64)
	for _, term := range p.Terms {
		perBase[term.Base] += s.trials.Load()
	}
	for bi, want := range perBase {
		if got := s.engines[bi].Ledger().ItemsConsumed; got != want {
			t.Fatalf("base %d popped %d samples for %d trials × %d terms (want %d)",
				bi, got, s.trials.Load(), len(p.Terms), want)
		}
	}
	if got := s.accepted.Load(); got < uint64(50*37) {
		t.Fatalf("accepted %d < samples handed out %d", got, 50*37)
	}
	if rate := s.Stats().AcceptRate(); rate < 0.2 || rate > 0.75 {
		t.Fatalf("accept rate %.3f outside the plausible band for σ=3.3", rate)
	}
}

// TestCombineRoundTimingDudect applies the dudect methodology to the
// pure combine/round function: class A feeds a fixed (worst-case
// magnitude) input triple, class B random triples.  A data-dependent
// branch or table lookup in the path would separate the classes.  The
// threshold is generous (wall clock under a GC runtime is noisy — see
// TestCompareTimingSmoke in ctcheck); the deterministic work ledger
// above is the stronger evidence.
func TestCombineRoundTimingDudect(t *testing.T) {
	s := shared(t)
	p := s.planOf(17.5)
	rng := rand.New(rand.NewSource(7))
	// Pregenerate both classes' inputs so the measured closures execute
	// the identical code path over identical memory layouts — the only
	// difference is the values the round path sees.
	const n = 1024
	span := int64(13 * p.SigmaP)
	fixedX, randX := make([]int64, n), make([]int64, n)
	fixedC, randC := make([]uint64, n), make([]uint64, n)
	for i := 0; i < n; i++ {
		fixedX[i], fixedC[i] = span, 0xDEADBEEFCAFEF00D
		randX[i], randC[i] = rng.Int63n(2*span+1)-span, rng.Uint64()
	}
	var sink int64
	mk := func(xs []int64, cs []uint64) func() {
		i := 0
		return func() {
			z, acc := evalLane(p, 0.375, xs[i&(n-1)], cs[i&(n-1)])
			sink += z + int64(acc)
			i++
		}
	}
	r := ctcheck.CompareTiming(mk(fixedX, fixedC), mk(randX, randC),
		ctcheck.Options{Measurements: 600, InnerReps: 64})
	if math.Abs(r.T) > 50 {
		t.Fatalf("combine/round path timing separates input classes: %s", r)
	}
	_ = sink
}

// TestStatisticalAcceptance is the subsystem's acceptance gate: convolved
// outputs for (σ, μ) pairs that no compiled circuit serves must pass the
// chi-square / Rényi harness against the ideal D_{ℤ,σ,μ}.  All pairs are
// outside the base set; one uses a non-zero center, one a non-integer σ
// below the coarse members, one a σ far above every member.
func TestStatisticalAcceptance(t *testing.T) {
	s := shared(t)
	pairs := []struct {
		sigma, mu float64
		n         int
	}{
		{3.3, 0, 150000},
		{1.4142, -2.625, 150000},
		{17.5, 0.375, 150000},
		{42.7, -0.5, 120000},
	}
	for _, pc := range pairs {
		dst := make([]int, pc.n)
		if err := s.NextBatch(pc.sigma, pc.mu, dst); err != nil {
			t.Fatal(err)
		}
		g := ctcheck.ChiSquareGaussian(dst, pc.sigma, pc.mu)
		t.Logf("σ=%g μ=%g: %s", pc.sigma, pc.mu, g)
		if !g.Pass(0.001, 1.01) {
			t.Fatalf("σ=%g μ=%g: convolved output fails the acceptance harness: %s", pc.sigma, pc.mu, g)
		}
	}
}

func TestNextBatchFillsEveryLength(t *testing.T) {
	s := shared(t)
	for _, n := range []int{1, 3, 63, 64, 65, 257} {
		dst := make([]int, n)
		for i := range dst {
			dst[i] = 1 << 40 // sentinel no sampler output can reach
		}
		if err := s.NextBatch(2.5, 0.25, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			if v == 1<<40 {
				t.Fatalf("n=%d: position %d left unfilled", n, i)
			}
		}
	}
	if _, err := s.Next(2.5, -1.75); err != nil {
		t.Fatal(err)
	}
}

func TestRequestValidation(t *testing.T) {
	s := shared(t)
	for _, tc := range []struct{ sigma, mu float64 }{
		{0.1, 0}, {-3, 0}, {math.NaN(), 0}, {math.Inf(1), 0}, {5000, 0},
		{3, math.NaN()}, {3, math.Inf(-1)}, {3, 1e18},
	} {
		if err := s.NextBatch(tc.sigma, tc.mu, make([]int, 4)); err == nil {
			t.Fatalf("σ=%g μ=%g: expected a validation error", tc.sigma, tc.mu)
		}
	}
	if _, err := New(Config{Bases: []string{"0.5"}}); err == nil {
		t.Fatal("fine base below the smoothing floor must be rejected")
	}
	if _, err := New(Config{Bases: []string{"nope"}}); err == nil {
		t.Fatal("non-decimal base must be rejected")
	}
}

// TestNarrowBaseSetClampsMaxSigma: a base set whose ladder menu cannot
// reach the configured MaxSigma must clamp the admissible range, so a
// request the menu cannot dominate is rejected rather than served by a
// narrower proposal (which would emit the wrong distribution).
func TestNarrowBaseSetClampsMaxSigma(t *testing.T) {
	s, err := New(Config{Bases: []string{"1.2"}, Shards: 1, Precision: 32, Seed: []byte("narrow")})
	if err != nil {
		t.Fatal(err)
	}
	_, max := s.Bounds()
	if max >= DefaultMaxSigma {
		t.Fatalf("σ=1.2 base set claims to serve up to %g; its ladder cannot", max)
	}
	if err := s.NextBatch(max*2, 0, make([]int, 4)); err == nil {
		t.Fatalf("σ=%g beyond the menu's reach (%g) must be rejected", max*2, max)
	}
	// The clamped range itself must still be served with a dominating
	// proposal.
	p, err := s.Plan(max * 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p.SigmaP < max*0.99 {
		t.Fatalf("plan σ_p=%g does not dominate σ=%g", p.SigmaP, max*0.99)
	}
}

func TestConcurrentDraws(t *testing.T) {
	s := shared(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sigma := 2.1 + float64(g)*0.7
			dst := make([]int, 100)
			for i := 0; i < 20; i++ {
				if err := s.NextBatch(sigma, float64(g)*0.125, dst); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Plans == 0 || st.Trials == 0 {
		t.Fatalf("stats not accumulating: %+v", st)
	}
}

func TestDeterministicStreams(t *testing.T) {
	mk := func() *Sampler {
		s, err := New(Config{Shards: 2, Seed: []byte("determinism")})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	da, db := make([]int, 500), make([]int, 500)
	if err := a.NextBatch(5.5, 0.25, da); err != nil {
		t.Fatal(err)
	}
	if err := b.NextBatch(5.5, 0.25, db); err != nil {
		t.Fatal(err)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("same seed diverges at %d: %d vs %d", i, da[i], db[i])
		}
	}
	if a.BitsUsed() != b.BitsUsed() {
		t.Fatalf("same seed, different randomness ledgers: %d vs %d", a.BitsUsed(), b.BitsUsed())
	}
}

// TestAsyncMatchesSyncConvolve is the cross-engine bit-identity
// property test for the convolve path: with the same seed, the
// asynchronous engine (background base-draw producers) must emit
// exactly the stream of the synchronous engine for every request
// pattern, and the randomness ledgers must agree — prefetch only moves
// evaluation latency, never the stream.
func TestAsyncMatchesSyncConvolve(t *testing.T) {
	mk := func(prefetch int) *Sampler {
		s, err := New(Config{
			Bases:     []string{"2"},
			Precision: 48,
			Shards:    2,
			Seed:      []byte("engine-identity"),
			Prefetch:  prefetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sync_, async := mk(-1), mk(3)
	defer sync_.Close()
	defer async.Close()

	rng := rand.New(rand.NewSource(99))
	pairs := []struct{ sigma, mu float64 }{{2, 0}, {3.7, 0.25}, {11, -1.5}}
	for i := 0; i < 40; i++ {
		pc := pairs[i%len(pairs)]
		n := 1 + rng.Intn(150)
		a, b := make([]int, n), make([]int, n)
		if err := sync_.NextBatch(pc.sigma, pc.mu, a); err != nil {
			t.Fatal(err)
		}
		if err := async.NextBatch(pc.sigma, pc.mu, b); err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("request %d (σ=%g μ=%g): sync %d vs async %d at %d",
					i, pc.sigma, pc.mu, a[j], b[j], j)
			}
		}
	}
	if sb, ab := sync_.BitsUsed(), async.BitsUsed(); sb != ab {
		t.Fatalf("ledger diverges: sync %d bits, async %d bits", sb, ab)
	}
}
