// Package convolve is the arbitrary-(σ, μ) sampling subsystem: a
// constant-time convolution layer over a small set of compiled base
// circuits.  The build pipeline compiles one branch-free circuit per
// fixed σ, so every new σ would otherwise pay a full DDG-enumeration and
// exact-minimization build; this package instead composes a fixed,
// compiled base set into samples for any requested standard deviation
// and center:
//
//  1. plan (plan.go): pick a Micciancio–Walter-style convolution ladder
//     — a tree of a·L + R combines over base draws, flattened to the
//     linear form Σ cᵢ·xᵢ — whose width dominates the target (σ_p ≥ σ)
//     while every node keeps its coarse grid inside its fine sibling's
//     smoothing range;
//  2. combine + round (lanes.go): fold the convolved proposal to a
//     bimodal candidate around the fractional center and accept with a
//     branch-free fixed-point threshold (ctexp.go) — constant-time
//     randomized rounding that reshapes the proposal to exactly
//     D_{ℤ,σ,μ}.
//
// Base draws come from sharded wide samplers over registry artifacts
// (one cache entry for the whole set, built in parallel), so refills
// stay 512-lane batched exactly as in ctgauss.Pool; the subsystem turns
// the build-once/serve-many stack into serve-anything without touching
// the per-σ pipeline.
//
// The public surface is ctgauss.NewArbitrary; internal/falcon routes its
// SamplerZ through this package behind the BaseConvolve flag, and
// internal/server exposes it at /v1/arbitrary and as the free-form-σ
// fallback of /v1/samples.
package convolve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"ctgauss/internal/core"
	"ctgauss/internal/engine"
	"ctgauss/internal/gaussian"
	"ctgauss/internal/obs"
	"ctgauss/internal/prng"
	"ctgauss/internal/registry"
	"ctgauss/internal/sampler"
)

// DefaultBases is the default base set: the paper's two evaluation
// configurations, whose circuits ship pregenerated.
var DefaultBases = []string{"2", "6.15543"}

// ErrDegraded is returned by draws when every shard of a base engine is
// poisoned — all producers panicked and are restarting or dead.  While
// any shard is healthy, draws fail over to it transparently.
var ErrDegraded = errors.New("convolve: all shards poisoned")

// Default request bounds.  MinSigma keeps the dominating proposal's
// overshoot (and so the trial count) bounded; MaxSigma bounds the
// convolution coefficient.
const (
	DefaultMinSigma = 0.9
	DefaultMaxSigma = 4096
)

// laneBlock is the widest trial block evaluated under one shard lock —
// one 64-sample base batch per combined member.
const laneBlock = 64

// Config describes an arbitrary-(σ, μ) sampler.
type Config struct {
	// Bases are the decimal σ strings of the base set (default
	// DefaultBases).  The smallest member is the fine convolution
	// component and must be ≥ 1 (≈ the smoothing parameter of ℤ, so the
	// convolved proposal stays pointwise close to a Gaussian).
	Bases []string
	// Precision and TailCut configure the base circuits (defaults 128
	// and 13, the paper's Falcon setting).
	Precision int
	TailCut   float64
	// Shards is the concurrency width: each shard owns independent base
	// sampler streams and a coin stream (0 = NumCPU).
	Shards int
	// Seed keys the shard streams (fixed development default; production
	// must pass fresh randomness).
	Seed []byte
	// PRNG selects the generator: "chacha20" (default), "shake256",
	// "aes-ctr".
	PRNG string
	// Workers bounds the build parallelism of a cold base-set
	// compilation (0 = all CPUs); it never changes the artifacts.
	Workers int
	// MinSigma and MaxSigma bound admissible requests (defaults
	// DefaultMinSigma, DefaultMaxSigma).
	MinSigma, MaxSigma float64
	// Prefetch is the refill lookahead per (shard, base member) stream
	// on the engine runtime: 0 = engine.DefaultDepth, negative =
	// synchronous refill.  Per-stream draws are bit-identical at any
	// setting.
	Prefetch int
}

func (c Config) normalize() Config {
	if len(c.Bases) == 0 {
		c.Bases = DefaultBases
	}
	if c.Precision == 0 {
		c.Precision = 128
	}
	if c.TailCut == 0 {
		c.TailCut = gaussian.DefaultTailCut
	}
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
	}
	if c.Seed == nil {
		c.Seed = []byte("ctgauss-convolve-seed")
	}
	if c.PRNG == "" {
		c.PRNG = "chacha20"
	}
	if c.MinSigma == 0 {
		c.MinSigma = DefaultMinSigma
	}
	if c.MaxSigma == 0 {
		c.MaxSigma = DefaultMaxSigma
	}
	return c
}

// shard owns one coin stream plus lane scratch; base draws come from
// the per-member engine rings at the shard's index.
type shard struct {
	mu    sync.Mutex
	coins *prng.BitReader

	xs [laneBlock]int64
	cw [laneBlock]uint64
	zs [laneBlock]int64
}

// Sampler draws from D_{ℤ,σ,μ} for any admissible (σ, μ).  Next and
// NextBatch are safe for any number of concurrent callers; requests
// round-robin across shards.
//
// Base draws run on the unified engine runtime: one engine per base
// member, with one refill ring per shard, so circuit evaluations
// prefetch on background producers exactly as in ctgauss.Pool while
// each (shard, base) stream keeps its synchronous draw order.  Call
// Close to stop the producers when done.
type Sampler struct {
	cfg        Config
	set        *registry.SetArtifact
	baseSigmas []float64
	menu       []*recipe // admissible ladder recipes, sorted by width
	shards     []*shard
	engines    []*engine.Engine[int] // one per base member
	baseBits   []uint64              // random bits per refill, per base member
	ctr        atomic.Uint64

	plans     sync.Map // math.Float64bits(σ) → *plan
	planCount atomic.Uint64
	trials    atomic.Uint64
	accepted  atomic.Uint64
}

// New compiles (or loads) the base set as one registry artifact and
// builds the sharded sampler over it.
func New(cfg Config) (*Sampler, error) {
	cfg = cfg.normalize()
	cores := make([]core.Config, len(cfg.Bases))
	sigmas := make([]float64, len(cfg.Bases))
	fine := 0
	for i, b := range cfg.Bases {
		sf, err := strconv.ParseFloat(b, 64)
		if err != nil || sf <= 0 {
			return nil, fmt.Errorf("convolve: base σ %q is not a positive decimal", b)
		}
		sigmas[i] = sf
		if sf < sigmas[fine] {
			fine = i
		}
		cores[i] = core.Config{Sigma: b, N: cfg.Precision, TailCut: cfg.TailCut, Min: core.MinimizeExact, Workers: cfg.Workers}
	}
	if sigmas[fine] < 1 {
		return nil, fmt.Errorf("convolve: smallest base σ = %g < 1; the fine convolution component must exceed the smoothing parameter of ℤ", sigmas[fine])
	}
	set, err := registry.Shared().GetSet(cores)
	if err != nil {
		return nil, fmt.Errorf("convolve: building base set: %w", err)
	}
	menu := buildMenu(sigmas, cfg.MaxSigma)
	// The admissible range is what the menu can dominate: a narrow base
	// set (small members bound the ladder coefficients) may top out
	// below the configured MaxSigma, and a request beyond the widest
	// recipe must be rejected — never served by a narrower proposal,
	// which would emit the wrong distribution.
	if widest := menu[len(menu)-1].width; cfg.MaxSigma > widest {
		cfg.MaxSigma = widest
	}
	s := &Sampler{cfg: cfg, set: set, baseSigmas: sigmas, menu: menu, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		src, err := prng.NewSource(cfg.PRNG, shardSeed(cfg.Seed, i, coinRole))
		if err != nil {
			return nil, err
		}
		s.shards[i] = &shard{coins: prng.NewBitReader(src)}
	}
	// One engine per base member: shard i of every engine holds that
	// shard's independent stream for the member, refilled a native-width
	// evaluation (width×64 lanes) at a time ahead of demand.
	depth := cfg.Prefetch
	switch {
	case depth == 0:
		depth = engine.DefaultDepth
	case depth < 0:
		depth = 0
	}
	s.engines = make([]*engine.Engine[int], len(set.Members))
	s.baseBits = make([]uint64, len(set.Members))
	// Base evaluation width follows the active SIMD backend; captured once
	// here so every member's stream, refill quantum, and bit ledger agree
	// even if a test flips the backend mid-lifetime.
	baseWidth := sampler.NativeWidth()
	for bi, art := range set.Members {
		art := art
		bi := bi
		mkWide := func(i int) (sampler.BatchSampler, error) {
			src, err := prng.NewSource(cfg.PRNG, shardSeed(cfg.Seed, i, bi))
			if err != nil {
				return nil, err
			}
			return art.NewWideSampler(src, baseWidth), nil
		}
		wides := make([]sampler.BatchSampler, cfg.Shards)
		for i := range wides {
			w, err := mkWide(i)
			if err != nil {
				s.Close()
				return nil, err
			}
			wides[i] = w
		}
		s.baseBits[bi] = uint64(art.Program.NumInputs+1) * 64 * uint64(baseWidth)
		s.engines[bi] = engine.New(engine.Config{
			Shards:   cfg.Shards,
			SlotSize: baseWidth * 64,
			Depth:    depth,
			// Reset rebuilds the shard's wide sampler from its
			// domain-separated seed after a recovered refill panic, so the
			// (shard, base) stream resumes deterministically from its start.
			// Runs with fill's exclusivity, so the assignment is race-free.
			Reset: func(sh int) {
				if fresh, err := mkWide(sh); err == nil {
					wides[sh] = fresh
				}
			},
		}, func(sh int, dst []int) {
			for off := 0; off < len(dst); off += 64 {
				wides[sh].NextBatch(dst[off : off+64])
			}
		})
	}
	return s, nil
}

// Close stops the base engines' producer goroutines.  Draws concurrent
// with or after Close fail with engine.ErrClosed; serving layers drain
// first so the error is never served.
func (s *Sampler) Close() {
	for _, e := range s.engines {
		if e != nil {
			e.Close()
		}
	}
}

// coinRole is the domain-separation role index of a shard's coin stream
// (base streams use their base-set index).
const coinRole = 0xFFFF

// shardSeed derives the stream seed for (shard, role) from the master
// seed with domain separation, mirroring ctgauss.Pool's derivation.
func shardSeed(seed []byte, shard, role int) []byte {
	h := sha256.New()
	h.Write([]byte("ctgauss/convolve/shard"))
	var idx [8]byte
	binary.BigEndian.PutUint32(idx[:4], uint32(shard))
	binary.BigEndian.PutUint32(idx[4:], uint32(role))
	h.Write(idx[:])
	h.Write(seed)
	return h.Sum(nil)
}

// planOf returns the cached plan for sigma, computing it on first use.
func (s *Sampler) planOf(sigma float64) *plan {
	key := math.Float64bits(sigma)
	if p, ok := s.plans.Load(key); ok {
		return p.(*plan)
	}
	p := planFor(sigma, s.menu)
	if _, loaded := s.plans.LoadOrStore(key, &p); !loaded {
		s.planCount.Add(1)
	}
	return &p
}

// check validates one request.
func (s *Sampler) check(sigma, mu float64) error {
	if math.IsNaN(sigma) || sigma < s.cfg.MinSigma || sigma > s.cfg.MaxSigma {
		return fmt.Errorf("convolve: σ = %g outside the served range [%g, %g]", sigma, s.cfg.MinSigma, s.cfg.MaxSigma)
	}
	if math.IsNaN(mu) || math.Abs(mu) > 1<<52 {
		return fmt.Errorf("convolve: center μ = %g is not a representable center", mu)
	}
	return nil
}

// Next returns one sample from D_{ℤ,σ,μ}.  Safe for concurrent use.
func (s *Sampler) Next(sigma, mu float64) (int, error) {
	var one [1]int
	if err := s.NextBatch(sigma, mu, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}

// NextBatch fills all of dst with independent samples from D_{ℤ,σ,μ}.
// Unlike the fixed-64 granularity of Sampler.NextBatch, any length is
// served exactly (accepted candidates are compacted, so nothing rounds
// to batch boundaries).  Safe for concurrent use.
func (s *Sampler) NextBatch(sigma, mu float64, dst []int) error {
	return s.NextBatchContext(nil, sigma, mu, dst)
}

// NextBatchContext is NextBatch with cancellation: ctx unblocks a draw
// waiting on a slow base refill and is checked between trial blocks, so
// a cancelled request stops consuming base streams promptly.  A nil ctx
// never cancels.  On any error dst's contents are undefined.
//
// A poisoned base-engine shard (its producer panicked and is restarting)
// is failed over: the trial block retries on the next shard, trying each
// once; only when every shard is poisoned does the draw fail, with
// ErrDegraded.
func (s *Sampler) NextBatchContext(ctx context.Context, sigma, mu float64, dst []int) error {
	if err := s.check(sigma, mu); err != nil {
		return err
	}
	if len(dst) == 0 {
		return nil
	}
	p := s.planOf(sigma)
	fl := math.Floor(mu)
	r := mu - fl
	off := int64(fl)

	written := 0
	for written < len(dst) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// Size the trial block to the remaining need (acceptance is at
		// least ~σ/(2σ_p) ≥ ~1/4, so 4× covers most blocks) without
		// exceeding one base batch.
		w := 4 * (len(dst) - written)
		if w > laneBlock {
			w = laneBlock
		}
		if w < 8 {
			w = 8
		}
		start := s.pick()
		var n int
		var err error
		for k := 0; k < len(s.shards); k++ {
			n, err = s.tryBlock(ctx, (start+k)%len(s.shards), p, r, off, w, dst[written:])
			if err == nil || !errors.Is(err, engine.ErrShardPoisoned) {
				break
			}
		}
		if err != nil {
			if errors.Is(err, engine.ErrShardPoisoned) {
				return ErrDegraded
			}
			return err
		}
		written += n
	}
	return nil
}

// tryBlock evaluates one trial block of width w on shard si, compacting
// accepted samples into dst, and returns how many it wrote.  A poisoned
// base shard surfaces as engine.ErrShardPoisoned so the caller can fail
// over; base samples already drawn for the abandoned block are discarded
// (fault paths make no bit-identity promise).
func (s *Sampler) tryBlock(ctx context.Context, si int, p *plan, r float64, off int64, w int, dst []int) (int, error) {
	sh := s.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < w; i++ {
		sh.xs[i] = 0
	}
	// One plan term's contribution per pass: pop w samples of the
	// term's base stream (zero-copy slices of the engine ring) and
	// add them into the proposal scaled by the coefficient.  The trip
	// count is fixed by (w, plan) and the per-value arithmetic is
	// branch-free, as in the pre-engine draw loop.
	for _, term := range p.Terms {
		coeff := term.Coeff
		j := 0
		if err := s.engines[term.Base].ConsumeFrom(ctx, si, w, func(chunk []int) {
			for _, v := range chunk {
				sh.xs[j] += coeff * int64(v)
				j++
			}
		}); err != nil {
			return 0, err
		}
	}
	// Combine/round span: the ladder's own arithmetic — rounding
	// coins, constant-time lane evaluation, compaction — as opposed to
	// the base draws above, which attribute to the engine stages.  The
	// hook reads only the clock, never the coin stream.
	var tr *obs.Trace
	if obs.TraceEnabled() {
		tr = obs.FromContext(ctx)
	}
	t0 := tr.Now()
	sh.coins.FillWords(sh.cw[:w])
	mask := evalLanes(p, r, sh.xs[:w], sh.cw[:w], sh.zs[:w], w)
	// Compaction: the only data-dependent control flow, and it
	// depends only on accept bits — see the timing argument in
	// lanes.go.
	n := 0
	for i := 0; i < w && n < len(dst); i++ {
		if mask>>uint(i)&1 == 1 {
			dst[n] = int(sh.zs[i] + off)
			n++
		}
	}
	tr.End(obs.StageCombine, t0)
	s.trials.Add(uint64(w))
	s.accepted.Add(uint64(bits.OnesCount64(mask)))
	return n, nil
}

// pick selects the next shard round-robin.  Unlike ctgauss.Pool's
// striped picker, this stays a single deterministic counter: the HTTP
// bit-identity acceptance test reconstructs the served stream with a
// local sampler, which requires sequential requests to visit shards in
// a reproducible order.
func (s *Sampler) pick() int {
	return int(s.ctr.Add(1) % uint64(len(s.shards)))
}

// BitsUsed reports total random bits consumed by the served stream
// across all shard streams (base samplers and rounding coins).  Base
// bits derive from the engine ledger's started-refill count — exactly
// the evaluations the synchronous path would have run — so the value is
// independent of producer lookahead and deterministic for a
// deterministic caller.
func (s *Sampler) BitsUsed() uint64 {
	var total uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.coins.BitsRead
		sh.mu.Unlock()
	}
	for bi, e := range s.engines {
		total += e.Ledger().RefillsStarted * s.baseBits[bi]
	}
	return total
}

// PlanTerm is one draw of a plan's ladder: Coeff × a sample of the base
// member with standard deviation BaseSigma.
type PlanTerm struct {
	BaseSigma float64
	Coeff     int64
}

// PlanInfo describes how one σ is served (diagnostics and benchmarks).
type PlanInfo struct {
	Sigma  float64    // requested σ
	SigmaP float64    // dominating proposal width
	Terms  []PlanTerm // base draws of one trial, in draw order
}

// Draws returns the base draws per trial.
func (pi PlanInfo) Draws() int { return len(pi.Terms) }

// Plan reports the convolution plan that serves sigma.
func (s *Sampler) Plan(sigma float64) (PlanInfo, error) {
	if err := s.check(sigma, 0); err != nil {
		return PlanInfo{}, err
	}
	p := s.planOf(sigma)
	pi := PlanInfo{Sigma: p.Sigma, SigmaP: p.SigmaP}
	for _, t := range p.Terms {
		pi.Terms = append(pi.Terms, PlanTerm{BaseSigma: s.baseSigmas[t.Base], Coeff: t.Coeff})
	}
	return pi, nil
}

// RoundProbe exposes the pure combine/round lane evaluation for the
// acceptance harness's dudect pass: the returned function folds one
// convolved proposal x with one 64-bit coin word through the plan
// serving sigma at fractional center r = μ − ⌊μ⌋, returning the
// candidate and its accept bit.  It performs no draws and touches no
// shard state, so a timing harness can feed it fixed-vs-random input
// classes — exactly the secret-dependent values a leaky round path
// would betray — without rejection-loop noise.  SigmaP is the plan's
// dominating proposal width, which bounds the admissible |x|.
func (s *Sampler) RoundProbe(sigma, mu float64) (probe func(x int64, coin uint64) (z int64, accept uint64), sigmaP float64, err error) {
	if err := s.check(sigma, mu); err != nil {
		return nil, 0, err
	}
	p := s.planOf(sigma)
	r := mu - math.Floor(mu)
	return func(x int64, coin uint64) (int64, uint64) {
		return evalLane(p, r, x, coin)
	}, p.SigmaP, nil
}

// Stats is a snapshot of the sampler's serving counters.
type Stats struct {
	Bases      []string // base-set σ strings
	BaseSigmas []float64
	Shards     int
	FromCache  bool   // base set loaded from the registry's disk cache
	Trials     uint64 // combine/round trials evaluated
	Accepted   uint64 // trials accepted (≥ samples handed out)
	Plans      uint64 // distinct σ values planned
}

// AcceptRate returns Accepted/Trials (0 before any trial).
func (st Stats) AcceptRate() float64 {
	if st.Trials == 0 {
		return 0
	}
	return float64(st.Accepted) / float64(st.Trials)
}

// Stats returns a snapshot of the serving counters.
func (s *Sampler) Stats() Stats {
	return Stats{
		Bases:      append([]string(nil), s.cfg.Bases...),
		BaseSigmas: append([]float64(nil), s.baseSigmas...),
		Shards:     len(s.shards),
		FromCache:  s.set.FromDisk,
		Trials:     s.trials.Load(),
		Accepted:   s.accepted.Load(),
		Plans:      s.planCount.Load(),
	}
}

// Bounds returns the admissible σ range.
func (s *Sampler) Bounds() (min, max float64) { return s.cfg.MinSigma, s.cfg.MaxSigma }

// Health merges the per-shard fault-isolation state across the base
// engines: shard i is poisoned (or dead) if it is poisoned (dead) in any
// member's engine — a trial block needs every term's base stream, so one
// poisoned member makes the whole shard unusable for draws.  Restart and
// discard counts sum across members.
func (s *Sampler) Health() []engine.ShardHealth {
	merged := make([]engine.ShardHealth, len(s.shards))
	for _, e := range s.engines {
		for i, h := range e.Health() {
			merged[i].Poisoned = merged[i].Poisoned || h.Poisoned
			merged[i].Dead = merged[i].Dead || h.Dead
			merged[i].Restarts += h.Restarts
			merged[i].DiscardedRefills += h.DiscardedRefills
		}
	}
	return merged
}

// Rings merges per-shard ring occupancy across the base engines:
// buffered refills, adaptive targets, and depths sum over members
// (shard i's figures cover every base stream that feeds its draws).
func (s *Sampler) Rings() []engine.RingStat {
	merged := make([]engine.RingStat, len(s.shards))
	for _, e := range s.engines {
		for i, rs := range e.Rings() {
			merged[i].Buffered += rs.Buffered
			merged[i].Target += rs.Target
			merged[i].Depth += rs.Depth
		}
	}
	return merged
}
