package convolve

import (
	"fmt"
	"sync"
	"testing"
)

// benchSampler builds (once) a single-shard sampler over the σ=2 base
// only, so benchmark setup stays cheap while still exercising multi-term
// ladders (σ > 2 convolves several σ=2 draws).
var (
	benchOnce sync.Once
	benchS    *Sampler
	benchErr  error
)

func benchSampler(b *testing.B) *Sampler {
	b.Helper()
	benchOnce.Do(func() {
		benchS, benchErr = New(Config{Bases: []string{"2"}, Shards: 1, Seed: []byte("bench")})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchS
}

// BenchmarkArbitraryNextBatch measures the convolved cost per sample at
// several targets (compare against the direct compiled circuit rows of
// samplebench -json; the gap is the price of serving a σ no circuit was
// built for).
func BenchmarkArbitraryNextBatch(b *testing.B) {
	s := benchSampler(b)
	for _, tc := range []struct{ sigma, mu float64 }{
		{2, 0},
		{3.3, 0.375},
		{17.5, 0},
		{300, -0.5},
	} {
		p, err := s.Plan(tc.sigma)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("sigma=%g,draws=%d", tc.sigma, p.Draws()), func(b *testing.B) {
			dst := make([]int, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.NextBatch(tc.sigma, tc.mu, dst); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(dst)), "ns/sample")
		})
	}
}

// BenchmarkNextSingle is the Falcon SamplerZ shape: one sample per call
// at a leaf-σ′-style request.
func BenchmarkNextSingle(b *testing.B) {
	s := benchSampler(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Next(1.5, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalLane(b *testing.B) {
	s := benchSampler(b)
	p := s.planOf(17.5)
	var sink int64
	for i := 0; i < b.N; i++ {
		z, acc := evalLane(p, 0.375, int64(i%91)-45, uint64(i)*0x9e3779b97f4a7c15)
		sink += z + int64(acc)
	}
	_ = sink
}

func BenchmarkCtExpThreshold(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += ctExpThreshold(float64(i%97) * 0.21)
	}
	_ = sink
}
