package convolve

// The combine/round path: turn one convolved proposal draw plus one coin
// word into a candidate z with a branch-free accept bit.
//
// Construction (the convolution generalization of Falcon's SamplerZ,
// mirroring internal/falcon/samplerz.go with the fixed σ₀ base swapped
// for the plan's ladder proposal):
//
//	x  = Σᵢ cᵢ·xᵢ                     ~ D_{ℤ,σ_p} (plan proposal)
//	v  = |x|                          folded magnitude
//	b  = low coin bit, z = b + (2b−1)·v   (bimodal candidate)
//	accept ⇔ rnd₆₃ < 2⁶³·exp(v²/(2σ_p²) − (z−r)²/(2σ²)) · (½ if v ≥ 1)
//
// where r = μ − ⌊μ⌋ ∈ [0,1).  |z−r| ≥ v and σ ≤ σ_p guarantee the
// exponent is ≤ 0, so the acceptance probability is a genuine
// probability and the accepted z + ⌊μ⌋ is exactly D_{ℤ,σ,μ}-distributed
// (the (½ if v≥1) factor corrects the folded proposal masses p₀ = D(0),
// p_v = 2D(v), exactly as in the rejection proof of samplerz.go).
//
// Constant-time discipline: everything below is straight-line integer
// and floating-point arithmetic — no branches, no secret-indexed loads.
// Each trial consumes exactly one coin word (bit 0 = branch selector,
// bits 1..63 = the acceptance draw) and one sample per plan term, so
// randomness consumption per trial is fixed per plan.  The only
// data-dependent control flow in the whole subsystem is the caller's
// use of the accept bit to keep or discard a lane — and rejected
// candidates are independent of the value eventually emitted, the
// standard rejection-sampling timing argument (the same one Falcon's
// own SamplerZ relies on): timing reveals how many candidates were
// discarded, which is determined by accept/reject coins whose
// distribution depends only on the public (σ, μ) request.

// evalLane evaluates one trial over the already-combined proposal draw x
// (the plan's Σ cᵢ·xᵢ, accumulated with fixed-trip-count arithmetic in
// the shard draw loop).  coin is one 64-bit random word, r = μ − ⌊μ⌋.
// It returns the candidate z and accept ∈ {0, 1}.
func evalLane(p *plan, r float64, x int64, coin uint64) (z int64, accept uint64) {
	v := ctAbs64(x)
	b := int64(coin & 1)
	z = b + (2*b-1)*v

	zf := float64(z) - r
	t := zf*zf*p.invTwoSigmaSq - float64(v*v)*p.invTwoSigmaPSq
	thr := ctExpThreshold(t) >> ctNonzero64(v) // ½ correction for folded masses
	accept = ctLess(coin>>1, thr)
	return z, accept
}

// evalLanes runs evalLane over n lanes, writing candidates to zs and
// packing the accept bits into the returned mask (lane i → bit i,
// n ≤ 64).  The loop trip count and every instruction inside are
// independent of the sampled values.
func evalLanes(p *plan, r float64, xs []int64, coins []uint64, zs []int64, n int) uint64 {
	var mask uint64
	for i := 0; i < n; i++ {
		z, acc := evalLane(p, r, xs[i], coins[i])
		zs[i] = z
		mask |= acc << uint(i)
	}
	return mask
}
