// Package poly implements arbitrary-precision polynomial arithmetic in the
// cyclotomic rings Z[x]/(x^n+1) used by the NTRU equation solver: Karatsuba
// multiplication, the Galois conjugate f(−x), the field norm down to the
// half-size ring, the ring adjoint, and bit-size utilities for the scaled
// Babai reduction.
package poly

import (
	"fmt"
	"math/big"
)

// P is a polynomial in Z[x]/(x^n+1); Coeffs[i] is the coefficient of x^i
// and len(Coeffs) is the ring degree n (a power of two, or 1).
type P struct {
	Coeffs []*big.Int
}

// New returns the zero polynomial of ring degree n.
func New(n int) P {
	c := make([]*big.Int, n)
	for i := range c {
		c[i] = new(big.Int)
	}
	return P{Coeffs: c}
}

// FromInt64 builds a polynomial from small coefficients.
func FromInt64(cs []int64) P {
	p := New(len(cs))
	for i, v := range cs {
		p.Coeffs[i].SetInt64(v)
	}
	return p
}

// Clone returns a deep copy.
func (p P) Clone() P {
	q := New(len(p.Coeffs))
	for i, c := range p.Coeffs {
		q.Coeffs[i].Set(c)
	}
	return q
}

// N returns the ring degree.
func (p P) N() int { return len(p.Coeffs) }

// IsZero reports whether every coefficient is zero.
func (p P) IsZero() bool {
	for _, c := range p.Coeffs {
		if c.Sign() != 0 {
			return false
		}
	}
	return true
}

// Add returns p+q.
func Add(p, q P) P {
	mustSame(p, q)
	out := New(p.N())
	for i := range out.Coeffs {
		out.Coeffs[i].Add(p.Coeffs[i], q.Coeffs[i])
	}
	return out
}

// Sub returns p−q.
func Sub(p, q P) P {
	mustSame(p, q)
	out := New(p.N())
	for i := range out.Coeffs {
		out.Coeffs[i].Sub(p.Coeffs[i], q.Coeffs[i])
	}
	return out
}

// Neg returns −p.
func Neg(p P) P {
	out := New(p.N())
	for i := range out.Coeffs {
		out.Coeffs[i].Neg(p.Coeffs[i])
	}
	return out
}

// ScalarMul returns k·p.
func ScalarMul(p P, k *big.Int) P {
	out := New(p.N())
	for i := range out.Coeffs {
		out.Coeffs[i].Mul(p.Coeffs[i], k)
	}
	return out
}

func mustSame(p, q P) {
	if p.N() != q.N() {
		panic(fmt.Sprintf("poly: ring degree mismatch %d vs %d", p.N(), q.N()))
	}
}

// Mul returns p·q in Z[x]/(x^n+1): a full Karatsuba product folded
// negacyclically.
func Mul(p, q P) P {
	mustSame(p, q)
	n := p.N()
	full := karatsuba(p.Coeffs, q.Coeffs)
	out := New(n)
	for i, c := range full {
		if c == nil {
			continue
		}
		if i < n {
			out.Coeffs[i].Add(out.Coeffs[i], c)
		} else {
			out.Coeffs[i-n].Sub(out.Coeffs[i-n], c)
		}
	}
	return out
}

// karatsuba computes the full product (length 2len−1) of two equal-length
// coefficient slices.
func karatsuba(a, b []*big.Int) []*big.Int {
	n := len(a)
	if n <= 16 {
		out := make([]*big.Int, 2*n-1)
		for i := range out {
			out[i] = new(big.Int)
		}
		t := new(big.Int)
		for i := 0; i < n; i++ {
			if a[i].Sign() == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if b[j].Sign() == 0 {
					continue
				}
				t.Mul(a[i], b[j])
				out[i+j].Add(out[i+j], t)
			}
		}
		return out
	}
	h := n / 2
	a0, a1 := a[:h], a[h:]
	b0, b1 := b[:h], b[h:]
	z0 := karatsuba(a0, b0)
	z2 := karatsuba(a1, b1)
	as := make([]*big.Int, len(a1))
	bs := make([]*big.Int, len(b1))
	for i := range as {
		as[i] = new(big.Int).Add(a1[i], get(a0, i))
		bs[i] = new(big.Int).Add(b1[i], get(b0, i))
	}
	z1 := karatsuba(as, bs)
	out := make([]*big.Int, 2*n-1)
	for i := range out {
		out[i] = new(big.Int)
	}
	for i, c := range z0 {
		out[i].Add(out[i], c)
	}
	for i, c := range z2 {
		out[i+2*h].Add(out[i+2*h], c)
	}
	t := new(big.Int)
	for i := range z1 {
		t.Set(z1[i])
		t.Sub(t, get(z0, i))
		t.Sub(t, get(z2, i))
		out[i+h].Add(out[i+h], t)
	}
	return out
}

func get(xs []*big.Int, i int) *big.Int {
	if i < len(xs) {
		return xs[i]
	}
	return zeroBig
}

var zeroBig = new(big.Int)

// Conj returns the Galois conjugate f(−x): odd coefficients negated.
func Conj(p P) P {
	out := New(p.N())
	for i, c := range p.Coeffs {
		if i%2 == 1 {
			out.Coeffs[i].Neg(c)
		} else {
			out.Coeffs[i].Set(c)
		}
	}
	return out
}

// Adjoint returns f*(x) = f(x^{-1}) in the ring: f0 − f_{n-1}x − … − f1
// x^{n-1}.
func Adjoint(p P) P {
	n := p.N()
	out := New(n)
	out.Coeffs[0].Set(p.Coeffs[0])
	for i := 1; i < n; i++ {
		out.Coeffs[i].Neg(p.Coeffs[n-i])
	}
	return out
}

// FieldNorm maps f ∈ Z[x]/(x^n+1) to N(f) ∈ Z[y]/(y^{n/2}+1), defined by
// N(f)(x²) = f(x)·f(−x).  The product has only even-index coefficients.
func FieldNorm(p P) P {
	n := p.N()
	if n == 1 {
		out := New(1)
		out.Coeffs[0].Mul(p.Coeffs[0], p.Coeffs[0])
		return out
	}
	prod := Mul(p, Conj(p))
	out := New(n / 2)
	for i := 0; i < n; i += 2 {
		out.Coeffs[i/2].Set(prod.Coeffs[i])
	}
	return out
}

// LiftSub substitutes y = x² — the inverse direction of FieldNorm's ring
// descent: a degree-m polynomial becomes a degree-2m polynomial with odd
// coefficients zero.
func LiftSub(p P) P {
	out := New(2 * p.N())
	for i, c := range p.Coeffs {
		out.Coeffs[2*i].Set(c)
	}
	return out
}

// MaxBitLen returns the largest coefficient bit length.
func (p P) MaxBitLen() int {
	m := 0
	for _, c := range p.Coeffs {
		if l := c.BitLen(); l > m {
			m = l
		}
	}
	return m
}

// ShiftRight returns the polynomial with every coefficient arithmetically
// shifted right by s bits (floor division by 2^s).
func (p P) ShiftRight(s uint) P {
	out := New(p.N())
	for i, c := range p.Coeffs {
		out.Coeffs[i].Rsh(c, s)
	}
	return out
}

// Float64s converts coefficients to float64 (caller must pre-scale so they
// fit).
func (p P) Float64s() []float64 {
	out := make([]float64, p.N())
	for i, c := range p.Coeffs {
		f, _ := new(big.Float).SetInt(c).Float64()
		out[i] = f
	}
	return out
}

// String renders the polynomial compactly for diagnostics.
func (p P) String() string {
	return fmt.Sprintf("poly(n=%d, maxbits=%d)", p.N(), p.MaxBitLen())
}
