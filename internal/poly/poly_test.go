package poly

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randP(rng *rand.Rand, n int, bound int64) P {
	p := New(n)
	for i := range p.Coeffs {
		p.Coeffs[i].SetInt64(rng.Int63n(2*bound+1) - bound)
	}
	return p
}

func naiveMul(a, b P) P {
	n := a.N()
	out := New(n)
	t := new(big.Int)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t.Mul(a.Coeffs[i], b.Coeffs[j])
			k := i + j
			if k >= n {
				out.Coeffs[k-n].Sub(out.Coeffs[k-n], t)
			} else {
				out.Coeffs[k].Add(out.Coeffs[k], t)
			}
		}
	}
	return out
}

func equal(a, b P) bool {
	if a.N() != b.N() {
		return false
	}
	for i := range a.Coeffs {
		if a.Coeffs[i].Cmp(b.Coeffs[i]) != 0 {
			return false
		}
	}
	return true
}

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 16, 32, 64, 128} {
		a, b := randP(rng, n, 1000), randP(rng, n, 1000)
		if !equal(Mul(a, b), naiveMul(a, b)) {
			t.Fatalf("n=%d: Karatsuba disagrees with naive", n)
		}
	}
}

func TestMulBigCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 32
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		a.Coeffs[i].Rand(rng, new(big.Int).Lsh(big.NewInt(1), 500))
		b.Coeffs[i].Rand(rng, new(big.Int).Lsh(big.NewInt(1), 500))
	}
	if !equal(Mul(a, b), naiveMul(a, b)) {
		t.Fatal("big-coefficient product mismatch")
	}
}

func TestRingLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		a, b, c := randP(rng, n, 50), randP(rng, n, 50), randP(rng, n, 50)
		// commutativity, associativity, distributivity
		if !equal(Mul(a, b), Mul(b, a)) {
			return false
		}
		if !equal(Mul(Mul(a, b), c), Mul(a, Mul(b, c))) {
			return false
		}
		return equal(Mul(a, Add(b, c)), Add(Mul(a, b), Mul(a, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNegacyclicWrap(t *testing.T) {
	// x^{n-1} · x = -1.
	n := 8
	a, b := New(n), New(n)
	a.Coeffs[n-1].SetInt64(1)
	b.Coeffs[1].SetInt64(1)
	p := Mul(a, b)
	if p.Coeffs[0].Int64() != -1 {
		t.Fatalf("x^{n-1}·x = %v, want -1", p.Coeffs[0])
	}
}

func TestFieldNormIdentity(t *testing.T) {
	// N(f)(x²) == f(x)·f(−x) in the big ring.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 16, 64} {
		f := randP(rng, n, 100)
		nf := FieldNorm(f)
		lhs := LiftSub(nf) // N(f)(x²) in ring 2·(n/2) = n... careful
		rhs := Mul(f, Conj(f))
		if !equal(lhs, rhs) {
			t.Fatalf("n=%d: field norm identity fails", n)
		}
	}
}

func TestFieldNormMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 16
	a, b := randP(rng, n, 30), randP(rng, n, 30)
	lhs := FieldNorm(Mul(a, b))
	rhs := Mul(FieldNorm(a), FieldNorm(b))
	if !equal(lhs, rhs) {
		t.Fatal("field norm is not multiplicative")
	}
}

func TestAdjointInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randP(rng, 16, 100)
	if !equal(Adjoint(Adjoint(p)), p) {
		t.Fatal("adjoint not an involution")
	}
}

func TestAdjointSelfProductSymmetric(t *testing.T) {
	// f·adj(f) is self-adjoint (real in Fourier domain).
	rng := rand.New(rand.NewSource(6))
	p := randP(rng, 16, 100)
	s := Mul(p, Adjoint(p))
	if !equal(Adjoint(s), s) {
		t.Fatal("f·f* not self-adjoint")
	}
}

func TestConjInvolutionAndRing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := randP(rng, 16, 100), randP(rng, 16, 100)
	if !equal(Conj(Conj(a)), a) {
		t.Fatal("conj not involution")
	}
	if !equal(Conj(Mul(a, b)), Mul(Conj(a), Conj(b))) {
		t.Fatal("conj not multiplicative")
	}
}

func TestShiftRightAndBitLen(t *testing.T) {
	p := FromInt64([]int64{1024, -7, 0, 3})
	if p.MaxBitLen() != 11 {
		t.Fatalf("MaxBitLen = %d", p.MaxBitLen())
	}
	q := p.ShiftRight(3)
	if q.Coeffs[0].Int64() != 128 {
		t.Fatalf("shift: %v", q.Coeffs[0])
	}
}

func TestScalarOps(t *testing.T) {
	p := FromInt64([]int64{1, 2, 3, 4})
	k := big.NewInt(-3)
	s := ScalarMul(p, k)
	if s.Coeffs[2].Int64() != -9 {
		t.Fatal("scalar mul wrong")
	}
	if !Neg(p).IsZero() == p.IsZero() && p.IsZero() {
		t.Fatal("zero logic")
	}
	if !Sub(p, p).IsZero() {
		t.Fatal("p-p != 0")
	}
	if New(4).IsZero() != true {
		t.Fatal("zero poly not zero")
	}
	_ = p.String()
	if !equal(p.Clone(), p) {
		t.Fatal("clone mismatch")
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(4), New(8))
}
