package acceptance

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestEvalCellPowerAndEncoding checks the gate's two sides on synthetic
// data: an obviously wrong empirical distribution must fail, and samples
// outside the reference window must fail with the −1 χ² encoding (JSON
// cannot carry +Inf).
func TestEvalCellPowerAndEncoding(t *testing.T) {
	gates := Gates{}.normalize()

	// 4096 zeros are not D_{ℤ,2,0}.
	zeros := make([]int, 4096)
	if c := evalCell(zeros, 2, 0, 96, gates); c.Pass {
		t.Fatalf("constant-zero samples passed the σ=2 gate: %+v", c)
	}

	// A sample at 40σ lies outside the 12σ window.
	out := make([]int, 4096)
	out[17] = 80
	c := evalCell(out, 2, 0, 96, gates)
	if c.Pass {
		t.Fatalf("out-of-window sample passed: %+v", c)
	}
	if c.ChiSquare != -1 || c.Err == "" {
		t.Fatalf("out-of-window cell should encode χ²=−1 with an error, got %+v", c)
	}
}

// TestReportFinalizeAndJSON pins the aggregate-pass rule — gated
// sections decide, ungated ones don't — and the JSON round trip CI
// depends on.
func TestReportFinalizeAndJSON(t *testing.T) {
	r := &Report{
		Modes: []string{"grid", "ct"},
		Grid: &GridReport{
			Cells: []CellResult{{Surface: "compiled", Sigma: 2, Pass: true}},
		},
		Timing: []TimingResult{
			{Name: "bitsliced", Gated: true, Pass: true},
			{Name: "bytescan", Gated: false, Pass: false}, // informational failure
		},
		Work: []WorkResult{{Name: "bits/refill", Gated: true, Pass: true}},
	}
	r.Finalize()
	if !r.Pass || !r.Grid.Pass {
		t.Fatalf("report with only ungated failures must pass: %+v", r)
	}
	r.Work[0].Pass = false
	r.Finalize()
	if r.Pass {
		t.Fatal("gated work failure must fail the report")
	}
	r.Work[0].Pass = true
	r.Grid.Cells = append(r.Grid.Cells, CellResult{Surface: "http", Sigma: 3.5, Pass: false})
	r.Finalize()
	if r.Pass || r.Grid.Pass {
		t.Fatal("failing grid cell must fail the report")
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Version != ReportVersion || back.Pass != r.Pass || len(back.Grid.Cells) != 2 {
		t.Fatalf("round-tripped report diverges: %+v", back)
	}
}

// TestGoldenVerify is the standing regression net: every pinned stream —
// all PRNG backends × engine widths plus the compiled circuits — must
// match testdata/golden.json at every prefetch depth.  This subsumes the
// depth>0 vs depth=0 identity property at W ∈ {1, 2, 4, 8, 16}: one
// pinned digest, three depths.  Cross-SIMD-backend identity at the
// kernel widths is TestGoldenBackendsIdentical.
func TestGoldenVerify(t *testing.T) {
	results, err := VerifyGolden("testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(GoldenCases()) {
		t.Fatalf("%d results for %d cases", len(results), len(GoldenCases()))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("golden %s: %s", r.Name, r.Err)
			continue
		}
		if len(r.DepthsVerified) != len(GoldenDepths) {
			t.Errorf("golden %s verified at depths %v, want %v", r.Name, r.DepthsVerified, GoldenDepths)
		}
	}
}

// TestSmokeGrid runs the budgeted PR grid end to end — compiled,
// convolved and HTTP surfaces against the bigfp reference.  It is the
// same code path CI's acceptance job drives through cmd/ctcheck.
func TestSmokeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke grid draws ~100k samples; skipped in -short")
	}
	rep, err := RunGrid(GridOptions{Smoke: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		for _, c := range rep.Cells {
			if !c.Pass {
				t.Errorf("cell %s/%s σ=%g μ=%g failed: p=%g R₂=%g err=%q",
					c.Surface, c.Endpoint, c.Sigma, c.Mu, c.PValue, c.Renyi2, c.Err)
			}
		}
		t.Fatal("smoke grid failed")
	}
	surfaces := map[string]int{}
	for _, c := range rep.Cells {
		surfaces[c.Surface]++
	}
	for _, s := range []string{"compiled", "convolved", "http"} {
		if surfaces[s] == 0 {
			t.Fatalf("smoke grid has no %s cells: %v", s, surfaces)
		}
	}
}
