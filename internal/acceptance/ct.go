package acceptance

import (
	"fmt"
	"math"
	"math/rand"

	"ctgauss/internal/convolve"
	"ctgauss/internal/core"
	"ctgauss/internal/ctcheck"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

// CTOptions configures the budgeted constant-time pass.
type CTOptions struct {
	// Sigmas are the compiled configurations to probe (default: every
	// registry-served σ on the full pass, the first on smoke).
	Sigmas []string
	// N and TailCut fix the compiled configuration (defaults 128 / 13 —
	// the paper's Falcon setting).
	N       int
	TailCut float64
	// Measurements is the dudect sample count per class (default 2000
	// full, 600 smoke).
	Measurements int
	// Smoke budgets the pass for PR CI.
	Smoke bool
	// Threshold is the gated |t| bound (default 50).  Wall clock under a
	// GC runtime is far noisier than dudect's bare-metal 4.5, so the
	// gate only catches gross class separation; the deterministic
	// work-count ledgers are the exact evidence.
	Threshold float64
	// Logf, when set, receives one line per verdict.
	Logf func(format string, args ...any)
}

func (o CTOptions) normalize() CTOptions {
	if len(o.Sigmas) == 0 {
		o.Sigmas = []string{"2", "6.15543"}
		if o.Smoke {
			o.Sigmas = o.Sigmas[:1]
		}
	}
	if o.N == 0 {
		o.N = 128
	}
	if o.TailCut == 0 {
		o.TailCut = 13
	}
	if o.Measurements == 0 {
		if o.Smoke {
			o.Measurements = 600
		} else {
			o.Measurements = 2000
		}
	}
	if o.Threshold == 0 {
		o.Threshold = 50
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// RunCT runs the dudect timing pass and the deterministic work-count
// pass over the bitsliced evaluation, the CDT baselines, and the
// convolve combine/round path.
func RunCT(opt CTOptions) (timing []TimingResult, work []WorkResult, err error) {
	opt = opt.normalize()

	dudect := func(name string, gated bool, note string, classA, classB func(), inner int) {
		r := ctcheck.CompareTiming(classA, classB,
			ctcheck.Options{Measurements: opt.Measurements, InnerReps: inner})
		tr := TimingResult{
			Name: name, T: r.T, TRaw: r.TRaw, NA: r.NA, NB: r.NB,
			Threshold: opt.Threshold, Gated: gated,
			Pass: math.Abs(r.T) <= opt.Threshold,
			Note: note,
		}
		timing = append(timing, tr)
		opt.Logf("  timing %-28s t=%+8.2f (raw %+8.2f) gated=%-5v pass=%v",
			name, tr.T, tr.TRaw, gated, tr.Pass)
	}

	for _, sig := range opt.Sigmas {
		b, berr := core.Build(core.Config{Sigma: sig, N: opt.N, TailCut: opt.TailCut, Min: core.MinimizeExact})
		if berr != nil {
			return nil, nil, fmt.Errorf("acceptance: ct: building σ=%s: %w", sig, berr)
		}

		// dudect over the bitsliced evaluation: the two classes differ
		// only in PRNG seed, i.e. in every secret the circuit handles.
		mkBit := func(seed string) func() {
			s := b.NewSampler(prng.MustChaCha20([]byte(seed)))
			dst := make([]int, 64)
			return func() { s.NextBatch(dst) }
		}
		dudect("bitsliced σ="+sig, true, "classes: two fixed PRNG seeds",
			mkBit("acceptance-class-A"), mkBit("acceptance-class-B"), 16)

		// The CDT baselines published alongside the paper's comparison:
		// linear-scan is constant-time by construction (gated), byte-scan
		// is the known-leaky baseline (informational).
		mkCDT := func(ctor func() interface{ Next() int }) func() {
			s := ctor()
			return func() {
				for i := 0; i < 64; i++ {
					s.Next()
				}
			}
		}
		dudect("cdt-linear-ct σ="+sig, true, "constant-time baseline",
			mkCDT(func() interface{ Next() int } {
				return sampler.NewLinearCDT(b.Table, prng.MustChaCha20([]byte("acceptance-class-A")))
			}),
			mkCDT(func() interface{ Next() int } {
				return sampler.NewLinearCDT(b.Table, prng.MustChaCha20([]byte("acceptance-class-B")))
			}), 16)
		dudect("cdt-bytescan σ="+sig, false, "known-leaky baseline, informational",
			mkCDT(func() interface{ Next() int } {
				return sampler.NewByteScanCDT(b.Table, prng.MustChaCha20([]byte("acceptance-class-A")))
			}),
			mkCDT(func() interface{ Next() int } {
				return sampler.NewByteScanCDT(b.Table, prng.MustChaCha20([]byte("acceptance-class-B")))
			}), 16)

		// Work ledger: the bitsliced sampler must draw a bit-exact
		// constant amount of randomness per refill at the paper's
		// per-batch width, the portable width, and — when it differs —
		// the active SIMD backend's native serving width.
		widths := []int{1, sampler.DefaultWidth}
		if nw := sampler.NativeWidth(); nw != sampler.DefaultWidth {
			widths = append(widths, nw)
		}
		for _, width := range widths {
			s := b.NewWideSampler(prng.MustChaCha20([]byte("acceptance-work")), width)
			var w ctcheck.WorkTrace
			prev := uint64(0)
			dst := make([]int, 64)
			for i := 0; i < 200; i++ {
				for j := 0; j < width; j++ {
					s.NextBatch(dst)
				}
				w.Record(s.BitsUsed() - prev)
				prev = s.BitsUsed()
			}
			wr := WorkResult{
				Name:     fmt.Sprintf("bitsliced σ=%s w=%d bits/refill", sig, width),
				Constant: w.Constant(), UnitsPerOp: w.Counts[0],
				Gated: true, Pass: w.Constant(),
			}
			work = append(work, wr)
			opt.Logf("  work   %-28s constant=%v units=%d", wr.Name, wr.Constant, wr.UnitsPerOp)
		}

		// Linear CDT: comparisons per sample must be constant.
		lin := sampler.NewLinearCDT(b.Table, prng.MustChaCha20([]byte("acceptance-work")))
		var wl ctcheck.WorkTrace
		for i := 0; i < 4096; i++ {
			before := lin.Steps
			lin.Next()
			wl.Record(lin.Steps - before)
		}
		work = append(work, WorkResult{
			Name:     "cdt-linear-ct σ=" + sig + " cmp/sample",
			Constant: wl.Constant(), UnitsPerOp: wl.Counts[0],
			Gated: true, Pass: wl.Constant(),
		})

		// Byte-scan CDT: the work-vs-|sample| correlation is the leak
		// signature this harness exists to catch — kept as the ungated
		// positive control proving the instrument sees real leaks.
		bs := sampler.NewByteScanCDT(b.Table, prng.MustChaCha20([]byte("acceptance-work")))
		var wb ctcheck.WorkTrace
		secret := make([]float64, 0, 4096)
		for i := 0; i < 4096; i++ {
			before := bs.Steps
			v := bs.Next()
			if v < 0 {
				v = -v
			}
			wb.Record(bs.Steps - before)
			secret = append(secret, float64(v))
		}
		work = append(work, WorkResult{
			Name:     "cdt-bytescan σ=" + sig + " cmp/sample",
			Constant: wb.Constant(), Correlation: wb.Correlation(secret),
			Gated: false, Pass: wb.Constant(),
			Note: "known-leaky baseline: correlation is the leak signature (positive control)",
		})
		opt.Logf("  work   %-28s constant=%v corr=%+.3f (positive control)",
			"cdt-bytescan σ="+sig, wb.Constant(), wb.Correlation(secret))
	}

	// Convolve combine/round path: class A a fixed worst-case-magnitude
	// (x, coin) pair, class B random pairs — a data-dependent branch or
	// lookup in the round path would separate them.
	cs, cerr := convolve.New(convolve.Config{Shards: 1, Seed: deriveSeed("ct/convolve")})
	if cerr != nil {
		return nil, nil, fmt.Errorf("acceptance: ct: building convolve sampler: %w", cerr)
	}
	defer cs.Close()
	for _, cell := range []struct{ sigma, mu float64 }{{17.5, 0.375}, {2.5, 0.5}} {
		probe, sigmaP, perr := cs.RoundProbe(cell.sigma, cell.mu)
		if perr != nil {
			return nil, nil, fmt.Errorf("acceptance: ct: round probe σ=%g: %w", cell.sigma, perr)
		}
		rng := rand.New(rand.NewSource(7))
		const n = 1024
		span := int64(13 * sigmaP)
		fixedX, randX := make([]int64, n), make([]int64, n)
		fixedC, randC := make([]uint64, n), make([]uint64, n)
		for i := 0; i < n; i++ {
			fixedX[i], fixedC[i] = span, 0xDEADBEEFCAFEF00D
			randX[i], randC[i] = rng.Int63n(2*span+1)-span, rng.Uint64()
		}
		var sink int64
		mkRound := func(xs []int64, cs []uint64) func() {
			i := 0
			return func() {
				z, acc := probe(xs[i&(n-1)], cs[i&(n-1)])
				sink += z + int64(acc)
				i++
			}
		}
		dudect(fmt.Sprintf("convolve-round σ=%g μ=%g", cell.sigma, cell.mu), true,
			"classes: fixed worst-case vs random (x, coin)",
			mkRound(fixedX, fixedC), mkRound(randX, randC), 64)
		_ = sink
		if opt.Smoke {
			break
		}
	}
	return timing, work, nil
}
