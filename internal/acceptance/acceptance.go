// Package acceptance is the continuous statistical + constant-time
// acceptance harness: the standing correctness gate every performance PR
// runs under.
//
// The paper's claim is twofold — the compiled sampler is a faithful
// discrete Gaussian AND its execution is constant-time (§5.2's
// dudect-style analysis).  This package turns both halves into one
// reusable, machine-readable verdict over the whole served surface:
//
//   - Grid (grid.go): sweep a configurable (σ, μ) grid across the three
//     serving surfaces — direct-compiled circuits (ctgauss.Pool),
//     convolved plans (ctgauss.Arbitrary), and the HTTP daemon (an
//     httptest-mounted internal/server) — and cross-validate every cell
//     against the independent high-precision reference in internal/bigfp
//     with chi-square and Rényi-divergence gates (the Carm protocol: an
//     implementation is accepted only against a reference computed by a
//     different pipeline at much higher precision).
//   - Golden vectors (golden.go): pin the exact output stream of every
//     PRNG backend × engine-width combination, verified at several
//     prefetch depths, so any change to the evaluation pipeline that
//     moves a single sample is caught byte-for-byte.
//   - Constant-time (ct.go): a budgeted dudect pass (Welch's t between
//     input classes) over the bitsliced evaluation, the CDT baselines,
//     and the convolve combine/round path, plus the deterministic
//     work-count ledgers that stay meaningful under a GC runtime.
//
// cmd/ctcheck drives all three modes and emits the Report as a JSON
// artifact; CI runs a budgeted smoke grid on PRs and the full grid on
// main (see docs/ACCEPTANCE.md).
package acceptance

import (
	"crypto/sha256"
	"encoding/json"
	"io"
	"math"
	"math/big"

	"ctgauss/internal/bigfp"
	"ctgauss/internal/ctcheck"
)

// Gates are the per-cell statistical acceptance thresholds.
type Gates struct {
	// Alpha is the minimum chi-square p-value (default 1e-6: a sound
	// sampler crosses it with probability 10⁻⁶ per cell, while a broken
	// one lands at ≈ 0 — the gate keeps its power at negligible flake
	// rate even though the HTTP surface's shard interleave is not
	// deterministic run to run).
	Alpha float64 `json:"alpha"`
	// MaxRenyi is the maximum order-2 Rényi divergence of the empirical
	// distribution against the reference (default 1.05; the finite-sample
	// expectation is ≈ 1 + bins/samples, well below it at the default
	// cell budget).
	MaxRenyi float64 `json:"max_renyi"`
}

func (g Gates) normalize() Gates {
	if g.Alpha == 0 {
		g.Alpha = 1e-6
	}
	if g.MaxRenyi == 0 {
		g.MaxRenyi = 1.05
	}
	return g
}

// CellResult is one grid cell's verdict: samples drawn from one surface
// for one (σ, μ), cross-validated against the bigfp reference PMF.
type CellResult struct {
	// Surface is "compiled", "convolved", "promoted", or "http".
	Surface string `json:"surface"`
	// Endpoint refines the http surface: "samples", "samples-freeform",
	// or "arbitrary".
	Endpoint string  `json:"endpoint,omitempty"`
	Sigma    float64 `json:"sigma"`
	Mu       float64 `json:"mu"`
	Samples  int     `json:"samples"`

	// ChiSquare is Pearson's statistic over the merged bins (−1 encodes
	// +Inf: a sample landed outside the 12σ reference window).
	ChiSquare float64 `json:"chi_square"`
	DF        int     `json:"df"`
	PValue    float64 `json:"p_value"`
	Renyi2    float64 `json:"renyi2"`
	Bins      int     `json:"bins"`
	// RefTailMass is the ideal mass the reference window strands (≈ e⁻⁷²
	// at 12σ) — recorded so a report reader can verify the reference
	// covered essentially all mass.
	RefTailMass float64 `json:"ref_tail_mass"`

	Pass bool   `json:"pass"`
	Err  string `json:"error,omitempty"`
}

// evalCell cross-validates samples against the bigfp reference for
// D_{ℤ,σ,μ} over the customary 12σ window.
func evalCell(samples []int, sigma, mu float64, prec uint, gates Gates) CellResult {
	lo := int(math.Floor(mu - 12*sigma))
	hi := int(math.Ceil(mu + 12*sigma))
	sb := new(big.Float).SetPrec(prec).SetFloat64(sigma)
	mb := new(big.Float).SetPrec(prec).SetFloat64(mu)
	probs, tail := bigfp.PMF(sb, mb, int64(lo), int64(hi), prec)
	g := ctcheck.GOFAgainst(samples, lo, probs)
	res := CellResult{
		Sigma:       sigma,
		Mu:          mu,
		Samples:     g.N,
		ChiSquare:   g.Stat,
		DF:          g.DF,
		PValue:      g.PValue,
		Renyi2:      g.Renyi2,
		Bins:        g.Bins,
		RefTailMass: tail,
		Pass:        g.Pass(gates.Alpha, gates.MaxRenyi),
	}
	if math.IsInf(res.ChiSquare, 1) {
		res.ChiSquare = -1
		res.Err = "samples outside the 12σ reference window"
	}
	if math.IsInf(res.Renyi2, 1) {
		res.Renyi2 = -1
	}
	return res
}

// GridReport is the grid mode's section of the Report.
type GridReport struct {
	Gates          Gates        `json:"gates"`
	SamplesPerCell int          `json:"samples_per_cell"`
	RefPrecision   uint         `json:"ref_precision_bits"`
	Cells          []CellResult `json:"cells"`
	Pass           bool         `json:"pass"`
}

// GoldenResult is one golden vector's verification verdict.
type GoldenResult struct {
	Name   string `json:"name"`
	PRNG   string `json:"prng"`
	Width  int    `json:"width"`
	SHA256 string `json:"sha256"`
	// DepthsVerified lists the engine prefetch depths whose streams
	// matched the pinned vector (identity across depths is part of the
	// contract, not just identity at one).
	DepthsVerified []int  `json:"depths_verified,omitempty"`
	Pass           bool   `json:"pass"`
	Err            string `json:"error,omitempty"`
}

// TimingResult is one dudect comparison: Welch's t between two input
// classes of a target.  Gated targets fail the report when |t| exceeds
// Threshold; ungated targets are informational baselines.
type TimingResult struct {
	Name      string  `json:"name"`
	T         float64 `json:"t"`
	TRaw      float64 `json:"t_raw"`
	NA        int     `json:"n_a"`
	NB        int     `json:"n_b"`
	Threshold float64 `json:"threshold"`
	Gated     bool    `json:"gated"`
	Pass      bool    `json:"pass"`
	Note      string  `json:"note,omitempty"`
}

// WorkResult is one deterministic work-count verdict — the evidence that
// stays exact under a garbage-collected runtime.  For a gated target the
// count must be identical on every invocation.
type WorkResult struct {
	Name string `json:"name"`
	// Constant reports whether every recorded count was identical;
	// UnitsPerOp is that constant (bits per refill, comparisons per
	// sample, coins per trial — per target).
	Constant   bool   `json:"constant"`
	UnitsPerOp uint64 `json:"units_per_op,omitempty"`
	// Correlation is Pearson's r between work and |sample| where the
	// target's work varies (the leak signature of the byte-scan CDT).
	Correlation float64 `json:"correlation,omitempty"`
	Gated       bool    `json:"gated"`
	Pass        bool    `json:"pass"`
	Note        string  `json:"note,omitempty"`
}

// Report is the machine-readable acceptance artifact cmd/ctcheck emits
// and CI uploads: one JSON document carrying every verdict of a run.
type Report struct {
	Version int      `json:"version"`
	Modes   []string `json:"modes"`
	Smoke   bool     `json:"smoke,omitempty"`

	Grid   *GridReport    `json:"grid,omitempty"`
	Golden []GoldenResult `json:"golden,omitempty"`
	Timing []TimingResult `json:"timing,omitempty"`
	Work   []WorkResult   `json:"work,omitempty"`

	// Pass is the single CI gate: every gated verdict in every section
	// passed.
	Pass bool `json:"pass"`
}

// ReportVersion is the current Report schema version.
const ReportVersion = 1

// Finalize recomputes the aggregate Pass from every section.
func (r *Report) Finalize() {
	r.Version = ReportVersion
	r.Pass = true
	if r.Grid != nil {
		r.Grid.Pass = true
		for _, c := range r.Grid.Cells {
			if !c.Pass {
				r.Grid.Pass = false
			}
		}
		r.Pass = r.Pass && r.Grid.Pass
	}
	for _, g := range r.Golden {
		if !g.Pass {
			r.Pass = false
		}
	}
	for _, t := range r.Timing {
		if t.Gated && !t.Pass {
			r.Pass = false
		}
	}
	for _, w := range r.Work {
		if w.Gated && !w.Pass {
			r.Pass = false
		}
	}
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// deriveSeed derives a fixed, role-separated seed for the harness's
// deterministic runs (32 bytes — valid for every PRNG backend).
func deriveSeed(role string) []byte {
	h := sha256.Sum256([]byte("ctgauss/acceptance/" + role))
	return h[:]
}
