package acceptance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"

	"ctgauss"
	"ctgauss/internal/sampler/gen"
	"ctgauss/internal/server"
	"ctgauss/internal/tier"
)

// GridOptions configures a grid sweep.  The zero value selects the full
// grid with the documented defaults.
type GridOptions struct {
	// Smoke selects the budgeted PR grid: fewer cells and fewer samples
	// per cell, same gates.  The full grid runs on main.
	Smoke bool
	// SamplesPerCell overrides the per-cell draw (default 24576 full,
	// 8192 smoke).
	SamplesPerCell int
	// Gates are the per-cell thresholds (zero value = defaults).
	Gates Gates
	// Prec is the bigfp reference precision in bits (default 160).
	Prec uint
	// PRNG selects the sampler backend ("chacha20" default).
	PRNG string
	// Workers bounds circuit-build parallelism (0 = all CPUs).
	Workers int
	// Logf, when set, receives one progress line per cell.
	Logf func(format string, args ...any)
}

func (o GridOptions) normalize() GridOptions {
	if o.SamplesPerCell == 0 {
		if o.Smoke {
			o.SamplesPerCell = 8192
		} else {
			o.SamplesPerCell = 24576
		}
	}
	o.Gates = o.Gates.normalize()
	if o.Prec == 0 {
		o.Prec = 160
	}
	if o.PRNG == "" {
		o.PRNG = "chacha20"
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// compiledSigmas is the direct-compiled surface: the registry-served σ
// values (pregenerated native circuits) plus, on the full grid, interior
// points of the per-σ pipeline's range so the sweep is not limited to
// the two paper configurations.
func compiledSigmas(smoke bool) []string {
	if smoke {
		return gen.Sigmas()
	}
	out := []string{"1.5", "3", "4.5"}
	return append(out, gen.Sigmas()...)
}

// convolvedGrid is the (σ, μ) cell set of the convolution surface: σ
// spans the admissible range from just above MinSigma through the
// LargeSigma ladder regime, μ sits on grid-cell boundaries (0, the
// half-integer midpoint, and a negative quarter-fraction) — the centers
// where the constant-time randomized rounding does real work.
func convolvedGrid(smoke bool) (sigmas, mus []float64) {
	if smoke {
		return []float64{1.4142, 3.3, 17.5}, []float64{0, -2.625}
	}
	return []float64{1.1, 1.4142, 2.5, 3.3, 8, 17.5, 42.7, 100},
		[]float64{0, 0.5, -2.625}
}

// RunGrid sweeps the grid over all three serving surfaces and
// cross-validates every cell against the bigfp reference.
func RunGrid(opt GridOptions) (*GridReport, error) {
	opt = opt.normalize()
	rep := &GridReport{
		Gates:          opt.Gates,
		SamplesPerCell: opt.SamplesPerCell,
		RefPrecision:   opt.Prec,
	}
	if err := sweepCompiled(opt, rep); err != nil {
		return nil, err
	}
	if err := sweepConvolved(opt, rep); err != nil {
		return nil, err
	}
	if err := sweepPromoted(opt, rep); err != nil {
		return nil, err
	}
	if err := sweepHTTP(opt, rep); err != nil {
		return nil, err
	}
	rep.Pass = true
	for _, c := range rep.Cells {
		if !c.Pass {
			rep.Pass = false
		}
	}
	return rep, nil
}

func (o GridOptions) record(rep *GridReport, c CellResult) {
	rep.Cells = append(rep.Cells, c)
	verdict := "ok"
	if !c.Pass {
		verdict = "FAIL"
	}
	o.Logf("  %-9s %-16s σ=%-8g μ=%-7g p=%.4g R₂=%.5f bins=%d %s",
		c.Surface, c.Endpoint, c.Sigma, c.Mu, c.PValue, c.Renyi2, c.Bins, verdict)
}

// sweepCompiled draws each compiled-surface cell from a serving pool
// (engine runtime included), μ = 0 — the per-σ pipeline's contract.
func sweepCompiled(opt GridOptions, rep *GridReport) error {
	for _, sig := range compiledSigmas(opt.Smoke) {
		sf, err := strconv.ParseFloat(sig, 64)
		if err != nil {
			return fmt.Errorf("acceptance: compiled σ %q: %w", sig, err)
		}
		pool, err := ctgauss.NewPoolWithConfig(ctgauss.Config{
			Sigma:   sig,
			Seed:    deriveSeed("grid/compiled/" + sig),
			PRNG:    opt.PRNG,
			Workers: opt.Workers,
		}, 2)
		if err != nil {
			return fmt.Errorf("acceptance: building compiled σ=%s: %w", sig, err)
		}
		dst := make([]int, opt.SamplesPerCell)
		if err := pool.Take(nil, dst); err != nil {
			pool.Close()
			return fmt.Errorf("acceptance: drawing compiled σ=%s: %w", sig, err)
		}
		pool.Close()
		c := evalCell(dst, sf, 0, opt.Prec, opt.Gates)
		c.Surface = "compiled"
		opt.record(rep, c)
	}
	return nil
}

// sweepConvolved draws every convolved cell from one Arbitrary sampler
// over the default base set — the exact serving configuration.
func sweepConvolved(opt GridOptions, rep *GridReport) error {
	arb, err := ctgauss.NewArbitrary(ctgauss.ArbitraryConfig{
		Shards:  2,
		Seed:    deriveSeed("grid/convolved"),
		PRNG:    opt.PRNG,
		Workers: opt.Workers,
	})
	if err != nil {
		return fmt.Errorf("acceptance: building convolved surface: %w", err)
	}
	defer arb.Close()
	sigmas, mus := convolvedGrid(opt.Smoke)
	dst := make([]int, opt.SamplesPerCell)
	for _, sigma := range sigmas {
		for _, mu := range mus {
			c := CellResult{Surface: "convolved", Sigma: sigma, Mu: mu}
			if err := arb.NextBatch(sigma, mu, dst); err != nil {
				c.Err = err.Error()
			} else {
				c = evalCell(dst, sigma, mu, opt.Prec, opt.Gates)
				c.Surface = "convolved"
			}
			opt.record(rep, c)
		}
	}
	return nil
}

// promotedSigmas is the promoted-tier surface: free-form σ values a
// tier controller has promoted onto compiled pools.  They deliberately
// overlap the convolved grid, so the same key is gated on both the tier
// it starts on and the tier it is promoted to.
func promotedSigmas(smoke bool) []float64 {
	if smoke {
		return []float64{2.5}
	}
	return []float64{2.5, 3.3}
}

// sweepPromoted drives each promoted cell through a real tier
// controller — ForcePromote builds the compiled pool exactly as the
// daemon's background promotion would, and the draw goes through the
// refcounted Acquire path — so the gate covers the samples a client
// sees after a key's promotion, μ = 0 (the only center the compiled
// tier serves).
func sweepPromoted(opt GridOptions, rep *GridReport) error {
	ctrl, err := tier.New(tier.Config{
		// No ticker: the harness owns every transition.
		Tick: -1,
		Build: func(sigma string) (tier.Pool, error) {
			return ctgauss.NewPoolWithConfig(ctgauss.Config{
				Sigma:   sigma,
				Seed:    deriveSeed("grid/promoted/" + sigma),
				PRNG:    opt.PRNG,
				Workers: opt.Workers,
			}, 2)
		},
	})
	if err != nil {
		return fmt.Errorf("acceptance: tier controller: %w", err)
	}
	defer ctrl.Close()
	for _, sigma := range promotedSigmas(opt.Smoke) {
		if err := ctrl.ForcePromote(sigma); err != nil {
			return fmt.Errorf("acceptance: promoting σ=%g: %w", sigma, err)
		}
		pool, release, ok := ctrl.Acquire(sigma)
		if !ok {
			return fmt.Errorf("acceptance: σ=%g not acquirable after promotion", sigma)
		}
		dst := make([]int, opt.SamplesPerCell)
		err := pool.Take(nil, dst)
		release()
		if err != nil {
			return fmt.Errorf("acceptance: drawing promoted σ=%g: %w", sigma, err)
		}
		c := evalCell(dst, sigma, 0, opt.Prec, opt.Gates)
		c.Surface = "promoted"
		opt.record(rep, c)
	}
	return nil
}

// httpCell names one HTTP-surface cell.
type httpCell struct {
	endpoint string // "samples", "samples-freeform", "arbitrary"
	sigmaStr string // samples path: served or free-form σ spelling
	sigma    float64
	mu       float64
}

func httpCells(served []string, smoke bool) []httpCell {
	var cells []httpCell
	if smoke {
		cells = append(cells, httpCell{endpoint: "samples", sigmaStr: served[0], sigma: mustParse(served[0])})
		cells = append(cells, httpCell{endpoint: "arbitrary", sigma: 2.5, mu: 0.5})
		return cells
	}
	for _, s := range served {
		cells = append(cells, httpCell{endpoint: "samples", sigmaStr: s, sigma: mustParse(s)})
	}
	cells = append(cells, httpCell{endpoint: "samples-freeform", sigmaStr: "3.5", sigma: 3.5})
	cells = append(cells,
		httpCell{endpoint: "arbitrary", sigma: 2.5, mu: 0.5},
		httpCell{endpoint: "arbitrary", sigma: 12, mu: -1.25},
		httpCell{endpoint: "arbitrary", sigma: 64, mu: 0.125},
	)
	return cells
}

func mustParse(s string) float64 {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic("acceptance: unparseable served σ " + s)
	}
	return f
}

// sweepHTTP mounts a ctgaussd serving layer under httptest and sweeps
// the served surface end to end: precompiled /v1/samples pools, the
// free-form σ fallback, and /v1/arbitrary — coalescers, admission and
// JSON codecs included.
func sweepHTTP(opt GridOptions, rep *GridReport) error {
	srv, err := server.New(server.Config{
		Sigmas:          gen.Sigmas(),
		PoolShards:      2,
		ArbitraryShards: 2,
		Seed:            deriveSeed("grid/http"),
		PRNG:            opt.PRNG,
	})
	if err != nil {
		return fmt.Errorf("acceptance: building http surface: %w", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	// The request size stays under the server's default MaxCount and
	// large enough to exercise multi-refill coalesced draws.
	const perReq = 4096
	for _, cell := range httpCells(srv.Sigmas(), opt.Smoke) {
		samples, err := drawHTTP(ts.Client(), ts.URL, cell, opt.SamplesPerCell, perReq)
		c := CellResult{Surface: "http", Endpoint: cell.endpoint, Sigma: cell.sigma, Mu: cell.mu}
		if err != nil {
			c.Err = err.Error()
		} else {
			c = evalCell(samples, cell.sigma, cell.mu, opt.Prec, opt.Gates)
			c.Surface = "http"
			c.Endpoint = cell.endpoint
		}
		opt.record(rep, c)
	}
	return nil
}

func drawHTTP(client *http.Client, base string, cell httpCell, total, perReq int) ([]int, error) {
	samples := make([]int, 0, total)
	for len(samples) < total {
		n := total - len(samples)
		if n > perReq {
			n = perReq
		}
		var (
			url  string
			body any
		)
		switch cell.endpoint {
		case "samples", "samples-freeform":
			url = base + "/v1/samples"
			body = map[string]any{"count": n, "sigma": cell.sigmaStr}
		case "arbitrary":
			url = base + "/v1/arbitrary"
			body = map[string]any{"count": n, "sigma": cell.sigma, "mu": cell.mu}
		default:
			return nil, fmt.Errorf("acceptance: unknown endpoint %q", cell.endpoint)
		}
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		var out struct {
			Samples []int  `json:"samples"`
			Error   string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("acceptance: %s: HTTP %d: %s", cell.endpoint, resp.StatusCode, out.Error)
		}
		if len(out.Samples) != n {
			return nil, fmt.Errorf("acceptance: %s: asked %d samples, got %d", cell.endpoint, n, len(out.Samples))
		}
		samples = append(samples, out.Samples...)
	}
	return samples, nil
}
