package acceptance

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"ctgauss/internal/core"
	"ctgauss/internal/engine"
	"ctgauss/internal/prng"
	"ctgauss/internal/registry"
	"ctgauss/internal/sampler"
	"ctgauss/internal/sampler/gen"
)

// GoldenCase identifies one pinned stream: a sampler construction whose
// exact output is part of the repository's contract.
type GoldenCase struct {
	// Name is the stable identifier ("interp/chacha20/w4", ...); the seed
	// derives from it, so renaming a case re-keys its stream.
	Name string `json:"name"`
	// Kind is "interp" (bitsliced interpreter at Width) or "compiled"
	// (pregenerated native circuit, width 1).
	Kind      string `json:"kind"`
	Sigma     string `json:"sigma"`
	Precision int    `json:"precision"`
	PRNG      string `json:"prng"`
	Width     int    `json:"width"`
	// Count is the pinned stream length in samples.
	Count int `json:"count"`
}

// GoldenVector is a case plus its pinned digest.
type GoldenVector struct {
	GoldenCase
	// SHA256 is the hex digest of the Count samples as little-endian
	// int64 words.
	SHA256 string `json:"sha256"`
	// Head is the first few samples in the clear, so a mismatch report is
	// debuggable without re-deriving the stream.
	Head []int `json:"head"`
}

// GoldenFile is the on-disk golden set (testdata/golden.json).
type GoldenFile struct {
	Version int            `json:"version"`
	Vectors []GoldenVector `json:"vectors"`
}

// GoldenDepths are the engine prefetch depths every vector is verified
// at: the synchronous path, the default double buffer, and a deep ring.
// Identity across all of them is the cross-depth stream contract.
var GoldenDepths = []int{0, 2, 5}

// goldenCount is the pinned stream length: four refills at the widest
// lane configuration, enough to cross several slot boundaries at every
// depth.
const goldenCount = 2048

// GoldenCases enumerates the pinned set: every PRNG backend at every
// supported engine width on the interpreter path (reduced precision for
// build speed — the stream contract is configuration-specific, not
// precision-blind), plus the full-precision pregenerated native circuits.
func GoldenCases() []GoldenCase {
	var cases []GoldenCase
	for _, prngName := range []string{"chacha20", "shake256", "aes-ctr"} {
		// 8 and 16 are the SIMD kernel widths (portable/AVX2 and AVX-512
		// native); 1, 2, 4 pin the narrow interpreter layouts.
		for _, w := range []int{1, 2, 4, 8, 16} {
			cases = append(cases, GoldenCase{
				Name:      fmt.Sprintf("interp/%s/w%d", prngName, w),
				Kind:      "interp",
				Sigma:     "2",
				Precision: 48,
				PRNG:      prngName,
				Width:     w,
				Count:     goldenCount,
			})
		}
	}
	for _, sig := range gen.Sigmas() {
		cases = append(cases, GoldenCase{
			Name:      "compiled/chacha20/" + sig,
			Kind:      "compiled",
			Sigma:     sig,
			Precision: 128,
			PRNG:      "chacha20",
			Width:     1,
			Count:     goldenCount,
		})
	}
	return cases
}

// goldenStream regenerates a case's stream through the engine runtime at
// the given prefetch depth.
func goldenStream(c GoldenCase, depth int) ([]int, error) {
	art, err := registry.Shared().Get(core.Config{
		Sigma:   c.Sigma,
		N:       c.Precision,
		TailCut: 13,
		Min:     core.MinimizeExact,
	})
	if err != nil {
		return nil, fmt.Errorf("acceptance: golden %s: build: %w", c.Name, err)
	}
	src, err := prng.NewSource(c.PRNG, deriveSeed("golden/"+c.Name))
	if err != nil {
		return nil, fmt.Errorf("acceptance: golden %s: %w", c.Name, err)
	}
	var bs sampler.BatchSampler
	switch c.Kind {
	case "interp":
		bs = art.NewWideSampler(src, c.Width)
	case "compiled":
		fn, nin, nval, ok := gen.Lookup(c.Sigma)
		if !ok {
			return nil, fmt.Errorf("acceptance: golden %s: no generated circuit for σ=%s", c.Name, c.Sigma)
		}
		if nin != art.Program.NumInputs || nval != art.Program.ValueBits {
			return nil, fmt.Errorf("acceptance: golden %s: generated circuit shape (%d in, %d bits) diverges from build (%d in, %d bits) — rerun go generate",
				c.Name, nin, nval, art.Program.NumInputs, art.Program.ValueBits)
		}
		bs = sampler.NewCompiled("golden-compiled("+c.Sigma+")", fn, nin, nval, src)
	default:
		return nil, fmt.Errorf("acceptance: golden %s: unknown kind %q", c.Name, c.Kind)
	}
	eng := engine.New(engine.Config{Shards: 1, SlotSize: c.Width * 64, Depth: depth},
		func(_ int, dst []int) {
			for off := 0; off < len(dst); off += 64 {
				bs.NextBatch(dst[off : off+64])
			}
		})
	defer eng.Close()
	out := make([]int, c.Count)
	if err := eng.TakeFrom(nil, 0, out); err != nil {
		return nil, fmt.Errorf("acceptance: golden %s: %w", c.Name, err)
	}
	return out, nil
}

// hashSamples digests samples as little-endian int64 words.
func hashSamples(samples []int) string {
	h := sha256.New()
	var buf [8]byte
	for _, s := range samples {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(s)))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RecordGolden regenerates every case at the synchronous depth and
// writes the golden file.  Run it (ctcheck -golden record) only when a
// stream change is intended — see docs/ACCEPTANCE.md for the rotation
// protocol.
func RecordGolden(path string) (*GoldenFile, error) {
	gf := &GoldenFile{Version: ReportVersion}
	for _, c := range GoldenCases() {
		stream, err := goldenStream(c, 0)
		if err != nil {
			return nil, err
		}
		head := stream
		if len(head) > 8 {
			head = head[:8]
		}
		gf.Vectors = append(gf.Vectors, GoldenVector{
			GoldenCase: c,
			SHA256:     hashSamples(stream),
			Head:       append([]int(nil), head...),
		})
	}
	data, err := json.MarshalIndent(gf, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	return gf, nil
}

// loadGolden reads and parses a pinned golden file.
func loadGolden(path string) (*GoldenFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("acceptance: reading golden file: %w", err)
	}
	var gf GoldenFile
	if err := json.Unmarshal(data, &gf); err != nil {
		return nil, fmt.Errorf("acceptance: parsing golden file %s: %w", path, err)
	}
	return &gf, nil
}

// VerifyGolden checks every current case against the pinned file at
// every depth in GoldenDepths.  A case missing from the file, a stale
// vector without a matching case, or any digest mismatch fails.
func VerifyGolden(path string) ([]GoldenResult, error) {
	gf, err := loadGolden(path)
	if err != nil {
		return nil, err
	}
	pinned := make(map[string]GoldenVector, len(gf.Vectors))
	for _, v := range gf.Vectors {
		pinned[v.Name] = v
	}

	var results []GoldenResult
	current := GoldenCases()
	seen := make(map[string]bool, len(current))
	for _, c := range current {
		seen[c.Name] = true
		res := GoldenResult{Name: c.Name, PRNG: c.PRNG, Width: c.Width}
		v, ok := pinned[c.Name]
		if !ok {
			res.Err = "case not in golden file — record it"
			results = append(results, res)
			continue
		}
		if v.GoldenCase != c {
			res.Err = fmt.Sprintf("pinned parameters %+v diverge from current case %+v", v.GoldenCase, c)
			results = append(results, res)
			continue
		}
		res.SHA256 = v.SHA256
		res.Pass = true
		for _, depth := range GoldenDepths {
			stream, err := goldenStream(c, depth)
			if err != nil {
				res.Pass = false
				res.Err = err.Error()
				break
			}
			if got := hashSamples(stream); got != v.SHA256 {
				res.Pass = false
				res.Err = fmt.Sprintf("depth %d stream digest %s != pinned %s (head now %v, pinned %v)",
					depth, got[:16], v.SHA256[:16], stream[:min(8, len(stream))], v.Head)
				break
			}
			res.DepthsVerified = append(res.DepthsVerified, depth)
		}
		results = append(results, res)
	}
	for _, v := range gf.Vectors {
		if !seen[v.Name] {
			results = append(results, GoldenResult{
				Name: v.Name, PRNG: v.PRNG, Width: v.Width, SHA256: v.SHA256,
				Err: "stale vector: no current case — re-record the golden file",
			})
		}
	}
	return results, nil
}
