package acceptance

import (
	"testing"

	"ctgauss/internal/bitslice/dispatch"
)

// TestGoldenBackendsIdentical forces every backend this machine can run
// — portable always, plus each detected SIMD ISA — and regenerates the
// interpreter golden streams at the SIMD kernel widths (8 and 16) under
// each.  Every backend must produce the SHA-256 digest pinned in
// testdata/golden.json: the backend changes who executes the
// instruction stream, never a single emitted sample.  This is the
// serving deployment's cross-fleet contract — a mixed AVX-512/AVX2/
// portable fleet shards one logical stream space.
func TestGoldenBackendsIdentical(t *testing.T) {
	pinned := map[string]string{}
	gf, err := loadGolden("testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range gf.Vectors {
		pinned[v.Name] = v.SHA256
	}

	var cases []GoldenCase
	for _, c := range GoldenCases() {
		if c.Kind == "interp" && (c.Width == 8 || c.Width == 16) {
			cases = append(cases, c)
		}
	}
	if len(cases) == 0 {
		t.Fatal("no interp golden cases at SIMD widths")
	}

	backends := append([]dispatch.Backend{dispatch.Portable}, dispatch.Detected()...)
	for _, backend := range backends {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			restore, err := dispatch.Force(backend)
			if err != nil {
				t.Fatal(err)
			}
			defer restore()
			for _, c := range cases {
				want, ok := pinned[c.Name]
				if !ok {
					t.Errorf("%s: not pinned in golden file", c.Name)
					continue
				}
				stream, err := goldenStream(c, 0)
				if err != nil {
					t.Fatalf("%s under %s: %v", c.Name, backend, err)
				}
				if got := hashSamples(stream); got != want {
					t.Errorf("%s under %s: digest %s… != pinned %s… (head %v)",
						c.Name, backend, got[:16], want[:16], stream[:8])
				}
			}
		})
	}
}
