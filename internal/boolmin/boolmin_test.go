package boolmin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeCovers(t *testing.T) {
	c := Cube{Value: 0b101, Mask: 0b111}
	if !c.Covers(0b101) {
		t.Fatal("cube must cover its own minterm")
	}
	if c.Covers(0b100) {
		t.Fatal("cube must not cover differing minterm")
	}
	free := Cube{Value: 0b100, Mask: 0b100}
	if !free.Covers(0b110) || !free.Covers(0b101) {
		t.Fatal("don't-care bits must be ignored")
	}
}

func TestCubeContains(t *testing.T) {
	gen := Cube{Value: 0b10, Mask: 0b10}    // x1
	spec := Cube{Value: 0b110, Mask: 0b110} // x2 & x1
	if !gen.Contains(spec) {
		t.Fatal("general cube should contain specific")
	}
	if spec.Contains(gen) {
		t.Fatal("specific cube should not contain general")
	}
}

func TestMergeDistance1(t *testing.T) {
	a := Cube{Value: 0b000, Mask: 0b111}
	b := Cube{Value: 0b100, Mask: 0b111}
	m, ok := mergeDistance1(a, b)
	if !ok || m.Mask != 0b011 || m.Value != 0 {
		t.Fatalf("merge = %+v ok=%v", m, ok)
	}
	if _, ok := mergeDistance1(a, Cube{Value: 0b110, Mask: 0b111}); ok {
		t.Fatal("distance-2 cubes must not merge")
	}
	if _, ok := mergeDistance1(a, Cube{Value: 0b000, Mask: 0b011}); ok {
		t.Fatal("different masks must not merge")
	}
}

func ttFromFunc(nvars int, f func(uint64) OutVal) *TruthTable {
	t := NewTruthTable(nvars)
	for a := range t.Out {
		t.Out[a] = f(uint64(a))
	}
	return t
}

func TestMinimizeXor(t *testing.T) {
	// XOR has no don't-cares and needs exactly 2^(n-1) cubes.
	tt := ttFromFunc(3, func(a uint64) OutVal {
		if popcount32(uint32(a))%2 == 1 {
			return One
		}
		return Zero
	})
	s := MinimizeExact(tt)
	if !tt.Equivalent(s) {
		t.Fatal("minimized SOP not equivalent")
	}
	if len(s.Cubes) != 4 {
		t.Fatalf("3-var XOR needs 4 cubes, got %d", len(s.Cubes))
	}
}

func TestMinimizeClassicExample(t *testing.T) {
	// f = Σm(0,1,2,5,6,7) over 3 vars minimizes to 2-cube... the classic
	// answer is 3 cubes: x'y' + yz' ... actually Σm(0,1,2,5,6,7):
	// known minimal: x'y' + xz + yz'  (3 cubes). Verify count and equivalence.
	on := map[uint64]bool{0: true, 1: true, 2: true, 5: true, 6: true, 7: true}
	tt := ttFromFunc(3, func(a uint64) OutVal {
		if on[a] {
			return One
		}
		return Zero
	})
	s := MinimizeExact(tt)
	if !tt.Equivalent(s) {
		t.Fatal("not equivalent")
	}
	if len(s.Cubes) != 3 {
		t.Fatalf("want 3 cubes, got %d: %s", len(s.Cubes), s.String())
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	// Seven-segment style: f = Σm(1,3) with DC(5,7) over 3 vars minimizes
	// to a single literal cube (z, i.e. bit0), because DCs complete it.
	tt := ttFromFunc(3, func(a uint64) OutVal {
		switch a {
		case 1, 3:
			return One
		case 5, 7:
			return DC
		default:
			return Zero
		}
	})
	s := MinimizeExact(tt)
	if !tt.Equivalent(s) {
		t.Fatal("not equivalent")
	}
	if len(s.Cubes) != 1 || s.Cubes[0].Literals(3) != 1 {
		t.Fatalf("want single 1-literal cube, got %s", s.String())
	}
}

func TestMinimizeConstants(t *testing.T) {
	allOne := ttFromFunc(2, func(uint64) OutVal { return One })
	s := MinimizeExact(allOne)
	if len(s.Cubes) != 1 || s.Cubes[0].Mask != 0 {
		t.Fatalf("constant-1 should be one empty cube, got %s", s.String())
	}
	allZero := ttFromFunc(2, func(uint64) OutVal { return Zero })
	if s := MinimizeExact(allZero); len(s.Cubes) != 0 {
		t.Fatalf("constant-0 should be empty SOP")
	}
}

func TestMinimizeRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		nv := 2 + rng.Intn(5) // 2..6 vars
		tt := NewTruthTable(nv)
		for a := range tt.Out {
			switch rng.Intn(3) {
			case 0:
				tt.Out[a] = Zero
			case 1:
				tt.Out[a] = One
			default:
				tt.Out[a] = DC
			}
		}
		exact := MinimizeExact(tt)
		greedy := MinimizeGreedy(tt)
		if !tt.Equivalent(exact) {
			t.Fatalf("trial %d: exact SOP wrong", trial)
		}
		if !tt.Equivalent(greedy) {
			t.Fatalf("trial %d: greedy SOP wrong", trial)
		}
		if len(exact.Cubes) > len(greedy.Cubes) {
			t.Fatalf("trial %d: exact (%d cubes) worse than greedy (%d)",
				trial, len(exact.Cubes), len(greedy.Cubes))
		}
	}
}

func TestPrimeImplicantsAreImplicants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := NewTruthTable(4)
		for a := range tt.Out {
			tt.Out[a] = OutVal(rng.Intn(3))
		}
		for _, p := range PrimeImplicants(tt) {
			// Every assignment covered by p must be ON or DC.
			for a := uint64(0); a < 16; a++ {
				if p.Covers(a) && tt.Out[a] == Zero {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWideCubeBasics(t *testing.T) {
	c := NewWideCube(130)
	c.SetLiteral(0, 1)
	c.SetLiteral(129, 0)
	assign := make([]uint64, 3)
	assign[0] = 1
	if !c.Covers(assign) {
		t.Fatal("should cover")
	}
	assign[2] = 1 << 1 // variable 129 set to 1
	if c.Covers(assign) {
		t.Fatal("should not cover when literal 129 mismatches")
	}
	if c.Literals() != 2 {
		t.Fatalf("literals = %d", c.Literals())
	}
}

func TestWideCubeString(t *testing.T) {
	c := NewWideCube(4)
	c.SetLiteral(0, 1)
	c.SetLiteral(2, 0)
	if s := c.String(4); s != "1-0-" {
		t.Fatalf("String = %q", s)
	}
}

func TestTryMergeWide(t *testing.T) {
	a := NewWideCube(70)
	b := NewWideCube(70)
	for i := 0; i < 70; i++ {
		a.SetLiteral(i, 0)
		b.SetLiteral(i, 0)
	}
	b.SetLiteral(69, 1)
	m, ok := tryMergeWide(a, b)
	if !ok {
		t.Fatal("expected merge")
	}
	if m.Mask[1]&(1<<5) != 0 {
		t.Fatal("merged variable 69 should be dropped")
	}
	// Two-bit difference must not merge.
	b.SetLiteral(0, 1)
	if _, ok := tryMergeWide(a, b); ok {
		t.Fatal("distance-2 wide cubes must not merge")
	}
}

func TestSimplifyWidePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nvars := 10
	var cubes []WideCube
	for i := 0; i < 30; i++ {
		c := NewWideCube(nvars)
		for v := 0; v < nvars; v++ {
			switch rng.Intn(3) {
			case 0:
				c.SetLiteral(v, 0)
			case 1:
				c.SetLiteral(v, 1)
			}
		}
		cubes = append(cubes, c)
	}
	simp := SimplifyWide(cubes)
	if len(simp) > len(cubes) {
		t.Fatalf("simplify grew the list: %d -> %d", len(cubes), len(simp))
	}
	evalList := func(cs []WideCube, a uint64) bool {
		assign := []uint64{a}
		for _, c := range cs {
			if c.Covers(assign) {
				return true
			}
		}
		return false
	}
	for a := uint64(0); a < 1<<uint(nvars); a++ {
		if evalList(cubes, a) != evalList(simp, a) {
			t.Fatalf("semantics changed at assignment %b", a)
		}
	}
}

func TestSOPLiteralsAndString(t *testing.T) {
	s := SOP{NVars: 3, Cubes: []Cube{{Value: 0b101, Mask: 0b101}, {Value: 0, Mask: 0b010}}}
	if s.Literals() != 3 {
		t.Fatalf("Literals = %d", s.Literals())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMinimizePetrickBeatsNaive(t *testing.T) {
	// A function where greedy can pick a suboptimal cover: cyclic cover
	// structure (the classic cyclic PI table: Σm(0,1,2,5,6,7) again is
	// cyclic). Petrick must return a 3-cube cover.
	on := map[uint64]bool{0: true, 1: true, 2: true, 5: true, 6: true, 7: true}
	tt := ttFromFunc(3, func(a uint64) OutVal {
		if on[a] {
			return One
		}
		return Zero
	})
	if s := MinimizeExact(tt); len(s.Cubes) != 3 {
		t.Fatalf("cyclic cover: want 3 cubes, got %d", len(s.Cubes))
	}
}

func TestNewTruthTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 21 vars")
		}
	}()
	NewTruthTable(21)
}
