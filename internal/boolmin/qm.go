package boolmin

import "sort"

// PrimeImplicants computes all prime implicants of the function described
// by the truth table, treating DC rows as coverable (classic Quine-
// McCluskey with don't-cares).
func PrimeImplicants(t *TruthTable) []Cube {
	full := uint64(1)<<uint(t.NVars) - 1
	if t.NVars == 0 {
		if len(t.Out) > 0 && t.Out[0] == One {
			return []Cube{{Value: 0, Mask: 0}}
		}
		return nil
	}

	// Level 0: all ON and DC minterms as full cubes.
	cur := make(map[Cube]bool)
	for a, o := range t.Out {
		if o == One || o == DC {
			cur[Cube{Value: uint64(a), Mask: full}] = false // false = not yet merged
		}
	}
	var primes []Cube
	for len(cur) > 0 {
		next := make(map[Cube]bool)
		keys := make([]Cube, 0, len(cur))
		for c := range cur {
			keys = append(keys, c)
		}
		sortCubes(keys)
		merged := make(map[Cube]bool, len(keys))
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if m, ok := mergeDistance1(keys[i], keys[j]); ok {
					next[m] = false
					merged[keys[i]] = true
					merged[keys[j]] = true
				}
			}
		}
		for _, c := range keys {
			if !merged[c] {
				primes = append(primes, c)
			}
		}
		cur = next
	}
	sortCubes(primes)
	return primes
}

// MinimizeExact returns a minimum-cube SOP covering all ON minterms,
// using prime implicants and Petrick's method (exact for small tables;
// falls back to greedy cover when the Petrick product would explode).
// Ties between equal-cube-count covers are broken by literal count.
func MinimizeExact(t *TruthTable) SOP {
	on := t.Minterms(One)
	if len(on) == 0 {
		return SOP{NVars: t.NVars}
	}
	primes := PrimeImplicants(t)

	// Essential primes first.
	cover, remaining := essentialPrimes(primes, on)

	if len(remaining) > 0 {
		// Candidate primes that cover at least one remaining minterm.
		var cand []Cube
		for _, p := range primes {
			if containsAny(p, remaining) && !inCover(cover, p) {
				cand = append(cand, p)
			}
		}
		var extra []Cube
		if len(cand) <= 24 && len(remaining) <= 24 {
			extra = petrick(cand, remaining, t.NVars)
		} else {
			extra = greedyCover(cand, remaining)
		}
		cover = append(cover, extra...)
	}
	sortCubes(cover)
	return SOP{NVars: t.NVars, Cubes: cover}
}

// MinimizeGreedy is the pure greedy set-cover minimizer (used for larger
// instances and as an ablation point against MinimizeExact).
func MinimizeGreedy(t *TruthTable) SOP {
	on := t.Minterms(One)
	if len(on) == 0 {
		return SOP{NVars: t.NVars}
	}
	primes := PrimeImplicants(t)
	cover, remaining := essentialPrimes(primes, on)
	if len(remaining) > 0 {
		cover = append(cover, greedyCover(primes, remaining)...)
	}
	sortCubes(cover)
	return SOP{NVars: t.NVars, Cubes: cover}
}

func essentialPrimes(primes []Cube, on []uint64) (cover []Cube, remaining []uint64) {
	covered := make(map[uint64]bool)
	for _, m := range on {
		var owner *Cube
		cnt := 0
		for i := range primes {
			if primes[i].Covers(m) {
				cnt++
				owner = &primes[i]
			}
		}
		if cnt == 1 && !inCover(cover, *owner) {
			cover = append(cover, *owner)
		}
	}
	for _, c := range cover {
		for _, m := range on {
			if c.Covers(m) {
				covered[m] = true
			}
		}
	}
	for _, m := range on {
		if !covered[m] {
			remaining = append(remaining, m)
		}
	}
	return cover, remaining
}

func inCover(cover []Cube, c Cube) bool {
	for _, x := range cover {
		if x == c {
			return true
		}
	}
	return false
}

func containsAny(c Cube, ms []uint64) bool {
	for _, m := range ms {
		if c.Covers(m) {
			return true
		}
	}
	return false
}

// greedyCover repeatedly picks the cube covering the most uncovered
// minterms (ties: fewer literals, then deterministic order).
func greedyCover(cand []Cube, minterms []uint64) []Cube {
	uncovered := make(map[uint64]bool, len(minterms))
	for _, m := range minterms {
		uncovered[m] = true
	}
	var out []Cube
	for len(uncovered) > 0 {
		best := -1
		bestCnt := 0
		for i, c := range cand {
			cnt := 0
			for m := range uncovered {
				if c.Covers(m) {
					cnt++
				}
			}
			if cnt > bestCnt || (cnt == bestCnt && cnt > 0 && best >= 0 && lessCube(c, cand[best])) {
				best, bestCnt = i, cnt
			}
		}
		if best < 0 {
			break // uncoverable (cannot happen when cand ⊇ primes of minterms)
		}
		out = append(out, cand[best])
		for m := range uncovered {
			if cand[best].Covers(m) {
				delete(uncovered, m)
			}
		}
	}
	return out
}

func lessCube(a, b Cube) bool {
	if a.Mask != b.Mask {
		return a.Mask < b.Mask
	}
	return a.Value < b.Value
}

// petrick computes an exact minimum cover via Petrick's method: build the
// product of sums (one sum per uncovered minterm listing the primes that
// cover it), expand to a sum of products over prime-index sets, and pick
// the smallest set (ties by literal count).
func petrick(cand []Cube, minterms []uint64, nvars int) []Cube {
	type set = uint32 // bitmask over candidate primes (≤24)
	products := []set{0}
	for _, m := range minterms {
		var sum []set
		for i, c := range cand {
			if c.Covers(m) {
				sum = append(sum, set(1)<<uint(i))
			}
		}
		var next []set
		for _, p := range products {
			for _, s := range sum {
				next = append(next, p|s)
			}
		}
		products = absorb(next)
		if len(products) > 200000 {
			// Safety valve: degenerate to greedy.
			return greedyCover(cand, minterms)
		}
	}
	best := products[0]
	bestCost := petrickCost(best, cand, nvars)
	for _, p := range products[1:] {
		c := petrickCost(p, cand, nvars)
		if c < bestCost {
			best, bestCost = p, c
		}
	}
	var out []Cube
	for i := range cand {
		if best&(1<<uint(i)) != 0 {
			out = append(out, cand[i])
		}
	}
	return out
}

// petrickCost orders covers by (cube count, literal count).
func petrickCost(s uint32, cand []Cube, nvars int) int {
	cubes, lits := 0, 0
	for i := range cand {
		if s&(1<<uint(i)) != 0 {
			cubes++
			lits += cand[i].Literals(nvars)
		}
	}
	return cubes*1024 + lits
}

// absorb removes supersets: X absorbs X∪Y.
func absorb(sets []uint32) []uint32 {
	sort.Slice(sets, func(i, j int) bool { return popcount32(sets[i]) < popcount32(sets[j]) })
	var out []uint32
	for _, s := range sets {
		keep := true
		for _, k := range out {
			if k&s == k {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}

func popcount32(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
