package boolmin

import "strings"

// WideCube is a product term over an arbitrary number of variables,
// supporting the full-precision (n up to 256) cubes of the baseline
// "simple minimization" path, where one cube per DDG leaf spans all n
// input bits.
type WideCube struct {
	Value []uint64
	Mask  []uint64
}

// NewWideCube allocates an all-don't-care cube over nvars variables.
func NewWideCube(nvars int) WideCube {
	w := (nvars + 63) / 64
	if w == 0 {
		w = 1
	}
	return WideCube{Value: make([]uint64, w), Mask: make([]uint64, w)}
}

// SetLiteral adds variable i with the given polarity.
func (c WideCube) SetLiteral(i int, polarity byte) {
	c.Mask[i/64] |= 1 << uint(i%64)
	if polarity != 0 {
		c.Value[i/64] |= 1 << uint(i%64)
	} else {
		c.Value[i/64] &^= 1 << uint(i%64)
	}
}

// Covers reports whether the cube is true on the assignment (bit i of
// assign[i/64] is variable i).
func (c WideCube) Covers(assign []uint64) bool {
	for w := range c.Mask {
		var a uint64
		if w < len(assign) {
			a = assign[w]
		}
		if (a^c.Value[w])&c.Mask[w] != 0 {
			return false
		}
	}
	return true
}

// Literals counts tested variables.
func (c WideCube) Literals() int {
	n := 0
	for _, m := range c.Mask {
		for ; m != 0; m &= m - 1 {
			n++
		}
	}
	return n
}

// Contains reports whether c covers everything d covers.
func (c WideCube) Contains(d WideCube) bool {
	for w := range c.Mask {
		if c.Mask[w]&^d.Mask[w] != 0 {
			return false
		}
		if (c.Value[w]^d.Value[w])&c.Mask[w] != 0 {
			return false
		}
	}
	return true
}

// Equal reports structural equality.
func (c WideCube) Equal(d WideCube) bool {
	for w := range c.Mask {
		if c.Mask[w] != d.Mask[w] || c.Value[w] != d.Value[w] {
			return false
		}
	}
	return true
}

// String renders the cube over nvars variables, variable 0 first
// (draw order, matching the sampler's bit stream).
func (c WideCube) String(nvars int) string {
	var b strings.Builder
	for i := 0; i < nvars; i++ {
		w, bit := i/64, uint(i%64)
		switch {
		case c.Mask[w]&(1<<bit) == 0:
			b.WriteByte('-')
		case c.Value[w]&(1<<bit) != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// tryMergeWide merges two cubes that test identical variables and differ
// in exactly one polarity.
func tryMergeWide(a, b WideCube) (WideCube, bool) {
	var diffWord = -1
	for w := range a.Mask {
		if a.Mask[w] != b.Mask[w] {
			return WideCube{}, false
		}
		if d := a.Value[w] ^ b.Value[w]; d != 0 {
			if diffWord >= 0 || d&(d-1) != 0 {
				return WideCube{}, false
			}
			diffWord = w
		}
	}
	if diffWord < 0 {
		return WideCube{}, false
	}
	out := WideCube{Value: append([]uint64(nil), a.Value...), Mask: append([]uint64(nil), a.Mask...)}
	d := a.Value[diffWord] ^ b.Value[diffWord]
	out.Value[diffWord] &^= d
	out.Mask[diffWord] &^= d
	return out, true
}

// SimplifyWide applies the naive iterated distance-1 merge plus
// containment pruning to a wide cube list until fixpoint.  This models the
// "simple minimization" the prior work [21] applied before bitslicing: it
// shrinks the cube list but cannot exploit the 1^κ0 prefix structure that
// the paper's sublist split exposes.
func SimplifyWide(cubes []WideCube) []WideCube {
	cur := append([]WideCube(nil), cubes...)
	for {
		merged := false
		var next []WideCube
		used := make([]bool, len(cur))
		for i := 0; i < len(cur); i++ {
			if used[i] {
				continue
			}
			found := false
			for j := i + 1; j < len(cur); j++ {
				if used[j] {
					continue
				}
				if m, ok := tryMergeWide(cur[i], cur[j]); ok {
					next = append(next, m)
					used[i], used[j] = true, true
					merged, found = true, true
					break
				}
			}
			if !found {
				next = append(next, cur[i])
			}
		}
		cur = pruneContained(next)
		if !merged {
			return cur
		}
	}
}

func pruneContained(cubes []WideCube) []WideCube {
	var out []WideCube
	for i, c := range cubes {
		redundant := false
		for j, d := range cubes {
			if i == j {
				continue
			}
			if d.Contains(c) && (!c.Contains(d) || j < i) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, c)
		}
	}
	return out
}
