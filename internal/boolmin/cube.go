// Package boolmin implements two-level Boolean minimization for the
// sampler-generation pipeline: a cube (product-term) algebra, exact
// Quine-McCluskey prime-implicant generation with don't-cares, exact
// minimum cover via Petrick's method for small instances with a greedy
// set-cover fallback, and the naive merge heuristic that stands in for the
// "simple minimization" baseline of the prior work [21].
//
// The paper minimizes each per-sublist function f^{ι,κ}_Δ exactly with
// Espresso (-Dso -S1); Δ ≤ 6 for every σ in the evaluation, so exact
// minimization is cheap here too.
package boolmin

import (
	"fmt"
	"sort"
	"strings"
)

// Cube is a product term over up to 64 variables.  A variable i is part of
// the term when Mask bit i is set; its required polarity is Value bit i.
// Bits outside Mask are don't-care within the cube.
type Cube struct {
	Value uint64 // polarities for variables in Mask
	Mask  uint64 // which variables the cube tests
}

// Covers reports whether the cube evaluates true on the given assignment.
func (c Cube) Covers(assign uint64) bool {
	return (assign^c.Value)&c.Mask == 0
}

// Contains reports whether c covers every assignment that d covers
// (c is equal or more general than d).
func (c Cube) Contains(d Cube) bool {
	// c's tested variables must be a subset of d's, and agree on polarity.
	if c.Mask&^d.Mask != 0 {
		return false
	}
	return (c.Value^d.Value)&c.Mask == 0
}

// Literals returns the number of literals (tested variables) in the cube.
func (c Cube) Literals(nvars int) int {
	m := c.Mask
	if nvars < 64 {
		m &= (1 << uint(nvars)) - 1
	}
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// String renders the cube over nvars variables, most significant variable
// first, using 0/1/- notation (PLA style).
func (c Cube) String(nvars int) string {
	var b strings.Builder
	for i := nvars - 1; i >= 0; i-- {
		switch {
		case c.Mask&(1<<uint(i)) == 0:
			b.WriteByte('-')
		case c.Value&(1<<uint(i)) != 0:
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}

// mergeDistance1 attempts the Quine-McCluskey merge: if the cubes test the
// same variables and differ in exactly one polarity, the merged cube drops
// that variable.
func mergeDistance1(a, b Cube) (Cube, bool) {
	if a.Mask != b.Mask {
		return Cube{}, false
	}
	diff := a.Value ^ b.Value
	if diff == 0 || diff&(diff-1) != 0 {
		return Cube{}, false
	}
	return Cube{Value: a.Value &^ diff, Mask: a.Mask &^ diff}, true
}

// SOP is a sum-of-products: the function is the OR of its cubes.
type SOP struct {
	NVars int
	Cubes []Cube
}

// Eval evaluates the SOP on a single assignment.
func (s SOP) Eval(assign uint64) bool {
	for _, c := range s.Cubes {
		if c.Covers(assign) {
			return true
		}
	}
	return false
}

// Literals returns the total literal count (the paper's gate-cost proxy).
func (s SOP) Literals() int {
	n := 0
	for _, c := range s.Cubes {
		n += c.Literals(s.NVars)
	}
	return n
}

// String renders the SOP in PLA-like rows.
func (s SOP) String() string {
	rows := make([]string, len(s.Cubes))
	for i, c := range s.Cubes {
		rows[i] = c.String(s.NVars)
	}
	return strings.Join(rows, " + ")
}

// TruthTable is a fully-enumerated function over NVars ≤ 20 variables with
// three-valued outputs.
type TruthTable struct {
	NVars int
	// Out[a] is the output for assignment a: 0, 1, or DC (don't care).
	Out []OutVal
}

// OutVal is a three-valued truth-table entry.
type OutVal uint8

// Truth-table entry values.
const (
	Zero OutVal = iota
	One
	DC
)

// NewTruthTable creates an all-Zero table over nvars variables.
func NewTruthTable(nvars int) *TruthTable {
	if nvars < 0 || nvars > 20 {
		panic(fmt.Sprintf("boolmin: unsupported variable count %d", nvars))
	}
	return &TruthTable{NVars: nvars, Out: make([]OutVal, 1<<uint(nvars))}
}

// Minterms returns the assignments with the requested output value.
func (t *TruthTable) Minterms(v OutVal) []uint64 {
	var out []uint64
	for a, o := range t.Out {
		if o == v {
			out = append(out, uint64(a))
		}
	}
	return out
}

// Equivalent reports whether the SOP matches the table on all non-DC rows.
func (t *TruthTable) Equivalent(s SOP) bool {
	for a, o := range t.Out {
		if o == DC {
			continue
		}
		if s.Eval(uint64(a)) != (o == One) {
			return false
		}
	}
	return true
}

// sortCubes gives a deterministic order for reproducible output.
func sortCubes(cs []Cube) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Mask != cs[j].Mask {
			return cs[i].Mask < cs[j].Mask
		}
		return cs[i].Value < cs[j].Value
	})
}
