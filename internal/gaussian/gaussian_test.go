package gaussian

import (
	"math"
	"math/big"
	"testing"
)

func table(t *testing.T, sigma string, n int, tau float64) *Table {
	t.Helper()
	p, err := NewParams(sigma, n, tau)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTable(p)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTableSigma2MatchesFloat(t *testing.T) {
	tb := table(t, "2", 64, 13)
	// Ideal folded distribution computed in float64.
	sf := 2.0
	var z float64
	for v := 0; v <= tb.Support; v++ {
		r := math.Exp(-float64(v*v) / (2 * sf * sf))
		if v == 0 {
			z += r
		} else {
			z += 2 * r
		}
	}
	for v := 0; v <= tb.Support; v++ {
		want := math.Exp(-float64(v*v)/(2*sf*sf)) / z
		if v > 0 {
			want *= 2
		}
		got := tb.FoldedProb(v)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("p[%d] = %g, want %g", v, got, want)
		}
	}
}

func TestSupportSize(t *testing.T) {
	tb := table(t, "2", 32, 13)
	if tb.Support != 26 {
		t.Fatalf("support = %d, want 26", tb.Support)
	}
	tb = table(t, "6.15543", 32, 13)
	if tb.Support != 81 { // ceil(13*6.15543) = ceil(80.02) = 81
		t.Fatalf("support = %d, want 81", tb.Support)
	}
}

func TestMatrixDimensionsAndBits(t *testing.T) {
	tb := table(t, "2", 16, 13)
	m := tb.Matrix()
	if len(m) != tb.Support+1 {
		t.Fatalf("rows = %d, want %d", len(m), tb.Support+1)
	}
	for v, row := range m {
		if len(row) != 16 {
			t.Fatalf("row %d has %d cols, want 16", v, len(row))
		}
		// Reassemble the fixed-point value from the bits.
		acc := new(big.Int)
		for _, b := range row {
			acc.Lsh(acc, 1)
			if b == 1 {
				acc.Or(acc, big.NewInt(1))
			}
		}
		if acc.Cmp(tb.Probs[v]) != 0 {
			t.Fatalf("row %d bits disagree with Probs", v)
		}
	}
}

func TestColumnWeightsSumEqualsTotalBits(t *testing.T) {
	tb := table(t, "2", 24, 13)
	h := tb.ColumnWeights()
	var sumH int
	for _, x := range h {
		sumH += x
	}
	var popcount int
	for _, p := range tb.Probs {
		for i := 0; i < p.BitLen(); i++ {
			if p.Bit(i) == 1 {
				popcount++
			}
		}
	}
	if sumH != popcount {
		t.Fatalf("Σh = %d, popcount = %d", sumH, popcount)
	}
}

func TestMassDeficitSmallAndNonNegative(t *testing.T) {
	tb := table(t, "2", 64, 13)
	d := tb.MassDeficit()
	if d.Sign() < 0 {
		t.Fatalf("deficit negative: %v", d)
	}
	// Deficit is at most (support+1) units of 2^-N (one truncation each)
	// plus the tail mass; for n=64, τ=13 it must be far below 2^-40·2^64.
	limit := new(big.Int).Lsh(big.NewInt(1), 64-32)
	if d.Cmp(limit) > 0 {
		t.Fatalf("deficit too large: %v", d)
	}
}

func TestStatDistanceShrinksWithPrecision(t *testing.T) {
	d32 := table(t, "2", 32, 13).StatDistance()
	d64 := table(t, "2", 64, 13).StatDistance()
	if d64 > d32 {
		t.Fatalf("stat distance grew with precision: %g vs %g", d32, d64)
	}
	if d32 > math.Pow(2, -24) {
		t.Fatalf("stat distance at n=32 too large: %g", d32)
	}
	if d64 > math.Pow(2, -55) {
		t.Fatalf("stat distance at n=64 too large: %g", d64)
	}
}

func TestMaxLogAndRenyiFinite(t *testing.T) {
	tb := table(t, "2", 53, 13)
	// Truncation dominates the smallest non-zero stored probability, so the
	// max-log distance is bounded by ~ln(1 + 1/k) where k·2^-53 is the
	// smallest kept entry — small but not float-epsilon small.
	ml := tb.MaxLogDistance()
	if math.IsNaN(ml) || ml > 0.1 {
		t.Fatalf("max-log distance = %g", ml)
	}
	// It must shrink as precision grows.
	ml96 := table(t, "2", 96, 13).MaxLogDistance()
	if ml96 > ml {
		t.Fatalf("max-log grew with precision: %g -> %g", ml, ml96)
	}
	r := tb.RenyiDivergence(2)
	if math.IsNaN(r) || r < 1 || r > 1.0001 {
		t.Fatalf("Rényi divergence = %g", r)
	}
}

func TestRenyiPanicsOnBadOrder(t *testing.T) {
	tb := table(t, "2", 16, 13)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.RenyiDivergence(1)
}

func TestTailMassTiny(t *testing.T) {
	tb := table(t, "2", 16, 13)
	if tm := tb.TailMass(); tm > 1e-30 {
		t.Fatalf("tail mass = %g, want < 1e-30 for τ=13", tm)
	}
}

func TestSignedProbSymmetry(t *testing.T) {
	tb := table(t, "2", 40, 13)
	var total float64
	for z := -tb.Support; z <= tb.Support; z++ {
		p := tb.SignedProb(z)
		if p != tb.SignedProb(-z) {
			t.Fatalf("asymmetric at %d", z)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("signed probabilities sum to %g", total)
	}
}

func TestNewParamsErrors(t *testing.T) {
	if _, err := NewParams("2", 0, 13); err == nil {
		t.Fatal("expected error for zero precision")
	}
	if _, err := NewParams("2", 16, 0); err == nil {
		t.Fatal("expected error for zero tail-cut")
	}
	if _, err := NewParams("bogus", 16, 13); err == nil {
		t.Fatal("expected error for bad sigma")
	}
}

func TestFigure1MatrixSigma2N6(t *testing.T) {
	// Fig. 1 of the paper: σ=2, n=6 probability matrix. We verify the
	// structural property used there: row 0 is D(0) to 6 bits, and each row
	// reassembles to floor(p·64).
	tb := table(t, "2", 6, 13)
	m := tb.Matrix()
	if len(m) < 6 {
		t.Fatalf("expected at least 6 rows, got %d", len(m))
	}
	// p0 ≈ 0.19947/ (normalised) — just check the first bits are plausible:
	// all probabilities < 1 so leading bit may be 0 or 1; total mass deficit
	// must be < (support+1)/64.
	if d := tb.MassDeficit().Int64(); d < 0 || d > int64(tb.Support+1) {
		t.Fatalf("n=6 deficit = %d", d)
	}
}
