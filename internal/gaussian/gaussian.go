// Package gaussian computes discrete Gaussian distribution tables to
// arbitrary fixed-point precision, the Knuth-Yao probability matrix built
// from them, and the statistical measures (statistical distance, Rényi
// divergence, max-log distance) used to justify a precision/tail-cut choice.
//
// Conventions follow the paper: the sampler works over the non-negative
// support [0, τσ]; the probability attached to 0 is D_σ(0) and the
// probability attached to v ≥ 1 is 2·D_σ(v) (a random sign bit restores the
// symmetric distribution).  Probabilities are truncated — not rounded — to
// n fractional bits, exactly as a fixed-point probability matrix stores
// them.
package gaussian

import (
	"fmt"
	"math"
	"math/big"

	"ctgauss/internal/bigfp"
)

// Params describes a discrete Gaussian instance at fixed precision.
type Params struct {
	Sigma   *big.Float // standard deviation σ > 0
	N       int        // fractional precision bits (columns of the matrix)
	TailCut float64    // τ; support is [0, ceil(τσ)]
}

// DefaultTailCut is the tail-cut factor used throughout the paper's Falcon
// experiments.
const DefaultTailCut = 13

// Table holds the truncated probability table of a discrete Gaussian.
type Table struct {
	Params  Params
	Support int        // max sample value = ceil(τσ)
	Probs   []*big.Int // Probs[v] = floor(p_v · 2^N), folded (×2 for v ≥ 1)
}

// NewParams builds Params from a decimal σ string.
func NewParams(sigma string, n int, tailCut float64) (Params, error) {
	if n <= 0 {
		return Params{}, fmt.Errorf("gaussian: precision must be positive, got %d", n)
	}
	if tailCut <= 0 {
		return Params{}, fmt.Errorf("gaussian: tail-cut must be positive, got %v", tailCut)
	}
	s, err := bigfp.ParseSigma(sigma, uint(n)+96)
	if err != nil {
		return Params{}, err
	}
	return Params{Sigma: s, N: n, TailCut: tailCut}, nil
}

// MustParams is NewParams for tests and examples with known-good input.
func MustParams(sigma string, n int, tailCut float64) Params {
	p, err := NewParams(sigma, n, tailCut)
	if err != nil {
		panic(err)
	}
	return p
}

// NewTable computes the folded, truncated probability table for p.
//
// The folded distribution over [0, S] is
//
//	p_0 = ρ(0)/Z,  p_v = 2ρ(v)/Z (v ≥ 1),  Z = ρ(0) + 2·Σ_{v=1..S} ρ(v)
//
// with ρ(v) = exp(-v²/2σ²), then each p_v is truncated to N fractional bits.
func NewTable(p Params) (*Table, error) {
	if p.Sigma == nil || p.Sigma.Sign() <= 0 {
		return nil, fmt.Errorf("gaussian: invalid sigma")
	}
	sf, _ := p.Sigma.Float64()
	support := int(math.Ceil(p.TailCut * sf))
	if support < 1 {
		support = 1
	}
	prec := uint(p.N) + 96

	rho := make([]*big.Float, support+1)
	z := new(big.Float).SetPrec(prec)
	for v := 0; v <= support; v++ {
		rho[v] = bigfp.Gauss(int64(v), p.Sigma, prec)
		if v == 0 {
			z.Add(z, rho[v])
		} else {
			z.Add(z, new(big.Float).SetPrec(prec).Mul(rho[v], big.NewFloat(2)))
		}
	}

	t := &Table{Params: p, Support: support, Probs: make([]*big.Int, support+1)}
	two := big.NewFloat(2).SetPrec(prec)
	for v := 0; v <= support; v++ {
		pv := new(big.Float).SetPrec(prec).Quo(rho[v], z)
		if v > 0 {
			pv.Mul(pv, two)
		}
		t.Probs[v] = bigfp.FixedFromFloat(pv, p.N)
	}
	return t, nil
}

// Matrix returns the Knuth-Yao probability matrix: row v, column c holds the
// bit of weight 2^-(c+1) of the folded probability of sample v.  Dimensions
// are (Support+1) × N.
func (t *Table) Matrix() [][]byte {
	m := make([][]byte, t.Support+1)
	for v := range m {
		row := make([]byte, t.Params.N)
		for c := 0; c < t.Params.N; c++ {
			row[c] = byte(t.Probs[v].Bit(t.Params.N - 1 - c))
		}
		m[v] = row
	}
	return m
}

// ColumnWeights returns h_c, the Hamming weight of each matrix column —
// the number of DDG-tree leaves at level c.
func (t *Table) ColumnWeights() []int {
	h := make([]int, t.Params.N)
	for c := 0; c < t.Params.N; c++ {
		for v := 0; v <= t.Support; v++ {
			h[c] += int(t.Probs[v].Bit(t.Params.N - 1 - c))
		}
	}
	return h
}

// MassDeficit returns 1 − Σ_v p_v as a fixed-point integer in units of
// 2^-N.  Truncation makes the stored distribution sum to slightly below
// one; the deficit is the probability that an N-bit Knuth-Yao walk falls
// off the truncated tree.
func (t *Table) MassDeficit() *big.Int {
	one := new(big.Int).Lsh(big.NewInt(1), uint(t.Params.N))
	sum := new(big.Int)
	for _, p := range t.Probs {
		sum.Add(sum, p)
	}
	return one.Sub(one, sum)
}

// FoldedProb returns the folded probability of v as a float64 (for tests
// and statistics; the authoritative values are the fixed-point Probs).
func (t *Table) FoldedProb(v int) float64 {
	if v < 0 || v > t.Support {
		return 0
	}
	f := new(big.Float).SetInt(t.Probs[v])
	f.SetMantExp(f, -t.Params.N)
	out, _ := f.Float64()
	return out
}

// SignedProb returns the probability the symmetric sampler emits z ∈ ℤ.
func (t *Table) SignedProb(z int) float64 {
	if z == 0 {
		return t.FoldedProb(0)
	}
	a := z
	if a < 0 {
		a = -a
	}
	return t.FoldedProb(a) / 2
}

// StatDistance returns the statistical distance (in float64) between the
// truncated fixed-point distribution and the ideal folded discrete
// Gaussian restricted to [0, Support].
func (t *Table) StatDistance() float64 {
	prec := uint(t.Params.N) + 96
	z := new(big.Float).SetPrec(prec)
	rho := make([]*big.Float, t.Support+1)
	for v := 0; v <= t.Support; v++ {
		rho[v] = bigfp.Gauss(int64(v), t.Params.Sigma, prec)
		if v == 0 {
			z.Add(z, rho[v])
		} else {
			z.Add(z, new(big.Float).SetPrec(prec).Mul(rho[v], big.NewFloat(2)))
		}
	}
	half := new(big.Float).SetPrec(prec)
	for v := 0; v <= t.Support; v++ {
		ideal := new(big.Float).SetPrec(prec).Quo(rho[v], z)
		if v > 0 {
			ideal.Mul(ideal, big.NewFloat(2))
		}
		stored := new(big.Float).SetPrec(prec).SetInt(t.Probs[v])
		stored.SetMantExp(stored, -t.Params.N)
		d := new(big.Float).SetPrec(prec).Sub(ideal, stored)
		d.Abs(d)
		half.Add(half, d)
	}
	half.Quo(half, big.NewFloat(2))
	out, _ := half.Float64()
	return out
}

// MaxLogDistance returns max_v |ln(ideal_v) − ln(stored_v)| over the
// support, the distance measure of Micciancio-Walter.  Entries whose stored
// probability is zero are skipped (they contribute to StatDistance
// instead).
func (t *Table) MaxLogDistance() float64 {
	sf, _ := t.Params.Sigma.Float64()
	var worst float64
	for v := 0; v <= t.Support; v++ {
		stored := t.FoldedProb(v)
		if stored == 0 {
			continue
		}
		ideal := idealFolded(v, sf, t.Support)
		d := math.Abs(math.Log(ideal) - math.Log(stored))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// RenyiDivergence returns the Rényi divergence of order a between the
// ideal folded distribution P and the stored distribution Q:
// ( Σ P^a / Q^(a-1) )^(1/(a-1)).  Stored-zero entries are skipped.
func (t *Table) RenyiDivergence(a float64) float64 {
	if a <= 1 {
		panic("gaussian: Rényi order must exceed 1")
	}
	sf, _ := t.Params.Sigma.Float64()
	var sum float64
	for v := 0; v <= t.Support; v++ {
		q := t.FoldedProb(v)
		if q == 0 {
			continue
		}
		p := idealFolded(v, sf, t.Support)
		sum += math.Pow(p, a) / math.Pow(q, a-1)
	}
	return math.Pow(sum, 1/(a-1))
}

func idealFolded(v int, sigma float64, support int) float64 {
	var z float64
	for u := 0; u <= support; u++ {
		r := math.Exp(-float64(u*u) / (2 * sigma * sigma))
		if u == 0 {
			z += r
		} else {
			z += 2 * r
		}
	}
	r := math.Exp(-float64(v*v) / (2 * sigma * sigma))
	if v > 0 {
		r *= 2
	}
	return r / z
}

// TailMass returns the (ideal, float64) probability mass beyond the
// support, Σ_{|z| > S} D_σ(z), bounding the error introduced by the
// tail-cut itself.
func (t *Table) TailMass() float64 {
	sf, _ := t.Params.Sigma.Float64()
	var in, out float64
	for z := -8 * t.Support; z <= 8*t.Support; z++ {
		p := math.Exp(-float64(z*z) / (2 * sf * sf))
		if z >= -t.Support && z <= t.Support {
			in += p
		} else {
			out += p
		}
	}
	return out / (in + out)
}
