// Package fft implements the negacyclic complex FFT over ℝ[x]/(x^N+1)
// used by Falcon's keygen, LDL* tree construction and fast Fourier
// sampling.  A polynomial f of degree < N is represented in the Fourier
// domain by its evaluations at the N odd 2N-th roots of unity
// ζ_j = exp(iπ(2j+1)/N); split/merge move between a ring of size N and two
// rings of size N/2 entirely in the Fourier domain, which is what
// ffSampling traverses.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// roots caches ζ_j = exp(iπ(2j+1)/N) per size N.
var (
	rootsMu sync.Mutex
	rootsBy = map[int][]complex128{}
)

// Roots returns the N evaluation points ζ_j for ring size N (power of two).
func Roots(n int) []complex128 {
	rootsMu.Lock()
	defer rootsMu.Unlock()
	if r, ok := rootsBy[n]; ok {
		return r
	}
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: size %d is not a positive power of two", n))
	}
	r := make([]complex128, n)
	for j := 0; j < n; j++ {
		theta := math.Pi * float64(2*j+1) / float64(n)
		r[j] = cmplx.Exp(complex(0, theta))
	}
	rootsBy[n] = r
	return r
}

// FFT evaluates the real-coefficient polynomial f (length N) at the ζ_j
// and returns the Fourier-domain vector.
func FFT(f []float64) []complex128 {
	c := make([]complex128, len(f))
	for i, v := range f {
		c[i] = complex(v, 0)
	}
	return FFTComplex(c)
}

// FFTComplex is FFT for complex coefficient vectors.
func FFTComplex(f []complex128) []complex128 {
	n := len(f)
	if n == 1 {
		return []complex128{f[0]}
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = f[2*i]
		odd[i] = f[2*i+1]
	}
	fe := FFTComplex(even)
	fo := FFTComplex(odd)
	return Merge(fe, fo)
}

// InvFFT interpolates a Fourier-domain vector back to real coefficients.
// The imaginary parts (rounding noise) are discarded.
func InvFFT(F []complex128) []float64 {
	c := invFFTComplex(F)
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out
}

func invFFTComplex(F []complex128) []complex128 {
	n := len(F)
	if n == 1 {
		return []complex128{F[0]}
	}
	fe, fo := Split(F)
	even := invFFTComplex(fe)
	odd := invFFTComplex(fo)
	out := make([]complex128, n)
	for i := 0; i < n/2; i++ {
		out[2*i] = even[i]
		out[2*i+1] = odd[i]
	}
	return out
}

// Split maps F ∈ FFT(ring N) to (Fe, Fo) ∈ FFT(ring N/2)²: the Fourier
// images of the even and odd half polynomials with f = fe(x²) + x·fo(x²).
func Split(F []complex128) (fe, fo []complex128) {
	n := len(F)
	z := Roots(n)
	fe = make([]complex128, n/2)
	fo = make([]complex128, n/2)
	for j := 0; j < n/2; j++ {
		a, b := F[j], F[j+n/2]
		fe[j] = (a + b) / 2
		fo[j] = (a - b) / (2 * z[j])
	}
	return fe, fo
}

// Merge is the inverse of Split.
func Merge(fe, fo []complex128) []complex128 {
	n := 2 * len(fe)
	z := Roots(n)
	F := make([]complex128, n)
	for j := 0; j < n/2; j++ {
		F[j] = fe[j] + z[j]*fo[j]
		F[j+n/2] = fe[j] - z[j]*fo[j]
	}
	return F
}

// Mul returns the pointwise product (ring multiplication in FFT domain).
func Mul(a, b []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// Add returns the pointwise sum.
func Add(a, b []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns the pointwise difference a−b.
func Sub(a, b []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Div returns the pointwise quotient a/b.
func Div(a, b []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] / b[i]
	}
	return out
}

// Adj returns the Fourier image of the ring adjoint f*(x) = f(1/x): the
// complex conjugate pointwise.
func Adj(a []complex128) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = cmplx.Conj(a[i])
	}
	return out
}

// Scale multiplies pointwise by a real scalar.
func Scale(a []complex128, s float64) []complex128 {
	out := make([]complex128, len(a))
	for i := range a {
		out[i] = a[i] * complex(s, 0)
	}
	return out
}
