package fft

import (
	"math"
	"math/rand"
	"testing"
)

func randomPoly(rng *rand.Rand, n int) []float64 {
	f := make([]float64, n)
	for i := range f {
		f[i] = float64(rng.Intn(41) - 20)
	}
	return f
}

// naive negacyclic multiplication in coefficient domain.
func negacyclicMul(a, b []float64) []float64 {
	n := len(a)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k := i + j
			v := a[i] * b[j]
			if k >= n {
				out[k-n] -= v
			} else {
				out[k] += v
			}
		}
	}
	return out
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 512, 1024} {
		f := randomPoly(rng, n)
		got := InvFFT(FFT(f))
		if d := maxDiff(f, got); d > 1e-8 {
			t.Fatalf("n=%d: roundtrip error %g", n, d)
		}
	}
}

func TestFFTMulMatchesNegacyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 8, 64, 256} {
		a := randomPoly(rng, n)
		b := randomPoly(rng, n)
		want := negacyclicMul(a, b)
		got := InvFFT(Mul(FFT(a), FFT(b)))
		if d := maxDiff(want, got); d > 1e-6*float64(n) {
			t.Fatalf("n=%d: mul error %g", n, d)
		}
	}
}

func TestSplitMergeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	F := FFT(randomPoly(rng, 64))
	fe, fo := Split(F)
	back := Merge(fe, fo)
	for i := range F {
		if d := F[i] - back[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("split/merge not inverse at %d", i)
		}
	}
}

func TestSplitHalvesAreFFTOfHalfPolys(t *testing.T) {
	// f(x) = fe(x²) + x·fo(x²); Split(FFT(f)) must equal FFT(fe), FFT(fo).
	rng := rand.New(rand.NewSource(4))
	n := 32
	f := randomPoly(rng, n)
	fe := make([]float64, n/2)
	fo := make([]float64, n/2)
	for i := 0; i < n/2; i++ {
		fe[i] = f[2*i]
		fo[i] = f[2*i+1]
	}
	se, so := Split(FFT(f))
	we, wo := FFT(fe), FFT(fo)
	for i := 0; i < n/2; i++ {
		if d := se[i] - we[i]; math.Hypot(real(d), imag(d)) > 1e-8 {
			t.Fatalf("even half mismatch at %d", i)
		}
		if d := so[i] - wo[i]; math.Hypot(real(d), imag(d)) > 1e-8 {
			t.Fatalf("odd half mismatch at %d", i)
		}
	}
}

func TestAdjIsRingAdjoint(t *testing.T) {
	// adj(f)(x) = f0 − f_{n-1}x − … − f1 x^{n-1} in the negacyclic ring.
	rng := rand.New(rand.NewSource(5))
	n := 16
	f := randomPoly(rng, n)
	adj := make([]float64, n)
	adj[0] = f[0]
	for i := 1; i < n; i++ {
		adj[i] = -f[n-i]
	}
	got := InvFFT(Adj(FFT(f)))
	if d := maxDiff(adj, got); d > 1e-8 {
		t.Fatalf("adjoint mismatch: %g", d)
	}
}

func TestAddSubDivScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 8
	a, b := randomPoly(rng, n), randomPoly(rng, n)
	b[0] += 100 // keep b away from roots of zero in FFT domain
	A, B := FFT(a), FFT(b)
	sum := InvFFT(Add(A, B))
	for i := range a {
		if math.Abs(sum[i]-(a[i]+b[i])) > 1e-8 {
			t.Fatal("Add wrong")
		}
	}
	diff := InvFFT(Sub(A, B))
	for i := range a {
		if math.Abs(diff[i]-(a[i]-b[i])) > 1e-8 {
			t.Fatal("Sub wrong")
		}
	}
	q := Div(Mul(A, B), B)
	qc := InvFFT(q)
	if d := maxDiff(qc, a); d > 1e-6 {
		t.Fatalf("Div(Mul(a,b),b) != a: %g", d)
	}
	s := InvFFT(Scale(A, 2.5))
	for i := range a {
		if math.Abs(s[i]-2.5*a[i]) > 1e-8 {
			t.Fatal("Scale wrong")
		}
	}
}

func TestRootsPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Roots(3)
}

func TestHermitianSymmetryOfRealFFT(t *testing.T) {
	// For real f, F[n-1-j] = conj(F[j]) (ζ_{n-1-j} = conj(ζ_j)).
	rng := rand.New(rand.NewSource(7))
	n := 16
	F := FFT(randomPoly(rng, n))
	for j := 0; j < n/2; j++ {
		d := F[n-1-j] - complex(real(F[j]), -imag(F[j]))
		if math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("hermitian symmetry broken at %d", j)
		}
	}
}
