// SIMD interpreters for the packed bitslice op stream (simd.go).
//
// Each kernel walks the 20-byte simdInstr records — {op, aOff, bOff,
// cOff, dOff} as uint32, offsets in bytes into the slot file — and
// executes one whole slot (w contiguous uint64s) per instruction with
// vector registers: two ymm per 8-word slot on AVX2, one zmm on
// AVX-512 (two of each at width 16).  Operand reads all happen before
// the destination store, so Dst aliasing an operand slot behaves
// exactly like the Go interpreters.
//
// Dispatch is a branch tree over the dense opcode, mirroring the Go
// interpreter's two-level switch (a 13-way indirect jump mispredicts
// on the irregular generated op sequences).  The AVX-512 kernels don't
// branch per shape at all beyond selecting an immediate: every opcode
// — fused or not — is VPTERNLOGQ with the truth table of the whole
// expression as imm8, over a = 0xF0, b = 0xCC, c = 0xAA.  Unused
// operands were pointed at A by the packer, so the uniform a/b/c loads
// are always in bounds.
//
// Register budget (all kernels): DI = instruction cursor, BX = end of
// code, SI = slot base, AX = opcode, R10-R13 = a/b/c/d byte offsets.
// R14 (goroutine pointer) and R15 are untouched.  No stack, no calls.

#include "textflag.h"

// func runCodeAVX2W8(code *simdInstr, n int, slots *uint64)
TEXT ·runCodeAVX2W8(SB), NOSPLIT, $0-24
	MOVQ code+0(FP), DI
	MOVQ n+8(FP), AX
	MOVQ slots+16(FP), SI
	LEAQ (AX)(AX*4), BX      // n*5
	LEAQ (DI)(BX*4), BX      // code end = code + n*20
	VPCMPEQD Y15, Y15, Y15   // all-ones (for NOT)
	CMPQ DI, BX
	JAE a8_done

a8_loop:
	MOVL 0(DI), AX
	MOVL 4(DI), R10
	MOVL 8(DI), R11
	MOVL 12(DI), R12
	MOVL 16(DI), R13
	ADDQ $20, DI
	CMPL AX, $5
	JB a8_base
	CMPL AX, $9
	JB a8_f_low
	CMPL AX, $11
	JB a8_f_mid
	CMPL AX, $12
	JB a8_andandnot
	JMP a8_andnotandnot

a8_f_mid:
	CMPL AX, $10
	JB a8_orand
	JMP a8_andnotand

a8_f_low:
	CMPL AX, $7
	JB a8_f_ll
	CMPL AX, $8
	JB a8_oror
	JMP a8_andand

a8_f_ll:
	CMPL AX, $6
	JB a8_andor
	JMP a8_andnotor

a8_base:
	CMPL AX, $2
	JB a8_b_low
	CMPL AX, $3
	JB a8_xor
	JE a8_not
	JMP a8_andnot

a8_b_low:
	CMPL AX, $1
	JB a8_and
	JMP a8_or

a8_and: // d = a & b
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VPAND (SI)(R11*1), Y0, Y0
	VPAND 32(SI)(R11*1), Y1, Y1
	JMP a8_store

a8_or: // d = a | b
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VPOR (SI)(R11*1), Y0, Y0
	VPOR 32(SI)(R11*1), Y1, Y1
	JMP a8_store

a8_xor: // d = a ^ b
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VPXOR (SI)(R11*1), Y0, Y0
	VPXOR 32(SI)(R11*1), Y1, Y1
	JMP a8_store

a8_not: // d = ^a
	VPXOR (SI)(R10*1), Y15, Y0
	VPXOR 32(SI)(R10*1), Y15, Y1
	JMP a8_store

a8_andnot: // d = a &^ b = ~b & a
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1
	VPANDN (SI)(R10*1), Y0, Y0
	VPANDN 32(SI)(R10*1), Y1, Y1
	JMP a8_store

a8_andor: // d = c | (a & b)
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VPAND (SI)(R11*1), Y0, Y0
	VPAND 32(SI)(R11*1), Y1, Y1
	VPOR (SI)(R12*1), Y0, Y0
	VPOR 32(SI)(R12*1), Y1, Y1
	JMP a8_store

a8_andnotor: // d = c | (a &^ b)
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1
	VPANDN (SI)(R10*1), Y0, Y0
	VPANDN 32(SI)(R10*1), Y1, Y1
	VPOR (SI)(R12*1), Y0, Y0
	VPOR 32(SI)(R12*1), Y1, Y1
	JMP a8_store

a8_oror: // d = c | a | b
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VPOR (SI)(R11*1), Y0, Y0
	VPOR 32(SI)(R11*1), Y1, Y1
	VPOR (SI)(R12*1), Y0, Y0
	VPOR 32(SI)(R12*1), Y1, Y1
	JMP a8_store

a8_andand: // d = c & a & b
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VPAND (SI)(R11*1), Y0, Y0
	VPAND 32(SI)(R11*1), Y1, Y1
	VPAND (SI)(R12*1), Y0, Y0
	VPAND 32(SI)(R12*1), Y1, Y1
	JMP a8_store

a8_orand: // d = c & (a | b)
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VPOR (SI)(R11*1), Y0, Y0
	VPOR 32(SI)(R11*1), Y1, Y1
	VPAND (SI)(R12*1), Y0, Y0
	VPAND 32(SI)(R12*1), Y1, Y1
	JMP a8_store

a8_andnotand: // d = c & (a &^ b)
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1
	VPANDN (SI)(R10*1), Y0, Y0
	VPANDN 32(SI)(R10*1), Y1, Y1
	VPAND (SI)(R12*1), Y0, Y0
	VPAND 32(SI)(R12*1), Y1, Y1
	JMP a8_store

a8_andandnot: // d = (a & b) &^ c = ~c & (a & b)
	VMOVDQU (SI)(R12*1), Y2
	VMOVDQU 32(SI)(R12*1), Y3
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VPAND (SI)(R11*1), Y0, Y0
	VPAND 32(SI)(R11*1), Y1, Y1
	VPANDN Y0, Y2, Y0
	VPANDN Y1, Y3, Y1
	JMP a8_store

a8_andnotandnot: // d = (a &^ b) &^ c = ~c & (~b & a)
	VMOVDQU (SI)(R12*1), Y2
	VMOVDQU 32(SI)(R12*1), Y3
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1
	VPANDN (SI)(R10*1), Y0, Y0
	VPANDN 32(SI)(R10*1), Y1, Y1
	VPANDN Y0, Y2, Y0
	VPANDN Y1, Y3, Y1

a8_store:
	VMOVDQU Y0, (SI)(R13*1)
	VMOVDQU Y1, 32(SI)(R13*1)
	CMPQ DI, BX
	JB a8_loop

a8_done:
	VZEROUPPER
	RET

// func runCodeAVX2W16(code *simdInstr, n int, slots *uint64)
TEXT ·runCodeAVX2W16(SB), NOSPLIT, $0-24
	MOVQ code+0(FP), DI
	MOVQ n+8(FP), AX
	MOVQ slots+16(FP), SI
	LEAQ (AX)(AX*4), BX
	LEAQ (DI)(BX*4), BX
	VPCMPEQD Y15, Y15, Y15
	CMPQ DI, BX
	JAE a16_done

a16_loop:
	MOVL 0(DI), AX
	MOVL 4(DI), R10
	MOVL 8(DI), R11
	MOVL 12(DI), R12
	MOVL 16(DI), R13
	ADDQ $20, DI
	CMPL AX, $5
	JB a16_base
	CMPL AX, $9
	JB a16_f_low
	CMPL AX, $11
	JB a16_f_mid
	CMPL AX, $12
	JB a16_andandnot
	JMP a16_andnotandnot

a16_f_mid:
	CMPL AX, $10
	JB a16_orand
	JMP a16_andnotand

a16_f_low:
	CMPL AX, $7
	JB a16_f_ll
	CMPL AX, $8
	JB a16_oror
	JMP a16_andand

a16_f_ll:
	CMPL AX, $6
	JB a16_andor
	JMP a16_andnotor

a16_base:
	CMPL AX, $2
	JB a16_b_low
	CMPL AX, $3
	JB a16_xor
	JE a16_not
	JMP a16_andnot

a16_b_low:
	CMPL AX, $1
	JB a16_and
	JMP a16_or

a16_and:
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VMOVDQU 64(SI)(R10*1), Y2
	VMOVDQU 96(SI)(R10*1), Y3
	VPAND (SI)(R11*1), Y0, Y0
	VPAND 32(SI)(R11*1), Y1, Y1
	VPAND 64(SI)(R11*1), Y2, Y2
	VPAND 96(SI)(R11*1), Y3, Y3
	JMP a16_store

a16_or:
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VMOVDQU 64(SI)(R10*1), Y2
	VMOVDQU 96(SI)(R10*1), Y3
	VPOR (SI)(R11*1), Y0, Y0
	VPOR 32(SI)(R11*1), Y1, Y1
	VPOR 64(SI)(R11*1), Y2, Y2
	VPOR 96(SI)(R11*1), Y3, Y3
	JMP a16_store

a16_xor:
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VMOVDQU 64(SI)(R10*1), Y2
	VMOVDQU 96(SI)(R10*1), Y3
	VPXOR (SI)(R11*1), Y0, Y0
	VPXOR 32(SI)(R11*1), Y1, Y1
	VPXOR 64(SI)(R11*1), Y2, Y2
	VPXOR 96(SI)(R11*1), Y3, Y3
	JMP a16_store

a16_not:
	VPXOR (SI)(R10*1), Y15, Y0
	VPXOR 32(SI)(R10*1), Y15, Y1
	VPXOR 64(SI)(R10*1), Y15, Y2
	VPXOR 96(SI)(R10*1), Y15, Y3
	JMP a16_store

a16_andnot:
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1
	VMOVDQU 64(SI)(R11*1), Y2
	VMOVDQU 96(SI)(R11*1), Y3
	VPANDN (SI)(R10*1), Y0, Y0
	VPANDN 32(SI)(R10*1), Y1, Y1
	VPANDN 64(SI)(R10*1), Y2, Y2
	VPANDN 96(SI)(R10*1), Y3, Y3
	JMP a16_store

a16_andor:
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VMOVDQU 64(SI)(R10*1), Y2
	VMOVDQU 96(SI)(R10*1), Y3
	VPAND (SI)(R11*1), Y0, Y0
	VPAND 32(SI)(R11*1), Y1, Y1
	VPAND 64(SI)(R11*1), Y2, Y2
	VPAND 96(SI)(R11*1), Y3, Y3
	VPOR (SI)(R12*1), Y0, Y0
	VPOR 32(SI)(R12*1), Y1, Y1
	VPOR 64(SI)(R12*1), Y2, Y2
	VPOR 96(SI)(R12*1), Y3, Y3
	JMP a16_store

a16_andnotor:
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1
	VMOVDQU 64(SI)(R11*1), Y2
	VMOVDQU 96(SI)(R11*1), Y3
	VPANDN (SI)(R10*1), Y0, Y0
	VPANDN 32(SI)(R10*1), Y1, Y1
	VPANDN 64(SI)(R10*1), Y2, Y2
	VPANDN 96(SI)(R10*1), Y3, Y3
	VPOR (SI)(R12*1), Y0, Y0
	VPOR 32(SI)(R12*1), Y1, Y1
	VPOR 64(SI)(R12*1), Y2, Y2
	VPOR 96(SI)(R12*1), Y3, Y3
	JMP a16_store

a16_oror:
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VMOVDQU 64(SI)(R10*1), Y2
	VMOVDQU 96(SI)(R10*1), Y3
	VPOR (SI)(R11*1), Y0, Y0
	VPOR 32(SI)(R11*1), Y1, Y1
	VPOR 64(SI)(R11*1), Y2, Y2
	VPOR 96(SI)(R11*1), Y3, Y3
	VPOR (SI)(R12*1), Y0, Y0
	VPOR 32(SI)(R12*1), Y1, Y1
	VPOR 64(SI)(R12*1), Y2, Y2
	VPOR 96(SI)(R12*1), Y3, Y3
	JMP a16_store

a16_andand:
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VMOVDQU 64(SI)(R10*1), Y2
	VMOVDQU 96(SI)(R10*1), Y3
	VPAND (SI)(R11*1), Y0, Y0
	VPAND 32(SI)(R11*1), Y1, Y1
	VPAND 64(SI)(R11*1), Y2, Y2
	VPAND 96(SI)(R11*1), Y3, Y3
	VPAND (SI)(R12*1), Y0, Y0
	VPAND 32(SI)(R12*1), Y1, Y1
	VPAND 64(SI)(R12*1), Y2, Y2
	VPAND 96(SI)(R12*1), Y3, Y3
	JMP a16_store

a16_orand:
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VMOVDQU 64(SI)(R10*1), Y2
	VMOVDQU 96(SI)(R10*1), Y3
	VPOR (SI)(R11*1), Y0, Y0
	VPOR 32(SI)(R11*1), Y1, Y1
	VPOR 64(SI)(R11*1), Y2, Y2
	VPOR 96(SI)(R11*1), Y3, Y3
	VPAND (SI)(R12*1), Y0, Y0
	VPAND 32(SI)(R12*1), Y1, Y1
	VPAND 64(SI)(R12*1), Y2, Y2
	VPAND 96(SI)(R12*1), Y3, Y3
	JMP a16_store

a16_andnotand:
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1
	VMOVDQU 64(SI)(R11*1), Y2
	VMOVDQU 96(SI)(R11*1), Y3
	VPANDN (SI)(R10*1), Y0, Y0
	VPANDN 32(SI)(R10*1), Y1, Y1
	VPANDN 64(SI)(R10*1), Y2, Y2
	VPANDN 96(SI)(R10*1), Y3, Y3
	VPAND (SI)(R12*1), Y0, Y0
	VPAND 32(SI)(R12*1), Y1, Y1
	VPAND 64(SI)(R12*1), Y2, Y2
	VPAND 96(SI)(R12*1), Y3, Y3
	JMP a16_store

a16_andandnot:
	VMOVDQU (SI)(R12*1), Y4
	VMOVDQU 32(SI)(R12*1), Y5
	VMOVDQU 64(SI)(R12*1), Y6
	VMOVDQU 96(SI)(R12*1), Y7
	VMOVDQU (SI)(R10*1), Y0
	VMOVDQU 32(SI)(R10*1), Y1
	VMOVDQU 64(SI)(R10*1), Y2
	VMOVDQU 96(SI)(R10*1), Y3
	VPAND (SI)(R11*1), Y0, Y0
	VPAND 32(SI)(R11*1), Y1, Y1
	VPAND 64(SI)(R11*1), Y2, Y2
	VPAND 96(SI)(R11*1), Y3, Y3
	VPANDN Y0, Y4, Y0
	VPANDN Y1, Y5, Y1
	VPANDN Y2, Y6, Y2
	VPANDN Y3, Y7, Y3
	JMP a16_store

a16_andnotandnot:
	VMOVDQU (SI)(R12*1), Y4
	VMOVDQU 32(SI)(R12*1), Y5
	VMOVDQU 64(SI)(R12*1), Y6
	VMOVDQU 96(SI)(R12*1), Y7
	VMOVDQU (SI)(R11*1), Y0
	VMOVDQU 32(SI)(R11*1), Y1
	VMOVDQU 64(SI)(R11*1), Y2
	VMOVDQU 96(SI)(R11*1), Y3
	VPANDN (SI)(R10*1), Y0, Y0
	VPANDN 32(SI)(R10*1), Y1, Y1
	VPANDN 64(SI)(R10*1), Y2, Y2
	VPANDN 96(SI)(R10*1), Y3, Y3
	VPANDN Y0, Y4, Y0
	VPANDN Y1, Y5, Y1
	VPANDN Y2, Y6, Y2
	VPANDN Y3, Y7, Y3

a16_store:
	VMOVDQU Y0, (SI)(R13*1)
	VMOVDQU Y1, 32(SI)(R13*1)
	VMOVDQU Y2, 64(SI)(R13*1)
	VMOVDQU Y3, 96(SI)(R13*1)
	CMPQ DI, BX
	JB a16_loop

a16_done:
	VZEROUPPER
	RET

// func runCodeAVX512W8(code *simdInstr, n int, slots *uint64)
//
// Uniform handlers: load a and b, then a single VPTERNLOGQ with c as
// the memory operand and the whole expression's truth table as imm8
// (a = 0xF0, b = 0xCC, c = 0xAA).
TEXT ·runCodeAVX512W8(SB), NOSPLIT, $0-24
	MOVQ code+0(FP), DI
	MOVQ n+8(FP), AX
	MOVQ slots+16(FP), SI
	LEAQ (AX)(AX*4), BX
	LEAQ (DI)(BX*4), BX
	CMPQ DI, BX
	JAE z8_done

z8_loop:
	MOVL 0(DI), AX
	MOVL 4(DI), R10
	MOVL 8(DI), R11
	MOVL 12(DI), R12
	MOVL 16(DI), R13
	ADDQ $20, DI
	VMOVDQU64 (SI)(R10*1), Z0
	VMOVDQU64 (SI)(R11*1), Z1
	CMPL AX, $5
	JB z8_base
	CMPL AX, $9
	JB z8_f_low
	CMPL AX, $11
	JB z8_f_mid
	CMPL AX, $12
	JB z8_andandnot
	JMP z8_andnotandnot

z8_f_mid:
	CMPL AX, $10
	JB z8_orand
	JMP z8_andnotand

z8_f_low:
	CMPL AX, $7
	JB z8_f_ll
	CMPL AX, $8
	JB z8_oror
	JMP z8_andand

z8_f_ll:
	CMPL AX, $6
	JB z8_andor
	JMP z8_andnotor

z8_base:
	CMPL AX, $2
	JB z8_b_low
	CMPL AX, $3
	JB z8_xor
	JE z8_not
	JMP z8_andnot

z8_b_low:
	CMPL AX, $1
	JB z8_and
	JMP z8_or

z8_and: // a & b
	VPTERNLOGQ $0xC0, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_or: // a | b
	VPTERNLOGQ $0xFC, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_xor: // a ^ b
	VPTERNLOGQ $0x3C, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_not: // ^a
	VPTERNLOGQ $0x0F, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_andnot: // a &^ b
	VPTERNLOGQ $0x30, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_andor: // c | (a & b)
	VPTERNLOGQ $0xEA, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_andnotor: // c | (a &^ b)
	VPTERNLOGQ $0xBA, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_oror: // c | a | b
	VPTERNLOGQ $0xFE, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_andand: // c & a & b
	VPTERNLOGQ $0x80, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_orand: // c & (a | b)
	VPTERNLOGQ $0xA8, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_andnotand: // c & (a &^ b)
	VPTERNLOGQ $0x20, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_andandnot: // (a & b) &^ c
	VPTERNLOGQ $0x40, (SI)(R12*1), Z1, Z0
	JMP z8_store

z8_andnotandnot: // (a &^ b) &^ c
	VPTERNLOGQ $0x10, (SI)(R12*1), Z1, Z0

z8_store:
	VMOVDQU64 Z0, (SI)(R13*1)
	CMPQ DI, BX
	JB z8_loop

z8_done:
	VZEROUPPER
	RET

// func runCodeAVX512W16(code *simdInstr, n int, slots *uint64)
TEXT ·runCodeAVX512W16(SB), NOSPLIT, $0-24
	MOVQ code+0(FP), DI
	MOVQ n+8(FP), AX
	MOVQ slots+16(FP), SI
	LEAQ (AX)(AX*4), BX
	LEAQ (DI)(BX*4), BX
	CMPQ DI, BX
	JAE z16_done

z16_loop:
	MOVL 0(DI), AX
	MOVL 4(DI), R10
	MOVL 8(DI), R11
	MOVL 12(DI), R12
	MOVL 16(DI), R13
	ADDQ $20, DI
	VMOVDQU64 (SI)(R10*1), Z0
	VMOVDQU64 64(SI)(R10*1), Z2
	VMOVDQU64 (SI)(R11*1), Z1
	VMOVDQU64 64(SI)(R11*1), Z3
	CMPL AX, $5
	JB z16_base
	CMPL AX, $9
	JB z16_f_low
	CMPL AX, $11
	JB z16_f_mid
	CMPL AX, $12
	JB z16_andandnot
	JMP z16_andnotandnot

z16_f_mid:
	CMPL AX, $10
	JB z16_orand
	JMP z16_andnotand

z16_f_low:
	CMPL AX, $7
	JB z16_f_ll
	CMPL AX, $8
	JB z16_oror
	JMP z16_andand

z16_f_ll:
	CMPL AX, $6
	JB z16_andor
	JMP z16_andnotor

z16_base:
	CMPL AX, $2
	JB z16_b_low
	CMPL AX, $3
	JB z16_xor
	JE z16_not
	JMP z16_andnot

z16_b_low:
	CMPL AX, $1
	JB z16_and
	JMP z16_or

z16_and:
	VPTERNLOGQ $0xC0, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0xC0, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_or:
	VPTERNLOGQ $0xFC, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0xFC, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_xor:
	VPTERNLOGQ $0x3C, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0x3C, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_not:
	VPTERNLOGQ $0x0F, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0x0F, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_andnot:
	VPTERNLOGQ $0x30, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0x30, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_andor:
	VPTERNLOGQ $0xEA, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0xEA, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_andnotor:
	VPTERNLOGQ $0xBA, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0xBA, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_oror:
	VPTERNLOGQ $0xFE, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0xFE, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_andand:
	VPTERNLOGQ $0x80, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0x80, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_orand:
	VPTERNLOGQ $0xA8, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0xA8, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_andnotand:
	VPTERNLOGQ $0x20, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0x20, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_andandnot:
	VPTERNLOGQ $0x40, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0x40, 64(SI)(R12*1), Z3, Z2
	JMP z16_store

z16_andnotandnot:
	VPTERNLOGQ $0x10, (SI)(R12*1), Z1, Z0
	VPTERNLOGQ $0x10, 64(SI)(R12*1), Z3, Z2

z16_store:
	VMOVDQU64 Z0, (SI)(R13*1)
	VMOVDQU64 Z2, 64(SI)(R13*1)
	CMPQ DI, BX
	JB z16_loop

z16_done:
	VZEROUPPER
	RET
