package bitslice

import "fmt"

// Size ceilings for deserialized programs, far above any circuit the
// pipeline emits (the flat σ=6.15543 baseline is ~10⁵ instructions), so a
// corrupt cache file cannot force a huge allocation: with these caps a
// sampler's register file stays under ~40 MB.
const (
	maxProgramInputs = 1 << 16
	maxProgramCode   = 1 << 22
)

// Validate checks the structural invariants a well-formed Program upholds
// by construction: SSA register numbering, operand indices that refer only
// to earlier registers, in-range outputs, and sane sizes.  Programs
// deserialized from an external source (the registry's on-disk cache) must
// pass Validate before Run may be called, otherwise corrupt input could
// index registers out of bounds or allocate unboundedly.
func (p *Program) Validate() error {
	if p.NumInputs < 0 || p.NumInputs > maxProgramInputs {
		return fmt.Errorf("bitslice: NumInputs %d outside [0, %d]", p.NumInputs, maxProgramInputs)
	}
	if len(p.Code) > maxProgramCode {
		return fmt.Errorf("bitslice: %d instructions exceeds cap %d", len(p.Code), maxProgramCode)
	}
	if p.ValueBits < 0 || p.ValueBits > 63 {
		return fmt.Errorf("bitslice: ValueBits %d outside [0, 63]", p.ValueBits)
	}
	if p.NumRegs != p.NumInputs+len(p.Code) {
		return fmt.Errorf("bitslice: NumRegs %d, want NumInputs+len(Code) = %d", p.NumRegs, p.NumInputs+len(p.Code))
	}
	for i, in := range p.Code {
		if in.Op > OpOnes {
			return fmt.Errorf("bitslice: instruction %d has unknown op %d", i, in.Op)
		}
		if in.Dst != p.NumInputs+i {
			return fmt.Errorf("bitslice: instruction %d writes register %d, want %d (SSA order)", i, in.Dst, p.NumInputs+i)
		}
		if in.A < 0 || in.A >= in.Dst || in.B < 0 || in.B >= in.Dst {
			return fmt.Errorf("bitslice: instruction %d reads registers (%d, %d) not before %d", i, in.A, in.B, in.Dst)
		}
	}
	if len(p.Outputs) != p.ValueBits {
		return fmt.Errorf("bitslice: %d outputs, want ValueBits = %d", len(p.Outputs), p.ValueBits)
	}
	for i, r := range p.Outputs {
		if r < 0 || r >= p.NumRegs {
			return fmt.Errorf("bitslice: output %d refers to register %d of %d", i, r, p.NumRegs)
		}
	}
	if p.SignInput < -1 || p.SignInput >= p.NumRegs {
		return fmt.Errorf("bitslice: SignInput %d out of range", p.SignInput)
	}
	if p.MaxSupport < 0 {
		return fmt.Errorf("bitslice: negative MaxSupport %d", p.MaxSupport)
	}
	return nil
}
