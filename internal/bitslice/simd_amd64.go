package bitslice

import "ctgauss/internal/bitslice/dispatch"

// Assembly interpreters over the packed op stream (simd_amd64.s).
// Each executes n simdInstr records against the slot file; prologue
// (input copy, constant planes) and epilogue (output gather) stay in
// Go, shared with the portable interpreters.

//go:noescape
func runCodeAVX2W8(code *simdInstr, n int, slots *uint64)

//go:noescape
func runCodeAVX2W16(code *simdInstr, n int, slots *uint64)

//go:noescape
func runCodeAVX512W8(code *simdInstr, n int, slots *uint64)

//go:noescape
func runCodeAVX512W16(code *simdInstr, n int, slots *uint64)

// runSIMD evaluates the program with the active vector backend, if one
// is selected and has a kernel for width w.  It reports false when the
// caller should fall back to the portable interpreters: the result and
// the randomness consumption are bit-identical either way, so the
// choice is invisible to samplers.
func (o *Optimized) runSIMD(w int, inputs, slots, out []uint64) bool {
	var kernel func(*simdInstr, int, *uint64)
	switch dispatch.Active() {
	case dispatch.AVX2:
		switch w {
		case 8:
			kernel = runCodeAVX2W8
		case 16:
			kernel = runCodeAVX2W16
		}
	case dispatch.AVX512:
		switch w {
		case 8:
			kernel = runCodeAVX512W8
		case 16:
			kernel = runCodeAVX512W16
		}
	}
	if kernel == nil {
		return false
	}
	o.prepSlots(w, inputs, slots)
	if code := o.simdCode(w); len(code) > 0 {
		kernel(&code[0], len(code), &slots[0])
	}
	o.gatherOutputs(w, slots, out)
	return true
}
