package dispatch

import "testing"

func TestChoose(t *testing.T) {
	both := []Backend{AVX2, AVX512}
	avx2Only := []Backend{AVX2}
	cases := []struct {
		override string
		detected []Backend
		want     Backend
		wantErr  bool
	}{
		{"", both, AVX512, false},
		{"", avx2Only, AVX2, false},
		{"", nil, Portable, false},
		{"off", both, Portable, false},
		{"portable", both, Portable, false},
		{"none", both, Portable, false},
		{"avx2", both, AVX2, false},
		{"avx512", both, AVX512, false},
		{"avx512", avx2Only, AVX2, true}, // degrade, flag it
		{"avx2", nil, Portable, true},
		{"bogus", both, AVX512, true},
	}
	for _, tc := range cases {
		got, msg := choose(tc.override, tc.detected)
		if got != tc.want {
			t.Errorf("choose(%q, %v) = %s, want %s", tc.override, tc.detected, got, tc.want)
		}
		if (msg != "") != tc.wantErr {
			t.Errorf("choose(%q, %v) message = %q, wantErr=%v", tc.override, tc.detected, msg, tc.wantErr)
		}
	}
}

func TestNativeWidth(t *testing.T) {
	if w := Portable.NativeWidth(); w != 8 {
		t.Errorf("portable native width %d, want 8", w)
	}
	if w := AVX2.NativeWidth(); w != 16 {
		t.Errorf("avx2 native width %d, want 16", w)
	}
	if w := AVX512.NativeWidth(); w != 16 {
		t.Errorf("avx512 native width %d, want 16", w)
	}
}

func TestForceRoundTrip(t *testing.T) {
	before := Active()
	restore, err := Force(Portable)
	if err != nil {
		t.Fatalf("Force(Portable): %v", err)
	}
	if Active() != Portable {
		t.Fatalf("after Force(Portable): active = %s", Active())
	}
	restore()
	if Active() != before {
		t.Fatalf("after restore: active = %s, want %s", Active(), before)
	}

	// Forcing every detected backend must succeed; an undetected one
	// must fail without disturbing the selection.
	for _, b := range Detected() {
		r, err := Force(b)
		if err != nil {
			t.Fatalf("Force(%s): %v", b, err)
		}
		if Active() != b {
			t.Fatalf("after Force(%s): active = %s", b, Active())
		}
		r()
	}
	if Active() != before {
		t.Fatalf("after sweep: active = %s, want %s", Active(), before)
	}
}

func TestSnapshot(t *testing.T) {
	info := Snapshot()
	if info.Backend != Active().String() {
		t.Errorf("snapshot backend %q != active %s", info.Backend, Active())
	}
	if info.Width != Active().NativeWidth() {
		t.Errorf("snapshot width %d != native %d", info.Width, Active().NativeWidth())
	}
	if len(info.Available) == 0 || info.Available[0] != "portable" {
		t.Errorf("available must lead with portable: %v", info.Available)
	}
}
