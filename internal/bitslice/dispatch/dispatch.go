// Package dispatch selects the SIMD backend the bitslice evaluator runs
// on.  Detection happens once at init: the CPU's vector extensions are
// probed (hand-rolled CPUID/XGETBV on amd64 — the module is dependency-
// free by policy), the CTGAUSS_SIMD environment override is applied, and
// the winner is published through an atomic so evaluation reads it with
// one load.  The pure-Go interpreter is always available as the portable
// fallback, and every backend produces bit-identical output at a given
// evaluation width — the backend changes who executes the instruction
// stream, never what it computes.
//
// Override values (CTGAUSS_SIMD): "off"/"portable" force the pure-Go
// path, "avx2"/"avx512" request a specific kernel set.  Requesting a
// backend the CPU (or OS) does not support falls back to the best
// available one rather than failing: a fleet-wide env var must not brick
// replicas on older hardware.  Info records both the request and the
// outcome so /healthz can surface a mismatch.
package dispatch

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// Backend identifies an evaluation kernel set.
type Backend int32

// Backends, in preference order (higher is preferred when available).
const (
	// Portable is the pure-Go wide interpreter — always available.
	Portable Backend = iota
	// AVX2 executes the op stream with 256-bit VPAND-class instructions,
	// two ymm registers per 8-word slot.
	AVX2
	// AVX512 executes the op stream with 512-bit zmm registers; every
	// opcode — fused or not — is a single VPTERNLOGQ per vector.
	AVX512
)

// String returns the backend's stable name (the override spelling).
func (b Backend) String() string {
	switch b {
	case Portable:
		return "portable"
	case AVX2:
		return "avx2"
	case AVX512:
		return "avx512"
	}
	return fmt.Sprintf("backend(%d)", int32(b))
}

// NativeWidth returns the evaluation width (64-bit words per slot) the
// backend is most efficient at: the width whose slot spans whole vector
// registers with the fewest dispatches per instruction.  Samplers built
// without an explicit width evaluate at the active backend's native
// width, so one refill yields NativeWidth()×64 samples.
func (b Backend) NativeWidth() int {
	switch b {
	case AVX2, AVX512:
		// Four ymm (AVX2) or two zmm (AVX-512) per slot: 1024 lanes per
		// evaluation amortizes the per-instruction decode and dispatch
		// across 16 words.  Measured ~2× the per-sample throughput of
		// the same kernels at width 8 (BENCH_PR10.json).
		return 16
	default:
		// The portable interpreter's widest unrolled body; wider slot
		// files thrash cache without vector registers to fill.
		return 8
	}
}

// Widths returns the evaluation widths the backend has kernels for.
// The portable interpreter handles every width ≥ 1.
func (b Backend) Widths() []int {
	switch b {
	case AVX2, AVX512:
		return []int{8, 16}
	default:
		return nil // portable: unrestricted
	}
}

// active is the selected backend, read per evaluation via one atomic
// load.  Tests flip it with Force; production selects once at init.
var active atomic.Int32

// detected is the immutable set of backends this CPU+OS supports,
// filled at init (Portable is implicit and always first).
var detected []Backend

// override records the CTGAUSS_SIMD value seen at init ("" when unset).
var override string

// overrideErr records an override that could not be honored (unknown
// value or unavailable backend), for Info to surface.
var overrideErr string

func init() {
	detected = probe()
	override = strings.ToLower(strings.TrimSpace(os.Getenv("CTGAUSS_SIMD")))
	b, errmsg := choose(override, detected)
	overrideErr = errmsg
	active.Store(int32(b))
}

// choose resolves an override spelling against the detected backend set.
// It never fails: an unknown or unavailable request degrades to the best
// available backend with an explanatory message, because a fleet-wide
// env var must not brick replicas on older hardware.
func choose(override string, detected []Backend) (Backend, string) {
	best := Portable
	for _, d := range detected {
		if d > best {
			best = d
		}
	}
	switch override {
	case "":
		return best, ""
	case "off", "portable", "none":
		return Portable, ""
	case "avx2", "avx512":
		want := AVX2
		if override == "avx512" {
			want = AVX512
		}
		for _, d := range detected {
			if d == want {
				return want, ""
			}
		}
		return best, fmt.Sprintf("CTGAUSS_SIMD=%s unavailable on this CPU, using %s", override, best)
	default:
		return best, fmt.Sprintf("unknown CTGAUSS_SIMD=%q, using %s", override, best)
	}
}

// probe is implemented per-arch (cpu_amd64.go / cpu_other.go); it
// returns the SIMD backends the CPU and OS support, best last.
// Portable is never included — it is implicit.

// best returns the highest-preference available backend.
func best() Backend {
	b := Portable
	for _, d := range detected {
		if d > b {
			b = d
		}
	}
	return b
}

// available reports whether b has kernel support on this CPU.
func available(b Backend) bool {
	if b == Portable {
		return true
	}
	for _, d := range detected {
		if d == b {
			return true
		}
	}
	return false
}

// Active returns the backend evaluation currently dispatches to.
func Active() Backend { return Backend(active.Load()) }

// Detected returns the SIMD backends this CPU supports (excluding the
// always-available portable fallback), in ascending preference order.
// The caller must not modify the returned slice.
func Detected() []Backend { return detected }

// Force switches the active backend, returning a function that restores
// the previous selection.  It fails if b is not available on this CPU.
// Intended for tests (cross-backend identity sweeps) and tools; serving
// processes select once at init via CTGAUSS_SIMD.
func Force(b Backend) (restore func(), err error) {
	if !available(b) {
		return nil, fmt.Errorf("dispatch: backend %s not available on this CPU (have %s)", b, strings.Join(Names(), ","))
	}
	prev := active.Swap(int32(b))
	return func() { active.Store(prev) }, nil
}

// Names returns the name of every available backend including portable.
func Names() []string {
	names := []string{Portable.String()}
	for _, d := range detected {
		names = append(names, d.String())
	}
	return names
}

// Info is the introspection snapshot the serving layer reports.
type Info struct {
	// Backend is the active backend's name ("portable", "avx2", ...).
	Backend string `json:"backend"`
	// Width is the active backend's native evaluation width in 64-bit
	// words per slot (samples per refill = Width×64).
	Width int `json:"width"`
	// Available lists every backend this CPU supports, portable first.
	Available []string `json:"available"`
	// Override echoes CTGAUSS_SIMD when set.
	Override string `json:"override,omitempty"`
	// OverrideError explains an override that could not be honored.
	OverrideError string `json:"override_error,omitempty"`
}

// Snapshot returns the current dispatch state for introspection
// (-version, /healthz, the build_info metric).
func Snapshot() Info {
	return Info{
		Backend:       Active().String(),
		Width:         Active().NativeWidth(),
		Available:     Names(),
		Override:      override,
		OverrideError: overrideErr,
	}
}
