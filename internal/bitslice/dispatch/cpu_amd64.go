package dispatch

// CPU feature probing via raw CPUID/XGETBV (cpu_amd64.s) — the module is
// dependency-free, so no golang.org/x/sys/cpu.

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (extended control register 0): which register state
// the OS saves and restores across context switches.
func xgetbv() (eax, edx uint32)

// XCR0 state-component bits the kernels depend on: the OS must preserve
// xmm+ymm state for AVX2 and additionally the opmask and both zmm banks
// for AVX-512, or the registers are silently corrupted across context
// switches.
const (
	ymmState = 0x6  // XCR0[2:1] = SSE, AVX
	zmmState = 0xe0 // XCR0[7:5] = opmask, ZMM_Hi256, Hi16_ZMM
)

// probe returns the SIMD backends this CPU and OS support, in ascending
// preference order.  Portable is implicit and never included.
func probe() []Backend {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return nil
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return nil
	}
	xcr0, _ := xgetbv()
	if xcr0&ymmState != ymmState {
		return nil
	}
	_, ebx7, _, _ := cpuid(7, 0)
	var out []Backend
	if ebx7&(1<<5) != 0 { // AVX2
		out = append(out, AVX2)
	}
	// The zmm kernels use AVX-512F instructions only (VMOVDQU64,
	// VPTERNLOGQ), so F is the sole ISA requirement.
	if ebx7&(1<<16) != 0 && xcr0&zmmState == zmmState { // AVX512F
		out = append(out, AVX512)
	}
	return out
}
