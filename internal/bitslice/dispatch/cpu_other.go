//go:build !amd64

package dispatch

// probe reports no SIMD backends on architectures without kernels; the
// portable interpreter serves everything.  A NEON backend would hook in
// here (and in the bitslice kernel table) without touching the
// selection or plumbing layers.
func probe() []Backend { return nil }
