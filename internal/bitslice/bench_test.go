package bitslice

import (
	"math/rand"
	"testing"
)

// benchProgram builds a mux-chain-shaped circuit comparable to the σ=2
// sampler: accumulation chains of and/or with shared selector prefixes.
func benchProgram() *Program {
	rng := rand.New(rand.NewSource(3))
	b := newBuilder(130, true)
	outs := make([]int, 5)
	for i := range outs {
		outs[i] = b.zero()
	}
	prefix := b.ones()
	for k := 0; k < 100; k++ {
		sel := b.andNot(prefix, k)
		for i := range outs {
			f := 100 + rng.Intn(29)
			g := 100 + rng.Intn(29)
			term := b.and(f, g)
			outs[i] = b.or(outs[i], b.and(sel, term))
		}
		prefix = b.and(prefix, k)
	}
	p := b.p
	p.Outputs = outs
	p.ValueBits = len(outs)
	p.MaxSupport = 31
	return p
}

func benchInputs(n int) []uint64 {
	rng := rand.New(rand.NewSource(5))
	in := make([]uint64, n)
	for i := range in {
		in[i] = rng.Uint64()
	}
	return in
}

func BenchmarkRunReference(b *testing.B) {
	p := benchProgram()
	in := benchInputs(p.NumInputs)
	regs := make([]uint64, p.NumRegs)
	out := make([]uint64, len(p.Outputs))
	b.ReportMetric(float64(p.OpCount()), "ops")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RunInto(in, regs, out)
	}
}

func BenchmarkRunOptimized(b *testing.B) {
	p := benchProgram()
	o := Optimize(p)
	in := benchInputs(p.NumInputs)
	slots := o.NewSlots(1)
	out := make([]uint64, len(o.Outputs))
	b.ReportMetric(float64(o.OpCount()), "ops")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.RunInto(in, slots, out)
	}
}

func BenchmarkRunWide(b *testing.B) {
	p := benchProgram()
	o := Optimize(p)
	for _, w := range []int{4, 8} {
		b.Run(map[int]string{4: "w4", 8: "w8"}[w], func(b *testing.B) {
			in := benchInputs(p.NumInputs * w)
			slots := o.NewSlots(w)
			out := make([]uint64, len(o.Outputs)*w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.RunWideInto(w, in, slots, out)
			}
			// per-64-lane batch cost for comparability
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*w), "ns/batch")
		})
	}
}

func BenchmarkUnpackAll(b *testing.B) {
	out := benchInputs(5)
	var dst [64]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnpackAll(out, dst[:])
	}
}

func BenchmarkUnpackNaive(b *testing.B) {
	out := benchInputs(5)
	var dst [64]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < 64; l++ {
			v := 0
			for j, w := range out {
				v |= int((w>>uint(l))&1) << uint(j)
			}
			dst[l] = v
		}
	}
}
