package bitslice

// Packed kernel form of an Optimized program.  The SIMD backends
// (simd_amd64.s) interpret the op stream in assembly; to keep their
// decode to a handful of instructions, the Go side pre-lowers Code into
// a flat array of dense opcodes and byte offsets:
//
//   - opcodes are renumbered contiguously 0..12 (OpZero/OpOnes never
//     survive Optimize, so the kernel dispatch tree covers every op the
//     stream can contain),
//   - slot indices become byte offsets into the slot file at a fixed
//     width (slot s at width w → s·w·8), so the kernel adds the offset
//     to the slot base with no multiply,
//   - unused operands (B of a NOT, C of any base op) are pointed at A,
//     so kernels with a uniform load shape — the AVX-512 interpreter
//     loads A, B and C for every op and folds the whole boolean into
//     one VPTERNLOGQ — read harmlessly instead of branching.
//
// The packed form depends only on the width, not the ISA, so one cached
// copy serves every backend; it is the "backend-independent optimized
// form" the registry's shared Optimized carries.

import "sync/atomic"

// simdInstr is one packed instruction: a dense opcode and byte offsets
// of the operand and destination slots.  Layout is part of the kernel
// ABI (simd_amd64.s decodes fixed 20-byte records); TestSimdInstrLayout
// pins it.
type simdInstr struct {
	op         uint32
	a, b, c, d uint32
}

// simdInstrSize is the packed record size the kernels decode.
const simdInstrSize = 20

// Dense kernel opcodes.  Order is part of the kernel ABI: the assembly
// dispatch trees compare against these values.
const (
	sopAnd          = iota // d = a & b
	sopOr                  // d = a | b
	sopXor                 // d = a ^ b
	sopNot                 // d = ^a
	sopAndNot              // d = a &^ b
	sopAndOr               // d = c | (a & b)
	sopAndNotOr            // d = c | (a &^ b)
	sopOrOr                // d = c | (a | b)
	sopAndAnd              // d = c & (a & b)
	sopOrAnd               // d = c & (a | b)
	sopAndNotAnd           // d = c & (a &^ b)
	sopAndAndNot           // d = (a & b) &^ c
	sopAndNotAndNot        // d = (a &^ b) &^ c
)

// denseOp maps an Optimized opcode to its kernel opcode.
func denseOp(op Op) uint32 {
	switch op {
	case OpAnd:
		return sopAnd
	case OpOr:
		return sopOr
	case OpXor:
		return sopXor
	case OpNot:
		return sopNot
	case OpAndNot:
		return sopAndNot
	case opAndOr:
		return sopAndOr
	case opAndNotOr:
		return sopAndNotOr
	case opOrOr:
		return sopOrOr
	case opAndAnd:
		return sopAndAnd
	case opOrAnd:
		return sopOrAnd
	case opAndNotAnd:
		return sopAndNotAnd
	case opAndAndNot:
		return sopAndAndNot
	case opAndNotAndNot:
		return sopAndNotAndNot
	}
	panic("bitslice: opcode " + op.String() + " has no kernel form")
}

// packSIMD lowers Code to the packed kernel form at width w.
func (o *Optimized) packSIMD(w int) []simdInstr {
	stride := uint32(w) * 8
	code := make([]simdInstr, len(o.Code))
	for i := range o.Code {
		in := &o.Code[i]
		si := simdInstr{
			op: denseOp(in.Op),
			a:  uint32(in.A) * stride,
			b:  uint32(in.B) * stride,
			d:  uint32(in.Dst) * stride,
		}
		if in.Op > OpOnes {
			si.c = uint32(in.C) * stride
		} else {
			si.c = si.a // unused: harmless uniform read
		}
		if in.Op == OpNot {
			si.b = si.a
		}
		code[i] = si
	}
	return code
}

// simdCode returns the packed form at width w (8 or 16), packing on
// first use and caching thereafter.  The cache read is one atomic load
// — this sits on every refill's path.  Concurrent first uses may both
// pack; the results are identical and the last store wins.
func (o *Optimized) simdCode(w int) []simdInstr {
	var slot *atomic.Pointer[[]simdInstr]
	switch w {
	case 8:
		slot = &o.simd8
	case 16:
		slot = &o.simd16
	default:
		return nil
	}
	if p := slot.Load(); p != nil {
		return *p
	}
	code := o.packSIMD(w)
	slot.Store(&code)
	return code
}

// prepSlots is the evaluation preamble shared by every backend: load
// the input words and initialize the constant planes.
func (o *Optimized) prepSlots(w int, inputs, slots []uint64) {
	copy(slots[:o.NumInputs*w], inputs)
	if o.ZeroSlot >= 0 {
		z := slots[int(o.ZeroSlot)*w : (int(o.ZeroSlot)+1)*w]
		for j := range z {
			z[j] = 0
		}
	}
	if o.OnesSlot >= 0 {
		n := slots[int(o.OnesSlot)*w : (int(o.OnesSlot)+1)*w]
		for j := range n {
			n[j] = ^uint64(0)
		}
	}
}

// gatherOutputs is the evaluation epilogue shared by every backend:
// copy the output slots out output-major.
func (o *Optimized) gatherOutputs(w int, slots, out []uint64) {
	for i, s := range o.Outputs {
		copy(out[i*w:(i+1)*w], slots[int(s)*w:int(s+1)*w])
	}
}
