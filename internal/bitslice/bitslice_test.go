package bitslice

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ctgauss/internal/boolmin"
)

// xorSOP builds the 2-cube SOP for a XOR b over 2 vars.
func xorSOP() boolmin.SOP {
	return boolmin.SOP{NVars: 2, Cubes: []boolmin.Cube{
		{Value: 0b01, Mask: 0b11},
		{Value: 0b10, Mask: 0b11},
	}}
}

func TestCompileMuxTwoSublists(t *testing.T) {
	// Sublist 0 (prefix "0"): value = payload bit0 XOR bit1 (2 bits payload).
	// Sublist 1 (prefix "10"): value = 1 always.
	subs := []SublistFuncs{
		{K: 0, SOPs: []boolmin.SOP{xorSOP()}},
		{K: 1, SOPs: []boolmin.SOP{{NVars: 2, Cubes: []boolmin.Cube{{Value: 0, Mask: 0}}}}},
	}
	p, err := CompileMux(subs, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInputs != 4 { // maxK + delta + 1 = 1+2+1
		t.Fatalf("NumInputs = %d", p.NumInputs)
	}
	// Scalar reference over every 4-bit input assignment, replicated in
	// one lane.
	for a := uint64(0); a < 16; a++ {
		in := make([]uint64, 4)
		for i := 0; i < 4; i++ {
			if a&(1<<uint(i)) != 0 {
				in[i] = 1 // lane 0
			}
		}
		out := p.Run(in, nil)
		got := out[0] & 1
		var want uint64
		b0, b1, b2, b3 := a&1, (a>>1)&1, (a>>2)&1, (a>>3)&1
		switch {
		case b0 == 0: // sublist 0, payload = b1,b2
			want = b1 ^ b2
		case b1 == 0: // sublist 1, constant 1
			want = 1
		default:
			want = 0
			_ = b3
		}
		if got != want {
			t.Fatalf("assignment %04b: got %d want %d", a, got, want)
		}
	}
}

func TestRunAllLanesIndependent(t *testing.T) {
	subs := []SublistFuncs{
		{K: 0, SOPs: []boolmin.SOP{xorSOP()}},
	}
	p, err := CompileMux(subs, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(w0, w1, w2 uint64) bool {
		in := []uint64{w0, w1, w2}
		out := p.Run(in, nil)
		for l := 0; l < 64; l++ {
			b0 := (w0 >> uint(l)) & 1
			b1 := (w1 >> uint(l)) & 1
			b2 := (w2 >> uint(l)) & 1
			var want uint64
			if b0 == 0 {
				want = b1 ^ b2
			}
			if (out[0]>>uint(l))&1 != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunIntoMatchesRun(t *testing.T) {
	subs := []SublistFuncs{
		{K: 0, SOPs: []boolmin.SOP{xorSOP(), {NVars: 2}}},
		{K: 2, SOPs: []boolmin.SOP{
			{NVars: 2, Cubes: []boolmin.Cube{{Value: 1, Mask: 1}}},
			{NVars: 2, Cubes: []boolmin.Cube{{Value: 0, Mask: 0}}},
		}},
	}
	p, err := CompileMux(subs, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	in := make([]uint64, p.NumInputs)
	regs := make([]uint64, p.NumRegs)
	out2 := make([]uint64, len(p.Outputs))
	for trial := 0; trial < 50; trial++ {
		for i := range in {
			in[i] = rng.Uint64()
		}
		out1 := p.Run(in, nil)
		p.RunInto(in, regs, out2)
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("RunInto diverges at word %d", i)
			}
		}
	}
}

func TestCompileFlatEquivalence(t *testing.T) {
	// Flat program over 5 inputs: bit0 = cube(b0=1,b3=0), bit1 = cube(b4=1).
	c0 := boolmin.NewWideCube(5)
	c0.SetLiteral(0, 1)
	c0.SetLiteral(3, 0)
	c1 := boolmin.NewWideCube(5)
	c1.SetLiteral(4, 1)
	p, err := CompileFlat([][]boolmin.WideCube{{c0}, {c1}}, 5, 2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 32; a++ {
		in := make([]uint64, 5)
		for i := 0; i < 5; i++ {
			if a&(1<<uint(i)) != 0 {
				in[i] = ^uint64(0) // all lanes
			}
		}
		out := p.Run(in, nil)
		want0 := a&1 != 0 && a&8 == 0
		want1 := a&16 != 0
		if (out[0]&1 != 0) != want0 || (out[1]&1 != 0) != want1 {
			t.Fatalf("assignment %05b: out=%v", a, out)
		}
		// Every lane identical since inputs replicated.
		if out[0] != 0 && out[0] != ^uint64(0) {
			t.Fatalf("lanes disagree")
		}
	}
}

func TestUnpack(t *testing.T) {
	out := []uint64{0b10, 0b11} // lane1: bit0=1,bit1=1 → 3; lane0: bit0=0,bit1=1 → 2
	if v := Unpack(out, 1); v != 3 {
		t.Fatalf("lane1 = %d, want 3", v)
	}
	if v := Unpack(out, 0); v != 2 {
		t.Fatalf("lane0 = %d, want 2", v)
	}
	dst := make([]int, 64)
	UnpackAll(out, dst)
	if dst[0] != 2 || dst[1] != 3 || dst[2] != 0 {
		t.Fatalf("UnpackAll = %v", dst[:3])
	}
}

func TestCSEReusesRegisters(t *testing.T) {
	// Two identical SOPs in a sublist should share all gates.
	s := xorSOP()
	subs := []SublistFuncs{{K: 0, SOPs: []boolmin.SOP{s, s}}}
	p, err := CompileMux(subs, 2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	single, err := CompileMux([]SublistFuncs{{K: 0, SOPs: []boolmin.SOP{s}}}, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The two-output program must cost at most a couple of extra OR/AND ops.
	if p.OpCount() > single.OpCount()+3 {
		t.Fatalf("CSE failed: %d vs %d ops", p.OpCount(), single.OpCount())
	}
}

func TestEmitGoCompilableShape(t *testing.T) {
	subs := []SublistFuncs{
		{K: 0, SOPs: []boolmin.SOP{xorSOP()}},
		{K: 1, SOPs: []boolmin.SOP{{NVars: 2, Cubes: []boolmin.Cube{{Value: 0, Mask: 0}}}}},
	}
	p, err := CompileMux(subs, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := p.EmitGo("sampler", "Sample64")
	for _, want := range []string{
		"package sampler",
		"func Sample64(in, out []uint64)",
		"out[0] =",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("generated source missing %q:\n%s", want, src)
		}
	}
	// No instruction may appear after the outputs; every declared r must be
	// referenced at least twice (declaration + use) — approximated by
	// checking no line declares a variable that never recurs.
	lines := strings.Split(src, "\n")
	for _, ln := range lines {
		ln = strings.TrimSpace(ln)
		if !strings.HasPrefix(ln, "r") || !strings.Contains(ln, ":=") {
			continue
		}
		name := strings.SplitN(ln, " ", 2)[0]
		if strings.Count(src, name+" ")+strings.Count(src, name+")")+strings.Count(src, name+"\n") < 2 {
			t.Fatalf("generated variable %s appears unused:\n%s", name, src)
		}
	}
}

func TestProgramRejectsWrongInputCount(t *testing.T) {
	p, _ := CompileMux([]SublistFuncs{{K: 0, SOPs: []boolmin.SOP{xorSOP()}}}, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Run(make([]uint64, 1), nil)
}

func TestCompileMuxValidation(t *testing.T) {
	if _, err := CompileMux(nil, 2, 1, 1); err == nil {
		t.Fatal("expected error for no sublists")
	}
	bad := []SublistFuncs{{K: 0, SOPs: []boolmin.SOP{xorSOP()}}}
	if _, err := CompileMux(bad, 2, 2, 1); err == nil {
		t.Fatal("expected error for SOP/valueBits mismatch")
	}
}

func TestCompileFlatValidation(t *testing.T) {
	if _, err := CompileFlat(nil, 4, 1, 1, false); err == nil {
		t.Fatal("expected error for bit-count mismatch")
	}
}

func TestOpString(t *testing.T) {
	for op := OpAnd; op <= OpOnes; op++ {
		if op.String() == "?" {
			t.Fatalf("op %d has no name", op)
		}
	}
	if Op(200).String() != "?" {
		t.Fatal("unknown op should render ?")
	}
}
