package bitslice

import (
	"testing"
	"unsafe"
)

// TestSimdInstrLayout pins the packed record layout the assembly
// kernels decode: five little-endian uint32 fields at fixed offsets,
// 20 bytes per record with no padding.
func TestSimdInstrLayout(t *testing.T) {
	var si simdInstr
	if s := unsafe.Sizeof(si); s != simdInstrSize {
		t.Fatalf("sizeof(simdInstr) = %d, want %d", s, simdInstrSize)
	}
	offsets := map[string]uintptr{
		"op": unsafe.Offsetof(si.op),
		"a":  unsafe.Offsetof(si.a),
		"b":  unsafe.Offsetof(si.b),
		"c":  unsafe.Offsetof(si.c),
		"d":  unsafe.Offsetof(si.d),
	}
	want := map[string]uintptr{"op": 0, "a": 4, "b": 8, "c": 12, "d": 16}
	for f, off := range want {
		if offsets[f] != off {
			t.Errorf("offsetof(simdInstr.%s) = %d, want %d", f, offsets[f], off)
		}
	}
}

// TestDenseOpCoversFused ensures every opcode Optimize can emit has a
// kernel form — a new fused op without a kernel handler would
// silently corrupt SIMD evaluation, so denseOp must know it.
func TestDenseOpCoversFused(t *testing.T) {
	ops := []Op{
		OpAnd, OpOr, OpXor, OpNot, OpAndNot,
		opAndOr, opAndNotOr, opOrOr, opAndAnd, opOrAnd,
		opAndNotAnd, opAndAndNot, opAndNotAndNot,
	}
	seen := make(map[uint32]Op, len(ops))
	for _, op := range ops {
		d := denseOp(op)
		if d > sopAndNotAndNot {
			t.Errorf("denseOp(%s) = %d, outside kernel range", op, d)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("denseOp collision: %s and %s both map to %d", prev, op, d)
		}
		seen[d] = op
	}
}
