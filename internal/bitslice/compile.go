package bitslice

import (
	"fmt"

	"ctgauss/internal/boolmin"
)

// SublistFuncs is the minimized Boolean functions f^{ι,κ}_Δ of one sublist
// l_κ: for each output bit ι an SOP over the Δ payload variables.  Payload
// variable v corresponds to global input bit b_{κ+1+v} (draw order).
type SublistFuncs struct {
	K    int
	SOPs []boolmin.SOP // index ι = output bit, LSB first
}

// CompileMux builds the paper's Eqn-2 sampler: per-sublist minimized
// functions stitched together with the constant-time selector chain
//
//	c_κ = b₀ & b₁ & … & b_{κ-1} & ¬b_κ
//	out_ι = OR_κ ( c_κ & f^{ι,κ}_Δ(b_{κ+1..κ+Δ}) )
//
// The selectors are mutually exclusive, so the if-elseif chain of Eqn 2
// reduces to this OR-of-ANDs form with a shared running prefix.
//
// numInputs must be at least maxK + Δ + 1; valueBits is the number of
// output magnitude bits m.
func CompileMux(subs []SublistFuncs, delta, valueBits, maxSupport int) (*Program, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("bitslice: no sublists")
	}
	maxK := 0
	for _, s := range subs {
		if s.K > maxK {
			maxK = s.K
		}
		if len(s.SOPs) != valueBits {
			return nil, fmt.Errorf("bitslice: sublist %d has %d SOPs, want %d", s.K, len(s.SOPs), valueBits)
		}
	}
	numInputs := maxK + delta + 1
	b := newBuilder(numInputs, true)
	p := b.p
	p.ValueBits = valueBits
	p.MaxSupport = maxSupport

	outs := make([]int, valueBits)
	for i := range outs {
		outs[i] = b.zero()
	}

	bySublist := make(map[int]*SublistFuncs, len(subs))
	for i := range subs {
		bySublist[subs[i].K] = &subs[i]
	}

	prefix := b.ones()
	for k := 0; k <= maxK; k++ {
		if sf, ok := bySublist[k]; ok {
			sel := b.andNot(prefix, k) // prefix & ^b_k
			for iota_, sop := range sf.SOPs {
				f := b.compileSOP(sop, k+1)
				if f >= 0 {
					outs[iota_] = b.or(outs[iota_], b.and(sel, f))
				}
			}
		}
		if k < maxK {
			prefix = b.and(prefix, k) // prefix &= b_k
		}
	}
	p.Outputs = outs
	return p, nil
}

// compileSOP emits an SOP whose local variable v maps to global input
// base+v.  It returns the register holding the result, or -1 when the SOP
// is empty (constant false).
func (b *builder) compileSOP(s boolmin.SOP, base int) int {
	if len(s.Cubes) == 0 {
		return -1
	}
	acc := -1
	for _, c := range s.Cubes {
		term := b.compileCube(c, s.NVars, base)
		if acc < 0 {
			acc = term
		} else {
			acc = b.or(acc, term)
		}
	}
	return acc
}

// compileCube emits the AND of a cube's literals.  An empty cube (tautology)
// yields the all-ones register.
func (b *builder) compileCube(c boolmin.Cube, nvars, base int) int {
	acc := -1
	for v := 0; v < nvars; v++ {
		bit := uint64(1) << uint(v)
		if c.Mask&bit == 0 {
			continue
		}
		in := base + v
		if in >= b.p.NumInputs {
			panic(fmt.Sprintf("bitslice: cube references input %d beyond %d", in, b.p.NumInputs))
		}
		if c.Value&bit != 0 {
			if acc < 0 {
				acc = in
			} else {
				acc = b.and(acc, in)
			}
		} else {
			if acc < 0 {
				acc = b.not(in)
			} else {
				acc = b.andNot(acc, in)
			}
		}
	}
	if acc < 0 {
		return b.ones()
	}
	return acc
}

// CompileFlat builds the baseline evaluator of [21]: every output bit is a
// flat OR over full-width cubes (one per surviving leaf after the naive
// merge).  Cube variable i is global input bit i.
//
// cse controls whether product terms may share sub-products.  The honest
// model of the prior work's two-level evaluation is cse=false (each
// minimized term computed independently, complements shared); cse=true is
// the ablation showing how much of the paper's win is systematic prefix
// sharing rather than minimization.
func CompileFlat(cubesPerBit [][]boolmin.WideCube, numInputs, valueBits, maxSupport int, cse bool) (*Program, error) {
	if len(cubesPerBit) != valueBits {
		return nil, fmt.Errorf("bitslice: got %d bit lists, want %d", len(cubesPerBit), valueBits)
	}
	b := newBuilder(numInputs, cse)
	p := b.p
	p.ValueBits = valueBits
	p.MaxSupport = maxSupport
	outs := make([]int, valueBits)
	for i := range outs {
		outs[i] = b.zero()
	}
	for iota_, cubes := range cubesPerBit {
		for _, c := range cubes {
			term := b.compileWideCube(c, numInputs)
			if term >= 0 {
				outs[iota_] = b.or(outs[iota_], term)
			}
		}
	}
	p.Outputs = outs
	return p, nil
}

func (b *builder) compileWideCube(c boolmin.WideCube, numInputs int) int {
	acc := -1
	for v := 0; v < numInputs; v++ {
		w, bit := v/64, uint64(1)<<uint(v%64)
		if w >= len(c.Mask) || c.Mask[w]&bit == 0 {
			continue
		}
		if c.Value[w]&bit != 0 {
			if acc < 0 {
				acc = v
			} else {
				acc = b.and(acc, v)
			}
		} else {
			if acc < 0 {
				acc = b.not(v)
			} else {
				acc = b.andNot(acc, v)
			}
		}
	}
	if acc < 0 {
		return b.ones()
	}
	return acc
}
