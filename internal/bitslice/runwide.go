package bitslice

// Evaluation of Optimized programs, at width 1 (64 lanes, one word per
// slot) and at wider W (W contiguous words per slot → W×64 lanes per
// pass).  The wide forms lay the slot file out slot-major — slot s owns
// slots[s*W : (s+1)*W] — so every instruction touches W contiguous words
// with fixed-width inner loops the compiler can unroll and vectorize.
// Inputs are input-major (input i owns inputs[i*W : (i+1)*W]) and land in
// the first NumInputs slots with a single contiguous copy; outputs are
// gathered output-major the same way.
//
// All forms are branch-free with respect to data: the instruction
// sequence, like the source Program's, is fixed at compile time.

// NewSlots returns a slot file sized for width w evaluations.
func (o *Optimized) NewSlots(w int) []uint64 { return make([]uint64, o.NumSlots*w) }

// Run evaluates the program on one 64-lane batch, allocating its working
// storage.  Prefer RunInto on hot paths.
func (o *Optimized) Run(inputs []uint64) []uint64 {
	out := make([]uint64, len(o.Outputs))
	o.RunInto(inputs, o.NewSlots(1), out)
	return out
}

// RunInto evaluates one 64-lane batch with caller-provided storage.
// len(inputs) must be NumInputs, len(slots) ≥ NumSlots, len(out) ≥
// len(Outputs).
func (o *Optimized) RunInto(inputs, slots, out []uint64) {
	o.checkRunArgs(1, inputs, slots, out)
	slots = slots[:o.NumSlots]
	copy(slots[:o.NumInputs], inputs)
	if o.ZeroSlot >= 0 {
		slots[o.ZeroSlot] = 0
	}
	if o.OnesSlot >= 0 {
		slots[o.OnesSlot] = ^uint64(0)
	}
	// Dispatch is two nested switches so the compiler emits conditional
	// branch trees rather than one big jump table: a single indirect
	// branch over 13 targets mispredicts on almost every instruction of
	// an irregular op sequence (~15 cycles each), which measured ~4×
	// slower than the trees on the generated circuits.
	for _, in := range o.Code {
		if in.Op <= OpOnes {
			switch in.Op {
			case OpAnd:
				slots[in.Dst] = slots[in.A] & slots[in.B]
			case OpOr:
				slots[in.Dst] = slots[in.A] | slots[in.B]
			case OpXor:
				slots[in.Dst] = slots[in.A] ^ slots[in.B]
			case OpNot:
				slots[in.Dst] = ^slots[in.A]
			case OpAndNot:
				slots[in.Dst] = slots[in.A] &^ slots[in.B]
			}
		} else if in.Op <= opAndNotAnd {
			switch in.Op {
			case opAndOr:
				slots[in.Dst] = slots[in.C] | (slots[in.A] & slots[in.B])
			case opAndNotOr:
				slots[in.Dst] = slots[in.C] | (slots[in.A] &^ slots[in.B])
			case opOrOr:
				slots[in.Dst] = slots[in.C] | (slots[in.A] | slots[in.B])
			case opAndAnd:
				slots[in.Dst] = slots[in.C] & (slots[in.A] & slots[in.B])
			case opOrAnd:
				slots[in.Dst] = slots[in.C] & (slots[in.A] | slots[in.B])
			case opAndNotAnd:
				slots[in.Dst] = slots[in.C] & (slots[in.A] &^ slots[in.B])
			}
		} else {
			switch in.Op {
			case opAndAndNot:
				slots[in.Dst] = (slots[in.A] & slots[in.B]) &^ slots[in.C]
			case opAndNotAndNot:
				slots[in.Dst] = (slots[in.A] &^ slots[in.B]) &^ slots[in.C]
			}
		}
	}
	for i, s := range o.Outputs {
		out[i] = slots[s]
	}
}

// RunWideInto evaluates w 64-lane batches (w×64 lanes) in one pass over
// the instruction stream, amortizing dispatch across w words per
// instruction.  inputs is input-major with w words per input, slots must
// hold NumSlots*w words, out receives len(Outputs)*w words output-major.
//
// At widths 8 and 16 the active SIMD backend (dispatch package), if
// any, interprets the packed op stream in assembly; every backend
// computes the identical word stream, so the selection is invisible
// beyond speed.  Otherwise widths 4 and 8 take fixed-width Go
// specializations and remaining widths the generic loop.
func (o *Optimized) RunWideInto(w int, inputs, slots, out []uint64) {
	o.checkRunArgs(w, inputs, slots, out)
	if (w == 8 || w == 16) && o.runSIMD(w, inputs, slots, out) {
		return
	}
	switch w {
	case 1:
		o.RunInto(inputs, slots, out)
	case 4:
		o.runWide4(inputs, slots, out)
	case 8:
		o.runWide8(inputs, slots, out)
	default:
		o.runWideGeneric(w, inputs, slots, out)
	}
}

func (o *Optimized) runWide4(inputs, slots, out []uint64) {
	const w = 4
	copy(slots[:o.NumInputs*w], inputs)
	if o.ZeroSlot >= 0 {
		z := (*[w]uint64)(slots[int(o.ZeroSlot)*w:])
		for j := range z {
			z[j] = 0
		}
	}
	if o.OnesSlot >= 0 {
		n := (*[w]uint64)(slots[int(o.OnesSlot)*w:])
		for j := range n {
			n[j] = ^uint64(0)
		}
	}
	for _, in := range o.Code {
		a := (*[w]uint64)(slots[int(in.A)*w:])
		b := (*[w]uint64)(slots[int(in.B)*w:])
		d := (*[w]uint64)(slots[int(in.Dst)*w:])
		if in.Op <= OpOnes {
			switch in.Op {
			case OpAnd:
				d[0] = a[0] & b[0]
				d[1] = a[1] & b[1]
				d[2] = a[2] & b[2]
				d[3] = a[3] & b[3]
			case OpOr:
				d[0] = a[0] | b[0]
				d[1] = a[1] | b[1]
				d[2] = a[2] | b[2]
				d[3] = a[3] | b[3]
			case OpXor:
				d[0] = a[0] ^ b[0]
				d[1] = a[1] ^ b[1]
				d[2] = a[2] ^ b[2]
				d[3] = a[3] ^ b[3]
			case OpNot:
				d[0] = ^a[0]
				d[1] = ^a[1]
				d[2] = ^a[2]
				d[3] = ^a[3]
			case OpAndNot:
				d[0] = a[0] &^ b[0]
				d[1] = a[1] &^ b[1]
				d[2] = a[2] &^ b[2]
				d[3] = a[3] &^ b[3]
			}
		} else if in.Op <= opAndNotAnd {
			c := (*[w]uint64)(slots[int(in.C)*w:])
			switch in.Op {
			case opAndOr:
				d[0] = c[0] | (a[0] & b[0])
				d[1] = c[1] | (a[1] & b[1])
				d[2] = c[2] | (a[2] & b[2])
				d[3] = c[3] | (a[3] & b[3])
			case opAndNotOr:
				d[0] = c[0] | (a[0] &^ b[0])
				d[1] = c[1] | (a[1] &^ b[1])
				d[2] = c[2] | (a[2] &^ b[2])
				d[3] = c[3] | (a[3] &^ b[3])
			case opOrOr:
				d[0] = c[0] | (a[0] | b[0])
				d[1] = c[1] | (a[1] | b[1])
				d[2] = c[2] | (a[2] | b[2])
				d[3] = c[3] | (a[3] | b[3])
			case opAndAnd:
				d[0] = c[0] & (a[0] & b[0])
				d[1] = c[1] & (a[1] & b[1])
				d[2] = c[2] & (a[2] & b[2])
				d[3] = c[3] & (a[3] & b[3])
			case opOrAnd:
				d[0] = c[0] & (a[0] | b[0])
				d[1] = c[1] & (a[1] | b[1])
				d[2] = c[2] & (a[2] | b[2])
				d[3] = c[3] & (a[3] | b[3])
			case opAndNotAnd:
				d[0] = c[0] & (a[0] &^ b[0])
				d[1] = c[1] & (a[1] &^ b[1])
				d[2] = c[2] & (a[2] &^ b[2])
				d[3] = c[3] & (a[3] &^ b[3])
			}
		} else {
			c := (*[w]uint64)(slots[int(in.C)*w:])
			switch in.Op {
			case opAndAndNot:
				d[0] = (a[0] & b[0]) &^ c[0]
				d[1] = (a[1] & b[1]) &^ c[1]
				d[2] = (a[2] & b[2]) &^ c[2]
				d[3] = (a[3] & b[3]) &^ c[3]
			case opAndNotAndNot:
				d[0] = (a[0] &^ b[0]) &^ c[0]
				d[1] = (a[1] &^ b[1]) &^ c[1]
				d[2] = (a[2] &^ b[2]) &^ c[2]
				d[3] = (a[3] &^ b[3]) &^ c[3]
			}
		}
	}
	for i, s := range o.Outputs {
		copy(out[i*w:(i+1)*w], slots[int(s)*w:int(s+1)*w])
	}
}

func (o *Optimized) runWide8(inputs, slots, out []uint64) {
	const w = 8
	copy(slots[:o.NumInputs*w], inputs)
	if o.ZeroSlot >= 0 {
		z := (*[w]uint64)(slots[int(o.ZeroSlot)*w:])
		for j := range z {
			z[j] = 0
		}
	}
	if o.OnesSlot >= 0 {
		n := (*[w]uint64)(slots[int(o.OnesSlot)*w:])
		for j := range n {
			n[j] = ^uint64(0)
		}
	}
	for _, in := range o.Code {
		a := (*[w]uint64)(slots[int(in.A)*w:])
		b := (*[w]uint64)(slots[int(in.B)*w:])
		d := (*[w]uint64)(slots[int(in.Dst)*w:])
		if in.Op <= OpOnes {
			switch in.Op {
			case OpAnd:
				d[0] = a[0] & b[0]
				d[1] = a[1] & b[1]
				d[2] = a[2] & b[2]
				d[3] = a[3] & b[3]
				d[4] = a[4] & b[4]
				d[5] = a[5] & b[5]
				d[6] = a[6] & b[6]
				d[7] = a[7] & b[7]
			case OpOr:
				d[0] = a[0] | b[0]
				d[1] = a[1] | b[1]
				d[2] = a[2] | b[2]
				d[3] = a[3] | b[3]
				d[4] = a[4] | b[4]
				d[5] = a[5] | b[5]
				d[6] = a[6] | b[6]
				d[7] = a[7] | b[7]
			case OpXor:
				d[0] = a[0] ^ b[0]
				d[1] = a[1] ^ b[1]
				d[2] = a[2] ^ b[2]
				d[3] = a[3] ^ b[3]
				d[4] = a[4] ^ b[4]
				d[5] = a[5] ^ b[5]
				d[6] = a[6] ^ b[6]
				d[7] = a[7] ^ b[7]
			case OpNot:
				d[0] = ^a[0]
				d[1] = ^a[1]
				d[2] = ^a[2]
				d[3] = ^a[3]
				d[4] = ^a[4]
				d[5] = ^a[5]
				d[6] = ^a[6]
				d[7] = ^a[7]
			case OpAndNot:
				d[0] = a[0] &^ b[0]
				d[1] = a[1] &^ b[1]
				d[2] = a[2] &^ b[2]
				d[3] = a[3] &^ b[3]
				d[4] = a[4] &^ b[4]
				d[5] = a[5] &^ b[5]
				d[6] = a[6] &^ b[6]
				d[7] = a[7] &^ b[7]
			}
		} else if in.Op <= opAndNotAnd {
			c := (*[w]uint64)(slots[int(in.C)*w:])
			switch in.Op {
			case opAndOr:
				d[0] = c[0] | (a[0] & b[0])
				d[1] = c[1] | (a[1] & b[1])
				d[2] = c[2] | (a[2] & b[2])
				d[3] = c[3] | (a[3] & b[3])
				d[4] = c[4] | (a[4] & b[4])
				d[5] = c[5] | (a[5] & b[5])
				d[6] = c[6] | (a[6] & b[6])
				d[7] = c[7] | (a[7] & b[7])
			case opAndNotOr:
				d[0] = c[0] | (a[0] &^ b[0])
				d[1] = c[1] | (a[1] &^ b[1])
				d[2] = c[2] | (a[2] &^ b[2])
				d[3] = c[3] | (a[3] &^ b[3])
				d[4] = c[4] | (a[4] &^ b[4])
				d[5] = c[5] | (a[5] &^ b[5])
				d[6] = c[6] | (a[6] &^ b[6])
				d[7] = c[7] | (a[7] &^ b[7])
			case opOrOr:
				d[0] = c[0] | (a[0] | b[0])
				d[1] = c[1] | (a[1] | b[1])
				d[2] = c[2] | (a[2] | b[2])
				d[3] = c[3] | (a[3] | b[3])
				d[4] = c[4] | (a[4] | b[4])
				d[5] = c[5] | (a[5] | b[5])
				d[6] = c[6] | (a[6] | b[6])
				d[7] = c[7] | (a[7] | b[7])
			case opAndAnd:
				d[0] = c[0] & (a[0] & b[0])
				d[1] = c[1] & (a[1] & b[1])
				d[2] = c[2] & (a[2] & b[2])
				d[3] = c[3] & (a[3] & b[3])
				d[4] = c[4] & (a[4] & b[4])
				d[5] = c[5] & (a[5] & b[5])
				d[6] = c[6] & (a[6] & b[6])
				d[7] = c[7] & (a[7] & b[7])
			case opOrAnd:
				d[0] = c[0] & (a[0] | b[0])
				d[1] = c[1] & (a[1] | b[1])
				d[2] = c[2] & (a[2] | b[2])
				d[3] = c[3] & (a[3] | b[3])
				d[4] = c[4] & (a[4] | b[4])
				d[5] = c[5] & (a[5] | b[5])
				d[6] = c[6] & (a[6] | b[6])
				d[7] = c[7] & (a[7] | b[7])
			case opAndNotAnd:
				d[0] = c[0] & (a[0] &^ b[0])
				d[1] = c[1] & (a[1] &^ b[1])
				d[2] = c[2] & (a[2] &^ b[2])
				d[3] = c[3] & (a[3] &^ b[3])
				d[4] = c[4] & (a[4] &^ b[4])
				d[5] = c[5] & (a[5] &^ b[5])
				d[6] = c[6] & (a[6] &^ b[6])
				d[7] = c[7] & (a[7] &^ b[7])
			}
		} else {
			c := (*[w]uint64)(slots[int(in.C)*w:])
			switch in.Op {
			case opAndAndNot:
				d[0] = (a[0] & b[0]) &^ c[0]
				d[1] = (a[1] & b[1]) &^ c[1]
				d[2] = (a[2] & b[2]) &^ c[2]
				d[3] = (a[3] & b[3]) &^ c[3]
				d[4] = (a[4] & b[4]) &^ c[4]
				d[5] = (a[5] & b[5]) &^ c[5]
				d[6] = (a[6] & b[6]) &^ c[6]
				d[7] = (a[7] & b[7]) &^ c[7]
			case opAndNotAndNot:
				d[0] = (a[0] &^ b[0]) &^ c[0]
				d[1] = (a[1] &^ b[1]) &^ c[1]
				d[2] = (a[2] &^ b[2]) &^ c[2]
				d[3] = (a[3] &^ b[3]) &^ c[3]
				d[4] = (a[4] &^ b[4]) &^ c[4]
				d[5] = (a[5] &^ b[5]) &^ c[5]
				d[6] = (a[6] &^ b[6]) &^ c[6]
				d[7] = (a[7] &^ b[7]) &^ c[7]
			}
		}
	}
	for i, s := range o.Outputs {
		copy(out[i*w:(i+1)*w], slots[int(s)*w:int(s+1)*w])
	}
}

// runWideGeneric handles arbitrary widths.  Each op runs over the slot
// in fixed-width blocks of four words — (*[4]uint64) casts give the
// compiler constant trip counts it unrolls and vectorizes, where a
// single runtime-bounded `for j < w` loop kept bounds checks and a
// per-word branch in the hot path — with a scalar tail for w mod 4.
func (o *Optimized) runWideGeneric(w int, inputs, slots, out []uint64) {
	o.prepSlots(w, inputs, slots)
	wb := w &^ 3
	for i := range o.Code {
		in := &o.Code[i]
		a := slots[int(in.A)*w : (int(in.A)+1)*w]
		b := slots[int(in.B)*w : (int(in.B)+1)*w]
		c := slots[int(in.C)*w : (int(in.C)+1)*w]
		d := slots[int(in.Dst)*w : (int(in.Dst)+1)*w]
		switch in.Op {
		case OpAnd:
			for j := 0; j < wb; j += 4 {
				da, aa, ba := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:])
				da[0] = aa[0] & ba[0]
				da[1] = aa[1] & ba[1]
				da[2] = aa[2] & ba[2]
				da[3] = aa[3] & ba[3]
			}
			for j := wb; j < w; j++ {
				d[j] = a[j] & b[j]
			}
		case OpOr:
			for j := 0; j < wb; j += 4 {
				da, aa, ba := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:])
				da[0] = aa[0] | ba[0]
				da[1] = aa[1] | ba[1]
				da[2] = aa[2] | ba[2]
				da[3] = aa[3] | ba[3]
			}
			for j := wb; j < w; j++ {
				d[j] = a[j] | b[j]
			}
		case OpXor:
			for j := 0; j < wb; j += 4 {
				da, aa, ba := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:])
				da[0] = aa[0] ^ ba[0]
				da[1] = aa[1] ^ ba[1]
				da[2] = aa[2] ^ ba[2]
				da[3] = aa[3] ^ ba[3]
			}
			for j := wb; j < w; j++ {
				d[j] = a[j] ^ b[j]
			}
		case OpNot:
			for j := 0; j < wb; j += 4 {
				da, aa := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:])
				da[0] = ^aa[0]
				da[1] = ^aa[1]
				da[2] = ^aa[2]
				da[3] = ^aa[3]
			}
			for j := wb; j < w; j++ {
				d[j] = ^a[j]
			}
		case OpAndNot:
			for j := 0; j < wb; j += 4 {
				da, aa, ba := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:])
				da[0] = aa[0] &^ ba[0]
				da[1] = aa[1] &^ ba[1]
				da[2] = aa[2] &^ ba[2]
				da[3] = aa[3] &^ ba[3]
			}
			for j := wb; j < w; j++ {
				d[j] = a[j] &^ b[j]
			}
		case opAndOr:
			for j := 0; j < wb; j += 4 {
				da, aa, ba, ca := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:]), (*[4]uint64)(c[j:])
				da[0] = ca[0] | (aa[0] & ba[0])
				da[1] = ca[1] | (aa[1] & ba[1])
				da[2] = ca[2] | (aa[2] & ba[2])
				da[3] = ca[3] | (aa[3] & ba[3])
			}
			for j := wb; j < w; j++ {
				d[j] = c[j] | (a[j] & b[j])
			}
		case opAndNotOr:
			for j := 0; j < wb; j += 4 {
				da, aa, ba, ca := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:]), (*[4]uint64)(c[j:])
				da[0] = ca[0] | (aa[0] &^ ba[0])
				da[1] = ca[1] | (aa[1] &^ ba[1])
				da[2] = ca[2] | (aa[2] &^ ba[2])
				da[3] = ca[3] | (aa[3] &^ ba[3])
			}
			for j := wb; j < w; j++ {
				d[j] = c[j] | (a[j] &^ b[j])
			}
		case opOrOr:
			for j := 0; j < wb; j += 4 {
				da, aa, ba, ca := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:]), (*[4]uint64)(c[j:])
				da[0] = ca[0] | (aa[0] | ba[0])
				da[1] = ca[1] | (aa[1] | ba[1])
				da[2] = ca[2] | (aa[2] | ba[2])
				da[3] = ca[3] | (aa[3] | ba[3])
			}
			for j := wb; j < w; j++ {
				d[j] = c[j] | (a[j] | b[j])
			}
		case opAndAnd:
			for j := 0; j < wb; j += 4 {
				da, aa, ba, ca := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:]), (*[4]uint64)(c[j:])
				da[0] = ca[0] & (aa[0] & ba[0])
				da[1] = ca[1] & (aa[1] & ba[1])
				da[2] = ca[2] & (aa[2] & ba[2])
				da[3] = ca[3] & (aa[3] & ba[3])
			}
			for j := wb; j < w; j++ {
				d[j] = c[j] & (a[j] & b[j])
			}
		case opOrAnd:
			for j := 0; j < wb; j += 4 {
				da, aa, ba, ca := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:]), (*[4]uint64)(c[j:])
				da[0] = ca[0] & (aa[0] | ba[0])
				da[1] = ca[1] & (aa[1] | ba[1])
				da[2] = ca[2] & (aa[2] | ba[2])
				da[3] = ca[3] & (aa[3] | ba[3])
			}
			for j := wb; j < w; j++ {
				d[j] = c[j] & (a[j] | b[j])
			}
		case opAndNotAnd:
			for j := 0; j < wb; j += 4 {
				da, aa, ba, ca := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:]), (*[4]uint64)(c[j:])
				da[0] = ca[0] & (aa[0] &^ ba[0])
				da[1] = ca[1] & (aa[1] &^ ba[1])
				da[2] = ca[2] & (aa[2] &^ ba[2])
				da[3] = ca[3] & (aa[3] &^ ba[3])
			}
			for j := wb; j < w; j++ {
				d[j] = c[j] & (a[j] &^ b[j])
			}
		case opAndAndNot:
			for j := 0; j < wb; j += 4 {
				da, aa, ba, ca := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:]), (*[4]uint64)(c[j:])
				da[0] = (aa[0] & ba[0]) &^ ca[0]
				da[1] = (aa[1] & ba[1]) &^ ca[1]
				da[2] = (aa[2] & ba[2]) &^ ca[2]
				da[3] = (aa[3] & ba[3]) &^ ca[3]
			}
			for j := wb; j < w; j++ {
				d[j] = (a[j] & b[j]) &^ c[j]
			}
		case opAndNotAndNot:
			for j := 0; j < wb; j += 4 {
				da, aa, ba, ca := (*[4]uint64)(d[j:]), (*[4]uint64)(a[j:]), (*[4]uint64)(b[j:]), (*[4]uint64)(c[j:])
				da[0] = (aa[0] &^ ba[0]) &^ ca[0]
				da[1] = (aa[1] &^ ba[1]) &^ ca[1]
				da[2] = (aa[2] &^ ba[2]) &^ ca[2]
				da[3] = (aa[3] &^ ba[3]) &^ ca[3]
			}
			for j := wb; j < w; j++ {
				d[j] = (a[j] &^ b[j]) &^ c[j]
			}
		}
	}
	o.gatherOutputs(w, slots, out)
}
