package bitslice_test

// External test package: exercises the optimizer on the real generated
// sigma circuits, which requires the core build pipeline (core imports
// bitslice, so this cannot live in the internal test package).

import (
	"math/rand"
	"testing"

	"ctgauss/internal/bitslice"
	"ctgauss/internal/bitslice/dispatch"
	"ctgauss/internal/core"
)

// TestOptimizeSigmaCircuits proves the optimized engine bit-identical to
// the reference interpreter on both of the paper's generated circuits, at
// every evaluation width, including the transpose-based unpacking.  The
// whole sweep repeats once per available backend (forced portable, then
// each detected SIMD ISA), so widths 8 and 16 — the ones with assembly
// kernels — are proven identical across every implementation this
// machine can run.
func TestOptimizeSigmaCircuits(t *testing.T) {
	backends := append([]dispatch.Backend{dispatch.Portable}, dispatch.Detected()...)
	for _, backend := range backends {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			restore, err := dispatch.Force(backend)
			if err != nil {
				t.Fatal(err)
			}
			defer restore()
			testOptimizeSigmaCircuits(t)
		})
	}
}

func testOptimizeSigmaCircuits(t *testing.T) {
	for _, sigma := range []string{"2", "6.15543"} {
		sigma := sigma
		t.Run("sigma"+sigma, func(t *testing.T) {
			built, err := core.Build(core.Config{Sigma: sigma, N: 128, TailCut: 13, Min: core.MinimizeExact})
			if err != nil {
				t.Fatal(err)
			}
			p := built.Program
			o := bitslice.Optimize(p)
			t.Logf("σ=%s: %d SSA regs → %d slots, %d instrs → %d (fused)",
				sigma, p.NumRegs, o.NumSlots, p.OpCount(), o.OpCount())
			if o.NumSlots >= p.NumRegs/4 {
				t.Errorf("register allocation too weak: %d slots for %d SSA regs", o.NumSlots, p.NumRegs)
			}
			if o.OpCount() >= p.OpCount() {
				t.Errorf("no instruction reduction: %d vs %d", o.OpCount(), p.OpCount())
			}

			rng := rand.New(rand.NewSource(1234))
			for _, w := range []int{1, 2, 4, 8, 16} {
				for trial := 0; trial < 8; trial++ {
					wideIn := make([]uint64, p.NumInputs*w)
					refIn := make([][]uint64, w)
					for blk := 0; blk < w; blk++ {
						refIn[blk] = make([]uint64, p.NumInputs)
						for i := range refIn[blk] {
							refIn[blk][i] = rng.Uint64()
							wideIn[i*w+blk] = refIn[blk][i]
						}
					}
					wideOut := make([]uint64, len(p.Outputs)*w)
					o.RunWideInto(w, wideIn, o.NewSlots(w), wideOut)
					for blk := 0; blk < w; blk++ {
						want := p.Run(refIn[blk], nil)
						blkOut := make([]uint64, len(p.Outputs))
						for i := range blkOut {
							blkOut[i] = wideOut[i*w+blk]
							if blkOut[i] != want[i] {
								t.Fatalf("w=%d blk=%d output %d: %#x != %#x", w, blk, i, blkOut[i], want[i])
							}
						}
						var mags [64]int
						bitslice.UnpackAll(blkOut, mags[:])
						for l := 0; l < 64; l++ {
							if ref := bitslice.Unpack(want, l); mags[l] != ref {
								t.Fatalf("w=%d blk=%d lane %d: unpack %d != %d", w, blk, l, mags[l], ref)
							}
						}
					}
				}
			}
		})
	}
}
