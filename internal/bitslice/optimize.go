package bitslice

import (
	"fmt"
	"sync/atomic"
)

// This file implements the optimizing compiler pass over a Program.  The
// SSA form the builder emits is convenient to construct and serialize but
// hostile to evaluate: one fresh register per instruction means the σ=2
// circuit drags a 3.7k-word register file (29 KB) through every batch and
// the σ=6.15543 circuit an 87 KB one — far outside L1.  Optimize rewrites
// the program into a dense, register-allocated form whose working set is
// the maximum number of simultaneously live values (~140 words for the
// paper's circuits, ≈1 KB) and whose instruction count is cut by constant
// folding, dead-code elimination, and fusing the dominant two-instruction
// patterns of the mux-chain construction into single dispatches.
//
// Everything here is a semantics-preserving rewrite of a branch-free
// straight-line program, so the constant-time-by-construction property of
// Program carries over unchanged: the optimized instruction sequence is
// still fixed at compile time and evaluation never branches on data.

// Fused opcodes.  These exist only in Optimized code — never in a Program
// and never on disk (Program.Validate rejects anything above OpOnes).
// Each combines a producer whose single consumer is the immediately
// following instruction, the shape CompileMux emits for every mux-chain
// accumulation (out |= sel & f) and every cube-literal chain.
const (
	opAndOr        Op = OpOnes + 1 + iota // dst = c | (a & b)
	opAndNotOr                            // dst = c | (a &^ b)
	opOrOr                                // dst = c | (a | b)
	opAndAnd                              // dst = c & (a & b)
	opOrAnd                               // dst = c & (a | b)
	opAndNotAnd                           // dst = c & (a &^ b)
	opAndAndNot                           // dst = (a & b) &^ c
	opAndNotAndNot                        // dst = (a &^ b) &^ c
)

// OInstr is one register-allocated instruction.  A, B, C and Dst index the
// dense slot file; C is only meaningful for the fused opcodes.  Slots are
// reused as values die, so unlike Instr this is not SSA: Dst may equal an
// operand slot (the operand is read before the write).
type OInstr struct {
	Op           Op
	A, B, C, Dst int32
}

// Optimized is the evaluation form of a circuit: same outputs as the
// source Program on every input, executed over a slot file of NumSlots
// words (per lane-word of width).  Obtain one via Optimize.
type Optimized struct {
	NumInputs  int
	NumSlots   int // dense register-file size (max simultaneous liveness)
	Code       []OInstr
	Outputs    []int32 // slot indices of the output words, LSB first
	ValueBits  int
	MaxSupport int
	// ZeroSlot/OnesSlot hold constant output planes when an output bit
	// folded to a constant; -1 when unused.  Evaluation initializes them
	// before executing Code.
	ZeroSlot, OnesSlot int32

	source *Program

	// simd8/simd16 cache the packed kernel form (simd.go) per
	// evaluation width; read with one atomic load on the refill path.
	simd8, simd16 atomic.Pointer[[]simdInstr]
}

// Program returns the source program this form was compiled from.
func (o *Optimized) Program() *Program { return o.source }

// OpCount returns the optimized instruction count (fused pairs count once).
func (o *Optimized) OpCount() int { return len(o.Code) }

// value kinds tracked by the propagation pass.
const (
	valReg  = iota // canonical register `reg`
	valZero        // constant 0
	valOnes        // constant ^0
)

// absval is the abstract value of an SSA register after propagation.
type absval struct {
	kind int
	reg  int
}

// readsB reports whether a base op reads its B operand.
func readsB(op Op) bool {
	switch op {
	case OpAnd, OpOr, OpXor, OpAndNot:
		return true
	}
	return false
}

// Optimize compiles a valid Program (fresh from the builder or past
// Validate) into its register-allocated evaluation form.  The pass is
// deterministic: one Program always yields the same Optimized.
func Optimize(p *Program) *Optimized {
	vals, norm := propagate(p)
	kept := deadCodeEliminate(p, vals, norm)
	fused := fuse(p, vals, norm, kept)
	return allocate(p, vals, fused)
}

// propagate runs constant folding and copy propagation over the SSA code.
// It returns the abstract value of every register and a normalized copy of
// the code in which the surviving instructions read registers only (the
// residual constant-operand forms ones^x and ones&^x are rewritten to
// OpNot).  Instructions whose result folds to a constant or an alias of an
// earlier register need not be executed; the survivors are identified by
// vals[dst] being the canonical valReg of dst itself.
func propagate(p *Program) ([]absval, []Instr) {
	vals := make([]absval, p.NumRegs)
	for i := 0; i < p.NumInputs; i++ {
		vals[i] = absval{kind: valReg, reg: i}
	}
	norm := make([]Instr, len(p.Code))
	copy(norm, p.Code)
	for idx, in := range p.Code {
		a := vals[in.A]
		var b absval
		if readsB(in.Op) {
			b = vals[in.B]
		}
		v := absval{kind: valReg, reg: in.Dst} // default: instruction survives
		switch in.Op {
		case OpZero:
			v = absval{kind: valZero}
		case OpOnes:
			v = absval{kind: valOnes}
		case OpNot:
			switch a.kind {
			case valZero:
				v = absval{kind: valOnes}
			case valOnes:
				v = absval{kind: valZero}
			}
		case OpAnd:
			switch {
			case a.kind == valZero || b.kind == valZero:
				v = absval{kind: valZero}
			case a.kind == valOnes:
				v = b
			case b.kind == valOnes:
				v = a
			case a.reg == b.reg:
				v = a
			}
		case OpOr:
			switch {
			case a.kind == valOnes || b.kind == valOnes:
				v = absval{kind: valOnes}
			case a.kind == valZero:
				v = b
			case b.kind == valZero:
				v = a
			case a.reg == b.reg:
				v = a
			}
		case OpXor:
			switch {
			case a.kind == valZero && b.kind == valZero:
				v = absval{kind: valZero}
			case (a.kind == valZero && b.kind == valOnes) || (a.kind == valOnes && b.kind == valZero):
				v = absval{kind: valOnes}
			case a.kind == valOnes && b.kind == valOnes:
				v = absval{kind: valZero}
			case a.kind == valZero:
				v = b
			case b.kind == valZero:
				v = a
			case a.kind == valOnes:
				norm[idx] = Instr{Op: OpNot, A: in.B, B: in.B, Dst: in.Dst}
			case b.kind == valOnes:
				norm[idx] = Instr{Op: OpNot, A: in.A, B: in.A, Dst: in.Dst}
			case a.reg == b.reg:
				v = absval{kind: valZero}
			}
		case OpAndNot: // a &^ b
			switch {
			case a.kind == valZero || b.kind == valOnes:
				v = absval{kind: valZero}
			case b.kind == valZero:
				v = a
			case a.kind == valOnes:
				norm[idx] = Instr{Op: OpNot, A: in.B, B: in.B, Dst: in.Dst}
			case a.reg == b.reg:
				v = absval{kind: valZero}
			}
		}
		vals[in.Dst] = v
	}
	return vals, norm
}

// survives reports whether the instruction writing dst must execute.
func survives(vals []absval, dst int) bool {
	return vals[dst].kind == valReg && vals[dst].reg == dst
}

// operand returns the canonical register an operand resolves to.  Only
// valid for operands of surviving instructions whose value did not fold
// (propagate's fold rules consume every constant operand, so a surviving
// instruction reads registers only).
func operand(vals []absval, r int) int { return vals[r].reg }

// deadCodeEliminate marks which surviving instructions are reachable
// backward from the outputs.  It returns live[dst] for every register.
func deadCodeEliminate(p *Program, vals []absval, norm []Instr) []bool {
	live := make([]bool, p.NumRegs)
	for _, o := range p.Outputs {
		if vals[o].kind == valReg {
			live[vals[o].reg] = true
		}
	}
	for i := len(norm) - 1; i >= 0; i-- {
		in := norm[i]
		if !survives(vals, in.Dst) || !live[in.Dst] {
			continue
		}
		live[operand(vals, in.A)] = true
		if readsB(in.Op) {
			live[operand(vals, in.B)] = true
		}
	}
	return live
}

// fusePair maps (producer op, consumer op, producer-result position) to a
// fused opcode; ok is false when the pair has no fused form.  pos is 'A'
// when the producer's result is the consumer's A operand (only meaningful
// for the non-commutative AndNot; And/Or operands are canonicalized).
func fusePair(first, second Op, pos byte) (Op, bool) {
	switch second {
	case OpOr:
		switch first {
		case OpAnd:
			return opAndOr, true
		case OpAndNot:
			return opAndNotOr, true
		case OpOr:
			return opOrOr, true
		}
	case OpAnd:
		switch first {
		case OpAnd:
			return opAndAnd, true
		case OpOr:
			return opOrAnd, true
		case OpAndNot:
			return opAndNotAnd, true
		}
	case OpAndNot:
		if pos != 'A' {
			return 0, false // no fused form for c &^ t (never emitted in practice)
		}
		switch first {
		case OpAnd:
			return opAndAndNot, true
		case OpAndNot:
			return opAndNotAndNot, true
		}
	}
	return 0, false
}

// fuse lowers the live SSA instructions to OInstr form (operands resolved
// to canonical registers) and merges producer/consumer pairs where the
// producer's only use is the immediately following live instruction —
// ~half of a mux-chain circuit.  Register numbering is still SSA here;
// allocate assigns slots.
func fuse(p *Program, vals []absval, norm []Instr, live []bool) []OInstr {
	// Use counts over the live instructions and outputs, on canonical regs.
	uses := make([]int32, p.NumRegs)
	for _, in := range norm {
		if !survives(vals, in.Dst) || !live[in.Dst] {
			continue
		}
		uses[operand(vals, in.A)]++
		if readsB(in.Op) {
			uses[operand(vals, in.B)]++
		}
	}
	for _, o := range p.Outputs {
		if vals[o].kind == valReg {
			uses[vals[o].reg]++
		}
	}

	lowered := make([]OInstr, 0, len(norm))
	for _, in := range norm {
		if !survives(vals, in.Dst) || !live[in.Dst] {
			continue
		}
		a := operand(vals, in.A)
		b := a
		if readsB(in.Op) {
			b = operand(vals, in.B)
		}
		lowered = append(lowered, OInstr{Op: in.Op, A: int32(a), B: int32(b), Dst: int32(in.Dst)})
	}

	out := make([]OInstr, 0, len(lowered))
	for i := 0; i < len(lowered); i++ {
		cur := lowered[i]
		if i+1 < len(lowered) && uses[cur.Dst] == 1 {
			next := lowered[i+1]
			t := cur.Dst
			var pos byte
			var c int32
			switch {
			case next.A == t && next.B == t:
				pos = 0 // both operands are the producer; not fusable
			case next.A == t:
				pos, c = 'A', next.B
			case next.B == t && readsB(next.Op):
				pos, c = 'B', next.A
			}
			if pos != 0 {
				if next.Op == OpAnd || next.Op == OpOr {
					pos = 'B' // commutative: position is irrelevant
				}
				if fop, ok := fusePair(cur.Op, next.Op, pos); ok {
					out = append(out, OInstr{Op: fop, A: cur.A, B: cur.B, C: c, Dst: next.Dst})
					i++ // consumed the pair
					continue
				}
			}
		}
		out = append(out, cur)
	}
	return out
}

// reads calls f for each register an OInstr reads.
func (in *OInstr) reads(f func(int32)) {
	switch in.Op {
	case OpNot:
		f(in.A)
	case OpAnd, OpOr, OpXor, OpAndNot:
		f(in.A)
		f(in.B)
	default: // fused
		f(in.A)
		f(in.B)
		f(in.C)
	}
}

// allocate maps SSA registers to a dense slot file by linear scan: a slot
// is released the moment its value's last reader has executed and reused
// (LIFO, for cache locality) by the next definition.  Inputs are pinned to
// slots 0..NumInputs-1 so evaluation loads them with one contiguous copy;
// output slots are never released.
func allocate(p *Program, vals []absval, code []OInstr) *Optimized {
	const never = -1
	lastUse := make([]int, p.NumRegs)
	for i := range lastUse {
		lastUse[i] = never
	}
	for i := range code {
		idx := i
		code[i].reads(func(r int32) { lastUse[r] = idx })
	}
	for _, o := range p.Outputs {
		if vals[o].kind == valReg {
			lastUse[vals[o].reg] = len(code) // live-out: never released
		}
	}

	slotOf := make([]int32, p.NumRegs)
	for i := range slotOf {
		slotOf[i] = -1
	}
	var free []int32
	next := int32(0)
	alloc := func() int32 {
		if n := len(free); n > 0 {
			s := free[n-1]
			free = free[:n-1]
			return s
		}
		s := next
		next++
		return s
	}

	// Inputs occupy the first NumInputs slots; unused ones are free at once.
	next = int32(p.NumInputs)
	for i := 0; i < p.NumInputs; i++ {
		slotOf[i] = int32(i)
	}
	for i := p.NumInputs - 1; i >= 0; i-- {
		if lastUse[i] == never {
			free = append(free, int32(i))
		}
	}

	o := &Optimized{
		NumInputs:  p.NumInputs,
		Code:       make([]OInstr, len(code)),
		ValueBits:  p.ValueBits,
		MaxSupport: p.MaxSupport,
		ZeroSlot:   -1,
		OnesSlot:   -1,
		source:     p,
	}
	for i, in := range code {
		ni := OInstr{Op: in.Op, A: slotOf[in.A], B: slotOf[in.B], Dst: -1}
		if in.Op > OpOnes {
			ni.C = slotOf[in.C]
		}
		// Release operands dying here before assigning the destination so
		// the definition can reuse a just-freed slot (reads happen before
		// the write during evaluation, elementwise in the wide forms).
		released := [3]int32{-1, -1, -1}
		n := 0
		in.reads(func(r int32) {
			if lastUse[r] != i {
				return
			}
			for _, s := range released[:n] {
				if s == slotOf[r] {
					return // operand repeated; release its slot once
				}
			}
			released[n] = slotOf[r]
			n++
			free = append(free, slotOf[r])
		})
		ni.Dst = alloc()
		slotOf[in.Dst] = ni.Dst
		o.Code[i] = ni
	}

	o.Outputs = make([]int32, len(p.Outputs))
	for i, out := range p.Outputs {
		switch vals[out].kind {
		case valZero:
			if o.ZeroSlot < 0 {
				o.ZeroSlot = next
				next++
			}
			o.Outputs[i] = o.ZeroSlot
		case valOnes:
			if o.OnesSlot < 0 {
				o.OnesSlot = next
				next++
			}
			o.Outputs[i] = o.OnesSlot
		default:
			o.Outputs[i] = slotOf[vals[out].reg]
		}
	}
	o.NumSlots = int(next)
	if o.NumSlots < o.NumInputs {
		o.NumSlots = o.NumInputs // degenerate: no code, no outputs
	}
	return o
}

// checkRunArgs panics unless the buffers match the program shape at the
// given width.
func (o *Optimized) checkRunArgs(w int, inputs, slots, out []uint64) {
	if w < 1 {
		panic(fmt.Sprintf("bitslice: width %d < 1", w))
	}
	if len(inputs) != o.NumInputs*w {
		panic(fmt.Sprintf("bitslice: got %d input words, want %d", len(inputs), o.NumInputs*w))
	}
	if len(slots) < o.NumSlots*w {
		panic(fmt.Sprintf("bitslice: slot file has %d words, need %d", len(slots), o.NumSlots*w))
	}
	if len(out) < len(o.Outputs)*w {
		panic(fmt.Sprintf("bitslice: out has %d words, need %d", len(out), len(o.Outputs)*w))
	}
}
