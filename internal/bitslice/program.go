// Package bitslice compiles minimized Boolean expressions into
// input-independent straight-line programs of 64-bit word operations and
// evaluates them 64 samples at a time — the SIMD bit-slicing of §3.2/§5.2.
//
// A Program is constant-time by construction: its instruction sequence is
// fixed at compile time and evaluation never branches on data.  The
// ctcheck package verifies this property dynamically as well.
package bitslice

import "fmt"

// Op is a word-level Boolean operation.
type Op uint8

// Supported operations.  OpAndNot computes a &^ b in one instruction,
// matching the ANDN instruction the paper's target (BMI1) provides.
const (
	OpAnd Op = iota
	OpOr
	OpXor
	OpNot
	OpAndNot
	OpZero
	OpOnes
)

func (o Op) String() string {
	switch o {
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpNot:
		return "not"
	case OpAndNot:
		return "andnot"
	case OpZero:
		return "zero"
	case OpOnes:
		return "ones"
	}
	return "?"
}

// Instr is one three-address instruction; Dst is always a fresh register
// (SSA-like), A and B index earlier registers.
type Instr struct {
	Op   Op
	A, B int
	Dst  int
}

// Program is a compiled straight-line sampler circuit.
type Program struct {
	NumInputs  int
	NumRegs    int
	Code       []Instr
	Outputs    []int // register indices of the output words, LSB first
	SignInput  int   // index of the sign-bit input word, or -1
	ValueBits  int   // number of magnitude output bits (== len(Outputs))
	MaxSupport int   // largest representable sample magnitude
}

// builder assembles a Program with common-subexpression caching.  When cse
// is false only complements (OpNot) are cached, modelling a plain two-level
// evaluation where each product term is computed independently — the
// prior-work baseline; the paper's mux-chain construction is exactly the
// systematic sharing that full CSE plus the c_κ chain make explicit.
type builder struct {
	p     *Program
	cache map[[3]int]int // (op, a, b) -> reg
	cse   bool
}

func newBuilder(numInputs int, cse bool) *builder {
	return &builder{
		p:     &Program{NumInputs: numInputs, NumRegs: numInputs, SignInput: -1},
		cache: make(map[[3]int]int),
		cse:   cse,
	}
}

func (b *builder) emit(op Op, a, bb int) int {
	key := [3]int{int(op), a, bb}
	if op == OpAnd || op == OpOr || op == OpXor {
		// Commutative: canonical operand order.
		if bb < a {
			key = [3]int{int(op), bb, a}
		}
	}
	cacheable := b.cse || op == OpNot || op == OpZero || op == OpOnes
	if r, ok := b.cache[key]; ok && cacheable {
		return r
	}
	dst := b.p.NumRegs
	b.p.NumRegs++
	b.p.Code = append(b.p.Code, Instr{Op: op, A: key[1], B: key[2], Dst: dst})
	b.cache[key] = dst
	return dst
}

func (b *builder) and(x, y int) int    { return b.emit(OpAnd, x, y) }
func (b *builder) or(x, y int) int     { return b.emit(OpOr, x, y) }
func (b *builder) not(x int) int       { return b.emit(OpNot, x, x) }
func (b *builder) andNot(x, y int) int { return b.emit(OpAndNot, x, y) }
func (b *builder) zero() int           { return b.emit(OpZero, 0, 0) }
func (b *builder) ones() int           { return b.emit(OpOnes, 0, 0) }

// Run evaluates the program on the given input words.  len(inputs) must be
// NumInputs; each word carries one bit position for 64 independent lanes.
// It returns the output words (magnitude bits, LSB first).
func (p *Program) Run(inputs []uint64, regs []uint64) []uint64 {
	if len(inputs) != p.NumInputs {
		panic(fmt.Sprintf("bitslice: got %d inputs, want %d", len(inputs), p.NumInputs))
	}
	if cap(regs) < p.NumRegs {
		regs = make([]uint64, p.NumRegs)
	}
	regs = regs[:p.NumRegs]
	copy(regs, inputs)
	for _, in := range p.Code {
		switch in.Op {
		case OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
		case OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
		case OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
		case OpNot:
			regs[in.Dst] = ^regs[in.A]
		case OpAndNot:
			regs[in.Dst] = regs[in.A] &^ regs[in.B]
		case OpZero:
			regs[in.Dst] = 0
		case OpOnes:
			regs[in.Dst] = ^uint64(0)
		}
	}
	out := make([]uint64, len(p.Outputs))
	for i, r := range p.Outputs {
		out[i] = regs[r]
	}
	return out
}

// RunInto is Run with caller-provided output storage (no allocation).
func (p *Program) RunInto(inputs, regs, out []uint64) {
	if len(inputs) != p.NumInputs {
		panic(fmt.Sprintf("bitslice: got %d inputs, want %d", len(inputs), p.NumInputs))
	}
	copy(regs, inputs)
	for _, in := range p.Code {
		switch in.Op {
		case OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
		case OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
		case OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
		case OpNot:
			regs[in.Dst] = ^regs[in.A]
		case OpAndNot:
			regs[in.Dst] = regs[in.A] &^ regs[in.B]
		case OpZero:
			regs[in.Dst] = 0
		case OpOnes:
			regs[in.Dst] = ^uint64(0)
		}
	}
	for i, r := range p.Outputs {
		out[i] = regs[r]
	}
}

// OpCount returns the number of word instructions — the cost model the
// paper reports as cycles-per-batch on its bitsliced target.
func (p *Program) OpCount() int { return len(p.Code) }

// Unpack extracts lane l's magnitude from packed output words.
func Unpack(out []uint64, lane int) int {
	v := 0
	for i, w := range out {
		v |= int((w>>uint(lane))&1) << uint(i)
	}
	return v
}
