package bitslice_test

// Benchmarks of the evaluation engines on the paper's real generated
// circuits (σ=2 and σ=6.15543 at n=128): the reference SSA interpreter
// versus the register-allocated Optimized form at widths 1, 4 and 8.
// Wide rows report ns/batch (per 64 samples) for comparability.

import (
	"fmt"
	"math/rand"
	"testing"

	"ctgauss/internal/bitslice"
	"ctgauss/internal/core"
)

func realProg(b *testing.B, sigma string) *bitslice.Program {
	built, err := core.Build(core.Config{Sigma: sigma, N: 128, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		b.Fatal(err)
	}
	return built.Program
}

func BenchmarkRealEngines(b *testing.B) {
	for _, sigma := range []string{"2", "6.15543"} {
		p := realProg(b, sigma)
		o := bitslice.Optimize(p)
		rng := rand.New(rand.NewSource(1))
		b.Run("sigma"+sigma+"/reference", func(b *testing.B) {
			in := make([]uint64, p.NumInputs)
			for i := range in {
				in[i] = rng.Uint64()
			}
			regs := make([]uint64, p.NumRegs)
			out := make([]uint64, len(p.Outputs))
			b.ReportMetric(float64(p.OpCount()), "ops")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.RunInto(in, regs, out)
			}
		})
		for _, w := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("sigma%s/opt-w%d", sigma, w), func(b *testing.B) {
				in := make([]uint64, p.NumInputs*w)
				for i := range in {
					in[i] = rng.Uint64()
				}
				slots := o.NewSlots(w)
				out := make([]uint64, len(o.Outputs)*w)
				b.ReportMetric(float64(o.OpCount()), "ops")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					o.RunWideInto(w, in, slots, out)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*w), "ns/batch")
			})
		}
	}
}
