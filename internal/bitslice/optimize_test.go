package bitslice

import (
	"math/rand"
	"testing"
)

// randProgram generates a random valid SSA program: every instruction
// reads earlier registers, outputs point anywhere.  It deliberately mixes
// in constants, duplicate operands, dead code, and outputs aliased to
// inputs to exercise every optimizer path.
func randProgram(rng *rand.Rand) *Program {
	numInputs := 1 + rng.Intn(12)
	numInstr := rng.Intn(200)
	p := &Program{NumInputs: numInputs, NumRegs: numInputs, SignInput: -1}
	ops := []Op{OpAnd, OpOr, OpXor, OpNot, OpAndNot, OpZero, OpOnes}
	for i := 0; i < numInstr; i++ {
		op := ops[rng.Intn(len(ops))]
		a := rng.Intn(p.NumRegs)
		b := rng.Intn(p.NumRegs)
		if rng.Intn(4) == 0 {
			b = a // duplicate operands hit the x op x folds
		}
		dst := p.NumRegs
		p.NumRegs++
		p.Code = append(p.Code, Instr{Op: op, A: a, B: b, Dst: dst})
	}
	valueBits := 1 + rng.Intn(8)
	if valueBits > p.NumRegs {
		valueBits = p.NumRegs
	}
	p.ValueBits = valueBits
	p.MaxSupport = 1<<valueBits - 1
	for i := 0; i < valueBits; i++ {
		p.Outputs = append(p.Outputs, rng.Intn(p.NumRegs))
	}
	return p
}

func randInputs(rng *rand.Rand, n int) []uint64 {
	in := make([]uint64, n)
	for i := range in {
		in[i] = rng.Uint64()
	}
	return in
}

// TestOptimizeEquivalence is the tentpole property test: on random
// circuits, the optimized form — at widths 1, 4 and 8 — and the
// transpose-based unpacking produce bit-identical results to the
// reference interpreter and the per-lane Unpack.
func TestOptimizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		p := randProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		o := Optimize(p)
		if o.NumSlots > p.NumRegs {
			t.Fatalf("trial %d: %d slots exceed %d SSA registers", trial, o.NumSlots, p.NumRegs)
		}
		if o.OpCount() > p.OpCount() {
			t.Fatalf("trial %d: optimization grew the program: %d > %d", trial, o.OpCount(), p.OpCount())
		}

		for _, w := range []int{1, 4, 8, 3} {
			// Per-block inputs, each checked against an independent
			// reference run.
			wideIn := make([]uint64, p.NumInputs*w)
			refIn := make([][]uint64, w)
			for blk := 0; blk < w; blk++ {
				refIn[blk] = randInputs(rng, p.NumInputs)
				for i := 0; i < p.NumInputs; i++ {
					wideIn[i*w+blk] = refIn[blk][i]
				}
			}
			wideOut := make([]uint64, len(p.Outputs)*w)
			o.RunWideInto(w, wideIn, o.NewSlots(w), wideOut)
			for blk := 0; blk < w; blk++ {
				want := p.Run(refIn[blk], nil)
				for i := range want {
					if got := wideOut[i*w+blk]; got != want[i] {
						t.Fatalf("trial %d w=%d blk=%d: output %d = %#x, want %#x",
							trial, w, blk, i, got, want[i])
					}
				}
				// Transpose unpack agrees with the per-lane reference.
				blkOut := make([]uint64, len(p.Outputs))
				for i := range blkOut {
					blkOut[i] = wideOut[i*w+blk]
				}
				var dst [64]int
				UnpackAll(blkOut, dst[:])
				for l := 0; l < 64; l++ {
					if ref := Unpack(want, l); dst[l] != ref {
						t.Fatalf("trial %d w=%d blk=%d lane %d: UnpackAll %d, want %d",
							trial, w, blk, l, dst[l], ref)
					}
				}
			}
		}
	}
}

// TestOptimizeIdentityOutputs covers outputs that alias inputs with no
// code at all (the drain-test circuit in the sampler package).
func TestOptimizeIdentityOutputs(t *testing.T) {
	p := &Program{NumInputs: 2, NumRegs: 2, Outputs: []int{1, 0}, SignInput: -1, ValueBits: 2, MaxSupport: 3}
	o := Optimize(p)
	in := []uint64{0xdead, 0xbeef}
	out := o.Run(in)
	if out[0] != 0xbeef || out[1] != 0xdead {
		t.Fatalf("identity outputs = %#x, %#x", out[0], out[1])
	}
}

// TestOptimizeConstantOutputs covers output bits that fold to constants.
func TestOptimizeConstantOutputs(t *testing.T) {
	b := newBuilder(1, true)
	z := b.zero()
	o1 := b.ones()
	x := b.and(0, o1) // = input 0
	p := b.p
	p.Outputs = []int{z, o1, x}
	p.ValueBits = 3
	opt := Optimize(p)
	out := opt.Run([]uint64{0xabc})
	if out[0] != 0 || out[1] != ^uint64(0) || out[2] != 0xabc {
		t.Fatalf("constant outputs = %#x, %#x, %#x", out[0], out[1], out[2])
	}
	if opt.OpCount() != 0 {
		t.Fatalf("constant circuit still has %d instructions", opt.OpCount())
	}
}

func naiveTranspose(a [64]uint64) [64]uint64 {
	var out [64]uint64
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			out[c] |= ((a[r] >> uint(c)) & 1) << uint(r)
		}
	}
	return out
}

func TestTranspose64(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var m [64]uint64
		for i := range m {
			m[i] = rng.Uint64()
		}
		want := naiveTranspose(m)
		got := m
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose mismatch", trial)
		}
		// Involution: transposing twice restores the original.
		Transpose64(&got)
		if got != m {
			t.Fatalf("trial %d: transpose is not an involution", trial)
		}
	}
}

func TestFusionCoverage(t *testing.T) {
	// Build a circuit exhibiting every fused pair and check the optimizer
	// actually emits fused opcodes (the perf win depends on it).
	b := newBuilder(6, true)
	acc := b.and(0, 1)       // and
	acc = b.or(acc, 2)       // fuses and+or
	acc2 := b.andNot(acc, 3) // single use producer
	acc2 = b.and(acc2, 4)    // fuses andnot+and
	acc3 := b.and(acc2, 5)   //
	acc3 = b.andNot(acc3, 0) // fuses and+andnot
	p := b.p
	p.Outputs = []int{acc3}
	p.ValueBits = 1
	o := Optimize(p)
	fused := 0
	for _, in := range o.Code {
		if in.Op > OpOnes {
			fused++
		}
	}
	if fused == 0 {
		t.Fatalf("no fused instructions emitted; code=%v", o.Code)
	}
	// And the semantics still match the reference.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		in := randInputs(rng, 6)
		want := p.Run(in, nil)
		got := o.Run(in)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("fused circuit diverges: %#x vs %#x", got[j], want[j])
			}
		}
	}
}
