package bitslice

// Transpose64 transposes a 64×64 bit matrix in place: bit c of row r
// swaps with bit r of row c.  It is the recursive block-swap algorithm
// (Hacker's Delight §7-3): six passes, each exchanging the off-diagonal
// half-blocks of every 2j×2j tile with three XORs per row pair — ~400
// word operations total, independent of the data.
//
// This is the batch unpacking primitive of the sampler: the circuit
// leaves magnitude bit ι of all 64 lanes packed in output word ι; one
// transpose turns valueBits such planes into 64 per-lane magnitudes,
// replacing the O(valueBits×64) shift-and-mask loop.
func Transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := ((a[k] >> j) ^ a[k+int(j)]) & m
			a[k] ^= t << j
			a[k+int(j)] ^= t
		}
		m ^= m << (j >> 1)
	}
}

// UnpackAll expands packed output words into 64 per-lane magnitudes via
// one bit-matrix transpose.  len(out) must be ≤ 64 (ValueBits is ≤ 63 for
// any valid Program); len(dst) must be ≥ 64.
func UnpackAll(out []uint64, dst []int) {
	var m [64]uint64
	copy(m[:], out)
	Transpose64(&m)
	for l := 0; l < 64; l++ {
		dst[l] = int(m[l])
	}
}
