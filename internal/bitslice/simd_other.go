//go:build !amd64

package bitslice

// runSIMD has no kernels off amd64; evaluation always takes the
// portable interpreters.  (dispatch never selects a vector backend on
// these platforms, so this stub is unreachable in practice but keeps
// the call site unconditional.)
func (o *Optimized) runSIMD(w int, inputs, slots, out []uint64) bool {
	return false
}
