package ntru

import (
	"math/rand"
	"testing"

	"ctgauss/internal/poly"
)

const q = 12289

func gaussianish(rng *rand.Rand, n int, spread int) poly.P {
	p := poly.New(n)
	for i := 0; i < n; i++ {
		// crude centered small distribution is enough for solver tests
		v := int64(0)
		for k := 0; k < 4; k++ {
			v += int64(rng.Intn(2*spread+1) - spread)
		}
		p.Coeffs[i].SetInt64(v / 2)
	}
	return p
}

func solveOnce(t *testing.T, rng *rand.Rand, n, spread int) (f, g, F, G poly.P) {
	t.Helper()
	for attempt := 0; attempt < 50; attempt++ {
		f = gaussianish(rng, n, spread)
		g = gaussianish(rng, n, spread)
		var err error
		F, G, err = Solve(f, g, q)
		if err == nil {
			return f, g, F, G
		}
	}
	t.Fatal("could not solve NTRU equation in 50 attempts")
	return
}

func TestSolveDegree1(t *testing.T) {
	f := poly.FromInt64([]int64{3})
	g := poly.FromInt64([]int64{5})
	F, G, err := Solve(f, g, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f, g, F, G, q); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNotCoprime(t *testing.T) {
	f := poly.FromInt64([]int64{4})
	g := poly.FromInt64([]int64{6})
	if _, _, err := Solve(f, g, q); err == nil {
		t.Fatal("expected ErrNotCoprime for gcd 2")
	}
}

func TestSolveSmallDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		f, g, F, G := solveOnce(t, rng, n, 3)
		if err := Verify(f, g, F, G, q); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSolveReducesCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	_, _, F, G := solveOnce(t, rng, 64, 3)
	// Babai reduction must keep F, G polynomially small: comfortably below
	// 64 bits for n=64 with tiny f,g (unreduced growth would be hundreds).
	if F.MaxBitLen() > 64 || G.MaxBitLen() > 64 {
		t.Fatalf("F/G too large: %d/%d bits", F.MaxBitLen(), G.MaxBitLen())
	}
}

func TestSolveDegree256(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rng := rand.New(rand.NewSource(13))
	f, g, F, G := solveOnce(t, rng, 256, 4)
	if err := Verify(f, g, F, G, q); err != nil {
		t.Fatal(err)
	}
	if F.MaxBitLen() > 96 {
		t.Fatalf("F too large: %d bits", F.MaxBitLen())
	}
}

func TestVerifyDetectsWrongSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f, g, F, G := solveOnce(t, rng, 8, 3)
	F.Coeffs[0].Add(F.Coeffs[0], F.Coeffs[0].SetInt64(1).Add(F.Coeffs[0], F.Coeffs[0])) // corrupt
	F.Coeffs[0].SetInt64(12345678)
	if err := Verify(f, g, F, G, q); err == nil {
		t.Fatal("corrupted solution passed verification")
	}
}
