// Package ntru solves the NTRU equation fG − gF = q over Z[x]/(x^N+1) —
// the heart of Falcon key generation — using the field-norm tower: descend
// to degree 1 by repeated field norms, solve with the extended Euclidean
// algorithm, lift back up, and Babai-reduce (F, G) against (f, g) at every
// level to keep coefficients polynomial-size.
package ntru

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"ctgauss/internal/fft"
	"ctgauss/internal/poly"
)

// ErrNotCoprime is returned when the resultant gcd at the bottom of the
// tower is not 1; the caller should resample f and g.
var ErrNotCoprime = errors.New("ntru: Res(f,x^N+1) and Res(g,x^N+1) are not coprime")

// Solve returns F, G with fG − gF = q in Z[x]/(x^N+1).
func Solve(f, g poly.P, q int64) (F, G poly.P, err error) {
	F, G, err = solveRec(f, g, q)
	if err != nil {
		return poly.P{}, poly.P{}, err
	}
	// Final safety reduction at the top level.
	reduce(&F, &G, f, g)
	return F, G, nil
}

func solveRec(f, g poly.P, q int64) (F, G poly.P, err error) {
	n := f.N()
	if n == 1 {
		return solveBase(f, g, q)
	}
	fp := poly.FieldNorm(f)
	gp := poly.FieldNorm(g)
	Fp, Gp, err := solveRec(fp, gp, q)
	if err != nil {
		return poly.P{}, poly.P{}, err
	}
	// Lift: F = F'(x²)·g(−x), G = G'(x²)·f(−x).
	F = poly.Mul(poly.LiftSub(Fp), poly.Conj(g))
	G = poly.Mul(poly.LiftSub(Gp), poly.Conj(f))
	reduce(&F, &G, f, g)
	return F, G, nil
}

func solveBase(f, g poly.P, q int64) (F, G poly.P, err error) {
	u := new(big.Int)
	v := new(big.Int)
	d := new(big.Int).GCD(u, v, f.Coeffs[0], g.Coeffs[0])
	if d.CmpAbs(big.NewInt(1)) != 0 {
		return poly.P{}, poly.P{}, ErrNotCoprime
	}
	// u·f0 + v·g0 = ±1; normalise to +1.
	if d.Sign() < 0 {
		u.Neg(u)
		v.Neg(v)
	}
	// f·G − g·F = q with G = u·q, F = −v·q.
	bq := big.NewInt(q)
	F = poly.New(1)
	G = poly.New(1)
	G.Coeffs[0].Mul(u, bq)
	F.Coeffs[0].Mul(v, bq)
	F.Coeffs[0].Neg(F.Coeffs[0])
	return F, G, nil
}

// reduce performs the scaled Babai round-off of Pornin's reference keygen:
// repeatedly compute k ≈ (F·adj f + G·adj g)/(f·adj f + g·adj g) from the
// top ~47 bits of the operands in the complex Fourier domain, and subtract
// k·f, k·g shifted back up.  Each pass removes ~tens of bits from F, G.
func reduce(F, G *poly.P, f, g poly.P) {
	const fracBits = 47 // top bits carried into float64
	sizeFG0 := -1
	for iter := 0; iter < 4096; iter++ {
		sizefg := maxInt(f.MaxBitLen(), g.MaxBitLen())
		sizeFG := maxInt(F.MaxBitLen(), G.MaxBitLen())
		if sizeFG < sizefg+10 {
			return
		}
		if sizeFG == sizeFG0 {
			return // no progress
		}
		sizeFG0 = sizeFG

		scaleFG := uint(maxInt(0, sizeFG-fracBits))
		scalefg := uint(maxInt(0, sizefg-fracBits))

		Ff := fft.FFT(F.ShiftRight(scaleFG).Float64s())
		Gf := fft.FFT(G.ShiftRight(scaleFG).Float64s())
		ff := fft.FFT(f.ShiftRight(scalefg).Float64s())
		gf := fft.FFT(g.ShiftRight(scalefg).Float64s())

		den := fft.Add(fft.Mul(ff, fft.Adj(ff)), fft.Mul(gf, fft.Adj(gf)))
		num := fft.Add(fft.Mul(Ff, fft.Adj(ff)), fft.Mul(Gf, fft.Adj(gf)))
		bad := false
		for _, d := range den {
			if math.Abs(real(d)) < 1e-9 {
				bad = true
				break
			}
		}
		if bad {
			return
		}
		kf := fft.InvFFT(fft.Div(num, den))

		k := poly.New(f.N())
		allZero := true
		for i, c := range kf {
			r := math.Round(c)
			if r != 0 {
				allZero = false
			}
			if math.Abs(r) > 1e18 {
				// Beyond exact float64 integer range: truncate this pass.
				r = math.Trunc(c/1e6) * 1e6
			}
			k.Coeffs[i].SetInt64(int64(r))
		}
		if allZero {
			return
		}
		// F -= (k·f) << (scaleFG − scalefg)
		shift := scaleFG - scalefg
		kf2 := poly.Mul(k, f)
		kg2 := poly.Mul(k, g)
		for i := range kf2.Coeffs {
			kf2.Coeffs[i].Lsh(kf2.Coeffs[i], shift)
			kg2.Coeffs[i].Lsh(kg2.Coeffs[i], shift)
		}
		*F = poly.Sub(*F, kf2)
		*G = poly.Sub(*G, kg2)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Verify checks fG − gF == q exactly.
func Verify(f, g, F, G poly.P, q int64) error {
	lhs := poly.Sub(poly.Mul(f, G), poly.Mul(g, F))
	want := big.NewInt(q)
	if lhs.Coeffs[0].Cmp(want) != 0 {
		return fmt.Errorf("ntru: constant term %v, want %d", lhs.Coeffs[0], q)
	}
	for i := 1; i < lhs.N(); i++ {
		if lhs.Coeffs[i].Sign() != 0 {
			return fmt.Errorf("ntru: coefficient %d nonzero: %v", i, lhs.Coeffs[i])
		}
	}
	return nil
}
