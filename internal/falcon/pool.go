package falcon

import (
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
)

// SignerPool is the concurrent serving form of Signer: a fixed set of
// shards over one private key, each an independent Signer with its own
// domain-separated PRNG streams (base sampler and salt).  Sign is safe
// for any number of concurrent callers; requests round-robin across
// shards, so with at least as many shards as active goroutines they
// rarely contend.  Verify needs no signer state and never blocks on one.
//
// The construction mirrors ctgauss.Pool: shard i's seed is derived from
// the pool seed by hashing with a fixed domain-separation label and the
// shard index, so one master seed yields independent signing streams —
// in particular, independent salts, which keeps concurrent signatures
// over one key distinct.
type SignerPool struct {
	pk     *PublicKey
	shards []*signerShard
	ctr    atomic.Uint64
}

// signerShard serializes access to one underlying signer.
type signerShard struct {
	mu sync.Mutex
	s  *Signer
}

// NewSignerPool builds a serving pool over sk using the chosen Table-1
// base sampler.  parallelism is the shard count: 0 means
// runtime.NumCPU().  seed is the master seed; as with single signers,
// production deployments must derive it from fresh randomness.
func NewSignerPool(sk *PrivateKey, kind BaseSamplerKind, seed []byte, parallelism int) (*SignerPool, error) {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	p := &SignerPool{pk: sk.Public(), shards: make([]*signerShard, parallelism)}
	for i := range p.shards {
		s, err := NewSignerWithKind(sk, kind, signerShardSeed(seed, i))
		if err != nil {
			return nil, err
		}
		p.shards[i] = &signerShard{s: s}
	}
	return p, nil
}

// signerShardSeed derives shard i's seed from the pool seed with domain
// separation (the signing analogue of ctgauss's pool shard derivation).
func signerShardSeed(seed []byte, shard int) []byte {
	h := sha256.New()
	h.Write([]byte("ctgauss/falcon/signer-shard"))
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(shard))
	h.Write(idx[:])
	h.Write(seed)
	return h.Sum(nil)
}

// pick selects the next shard round-robin.
func (p *SignerPool) pick() *signerShard {
	return p.shards[p.ctr.Add(1)%uint64(len(p.shards))]
}

// Sign produces a signature for msg on one shard.  Safe for concurrent
// use.
func (p *SignerPool) Sign(msg []byte) (*Signature, error) {
	sh := p.pick()
	sh.mu.Lock()
	sig, err := sh.s.Sign(msg)
	sh.mu.Unlock()
	return sig, err
}

// Verify checks sig over msg against the pool's public key.  It touches
// no signer state, so it runs fully in parallel with Sign calls.
func (p *SignerPool) Verify(msg []byte, sig *Signature) error {
	return p.pk.Verify(msg, sig)
}

// Public returns the pool's public key.
func (p *SignerPool) Public() *PublicKey { return p.pk }

// Size returns the shard count.
func (p *SignerPool) Size() int { return len(p.shards) }

// Attempts reports norm-rejection restarts summed across shards
// (diagnostics, mirroring Signer.Attempts).
func (p *SignerPool) Attempts() uint64 {
	var total uint64
	for _, sh := range p.shards {
		sh.mu.Lock()
		total += sh.s.Attempts
		sh.mu.Unlock()
	}
	return total
}
