package falcon

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"runtime"

	"ctgauss/internal/engine"
)

// SignerPool is the concurrent serving form of Signer: a fixed set of
// shards over one private key, each an independent Signer with its own
// domain-separated PRNG streams (base sampler and salt).  Sign is safe
// for any number of concurrent callers; requests spread across shards
// through the engine runtime's striped round-robin pick, so with at
// least as many shards as active goroutines they rarely contend.
// Verify needs no signer state and never blocks on one.
//
// The shard machinery is engine.ShardSet — the same runtime that backs
// ctgauss.Pool's refill rings — rather than a hand-rolled mutex/counter
// copy.  Shard i's seed is derived from the pool seed by hashing with a
// fixed domain-separation label and the shard index, so one master seed
// yields independent signing streams — in particular, independent
// salts, which keeps concurrent signatures over one key distinct.
//
// Close gates the pool: Sign calls that start afterwards fail with
// ErrPoolClosed.  Signers own no background goroutines, so Close frees
// nothing else; it exists so serving layers can fence signing at drain
// time with the same lifecycle call the sampling pools use.
type SignerPool struct {
	pk     *PublicKey
	shards *engine.ShardSet[*Signer]
}

// ErrPoolClosed is returned by Sign after Close.
var ErrPoolClosed = engine.ErrClosed

// NewSignerPool builds a serving pool over sk using the chosen Table-1
// base sampler.  parallelism is the shard count: 0 means
// runtime.NumCPU().  seed is the master seed; as with single signers,
// production deployments must derive it from fresh randomness.
func NewSignerPool(sk *PrivateKey, kind BaseSamplerKind, seed []byte, parallelism int) (*SignerPool, error) {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	signers := make([]*Signer, parallelism)
	for i := range signers {
		s, err := NewSignerWithKind(sk, kind, signerShardSeed(seed, i))
		if err != nil {
			return nil, err
		}
		signers[i] = s
	}
	return &SignerPool{pk: sk.Public(), shards: engine.NewShardSet(signers)}, nil
}

// signerShardSeed derives shard i's seed from the pool seed with domain
// separation (the signing analogue of ctgauss's pool shard derivation).
func signerShardSeed(seed []byte, shard int) []byte {
	h := sha256.New()
	h.Write([]byte("ctgauss/falcon/signer-shard"))
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(shard))
	h.Write(idx[:])
	h.Write(seed)
	return h.Sum(nil)
}

// Sign produces a signature for msg on one shard.  Safe for concurrent
// use.  After Close it fails with ErrPoolClosed.
func (p *SignerPool) Sign(msg []byte) (*Signature, error) {
	return p.SignContext(nil, msg)
}

// SignContext is Sign with cancellation: a caller whose context cancels
// while queued behind a busy signer shard unblocks with ctx.Err()
// instead of holding its place in line.  A nil ctx never cancels.
func (p *SignerPool) SignContext(ctx context.Context, msg []byte) (*Signature, error) {
	var sig *Signature
	err := p.shards.DoContext(ctx, func(s *Signer) error {
		var e error
		sig, e = s.Sign(msg)
		return e
	})
	if err != nil {
		return nil, err
	}
	return sig, nil
}

// Verify checks sig over msg against the pool's public key.  It touches
// no signer state, so it runs fully in parallel with Sign calls.
func (p *SignerPool) Verify(msg []byte, sig *Signature) error {
	return p.pk.Verify(msg, sig)
}

// Public returns the pool's public key.
func (p *SignerPool) Public() *PublicKey { return p.pk }

// Size returns the shard count.
func (p *SignerPool) Size() int { return p.shards.Size() }

// Close gates the pool: new Sign calls fail with ErrPoolClosed while
// in-flight ones finish.  Verify, Public, Size and Attempts keep
// working.  Closing twice is harmless.
func (p *SignerPool) Close() { p.shards.Close() }

// Attempts reports norm-rejection restarts summed across shards
// (diagnostics, mirroring Signer.Attempts).
func (p *SignerPool) Attempts() uint64 {
	var total uint64
	p.shards.Each(func(s *Signer) { total += s.Attempts })
	return total
}
