package falcon

import (
	"errors"
	"fmt"
	"math"

	"ctgauss/internal/fft"
	"ctgauss/internal/ntru"
	"ctgauss/internal/ntt"
	"ctgauss/internal/poly"
	"ctgauss/internal/sampler"
)

// PrivateKey is the NTRU trapdoor basis plus the precomputed Falcon tree.
type PrivateKey struct {
	Params Params
	F      []int16 // f
	G      []int16 // g
	BigF   []int16 // F
	BigG   []int16 // G
	H      []uint16

	tree  *treeNode
	bFFT  [2][2][]complex128 // B = [[g, −f], [G, −F]] in FFT domain
	hNTT  []uint32
	ready bool
}

// PublicKey is h = g·f⁻¹ mod q.
type PublicKey struct {
	Params Params
	H      []uint16
}

// Public returns the public key.
func (sk *PrivateKey) Public() *PublicKey {
	return &PublicKey{Params: sk.Params, H: append([]uint16(nil), sk.H...)}
}

// ErrKeygenFailed is returned when no valid key was found within the
// attempt budget (astronomically unlikely with a healthy sampler).
var ErrKeygenFailed = errors.New("falcon: key generation failed after too many attempts")

// GenerateKey samples an NTRU trapdoor using gauss as the source of the
// discrete Gaussian coefficients of f and g (σ must be ≈ params.SigmaFG;
// Keygen in this repo always builds it with the bitsliced pipeline).
func GenerateKey(params Params, gauss sampler.Sampler) (*PrivateKey, error) {
	n := params.N
	for attempt := 0; attempt < 256; attempt++ {
		f := make([]int16, n)
		g := make([]int16, n)
		for i := 0; i < n; i++ {
			f[i] = int16(gauss.Next())
			g[i] = int16(gauss.Next())
		}
		if !keyNormsOK(params, f, g) {
			continue
		}
		fq := make([]uint32, n)
		for i, v := range f {
			fq[i] = ntt.FromSigned(int64(v))
		}
		if !ntt.Invertible(fq) {
			continue
		}
		fP := polyFromInt16(f)
		gP := polyFromInt16(g)
		FP, GP, err := ntru.Solve(fP, gP, Q)
		if err != nil {
			continue
		}
		bigF, ok1 := polyToInt16(FP)
		bigG, ok2 := polyToInt16(GP)
		if !ok1 || !ok2 {
			continue // coefficients out of int16 range: resample
		}
		finv, err := ntt.Inv(fq)
		if err != nil {
			continue
		}
		gq := make([]uint32, n)
		for i, v := range g {
			gq[i] = ntt.FromSigned(int64(v))
		}
		hq := ntt.MulPoly(gq, finv)
		h := make([]uint16, n)
		for i, v := range hq {
			h[i] = uint16(v)
		}
		sk := &PrivateKey{Params: params, F: f, G: g, BigF: bigF, BigG: bigG, H: h}
		if err := sk.precompute(); err != nil {
			continue
		}
		return sk, nil
	}
	return nil, ErrKeygenFailed
}

// keyNormsOK enforces the spec's γ ≤ 1.17√q quality condition on (f, g):
// both the basis vector (g, −f) and its dual-direction image must be short
// enough that every ffSampling leaf σ' lies in [σmin, σmax].
func keyNormsOK(params Params, f, g []int16) bool {
	n := params.N
	limit := 1.17 * 1.17 * Q
	var norm1 float64
	for i := 0; i < n; i++ {
		norm1 += float64(f[i])*float64(f[i]) + float64(g[i])*float64(g[i])
	}
	if norm1 > limit {
		return false
	}
	ff := fft.FFT(int16ToFloat(f))
	gf := fft.FFT(int16ToFloat(g))
	var norm2 float64
	for j := 0; j < n; j++ {
		d := real(ff[j])*real(ff[j]) + imag(ff[j])*imag(ff[j]) +
			real(gf[j])*real(gf[j]) + imag(gf[j])*imag(gf[j])
		if d < 1e-9 {
			return false
		}
		norm2 += Q * Q / d
	}
	norm2 /= float64(n)
	return norm2 <= limit
}

// precompute builds the FFT basis and the LDL* (Falcon) tree.
func (sk *PrivateKey) precompute() error {
	n := sk.Params.N
	fF := fft.FFT(int16ToFloat(sk.F))
	gF := fft.FFT(int16ToFloat(sk.G))
	FF := fft.FFT(int16ToFloat(sk.BigF))
	GF := fft.FFT(int16ToFloat(sk.BigG))

	negF := fft.Scale(fF, -1)
	negBF := fft.Scale(FF, -1)
	sk.bFFT = [2][2][]complex128{{gF, negF}, {GF, negBF}}

	// Gram of B.
	g00 := fft.Add(fft.Mul(gF, fft.Adj(gF)), fft.Mul(fF, fft.Adj(fF)))
	g01 := fft.Add(fft.Mul(gF, fft.Adj(GF)), fft.Mul(fF, fft.Adj(FF)))
	g11 := fft.Add(fft.Mul(GF, fft.Adj(GF)), fft.Mul(FF, fft.Adj(FF)))

	tree, err := ffLDL(g00, g01, g11, sk.Params.Sigma)
	if err != nil {
		return err
	}
	sk.tree = tree

	sk.hNTT = make([]uint32, n)
	for i, v := range sk.H {
		sk.hNTT[i] = uint32(v)
	}
	ntt.Forward(sk.hNTT)
	sk.ready = true
	return nil
}

func polyFromInt16(v []int16) poly.P {
	cs := make([]int64, len(v))
	for i, x := range v {
		cs[i] = int64(x)
	}
	return poly.FromInt64(cs)
}

func polyToInt16(p poly.P) ([]int16, bool) {
	out := make([]int16, p.N())
	for i, c := range p.Coeffs {
		if !c.IsInt64() {
			return nil, false
		}
		v := c.Int64()
		if v < math.MinInt16 || v > math.MaxInt16 {
			return nil, false
		}
		out[i] = int16(v)
	}
	return out, true
}

func int16ToFloat(v []int16) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// CheckKey validates the NTRU relation fG − gF = q and h·f = g mod q —
// used by tests and key import.
func (sk *PrivateKey) CheckKey() error {
	if err := ntru.Verify(polyFromInt16(sk.F), polyFromInt16(sk.G),
		polyFromInt16(sk.BigF), polyFromInt16(sk.BigG), Q); err != nil {
		return err
	}
	n := sk.Params.N
	fq := make([]uint32, n)
	gq := make([]uint32, n)
	hq := make([]uint32, n)
	for i := 0; i < n; i++ {
		fq[i] = ntt.FromSigned(int64(sk.F[i]))
		gq[i] = ntt.FromSigned(int64(sk.G[i]))
		hq[i] = uint32(sk.H[i])
	}
	hf := ntt.MulPoly(hq, fq)
	for i := 0; i < n; i++ {
		if hf[i] != gq[i] {
			return fmt.Errorf("falcon: h·f != g at coefficient %d", i)
		}
	}
	return nil
}
