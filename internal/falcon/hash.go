package falcon

import "ctgauss/internal/prng"

// hashToPoint maps salt‖message to a uniform c ∈ Z_q^N with SHAKE256,
// taking 16-bit big-endian chunks and rejecting values ≥ 5·q to avoid
// modulo bias (the spec's HashToPoint).
func hashToPoint(salt, msg []byte, n int) []uint32 {
	sh := prng.NewSHAKE256()
	sh.Absorb(salt)
	sh.Absorb(msg)
	out := make([]uint32, n)
	var buf [2]byte
	const limit = 5 * Q // 61445 < 65536
	for i := 0; i < n; {
		sh.Fill(buf[:])
		t := uint32(buf[0])<<8 | uint32(buf[1])
		if t < limit {
			out[i] = t % Q
			i++
		}
	}
	return out
}
