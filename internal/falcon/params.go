// Package falcon is a from-scratch implementation of the Falcon signature
// scheme (Fouque et al., NIST submission) over Z_q[x]/(x^N+1), q = 12289,
// with a pluggable discrete Gaussian base sampler — the experimental knob
// of the paper's Table 1: signing cost is dominated by the ~2N integer
// Gaussian samples that fast Fourier sampling draws per signature, so
// swapping the base sampler (byte-scan CDT, binary CDT, linear-search
// constant-time CDT, or the paper's bitsliced constant-time sampler)
// reproduces the paper's comparison.
package falcon

import (
	"fmt"
	"math"
)

// Q is the Falcon modulus.
const Q = 12289

// SaltLen is the signature salt length in bytes (spec: 320 bits).
const SaltLen = 40

// SigmaBase is the standard deviation of the paper's base sampler (§6:
// "Depending on the number field used this σ can be either 2 or √5"; we
// use the binary field instance, σ = 2).
const SigmaBase = 2.0

// SigmaMax is the largest leaf standard deviation ffSampling requests;
// the base sampler's σ must be at least this (2 > 1.8205 holds).
const SigmaMax = 1.8205

// Params fixes one security level.
type Params struct {
	Name     string
	N        int     // ring degree (power of two)
	Level    int     // the paper's Table-1 "security level" row
	Sigma    float64 // signature standard deviation σ
	SigmaMin float64 // smallest leaf σ' (ccs numerator in SamplerZ)
	SigmaFG  float64 // keygen standard deviation for f, g coefficients
	BoundSq  int64   // β²: max ‖(s0,s1)‖² of a valid signature
}

// ParamsFor returns the parameter set for N ∈ {256, 512, 1024}, matching
// the paper's Level 1/2/3 rows.
func ParamsFor(n int) (Params, error) {
	level := map[int]int{256: 1, 512: 2, 1024: 3}[n]
	if level == 0 {
		return Params{}, fmt.Errorf("falcon: unsupported degree %d (want 256, 512 or 1024)", n)
	}
	sq := math.Sqrt(Q)
	// Smoothing-parameter-driven signature width, calibrated like the
	// spec: σ = (1/π)·sqrt(ln(4N(1+1/ε))/2) · 1.17·√q with 1/ε = 2^35.5
	// (gives 165.7 for N=512, the spec value).
	invEps := math.Pow(2, 35.5)
	eta := math.Sqrt(math.Log(4*float64(n)*(1+invEps))/2) / math.Pi
	sigma := eta * 1.17 * sq
	// β = 1.1·σ·sqrt(2N).
	beta := 1.1 * sigma * math.Sqrt(2*float64(n))
	return Params{
		Name:     fmt.Sprintf("falcon-%d", n),
		N:        n,
		Level:    level,
		Sigma:    sigma,
		SigmaMin: sigma / (1.17 * sq),
		SigmaFG:  1.17 * math.Sqrt(Q/(2*float64(n))),
		BoundSq:  int64(beta * beta),
	}, nil
}
