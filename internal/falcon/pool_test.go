package falcon

import (
	"bytes"
	"sync"
	"testing"
)

func TestSignerPoolConcurrentSignVerify(t *testing.T) {
	sk := testKey(t, 256)
	pool, err := NewSignerPool(sk, BaseBitsliced, []byte("pool-seed"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", pool.Size())
	}
	const goroutines, perG = 8, 3
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := []byte{byte(g), 'm', 's', 'g'}
			for i := 0; i < perG; i++ {
				sig, err := pool.Sign(msg)
				if err != nil {
					errc <- err
					return
				}
				// Interleave verification with other goroutines' signing.
				if err := pool.Verify(msg, sig); err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if pool.Attempts() == 0 {
		t.Fatal("no signing attempts recorded")
	}
}

func TestSignerPoolShardsUseDistinctStreams(t *testing.T) {
	sk := testKey(t, 256)
	// Two shards, round-robin: consecutive signatures of the same message
	// come from different shards and must use different salts.
	pool, err := NewSignerPool(sk, BaseBitsliced, []byte("seed"), 2)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same message")
	a, err := pool.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Salt, b.Salt) {
		t.Fatal("shards produced identical salts: seed domain separation broken")
	}
	// Determinism: a fresh pool with the same master seed reproduces the
	// same first signature.
	pool2, err := NewSignerPool(sk, BaseBitsliced, []byte("seed"), 2)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := pool2.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), a2.Encode()) {
		t.Fatal("same master seed did not reproduce the same signature")
	}
}

func TestSignerPoolVerifyRejectsTampered(t *testing.T) {
	sk := testKey(t, 256)
	pool, err := NewSignerPool(sk, BaseBitsliced, []byte("seed"), 1)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := pool.Sign([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Verify([]byte("other payload"), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
	if err := pool.Verify([]byte("payload"), sig); err != nil {
		t.Fatal(err)
	}
}

// TestSignerPoolClose pins the lifecycle gate: Sign after Close fails
// with ErrPoolClosed, while verification (stateless) keeps working.
func TestSignerPoolClose(t *testing.T) {
	sk := testKey(t, 256)
	pool, err := NewSignerPool(sk, BaseBitsliced, []byte("close-seed"), 2)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("last words")
	sig, err := pool.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Sign(msg); err != ErrPoolClosed {
		t.Fatalf("Sign after Close: %v, want ErrPoolClosed", err)
	}
	if err := pool.Verify(msg, sig); err != nil {
		t.Fatalf("Verify after Close: %v", err)
	}
	if pool.Attempts() == 0 {
		t.Fatal("Attempts ledger unreadable after Close")
	}
}
