package falcon

import (
	"fmt"
	"math"

	"ctgauss/internal/convolve"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

// zSampler abstracts the (μ, σ') integer Gaussian sampler behind
// ffSampling — Falcon's SamplerZ.  Two backends exist: the paper's
// rejection construction over a fixed σ₀ base (samplerZState) and the
// convolution layer (convolveZ), selected by the BaseConvolve flag.
type zSampler interface {
	// sample returns z ~ D_{ℤ, mu, sigmaP}.
	sample(mu, sigmaP float64) float64
	// acceptStats reports (accepted, rejected) proposal counts.
	acceptStats() (accepted, rejected uint64)
}

// samplerZState samples z ~ D_{Z, μ, σ'} for the varying centers and
// standard deviations ffSampling requests, by rejection from the paper's
// fixed base sampler D_{Z, σ0=2}.
//
// The construction mirrors Falcon's SamplerZ: draw a magnitude z0 from the
// base, a bit b, propose z = b + (2b−1)·z0, and accept with probability
//
//	ccs · exp( z0²/(2σ0²) − (z−r)²/(2σ'²) ) · (1/2 if z0 ≥ 1)
//
// where r = μ − ⌊μ⌋ and ccs = σmin/σ'.  The (1/2 if z0 ≥ 1) factor
// corrects for the folded base distribution (our signed sampler gives
// magnitude masses p₀ = ρ(0)/Z and p_v = 2ρ(v)/Z), after which the
// proposal density is exactly proportional to ρ_{σ0} on each branch and
// the accepted z is exactly D_{Z,μ,σ'}-distributed.  x ≥ 0 always holds
// because |z−r| ≥ z0 and σ' ≤ σmax < σ0.
type samplerZState struct {
	base     sampler.Sampler
	bits     *prng.BitReader
	sigmaMin float64
	// Rejections counts rejected proposals (diagnostics).
	Rejections uint64
	// Accepted counts returned samples.
	Accepted uint64
}

func newSamplerZ(base sampler.Sampler, bits *prng.BitReader, sigmaMin float64) *samplerZState {
	return &samplerZState{base: base, bits: bits, sigmaMin: sigmaMin}
}

const invSigmaBaseSq2 = 1 / (2 * SigmaBase * SigmaBase)

// sample returns z ~ D_{Z, mu, sigmaP}.
func (s *samplerZState) sample(mu, sigmaP float64) float64 {
	floorMu := math.Floor(mu)
	r := mu - floorMu
	ccs := s.sigmaMin / sigmaP
	inv2s := 1 / (2 * sigmaP * sigmaP)
	for {
		v := s.base.Next()
		if v < 0 {
			v = -v
		}
		z0 := float64(v)
		b := float64(s.bits.Bit())
		z := b + (2*b-1)*z0
		x := (z-r)*(z-r)*inv2s - z0*z0*invSigmaBaseSq2
		p := ccs * math.Exp(-x)
		if v >= 1 {
			p *= 0.5
		}
		if s.acceptBer(p) {
			s.Accepted++
			return z + floorMu
		}
		s.Rejections++
	}
}

// acceptBer returns true with probability p ∈ [0, 1], consuming 53 random
// bits.
func (s *samplerZState) acceptBer(p float64) bool {
	threshold := uint64(p * (1 << 53))
	draw := s.bits.Uint64() >> 11
	return draw < threshold
}

// acceptStats implements zSampler.
func (s *samplerZState) acceptStats() (uint64, uint64) { return s.Accepted, s.Rejections }

// convolveZ routes SamplerZ through the arbitrary-(σ, μ) convolution
// layer: every ffSampling leaf request (σ', center) is served by the
// compiled base set with constant-time randomized rounding, instead of
// the float-rejection loop above.  Leaf σ' values lie in
// [SigmaMin, SigmaMax] ⊂ the layer's admissible range, so requests
// cannot fail; any error is a programming error and panics.
type convolveZ struct {
	conv *convolve.Sampler
}

// sample implements zSampler.
func (c *convolveZ) sample(mu, sigmaP float64) float64 {
	z, err := c.conv.Next(sigmaP, mu)
	if err != nil {
		panic(fmt.Sprintf("falcon: convolve SamplerZ rejected (σ'=%g, μ=%g): %v", sigmaP, mu, err))
	}
	return float64(z)
}

// acceptStats implements zSampler.
func (c *convolveZ) acceptStats() (uint64, uint64) {
	st := c.conv.Stats()
	return st.Accepted, st.Trials - st.Accepted
}
