package falcon

import (
	"errors"

	"ctgauss/internal/ntt"
)

// Verification errors.
var (
	ErrBadSignature = errors.New("falcon: signature rejected")
	ErrBadLength    = errors.New("falcon: malformed signature")
)

// Verify checks sig over msg: recompute c, s0 = c − s1·h mod q (centered),
// and test ‖(s0, s1)‖² ≤ β².
func (pk *PublicKey) Verify(msg []byte, sig *Signature) error {
	n := pk.Params.N
	if sig == nil || len(sig.S1) != n || len(sig.Salt) != SaltLen {
		return ErrBadLength
	}
	c := hashToPoint(sig.Salt, msg, n)

	s1q := make([]uint32, n)
	for i, v := range sig.S1 {
		s1q[i] = ntt.FromSigned(int64(v))
	}
	hq := make([]uint32, n)
	for i, v := range pk.H {
		hq[i] = uint32(v)
	}
	prod := ntt.MulPoly(s1q, hq)

	var norm int64
	for i := 0; i < n; i++ {
		s0 := int64(ntt.Center(uint32((c[i] + Q - prod[i]) % Q)))
		norm += s0*s0 + int64(sig.S1[i])*int64(sig.S1[i])
	}
	if norm > pk.Params.BoundSq || norm == 0 {
		return ErrBadSignature
	}
	return nil
}
