package falcon

import (
	"fmt"
	"math"

	"ctgauss/internal/fft"
)

// treeNode is one node of the LDL* (Falcon) tree.  Internal nodes hold the
// Fourier-domain L10 vector of their 2×2 LDL decomposition; leaves hold
// the standard deviation σ' = σ/√d for the two scalar Gaussians sampled at
// the recursion floor.
type treeNode struct {
	value       []complex128 // internal: l = G10/G00 (FFT, length n)
	left, right *treeNode
	leafSigma   float64 // valid when left == right == nil
}

func (t *treeNode) isLeaf() bool { return t.left == nil && t.right == nil }

// ffLDL recursively factors the Gram matrix [[g00, g01],[adj(g01), g11]]
// (rings of size len(g00)) into the Falcon tree.
func ffLDL(g00, g01, g11 []complex128, sigma float64) (*treeNode, error) {
	n := len(g00)
	// l = G10/G00 with G10 = adj(g01); d11 = g11 − l·adj(l)·g00.
	l := make([]complex128, n)
	d11 := make([]complex128, n)
	for j := 0; j < n; j++ {
		den := real(g00[j])
		if den <= 0 || math.IsNaN(den) {
			return nil, fmt.Errorf("falcon: non-positive Gram diagonal (%g) in ffLDL", den)
		}
		l[j] = conj(g01[j]) / complex(den, 0)
		d11[j] = g11[j] - l[j]*conj(l[j])*g00[j]
	}
	node := &treeNode{value: l}
	if n == 1 {
		sl, err := leafFrom(real(g00[0]), sigma)
		if err != nil {
			return nil, err
		}
		sr, err := leafFrom(real(d11[0]), sigma)
		if err != nil {
			return nil, err
		}
		node.left, node.right = sl, sr
		return node, nil
	}
	d0, d1 := fft.Split(g00)
	left, err := ffLDL(d0, d1, cloneVec(d0), sigma)
	if err != nil {
		return nil, err
	}
	e0, e1 := fft.Split(d11)
	right, err := ffLDL(e0, e1, cloneVec(e0), sigma)
	if err != nil {
		return nil, err
	}
	node.left, node.right = left, right
	return node, nil
}

func leafFrom(d, sigma float64) (*treeNode, error) {
	if d <= 0 || math.IsNaN(d) {
		return nil, fmt.Errorf("falcon: non-positive leaf diagonal %g", d)
	}
	s := sigma / math.Sqrt(d)
	if s > SigmaBase {
		return nil, fmt.Errorf("falcon: leaf σ' = %.4f exceeds base sampler σ = %g", s, SigmaBase)
	}
	return &treeNode{leafSigma: s}, nil
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func cloneVec(v []complex128) []complex128 {
	return append([]complex128(nil), v...)
}

// leafSigmas collects every leaf σ' (diagnostics and tests).
func (t *treeNode) leafSigmas(out []float64) []float64 {
	if t.isLeaf() {
		return append(out, t.leafSigma)
	}
	out = t.left.leafSigmas(out)
	return t.right.leafSigmas(out)
}

// ffSampling draws (z0, z1) ≈ (t0, t1) jointly Gaussian over the lattice
// described by the tree: Falcon's fast Fourier nearest-plane analogue.
// t0, t1 and the returned vectors are in the Fourier domain.
func ffSampling(t0, t1 []complex128, node *treeNode, zs zSampler) (z0, z1 []complex128) {
	n := len(t0)
	if n == 1 {
		zv1 := zs.sample(real(t1[0]), node.right.leafSigma)
		t0p := t0[0] + (t1[0]-complex(zv1, 0))*node.value[0]
		zv0 := zs.sample(real(t0p), node.left.leafSigma)
		return []complex128{complex(zv0, 0)}, []complex128{complex(zv1, 0)}
	}
	t1e, t1o := fft.Split(t1)
	z1e, z1o := ffSampling(t1e, t1o, node.right, zs)
	z1 = fft.Merge(z1e, z1o)

	t0p := fft.Add(t0, fft.Mul(fft.Sub(t1, z1), node.value))
	t0e, t0o := fft.Split(t0p)
	z0e, z0o := ffSampling(t0e, t0o, node.left, zs)
	z0 = fft.Merge(z0e, z0o)
	return z0, z1
}
