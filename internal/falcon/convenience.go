package falcon

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"ctgauss/internal/convolve"
	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
	"ctgauss/internal/sampler/gen"
)

// builtCache memoises sampler pipelines per σ string (building the σ_fg
// and σ=2 circuits is deterministic and reusable across keys).  The
// mutex makes concurrent Keygen/NewSigner/NewSignerPool construction
// safe; duplicate builds racing past the first lookup are acceptable
// (deterministic result, rare in practice).
var (
	builtMu    sync.Mutex
	builtCache = map[string]*core.Built{}
)

func builtFor(sigma string, n int) (*core.Built, error) {
	key := fmt.Sprintf("%s/%d", sigma, n)
	builtMu.Lock()
	b, ok := builtCache[key]
	builtMu.Unlock()
	if ok {
		return b, nil
	}
	b, err := core.Build(core.Config{Sigma: sigma, N: n, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		return nil, err
	}
	builtMu.Lock()
	builtCache[key] = b
	builtMu.Unlock()
	return b, nil
}

// Keygen generates a key pair for ring degree n, deterministically from
// seed, using the repo's own bitsliced constant-time sampler for the f, g
// coefficients.
func Keygen(n int, seed []byte) (*PrivateKey, error) {
	params, err := ParamsFor(n)
	if err != nil {
		return nil, err
	}
	sigmaFG := fmt.Sprintf("%.5f", params.SigmaFG)
	built, err := builtFor(sigmaFG, 64)
	if err != nil {
		return nil, err
	}
	src, err := prng.NewChaCha20(seed)
	if err != nil {
		return nil, err
	}
	return GenerateKey(params, built.NewSampler(src))
}

// BaseSamplerKind selects the Table-1 base sampler variant, or the
// convolution-layer SamplerZ routing.
type BaseSamplerKind int

// The four base samplers of Table 1, plus the convolution routing.
const (
	BaseBitsliced   BaseSamplerKind = iota // this work (constant-time)
	BaseCDT                                // binary-search CDT [26]
	BaseByteScanCDT                        // byte-scanning CDT [13]
	BaseLinearCDT                          // linear-search constant-time CDT [7]
	// BaseConvolve routes SamplerZ through the arbitrary-(σ, μ)
	// convolution layer (internal/convolve): every ffSampling leaf is
	// served by the compiled base set with constant-time randomized
	// rounding instead of the float-rejection loop — the serve-anything
	// flag of the signing stack.
	BaseConvolve
)

func (k BaseSamplerKind) String() string {
	switch k {
	case BaseBitsliced:
		return "bitsliced (this work)"
	case BaseCDT:
		return "CDT"
	case BaseByteScanCDT:
		return "byte-scanning CDT"
	case BaseLinearCDT:
		return "linear-search CDT"
	case BaseConvolve:
		return "convolution layer"
	}
	return "?"
}

// NewBaseSampler instantiates one of the Table-1 base samplers at the
// paper's configuration (σ=2, n=128, τ=13) over a ChaCha20 stream.
func NewBaseSampler(kind BaseSamplerKind, seed []byte) (sampler.Sampler, error) {
	built, err := builtFor("2", 128)
	if err != nil {
		return nil, err
	}
	src, err := prng.NewChaCha20(seed)
	if err != nil {
		return nil, err
	}
	switch kind {
	case BaseBitsliced:
		// Production form: the generated, compiled circuit (the paper's
		// tool output), not the instruction interpreter.
		return sampler.NewCompiled("bitsliced-compiled(2)",
			gen.Sigma2Batch, gen.Sigma2BatchInputs, gen.Sigma2BatchValueBits, src), nil
	case BaseCDT:
		return sampler.NewCDT(built.Table, src), nil
	case BaseByteScanCDT:
		return sampler.NewByteScanCDT(built.Table, src), nil
	case BaseLinearCDT:
		return sampler.NewLinearCDT(built.Table, src), nil
	default:
		return nil, fmt.Errorf("falcon: unknown base sampler %d", kind)
	}
}

// NewSignerWithKind wires a signer with the chosen Table-1 base sampler,
// or — for BaseConvolve — with SamplerZ routed through the convolution
// layer over the σ=2 base circuit.
func NewSignerWithKind(sk *PrivateKey, kind BaseSamplerKind, seed []byte) (*Signer, error) {
	saltSeed := append([]byte("salt:"), seed...)
	if len(saltSeed) > 32 {
		// ChaCha20 seeds are capped at 32 bytes; longer derived seeds
		// (e.g. SignerPool's 32-byte shard digests) compress through
		// SHA-256, keeping the salt stream domain-separated from the
		// base-sampler stream.
		sum := sha256.Sum256(saltSeed)
		saltSeed = sum[:]
	}
	src, err := prng.NewChaCha20(saltSeed)
	if err != nil {
		return nil, err
	}
	if kind == BaseConvolve {
		// ffSampling leaf σ' never exceeds SigmaMax < 2, so the σ=2
		// circuit alone is the whole base set (every plan is the
		// single-draw leaf); one shard, because a Signer is
		// single-threaded and SignerPool builds one sampler per shard.
		conv, err := convolve.New(convolve.Config{
			Bases:  []string{"2"},
			Shards: 1,
			Seed:   seed,
		})
		if err != nil {
			return nil, err
		}
		return newSignerWithZ(sk, &convolveZ{conv: conv}, prng.NewBitReader(src))
	}
	base, err := NewBaseSampler(kind, seed)
	if err != nil {
		return nil, err
	}
	return NewSigner(sk, base, src)
}
