package falcon

import (
	"bytes"
	"math"
	"testing"

	"ctgauss/internal/prng"
)

var keyCache = map[int]*PrivateKey{}

func testKey(t *testing.T, n int) *PrivateKey {
	t.Helper()
	if sk, ok := keyCache[n]; ok {
		return sk
	}
	sk, err := Keygen(n, []byte("falcon-test-seed"))
	if err != nil {
		t.Fatal(err)
	}
	keyCache[n] = sk
	return sk
}

func TestParams(t *testing.T) {
	p512, err := ParamsFor(512)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p512.Sigma-165.7) > 1.5 {
		t.Fatalf("σ(512) = %.2f, want ≈ 165.7 (spec)", p512.Sigma)
	}
	if p512.BoundSq < 30e6 || p512.BoundSq > 40e6 {
		t.Fatalf("β²(512) = %d, want ≈ 34M (spec)", p512.BoundSq)
	}
	if p512.SigmaMin < 1.2 || p512.SigmaMin > 1.4 {
		t.Fatalf("σmin = %.4f", p512.SigmaMin)
	}
	if _, err := ParamsFor(100); err == nil {
		t.Fatal("expected error for bad degree")
	}
	for _, n := range []int{256, 512, 1024} {
		p, err := ParamsFor(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.SigmaFG <= 0 || p.Level == 0 {
			t.Fatalf("bad params for %d: %+v", n, p)
		}
	}
}

func TestKeygenAndCheckKey(t *testing.T) {
	sk := testKey(t, 256)
	if err := sk.CheckKey(); err != nil {
		t.Fatal(err)
	}
	if len(sk.H) != 256 {
		t.Fatalf("h has %d coefficients", len(sk.H))
	}
}

func TestTreeLeafSigmasWithinBaseRange(t *testing.T) {
	sk := testKey(t, 256)
	sigmas := sk.tree.leafSigmas(nil)
	if len(sigmas) != 2*256 {
		t.Fatalf("got %d leaves, want %d", len(sigmas), 2*256)
	}
	for _, s := range sigmas {
		if s <= 0 || s > SigmaBase {
			t.Fatalf("leaf σ' = %f outside (0, %g]", s, SigmaBase)
		}
		if s < sk.Params.SigmaMin*0.9 {
			t.Fatalf("leaf σ' = %f below σmin %f", s, sk.Params.SigmaMin)
		}
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	sk := testKey(t, 256)
	signer, err := NewSignerWithKind(sk, BaseBitsliced, []byte("sign-seed"))
	if err != nil {
		t.Fatal(err)
	}
	pk := sk.Public()
	msg := []byte("the quick brown fox")
	for i := 0; i < 8; i++ {
		sig, err := signer.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := pk.Verify(msg, sig); err != nil {
			t.Fatalf("valid signature rejected: %v", err)
		}
	}
}

func TestSignVerifyAllBaseSamplers(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	msg := []byte("table-1 parity")
	for _, kind := range []BaseSamplerKind{BaseBitsliced, BaseCDT, BaseByteScanCDT, BaseLinearCDT} {
		signer, err := NewSignerWithKind(sk, kind, []byte("k"))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		sig, err := signer.Sign(msg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := pk.Verify(msg, sig); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if kind.String() == "?" {
			t.Fatal("unnamed kind")
		}
	}
}

// TestSignVerifyConvolveKind routes SamplerZ through the convolution
// layer: signatures must verify, the acceptance ledger must live on the
// layer (no rejection-base sampler exists), and the leaf requests must
// all have been served by single-draw plans of the σ=2 base.
func TestSignVerifyConvolveKind(t *testing.T) {
	sk := testKey(t, 256)
	pk := sk.Public()
	signer, err := NewSignerWithKind(sk, BaseConvolve, []byte("convolve-signer"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("serve-anything signing")
	for i := 0; i < 4; i++ {
		sig, err := signer.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := pk.Verify(msg, sig); err != nil {
			t.Fatalf("convolve-backed signature rejected: %v", err)
		}
	}
	if signer.BaseSampler() != nil {
		t.Fatal("convolve-backed signer should not expose a rejection base sampler")
	}
	if signer.SampleStats() == "no samples" {
		t.Fatal("acceptance ledger did not accumulate")
	}
	zs := signer.zs.(*convolveZ)
	st := zs.conv.Stats()
	if st.Trials == 0 || st.Accepted == 0 {
		t.Fatalf("convolution layer saw no trials: %+v", st)
	}
	for _, sigma := range []float64{sk.Params.SigmaMin, SigmaMax} {
		plan, err := zs.conv.Plan(sigma)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Draws() != 1 || plan.SigmaP != 2 {
			t.Fatalf("leaf σ'=%g should be served by the σ=2 base alone, got %+v", sigma, plan)
		}
	}
}

// TestSignerPoolConvolveKind: the sharded signing pool must accept the
// convolution routing too (ctgaussd -falcon-kind convolve).
func TestSignerPoolConvolveKind(t *testing.T) {
	sk := testKey(t, 256)
	pool, err := NewSignerPool(sk, BaseConvolve, []byte("convolve-pool"), 2)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("pooled convolve signing")
	sig, err := pool.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	sk := testKey(t, 256)
	signer, _ := NewSignerWithKind(sk, BaseBitsliced, []byte("t"))
	pk := sk.Public()
	sig, err := signer.Sign([]byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pk.Verify([]byte("tampered"), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	sk := testKey(t, 256)
	signer, _ := NewSignerWithKind(sk, BaseBitsliced, []byte("t2"))
	pk := sk.Public()
	msg := []byte("msg")
	sig, err := signer.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	sig.S1[0] += 3000
	if err := pk.Verify(msg, sig); err == nil {
		t.Fatal("tampered signature accepted")
	}
	sig.S1[0] -= 3000
	sig.Salt[0] ^= 1
	if err := pk.Verify(msg, sig); err == nil {
		t.Fatal("tampered salt accepted")
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	pk := testKey(t, 256).Public()
	if err := pk.Verify([]byte("m"), nil); err == nil {
		t.Fatal("nil signature accepted")
	}
	if err := pk.Verify([]byte("m"), &Signature{Salt: make([]byte, SaltLen), S1: make([]int16, 8)}); err == nil {
		t.Fatal("short signature accepted")
	}
	if err := pk.Verify([]byte("m"), &Signature{Salt: make([]byte, SaltLen), S1: make([]int16, 256)}); err == nil {
		t.Fatal("zero signature accepted")
	}
}

func TestSignatureCodecRoundTrip(t *testing.T) {
	sk := testKey(t, 256)
	signer, _ := NewSignerWithKind(sk, BaseBitsliced, []byte("codec"))
	sig, err := signer.Sign([]byte("encode me"))
	if err != nil {
		t.Fatal(err)
	}
	enc := sig.Encode()
	dec, err := DecodeSignature(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Salt, sig.Salt) {
		t.Fatal("salt mismatch")
	}
	for i := range sig.S1 {
		if dec.S1[i] != sig.S1[i] {
			t.Fatalf("coefficient %d mismatch", i)
		}
	}
	if err := sk.Public().Verify([]byte("encode me"), dec); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSignature(enc[:10]); err == nil {
		t.Fatal("truncated signature decoded")
	}
}

func TestPublicKeyCodecRoundTrip(t *testing.T) {
	pk := testKey(t, 256).Public()
	enc := pk.EncodePublic()
	dec, err := DecodePublic(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pk.H {
		if dec.H[i] != pk.H[i] {
			t.Fatalf("coefficient %d mismatch", i)
		}
	}
	if _, err := DecodePublic(enc[:5]); err == nil {
		t.Fatal("truncated key decoded")
	}
	if _, err := DecodePublic(nil); err == nil {
		t.Fatal("empty key decoded")
	}
}

func TestCompressCoeffsRoundTripEdgeValues(t *testing.T) {
	cs := []int16{0, 1, -1, 127, -127, 128, -128, 2047, -2047, 300, -300}
	dec, err := decompressCoeffs(compressCoeffs(cs), len(cs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cs {
		if dec[i] != cs[i] {
			t.Fatalf("coeff %d: %d != %d", i, dec[i], cs[i])
		}
	}
}

func TestHashToPointRangeAndDeterminism(t *testing.T) {
	c1 := hashToPoint([]byte("salt"), []byte("msg"), 512)
	c2 := hashToPoint([]byte("salt"), []byte("msg"), 512)
	for i := range c1 {
		if c1[i] >= Q {
			t.Fatalf("coefficient %d out of range", i)
		}
		if c1[i] != c2[i] {
			t.Fatal("hashToPoint not deterministic")
		}
	}
	c3 := hashToPoint([]byte("salt2"), []byte("msg"), 512)
	same := 0
	for i := range c1 {
		if c1[i] == c3[i] {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("different salts agree on %d of 512 coefficients", same)
	}
}

func TestSamplerZStatistics(t *testing.T) {
	base, err := NewBaseSampler(BaseBitsliced, []byte("zstat"))
	if err != nil {
		t.Fatal(err)
	}
	bits := prng.NewBitReader(prng.MustChaCha20([]byte("zbits")))
	p512, err := ParamsFor(512)
	if err != nil {
		t.Fatal(err)
	}
	zs := newSamplerZ(base, bits, p512.SigmaMin)
	for _, cfg := range []struct{ mu, sigma float64 }{
		{0, 1.5}, {0.5, 1.3}, {-3.7, 1.8}, {100.25, 1.7},
	} {
		var sum, sq float64
		const nSamples = 20000
		for i := 0; i < nSamples; i++ {
			z := zs.sample(cfg.mu, cfg.sigma)
			sum += z
			sq += z * z
		}
		mean := sum / nSamples
		variance := sq/nSamples - mean*mean
		if math.Abs(mean-cfg.mu) > 0.08 {
			t.Errorf("μ=%v σ=%v: mean %.4f", cfg.mu, cfg.sigma, mean)
		}
		if math.Abs(variance-cfg.sigma*cfg.sigma) > 0.25*cfg.sigma*cfg.sigma {
			t.Errorf("μ=%v σ=%v: variance %.4f, want ≈ %.4f",
				cfg.mu, cfg.sigma, variance, cfg.sigma*cfg.sigma)
		}
	}
}

func TestSignatureNormWellBelowBound(t *testing.T) {
	// Statistically the squared norm concentrates near 2N·σ²; the bound is
	// (1.1)² higher. Both signs of margin indicate a healthy sampler.
	sk := testKey(t, 256)
	signer, _ := NewSignerWithKind(sk, BaseBitsliced, []byte("norm"))
	sig, err := signer.Sign([]byte("norm-test"))
	if err != nil {
		t.Fatal(err)
	}
	var n1 int64
	for _, v := range sig.S1 {
		n1 += int64(v) * int64(v)
	}
	expected := float64(256) * sk.Params.Sigma * sk.Params.Sigma // N·σ² for one half
	if float64(n1) > 3*expected || float64(n1) < expected/3 {
		t.Fatalf("‖s1‖² = %d, expected around %.0f", n1, expected)
	}
}

func TestKeygen512(t *testing.T) {
	if testing.Short() {
		t.Skip("slower keygen")
	}
	sk := testKey(t, 512)
	if err := sk.CheckKey(); err != nil {
		t.Fatal(err)
	}
	signer, _ := NewSignerWithKind(sk, BaseBitsliced, []byte("s512"))
	sig, err := signer.Sign([]byte("m512"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Public().Verify([]byte("m512"), sig); err != nil {
		t.Fatal(err)
	}
}

func TestKeygen1024(t *testing.T) {
	if testing.Short() {
		t.Skip("slower keygen")
	}
	sk := testKey(t, 1024)
	if err := sk.CheckKey(); err != nil {
		t.Fatal(err)
	}
	signer, _ := NewSignerWithKind(sk, BaseBitsliced, []byte("s1024"))
	sig, err := signer.Sign([]byte("m1024"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Public().Verify([]byte("m1024"), sig); err != nil {
		t.Fatal(err)
	}
}
