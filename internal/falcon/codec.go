package falcon

import (
	"encoding/binary"
	"fmt"
)

// Signature and key serialisation.  The signature payload uses the spec's
// Golomb-Rice style compression: per coefficient a sign bit, the 7 low
// magnitude bits, then the high bits in unary (k zeros and a terminating
// one).

// bitWriter packs bits MSB-first.
type bitWriter struct {
	buf []byte
	n   uint // bits written
}

func (w *bitWriter) writeBit(b uint) {
	if w.n%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 0x80 >> (w.n % 8)
	}
	w.n++
}

func (w *bitWriter) writeBits(v uint, width uint) {
	for i := int(width) - 1; i >= 0; i-- {
		w.writeBit((v >> uint(i)) & 1)
	}
}

type bitReader struct {
	buf []byte
	n   uint
}

func (r *bitReader) readBit() (uint, error) {
	if r.n >= uint(len(r.buf))*8 {
		return 0, fmt.Errorf("falcon: bitstream exhausted")
	}
	b := uint(r.buf[r.n/8]>>(7-r.n%8)) & 1
	r.n++
	return b, nil
}

func (r *bitReader) readBits(width uint) (uint, error) {
	var v uint
	for i := uint(0); i < width; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}

// compressCoeffs encodes signed coefficients.
func compressCoeffs(cs []int16) []byte {
	var w bitWriter
	for _, c := range cs {
		v := int(c)
		sign := uint(0)
		if v < 0 {
			sign = 1
			v = -v
		}
		w.writeBit(sign)
		w.writeBits(uint(v)&0x7f, 7)
		for k := v >> 7; k > 0; k-- {
			w.writeBit(0)
		}
		w.writeBit(1)
	}
	return w.buf
}

// decompressCoeffs decodes n signed coefficients.
func decompressCoeffs(data []byte, n int) ([]int16, error) {
	r := bitReader{buf: data}
	out := make([]int16, n)
	for i := 0; i < n; i++ {
		sign, err := r.readBit()
		if err != nil {
			return nil, err
		}
		low, err := r.readBits(7)
		if err != nil {
			return nil, err
		}
		high := uint(0)
		for {
			b, err := r.readBit()
			if err != nil {
				return nil, err
			}
			if b == 1 {
				break
			}
			high++
			if high > 255 {
				return nil, fmt.Errorf("falcon: unary run too long")
			}
		}
		v := int(high<<7 | low)
		if sign == 1 {
			if v == 0 {
				return nil, fmt.Errorf("falcon: negative zero encoding")
			}
			v = -v
		}
		out[i] = int16(v)
	}
	return out, nil
}

// Encode serialises a signature: salt ‖ uint16 payload length ‖ payload.
func (s *Signature) Encode() []byte {
	payload := compressCoeffs(s.S1)
	out := make([]byte, 0, SaltLen+2+len(payload)+2)
	out = append(out, s.Salt...)
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(s.S1))<<16|uint32(len(payload)))
	out = append(out, lenb[:]...)
	return append(out, payload...)
}

// DecodeSignature parses Encode's output.
func DecodeSignature(data []byte) (*Signature, error) {
	if len(data) < SaltLen+4 {
		return nil, ErrBadLength
	}
	salt := append([]byte(nil), data[:SaltLen]...)
	word := binary.BigEndian.Uint32(data[SaltLen : SaltLen+4])
	n := int(word >> 16)
	plen := int(word & 0xffff)
	rest := data[SaltLen+4:]
	if len(rest) != plen || n == 0 || n > 1024 {
		return nil, ErrBadLength
	}
	s1, err := decompressCoeffs(rest, n)
	if err != nil {
		return nil, err
	}
	return &Signature{Salt: salt, S1: s1}, nil
}

// EncodePublic serialises a public key as N big-endian uint16s after a
// one-byte log₂(N) header.
func (pk *PublicKey) EncodePublic() []byte {
	out := make([]byte, 1+2*len(pk.H))
	logn := 0
	for 1<<logn < pk.Params.N {
		logn++
	}
	out[0] = byte(logn)
	for i, v := range pk.H {
		binary.BigEndian.PutUint16(out[1+2*i:], v)
	}
	return out
}

// DecodePublic parses EncodePublic output.
func DecodePublic(data []byte) (*PublicKey, error) {
	if len(data) < 1 {
		return nil, ErrBadLength
	}
	n := 1 << data[0]
	params, err := ParamsFor(n)
	if err != nil {
		return nil, err
	}
	if len(data) != 1+2*n {
		return nil, ErrBadLength
	}
	h := make([]uint16, n)
	for i := range h {
		h[i] = binary.BigEndian.Uint16(data[1+2*i:])
		if h[i] >= Q {
			return nil, fmt.Errorf("falcon: public coefficient %d out of range", i)
		}
	}
	return &PublicKey{Params: params, H: h}, nil
}
