package falcon

import (
	"errors"
	"fmt"
	"math"

	"ctgauss/internal/fft"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

// Signature is a Falcon signature: the salt and the transmitted half s1
// (the spec's s2); verification recomputes s0 = c − s1·h mod q.
type Signature struct {
	Salt []byte
	S1   []int16
}

// Signer holds per-instance signing state: the key, the SamplerZ
// backend (a rejection sampler over a fixed base, or the convolution
// layer), and a PRNG for salts.
type Signer struct {
	sk   *PrivateKey
	zs   zSampler
	salt *prng.BitReader
	// Attempts counts norm-rejection restarts (diagnostics).
	Attempts uint64
}

// NewSigner builds a signer.  base is the discrete Gaussian base sampler
// (σ must be SigmaBase = 2); src supplies salts and the SamplerZ rejection
// randomness.
func NewSigner(sk *PrivateKey, base sampler.Sampler, src prng.Source) (*Signer, error) {
	bits := prng.NewBitReader(src)
	return newSignerWithZ(sk, newSamplerZ(base, bits, sk.Params.SigmaMin), bits)
}

// newSignerWithZ wires a signer over an explicit SamplerZ backend.
func newSignerWithZ(sk *PrivateKey, zs zSampler, salt *prng.BitReader) (*Signer, error) {
	if !sk.ready {
		if err := sk.precompute(); err != nil {
			return nil, err
		}
	}
	return &Signer{sk: sk, zs: zs, salt: salt}, nil
}

// BaseSampler exposes the base sampler (for bit-count statistics) of a
// rejection-backed signer; convolve-backed signers return nil (their
// bit ledger lives on the convolution layer).
func (s *Signer) BaseSampler() sampler.Sampler {
	if zs, ok := s.zs.(*samplerZState); ok {
		return zs.base
	}
	return nil
}

// ErrSignFailed is returned when no short-enough signature was found in
// the attempt budget.
var ErrSignFailed = errors.New("falcon: signing failed to find a short vector")

// Sign produces a signature for msg.
func (s *Signer) Sign(msg []byte) (*Signature, error) {
	n := s.sk.Params.N
	qInv := 1.0 / float64(Q)
	for attempt := 0; attempt < 64; attempt++ {
		s.Attempts++
		salt := make([]byte, SaltLen)
		s.salt.Bytes(salt)
		c := hashToPoint(salt, msg, n)

		cf := make([]float64, n)
		for i, v := range c {
			cf[i] = float64(v)
		}
		cFFT := fft.FFT(cf)

		// t = (c, 0)·B⁻¹ = (c⊛(−F)/q, c⊛f/q); bFFT = [[g,−f],[G,−F]].
		negFBig := fft.Scale(s.sk.bFFT[1][1], 1) // already −F
		fF := fft.Scale(s.sk.bFFT[0][1], -1)     // −(−f) = f
		t0 := fft.Scale(fft.Mul(cFFT, negFBig), qInv)
		t1 := fft.Scale(fft.Mul(cFFT, fF), qInv)

		z0, z1 := ffSampling(t0, t1, s.sk.tree, s.zs)

		// s = (t − z)·B computed directly: s0 = c − (z0⊛g + z1⊛G),
		// s1 = z0⊛f + z1⊛F; all integer vectors, recovered by rounding.
		gF, GF := s.sk.bFFT[0][0], s.sk.bFFT[1][0]
		FFb := fft.Scale(s.sk.bFFT[1][1], -1) // F
		s0f := fft.Sub(cFFT, fft.Add(fft.Mul(z0, gF), fft.Mul(z1, GF)))
		s1f := fft.Add(fft.Mul(z0, fF), fft.Mul(z1, FFb))

		s0c, ok0 := roundVec(fft.InvFFT(s0f))
		s1c, ok1 := roundVec(fft.InvFFT(s1f))
		if !ok0 || !ok1 {
			continue
		}
		var norm int64
		for i := 0; i < n; i++ {
			norm += int64(s0c[i])*int64(s0c[i]) + int64(s1c[i])*int64(s1c[i])
		}
		if norm > s.sk.Params.BoundSq || norm == 0 {
			continue
		}
		return &Signature{Salt: salt, S1: s1c}, nil
	}
	return nil, ErrSignFailed
}

// roundVec rounds near-integer floats to int16, rejecting implausible
// magnitudes (defence against float blow-ups).
func roundVec(v []float64) ([]int16, bool) {
	out := make([]int16, len(v))
	for i, x := range v {
		r := math.Round(x)
		if math.Abs(x-r) > 0.4 || math.Abs(r) > 32000 {
			return nil, false
		}
		out[i] = int16(r)
	}
	return out, true
}

// SampleStats reports SamplerZ acceptance statistics.
func (s *Signer) SampleStats() string {
	accepted, rejected := s.zs.acceptStats()
	total := accepted + rejected
	if total == 0 {
		return "no samples"
	}
	return fmt.Sprintf("accept rate %.1f%% (%d of %d)",
		100*float64(accepted)/float64(total), accepted, total)
}
