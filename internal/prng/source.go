package prng

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"ctgauss/internal/faultinject"
)

// AESCTR runs AES-128/256 in counter mode as a PRNG — the "platform
// specific alternative" (AES-NI) the paper's conclusion suggests for
// cutting the pseudorandom-bit cost.
type AESCTR struct {
	stream cipher.Stream
	zero   []byte
}

// NewAESCTR builds an AES-CTR PRNG from a 16, 24 or 32 byte seed.
func NewAESCTR(seed []byte) (*AESCTR, error) {
	block, err := aes.NewCipher(seed)
	if err != nil {
		return nil, fmt.Errorf("prng: %w", err)
	}
	iv := make([]byte, block.BlockSize())
	return &AESCTR{stream: cipher.NewCTR(block, iv), zero: make([]byte, 4096)}, nil
}

// Name implements Source.
func (a *AESCTR) Name() string { return "aes-ctr" }

// Fill implements Source.
func (a *AESCTR) Fill(p []byte) {
	for len(p) > 0 {
		n := len(p)
		if n > len(a.zero) {
			n = len(a.zero)
		}
		a.stream.XORKeyStream(p[:n], a.zero[:n])
		p = p[n:]
	}
}

// BitReader adapts a Source to single-bit and word reads while counting
// consumption, supporting the paper's bits-per-sample measurements (§7).
type BitReader struct {
	src      Source
	buf      [512]byte
	off      int
	bitInOff uint
	// BitsRead counts every random bit handed out.
	BitsRead uint64
}

// NewBitReader wraps src.
func NewBitReader(src Source) *BitReader {
	r := &BitReader{src: src}
	r.off = len(r.buf)
	return r
}

func (r *BitReader) refill() {
	// Chaos seam: an armed PRNGReadError fault panics here, modeling an
	// entropy-source failure; it surfaces inside whatever fill consumes
	// this reader, where the engine's recovery contains it.  Disarmed
	// (always, in production) this is one atomic load.
	faultinject.Fire(faultinject.PRNGReadError, faultinject.AnyShard)
	r.src.Fill(r.buf[:])
	r.off = 0
	r.bitInOff = 0
}

// Bit returns the next random bit.
func (r *BitReader) Bit() byte {
	if r.off >= len(r.buf) {
		r.refill()
	}
	b := (r.buf[r.off] >> r.bitInOff) & 1
	r.bitInOff++
	if r.bitInOff == 8 {
		r.bitInOff = 0
		r.off++
	}
	r.BitsRead++
	return b
}

// Uint64 returns the next 64 random bits as a word, byte-aligned (any
// partially consumed byte is discarded, like real implementations do).
func (r *BitReader) Uint64() uint64 {
	r.alignByte()
	if r.off+8 > len(r.buf) {
		r.refill()
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	r.BitsRead += 64
	return v
}

// Bytes fills p with whole random bytes.
func (r *BitReader) Bytes(p []byte) {
	r.alignByte()
	for len(p) > 0 {
		if r.off >= len(r.buf) {
			r.refill()
		}
		n := copy(p, r.buf[r.off:])
		r.off += n
		r.BitsRead += uint64(8 * n)
		p = p[n:]
	}
}

func (r *BitReader) alignByte() {
	if r.bitInOff != 0 {
		r.bitInOff = 0
		r.off++
	}
}

// Words fills dst with random 64-bit words (the packed bit-planes consumed
// by the bitsliced sampler: word i carries bit i of 64 independent lanes).
// It is equivalent to calling Uint64 per word but reads the internal
// buffer in bulk.
func (r *BitReader) Words(dst []uint64) { r.FillWords(dst) }

// FillWords fills dst with random 64-bit words using one bulk pass over
// the internal buffer per refill instead of a bounds-checked Uint64 per
// word — the batch path of the wide samplers, which draw NumInputs×W
// words at a time.  The byte stream consumed (including the discard of a
// partial trailing word before refill) is identical to repeated Uint64
// calls, so sampler output is unchanged.
func (r *BitReader) FillWords(dst []uint64) {
	r.alignByte()
	for len(dst) > 0 {
		if r.off+8 > len(r.buf) {
			r.refill()
		}
		n := (len(r.buf) - r.off) / 8
		if n > len(dst) {
			n = len(dst)
		}
		chunk := r.buf[r.off : r.off+8*n]
		for i := 0; i < n; i++ {
			dst[i] = binary.LittleEndian.Uint64(chunk[8*i:])
		}
		r.off += 8 * n
		r.BitsRead += uint64(64 * n)
		dst = dst[n:]
	}
}

// NewSource constructs a Source by name: "chacha20", "shake256", "aes-ctr".
func NewSource(name string, seed []byte) (Source, error) {
	switch name {
	case "chacha20":
		return NewChaCha20(seed)
	case "shake256":
		return NewSHAKE256Seeded(seed), nil
	case "aes-ctr":
		s := seed
		if len(s) != 16 && len(s) != 24 && len(s) != 32 {
			padded := make([]byte, 32)
			copy(padded, s)
			s = padded
		}
		return NewAESCTR(s)
	default:
		return nil, fmt.Errorf("prng: unknown source %q", name)
	}
}
