// Package prng provides the pseudorandom generators the paper's
// experiments use: ChaCha20 (the Falcon reference PRNG and the one used in
// Table 1), SHAKE256/Keccak (the generator whose cost dominates in [21]'s
// measurements, §7), and AES-CTR (the platform-specific alternative the
// conclusion mentions).  All are deterministic from a seed so experiments
// are reproducible, and all implement the Source interface.
package prng

import (
	"encoding/binary"
	"fmt"
)

// Source is a deterministic stream of pseudorandom bytes.
type Source interface {
	// Fill overwrites p with pseudorandom bytes.
	Fill(p []byte)
	// Name identifies the generator in experiment output.
	Name() string
}

// ChaCha20 is the RFC 8439 stream cipher run as a PRNG (zero nonce,
// incrementing block counter), matching the Falcon reference
// implementation's use of ChaCha as its sampler PRNG.
type ChaCha20 struct {
	state [16]uint32
	buf   [64]byte
	used  int
}

// NewChaCha20 seeds the generator with a 32-byte key.  Shorter seeds are
// zero-padded; longer seeds are rejected.
func NewChaCha20(seed []byte) (*ChaCha20, error) {
	if len(seed) > 32 {
		return nil, fmt.Errorf("prng: ChaCha20 seed must be at most 32 bytes, got %d", len(seed))
	}
	var key [32]byte
	copy(key[:], seed)
	c := &ChaCha20{used: 64}
	c.state[0] = 0x61707865
	c.state[1] = 0x3320646e
	c.state[2] = 0x79622d32
	c.state[3] = 0x6b206574
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	// state[12] = block counter, state[13..15] = nonce (zero).
	return c, nil
}

// MustChaCha20 is NewChaCha20 for known-good seeds.
func MustChaCha20(seed []byte) *ChaCha20 {
	c, err := NewChaCha20(seed)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Source.
func (c *ChaCha20) Name() string { return "chacha20" }

func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d ^= a
	d = d<<16 | d>>16
	c += d
	b ^= c
	b = b<<12 | b>>20
	a += b
	d ^= a
	d = d<<8 | d>>24
	c += d
	b ^= c
	b = b<<7 | b>>25
	return a, b, c, d
}

func (c *ChaCha20) block() {
	var x [16]uint32
	copy(x[:], c.state[:])
	for round := 0; round < 10; round++ {
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := range x {
		x[i] += c.state[i]
	}
	for i, v := range x {
		binary.LittleEndian.PutUint32(c.buf[4*i:], v)
	}
	c.state[12]++
	if c.state[12] == 0 {
		c.state[13]++
	}
	c.used = 0
}

// Fill implements Source.
func (c *ChaCha20) Fill(p []byte) {
	for len(p) > 0 {
		if c.used == 64 {
			c.block()
		}
		n := copy(p, c.buf[c.used:])
		c.used += n
		p = p[n:]
	}
}

// KeystreamAt returns the first 64 keystream bytes for the given key,
// counter and nonce — used by the RFC 8439 known-answer tests.
func KeystreamAt(key [32]byte, counter uint32, nonce [12]byte) [64]byte {
	c := &ChaCha20{used: 64}
	c.state[0] = 0x61707865
	c.state[1] = 0x3320646e
	c.state[2] = 0x79622d32
	c.state[3] = 0x6b206574
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	c.state[12] = counter
	for i := 0; i < 3; i++ {
		c.state[13+i] = binary.LittleEndian.Uint32(nonce[4*i:])
	}
	c.block()
	return c.buf
}
