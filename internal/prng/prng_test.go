package prng

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// RFC 8439 §2.3.2 test vector.
func TestChaCha20RFC8439Block(t *testing.T) {
	var key [32]byte
	for i := range key {
		key[i] = byte(i)
	}
	nonce := [12]byte{0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0, 0, 0, 0}
	got := KeystreamAt(key, 1, nonce)
	want, _ := hex.DecodeString(
		"10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e" +
			"d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(got[:], want) {
		t.Fatalf("ChaCha20 block mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestChaCha20Deterministic(t *testing.T) {
	a := MustChaCha20([]byte("seed"))
	b := MustChaCha20([]byte("seed"))
	pa := make([]byte, 1000)
	pb := make([]byte, 1000)
	a.Fill(pa)
	b.Fill(pb)
	if !bytes.Equal(pa, pb) {
		t.Fatal("same seed must give same stream")
	}
	c := MustChaCha20([]byte("other"))
	pc := make([]byte, 1000)
	c.Fill(pc)
	if bytes.Equal(pa, pc) {
		t.Fatal("different seeds must differ")
	}
}

func TestChaCha20StreamContinuity(t *testing.T) {
	a := MustChaCha20([]byte("x"))
	b := MustChaCha20([]byte("x"))
	one := make([]byte, 200)
	a.Fill(one)
	var parts []byte
	for len(parts) < 200 {
		chunk := make([]byte, 7)
		b.Fill(chunk)
		parts = append(parts, chunk...)
	}
	if !bytes.Equal(one, parts[:200]) {
		t.Fatal("chunked reads must match one big read")
	}
}

func TestChaCha20SeedTooLong(t *testing.T) {
	if _, err := NewChaCha20(make([]byte, 33)); err == nil {
		t.Fatal("expected error")
	}
}

// FIPS 202: SHAKE256(""), first 32 bytes.
func TestSHAKE256EmptyKAT(t *testing.T) {
	got := ShakeSum256(32, nil)
	want, _ := hex.DecodeString("46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f")
	if !bytes.Equal(got, want) {
		t.Fatalf("SHAKE256(\"\") = %x, want %x", got, want)
	}
}

// SHAKE256("abc"), first 32 bytes (NIST example values).
func TestSHAKE256AbcKAT(t *testing.T) {
	got := ShakeSum256(32, []byte("abc"))
	want, _ := hex.DecodeString("483366601360a8771c6863080cc4114d8db44530f8f1e1ee4f94ea37e78b5739")
	if !bytes.Equal(got, want) {
		t.Fatalf("SHAKE256(abc) = %x, want %x", got, want)
	}
}

func TestSHAKE256LongInputCrossesRate(t *testing.T) {
	// Absorbing more than the 136-byte rate must not corrupt state;
	// compare incremental vs one-shot absorption.
	msg := bytes.Repeat([]byte{0xa3}, 500)
	s1 := NewSHAKE256()
	s1.Absorb(msg)
	o1 := make([]byte, 64)
	s1.Fill(o1)

	s2 := NewSHAKE256()
	for _, b := range msg {
		s2.Absorb([]byte{b})
	}
	o2 := make([]byte, 64)
	s2.Fill(o2)
	if !bytes.Equal(o1, o2) {
		t.Fatal("incremental absorb differs from bulk")
	}
}

func TestSHAKEAbsorbAfterSqueezePanics(t *testing.T) {
	s := NewSHAKE256Seeded([]byte("s"))
	s.Fill(make([]byte, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Absorb([]byte("more"))
}

func TestSHAKESqueezeCrossesRate(t *testing.T) {
	s := NewSHAKE256Seeded([]byte("seed"))
	big := make([]byte, 1000)
	s.Fill(big)
	s2 := NewSHAKE256Seeded([]byte("seed"))
	var parts []byte
	for len(parts) < 1000 {
		chunk := make([]byte, 13)
		s2.Fill(chunk)
		parts = append(parts, chunk...)
	}
	if !bytes.Equal(big, parts[:1000]) {
		t.Fatal("chunked squeeze differs")
	}
}

func TestAESCTRDeterministic(t *testing.T) {
	a, err := NewAESCTR(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewAESCTR(make([]byte, 16))
	pa, pb := make([]byte, 300), make([]byte, 300)
	a.Fill(pa)
	b.Fill(pb)
	if !bytes.Equal(pa, pb) {
		t.Fatal("AES-CTR not deterministic")
	}
	if bytes.Equal(pa, make([]byte, 300)) {
		t.Fatal("AES-CTR produced zeros")
	}
}

func TestNewSourceNames(t *testing.T) {
	for _, name := range []string{"chacha20", "shake256", "aes-ctr"} {
		s, err := NewSource(name, []byte("seed"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("Name() = %q, want %q", s.Name(), name)
		}
		p := make([]byte, 64)
		s.Fill(p)
	}
	if _, err := NewSource("bogus", nil); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

func TestBitReaderCountsBits(t *testing.T) {
	r := NewBitReader(MustChaCha20([]byte("c")))
	for i := 0; i < 10; i++ {
		r.Bit()
	}
	if r.BitsRead != 10 {
		t.Fatalf("BitsRead = %d, want 10", r.BitsRead)
	}
	r.Uint64()
	if r.BitsRead != 74 {
		t.Fatalf("BitsRead = %d, want 74", r.BitsRead)
	}
}

func TestBitReaderBitOrderMatchesBytes(t *testing.T) {
	src := MustChaCha20([]byte("order"))
	raw := make([]byte, 16)
	src.Fill(raw)

	r := NewBitReader(MustChaCha20([]byte("order")))
	for i := 0; i < 64; i++ {
		want := (raw[i/8] >> uint(i%8)) & 1
		if got := r.Bit(); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestBitReaderWords(t *testing.T) {
	r := NewBitReader(MustChaCha20([]byte("w")))
	dst := make([]uint64, 4)
	r.Words(dst)
	if r.BitsRead != 256 {
		t.Fatalf("BitsRead = %d", r.BitsRead)
	}
	allZero := true
	for _, w := range dst {
		if w != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("words all zero")
	}
}

// TestFillWordsMatchesUint64 pins the bulk path to the per-word reference:
// the same byte stream (including partial-tail discards at buffer edges
// and BitsRead accounting) must come out of FillWords regardless of the
// request size or the reader's alignment going in.
func TestFillWordsMatchesUint64(t *testing.T) {
	bulk := NewBitReader(MustChaCha20([]byte("fw")))
	ref := NewBitReader(MustChaCha20([]byte("fw")))

	sizes := []int{1, 3, 64, 65, 130, 7, 200, 63, 64, 1}
	for round, n := range sizes {
		got := make([]uint64, n)
		want := make([]uint64, n)
		bulk.FillWords(got)
		for i := range want {
			want[i] = ref.Uint64()
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d word %d: FillWords %#x, Uint64 %#x", round, i, got[i], want[i])
			}
		}
		if bulk.BitsRead != ref.BitsRead {
			t.Fatalf("round %d: BitsRead %d vs %d", round, bulk.BitsRead, ref.BitsRead)
		}
		// Misalign both readers identically between rounds to cover the
		// re-alignment path (odd byte counts and dangling bits).
		var scratch [3]byte
		bulk.Bytes(scratch[:])
		ref.Bytes(scratch[:])
		bulk.Bit()
		ref.Bit()
	}
}

func TestBitReaderMonobitSanity(t *testing.T) {
	// Frequency test: roughly half the bits should be 1.
	for _, name := range []string{"chacha20", "shake256", "aes-ctr"} {
		src, _ := NewSource(name, []byte("monobit"))
		r := NewBitReader(src)
		ones := 0
		const n = 100000
		for i := 0; i < n; i++ {
			ones += int(r.Bit())
		}
		if ones < n/2-1000 || ones > n/2+1000 {
			t.Errorf("%s: %d ones of %d", name, ones, n)
		}
	}
}
