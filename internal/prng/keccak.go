package prng

import "encoding/binary"

// keccakF1600 is the Keccak-f[1600] permutation.
func keccakF1600(a *[25]uint64) {
	var rc = [24]uint64{
		0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
		0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
		0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
		0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
		0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
		0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
		0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
		0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
	}
	for round := 0; round < 24; round++ {
		// θ
		var c [5]uint64
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d := c[(x+4)%5] ^ rotl(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d
			}
		}
		// ρ and π
		var b [25]uint64
		b[0] = a[0]
		x, y := 1, 0
		t := a[1]
		for i := 0; i < 24; i++ {
			nx := y
			ny := (2*x + 3*y) % 5
			r := ((i + 1) * (i + 2) / 2) % 64
			idx := nx + 5*ny
			next := a[idx]
			b[idx] = rotl(t, uint(r))
			t = next
			x, y = nx, ny
		}
		// χ
		for y := 0; y < 5; y++ {
			var row [5]uint64
			for x := 0; x < 5; x++ {
				row[x] = b[x+5*y]
			}
			for x := 0; x < 5; x++ {
				a[x+5*y] = row[x] ^ (^row[(x+1)%5] & row[(x+2)%5])
			}
		}
		// ι
		a[0] ^= rc[round]
	}
}

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// SHAKE256 is the FIPS 202 extendable-output function in streaming mode,
// usable both as a hash (for Falcon's hash-to-point) and as a PRNG.
type SHAKE256 struct {
	state     [25]uint64
	buf       [136]byte // rate = 136 bytes for SHAKE256
	absorbed  int
	squeezing bool
	offset    int
}

// NewSHAKE256 returns an empty sponge.
func NewSHAKE256() *SHAKE256 { return &SHAKE256{} }

// NewSHAKE256Seeded absorbs seed and switches to squeezing, yielding a
// deterministic PRNG.
func NewSHAKE256Seeded(seed []byte) *SHAKE256 {
	s := NewSHAKE256()
	s.Absorb(seed)
	return s
}

// Name implements Source.
func (s *SHAKE256) Name() string { return "shake256" }

// Absorb feeds data into the sponge.  It panics if squeezing has begun.
func (s *SHAKE256) Absorb(p []byte) {
	if s.squeezing {
		panic("prng: SHAKE256 absorb after squeeze")
	}
	for _, by := range p {
		s.buf[s.absorbed] = by
		s.absorbed++
		if s.absorbed == len(s.buf) {
			s.permuteAbsorb()
		}
	}
}

func (s *SHAKE256) permuteAbsorb() {
	for i := 0; i < len(s.buf)/8; i++ {
		s.state[i] ^= binary.LittleEndian.Uint64(s.buf[8*i:])
	}
	keccakF1600(&s.state)
	s.absorbed = 0
	for i := range s.buf {
		s.buf[i] = 0
	}
}

func (s *SHAKE256) pad() {
	s.buf[s.absorbed] ^= 0x1f
	s.buf[len(s.buf)-1] ^= 0x80
	for i := 0; i < len(s.buf)/8; i++ {
		s.state[i] ^= binary.LittleEndian.Uint64(s.buf[8*i:])
	}
	keccakF1600(&s.state)
	s.squeezing = true
	s.offset = 0
	s.fillSqueezeBuf()
}

func (s *SHAKE256) fillSqueezeBuf() {
	for i := 0; i < len(s.buf)/8; i++ {
		binary.LittleEndian.PutUint64(s.buf[8*i:], s.state[i])
	}
	s.offset = 0
}

// Fill implements Source: it squeezes len(p) bytes.
func (s *SHAKE256) Fill(p []byte) {
	if !s.squeezing {
		s.pad()
	}
	for len(p) > 0 {
		if s.offset == len(s.buf) {
			keccakF1600(&s.state)
			s.fillSqueezeBuf()
		}
		n := copy(p, s.buf[s.offset:])
		s.offset += n
		p = p[n:]
	}
}

// Sum256 returns a d-byte SHAKE256 digest of data (one-shot helper).
func ShakeSum256(d int, data []byte) []byte {
	s := NewSHAKE256()
	s.Absorb(data)
	out := make([]byte, d)
	s.Fill(out)
	return out
}
