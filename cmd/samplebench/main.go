// Command samplebench regenerates Table 2 (sampler cost: this work vs the
// simple minimization of [21]) and the §7 PRNG-overhead measurement, and
// measures the concurrent serving pool.
//
// Usage:
//
//	samplebench                         # Table 2
//	samplebench -json report.json       # Table 2 + per-engine JSON report
//	samplebench -prng-overhead
//	samplebench -parallel               # build pipeline + pool throughput
//	samplebench -parallel -cache DIR    # ... with the on-disk circuit cache
//	samplebench -arbitrary -json BENCH_PR4.json   # convolved vs direct-compiled
//	samplebench -serving -json BENCH_PR5.json     # sync vs async refill engine
//	samplebench -serving -engine async            # one engine variant only
//	samplebench -simd -json BENCH_PR10.json       # SIMD backends vs portable interp
//
// The Table-2 JSON report compares every evaluation engine (reference SSA
// interpreter, register-allocated interpreter at widths 1/4/8, generated
// native circuit) per σ, recording ns per 64-sample batch and the speedup
// over the reference — the record BENCH_PR2.json keeps for the perf
// trajectory.  The -arbitrary report compares the convolution layer's
// free-form (σ, μ) throughput against the direct compiled circuits —
// the record BENCH_PR4.json keeps for the serve-anything cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ctgauss"
	"ctgauss/internal/bitslice/dispatch"
	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/registry"
	"ctgauss/internal/sampler"
	"ctgauss/internal/sampler/gen"
)

func main() {
	overhead := flag.Bool("prng-overhead", false, "measure the PRNG share of sampling time (§7)")
	parallelMode := flag.Bool("parallel", false, "measure parallel build, cache hits, and pool serving throughput")
	arbitraryMode := flag.Bool("arbitrary", false, "measure the convolution layer (free-form σ, μ) vs direct compiled circuits")
	servingMode := flag.Bool("serving", false, "measure served-batch latency and throughput on the pool refill engine (BENCH_PR5.json)")
	simdMode := flag.Bool("simd", false, "measure the SIMD evaluation backends against the portable interpreter (BENCH_PR10.json)")
	engineSel := flag.String("engine", "both", "refill engine for -serving: sync, async, or both")
	goroutines := flag.String("goroutines", "1,4,16", "comma-separated pool caller counts for -parallel and -serving")
	cacheDir := flag.String("cache", "", "on-disk circuit cache directory for -parallel (default: memory only)")
	sigma := flag.String("sigma", "2", "σ for -parallel")
	batches := flag.Int("batches", 20000, "64-sample batches per measurement")
	cyclesPerNs := flag.Float64("ghz", 2.6, "clock in GHz for the cycles column (paper: 2.6)")
	jsonPath := flag.String("json", "", "write a per-engine JSON report to this file (\"-\" = stdout)")
	flag.Parse()

	// Point the process-wide registry at the cache directory before
	// anything can touch registry.Shared() (it latches the environment on
	// first use), so -cache governs both the measurements and the pools.
	if *cacheDir != "" {
		os.Setenv("CTGAUSS_CACHE_DIR", *cacheDir)
	}

	if *jsonPath != "" && (*overhead || *parallelMode) {
		check(fmt.Errorf("-json applies only to the Table 2, -arbitrary and -serving modes (run without -prng-overhead/-parallel)"))
	}
	if *overhead {
		prngOverhead(*batches)
		return
	}
	if *parallelMode {
		parallelBench(*sigma, *goroutines, *batches)
		return
	}
	if *arbitraryMode {
		arbitraryBench(*batches, *jsonPath)
		return
	}
	if *servingMode {
		servingBench(*sigma, *goroutines, *batches, *engineSel, *jsonPath)
		return
	}
	if *simdMode {
		simdBench(*batches, *jsonPath)
		return
	}
	table2(*batches, *cyclesPerNs, *jsonPath)
}

// parallelBench exercises the build-once/serve-many path end to end:
// serial vs parallel minimization, registry cache-hit latency, and pool
// throughput under concurrent callers.
func parallelBench(sigma, goroutines string, batches int) {
	fmt.Printf("build-once/serve-many — σ=%s, n=128, τ=13, %d CPUs\n\n", sigma, runtime.NumCPU())

	cfg := core.Config{Sigma: sigma, N: 128, TailCut: 13, Min: core.MinimizeExact}

	cfg.Workers = 1
	start := time.Now()
	_, err := core.Build(cfg)
	check(err)
	serial := time.Since(start)

	cfg.Workers = 0
	start = time.Now()
	_, err = core.Build(cfg)
	check(err)
	par := time.Since(start)
	fmt.Printf("core.Build serial   %12s\n", serial.Round(time.Microsecond))
	fmt.Printf("core.Build parallel %12s   (%.2fx)\n", par.Round(time.Microsecond), float64(serial)/float64(par))

	// The shared registry (cache dir set in main) serves both these
	// measurements and the pools below, so they share one artifact.
	reg := registry.Shared()
	start = time.Now()
	_, err = reg.Get(cfg)
	check(err)
	cold := time.Since(start)
	start = time.Now()
	art, err := reg.Get(cfg)
	check(err)
	hot := time.Since(start)
	fmt.Printf("registry cold get   %12s   (from disk: %v)\n", cold.Round(time.Microsecond), art.FromDisk)
	fmt.Printf("registry cache hit  %12s\n\n", hot.Round(time.Microsecond))

	fmt.Printf("%-10s %14s %16s\n", "callers", "ns/batch", "samples/sec")
	for _, field := range strings.Split(goroutines, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(field))
		check(err)
		if g < 1 {
			check(fmt.Errorf("-goroutines values must be ≥ 1, got %d", g))
		}
		pool, err := ctgauss.NewPoolWithConfig(ctgauss.Config{Sigma: sigma}, g)
		check(err)
		elapsed := drivePool(pool, g, batches)
		total := batches * g
		ns := float64(elapsed.Nanoseconds()) / float64(total)
		fmt.Printf("%-10d %14.0f %16.0f\n", g, ns, float64(total*64)/elapsed.Seconds())
	}
}

// drivePool runs g goroutines each drawing `batches` 64-sample batches.
func drivePool(pool *ctgauss.Pool, g, batches int) time.Duration {
	var wg sync.WaitGroup
	wg.Add(g)
	start := time.Now()
	for i := 0; i < g; i++ {
		go func() {
			defer wg.Done()
			dst := make([]int, 64)
			for b := 0; b < batches; b++ {
				pool.NextBatch(dst)
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func timeBatches(s sampler.BatchSampler, batches int) time.Duration {
	dst := make([]int, 64)
	start := time.Now()
	for i := 0; i < batches; i++ {
		s.NextBatch(dst)
	}
	return time.Since(start)
}

// benchRow is one (σ, engine) measurement of the JSON report.
type benchRow struct {
	Sigma              string  `json:"sigma"`
	Engine             string  `json:"engine"`
	NsPerBatch         float64 `json:"ns_per_batch"`
	SpeedupVsReference float64 `json:"speedup_vs_reference"`
	WordOps            int     `json:"word_ops,omitempty"`
}

// benchReport is the samplebench -json schema.
type benchReport struct {
	GOOS    string     `json:"goos"`
	GOARCH  string     `json:"goarch"`
	CPUs    int        `json:"cpus"`
	Batches int        `json:"batches_per_measurement"`
	Rows    []benchRow `json:"rows"`
}

func table2(batches int, ghz float64, jsonPath string) {
	fmt.Println("Table 2 — cost of one 64-sample batch (σ, method → ns and ≈cycles @", ghz, "GHz)")
	fmt.Println()
	fmt.Printf("%-12s %-26s %12s %12s %14s\n", "sigma", "method", "ns/batch", "cycles", "wordops")
	report := benchReport{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(), Batches: batches}
	for _, sigma := range []string{"2", "6.15543"} {
		split, err := core.Build(core.Config{Sigma: sigma, N: 128, TailCut: 13, Min: core.MinimizeExact})
		check(err)
		simple, err := core.BuildSimple(core.Config{Sigma: sigma, N: 128, TailCut: 13})
		check(err)

		// The pre-optimization evaluation path — the baseline every engine
		// row is compared to.
		ref := sampler.NewReference(split.Program, prng.MustChaCha20([]byte("bench")))
		nsRef := float64(timeBatches(ref, batches).Nanoseconds()) / float64(batches)
		row := func(engine string, ns float64, wordops int) {
			report.Rows = append(report.Rows, benchRow{
				Sigma: sigma, Engine: engine, NsPerBatch: ns,
				SpeedupVsReference: nsRef / ns, WordOps: wordops,
			})
		}
		row("reference-interp", nsRef, split.Program.OpCount())

		// The optimized interpreter at each evaluation width, always
		// including the serving default.
		optOps := split.Optimized().OpCount()
		widths := []int{1, 4, 8}
		if sampler.DefaultWidth != 4 && sampler.DefaultWidth != 8 && sampler.DefaultWidth != 1 {
			widths = append(widths, sampler.DefaultWidth)
		}
		nsW := map[int]float64{}
		for _, w := range widths {
			s := split.NewWideSampler(prng.MustChaCha20([]byte("bench")), w)
			ns := float64(timeBatches(s, batches).Nanoseconds()) / float64(batches)
			nsW[w] = ns
			row(fmt.Sprintf("optimized-w%d", w), ns, optOps)
		}

		// The generated, compiled circuit (the paper's deployment form).
		fn, nin, nv, ok := gen.Lookup(sigma)
		if !ok {
			check(fmt.Errorf("no generated circuit for σ=%s", sigma))
		}
		sc := sampler.NewCompiled("compiled", fn, nin, nv, prng.MustChaCha20([]byte("bench")))
		nsc := float64(timeBatches(sc, batches).Nanoseconds()) / float64(batches)
		row("compiled", nsc, split.Program.OpCount())

		// The [21] baseline, interpreted at the default width.
		s2 := simple.NewSampler(prng.MustChaCha20([]byte("bench")))
		ns2 := float64(timeBatches(s2, batches).Nanoseconds()) / float64(batches)

		ns1 := nsW[sampler.DefaultWidth]
		fmt.Printf("%-12s %-26s %12.0f %12.0f %14d\n", sigma, "this work (compiled)", nsc, nsc*ghz, split.Program.OpCount())
		fmt.Printf("%-12s %-26s %12.0f %12.0f %14d\n", sigma, "this work (interp. wide)", ns1, ns1*ghz, split.Program.OpCount())
		fmt.Printf("%-12s %-26s %12.0f %12.0f %14d\n", sigma, "this work (interp. ref)", nsRef, nsRef*ghz, split.Program.OpCount())
		fmt.Printf("%-12s %-26s %12.0f %12.0f %14d\n", sigma, "simple minim. [21]", ns2, ns2*ghz, simple.Program.OpCount())
		fmt.Printf("%-12s %-26s %11.0f%% improvement (interp. vs interp. baseline)\n", sigma, "", 100*(ns2-ns1)/ns2)
		fmt.Printf("%-12s %-26s %11.2fx engine speedup (optimized wide vs reference interp.)\n\n", sigma, "", nsRef/ns1)
	}
	fmt.Println("paper (i7-6600U): σ=2: 3787 → 2293 cycles (37%); σ=6.15543: 11136 → 9880 (11%,")
	fmt.Println("baseline hand-optimized). Our naive-merge baseline is weaker than Espresso+gcc,")
	fmt.Println("so the measured improvement is larger; the ordering (split wins) is the claim.")

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		check(err)
		data = append(data, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(jsonPath, data, 0o644)
		}
		check(err)
	}
}

// arbRow is one (σ, μ, engine) measurement of the -arbitrary report.
type arbRow struct {
	Sigma         float64 `json:"sigma"`
	Mu            float64 `json:"mu"`
	Engine        string  `json:"engine"` // "direct-compiled" or "convolved"
	NsPerSample   float64 `json:"ns_per_sample"`
	SigmaProposal float64 `json:"sigma_proposal,omitempty"`
	DrawsPerTrial int     `json:"draws_per_trial,omitempty"`
	AcceptRate    float64 `json:"accept_rate,omitempty"`
}

// arbReport is the samplebench -arbitrary JSON schema (BENCH_PR4.json).
type arbReport struct {
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	CPUs    int      `json:"cpus"`
	Samples int      `json:"samples_per_measurement"`
	Bases   []string `json:"bases"`
	Rows    []arbRow `json:"rows"`
}

// arbitraryBench compares the convolution layer's free-form (σ, μ)
// throughput against the direct compiled circuits: the direct rows are
// the floor (a circuit exists for exactly that σ), the convolved rows
// are the price of serving any σ — including the two base values
// themselves, where the gap is pure convolution overhead.
func arbitraryBench(batches int, jsonPath string) {
	samples := batches * 64
	report := arbReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Samples: samples, Bases: []string{"2", "6.15543"},
	}
	fmt.Printf("convolution layer vs direct compiled circuits — %d samples per measurement\n\n", samples)
	fmt.Printf("%-10s %-6s %-18s %12s %10s %8s %8s\n", "sigma", "mu", "engine", "ns/sample", "sigma_p", "draws", "accept")

	// Direct rows: the pregenerated native circuits.
	for _, sigma := range []string{"2", "6.15543"} {
		fn, nin, nv, ok := gen.Lookup(sigma)
		if !ok {
			check(fmt.Errorf("no generated circuit for σ=%s", sigma))
		}
		sc := sampler.NewCompiled("compiled", fn, nin, nv, prng.MustChaCha20([]byte("arb-bench")))
		ns := float64(timeBatches(sc, batches).Nanoseconds()) / float64(samples)
		sf, _ := strconv.ParseFloat(sigma, 64)
		report.Rows = append(report.Rows, arbRow{Sigma: sf, Engine: "direct-compiled", NsPerSample: ns})
		fmt.Printf("%-10s %-6g %-18s %12.1f\n", sigma, 0.0, "direct-compiled", ns)
	}

	arb, err := ctgauss.NewArbitrary(ctgauss.ArbitraryConfig{Shards: 1, Seed: []byte("arb-bench")})
	check(err)
	for _, tc := range []struct{ sigma, mu float64 }{
		{2, 0},        // base member: gap vs direct row is pure layer overhead
		{3.3, 0},      // non-precompiled σ
		{6.15543, 0},  // the other base member
		{17.5, 0.375}, // non-precompiled σ, non-zero center
		{300, -0.5},   // deep ladder
	} {
		plan, err := arb.Plan(tc.sigma)
		check(err)
		dst := make([]int, 4096)
		// Warm plan and buffers before timing.
		check(arb.NextBatch(tc.sigma, tc.mu, dst))
		before := arb.Stats()
		start := time.Now()
		drawn := 0
		for drawn < samples {
			n := samples - drawn
			if n > len(dst) {
				n = len(dst)
			}
			check(arb.NextBatch(tc.sigma, tc.mu, dst[:n]))
			drawn += n
		}
		elapsed := time.Since(start)
		after := arb.Stats()
		rate := float64(after.Accepted-before.Accepted) / float64(after.Trials-before.Trials)
		ns := float64(elapsed.Nanoseconds()) / float64(samples)
		report.Rows = append(report.Rows, arbRow{
			Sigma: tc.sigma, Mu: tc.mu, Engine: "convolved", NsPerSample: ns,
			SigmaProposal: plan.SigmaP, DrawsPerTrial: plan.Draws(), AcceptRate: rate,
		})
		fmt.Printf("%-10g %-6g %-18s %12.1f %10.3f %8d %7.0f%%\n",
			tc.sigma, tc.mu, "convolved", ns, plan.SigmaP, plan.Draws(), 100*rate)
	}
	fmt.Println("\nconvolved rows pay per-trial rejection (accept column) plus one base draw per")
	fmt.Println("ladder term; direct rows are the per-σ compiled floor the registry serves when")
	fmt.Println("a circuit exists.  BENCH_PR4.json records this table.")

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		check(err)
		data = append(data, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(jsonPath, data, 0o644)
		}
		check(err)
	}
}

// servingRow is one (engine, scenario, goroutines) measurement of the
// -serving report.
type servingRow struct {
	Engine           string  `json:"engine"`   // "sync" or "async"
	Scenario         string  `json:"scenario"` // "paced" or "saturated"
	Goroutines       int     `json:"goroutines"`
	Prefetch         int     `json:"prefetch"` // resolved ring depth (0 = inline refill)
	MeanNsPerBatch   float64 `json:"mean_ns_per_batch"`
	P50NsPerBatch    float64 `json:"p50_ns_per_batch"`
	P99NsPerBatch    float64 `json:"p99_ns_per_batch"`
	SamplesPerSecond float64 `json:"samples_per_sec"`
	PrefetchHitRatio float64 `json:"prefetch_hit_ratio"`
}

// servingReport is the samplebench -serving JSON schema (BENCH_PR5.json).
type servingReport struct {
	GOOS    string       `json:"goos"`
	GOARCH  string       `json:"goarch"`
	CPUs    int          `json:"cpus"`
	Sigma   string       `json:"sigma"`
	Batches int          `json:"batches_per_goroutine"`
	PacedNs int64        `json:"paced_interval_ns"`
	Rows    []servingRow `json:"rows"`
}

// pacedInterval is the inter-arrival gap of the paced scenario: long
// enough for a background producer to refill between requests, short
// enough to be a realistic per-client serving cadence.
const pacedInterval = 100 * time.Microsecond

// servingBench measures what a request pays for a 64-sample batch under
// the two refill engines.  The paced scenario models serving traffic —
// requests with idle gaps between them — where the async engine's
// producers evaluate circuits during the gaps and a draw costs a copy;
// it is the p99 the acceptance criteria track.  The saturated scenario
// hammers the pool with no gaps, measuring sustained throughput where
// prefetch can only pipeline, not hide, evaluations.
func servingBench(sigma, goroutines string, batches int, engineSel, jsonPath string) {
	engines := []struct {
		name     string
		prefetch int
	}{{"sync", -1}, {"async", 0}}
	switch engineSel {
	case "both":
	case "sync":
		engines = engines[:1]
	case "async":
		engines = engines[1:]
	default:
		check(fmt.Errorf("-engine must be sync, async or both, got %q", engineSel))
	}

	report := servingReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Sigma: sigma, Batches: batches, PacedNs: pacedInterval.Nanoseconds(),
	}
	fmt.Printf("refill engine, served 64-sample batches — σ=%s, %d batches/goroutine, %d CPUs\n\n", sigma, batches, runtime.NumCPU())
	fmt.Printf("%-7s %-10s %-10s %12s %12s %12s %16s %8s\n",
		"engine", "scenario", "goroutines", "mean ns", "p50 ns", "p99 ns", "samples/sec", "hits")

	for _, eng := range engines {
		for _, scenario := range []string{"paced", "saturated"} {
			for _, field := range strings.Split(goroutines, ",") {
				g, err := strconv.Atoi(strings.TrimSpace(field))
				check(err)
				if g < 1 {
					check(fmt.Errorf("-goroutines values must be ≥ 1, got %d", g))
				}
				pool, err := ctgauss.NewPoolWithConfig(ctgauss.Config{Sigma: sigma, Prefetch: eng.prefetch}, g)
				check(err)
				lats := make([][]time.Duration, g)
				var wg sync.WaitGroup
				wg.Add(g)
				start := time.Now()
				for i := 0; i < g; i++ {
					go func(i int) {
						defer wg.Done()
						dst := make([]int, 64)
						lat := make([]time.Duration, batches)
						for b := 0; b < batches; b++ {
							if scenario == "paced" {
								time.Sleep(pacedInterval)
							}
							t0 := time.Now()
							pool.NextBatch(dst)
							lat[b] = time.Since(t0)
						}
						lats[i] = lat
					}(i)
				}
				wg.Wait()
				elapsed := time.Since(start)
				var all []time.Duration
				for _, l := range lats {
					all = append(all, l...)
				}
				sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
				var sum time.Duration
				for _, d := range all {
					sum += d
				}
				pick := func(q float64) float64 {
					return float64(all[int(q*float64(len(all)-1))].Nanoseconds())
				}
				es := pool.EngineStats()
				row := servingRow{
					Engine: eng.name, Scenario: scenario, Goroutines: g,
					Prefetch:         es.Prefetch,
					MeanNsPerBatch:   float64(sum.Nanoseconds()) / float64(len(all)),
					P50NsPerBatch:    pick(0.5),
					P99NsPerBatch:    pick(0.99),
					SamplesPerSecond: float64(len(all)*64) / elapsed.Seconds(),
					PrefetchHitRatio: es.HitRatio(),
				}
				report.Rows = append(report.Rows, row)
				fmt.Printf("%-7s %-10s %-10d %12.0f %12.0f %12.0f %16.0f %7.0f%%\n",
					eng.name, scenario, g, row.MeanNsPerBatch, row.P50NsPerBatch, row.P99NsPerBatch,
					row.SamplesPerSecond, 100*row.PrefetchHitRatio)
				pool.Close()
			}
		}
	}
	fmt.Println("\npaced rows model serving traffic (fixed inter-arrival gaps): the async engine's")
	fmt.Println("producers refill during the gaps, so a draw pays a copy instead of a circuit")
	fmt.Println("evaluation — the p99 win the acceptance criteria track.  saturated rows have no")
	fmt.Println("gaps; prefetch can only pipeline evaluations there.  BENCH_PR5.json records this.")

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		check(err)
		data = append(data, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(jsonPath, data, 0o644)
		}
		check(err)
	}
}

// simdRow is one (σ, backend, width) measurement of the -simd report.
// The eval columns time RunWideInto alone — the work the SIMD kernels
// replace — while the sampler columns time the full NextBatch path
// (PRNG refill + evaluation + transpose unpack), which is what serving
// actually pays.  Speedups are against the portable W=8 interpreter,
// the pre-PR10 serving configuration.
type simdRow struct {
	Sigma                   string  `json:"sigma"`
	Backend                 string  `json:"backend"`
	Width                   int     `json:"width"`
	Engine                  string  `json:"engine"` // "interp" or "compiled"
	EvalNsPerSample         float64 `json:"eval_ns_per_sample"`
	EvalSpeedupVsPortableW8 float64 `json:"eval_speedup_vs_portable_w8"`
	NsPerSample             float64 `json:"ns_per_sample"`
	SpeedupVsPortableW8     float64 `json:"speedup_vs_portable_w8"`
}

// simdReport is the samplebench -simd JSON schema (BENCH_PR10.json).
type simdReport struct {
	GOOS     string    `json:"goos"`
	GOARCH   string    `json:"goarch"`
	CPUs     int       `json:"cpus"`
	Batches  int       `json:"batches_per_measurement"`
	Active   string    `json:"active_backend"`
	Detected []string  `json:"detected_backends"`
	Rows     []simdRow `json:"rows"`
}

// simdBench measures every detected SIMD backend against the portable
// interpreter on the two Table-2 circuits, at the two kernel widths.
// Each (backend, width) pair is forced via dispatch.Force so one run
// covers the whole matrix; the compiled (generated native, width-1)
// circuit rides along as the PR 8 serving tier's reference point.
func simdBench(batches int, jsonPath string) {
	snap := dispatch.Snapshot()
	backends := append([]dispatch.Backend{dispatch.Portable}, dispatch.Detected()...)
	report := simdReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU(),
		Batches: batches, Active: snap.Backend,
	}
	report.Detected = append(report.Detected, "portable")
	for _, b := range dispatch.Detected() {
		report.Detected = append(report.Detected, b.String())
	}

	fmt.Printf("SIMD evaluation backends — %d batches per measurement, active=%s\n\n", batches, snap.Backend)
	fmt.Printf("%-10s %-10s %-6s %-10s %14s %10s %14s %10s\n",
		"sigma", "backend", "width", "engine", "eval ns/smp", "speedup", "ns/sample", "speedup")

	for _, sigmaStr := range []string{"2", "6.15543"} {
		split, err := core.Build(core.Config{Sigma: sigmaStr, N: 128, TailCut: 13, Min: core.MinimizeExact})
		check(err)
		opt := split.Optimized()

		// evalNs times RunWideInto alone on fixed pseudorandom inputs:
		// width×64 samples per call, so the per-sample figure is directly
		// comparable across widths.
		evalNs := func(w int) float64 {
			src := prng.MustChaCha20([]byte("simd-bench"))
			rd := prng.NewBitReader(src)
			inputs := make([]uint64, opt.NumInputs*w)
			rd.Words(inputs)
			slots := opt.NewSlots(w)
			out := make([]uint64, len(opt.Outputs)*w)
			calls := batches
			start := time.Now()
			for i := 0; i < calls; i++ {
				opt.RunWideInto(w, inputs, slots, out)
			}
			return float64(time.Since(start).Nanoseconds()) / float64(calls) / float64(w*64)
		}
		// samplerNs times the full NextBatch path at width w, per sample.
		samplerNs := func(w int) float64 {
			s := split.NewWideSampler(prng.MustChaCha20([]byte("simd-bench")), w)
			return float64(timeBatches(s, batches).Nanoseconds()) / float64(batches) / 64
		}

		// One discarded portable pass pays the cold-start cost (page-in,
		// frequency ramp) before anything is timed.
		restore, err := dispatch.Force(dispatch.Portable)
		check(err)
		evalNs(8)
		samplerNs(8)
		restore()

		var rows []simdRow
		for _, b := range backends {
			restore, err := dispatch.Force(b)
			if err != nil {
				fmt.Printf("%-10s %-10s skipped: %v\n", sigmaStr, b, err)
				continue
			}
			for _, w := range []int{8, 16} {
				rows = append(rows, simdRow{
					Sigma: sigmaStr, Backend: b.String(), Width: w, Engine: "interp",
					EvalNsPerSample: evalNs(w), NsPerSample: samplerNs(w),
				})
			}
			restore()
		}

		// The generated width-1 native circuit (PR 8 compiled tier) for
		// context: backend-independent, so measured once.
		fn, nin, nv, ok := gen.Lookup(sigmaStr)
		if !ok {
			check(fmt.Errorf("no generated circuit for σ=%s", sigmaStr))
		}
		sc := sampler.NewCompiled("compiled", fn, nin, nv, prng.MustChaCha20([]byte("simd-bench")))
		rows = append(rows, simdRow{
			Sigma: sigmaStr, Backend: "any", Width: 1, Engine: "compiled",
			NsPerSample: float64(timeBatches(sc, batches).Nanoseconds()) / float64(batches) / 64,
		})

		// Speedups are against the portable-W8 row of this same matrix,
		// so the baseline and its comparisons share one timing run and
		// portable/8 reads exactly 1.00×.
		var baseEval, baseSampler float64
		for _, r := range rows {
			if r.Backend == "portable" && r.Width == 8 {
				baseEval, baseSampler = r.EvalNsPerSample, r.NsPerSample
			}
		}
		for i := range rows {
			r := &rows[i]
			if r.EvalNsPerSample > 0 {
				r.EvalSpeedupVsPortableW8 = baseEval / r.EvalNsPerSample
			}
			r.SpeedupVsPortableW8 = baseSampler / r.NsPerSample
			if r.Engine == "compiled" {
				fmt.Printf("%-10s %-10s %-6d %-10s %14s %10s %14.2f %9.2fx\n",
					r.Sigma, r.Backend, r.Width, r.Engine, "-", "-", r.NsPerSample, r.SpeedupVsPortableW8)
			} else {
				fmt.Printf("%-10s %-10s %-6d %-10s %14.2f %9.2fx %14.2f %9.2fx\n",
					r.Sigma, r.Backend, r.Width, r.Engine, r.EvalNsPerSample,
					r.EvalSpeedupVsPortableW8, r.NsPerSample, r.SpeedupVsPortableW8)
			}
		}
		fmt.Println()
		report.Rows = append(report.Rows, rows...)
	}
	fmt.Println("eval ns/smp times RunWideInto alone (the work the kernels replace); ns/sample")
	fmt.Println("is the full NextBatch path including PRNG refill and transpose unpack.  Both")
	fmt.Println("speedup columns are vs the portable W=8 interpreter (pre-PR10 serving config).")
	fmt.Println("BENCH_PR10.json records this table.")

	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		check(err)
		data = append(data, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(jsonPath, data, 0o644)
		}
		check(err)
	}
}

func prngOverhead(batches int) {
	fmt.Println("§7 — share of sampling time spent generating pseudorandom bits (σ=2, n=128)")
	fmt.Println()
	split, err := core.Build(core.Config{Sigma: "2", N: 128, TailCut: 13, Min: core.MinimizeExact})
	check(err)
	words := split.Program.NumInputs + 1
	fmt.Printf("%-10s %14s %14s %10s\n", "prng", "ns/batch", "prng ns/batch", "share")
	for _, name := range []string{"shake256", "chacha20", "aes-ctr"} {
		src, err := prng.NewSource(name, []byte("ovh"))
		check(err)
		s := split.NewSampler(src)
		total := timeBatches(s, batches)

		src2, err := prng.NewSource(name, []byte("ovh"))
		check(err)
		rd := prng.NewBitReader(src2)
		buf := make([]uint64, words)
		start := time.Now()
		for i := 0; i < batches; i++ {
			rd.Words(buf)
		}
		raw := time.Since(start)
		fmt.Printf("%-10s %14.0f %14.0f %9.0f%%\n", name,
			float64(total.Nanoseconds())/float64(batches),
			float64(raw.Nanoseconds())/float64(batches),
			100*float64(raw.Nanoseconds())/float64(total.Nanoseconds()))
	}
	fmt.Println("\npaper: 80–85% with Keccak, ≈60% with ChaCha; AES-NI suggested as faster still.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
