// Command samplebench regenerates Table 2 (sampler cost: this work vs the
// simple minimization of [21]) and the §7 PRNG-overhead measurement, and
// measures the concurrent serving pool.
//
// Usage:
//
//	samplebench                         # Table 2
//	samplebench -prng-overhead
//	samplebench -parallel               # build pipeline + pool throughput
//	samplebench -parallel -cache DIR    # ... with the on-disk circuit cache
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"ctgauss"
	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/registry"
	"ctgauss/internal/sampler"
	"ctgauss/internal/sampler/gen"
)

func main() {
	overhead := flag.Bool("prng-overhead", false, "measure the PRNG share of sampling time (§7)")
	parallelMode := flag.Bool("parallel", false, "measure parallel build, cache hits, and pool serving throughput")
	goroutines := flag.String("goroutines", "1,4,16", "comma-separated pool caller counts for -parallel")
	cacheDir := flag.String("cache", "", "on-disk circuit cache directory for -parallel (default: memory only)")
	sigma := flag.String("sigma", "2", "σ for -parallel")
	batches := flag.Int("batches", 20000, "64-sample batches per measurement")
	cyclesPerNs := flag.Float64("ghz", 2.6, "clock in GHz for the cycles column (paper: 2.6)")
	flag.Parse()

	// Point the process-wide registry at the cache directory before
	// anything can touch registry.Shared() (it latches the environment on
	// first use), so -cache governs both the measurements and the pools.
	if *cacheDir != "" {
		os.Setenv("CTGAUSS_CACHE_DIR", *cacheDir)
	}

	if *overhead {
		prngOverhead(*batches)
		return
	}
	if *parallelMode {
		parallelBench(*sigma, *goroutines, *batches)
		return
	}
	table2(*batches, *cyclesPerNs)
}

// parallelBench exercises the build-once/serve-many path end to end:
// serial vs parallel minimization, registry cache-hit latency, and pool
// throughput under concurrent callers.
func parallelBench(sigma, goroutines string, batches int) {
	fmt.Printf("build-once/serve-many — σ=%s, n=128, τ=13, %d CPUs\n\n", sigma, runtime.NumCPU())

	cfg := core.Config{Sigma: sigma, N: 128, TailCut: 13, Min: core.MinimizeExact}

	cfg.Workers = 1
	start := time.Now()
	_, err := core.Build(cfg)
	check(err)
	serial := time.Since(start)

	cfg.Workers = 0
	start = time.Now()
	_, err = core.Build(cfg)
	check(err)
	par := time.Since(start)
	fmt.Printf("core.Build serial   %12s\n", serial.Round(time.Microsecond))
	fmt.Printf("core.Build parallel %12s   (%.2fx)\n", par.Round(time.Microsecond), float64(serial)/float64(par))

	// The shared registry (cache dir set in main) serves both these
	// measurements and the pools below, so they share one artifact.
	reg := registry.Shared()
	start = time.Now()
	_, err = reg.Get(cfg)
	check(err)
	cold := time.Since(start)
	start = time.Now()
	art, err := reg.Get(cfg)
	check(err)
	hot := time.Since(start)
	fmt.Printf("registry cold get   %12s   (from disk: %v)\n", cold.Round(time.Microsecond), art.FromDisk)
	fmt.Printf("registry cache hit  %12s\n\n", hot.Round(time.Microsecond))

	fmt.Printf("%-10s %14s %16s\n", "callers", "ns/batch", "samples/sec")
	for _, field := range strings.Split(goroutines, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(field))
		check(err)
		if g < 1 {
			check(fmt.Errorf("-goroutines values must be ≥ 1, got %d", g))
		}
		pool, err := ctgauss.NewPoolWithConfig(ctgauss.Config{Sigma: sigma}, g)
		check(err)
		elapsed := drivePool(pool, g, batches)
		total := batches * g
		ns := float64(elapsed.Nanoseconds()) / float64(total)
		fmt.Printf("%-10d %14.0f %16.0f\n", g, ns, float64(total*64)/elapsed.Seconds())
	}
}

// drivePool runs g goroutines each drawing `batches` 64-sample batches.
func drivePool(pool *ctgauss.Pool, g, batches int) time.Duration {
	var wg sync.WaitGroup
	wg.Add(g)
	start := time.Now()
	for i := 0; i < g; i++ {
		go func() {
			defer wg.Done()
			dst := make([]int, 64)
			for b := 0; b < batches; b++ {
				pool.NextBatch(dst)
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func timeBatches(s *sampler.Bitsliced, batches int) time.Duration {
	dst := make([]int, 64)
	start := time.Now()
	for i := 0; i < batches; i++ {
		s.NextBatch(dst)
	}
	return time.Since(start)
}

func table2(batches int, ghz float64) {
	fmt.Println("Table 2 — cost of one 64-sample batch (σ, method → ns and ≈cycles @", ghz, "GHz)")
	fmt.Println()
	fmt.Printf("%-12s %-22s %12s %12s %14s\n", "sigma", "method", "ns/batch", "cycles", "wordops")
	for _, sigma := range []string{"2", "6.15543"} {
		split, err := core.Build(core.Config{Sigma: sigma, N: 128, TailCut: 13, Min: core.MinimizeExact})
		check(err)
		simple, err := core.BuildSimple(core.Config{Sigma: sigma, N: 128, TailCut: 13})
		check(err)

		s1 := split.NewSampler(prng.MustChaCha20([]byte("bench")))
		d1 := timeBatches(s1, batches)
		s2 := simple.NewSampler(prng.MustChaCha20([]byte("bench")))
		d2 := timeBatches(s2, batches)

		// The generated, compiled circuit (the paper's deployment form).
		fn, nin, nv, ok := gen.Lookup(sigma)
		if !ok {
			check(fmt.Errorf("no generated circuit for σ=%s", sigma))
		}
		sc := sampler.NewCompiled("compiled", fn, nin, nv, prng.MustChaCha20([]byte("bench")))
		dst := make([]int, 64)
		startC := time.Now()
		for i := 0; i < batches; i++ {
			sc.NextBatch(dst)
		}
		dc := time.Since(startC)

		ns1 := float64(d1.Nanoseconds()) / float64(batches)
		ns2 := float64(d2.Nanoseconds()) / float64(batches)
		nsc := float64(dc.Nanoseconds()) / float64(batches)
		fmt.Printf("%-12s %-22s %12.0f %12.0f %14d\n", sigma, "this work (compiled)", nsc, nsc*ghz, split.Program.OpCount())
		fmt.Printf("%-12s %-22s %12.0f %12.0f %14d\n", sigma, "this work (interp.)", ns1, ns1*ghz, split.Program.OpCount())
		fmt.Printf("%-12s %-22s %12.0f %12.0f %14d\n", sigma, "simple minim. [21]", ns2, ns2*ghz, simple.Program.OpCount())
		fmt.Printf("%-12s %-22s %11.0f%% improvement (interp. vs interp. baseline)\n\n", sigma, "", 100*(ns2-ns1)/ns2)
	}
	fmt.Println("paper (i7-6600U): σ=2: 3787 → 2293 cycles (37%); σ=6.15543: 11136 → 9880 (11%,")
	fmt.Println("baseline hand-optimized). Our naive-merge baseline is weaker than Espresso+gcc,")
	fmt.Println("so the measured improvement is larger; the ordering (split wins) is the claim.")
}

func prngOverhead(batches int) {
	fmt.Println("§7 — share of sampling time spent generating pseudorandom bits (σ=2, n=128)")
	fmt.Println()
	split, err := core.Build(core.Config{Sigma: "2", N: 128, TailCut: 13, Min: core.MinimizeExact})
	check(err)
	words := split.Program.NumInputs + 1
	fmt.Printf("%-10s %14s %14s %10s\n", "prng", "ns/batch", "prng ns/batch", "share")
	for _, name := range []string{"shake256", "chacha20", "aes-ctr"} {
		src, err := prng.NewSource(name, []byte("ovh"))
		check(err)
		s := split.NewSampler(src)
		total := timeBatches(s, batches)

		src2, err := prng.NewSource(name, []byte("ovh"))
		check(err)
		rd := prng.NewBitReader(src2)
		buf := make([]uint64, words)
		start := time.Now()
		for i := 0; i < batches; i++ {
			rd.Words(buf)
		}
		raw := time.Since(start)
		fmt.Printf("%-10s %14.0f %14.0f %9.0f%%\n", name,
			float64(total.Nanoseconds())/float64(batches),
			float64(raw.Nanoseconds())/float64(batches),
			100*float64(raw.Nanoseconds())/float64(total.Nanoseconds()))
	}
	fmt.Println("\npaper: 80–85% with Keccak, ≈60% with ChaCha; AES-NI suggested as faster still.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
