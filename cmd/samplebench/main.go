// Command samplebench regenerates Table 2 (sampler cost: this work vs the
// simple minimization of [21]) and the §7 PRNG-overhead measurement.
//
// Usage:
//
//	samplebench               # Table 2
//	samplebench -prng-overhead
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
	"ctgauss/internal/sampler/gen"
)

func main() {
	overhead := flag.Bool("prng-overhead", false, "measure the PRNG share of sampling time (§7)")
	batches := flag.Int("batches", 20000, "64-sample batches per measurement")
	cyclesPerNs := flag.Float64("ghz", 2.6, "clock in GHz for the cycles column (paper: 2.6)")
	flag.Parse()

	if *overhead {
		prngOverhead(*batches)
		return
	}
	table2(*batches, *cyclesPerNs)
}

func timeBatches(s *sampler.Bitsliced, batches int) time.Duration {
	dst := make([]int, 64)
	start := time.Now()
	for i := 0; i < batches; i++ {
		s.NextBatch(dst)
	}
	return time.Since(start)
}

func table2(batches int, ghz float64) {
	fmt.Println("Table 2 — cost of one 64-sample batch (σ, method → ns and ≈cycles @", ghz, "GHz)")
	fmt.Println()
	fmt.Printf("%-12s %-22s %12s %12s %14s\n", "sigma", "method", "ns/batch", "cycles", "wordops")
	for _, sigma := range []string{"2", "6.15543"} {
		split, err := core.Build(core.Config{Sigma: sigma, N: 128, TailCut: 13, Min: core.MinimizeExact})
		check(err)
		simple, err := core.BuildSimple(core.Config{Sigma: sigma, N: 128, TailCut: 13})
		check(err)

		s1 := split.NewSampler(prng.MustChaCha20([]byte("bench")))
		d1 := timeBatches(s1, batches)
		s2 := simple.NewSampler(prng.MustChaCha20([]byte("bench")))
		d2 := timeBatches(s2, batches)

		// The generated, compiled circuit (the paper's deployment form).
		var fn func(in, out []uint64)
		var nin, nv int
		if sigma == "2" {
			fn, nin, nv = gen.Sigma2Batch, gen.Sigma2BatchInputs, gen.Sigma2BatchValueBits
		} else {
			fn, nin, nv = gen.Sigma615543Batch, gen.Sigma615543BatchInputs, gen.Sigma615543BatchValueBits
		}
		sc := sampler.NewCompiled("compiled", fn, nin, nv, prng.MustChaCha20([]byte("bench")))
		dst := make([]int, 64)
		startC := time.Now()
		for i := 0; i < batches; i++ {
			sc.NextBatch(dst)
		}
		dc := time.Since(startC)

		ns1 := float64(d1.Nanoseconds()) / float64(batches)
		ns2 := float64(d2.Nanoseconds()) / float64(batches)
		nsc := float64(dc.Nanoseconds()) / float64(batches)
		fmt.Printf("%-12s %-22s %12.0f %12.0f %14d\n", sigma, "this work (compiled)", nsc, nsc*ghz, split.Program.OpCount())
		fmt.Printf("%-12s %-22s %12.0f %12.0f %14d\n", sigma, "this work (interp.)", ns1, ns1*ghz, split.Program.OpCount())
		fmt.Printf("%-12s %-22s %12.0f %12.0f %14d\n", sigma, "simple minim. [21]", ns2, ns2*ghz, simple.Program.OpCount())
		fmt.Printf("%-12s %-22s %11.0f%% improvement (interp. vs interp. baseline)\n\n", sigma, "", 100*(ns2-ns1)/ns2)
	}
	fmt.Println("paper (i7-6600U): σ=2: 3787 → 2293 cycles (37%); σ=6.15543: 11136 → 9880 (11%,")
	fmt.Println("baseline hand-optimized). Our naive-merge baseline is weaker than Espresso+gcc,")
	fmt.Println("so the measured improvement is larger; the ordering (split wins) is the claim.")
}

func prngOverhead(batches int) {
	fmt.Println("§7 — share of sampling time spent generating pseudorandom bits (σ=2, n=128)")
	fmt.Println()
	split, err := core.Build(core.Config{Sigma: "2", N: 128, TailCut: 13, Min: core.MinimizeExact})
	check(err)
	words := split.Program.NumInputs + 1
	fmt.Printf("%-10s %14s %14s %10s\n", "prng", "ns/batch", "prng ns/batch", "share")
	for _, name := range []string{"shake256", "chacha20", "aes-ctr"} {
		src, err := prng.NewSource(name, []byte("ovh"))
		check(err)
		s := split.NewSampler(src)
		total := timeBatches(s, batches)

		src2, err := prng.NewSource(name, []byte("ovh"))
		check(err)
		rd := prng.NewBitReader(src2)
		buf := make([]uint64, words)
		start := time.Now()
		for i := 0; i < batches; i++ {
			rd.Words(buf)
		}
		raw := time.Since(start)
		fmt.Printf("%-10s %14.0f %14.0f %9.0f%%\n", name,
			float64(total.Nanoseconds())/float64(batches),
			float64(raw.Nanoseconds())/float64(batches),
			100*float64(raw.Nanoseconds())/float64(total.Nanoseconds()))
	}
	fmt.Println("\npaper: 80–85% with Keccak, ≈60% with ChaCha; AES-NI suggested as faster still.")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
