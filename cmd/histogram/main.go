// Command histogram regenerates Fig. 5: histograms of the constant-time
// sampler output for σ = 2 and σ = 6.15543 (64×10⁷ samples in the paper;
// configurable here), rendered as ASCII alongside the ideal distribution,
// with the empirical statistical distance.
//
// Usage:
//
//	histogram -sigma 2 -samples 6400000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"ctgauss/internal/core"
	"ctgauss/internal/prng"
)

func main() {
	sigma := flag.String("sigma", "2", "standard deviation")
	samples := flag.Int("samples", 64*100000, "number of samples (paper: 64e7)")
	width := flag.Int("width", 60, "bar width in characters")
	flag.Parse()

	b, err := core.Build(core.Config{Sigma: *sigma, N: 128, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := b.NewSampler(prng.MustChaCha20([]byte("histogram")))

	counts := make(map[int]int)
	dst := make([]int, 64)
	batches := *samples / 64
	for i := 0; i < batches; i++ {
		s.NextBatch(dst)
		for _, v := range dst {
			counts[v]++
		}
	}
	total := float64(batches * 64)

	sf := 0.0
	fmt.Sscanf(*sigma, "%f", &sf)
	lo, hi := int(-4*sf), int(4*sf)
	peak := 0.0
	for v := lo; v <= hi; v++ {
		if f := float64(counts[v]) / total; f > peak {
			peak = f
		}
	}

	fmt.Printf("Fig. 5 — histogram, σ=%s, %d samples (paper: 64×10⁷)\n\n", *sigma, batches*64)
	var dist float64
	for v := lo; v <= hi; v++ {
		emp := float64(counts[v]) / total
		ideal := b.Table.SignedProb(v)
		dist += math.Abs(emp - ideal)
		bar := strings.Repeat("█", int(emp/peak*float64(*width)))
		fmt.Printf("%5d %8.5f |%s\n", v, emp, bar)
	}
	// Include values outside the printed window in the distance.
	for v, c := range counts {
		if v < lo || v > hi {
			dist += math.Abs(float64(c)/total - b.Table.SignedProb(v))
		}
	}
	fmt.Printf("\nempirical statistical distance to the n=128 table: %.3e", dist/2)
	fmt.Printf(" (sampling noise ≈ %.1e)\n", math.Sqrt(float64(len(counts)))/math.Sqrt(total))
}
