// Command ctgaussload drives a running ctgaussd and prints a JSON
// throughput report (the serving analogue of samplebench -json).  Its
// counters are designed to reconcile with the daemon's /metrics:
// requests against ctgaussd_requests_total, samples against
// ctgaussd_samples_served_total, signatures and verifications against
// their counters.  The report also carries the refill engine's prefetch
// ledger (prefetch_hits, prefetch_misses, prefetch_hit_ratio), scraped
// from ctgaussd_prefetch_{hits,misses}_total after the run — how often
// a served draw found its circuit evaluation already done.
//
// Usage:
//
//	ctgaussload                                      # 8 clients × 100 sample requests
//	ctgaussload -sigma 3.5                           # free-form σ through /v1/samples
//	ctgaussload -mode arbitrary -sigma 17.5 -mu 0.375
//	ctgaussload -mode arbitrary -hotkey -sigma 3.3   # ns/sample before vs after tier promotion
//	ctgaussload -mode sign -clients 4 -requests 50
//	ctgaussload -mode mix -count 256
//	ctgaussload -retries 5 -retry-backoff 50ms       # ride out 429/503 shedding
//	ctgaussload -stages                              # per-stage latency breakdown (daemon needs -trace)
//	ctgaussload -slowest 10                          # trace IDs of the 10 slowest requests
//	ctgaussload -addr http://gauss.internal:8754 -json report.json
//
// With -retries > 0, attempts the daemon sheds with 429 (queue full) or
// 503 (degraded/draining) are retried after a jittered exponential
// backoff, never sooner than the server's Retry-After header asks.  The
// report's "retries" field counts those extra attempts and
// "server_cancelled" carries the daemon's own
// ctgaussd_requests_cancelled_total tally after the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ctgauss/internal/server"
)

func main() {
	addr := flag.String("addr", "http://localhost:8754", "ctgaussd base URL")
	mode := flag.String("mode", "samples", "workload: samples, arbitrary, sign, verify, or mix")
	clients := flag.Int("clients", 8, "concurrent client loops")
	requests := flag.Int("requests", 100, "requests per client")
	count := flag.Int("count", 64, "samples per request (samples/arbitrary modes)")
	sigma := flag.String("sigma", "", "σ to request — any decimal the daemon's arbitrary layer admits, not just precompiled values (empty = server default; arbitrary mode default 3.3)")
	mu := flag.Float64("mu", 0, "center μ for arbitrary-mode requests")
	message := flag.String("message", "ctgaussload message", "payload for sign/verify requests")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	retries := flag.Int("retries", 0, "retries per request on 429/503 (jittered exponential backoff, floored by the server's Retry-After)")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "base backoff before the first retry")
	hotkey := flag.Bool("hotkey", false, "arbitrary mode only: measure ns/sample before and after the daemon promotes -sigma to a compiled pool (needs -tier-promote-rps on the daemon)")
	hotkeyTimeout := flag.Duration("hotkey-timeout", 60*time.Second, "promotion wait budget for -hotkey")
	stages := flag.Bool("stages", false, "report the per-stage latency breakdown from the daemon's stage trailers, reconciled against its ctgaussd_stage_seconds histograms (daemon needs -trace)")
	slowest := flag.Int("slowest", 0, "list the trace IDs of the K slowest requests (0 = off; -stages defaults it to 5)")
	jsonPath := flag.String("json", "-", "report destination (\"-\" = stdout)")
	flag.Parse()

	report, err := server.RunLoad(server.LoadConfig{
		BaseURL:       *addr,
		Mode:          *mode,
		Clients:       *clients,
		Requests:      *requests,
		Count:         *count,
		Sigma:         *sigma,
		Mu:            *mu,
		Message:       []byte(*message),
		Timeout:       *timeout,
		Retries:       *retries,
		RetryBackoff:  *retryBackoff,
		HotKey:        *hotkey,
		HotKeyTimeout: *hotkeyTimeout,
		Stages:        *stages,
		SlowestK:      *slowest,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctgaussload:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctgaussload:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *jsonPath == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*jsonPath, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctgaussload:", err)
		os.Exit(1)
	}
	if report.Errors > 0 {
		os.Exit(2)
	}
	if report.HotKey != nil && !report.HotKey.Promoted {
		fmt.Fprintln(os.Stderr, "ctgaussload: hot key was never promoted within the wait budget")
		os.Exit(2)
	}
}
