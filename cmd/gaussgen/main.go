// Command gaussgen is the paper's generator tool: given σ and a precision,
// it runs the full pipeline (probability matrix → DDG tree → list L →
// sublists → exact minimization → constant-time mux composition) and emits
// a standalone Go source file with the bitsliced sampler, plus a summary
// of every pipeline stage.
//
// Usage:
//
//	gaussgen -sigma 2 -n 128 -o sampler_gen.go -pkg mypkg -func Sample64
package main

import (
	"flag"
	"fmt"
	"os"

	"ctgauss/internal/core"
)

func main() {
	sigma := flag.String("sigma", "2", "standard deviation (decimal string)")
	n := flag.Int("n", 128, "precision bits")
	tau := flag.Float64("tau", 13, "tail-cut factor")
	pkg := flag.String("pkg", "sampler", "package name for generated code")
	fn := flag.String("func", "Sample64", "function name for generated code")
	out := flag.String("o", "", "output file (default: stdout; use -stats to skip code)")
	statsOnly := flag.Bool("stats", false, "print pipeline statistics only")
	min := flag.String("min", "exact", "minimizer: exact | greedy | none")
	flag.Parse()

	var m core.Minimizer
	switch *min {
	case "exact":
		m = core.MinimizeExact
	case "greedy":
		m = core.MinimizeGreedy
	case "none":
		m = core.MinimizeNone
	default:
		fmt.Fprintf(os.Stderr, "unknown minimizer %q\n", *min)
		os.Exit(2)
	}

	b, err := core.Build(core.Config{Sigma: *sigma, N: *n, TailCut: *tau, Min: m})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Fprintf(os.Stderr, "pipeline summary (σ=%s, n=%d, τ=%g, min=%s)\n", *sigma, *n, *tau, m)
	fmt.Fprintf(os.Stderr, "  support [0, %d], %d output bits\n", b.Table.Support, b.Program.ValueBits)
	fmt.Fprintf(os.Stderr, "  list L: %d leaf strings, Δ=%d, %d sublists (max κ=%d)\n",
		b.LeafCount, b.Tree.Delta, b.SublistCount, b.Tree.MaxK)
	fmt.Fprintf(os.Stderr, "  minimized: %d cubes, %d literals\n", b.TotalCubes, b.TotalLits)
	fmt.Fprintf(os.Stderr, "  program: %d word ops, %d input words (+1 sign) per 64-sample batch\n",
		b.Program.OpCount(), b.Program.NumInputs)
	fmt.Fprintf(os.Stderr, "  randomness: %d bits per sample\n", (b.Program.NumInputs+1)*64/64)

	if *statsOnly {
		return
	}
	code := b.Program.EmitGo(*pkg, *fn)
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(code))
}
