// Command ctcheck runs the dudect-style constant-time analysis the paper
// applies to its sampler (§5.2): Welch's t-test between timing classes,
// plus the deterministic work-count analysis, for the bitsliced sampler
// and the CDT baselines.
//
// Usage:
//
//	ctcheck -measurements 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"ctgauss/internal/core"
	"ctgauss/internal/ctcheck"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

func main() {
	meas := flag.Int("measurements", 4000, "timing samples per class")
	flag.Parse()

	b, err := core.Build(core.Config{Sigma: "2", N: 128, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("dudect-style timing analysis (classes: two fixed PRNG seeds)")
	fmt.Println("|t| >", ctcheck.Threshold, "indicates a timing leak; wall-clock noise under a GC runtime")
	fmt.Println("makes the deterministic work-count analysis below the stronger evidence.")
	fmt.Println()

	timing := func(name string, mk func(seed string) func()) {
		r := ctcheck.CompareTiming(mk("class-A-seed"), mk("class-B-seed"),
			ctcheck.Options{Measurements: *meas, InnerReps: 16})
		fmt.Printf("  %-22s %s\n", name, r)
	}
	timing("bitsliced (this work)", func(seed string) func() {
		s := b.NewSampler(prng.MustChaCha20([]byte(seed)))
		dst := make([]int, 64)
		return func() { s.NextBatch(dst) }
	})
	timing("cdt-bytescan [13]", func(seed string) func() {
		s := sampler.NewByteScanCDT(b.Table, prng.MustChaCha20([]byte(seed)))
		return func() {
			for i := 0; i < 64; i++ {
				s.Next()
			}
		}
	})
	timing("cdt-linear-ct [7]", func(seed string) func() {
		s := sampler.NewLinearCDT(b.Table, prng.MustChaCha20([]byte(seed)))
		return func() {
			for i := 0; i < 64; i++ {
				s.Next()
			}
		}
	})

	fmt.Println()
	fmt.Println("deterministic work-count analysis (10⁴ samples each):")

	// Bitsliced: bits consumed per refill must be exactly constant.  The
	// default sampler evaluates sampler.DefaultWidth batches per refill,
	// so the draw cadence is one fixed block per width batches; width 1
	// is the paper's per-batch form.  Both must be constant.
	for _, width := range []int{1, sampler.DefaultWidth} {
		s := b.NewWideSampler(prng.MustChaCha20([]byte("wc")), width)
		var w ctcheck.WorkTrace
		prev := uint64(0)
		dst := make([]int, 64)
		for i := 0; i < 200; i++ {
			for j := 0; j < width; j++ {
				s.NextBatch(dst)
			}
			w.Record(s.BitsUsed() - prev)
			prev = s.BitsUsed()
		}
		fmt.Printf("  %-22s constant randomness per refill (width %d): %v (%d bits)\n",
			"bitsliced (this work)", width, w.Constant(), w.Counts[0])
	}

	bs := sampler.NewByteScanCDT(b.Table, prng.MustChaCha20([]byte("wc2")))
	var wb ctcheck.WorkTrace
	secret := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		before := bs.Steps
		v := bs.Next()
		if v < 0 {
			v = -v
		}
		wb.Record(bs.Steps - before)
		secret = append(secret, float64(v))
	}
	fmt.Printf("  %-22s constant work: %v, corr(work, |sample|) = %+.3f  ← leak\n",
		"cdt-bytescan [13]", wb.Constant(), wb.Correlation(secret))

	lin := sampler.NewLinearCDT(b.Table, prng.MustChaCha20([]byte("wc3")))
	var wl ctcheck.WorkTrace
	for i := 0; i < 10000; i++ {
		before := lin.Steps
		lin.Next()
		wl.Record(lin.Steps - before)
	}
	fmt.Printf("  %-22s constant work: %v (%d table comparisons per sample)\n",
		"cdt-linear-ct [7]", wl.Constant(), wl.Counts[0])
}
