// Command ctcheck is the acceptance-harness driver: the dudect-style
// constant-time analysis the paper applies to its sampler (§5.2), the
// statistical (σ, μ) grid cross-validated against the high-precision
// bigfp reference, and the golden-vector stream pins — emitting one
// machine-readable JSON report CI gates on (see docs/ACCEPTANCE.md).
//
// Modes (combinable; default -ct, the historical behaviour):
//
//	ctcheck -ct                          constant-time pass (dudect + work counts)
//	ctcheck -ct -sigma 2 -n 64           ... for one configuration
//	ctcheck -grid                        full statistical grid, three surfaces
//	ctcheck -grid -smoke                 budgeted PR grid
//	ctcheck -golden verify               check pinned streams at every depth
//	ctcheck -golden record               re-pin streams (intentional changes only)
//	ctcheck -grid -ct -json report.json  machine-readable artifact; exit 1 on failure
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ctgauss/internal/acceptance"
	"ctgauss/internal/sampler/gen"
)

func main() {
	var (
		grid    = flag.Bool("grid", false, "run the statistical (σ, μ) grid over all serving surfaces")
		golden  = flag.String("golden", "", "golden-vector mode: record or verify")
		ct      = flag.Bool("ct", false, "run the constant-time pass (default when no mode is given)")
		smoke   = flag.Bool("smoke", false, "budgeted pass: fewer cells, fewer samples, fewer measurements")
		jsonOut = flag.String("json", "", "write the machine-readable report to this path (- for stdout)")

		sigmas  = flag.String("sigma", "", "comma-separated σ list for -ct (default: all registry-served σ)")
		n       = flag.Int("n", 128, "probability precision bits for -ct builds")
		tailcut = flag.Float64("tailcut", 13, "tail cut τ for -ct builds")
		meas    = flag.Int("measurements", 0, "timing samples per dudect class (0 = mode default)")

		samples    = flag.Int("samples", 0, "samples per grid cell (0 = mode default)")
		goldenFile = flag.String("golden-file", "internal/acceptance/testdata/golden.json", "golden vector file")
	)
	flag.Parse()
	if !*grid && *golden == "" && !*ct {
		*ct = true
	}

	// Human-readable progress moves to stderr when the JSON report owns
	// stdout, so `ctcheck -json - | jq` stays parseable.
	hout := os.Stdout
	if *jsonOut == "-" {
		hout = os.Stderr
	}
	logf := func(format string, args ...any) { fmt.Fprintf(hout, format+"\n", args...) }
	rep := &acceptance.Report{Smoke: *smoke}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ctcheck:", err)
		os.Exit(1)
	}

	if *golden != "" {
		rep.Modes = append(rep.Modes, "golden-"+*golden)
		switch *golden {
		case "record":
			gf, err := acceptance.RecordGolden(*goldenFile)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(hout, "recorded %d golden vectors to %s\n", len(gf.Vectors), *goldenFile)
			for _, v := range gf.Vectors {
				fmt.Fprintf(hout, "  %-26s %s…\n", v.Name, v.SHA256[:16])
				rep.Golden = append(rep.Golden, acceptance.GoldenResult{
					Name: v.Name, PRNG: v.PRNG, Width: v.Width, SHA256: v.SHA256, Pass: true,
				})
			}
		case "verify":
			fmt.Fprintln(hout, "golden-vector verification (every PRNG × width × prefetch depth):")
			results, err := acceptance.VerifyGolden(*goldenFile)
			if err != nil {
				fail(err)
			}
			rep.Golden = results
			for _, r := range results {
				if r.Pass {
					fmt.Fprintf(hout, "  %-26s ok at depths %v\n", r.Name, r.DepthsVerified)
				} else {
					fmt.Fprintf(hout, "  %-26s FAIL: %s\n", r.Name, r.Err)
				}
			}
		default:
			fail(fmt.Errorf("unknown -golden mode %q (want record or verify)", *golden))
		}
	}

	if *grid {
		rep.Modes = append(rep.Modes, "grid")
		kind := "full"
		if *smoke {
			kind = "smoke"
		}
		fmt.Fprintf(hout, "statistical grid (%s): compiled + convolved + http surfaces vs bigfp reference\n", kind)
		g, err := acceptance.RunGrid(acceptance.GridOptions{
			Smoke:          *smoke,
			SamplesPerCell: *samples,
			Logf:           logf,
		})
		if err != nil {
			fail(err)
		}
		rep.Grid = g
		fmt.Fprintf(hout, "grid: %d cells, pass=%v\n", len(g.Cells), g.Pass)
	}

	if *ct {
		rep.Modes = append(rep.Modes, "ct")
		var sigmaList []string
		if *sigmas != "" {
			for _, s := range strings.Split(*sigmas, ",") {
				if s = strings.TrimSpace(s); s != "" {
					sigmaList = append(sigmaList, s)
				}
			}
		} else if !*smoke {
			sigmaList = gen.Sigmas()
		}
		fmt.Fprintln(hout, "dudect-style timing analysis + deterministic work counts")
		fmt.Fprintln(hout, "(wall clock under a GC runtime is noisy; the work ledgers are the exact evidence)")
		timing, work, err := acceptance.RunCT(acceptance.CTOptions{
			Sigmas:       sigmaList,
			N:            *n,
			TailCut:      *tailcut,
			Measurements: *meas,
			Smoke:        *smoke,
			Logf:         logf,
		})
		if err != nil {
			fail(err)
		}
		rep.Timing, rep.Work = timing, work
	}

	rep.Finalize()
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fail(err)
		}
	}
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "ctcheck: FAIL")
		os.Exit(1)
	}
	fmt.Fprintln(hout, "ctcheck: PASS")
}
