// Command gencircuits regenerates the checked-in compiled sampler circuits
// in internal/sampler/gen (run via go:generate in that package).
package main

import (
	"fmt"
	"os"

	"ctgauss/internal/core"
)

func main() {
	for _, cfg := range []struct{ sigma, file, fn string }{
		{"2", "internal/sampler/gen/sigma2.go", "Sigma2Batch"},
		{"6.15543", "internal/sampler/gen/sigma615543.go", "Sigma615543Batch"},
	} {
		b, err := core.Build(core.Config{Sigma: cfg.sigma, N: 128, TailCut: 13, Min: core.MinimizeExact})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src := b.Program.EmitGo("gen", cfg.fn)
		src += fmt.Sprintf("\n// %sInputs is the number of packed input words %s consumes.\nconst %sInputs = %d\n\n// %sValueBits is the number of output magnitude bits.\nconst %sValueBits = %d\n",
			cfg.fn, cfg.fn, cfg.fn, b.Program.NumInputs, cfg.fn, cfg.fn, b.Program.ValueBits)
		if err := os.WriteFile(cfg.file, []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d ops)\n", cfg.file, b.Program.OpCount())
	}
}
