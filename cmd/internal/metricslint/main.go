// Command metricslint validates a Prometheus text exposition against
// the rules internal/obs.LintMetrics enforces: every sample preceded by
// a # TYPE declaration, no duplicate or interleaved families, families
// sorted by name, counters ending in _total, histogram _bucket samples
// carrying le, numeric values.  CI boots ctgaussd and points this at
// its /metrics so an unregistered or misnamed family fails the build
// before a dashboard ever sees it.
//
// Usage:
//
//	metricslint -addr http://localhost:8754   # scrape a live daemon's /metrics
//	metricslint -file exposition.txt          # lint a saved scrape
//	ctgaussd & curl -s :8754/metrics | metricslint   # stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"ctgauss/internal/obs"
)

func main() {
	addr := flag.String("addr", "", "ctgaussd base URL to scrape (lints GET <addr>/metrics)")
	file := flag.String("file", "", "exposition file to lint (\"-\" or empty with no -addr = stdin)")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout for -addr")
	flag.Parse()

	var src io.Reader
	var label string
	switch {
	case *addr != "" && *file != "":
		fmt.Fprintln(os.Stderr, "metricslint: -addr and -file are mutually exclusive")
		os.Exit(1)
	case *addr != "":
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(*addr + "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricslint:", err)
			os.Exit(1)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "metricslint: GET %s/metrics: %s\n", *addr, resp.Status)
			os.Exit(1)
		}
		src = io.LimitReader(resp.Body, 64<<20)
		label = *addr + "/metrics"
	case *file != "" && *file != "-":
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metricslint:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
		label = *file
	default:
		src = os.Stdin
		label = "stdin"
	}

	errs := obs.LintMetrics(src)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", label, e)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "metricslint: %s: %d violation(s)\n", label, len(errs))
		os.Exit(1)
	}
	fmt.Printf("metricslint: %s: clean\n", label)
}
