// Command ctgaussd serves the repo's constant-time Gaussian sampling and
// Falcon signing pools over HTTP: batched draws at /v1/samples (request
// coalescing over a ctgauss.Pool per σ), /v1/falcon/sign and
// /v1/falcon/verify on a sharded signer pool, plus /healthz and
// Prometheus-text /metrics.  See docs/SERVING.md for the API reference.
//
// Usage:
//
//	ctgaussd                                  # σ=2, falcon-512, :8754
//	ctgaussd -sigmas 2,6.15543 -shards 8
//	ctgaussd -seed random                     # non-reproducible production seeds
//	ctgaussd -cache /var/cache/ctgauss        # persist circuits across restarts
//	ctgaussd -prefetch 4                      # deeper refill lookahead per shard
//	ctgaussd -prefetch sync                   # inline refills (pre-engine behaviour)
//	ctgaussd -prefetch 8,6.15543=sync         # per-σ depth overrides
//	ctgaussd -falcon-n 0                      # sampling only
//	ctgaussd -arbitrary=false                 # precompiled σ menu only
//	ctgaussd -arbitrary-bases 2,6.15543       # convolution base set
//	ctgaussd -tier-promote-rps 5000           # promote hot free-form σ to compiled pools
//	ctgaussd -falcon-kind convolve            # SamplerZ via the convolution layer
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests drain (bounded by -drain-timeout), then
// the process exits.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ctgauss/falcon"
	"ctgauss/internal/server"
)

func main() {
	addr := flag.String("addr", ":8754", "listen address")
	sigmas := flag.String("sigmas", "2", "comma-separated σ values to serve (first is the default)")
	shards := flag.Int("shards", 0, "sampling pool shards per σ (0 = NumCPU)")
	seed := flag.String("seed", "", "master seed: hex, 'random' for fresh entropy, empty for the fixed dev seed")
	prng := flag.String("prng", "chacha20", "pool PRNG: chacha20, shake256, aes-ctr")
	prefetch := flag.String("prefetch", "", "refill lookahead per pool shard: a depth (e.g. 4), 'sync' for inline refills, or per-σ overrides '2=4,6.15543=sync' (empty = double buffering)")
	arbitrary := flag.Bool("arbitrary", true, "serve free-form (σ, μ) at /v1/arbitrary and free-form σ at /v1/samples")
	arbBases := flag.String("arbitrary-bases", "", "comma-separated base-set σ values for the convolution layer (default 2,6.15543)")
	arbShards := flag.Int("arbitrary-shards", 0, "arbitrary sampler shards (0 = NumCPU)")
	tierPromoteRPS := flag.Float64("tier-promote-rps", 0, "promote a free-form σ to a compiled pool when its sample rate reaches this (samples/sec over -tier-window; 0 disables tiering)")
	tierMaxPools := flag.Int("tier-max-pools", 4, "concurrently promoted compiled pools")
	tierWindow := flag.Duration("tier-window", 10*time.Second, "sliding window the tier promotion rate is measured over")
	falconN := flag.Int("falcon-n", 512, "Falcon ring degree (256/512/1024); 0 disables the Falcon endpoints")
	falconKind := flag.String("falcon-kind", "bitsliced", "base sampler: bitsliced, cdt, bytescan, linear, convolve")
	falconShards := flag.Int("falcon-shards", 0, "signer pool shards (0 = NumCPU)")
	queue := flag.Int("queue", 256, "per-endpoint admission queue depth (excess load gets 429)")
	maxCount := flag.Int("max-count", 65536, "largest per-request sample count")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request handler deadline (0 = none); a draw stuck behind a restarting shard fails with 503 + Retry-After at the deadline")
	cacheDir := flag.String("cache", "", "circuit cache directory (sets CTGAUSS_CACHE_DIR)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	flag.Parse()

	if *cacheDir != "" {
		// Must land before the first registry.Shared() use (pool builds in
		// server.New latch it).
		os.Setenv("CTGAUSS_CACHE_DIR", *cacheDir)
	}

	masterSeed, reproducible, err := resolveSeed(*seed)
	if err != nil {
		log.Fatalf("ctgaussd: %v", err)
	}
	kind, err := parseKind(*falconKind)
	if err != nil {
		log.Fatalf("ctgaussd: %v", err)
	}

	prefetchGlobal, prefetchBySigma, err := parsePrefetch(*prefetch)
	if err != nil {
		log.Fatalf("ctgaussd: %v", err)
	}

	cfg := server.Config{
		Sigmas:           splitList(*sigmas),
		PoolShards:       *shards,
		Seed:             masterSeed,
		PRNG:             *prng,
		Prefetch:         prefetchGlobal,
		PrefetchBySigma:  prefetchBySigma,
		FalconN:          *falconN,
		FalconKind:       kind,
		FalconShards:     *falconShards,
		MaxCount:         *maxCount,
		QueueDepth:       *queue,
		RequestTimeout:   *requestTimeout,
		DisableArbitrary: !*arbitrary,
		ArbitraryBases:   splitList(*arbBases),
		ArbitraryShards:  *arbShards,
		TierPromoteRPS:   *tierPromoteRPS,
		TierMaxPools:     *tierMaxPools,
		TierWindow:       *tierWindow,
	}
	buildStart := time.Now()
	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("ctgaussd: %v", err)
	}
	log.Printf("pools ready in %s (σ = %s, falcon-n = %d)",
		time.Since(buildStart).Round(time.Millisecond), *sigmas, *falconN)
	if s.Tier() != nil {
		log.Printf("tiering: promote ≥ %g samples/s over %s (≤ %d pools)",
			*tierPromoteRPS, *tierWindow, *tierMaxPools)
	}
	if !reproducible {
		log.Printf("seed: fresh entropy (streams are not reproducible)")
	} else {
		log.Printf("seed: deterministic — development only, use -seed random in production")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("ctgaussd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight requests (budget %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan struct{})
	go func() {
		// Close drains (refusing new work, waiting for admitted requests)
		// and then stops the refill runtime's producer goroutines;
		// Shutdown closes the listener and waits for connections.  Run
		// both so a request admitted just before the signal still
		// completes before the engines stop.
		s.Close()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("ctgaussd: shutdown: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
		log.Printf("drained cleanly")
	case <-shutdownCtx.Done():
		log.Printf("drain budget exceeded, exiting with requests in flight")
	}
}

// resolveSeed maps the -seed flag to seed bytes; the bool reports
// whether the run is reproducible.
func resolveSeed(s string) ([]byte, bool, error) {
	switch s {
	case "":
		return nil, true, nil // server.New's fixed dev default
	case "random":
		seed := make([]byte, 32)
		if _, err := rand.Read(seed); err != nil {
			return nil, false, fmt.Errorf("reading entropy: %w", err)
		}
		return seed, false, nil
	default:
		seed, err := hex.DecodeString(s)
		if err != nil {
			return nil, false, fmt.Errorf("-seed must be hex, 'random' or empty: %w", err)
		}
		return seed, true, nil
	}
}

func parseKind(s string) (falcon.BaseSamplerKind, error) {
	switch s {
	case "bitsliced":
		return falcon.BaseBitsliced, nil
	case "cdt":
		return falcon.BaseCDT, nil
	case "bytescan":
		return falcon.BaseByteScanCDT, nil
	case "linear":
		return falcon.BaseLinearCDT, nil
	case "convolve":
		return falcon.BaseConvolve, nil
	}
	return 0, fmt.Errorf("unknown -falcon-kind %q (want bitsliced, cdt, bytescan, linear or convolve)", s)
}

// parsePrefetch maps the -prefetch flag to server config: a bare depth
// ("4") or "sync" applies to every pool; "σ=depth" entries override per
// σ.  Entries combine: "-prefetch 8,6.15543=sync" runs σ=6.15543
// synchronously and everything else 8 deep.
func parsePrefetch(s string) (global int, bySigma map[string]int, err error) {
	parseDepth := func(v string) (int, error) {
		if v == "sync" {
			return -1, nil
		}
		d, err := strconv.Atoi(v)
		if err != nil || d < 0 {
			return 0, fmt.Errorf("-prefetch depth %q must be a non-negative integer or 'sync'", v)
		}
		if d == 0 {
			return -1, nil // 0 refills of lookahead = synchronous
		}
		return d, nil
	}
	for _, field := range splitList(s) {
		if sigma, v, ok := strings.Cut(field, "="); ok {
			d, err := parseDepth(v)
			if err != nil {
				return 0, nil, err
			}
			if bySigma == nil {
				bySigma = make(map[string]int)
			}
			bySigma[strings.TrimSpace(sigma)] = d
			continue
		}
		d, err := parseDepth(field)
		if err != nil {
			return 0, nil, err
		}
		global = d
	}
	return global, bySigma, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
