// Command ctgaussd serves the repo's constant-time Gaussian sampling and
// Falcon signing pools over HTTP: batched draws at /v1/samples (request
// coalescing over a ctgauss.Pool per σ), /v1/falcon/sign and
// /v1/falcon/verify on a sharded signer pool, plus /healthz and
// Prometheus-text /metrics.  See docs/SERVING.md for the API reference.
//
// Usage:
//
//	ctgaussd                                  # σ=2, falcon-512, :8754
//	ctgaussd -sigmas 2,6.15543 -shards 8
//	ctgaussd -seed random                     # non-reproducible production seeds
//	ctgaussd -cache /var/cache/ctgauss        # persist circuits across restarts
//	ctgaussd -prefetch 4                      # deeper refill lookahead per shard
//	ctgaussd -prefetch sync                   # inline refills (pre-engine behaviour)
//	ctgaussd -prefetch 8,6.15543=sync         # per-σ depth overrides
//	ctgaussd -falcon-n 0                      # sampling only
//	ctgaussd -arbitrary=false                 # precompiled σ menu only
//	ctgaussd -arbitrary-bases 2,6.15543       # convolution base set
//	ctgaussd -tier-promote-rps 5000           # promote hot free-form σ to compiled pools
//	ctgaussd -falcon-kind convolve            # SamplerZ via the convolution layer
//	ctgaussd -trace -slow-request 50ms        # stage tracing + slow-request log
//	ctgaussd -log-format json                 # structured logs for collectors
//	ctgaussd -debug-addr 127.0.0.1:8755       # pprof/runtime-trace on a private listener
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests drain (bounded by -drain-timeout), then
// the process exits.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ctgauss/falcon"
	"ctgauss/internal/bitslice/dispatch"
	"ctgauss/internal/obs"
	"ctgauss/internal/server"
)

func main() {
	addr := flag.String("addr", ":8754", "listen address")
	sigmas := flag.String("sigmas", "2", "comma-separated σ values to serve (first is the default)")
	shards := flag.Int("shards", 0, "sampling pool shards per σ (0 = NumCPU)")
	seed := flag.String("seed", "", "master seed: hex, 'random' for fresh entropy, empty for the fixed dev seed")
	prng := flag.String("prng", "chacha20", "pool PRNG: chacha20, shake256, aes-ctr")
	prefetch := flag.String("prefetch", "", "refill lookahead per pool shard: a depth (e.g. 4), 'sync' for inline refills, or per-σ overrides '2=4,6.15543=sync' (empty = double buffering)")
	arbitrary := flag.Bool("arbitrary", true, "serve free-form (σ, μ) at /v1/arbitrary and free-form σ at /v1/samples")
	arbBases := flag.String("arbitrary-bases", "", "comma-separated base-set σ values for the convolution layer (default 2,6.15543)")
	arbShards := flag.Int("arbitrary-shards", 0, "arbitrary sampler shards (0 = NumCPU)")
	tierPromoteRPS := flag.Float64("tier-promote-rps", 0, "promote a free-form σ to a compiled pool when its sample rate reaches this (samples/sec over -tier-window; 0 disables tiering)")
	tierMaxPools := flag.Int("tier-max-pools", 4, "concurrently promoted compiled pools")
	tierWindow := flag.Duration("tier-window", 10*time.Second, "sliding window the tier promotion rate is measured over")
	falconN := flag.Int("falcon-n", 512, "Falcon ring degree (256/512/1024); 0 disables the Falcon endpoints")
	falconKind := flag.String("falcon-kind", "bitsliced", "base sampler: bitsliced, cdt, bytescan, linear, convolve")
	falconShards := flag.Int("falcon-shards", 0, "signer pool shards (0 = NumCPU)")
	queue := flag.Int("queue", 256, "per-endpoint admission queue depth (excess load gets 429)")
	maxCount := flag.Int("max-count", 65536, "largest per-request sample count")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request handler deadline (0 = none); a draw stuck behind a restarting shard fails with 503 + Retry-After at the deadline")
	cacheDir := flag.String("cache", "", "circuit cache directory (sets CTGAUSS_CACHE_DIR)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	trace := flag.Bool("trace", false, "per-request stage tracing: X-Ctgauss-Trace IDs, stage trailers and ctgaussd_stage_seconds histograms")
	slowRequest := flag.Duration("slow-request", 0, "log requests slower than this with their stage breakdown (implies -trace; 0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	debugAddr := flag.String("debug-addr", "", "separate listener for /debug/pprof (profiles, runtime traces); keep it private — empty disables")
	version := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *version {
		b := obs.Build()
		fmt.Printf("ctgaussd %s (%s", b.Version, b.GoVersion)
		if b.Revision != "" {
			rev := b.Revision
			if len(rev) > 12 {
				rev = rev[:12]
			}
			fmt.Printf(", %s", rev)
			if b.Modified {
				fmt.Printf("+dirty")
			}
		}
		simd := dispatch.Snapshot()
		fmt.Printf(") simd=%s width=%d available=%s\n",
			simd.Backend, simd.Width, strings.Join(simd.Available, ","))
		if simd.OverrideError != "" {
			fmt.Printf("simd override: %s\n", simd.OverrideError)
		}
		return
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctgaussd: %v\n", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)
	fatalf := func(format string, args ...any) {
		logger.Error(fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	if *cacheDir != "" {
		// Must land before the first registry.Shared() use (pool builds in
		// server.New latch it).
		os.Setenv("CTGAUSS_CACHE_DIR", *cacheDir)
	}

	masterSeed, reproducible, err := resolveSeed(*seed)
	if err != nil {
		fatalf("%v", err)
	}
	kind, err := parseKind(*falconKind)
	if err != nil {
		fatalf("%v", err)
	}

	prefetchGlobal, prefetchBySigma, err := parsePrefetch(*prefetch)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := server.Config{
		Sigmas:           splitList(*sigmas),
		PoolShards:       *shards,
		Seed:             masterSeed,
		PRNG:             *prng,
		Prefetch:         prefetchGlobal,
		PrefetchBySigma:  prefetchBySigma,
		FalconN:          *falconN,
		FalconKind:       kind,
		FalconShards:     *falconShards,
		MaxCount:         *maxCount,
		QueueDepth:       *queue,
		RequestTimeout:   *requestTimeout,
		DisableArbitrary: !*arbitrary,
		ArbitraryBases:   splitList(*arbBases),
		ArbitraryShards:  *arbShards,
		TierPromoteRPS:   *tierPromoteRPS,
		TierMaxPools:     *tierMaxPools,
		TierWindow:       *tierWindow,
		Trace:            *trace,
		SlowRequest:      *slowRequest,
		Logger:           logger,
	}
	buildStart := time.Now()
	s, err := server.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	b := obs.Build()
	logger.Info("pools ready",
		"build_time", time.Since(buildStart).Round(time.Millisecond).String(),
		"sigmas", *sigmas, "falcon_n", *falconN,
		"version", b.Version, "go_version", b.GoVersion,
		"simd", dispatch.Active().String(), "simd_width", dispatch.Active().NativeWidth())
	if msg := dispatch.Snapshot().OverrideError; msg != "" {
		logger.Warn("simd override not honored", "detail", msg)
	}
	if s.Tier() != nil {
		logger.Info("tiering enabled",
			"promote_rps", *tierPromoteRPS, "window", tierWindow.String(), "max_pools", *tierMaxPools)
	}
	if !reproducible {
		logger.Info("seed: fresh entropy (streams are not reproducible)")
	} else {
		logger.Warn("seed: deterministic — development only, use -seed random in production")
	}
	if *trace || *slowRequest > 0 {
		logger.Info("tracing enabled", "slow_request", slowRequest.String())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The profiling surface lives on its own listener so the serving
	// address never exposes pprof.  Bind it to loopback or a private
	// interface: profiles and runtime traces leak internals by design.
	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err.Error())
			}
		}()
		logger.Info("debug listener up (keep it private)", "addr", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	logger.Info("shutting down: draining in-flight requests", "budget", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan struct{})
	go func() {
		// Close drains (refusing new work, waiting for admitted requests)
		// and then stops the refill runtime's producer goroutines;
		// Shutdown closes the listener and waits for connections.  Run
		// both so a request admitted just before the signal still
		// completes before the engines stop.
		s.Close()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("shutdown", "error", err.Error())
		}
		if debugSrv != nil {
			debugSrv.Shutdown(shutdownCtx)
		}
		close(done)
	}()
	select {
	case <-done:
		logger.Info("drained cleanly")
	case <-shutdownCtx.Done():
		logger.Warn("drain budget exceeded, exiting with requests in flight")
	}
}

// buildLogger maps the -log-format/-log-level flags to a slog.Logger on
// stderr.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// resolveSeed maps the -seed flag to seed bytes; the bool reports
// whether the run is reproducible.
func resolveSeed(s string) ([]byte, bool, error) {
	switch s {
	case "":
		return nil, true, nil // server.New's fixed dev default
	case "random":
		seed := make([]byte, 32)
		if _, err := rand.Read(seed); err != nil {
			return nil, false, fmt.Errorf("reading entropy: %w", err)
		}
		return seed, false, nil
	default:
		seed, err := hex.DecodeString(s)
		if err != nil {
			return nil, false, fmt.Errorf("-seed must be hex, 'random' or empty: %w", err)
		}
		return seed, true, nil
	}
}

func parseKind(s string) (falcon.BaseSamplerKind, error) {
	switch s {
	case "bitsliced":
		return falcon.BaseBitsliced, nil
	case "cdt":
		return falcon.BaseCDT, nil
	case "bytescan":
		return falcon.BaseByteScanCDT, nil
	case "linear":
		return falcon.BaseLinearCDT, nil
	case "convolve":
		return falcon.BaseConvolve, nil
	}
	return 0, fmt.Errorf("unknown -falcon-kind %q (want bitsliced, cdt, bytescan, linear or convolve)", s)
}

// parsePrefetch maps the -prefetch flag to server config: a bare depth
// ("4") or "sync" applies to every pool; "σ=depth" entries override per
// σ.  Entries combine: "-prefetch 8,6.15543=sync" runs σ=6.15543
// synchronously and everything else 8 deep.
func parsePrefetch(s string) (global int, bySigma map[string]int, err error) {
	parseDepth := func(v string) (int, error) {
		if v == "sync" {
			return -1, nil
		}
		d, err := strconv.Atoi(v)
		if err != nil || d < 0 {
			return 0, fmt.Errorf("-prefetch depth %q must be a non-negative integer or 'sync'", v)
		}
		if d == 0 {
			return -1, nil // 0 refills of lookahead = synchronous
		}
		return d, nil
	}
	for _, field := range splitList(s) {
		if sigma, v, ok := strings.Cut(field, "="); ok {
			d, err := parseDepth(v)
			if err != nil {
				return 0, nil, err
			}
			if bySigma == nil {
				bySigma = make(map[string]int)
			}
			bySigma[strings.TrimSpace(sigma)] = d
			continue
		}
		d, err := parseDepth(field)
		if err != nil {
			return 0, nil, err
		}
		global = d
	}
	return global, bySigma, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
