// Command falconbench regenerates Table 1: Falcon signing throughput
// (signs/sec) for security levels 1–3 (N = 256, 512, 1024) under the four
// base samplers, with ChaCha20 as the PRNG throughout, exactly as in the
// paper's setup.
//
// Usage:
//
//	falconbench -secs 2            # measure each cell for ~2 seconds
//	falconbench -n 512             # single level
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ctgauss/falcon"
)

func main() {
	secs := flag.Float64("secs", 2, "target wall time per table cell")
	only := flag.Int("n", 0, "restrict to one ring degree (256, 512 or 1024)")
	flag.Parse()

	degrees := []int{256, 512, 1024}
	if *only != 0 {
		degrees = []int{*only}
	}
	kinds := []falcon.BaseSamplerKind{
		falcon.BaseByteScanCDT, falcon.BaseCDT,
		falcon.BaseLinearCDT, falcon.BaseBitsliced,
	}

	fmt.Println("Table 1 — Falcon-sign throughput (signs/sec), ChaCha20 PRNG")
	fmt.Println()
	fmt.Printf("%-18s", "level")
	for _, k := range kinds {
		fmt.Printf("%22v", k)
	}
	fmt.Println()

	for _, n := range degrees {
		fmt.Fprintf(os.Stderr, "generating key for N=%d...\n", n)
		sk, err := falcon.Keygen(n, []byte(fmt.Sprintf("falconbench-%d", n)))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		params := sk.Params
		fmt.Printf("%-18s", fmt.Sprintf("Level %d (N=%d)", params.Level, n))
		msg := []byte("falconbench message")
		for _, k := range kinds {
			signer, err := falcon.NewSigner(sk, k, []byte("bench"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// Warm up, then measure for ~secs.
			if _, err := signer.Sign(msg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			count := 0
			start := time.Now()
			for time.Since(start).Seconds() < *secs {
				if _, err := signer.Sign(msg); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				count++
			}
			rate := float64(count) / time.Since(start).Seconds()
			fmt.Printf("%22.0f", rate)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("paper (i7-6600U, C): L1: 10327/8041/6080/7025; L2: 5220/4064/3027/3527;")
	fmt.Println("L3: 2640/2014/1519/1754 — expected shape: bytescan > cdt > this work > linear-ct,")
	fmt.Println("with this work within ≈35% of the fastest non-constant-time sampler.")
}
