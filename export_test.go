package ctgauss

// Test-only accessors: per-shard stream access lets tests pin shard
// independence and cross-engine bit-identity without depending on the
// picker's (deliberately unspecified) cross-shard interleave.

// TakeFromShard copies the next len(dst) samples of one shard's stream.
func (p *Pool) TakeFromShard(shard int, dst []int) error { return p.eng.TakeFrom(nil, shard, dst) }
