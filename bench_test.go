// Benchmarks regenerating every table and figure of the paper's
// evaluation.  Run: go test -bench=. -benchmem
//
//	Table 1  → BenchmarkTable1SignPerSec   (signs/sec per level × sampler)
//	Table 2  → BenchmarkTable2Sampler      (cost per 64-sample batch,
//	            this-work split minimization vs [21] simple minimization)
//	Fig. 5   → BenchmarkFig5Histogram      (histogram generation throughput;
//	            the plot itself comes from cmd/histogram)
//	§7       → BenchmarkPRNGOverhead       (PRNG share of sampling cost)
//	Ablation → BenchmarkAblation*          (design-choice costs)
//
// cmd/falconbench and cmd/samplebench print the same data as the paper's
// table rows.
package ctgauss_test

import (
	"fmt"
	"sync"
	"testing"

	"ctgauss"
	"ctgauss/falcon"
	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/registry"
	"ctgauss/internal/sampler"
	"ctgauss/internal/sampler/gen"
)

var (
	keyMu   sync.Mutex
	keyBy   = map[int]*falcon.PrivateKey{}
	built   = map[string]*core.Built{}
	builtMu sync.Mutex
)

func benchKey(b *testing.B, n int) *falcon.PrivateKey {
	b.Helper()
	keyMu.Lock()
	defer keyMu.Unlock()
	if sk, ok := keyBy[n]; ok {
		return sk
	}
	sk, err := falcon.Keygen(n, []byte("bench-key-seed"))
	if err != nil {
		b.Fatal(err)
	}
	keyBy[n] = sk
	return sk
}

func benchBuilt(b *testing.B, sigma string, n int, min core.Minimizer) *core.Built {
	b.Helper()
	builtMu.Lock()
	defer builtMu.Unlock()
	key := fmt.Sprintf("%s/%d/%d", sigma, n, min)
	if bb, ok := built[key]; ok {
		return bb
	}
	bb, err := core.Build(core.Config{Sigma: sigma, N: n, TailCut: 13, Min: min})
	if err != nil {
		b.Fatal(err)
	}
	built[key] = bb
	return bb
}

// BenchmarkTable1SignPerSec reproduces Table 1: Falcon signing throughput
// for each security level and base sampler.  signs/sec = 1e9/(ns/op).
func BenchmarkTable1SignPerSec(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		for _, kind := range []falcon.BaseSamplerKind{
			falcon.BaseByteScanCDT, falcon.BaseCDT,
			falcon.BaseLinearCDT, falcon.BaseBitsliced,
		} {
			b.Run(fmt.Sprintf("N%d/%v", n, kind), func(b *testing.B) {
				sk := benchKey(b, n)
				signer, err := falcon.NewSigner(sk, kind, []byte("bench"))
				if err != nil {
					b.Fatal(err)
				}
				msg := []byte("benchmark message")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := signer.Sign(msg); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(1e9/float64(b.Elapsed().Nanoseconds())*float64(b.N), "signs/sec")
			})
		}
	}
}

// BenchmarkTable2Sampler reproduces Table 2: the cost of one 64-sample
// batch under the paper's efficient (split) minimization versus the simple
// minimization of [21], for σ = 2 and σ = 6.15543 at n = 128.
func BenchmarkTable2Sampler(b *testing.B) {
	compiled := map[string]struct {
		fn        func(in, out []uint64)
		nin, nval int
	}{
		"2":       {gen.Sigma2Batch, gen.Sigma2BatchInputs, gen.Sigma2BatchValueBits},
		"6.15543": {gen.Sigma615543Batch, gen.Sigma615543BatchInputs, gen.Sigma615543BatchValueBits},
	}
	for _, sigma := range []string{"2", "6.15543"} {
		b.Run("sigma"+sigma+"/thiswork-compiled", func(b *testing.B) {
			c := compiled[sigma]
			s := sampler.NewCompiled("c", c.fn, c.nin, c.nval, prng.MustChaCha20([]byte("t2")))
			dst := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextBatch(dst)
			}
		})
		b.Run("sigma"+sigma+"/thiswork", func(b *testing.B) {
			bb := benchBuilt(b, sigma, 128, core.MinimizeExact)
			s := bb.NewSampler(prng.MustChaCha20([]byte("t2")))
			dst := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextBatch(dst)
			}
			b.ReportMetric(float64(bb.Program.OpCount()), "wordops/batch")
		})
		// The same circuit at explicit widths (1 = the paper's per-batch
		// stream layout; the default above is sampler.DefaultWidth).
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("sigma%s/thiswork-w%d", sigma, w), func(b *testing.B) {
				bb := benchBuilt(b, sigma, 128, core.MinimizeExact)
				s := bb.NewWideSampler(prng.MustChaCha20([]byte("t2")), w)
				dst := make([]int, 64)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.NextBatch(dst)
				}
			})
		}
		// The pre-optimization reference: the SSA interpreter with the
		// per-bit unpack loop, kept as the baseline the optimized engine
		// is measured against (BENCH_PR2.json).
		b.Run("sigma"+sigma+"/thiswork-refinterp", func(b *testing.B) {
			bb := benchBuilt(b, sigma, 128, core.MinimizeExact)
			s := sampler.NewReference(bb.Program, prng.MustChaCha20([]byte("t2")))
			dst := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextBatch(dst)
			}
		})
		b.Run("sigma"+sigma+"/simple21", func(b *testing.B) {
			builtMu.Lock()
			key := "simple/" + sigma
			bs, ok := built[key]
			if !ok {
				var err error
				bsp, err := core.BuildSimple(core.Config{Sigma: sigma, N: 128, TailCut: 13})
				if err != nil {
					builtMu.Unlock()
					b.Fatal(err)
				}
				bs = &core.Built{Program: bsp.Program, Table: bsp.Table, Tree: bsp.Tree, Config: bsp.Config}
				built[key] = bs
			}
			builtMu.Unlock()
			s := sampler.NewBitsliced("simple", bs.Program, prng.MustChaCha20([]byte("t2")))
			dst := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextBatch(dst)
			}
			b.ReportMetric(float64(bs.Program.OpCount()), "wordops/batch")
		})
	}
}

// BenchmarkFig5Histogram measures bulk sample generation as used for the
// Fig. 5 histograms (64×10⁷ samples in the paper; cmd/histogram draws the
// plot).
func BenchmarkFig5Histogram(b *testing.B) {
	for _, sigma := range []string{"2", "6.15543"} {
		b.Run("sigma"+sigma, func(b *testing.B) {
			bb := benchBuilt(b, sigma, 128, core.MinimizeExact)
			s := bb.NewSampler(prng.MustChaCha20([]byte("fig5")))
			hist := make(map[int]int)
			dst := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextBatch(dst)
				for _, v := range dst {
					hist[v]++
				}
			}
			b.ReportMetric(float64(b.N*64)/float64(b.Elapsed().Seconds()+1e-12), "samples/sec")
		})
	}
}

// BenchmarkPRNGOverhead reproduces the §7 observation: most of the
// sampling time goes into the PRNG.  Compare the full sampler against the
// same volume of raw PRNG output.
func BenchmarkPRNGOverhead(b *testing.B) {
	bb := benchBuilt(b, "2", 128, core.MinimizeExact)
	words := bb.Program.NumInputs + 1
	for _, name := range []string{"chacha20", "shake256", "aes-ctr"} {
		b.Run("sampler/"+name, func(b *testing.B) {
			src, err := prng.NewSource(name, []byte("ovh"))
			if err != nil {
				b.Fatal(err)
			}
			s := bb.NewSampler(src)
			dst := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextBatch(dst)
			}
		})
		b.Run("prngonly/"+name, func(b *testing.B) {
			src, err := prng.NewSource(name, []byte("ovh"))
			if err != nil {
				b.Fatal(err)
			}
			rd := prng.NewBitReader(src)
			buf := make([]uint64, words)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rd.Words(buf)
			}
		})
	}
}

// BenchmarkAblationMinimizer quantifies the minimization strategies.
func BenchmarkAblationMinimizer(b *testing.B) {
	for _, min := range []core.Minimizer{core.MinimizeExact, core.MinimizeGreedy, core.MinimizeNone} {
		b.Run(min.String(), func(b *testing.B) {
			bb := benchBuilt(b, "2", 128, min)
			s := bb.NewSampler(prng.MustChaCha20([]byte("abl")))
			dst := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextBatch(dst)
			}
			b.ReportMetric(float64(bb.Program.OpCount()), "wordops/batch")
		})
	}
}

// BenchmarkAblationBaselineCSE separates the paper's two levers: exact
// minimization and systematic prefix sharing.  flat+CSE recovers most of
// the sharing without the sublist split.
func BenchmarkAblationBaselineCSE(b *testing.B) {
	for _, cse := range []bool{false, true} {
		name := "flat-nocse"
		if cse {
			name = "flat-cse"
		}
		b.Run(name, func(b *testing.B) {
			builder := core.BuildSimple
			if cse {
				builder = core.BuildSimpleCSE
			}
			bs, err := builder(core.Config{Sigma: "2", N: 128, TailCut: 13})
			if err != nil {
				b.Fatal(err)
			}
			s := sampler.NewBitsliced(name, bs.Program, prng.MustChaCha20([]byte("cse")))
			dst := make([]int, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextBatch(dst)
			}
			b.ReportMetric(float64(bs.Program.OpCount()), "wordops/batch")
		})
	}
}

// BenchmarkSamplerComparison covers every sampler implementation on the
// same distribution (per single sample) — context for Tables 1 and 2.
func BenchmarkSamplerComparison(b *testing.B) {
	bb := benchBuilt(b, "2", 128, core.MinimizeExact)
	mk := map[string]func() sampler.Sampler{
		"bitsliced": func() sampler.Sampler { return bb.NewSampler(prng.MustChaCha20([]byte("c"))) },
		"bitsliced-compiled": func() sampler.Sampler {
			return sampler.NewCompiled("c", gen.Sigma2Batch, gen.Sigma2BatchInputs, gen.Sigma2BatchValueBits, prng.MustChaCha20([]byte("c")))
		},
		"knuthyao":   func() sampler.Sampler { return sampler.NewKnuthYao(bb.Table, prng.MustChaCha20([]byte("c"))) },
		"cdt-binary": func() sampler.Sampler { return sampler.NewCDT(bb.Table, prng.MustChaCha20([]byte("c"))) },
		"cdt-bytescan": func() sampler.Sampler {
			return sampler.NewByteScanCDT(bb.Table, prng.MustChaCha20([]byte("c")))
		},
		"cdt-linear-ct": func() sampler.Sampler {
			return sampler.NewLinearCDT(bb.Table, prng.MustChaCha20([]byte("c")))
		},
	}
	for name, f := range mk {
		b.Run(name, func(b *testing.B) {
			s := f()
			b.ResetTimer()
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += s.Next()
			}
			_ = acc
		})
	}
}

// BenchmarkKeygen and BenchmarkVerify complete the Falcon picture.
func BenchmarkKeygen(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := falcon.Keygen(n, []byte(fmt.Sprintf("kg-%d-%d", n, i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVerify(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			sk := benchKey(b, n)
			signer, err := falcon.NewSigner(sk, falcon.BaseBitsliced, []byte("v"))
			if err != nil {
				b.Fatal(err)
			}
			msg := []byte("verify me")
			sig, err := signer.Sign(msg)
			if err != nil {
				b.Fatal(err)
			}
			pk := sk.Public()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pk.Verify(msg, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerationPipeline measures the offline generator itself.
func BenchmarkGenerationPipeline(b *testing.B) {
	for _, sigma := range []string{"2", "6.15543"} {
		b.Run("sigma"+sigma, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(core.Config{Sigma: sigma, N: 128, TailCut: 13, Min: core.MinimizeExact}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLargeSigmaConvolution exercises the σ≈215-class configuration
// via the convolution combiner over the σ=6.15543 base (σ_eff ≈ 6.15543·
// √(1+35²) ≈ 215), the practical route the paper cites for large σ.
func BenchmarkLargeSigmaConvolution(b *testing.B) {
	s, err := ctgauss.New("6.15543")
	if err != nil {
		b.Fatal(err)
	}
	conv := ctgauss.NewLargeSigma(s, 35)
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += conv.Next()
	}
	_ = acc
}

// BenchmarkBuildMinimization compares the serial and parallel fan-out of
// the per-sublist exact minimization — the tentpole build-time speedup
// (proportional to core count; this machine may be single-core).
func BenchmarkBuildMinimization(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Build(core.Config{Sigma: "2", N: 128, TailCut: 13, Min: core.MinimizeExact, Workers: bc.workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegistryCacheHit measures the serve-side latency of a warmed
// registry — the amortized cost every caller after the first pays.
func BenchmarkRegistryCacheHit(b *testing.B) {
	reg := registry.New("")
	cfg := core.Config{Sigma: "2", N: 128, TailCut: 13, Min: core.MinimizeExact}
	if _, err := reg.Get(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Get(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryDiskLoad measures the O(load) repeat-build path: a cold
// in-memory registry deserializing the compiled circuit from disk.
func BenchmarkRegistryDiskLoad(b *testing.B) {
	dir := b.TempDir()
	cfg := core.Config{Sigma: "2", N: 128, TailCut: 13, Min: core.MinimizeExact}
	if _, err := registry.New(dir).Get(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, err := registry.New(dir).Get(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !art.FromDisk {
			b.Fatal("expected disk hit")
		}
	}
}

// BenchmarkPoolThroughput measures concurrent serving at 1/4/16 callers
// against a pool with one shard per caller.
func BenchmarkPoolThroughput(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
			pool, err := ctgauss.NewPool("2", g)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			wg.Add(g)
			per := b.N / g
			rem := b.N % g
			for i := 0; i < g; i++ {
				n := per
				if i < rem {
					n++
				}
				go func(n int) {
					defer wg.Done()
					dst := make([]int, 64)
					for j := 0; j < n; j++ {
						pool.NextBatch(dst)
					}
				}(n)
			}
			wg.Wait()
			b.ReportMetric(float64(b.N*64)/(b.Elapsed().Seconds()+1e-12), "samples/sec")
		})
	}
}
