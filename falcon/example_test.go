package falcon_test

import (
	"fmt"

	"ctgauss/falcon"
)

// Example signs and verifies a message with the paper's constant-time
// bitsliced base sampler.  Keygen and signing are deterministic in their
// seeds, so the example output is stable.
func Example() {
	sk, err := falcon.Keygen(256, []byte("falcon-example-keygen-seed"))
	if err != nil {
		fmt.Println("keygen:", err)
		return
	}
	signer, err := falcon.NewSigner(sk, falcon.BaseBitsliced, []byte("falcon-example-sign-seed"))
	if err != nil {
		fmt.Println("signer:", err)
		return
	}
	msg := []byte("attack at dawn")
	sig, err := signer.Sign(msg)
	if err != nil {
		fmt.Println("sign:", err)
		return
	}
	// Signatures survive a serialization round trip.
	decoded, err := falcon.DecodeSignature(sig.Encode())
	if err != nil {
		fmt.Println("decode:", err)
		return
	}
	if err := sk.Public().Verify(msg, decoded); err != nil {
		fmt.Println("verify:", err)
		return
	}
	fmt.Printf("%s: signature valid\n", sk.Params.Name)
	// Output: falcon-256: signature valid
}

// ExampleSignerPool serves concurrent signing requests from a sharded
// pool over one key.
func ExampleSignerPool() {
	sk, err := falcon.Keygen(256, []byte("falcon-example-keygen-seed"))
	if err != nil {
		fmt.Println("keygen:", err)
		return
	}
	pool, err := falcon.NewSignerPool(sk, falcon.BaseBitsliced, []byte("pool-seed"), 2)
	if err != nil {
		fmt.Println("pool:", err)
		return
	}
	msg := []byte("attack at dawn")
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			sig, err := pool.Sign(msg) // safe from any goroutine
			if err == nil {
				err = pool.Verify(msg, sig)
			}
			done <- err
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			fmt.Println(err)
			return
		}
	}
	fmt.Println("4 concurrent signatures valid")
	// Output: 4 concurrent signatures valid
}
