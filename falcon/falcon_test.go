package falcon_test

import (
	"testing"

	"ctgauss/falcon"
)

func TestPublicEndToEnd(t *testing.T) {
	sk, err := falcon.Keygen(256, []byte("public-api-seed"))
	if err != nil {
		t.Fatal(err)
	}
	signer, err := falcon.NewSigner(sk, falcon.BaseBitsliced, []byte("s"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("public api message")
	sig, err := signer.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	pk := sk.Public()
	if err := pk.Verify(msg, sig); err != nil {
		t.Fatal(err)
	}

	// Wire round trip through the re-exported codecs.
	sig2, err := falcon.DecodeSignature(sig.Encode())
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := falcon.DecodePublic(pk.EncodePublic())
	if err != nil {
		t.Fatal(err)
	}
	if err := pk2.Verify(msg, sig2); err != nil {
		t.Fatal(err)
	}
}

func TestPublicParams(t *testing.T) {
	p, err := falcon.ParamsFor(1024)
	if err != nil {
		t.Fatal(err)
	}
	if p.Level != 3 || p.N != 1024 {
		t.Fatalf("params: %+v", p)
	}
	if _, err := falcon.ParamsFor(333); err == nil {
		t.Fatal("expected error")
	}
	if falcon.Q != 12289 {
		t.Fatal("Q mismatch")
	}
}

func TestPublicAllKindsNamed(t *testing.T) {
	for _, k := range []falcon.BaseSamplerKind{
		falcon.BaseBitsliced, falcon.BaseCDT, falcon.BaseByteScanCDT, falcon.BaseLinearCDT,
	} {
		if k.String() == "?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}
