// Package falcon is the public API of this repository's from-scratch
// Falcon signature implementation with pluggable discrete Gaussian base
// samplers — the application study of the DAC 2019 paper (Table 1): the
// cost of Falcon signing under the constant-time bitsliced sampler versus
// the CDT-based alternatives.
//
// One-shot use builds a key and a signer directly:
//
//	sk, _ := falcon.Keygen(512, seed)
//	signer, _ := falcon.NewSigner(sk, falcon.BaseBitsliced, signSeed)
//	sig, _ := signer.Sign(msg)
//	err := sk.Public().Verify(msg, sig)
//
// A Signer is not safe for concurrent use: signing mutates the base
// sampler and salt PRNG streams.  For serving, NewSignerPool shards
// independent signers over one key (domain-separated seeds, round-robin
// dispatch — the signing analogue of ctgauss.Pool):
//
//	pool, _ := falcon.NewSignerPool(sk, falcon.BaseBitsliced, seed, 8)
//	sig, _ := pool.Sign(msg)          // safe from any goroutine
//	err = pool.Verify(msg, sig)       // stateless, never blocks a signer
//
// Signatures and public keys serialize with Signature.Encode /
// PublicKey.EncodePublic and parse with DecodeSignature / DecodePublic.
//
// Seed handling: Keygen, NewSigner and NewSignerPool are deterministic
// in their seeds, which makes tests and benchmarks reproducible.  In
// production the signing seeds must come from fresh randomness —
// predictable salts or Gaussian streams break the scheme.
package falcon
