package falcon

import (
	ifalcon "ctgauss/internal/falcon"
)

// Re-exported types: the internal implementation is the single source of
// truth; this package pins the supported public surface.
type (
	// Params is a Falcon parameter set (N ∈ {256, 512, 1024}).
	Params = ifalcon.Params
	// PrivateKey is an NTRU trapdoor key with its precomputed Falcon tree.
	PrivateKey = ifalcon.PrivateKey
	// PublicKey is h = g·f⁻¹ mod q.
	PublicKey = ifalcon.PublicKey
	// Signature is a salt plus the compressed short vector.
	Signature = ifalcon.Signature
	// Signer signs messages with a chosen Gaussian base sampler.  It is
	// not safe for concurrent use; see SignerPool.
	Signer = ifalcon.Signer
	// SignerPool is a sharded, concurrency-safe set of Signers over one
	// key — the signing analogue of ctgauss.Pool.
	SignerPool = ifalcon.SignerPool
	// BaseSamplerKind selects the Gaussian base sampler variant.
	BaseSamplerKind = ifalcon.BaseSamplerKind
)

// Base sampler variants of the paper's Table 1.
const (
	// BaseBitsliced is the paper's constant-time sampler (this work).
	BaseBitsliced = ifalcon.BaseBitsliced
	// BaseCDT is the binary-search CDT sampler (non constant-time).
	BaseCDT = ifalcon.BaseCDT
	// BaseByteScanCDT is the byte-scanning CDT sampler (non constant-time,
	// fastest baseline).
	BaseByteScanCDT = ifalcon.BaseByteScanCDT
	// BaseLinearCDT is the linear-search constant-time CDT sampler.
	BaseLinearCDT = ifalcon.BaseLinearCDT
	// BaseConvolve routes SamplerZ through the arbitrary-(σ, μ)
	// convolution layer instead of a rejection loop over a fixed base:
	// every ffSampling leaf (σ′, center) is served by the compiled base
	// set with constant-time randomized rounding.
	BaseConvolve = ifalcon.BaseConvolve
)

// Q is the Falcon modulus 12289.
const Q = ifalcon.Q

// ParamsFor returns the parameter set for ring degree n.
func ParamsFor(n int) (Params, error) { return ifalcon.ParamsFor(n) }

// Keygen generates a key pair for ring degree n ∈ {256, 512, 1024},
// deterministically from seed.
func Keygen(n int, seed []byte) (*PrivateKey, error) { return ifalcon.Keygen(n, seed) }

// NewSigner builds a signer using the selected base sampler, seeded
// deterministically.  The result is not safe for concurrent use.
func NewSigner(sk *PrivateKey, kind BaseSamplerKind, seed []byte) (*Signer, error) {
	return ifalcon.NewSignerWithKind(sk, kind, seed)
}

// NewSignerPool builds a concurrency-safe pool of parallelism signer
// shards over sk (0 = one per CPU).  Shard seeds derive from seed with
// domain separation, so one master seed yields independent signing
// streams; Sign round-robins across shards and Verify is stateless.
// Close gates the pool at drain time: later Sign calls fail with
// ErrPoolClosed.
func NewSignerPool(sk *PrivateKey, kind BaseSamplerKind, seed []byte, parallelism int) (*SignerPool, error) {
	return ifalcon.NewSignerPool(sk, kind, seed, parallelism)
}

// ErrPoolClosed is returned by SignerPool.Sign after Close.
var ErrPoolClosed = ifalcon.ErrPoolClosed

// DecodeSignature parses Signature.Encode output.
func DecodeSignature(data []byte) (*Signature, error) { return ifalcon.DecodeSignature(data) }

// DecodePublic parses PublicKey.EncodePublic output.
func DecodePublic(data []byte) (*PublicKey, error) { return ifalcon.DecodePublic(data) }
