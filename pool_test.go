package ctgauss_test

import (
	"math"
	"sync"
	"testing"

	"ctgauss"
)

// poolCfg builds at reduced precision so pool tests stay fast; the
// circuit shape is the same as the paper's configuration.
var poolCfg = ctgauss.Config{Sigma: "2", Precision: 48}

func TestPoolSamplesInSupport(t *testing.T) {
	p, err := ctgauss.NewPoolWithConfig(poolCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	st := p.Stats()
	if st.Support == 0 || st.WordOps == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	nonzero := 0
	for i := 0; i < 1024; i++ {
		v, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if v < -st.Support || v > st.Support {
			t.Fatalf("sample %d out of support ±%d", v, st.Support)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all-zero stream")
	}
}

// TestPoolConcurrentNextBatch is the acceptance-criteria test: many
// goroutines hammering NextBatch concurrently (run under -race in CI).
// Every batch must stay in support and the aggregate variance must match
// σ² — a wrong lock would manifest as torn batches or a skewed moment.
func TestPoolConcurrentNextBatch(t *testing.T) {
	p, err := ctgauss.NewPoolWithConfig(poolCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	support := p.Stats().Support
	const goroutines = 16
	const batchesEach = 200
	var mu sync.Mutex
	var sum, sq float64
	var n int
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			dst := make([]int, 64)
			var ls, lq float64
			for i := 0; i < batchesEach; i++ {
				if g2 := i % 2; g2 == 0 {
					if err := p.NextBatch(dst); err != nil {
						t.Error(err)
						return
					}
				} else {
					for j := range dst {
						v, err := p.Next()
						if err != nil {
							t.Error(err)
							return
						}
						dst[j] = v
					}
				}
				for _, v := range dst {
					if v < -support || v > support {
						t.Errorf("sample %d out of support ±%d", v, support)
						return
					}
					ls += float64(v)
					lq += float64(v) * float64(v)
				}
			}
			mu.Lock()
			sum += ls
			sq += lq
			n += batchesEach * 64
			mu.Unlock()
		}()
	}
	wg.Wait()
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %f, want ≈ 0", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("variance = %f, want ≈ 4", variance)
	}
}

// TestPoolDeterministicFromSeed: with a fixed seed, two identically
// configured pools produce identical per-shard streams, and with one
// shard the whole Next sequence is identical.  (The cross-shard
// interleave of a multi-shard pool is unspecified — the striped pick
// trades that guarantee for contention-free sharding — so determinism
// is pinned where it is defined: per shard, and for the single-shard
// sequence.)
func TestPoolDeterministicFromSeed(t *testing.T) {
	mk := func(shards int) *ctgauss.Pool {
		cfg := poolCfg
		cfg.Seed = []byte("pool-determinism")
		p, err := ctgauss.NewPoolWithConfig(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}
	a, b := mk(1), mk(1)
	for i := 0; i < 1000; i++ {
		av, aerr := a.Next()
		bv, berr := b.Next()
		if aerr != nil || berr != nil {
			t.Fatalf("sample %d: %v / %v", i, aerr, berr)
		}
		if av != bv {
			t.Fatalf("sample %d: %d vs %d", i, av, bv)
		}
	}
	ma, mb := mk(3), mk(3)
	for shard := 0; shard < 3; shard++ {
		sa, sb := make([]int, 300), make([]int, 300)
		if err := ma.TakeFromShard(shard, sa); err != nil {
			t.Fatal(err)
		}
		if err := mb.TakeFromShard(shard, sb); err != nil {
			t.Fatal(err)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("shard %d sample %d: %d vs %d", shard, i, sa[i], sb[i])
			}
		}
	}
}

// TestPoolShardsIndependent: distinct shards must not replay each other's
// stream (the per-shard seed derivation is domain-separated).
func TestPoolShardsIndependent(t *testing.T) {
	p, err := ctgauss.NewPoolWithConfig(poolCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s0, s1 := make([]int, 256), make([]int, 256)
	if err := p.TakeFromShard(0, s0); err != nil {
		t.Fatal(err)
	}
	if err := p.TakeFromShard(1, s1); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range s0 {
		if s0[i] != s1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("both shards produced the identical stream")
	}
}

// TestPoolCompiledPathMatchesInterpreter: the σ=2/n=128 configuration uses
// the generated native circuit; it must produce the same distribution as
// the interpreted program (exact equality is already tested in
// internal/sampler/gen).
func TestPoolCompiledPathMatchesInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("full-precision build")
	}
	p, err := ctgauss.NewPool("2", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var sq float64
	const n = 1 << 15
	for i := 0; i < n; i++ {
		s, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		v := float64(s)
		sq += v * v
	}
	if v := sq / n; math.Abs(v-4) > 0.3 {
		t.Fatalf("variance %f, want ≈ 4", v)
	}
}

func TestPoolBadConfig(t *testing.T) {
	if _, err := ctgauss.NewPool("not-a-number", 2); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ctgauss.NewPoolWithConfig(ctgauss.Config{Sigma: "2", Precision: 48, PRNG: "bad"}, 2); err == nil {
		t.Fatal("expected error for bad PRNG")
	}
}
