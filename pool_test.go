package ctgauss_test

import (
	"math"
	"sync"
	"testing"

	"ctgauss"
)

// poolCfg builds at reduced precision so pool tests stay fast; the
// circuit shape is the same as the paper's configuration.
var poolCfg = ctgauss.Config{Sigma: "2", Precision: 48}

func TestPoolSamplesInSupport(t *testing.T) {
	p, err := ctgauss.NewPoolWithConfig(poolCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	st := p.Stats()
	if st.Support == 0 || st.WordOps == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	nonzero := 0
	for i := 0; i < 1024; i++ {
		v := p.Next()
		if v < -st.Support || v > st.Support {
			t.Fatalf("sample %d out of support ±%d", v, st.Support)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("all-zero stream")
	}
}

// TestPoolConcurrentNextBatch is the acceptance-criteria test: many
// goroutines hammering NextBatch concurrently (run under -race in CI).
// Every batch must stay in support and the aggregate variance must match
// σ² — a wrong lock would manifest as torn batches or a skewed moment.
func TestPoolConcurrentNextBatch(t *testing.T) {
	p, err := ctgauss.NewPoolWithConfig(poolCfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	support := p.Stats().Support
	const goroutines = 16
	const batchesEach = 200
	var mu sync.Mutex
	var sum, sq float64
	var n int
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			dst := make([]int, 64)
			var ls, lq float64
			for i := 0; i < batchesEach; i++ {
				if g2 := i % 2; g2 == 0 {
					p.NextBatch(dst)
				} else {
					for j := range dst {
						dst[j] = p.Next()
					}
				}
				for _, v := range dst {
					if v < -support || v > support {
						t.Errorf("sample %d out of support ±%d", v, support)
						return
					}
					ls += float64(v)
					lq += float64(v) * float64(v)
				}
			}
			mu.Lock()
			sum += ls
			sq += lq
			n += batchesEach * 64
			mu.Unlock()
		}()
	}
	wg.Wait()
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %f, want ≈ 0", mean)
	}
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("variance = %f, want ≈ 4", variance)
	}
}

// TestPoolDeterministicFromSeed: with a fixed seed and single-goroutine
// use, two identically configured pools produce identical streams.
func TestPoolDeterministicFromSeed(t *testing.T) {
	mk := func() *ctgauss.Pool {
		cfg := poolCfg
		cfg.Seed = []byte("pool-determinism")
		p, err := ctgauss.NewPoolWithConfig(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("sample %d: %d vs %d", i, av, bv)
		}
	}
}

// TestPoolShardsIndependent: distinct shards must not replay each other's
// stream (the per-shard seed derivation is domain-separated).
func TestPoolShardsIndependent(t *testing.T) {
	p, err := ctgauss.NewPoolWithConfig(poolCfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin over 2 shards: even draws hit one shard, odd the other.
	var even, odd []int
	for i := 0; i < 256; i++ {
		v := p.Next()
		if i%2 == 0 {
			even = append(even, v)
		} else {
			odd = append(odd, v)
		}
	}
	same := true
	for i := range even {
		if even[i] != odd[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("both shards produced the identical stream")
	}
}

// TestPoolCompiledPathMatchesInterpreter: the σ=2/n=128 configuration uses
// the generated native circuit; it must produce the same distribution as
// the interpreted program (exact equality is already tested in
// internal/sampler/gen).
func TestPoolCompiledPathMatchesInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("full-precision build")
	}
	p, err := ctgauss.NewPool("2", 1)
	if err != nil {
		t.Fatal(err)
	}
	var sq float64
	const n = 1 << 15
	for i := 0; i < n; i++ {
		v := float64(p.Next())
		sq += v * v
	}
	if v := sq / n; math.Abs(v-4) > 0.3 {
		t.Fatalf("variance %f, want ≈ 4", v)
	}
}

func TestPoolBadConfig(t *testing.T) {
	if _, err := ctgauss.NewPool("not-a-number", 2); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ctgauss.NewPoolWithConfig(ctgauss.Config{Sigma: "2", Precision: 48, PRNG: "bad"}, 2); err == nil {
		t.Fatal("expected error for bad PRNG")
	}
}
