package ctgauss_test

import (
	"go/parser"
	"go/token"
	"math"
	"testing"

	"ctgauss"
	"ctgauss/falcon"
	"ctgauss/internal/core"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

// TestGeneratedCodeParses feeds gaussgen's output through the Go parser:
// the emitted sampler source must be syntactically valid Go.
func TestGeneratedCodeParses(t *testing.T) {
	s, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 48})
	if err != nil {
		t.Fatal(err)
	}
	src := s.GenerateGo("gen", "Sample64")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src[:min(len(src), 2000)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPipelineToFalconIntegration runs the complete stack: pipeline-built
// sampler → Falcon keygen → signer with that same sampler family → verify.
func TestPipelineToFalconIntegration(t *testing.T) {
	sk, err := falcon.Keygen(256, []byte("integration"))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []falcon.BaseSamplerKind{falcon.BaseBitsliced, falcon.BaseLinearCDT} {
		signer, err := falcon.NewSigner(sk, kind, []byte("int-sign"))
		if err != nil {
			t.Fatal(err)
		}
		msgs := [][]byte{{}, []byte("a"), []byte("integration message"), make([]byte, 10000)}
		for _, msg := range msgs {
			sig, err := signer.Sign(msg)
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			if err := sk.Public().Verify(msg, sig); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
	}
}

// TestCrossSamplerDistributionAgreement: all sampler families over the
// same table must produce statistically indistinguishable distributions
// (χ² over the central support).
func TestCrossSamplerDistributionAgreement(t *testing.T) {
	b, err := core.Build(core.Config{Sigma: "2", N: 128, TailCut: 13, Min: core.MinimizeExact})
	if err != nil {
		t.Fatal(err)
	}
	const samples = 1 << 17
	families := map[string]sampler.Sampler{
		"bitsliced": b.NewSampler(prng.MustChaCha20([]byte("x1"))),
		"cdt":       sampler.NewCDT(b.Table, prng.MustChaCha20([]byte("x2"))),
		"bytescan":  sampler.NewByteScanCDT(b.Table, prng.MustChaCha20([]byte("x3"))),
		"linear":    sampler.NewLinearCDT(b.Table, prng.MustChaCha20([]byte("x4"))),
		"knuthyao":  sampler.NewKnuthYao(b.Table, prng.MustChaCha20([]byte("x5"))),
	}
	for name, s := range families {
		counts := make(map[int]int)
		for i := 0; i < samples; i++ {
			counts[s.Next()]++
		}
		var chi2 float64
		cells := 0
		for z := -8; z <= 8; z++ {
			want := b.Table.SignedProb(z) * samples
			if want < 10 {
				continue
			}
			d := float64(counts[z]) - want
			chi2 += d * d / want
			cells++
		}
		// dof ≈ cells-1 = 16; χ² beyond 50 is a < 10⁻⁵ event.
		if chi2 > 50 {
			t.Errorf("%s: χ² = %.1f over %d cells", name, chi2, cells)
		}
	}
}

// TestSignerDeterministicWithFixedSeeds: the whole signing stack is
// deterministic given seeds, which is what makes every experiment in this
// repo reproducible.
func TestSignerDeterministicWithFixedSeeds(t *testing.T) {
	sk, err := falcon.Keygen(256, []byte("det"))
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *falcon.Signature {
		signer, err := falcon.NewSigner(sk, falcon.BaseBitsliced, []byte("det-sign"))
		if err != nil {
			t.Fatal(err)
		}
		sig, err := signer.Sign([]byte("deterministic"))
		if err != nil {
			t.Fatal(err)
		}
		return sig
	}
	a, b := mk(), mk()
	if string(a.Encode()) != string(b.Encode()) {
		t.Fatal("signing not deterministic under fixed seeds")
	}
}

// TestPrecisionSweep: the pipeline must hold its invariants across the
// precision range, and the sampled variance must stay at σ².
func TestPrecisionSweep(t *testing.T) {
	for _, n := range []int{8, 16, 24, 48, 96, 128} {
		s, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: n, Seed: []byte("sweep")})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var sq float64
		const total = 1 << 15
		for i := 0; i < total; i++ {
			v := float64(s.Next())
			sq += v * v
		}
		variance := sq / total
		tol := 0.25
		if n <= 8 {
			tol = 0.6 // heavy truncation at tiny precision
		}
		if math.Abs(variance-4) > tol {
			t.Errorf("n=%d: variance %.3f", n, variance)
		}
	}
}

// TestTailCutSweep: widening τ must not break the pipeline and must not
// change the central probabilities materially.
func TestTailCutSweep(t *testing.T) {
	var p0 []float64
	for _, tau := range []float64{6, 10, 13, 16} {
		s, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 64, TailCut: tau})
		if err != nil {
			t.Fatalf("τ=%v: %v", tau, err)
		}
		p0 = append(p0, s.Prob(0))
	}
	for i := 1; i < len(p0); i++ {
		if math.Abs(p0[i]-p0[0]) > 1e-6 {
			t.Fatalf("P(0) drifts with τ: %v", p0)
		}
	}
}
