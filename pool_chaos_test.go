package ctgauss_test

import (
	"errors"
	"testing"

	"ctgauss"
	"ctgauss/internal/faultinject"
)

// TestPoolChaosFailover pins the serving-layer contract of the fault
// isolation: with one shard's refills persistently panicking, every
// draw still succeeds by failing over to the healthy shard, and the
// pool's health surface records the damage.
func TestPoolChaosFailover(t *testing.T) {
	defer faultinject.Arm(faultinject.EngineFillPanic, faultinject.Fault{Shard: 0})()
	cfg := poolCfg
	cfg.Seed = []byte("chaos-failover")
	cfg.Prefetch = -1 // synchronous: failures happen on the draw itself
	p, err := ctgauss.NewPoolWithConfig(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dst := make([]int, 64)
	for i := 0; i < 30; i++ {
		if err := p.NextBatch(dst); err != nil {
			t.Fatalf("draw %d with one shard poisoned: %v", i, err)
		}
	}
	// The striped picker lands on shard 0 roughly half the time, so 30
	// draws must have tripped the fault at least once.
	es := p.EngineStats()
	if es.ProducerRestarts == 0 || es.RefillsDiscarded == 0 {
		t.Fatalf("no recovered panics recorded under a persistent fault: %+v", es)
	}
	h := p.Health()
	if h[0].Restarts == 0 {
		t.Fatalf("shard 0 health missed the recovered panics: %+v", h)
	}
	if h[1].Restarts != 0 || h[1].Poisoned {
		t.Fatalf("healthy shard 1 contaminated: %+v", h[1])
	}
}

// TestPoolChaosDegradedThenRecovers pins ErrPoolDegraded and the Reset
// hook's determinism promise: with its only shard failing, the pool
// reports degraded service; once the fault clears, the rebuilt sampler
// serves exactly the stream a fresh pool with the same seed would.
func TestPoolChaosDegradedThenRecovers(t *testing.T) {
	disarm := faultinject.Arm(faultinject.EngineFillPanic,
		faultinject.Fault{Shard: faultinject.AnyShard, Count: 2})
	defer disarm()
	cfg := poolCfg
	cfg.Seed = []byte("chaos-degraded")
	cfg.Prefetch = -1
	p, err := ctgauss.NewPoolWithConfig(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dst := make([]int, 64)
	for i := 0; i < 2; i++ {
		if err := p.NextBatch(dst); !errors.Is(err, ctgauss.ErrPoolDegraded) {
			t.Fatalf("draw %d with every shard failing: err = %v, want ErrPoolDegraded", i, err)
		}
	}
	// Fault exhausted (Count: 2): service resumes deterministically.
	if err := p.NextBatch(dst); err != nil {
		t.Fatalf("draw after fault cleared: %v", err)
	}
	fresh, err := ctgauss.NewPoolWithConfig(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want := make([]int, 64)
	if err := fresh.NextBatch(want); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("post-recovery stream diverges at %d: %d vs fresh pool %d", i, dst[i], want[i])
		}
	}
}

// TestPoolChaosPRNGReadError injects an entropy-read failure underneath
// the sampler: it surfaces inside a refill, the engine's recovery
// contains it, and the rebuilt shard serves the deterministic stream.
func TestPoolChaosPRNGReadError(t *testing.T) {
	defer faultinject.Arm(faultinject.PRNGReadError,
		faultinject.Fault{Shard: faultinject.AnyShard, Count: 1})()
	cfg := poolCfg
	cfg.Seed = []byte("chaos-prng")
	cfg.Prefetch = -1
	p, err := ctgauss.NewPoolWithConfig(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dst := make([]int, 64)
	if err := p.NextBatch(dst); !errors.Is(err, ctgauss.ErrPoolDegraded) {
		t.Fatalf("draw through injected PRNG failure: err = %v, want ErrPoolDegraded", err)
	}
	if err := p.NextBatch(dst); err != nil {
		t.Fatalf("draw after PRNG recovery: %v", err)
	}
	fresh, err := ctgauss.NewPoolWithConfig(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want := make([]int, 64)
	if err := fresh.NextBatch(want); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("post-PRNG-recovery stream diverges at %d: %d vs %d", i, dst[i], want[i])
		}
	}
}
