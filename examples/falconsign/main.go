// falconsign demonstrates the paper's application: Falcon signing with the
// constant-time bitsliced base sampler, end to end — keygen (NTRU solve),
// signing (ffSampling over the LDL tree), wire encoding, verification —
// and contrasts the four Table-1 base samplers on the same key.
package main

import (
	"fmt"
	"time"

	"ctgauss/falcon"
)

func main() {
	const n = 512
	fmt.Printf("generating falcon-%d key (NTRU solve)...\n", n)
	start := time.Now()
	sk, err := falcon.Keygen(n, []byte("example-keygen-seed"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("  done in %v (level %d, σ=%.2f, β²=%d)\n\n",
		time.Since(start).Round(time.Millisecond), sk.Params.Level, sk.Params.Sigma, sk.Params.BoundSq)

	msg := []byte("Constant-time sampling does not have to be slow.")
	signer, err := falcon.NewSigner(sk, falcon.BaseBitsliced, []byte("example-sign-seed"))
	if err != nil {
		panic(err)
	}
	sig, err := signer.Sign(msg)
	if err != nil {
		panic(err)
	}
	enc := sig.Encode()
	pkEnc := sk.Public().EncodePublic()
	fmt.Printf("signature: %d bytes compressed; public key: %d bytes\n", len(enc), len(pkEnc))

	dec, err := falcon.DecodeSignature(enc)
	if err != nil {
		panic(err)
	}
	pk, err := falcon.DecodePublic(pkEnc)
	if err != nil {
		panic(err)
	}
	if err := pk.Verify(msg, dec); err != nil {
		panic(err)
	}
	fmt.Println("signature verified after a full encode/decode round trip ✓")
	if err := pk.Verify(append(msg, '!'), dec); err == nil {
		panic("tampered message accepted")
	}
	fmt.Println("tampered message rejected ✓")
	fmt.Println()

	fmt.Println("signing throughput on this key (0.5 s per sampler):")
	for _, kind := range []falcon.BaseSamplerKind{
		falcon.BaseByteScanCDT, falcon.BaseCDT, falcon.BaseLinearCDT, falcon.BaseBitsliced,
	} {
		s2, err := falcon.NewSigner(sk, kind, []byte("demo"))
		if err != nil {
			panic(err)
		}
		count := 0
		start := time.Now()
		for time.Since(start) < 500*time.Millisecond {
			if _, err := s2.Sign(msg); err != nil {
				panic(err)
			}
			count++
		}
		fmt.Printf("  %-24v %6.0f signs/sec\n", kind, float64(count)/time.Since(start).Seconds())
	}
}
