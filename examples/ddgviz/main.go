// ddgviz reproduces Fig. 1: the probability matrix and DDG tree for σ = 2
// at n = 6 bits of precision, plus the per-level leaf structure.
package main

import (
	"fmt"
	"strings"

	"ctgauss/internal/ddg"
	"ctgauss/internal/gaussian"
)

func main() {
	table, err := gaussian.NewTable(gaussian.MustParams("2", 6, 13))
	if err != nil {
		panic(err)
	}
	m := table.Matrix()

	fmt.Println("Fig. 1 — probability matrix, σ=2, n=6 (rows truncated to first 6 values):")
	for v := 0; v <= 5; v++ {
		row := make([]string, len(m[v]))
		for c, bit := range m[v] {
			row[c] = fmt.Sprintf("%d", bit)
		}
		fmt.Printf("  P%d  %s\n", v, strings.Join(row, "   "))
	}
	fmt.Println()

	tree, err := ddg.Unroll(table)
	if err != nil {
		panic(err)
	}
	fmt.Println("DDG tree, level by level (I = internal nodes, digits = leaf sample values):")
	leavesAt := map[int][]int{}
	for _, lf := range tree.Leaves {
		leavesAt[lf.Level] = append(leavesAt[lf.Level], lf.Value)
	}
	for lvl := 0; lvl < table.Params.N; lvl++ {
		var cells []string
		for _, v := range leavesAt[lvl] {
			cells = append(cells, fmt.Sprintf("%d", v))
		}
		for i := 0; i < tree.InternalPerLevel[lvl]; i++ {
			cells = append(cells, "I")
		}
		fmt.Printf("  level %d: %s\n", lvl, strings.Join(cells, " "))
		if tree.InternalPerLevel[lvl] == 0 {
			break
		}
	}
	fmt.Println()
	fmt.Printf("leaves: %d, Δ=%d, deficit %v·2⁻⁶ (walks that fall off the truncated tree)\n",
		len(tree.Leaves), tree.Delta, table.MassDeficit())
	fmt.Println()
	fmt.Println("every leaf path (draw order: first bit leftmost; paper writes these reversed):")
	for _, lf := range tree.Leaves {
		path := make([]string, len(lf.Path))
		for i, b := range lf.Path {
			path[i] = fmt.Sprintf("%d", b)
		}
		fmt.Printf("  %-8s -> sample %d (κ=%d, j=%d)\n", strings.Join(path, ""), lf.Value, lf.K, lf.J)
	}
}
