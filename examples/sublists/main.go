// sublists reproduces Fig. 3: the list L of sample-generating random bit
// strings for σ = 2 at n = 16, sorted by the trailing-ones count κ and
// divided into the sublists l_κ whose payload functions the pipeline
// minimizes independently.
package main

import (
	"fmt"
	"strings"

	"ctgauss/internal/ddg"
	"ctgauss/internal/gaussian"
)

func main() {
	table, err := gaussian.NewTable(gaussian.MustParams("2", 16, 13))
	if err != nil {
		panic(err)
	}
	tree, err := ddg.Unroll(table)
	if err != nil {
		panic(err)
	}
	if err := tree.VerifyTheorem1(); err != nil {
		panic(err)
	}

	fmt.Printf("Fig. 3 — list L for σ=2, n=16: %d strings, Δ=%d, %d sublists\n\n",
		len(tree.Leaves), tree.Delta, len(tree.Sublists()))
	fmt.Println("paper convention: rightmost bit drawn first, so strings read x…x 0 1^κ;")
	fmt.Println("column 'string' below shows that orientation; 'sample' is the binary value.")
	fmt.Println()

	for _, sub := range tree.Sublists() {
		fmt.Printf("sublist l%d (prefix 1^%d 0, %d leaves):\n", sub.K, sub.K, len(sub.Leaves))
		for _, lf := range sub.Leaves {
			// Paper orientation: reverse draw order and left-pad with x.
			rev := make([]byte, 0, 16)
			for i := len(lf.Path) - 1; i >= 0; i-- {
				rev = append(rev, '0'+lf.Path[i])
			}
			padded := strings.Repeat("x", 16-len(rev)) + string(rev)
			fmt.Printf("  %s -> %05b (%d)\n", padded, lf.Value, lf.Value)
		}
	}
}
