// Quickstart: build the paper's σ=2 constant-time sampler, draw samples,
// and inspect the generated circuit (the Fig. 2 mapping from random bits
// to sample bits, materialized as a straight-line program).
package main

import (
	"fmt"

	"ctgauss"
)

func main() {
	s, err := ctgauss.New("2")
	if err != nil {
		panic(err)
	}

	st := s.Stats()
	fmt.Println("generated sampler:", st.String())
	fmt.Println()

	fmt.Println("16 samples:")
	for i := 0; i < 16; i++ {
		fmt.Printf("%4d", s.Next())
	}
	fmt.Println()
	fmt.Println()

	batch := make([]int, 64)
	s.NextBatch(batch)
	fmt.Println("one native 64-sample batch:", batch[:16], "...")
	fmt.Println()

	fmt.Println("table probabilities vs empirical frequency (10⁶ samples):")
	counts := map[int]int{}
	const total = 1 << 20
	for i := 0; i < total/64; i++ {
		s.NextBatch(batch)
		for _, v := range batch {
			counts[v]++
		}
	}
	for z := -4; z <= 4; z++ {
		fmt.Printf("  P(%+d) table %.5f  empirical %.5f\n",
			z, s.Prob(z), float64(counts[z])/float64(total))
	}
	fmt.Println()
	fmt.Printf("randomness cost: %d bits per sample (the constant-time price the\n", st.BitsPerBatch/64)
	fmt.Println("paper's §7 discusses); compare Knuth-Yao's ~4.3 bits average.")
}
