// bigsigma shows the large-σ route the paper cites ([25,28]): instead of
// generating a σ=215-class sampler directly (Δ=15, big circuits), combine
// two samples from a small base sampler as z = z₁ + k·z₂, which yields
// σ_eff = σ_base·√(1+k²).  With the σ=6.15543 base and k=35 this lands at
// σ_eff ≈ 215.5 — the σ=215 instance from the paper's Δ discussion.
package main

import (
	"fmt"
	"math"

	"ctgauss"
)

func main() {
	base, err := ctgauss.New("6.15543")
	if err != nil {
		panic(err)
	}
	fmt.Println("base sampler:", base.Stats().String())

	const k = 35
	sigmaEff := 6.15543 * math.Sqrt(1+float64(k*k))
	conv := ctgauss.NewLargeSigma(base, k)
	fmt.Printf("convolution z = z1 + %d·z2  →  σ_eff = %.3f (target class: σ=215)\n\n", k, sigmaEff)

	const total = 1 << 20
	var sum, sq float64
	counts := map[int]int{}
	for i := 0; i < total; i++ {
		z := conv.Next()
		sum += float64(z)
		sq += float64(z) * float64(z)
		counts[z/20]++ // 20-wide bins
	}
	mean := sum / total
	std := math.Sqrt(sq/total - mean*mean)
	fmt.Printf("%d samples: mean %.3f (want ≈ 0), σ %.2f (want ≈ %.2f)\n\n", total, mean, std, sigmaEff)

	fmt.Println("coarse histogram (bins of 20):")
	peak := 0
	for b := -40; b <= 40; b++ {
		if counts[b] > peak {
			peak = counts[b]
		}
	}
	for b := -30; b <= 30; b += 2 {
		bar := ""
		for i := 0; i < counts[b]*50/peak; i++ {
			bar += "▆"
		}
		fmt.Printf("%6d %s\n", b*20, bar)
	}
}
