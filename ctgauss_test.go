package ctgauss_test

import (
	"math"
	"strings"
	"testing"

	"ctgauss"
	"ctgauss/internal/sampler"
)

func TestPublicQuickstart(t *testing.T) {
	s, err := ctgauss.New("2")
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Delta != 5 || st.Support != 26 || st.ValueBits != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if !strings.Contains(st.String(), "σ=2") {
		t.Fatal("Stats.String malformed")
	}
	batch := make([]int, 64)
	s.NextBatch(batch)
	nonzero := 0
	for _, v := range batch {
		if v != 0 {
			nonzero++
		}
		if v < -26 || v > 26 {
			t.Fatalf("sample %d out of support", v)
		}
	}
	if nonzero == 0 {
		t.Fatal("all-zero batch")
	}
}

func TestPublicConfigOptions(t *testing.T) {
	for _, prng := range []string{"chacha20", "shake256", "aes-ctr"} {
		s, err := ctgauss.NewWithConfig(ctgauss.Config{
			Sigma: "1", Precision: 48, TailCut: 10, PRNG: prng, Seed: []byte("s"),
		})
		if err != nil {
			t.Fatalf("%s: %v", prng, err)
		}
		var sq float64
		const n = 1 << 16
		for i := 0; i < n; i++ {
			v := float64(s.Next())
			sq += v * v
		}
		if v := sq / n; math.Abs(v-1) > 0.1 {
			t.Errorf("%s: variance %f, want ≈ 1", prng, v)
		}
	}
	if _, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "nope"}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 32, PRNG: "bad"}); err == nil {
		t.Fatal("expected error for bad PRNG")
	}
}

func TestPublicDeterministicSeeding(t *testing.T) {
	mk := func() *ctgauss.Sampler {
		s, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 64, Seed: []byte("same")})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPublicProbSymmetric(t *testing.T) {
	s, err := ctgauss.New("2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Prob(3) != s.Prob(-3) {
		t.Fatal("Prob not symmetric")
	}
	if p := s.Prob(0); math.Abs(p-0.19947) > 0.001 {
		t.Fatalf("P(0) = %f", p)
	}
	if s.Prob(1000) != 0 {
		t.Fatal("out-of-support prob not 0")
	}
}

func TestPublicGenerateGo(t *testing.T) {
	s, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "1", Precision: 24})
	if err != nil {
		t.Fatal(err)
	}
	src := s.GenerateGo("gen", "Sample64")
	for _, want := range []string{"package gen", "func Sample64("} {
		if !strings.Contains(src, want) {
			t.Fatalf("missing %q in generated code", want)
		}
	}
}

func TestPublicBitsUsedConstant(t *testing.T) {
	s, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The sampler evaluates sampler.DefaultWidth batches per refill, so
	// randomness is drawn once per refill cycle; consumption must be
	// constant across cycles (and independent of the sampled values).
	batch := make([]int, 64)
	cycle := func() uint64 {
		before := s.BitsUsed()
		for j := 0; j < sampler.DefaultWidth; j++ {
			s.NextBatch(batch)
		}
		return s.BitsUsed() - before
	}
	per := cycle()
	if per == 0 {
		t.Fatal("no randomness consumed")
	}
	for i := 0; i < 50; i++ {
		if c := cycle(); c != per {
			t.Fatalf("randomness per refill cycle not constant: %d vs %d", c, per)
		}
	}
}

func TestPublicLargeSigma(t *testing.T) {
	base, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 64})
	if err != nil {
		t.Fatal(err)
	}
	conv := ctgauss.NewLargeSigma(base, 10)
	var sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := float64(conv.Next())
		sq += v * v
	}
	want := 4.0 * (1 + 100)
	if got := sq / n; math.Abs(got-want) > 0.1*want {
		t.Fatalf("convolution variance %f, want ≈ %f", got, want)
	}
}

// TestLargeSigmaMoments checks the convolution combiner against theory:
// z = z₁ + k·z₂ over a base D_σ has mean 0 and standard deviation
// σ·√(1+k²), for several k.
func TestLargeSigmaMoments(t *testing.T) {
	for _, k := range []int{3, 10} {
		base, err := ctgauss.NewWithConfig(ctgauss.Config{Sigma: "2", Precision: 48})
		if err != nil {
			t.Fatal(err)
		}
		conv := ctgauss.NewLargeSigma(base, k)
		var sum, sq float64
		const n = 200000
		for i := 0; i < n; i++ {
			v := float64(conv.Next())
			sum += v
			sq += v * v
		}
		sigma := 2 * math.Sqrt(1+float64(k*k))
		mean := sum / n
		variance := sq/n - mean*mean
		// Tolerances are ≈7 standard errors of each estimator, so the
		// (deterministic) seeded run sits far inside them.
		if tol := 7 * sigma / math.Sqrt(n); math.Abs(mean) > tol {
			t.Errorf("k=%d: mean %f, want |mean| < %f", k, mean, tol)
		}
		if tol := 7 * sigma * sigma * math.Sqrt(2.0/n); math.Abs(variance-sigma*sigma) > tol {
			t.Errorf("k=%d: variance %f, want ≈ %f (±%f)", k, variance, sigma*sigma, tol)
		}
	}
}
