// Package ctgauss generates constant-time, bitsliced discrete Gaussian
// samplers for arbitrary standard deviation and precision, reproducing
// "Pushing the speed limit of constant-time discrete Gaussian sampling. A
// case study on the Falcon signature scheme" (Karmakar, Roy, Vercauteren,
// Verbauwhede — DAC 2019).
//
// The pipeline enumerates the Knuth-Yao DDG tree of the target
// distribution, exploits the structural theorem that every
// sample-generating random bit string is 1^κ 0 (payload) in draw order,
// exactly minimizes the per-sublist Boolean functions over the small Δ
// payload window, and compiles the result into a branch-free straight-line
// program over 64-bit words that produces 64 samples per evaluation.
//
// Quick start:
//
//	s, err := ctgauss.New("2")               // σ = 2, n = 128, τ = 13
//	z := s.Next()                            // one signed sample
//	batch := make([]int, 64); s.NextBatch(batch)
//
// For concurrent serving, NewPool returns a Pool whose Next/NextBatch are
// safe for any number of goroutines; pools share compiled circuits through
// a process-wide registry (optionally persisted on disk via the
// CTGAUSS_CACHE_DIR environment variable), so a configuration is built at
// most once per process no matter how many pools request it.  New and
// NewWithConfig bypass the registry: each Sampler runs its own build so it
// can expose the full pipeline artefacts (Prob, GenerateGo).
package ctgauss

import (
	"fmt"

	"ctgauss/internal/core"
	"ctgauss/internal/gaussian"
	"ctgauss/internal/prng"
	"ctgauss/internal/sampler"
)

// Minimizer selects the Boolean minimization strategy of the pipeline.
type Minimizer = core.Minimizer

// Minimization strategies (see the core pipeline for semantics).
const (
	MinimizeExact  = core.MinimizeExact
	MinimizeGreedy = core.MinimizeGreedy
	MinimizeNone   = core.MinimizeNone
)

// Config controls sampler generation.
type Config struct {
	// Sigma is the decimal standard deviation, e.g. "2" or "6.15543".
	Sigma string
	// Precision is the fixed-point probability precision in bits
	// (default 128, the paper's Falcon setting).
	Precision int
	// TailCut is τ; samples lie in [−⌈τσ⌉, ⌈τσ⌉] (default 13).
	TailCut float64
	// Minimizer defaults to MinimizeExact.
	Minimizer Minimizer
	// Seed keys the internal ChaCha20 PRNG (default: fixed test seed; pass
	// fresh randomness for production use).
	Seed []byte
	// PRNG selects the generator: "chacha20" (default), "shake256",
	// "aes-ctr".
	PRNG string
	// Workers bounds the goroutines used by the build-time Boolean
	// minimization (0 = all CPUs, 1 = serial).  It affects build speed
	// only, never the generated circuit.
	Workers int
	// Prefetch applies to pools only: how many refills each shard's
	// background producer keeps ready ahead of demand (0 =
	// DefaultPrefetch, negative = synchronous refill under the shard
	// lock).  Per-shard sample streams are bit-identical at any setting;
	// prefetch only moves evaluation latency off the request path.
	Prefetch int
}

func (c Config) normalize() Config {
	if c.Precision == 0 {
		c.Precision = 128
	}
	if c.TailCut == 0 {
		c.TailCut = gaussian.DefaultTailCut
	}
	if c.Seed == nil {
		c.Seed = []byte("ctgauss-default-seed")
	}
	if c.PRNG == "" {
		c.PRNG = "chacha20"
	}
	return c
}

// Sampler is a generated constant-time discrete Gaussian sampler.
type Sampler struct {
	built *core.Built
	inner *sampler.Bitsliced
}

// New builds a sampler with default configuration for the given σ.
func New(sigma string) (*Sampler, error) {
	return NewWithConfig(Config{Sigma: sigma})
}

// NewWithConfig builds a sampler from an explicit configuration.
func NewWithConfig(cfg Config) (*Sampler, error) {
	cfg = cfg.normalize()
	built, err := core.Build(core.Config{
		Sigma:   cfg.Sigma,
		N:       cfg.Precision,
		TailCut: cfg.TailCut,
		Min:     cfg.Minimizer,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	src, err := prng.NewSource(cfg.PRNG, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The one-shot Sampler pins the portable evaluation width: its
	// documented examples promise an exact stream for a given seed, so
	// the stream must not depend on which CPU (or CTGAUSS_SIMD setting)
	// runs it.  SIMD backends still accelerate this width — the backend
	// never changes a stream, only the native width does — and the
	// serving Pool, which makes no cross-machine stream promise, widens
	// to the backend's native width for throughput.
	inner := sampler.NewBitslicedWidth("bitsliced-split("+cfg.Sigma+")", built.Optimized(), src, sampler.DefaultWidth)
	return &Sampler{built: built, inner: inner}, nil
}

// Next returns one signed sample from D_σ.
func (s *Sampler) Next() int { return s.inner.Next() }

// NextBatch fills dst with 64 signed samples — the native bitsliced
// granularity.  The length contract: len(dst) < 64 is rejected with a
// panic (a short buffer would silently drop samples of a batch whose
// cost was already paid); len(dst) ≥ 64 short-fills exactly dst[:64]
// and leaves the tail untouched.  For exact arbitrary-length draws use
// Arbitrary.NextBatch, whose compacting layer serves any length.
func (s *Sampler) NextBatch(dst []int) { s.inner.NextBatch(dst) }

// BitsUsed reports total random bits consumed.  Consumption is
// input-independent and periodic: one fixed-size draw per refill, where a
// refill produces Stats.BatchesPerRefill batches of 64 samples costing
// Stats.BitsPerBatch bits each.
func (s *Sampler) BitsUsed() uint64 { return s.inner.BitsUsed() }

// Stats describes the generated circuit.
type Stats struct {
	Sigma        string
	Precision    int
	Support      int // max magnitude ⌈τσ⌉ representable
	Delta        int // the paper's Δ (payload window)
	Leaves       int // DDG-tree leaves (size of list L)
	Sublists     int // non-empty l_κ
	ValueBits    int // output magnitude bits m
	WordOps      int // straight-line program length
	BitsPerBatch int // random bits consumed per 64 samples
	// BatchesPerRefill is the evaluation width W: randomness is drawn and
	// the circuit evaluated once per W batches (W×64 samples).
	BatchesPerRefill int
}

// Stats returns circuit statistics.
func (s *Sampler) Stats() Stats {
	b := s.built
	return Stats{
		Sigma:            b.Config.Sigma,
		Precision:        b.Config.N,
		Support:          b.Table.Support,
		Delta:            b.Tree.Delta,
		Leaves:           b.LeafCount,
		Sublists:         b.SublistCount,
		ValueBits:        b.Program.ValueBits,
		WordOps:          b.Program.OpCount(),
		BitsPerBatch:     (b.Program.NumInputs + 1) * 64,
		BatchesPerRefill: s.inner.Width(),
	}
}

// Prob returns the probability of sampling z (from the fixed-point table).
func (s *Sampler) Prob(z int) float64 { return s.built.Table.SignedProb(z) }

// GenerateGo emits a standalone Go source file with the sampler circuit —
// the output of the paper's generator tool.
func (s *Sampler) GenerateGo(pkg, funcName string) string {
	return s.built.Program.EmitGo(pkg, funcName)
}

func (s Stats) String() string {
	return fmt.Sprintf("σ=%s n=%d: Δ=%d, %d leaves in %d sublists, %d word ops, %d bits/batch",
		s.Sigma, s.Precision, s.Delta, s.Leaves, s.Sublists, s.WordOps, s.BitsPerBatch)
}

// LargeSigma combines a base sampler with the convolution z = z₁ + k·z₂ of
// Pöppelmann-Ducas-Güneysu, yielding σ ≈ σ_base·√(1+k²) — the intended use
// of small-σ base samplers for large-σ needs.
type LargeSigma struct {
	conv *sampler.Convolution
}

// NewLargeSigma wraps base (consumed exclusively) with combining factor k.
func NewLargeSigma(base *Sampler, k int) *LargeSigma {
	return &LargeSigma{conv: &sampler.Convolution{Base: base.inner, K: k}}
}

// Next returns one sample with the enlarged standard deviation.
func (l *LargeSigma) Next() int { return l.conv.Next() }
